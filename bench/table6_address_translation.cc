/**
 * @file
 * Table 6 — virtual-memory table lookups: AX-TLB lookups (L1X miss
 * path) and AX-RMAP lookups (host-forwarded requests) per
 * benchmark, plus the host->tile forwarded-demand counts and the
 * translation structures' share of total energy (Lesson 8).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace fusion;
    auto opt = bench::parseArgs(argc, argv);
    const auto kKind =
        bench::kindOrDefault(opt, core::SystemKind::Fusion);
    bench::banner("Table 6: Virtual memory table lookups (FUSION)",
                  "Table 6 (Section 5.6, Lesson 8)");

    const auto names = workloads::workloadNames();
    std::vector<sweep::SweepJob> jobs;
    std::vector<std::shared_ptr<const trace::Program>> progs;
    for (const auto &name : names) {
        progs.push_back(std::make_shared<const trace::Program>(
            bench::mustBuild(name, opt.scale)));
        auto j = bench::job(kKind, name,
                            opt.scale);
        j.prog = progs.back();
        jobs.push_back(std::move(j));
    }
    auto results =
        bench::runSweep("table6_address_translation", jobs, opt);

    std::printf("%-8s %10s %10s %10s %12s %10s\n", "bench",
                "AX-TLB", "AX-RMAP", "host fwds", "mem ops",
                "vm energy%");
    std::printf("%s\n", std::string(66, '-').c_str());

    for (std::size_t w = 0; w < names.size(); ++w) {
        const std::string &name = names[w];
        const trace::Program &prog = *progs[w];
        const core::RunResult &r = results[w];
        double vm_pj = r.component(energy::comp::kAxTlb) +
                       r.component(energy::comp::kAxRmap);
        std::printf("%-8s %10llu %10llu %10llu %12llu %9.3f%%\n",
                    bench::displayName(name).c_str(),
                    static_cast<unsigned long long>(r.axTlbLookups),
                    static_cast<unsigned long long>(
                        r.axRmapLookups),
                    static_cast<unsigned long long>(r.fwdsToTile),
                    static_cast<unsigned long long>(
                        prog.memOpCount()),
                    100.0 * vm_pj / r.totalPj());
    }
    std::printf("\nAX-TLB lookups == L1X misses (translation off "
                "the critical path);\nAX-RMAP lookups track host "
                "demands filtered by the precise directory.\n");
    return 0;
}
