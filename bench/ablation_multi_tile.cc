/**
 * @file
 * Ablation — tile collocation. The paper assumes every function of
 * an application is collocated on one tile ("all accelerators
 * derived from an application are collocated", Section 4). This
 * harness splits them across 1/2/3 tiles: inter-accelerator sharing
 * then crosses the host LLC as MESI forwards, quantifying what
 * collocation is worth.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace fusion;
    auto opt = bench::parseArgs(argc, argv);
    const auto kKind =
        bench::kindOrDefault(opt, core::SystemKind::Fusion);
    bench::banner("Ablation: tile collocation (FUSION)",
                  "Section 4's collocation assumption");

    const auto kTiles = {1u, 2u, 3u};
    const auto names = workloads::workloadNames();
    std::vector<sweep::SweepJob> jobs;
    for (const auto &name : names) {
        for (std::uint32_t tiles : kTiles) {
            auto j = bench::job(kKind, name,
                                opt.scale);
            j.cfg.numTiles = tiles;
            j.tag += "/tiles=" + std::to_string(tiles);
            jobs.push_back(std::move(j));
        }
    }
    auto results =
        bench::runSweep("ablation_multi_tile", jobs, opt);

    std::printf("%-8s %6s | %12s %12s %12s %12s\n", "bench",
                "tiles", "cycles", "l2 msgs", "host fwds",
                "energy(uJ)");
    std::printf("%s\n", std::string(70, '-').c_str());

    std::size_t idx = 0;
    for (const auto &name : names) {
        bool first = true;
        for (std::uint32_t tiles : kTiles) {
            const core::RunResult &r = results[idx++];
            std::printf("%-8s %6u | %12llu %12llu %12llu %12.3f\n",
                        first ? bench::displayName(name).c_str()
                              : "",
                        tiles,
                        static_cast<unsigned long long>(
                            r.accelCycles),
                        static_cast<unsigned long long>(
                            r.l1xL2CtrlMsgs + r.l1xL2DataMsgs),
                        static_cast<unsigned long long>(
                            r.fwdsToTile),
                        r.hierarchyPj() / 1e6);
            first = false;
        }
        std::printf("\n");
    }
    std::printf("Splitting sharers across tiles routes their data "
                "through the host LLC;\ncollocation keeps it on the "
                "cheap intra-tile links.\n");
    return 0;
}
