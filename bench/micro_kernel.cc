/**
 * @file
 * Simulation-kernel throughput microbenchmark: schedule/dispatch
 * ops/sec of the event queue itself, with every component model
 * stripped away.
 *
 * Two implementations run the identical workload:
 *
 *  - "kernel": the production EventQueue (calendar buckets +
 *    allocation-free InlineEvent storage, DESIGN.md section 8)
 *  - "legacy": the pre-overhaul kernel, embedded below verbatim —
 *    a std::priority_queue of std::function entries with copy-pop
 *    semantics — as a toggleable baseline
 *
 * The workload mimics the simulator's steady state: a fixed pending
 * set of self-rescheduling events whose deltas (1..8 ticks) look
 * like link/bank latencies and whose closures capture ~48 bytes
 * (this + state), past libstdc++'s 16-byte std::function SSO, so
 * the legacy queue pays one heap allocation per scheduled event
 * exactly as it did for real component closures.
 *
 *   micro_kernel [--ops N] [--pending A,B,..] [--impl both|kernel|
 *                 legacy] [--repeat N] [--json FILE]
 *
 * Each row is measured --repeat times with the implementations
 * interleaved and the best (minimum-time) sample kept, which filters
 * scheduler noise on loaded machines. The summary line reports the
 * geometric mean of the per-row speedups plus the min/max row, so a
 * single outlier config can't hide behind the mean.
 *
 * --compare switches to the *sharded kernel* comparison
 * (DESIGN.md §8): the same logical workload — one host domain plus
 * --tiles accelerator tiles running self-rescheduling chains with
 * periodic cross-domain host round trips — executes once on the
 * serial EventQueue and once on the conservative-window
 * shard::DomainScheduler at --shard-domains physical domains, with
 * per-row events/sec, per-config speedup, and the geomean/min/max
 * summary. Both sides must execute identical event counts and
 * produce identical checksums (asserted), so the speedup is
 * apples-to-apples. Real speedup needs >= --shard-domains hardware
 * threads; the banner prints the machine's concurrency.
 *
 *   micro_kernel --compare [--shard-domains N] [--tiles A,B,..]
 *                [--chains N] [--work N] [--workers N]
 *                [--lookahead N] [--ops N] [--repeat N] [--json F]
 *
 * With --json the report carries the same "perf" object shape
 * (hostSeconds / events / eventsPerSecond) the sweep reports emit.
 */

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/shard/scheduler.hh"

namespace
{

using namespace fusion;

/**
 * The pre-overhaul event queue, kept here as the benchmark
 * baseline: one std::function per event (heap-allocating beyond 16
 * captured bytes) in a single binary heap, popped by copy. Ordering
 * semantics — (when, priority, insertion seq) — match the
 * production kernel, so both sides execute the same event sequence.
 */
class LegacyEventQueue
{
  public:
    Tick now() const { return _now; }

    void
    schedule(Tick when, std::function<void()> fn)
    {
        fusion_assert(when >= _now, "schedule in the past");
        _heap.push(Entry{when, 0, _nextSeq++, std::move(fn)});
    }

    void
    scheduleIn(Cycles delta, std::function<void()> fn)
    {
        schedule(_now + delta, std::move(fn));
    }

    Tick
    run()
    {
        while (!_heap.empty()) {
            Entry e = _heap.top(); // copy-pop, as the old kernel did
            _heap.pop();
            _now = e.when;
            ++_executed;
            e.fn();
        }
        return _now;
    }

    std::uint64_t executed() const { return _executed; }

  private:
    struct Entry
    {
        Tick when;
        int pri;
        std::uint64_t seq;
        std::function<void()> fn;
    };
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.pri != b.pri)
                return a.pri > b.pri;
            return a.seq > b.seq;
        }
    };
    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
};

/** xorshift step — cheap, deterministic per-chain delta source. */
inline std::uint64_t
nextState(std::uint64_t x)
{
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
}

/**
 * One measurement: @p pending self-rescheduling chains dispatching
 * @p ops events total. Returns seconds of wall clock.
 *
 * Each chain's closure captures this-pointer, its xorshift state
 * and 32 bytes of payload (~48 bytes total): inline in InlineEvent,
 * one heap allocation per schedule in std::function.
 */
template <class Queue>
struct ChurnBench
{
    Queue q;
    std::uint64_t remaining = 0;
    std::uint64_t sink = 0;

    void
    arm(std::uint64_t state)
    {
        std::array<std::uint64_t, 4> payload{
            state, state ^ 0x9e3779b97f4a7c15ull, state * 3, ~state};
        q.scheduleIn(1 + (state & 7), [this, state, payload] {
            sink += payload[0] ^ payload[3];
            if (remaining > 0) {
                --remaining;
                arm(nextState(state));
            }
        });
    }

    double
    measure(std::size_t pending, std::uint64_t ops)
    {
        // The chains stop rescheduling once `remaining` hits zero,
        // so total dispatches = pending (seeds) + ops (refills).
        remaining = ops;
        std::uint64_t seed = 0x2545f4914f6cdd1dull;
        for (std::size_t i = 0; i < pending; ++i) {
            seed = nextState(seed);
            arm(seed);
        }
        auto t0 = std::chrono::steady_clock::now();
        q.run();
        auto t1 = std::chrono::steady_clock::now();
        fusion_assert(q.executed() == pending + ops,
                      "dispatch count mismatch: ", q.executed());
        return std::chrono::duration<double>(t1 - t0).count();
    }
};

struct Row
{
    std::size_t pending;
    std::uint64_t events;
    double kernelSec = 0.0;
    double legacySec = 0.0;
};

// ----------------------------------------------------------------
// --compare: serial kernel vs sharded conservative-window engine.
// ----------------------------------------------------------------

/**
 * The logical topology of one shard-compare row: logical domain 0 is
 * the host, 1..tiles are accelerator tiles. Each tile runs `chains`
 * self-rescheduling chains; every `crossEvery`-th step a chain sends
 * a fire-and-forget request to the host, which replies back — both
 * legs at >= lookahead delay, the shape a tile<->LLC ring link
 * produces. `work` xorshift rounds per event stand in for the
 * component model a real event executes.
 */
struct ShardTopo
{
    std::uint32_t tiles = 4;
    std::size_t chains = 128;
    std::uint64_t steps = 0; ///< self-reschedules per chain
    int work = 32;
    Cycles lookahead = 3;
    std::uint32_t crossEvery = 16;
};

/** Serial side: everything on one EventQueue (--shard-domains=1). */
struct SerialExec
{
    EventQueue q;

    SerialExec(const ShardTopo &, std::uint32_t, std::size_t) {}

    template <class F>
    void
    local(std::uint32_t, Cycles d, F &&fn)
    {
        q.scheduleIn(d, std::forward<F>(fn));
    }
    template <class F>
    void
    cross(std::uint32_t, std::uint32_t, Cycles d, F &&fn)
    {
        q.scheduleIn(d, std::forward<F>(fn));
    }
    void
    run()
    {
        while (q.step()) {
        }
    }
    std::uint64_t executed() const { return q.executed(); }
};

/** Sharded side: the DomainScheduler, logical domains folded onto
 *  the physical ones round-robin (host stays on domain 0). */
struct ShardExec
{
    shard::DomainScheduler ds;
    std::uint32_t nphys;

    static shard::DomainScheduler::Params
    params(const ShardTopo &t, std::uint32_t domains,
           std::size_t workers)
    {
        shard::DomainScheduler::Params p;
        p.domains = domains;
        p.lookahead = t.lookahead;
        p.workers = workers;
        return p;
    }

    ShardExec(const ShardTopo &t, std::uint32_t domains,
              std::size_t workers)
        : ds(params(t, domains, workers)), nphys(domains)
    {
    }

    shard::DomainId
    phys(std::uint32_t logical) const
    {
        if (nphys == 1 || logical == 0)
            return 0;
        return 1 + (logical - 1) % (nphys - 1);
    }

    template <class F>
    void
    local(std::uint32_t l, Cycles d, F &&fn)
    {
        ds.queueOf(phys(l)).scheduleIn(d, std::forward<F>(fn));
    }
    template <class F>
    void
    cross(std::uint32_t from, std::uint32_t to, Cycles d, F &&fn)
    {
        ds.sendCross(phys(from), phys(to), d, std::forward<F>(fn));
    }
    void run() { ds.run(); }
    std::uint64_t executed() const { return ds.totalExecuted(); }
};

/**
 * The workload itself, identical through either executor: per-tile
 * chains plus host round trips, with per-logical-domain checksums so
 * the two sides can be compared exactly (the checksum updates are
 * commutative, so they are independent of the physical partition).
 */
template <class Exec>
struct ShardBench
{
    const ShardTopo &topo;
    Exec ex;
    std::vector<std::uint64_t> sink; ///< per logical domain

    ShardBench(const ShardTopo &t, std::uint32_t domains,
               std::size_t workers)
        : topo(t), ex(t, domains, workers), sink(t.tiles + 1, 0)
    {
    }

    static std::uint64_t
    burn(std::uint64_t x, int iters)
    {
        for (int i = 0; i < iters; ++i)
            x = nextState(x);
        return x;
    }

    void
    chainStep(std::uint32_t tile, std::uint64_t state,
              std::uint64_t left)
    {
        state = burn(state, topo.work);
        sink[tile] += state & 0xff;
        if (left == 0)
            return;
        if (topo.crossEvery != 0 &&
            left % topo.crossEvery == 0) {
            std::uint64_t rs = state * 0x9e3779b97f4a7c15ull;
            ex.cross(tile, 0, topo.lookahead,
                     [this, tile, rs] {
                         std::uint64_t h = burn(rs, topo.work);
                         sink[0] += h & 0xff;
                         ex.cross(0, tile, topo.lookahead,
                                  [this, tile, h] {
                                      sink[tile] +=
                                          burn(h, 4) & 0xff;
                                  });
                     });
        }
        ex.local(tile, 1 + (state & 3),
                 [this, tile, state, left] {
                     chainStep(tile, nextState(state), left - 1);
                 });
    }

    double
    measure()
    {
        std::uint64_t seed = 0x2545f4914f6cdd1dull;
        for (std::uint32_t t = 1; t <= topo.tiles; ++t) {
            for (std::size_t c = 0; c < topo.chains; ++c) {
                seed = nextState(seed);
                std::uint64_t s = seed;
                std::uint64_t n = topo.steps;
                ex.local(t, 1 + (s & 3), [this, t, s, n] {
                    chainStep(t, s, n);
                });
            }
        }
        auto t0 = std::chrono::steady_clock::now();
        ex.run();
        auto t1 = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(t1 - t0).count();
    }
};

struct ShardRow
{
    std::uint32_t tiles = 0;
    std::uint64_t events = 0;
    double serialSec = 0.0;
    double shardSec = 0.0;

    double
    speedup() const
    {
        return (serialSec > 0.0 && shardSec > 0.0)
                   ? serialSec / shardSec
                   : 0.0;
    }
};

/** Geomean plus the min/max row of a speedup list (satellite of the
 *  sharded-kernel PR: variance must print beside the mean). */
struct SpeedupSummary
{
    double geomean = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::size_t n = 0;

    void
    add(double s)
    {
        if (s <= 0.0)
            return;
        geomean += std::log(s);
        min = n == 0 ? s : std::min(min, s);
        max = n == 0 ? s : std::max(max, s);
        ++n;
    }
    bool
    finish()
    {
        if (n == 0)
            return false;
        geomean = std::exp(geomean / static_cast<double>(n));
        return true;
    }
};

int
runShardCompare(const ShardTopo &base,
                const std::vector<std::uint32_t> &tile_list,
                std::uint32_t domains, std::size_t workers,
                std::uint64_t ops, int repeat,
                const std::string &jsonPath)
{
    std::printf("=== sharded kernel throughput (--compare) ===\n");
    std::printf("serial EventQueue vs conservative-window "
                "DomainScheduler, identical workload\n");
    std::printf("domains=%u workers=%zu lookahead=%llu "
                "chains/tile=%zu work=%d (hw threads: %u)\n\n",
                domains, workers,
                static_cast<unsigned long long>(base.lookahead),
                base.chains, base.work,
                std::thread::hardware_concurrency());
    std::printf("%8s %12s %14s %14s %8s\n", "tiles", "events",
                "serial ev/s", "shard ev/s", "speedup");

    std::vector<ShardRow> rows;
    for (std::uint32_t tiles : tile_list) {
        ShardTopo topo = base;
        topo.tiles = tiles;
        std::uint64_t per_tile =
            static_cast<std::uint64_t>(topo.chains) * tiles;
        topo.steps = per_tile ? std::max<std::uint64_t>(
                                    1, ops / per_tile)
                              : 1;
        ShardRow row;
        row.tiles = tiles;
        for (int rep = 0; rep < repeat; ++rep) {
            ShardBench<SerialExec> serial(topo, 1, 1);
            double ss = serial.measure();
            row.serialSec =
                rep ? std::min(row.serialSec, ss) : ss;
            ShardBench<ShardExec> shard(topo, domains, workers);
            double hs = shard.measure();
            row.shardSec = rep ? std::min(row.shardSec, hs) : hs;
            // Same workload on both sides or the speedup is
            // meaningless: identical event counts, identical
            // checksums.
            fusion_assert(serial.ex.executed() ==
                              shard.ex.executed(),
                          "executed-count mismatch: serial=",
                          serial.ex.executed(),
                          " shard=", shard.ex.executed());
            fusion_assert(serial.sink == shard.sink,
                          "checksum mismatch between serial and "
                          "sharded execution");
            row.events = serial.ex.executed();
        }
        auto rate = [&](double sec) {
            return sec > 0.0
                       ? static_cast<double>(row.events) / sec
                       : 0.0;
        };
        std::printf("%8u %12llu %14.3e %14.3e %7.2fx\n",
                    row.tiles,
                    static_cast<unsigned long long>(row.events),
                    rate(row.serialSec), rate(row.shardSec),
                    row.speedup());
        rows.push_back(row);
    }

    SpeedupSummary sum;
    for (const ShardRow &r : rows)
        sum.add(r.speedup());
    if (sum.finish()) {
        std::printf("\ngeomean speedup: %.2fx (min %.2fx, max "
                    "%.2fx over %zu configs)\n",
                    sum.geomean, sum.min, sum.max, sum.n);
    }

    if (!jsonPath.empty()) {
        std::FILE *f = std::fopen(jsonPath.c_str(), "w");
        if (!f)
            fusion_fatal("cannot open ", jsonPath);
        std::fprintf(
            f,
            "{\"bench\":\"micro_kernel\",\"mode\":\"shard\","
            "\"domains\":%u,\"workers\":%zu,\"lookahead\":%llu,"
            "\"chains\":%zu,\"work\":%d,\"repeat\":%d,\"rows\":[",
            domains, workers,
            static_cast<unsigned long long>(base.lookahead),
            base.chains, base.work, repeat);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const ShardRow &r = rows[i];
            std::fprintf(f, "%s{\"tiles\":%u", i ? "," : "",
                         r.tiles);
            auto put = [&](const char *name, double sec) {
                if (sec <= 0.0)
                    return;
                std::fprintf(
                    f,
                    ",\"%s\":{\"hostSeconds\":%.17g,"
                    "\"events\":%llu,\"eventsPerSecond\":%.17g}",
                    name, sec,
                    static_cast<unsigned long long>(r.events),
                    static_cast<double>(r.events) / sec);
            };
            put("perf", r.shardSec);
            put("serialPerf", r.serialSec);
            std::fprintf(f, ",\"speedup\":%.17g}", r.speedup());
        }
        if (sum.n > 0) {
            std::fprintf(f,
                         "],\"geomeanSpeedup\":%.17g,"
                         "\"minSpeedup\":%.17g,"
                         "\"maxSpeedup\":%.17g}\n",
                         sum.geomean, sum.min, sum.max);
        } else {
            std::fprintf(f, "]}\n");
        }
        std::fclose(f);
        std::fprintf(stderr,
                     "shard bench report written to %s\n",
                     jsonPath.c_str());
    }
    return 0;
}

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--ops N] [--pending A,B,...] "
        "[--impl both|kernel|legacy] [--repeat N] [--json FILE]\n"
        "       %s --compare [--shard-domains N] [--tiles A,B,...] "
        "[--chains N]\n"
        "                [--work N] [--workers N] [--lookahead N] "
        "[--ops N] [--repeat N]\n"
        "  --ops N        dispatches per pending-set size "
        "(default 2000000)\n"
        "  --pending L    comma-separated pending-set sizes "
        "(default 1,64,1024,16384)\n"
        "  --impl WHICH   run only one implementation "
        "(default both)\n"
        "  --repeat N     samples per row, best kept "
        "(default 3)\n"
        "  --json FILE    write machine-readable results with "
        "perf objects\n"
        "  --compare      serial kernel vs sharded "
        "conservative-window engine (DESIGN.md 8)\n"
        "  --shard-domains N  physical domains for --compare "
        "(default 4)\n"
        "  --tiles L      logical tile counts per row "
        "(default 4,8)\n"
        "  --chains N     chains per tile (default 128)\n"
        "  --work N       xorshift rounds per event (default 32)\n"
        "  --workers N    worker threads (default 0 = one per "
        "domain, capped at hw)\n"
        "  --lookahead N  conservative lookahead in ticks "
        "(default 3)\n",
        argv0, argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t ops = 2'000'000;
    std::vector<std::size_t> pendings{1, 64, 1024, 16384};
    std::string impl = "both";
    std::string jsonPath;
    int repeat = 3;
    bool compare = false;
    ShardTopo topo;
    std::vector<std::uint32_t> tile_list{4, 8};
    std::uint32_t shard_domains = 4;
    std::size_t shard_workers = 0;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage(argv[0]);
                fusion_fatal("missing value for ", a);
            }
            return argv[++i];
        };
        if (a == "--ops") {
            ops = std::strtoull(next().c_str(), nullptr, 10);
        } else if (a == "--pending") {
            pendings.clear();
            std::string list = next();
            for (std::size_t pos = 0; pos < list.size();) {
                std::size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                pendings.push_back(static_cast<std::size_t>(
                    std::strtoull(list.substr(pos, comma - pos)
                                      .c_str(),
                                  nullptr, 10)));
                pos = comma + 1;
            }
        } else if (a == "--compare") {
            compare = true;
        } else if (a == "--shard-domains") {
            shard_domains = static_cast<std::uint32_t>(
                std::strtoul(next().c_str(), nullptr, 10));
            if (shard_domains < 1)
                fusion_fatal("--shard-domains must be >= 1");
        } else if (a == "--tiles") {
            tile_list.clear();
            std::string list = next();
            for (std::size_t pos = 0; pos < list.size();) {
                std::size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                tile_list.push_back(static_cast<std::uint32_t>(
                    std::strtoul(list.substr(pos, comma - pos)
                                     .c_str(),
                                 nullptr, 10)));
                pos = comma + 1;
            }
            for (std::uint32_t t : tile_list)
                if (t == 0)
                    fusion_fatal("--tiles entries must be >= 1");
            if (tile_list.empty())
                fusion_fatal("--tiles: empty list");
        } else if (a == "--chains") {
            topo.chains = static_cast<std::size_t>(
                std::strtoull(next().c_str(), nullptr, 10));
            if (topo.chains == 0)
                fusion_fatal("--chains must be >= 1");
        } else if (a == "--work") {
            topo.work = static_cast<int>(
                std::strtol(next().c_str(), nullptr, 10));
            if (topo.work < 0)
                fusion_fatal("--work must be >= 0");
        } else if (a == "--workers") {
            shard_workers = static_cast<std::size_t>(
                std::strtoull(next().c_str(), nullptr, 10));
        } else if (a == "--lookahead") {
            topo.lookahead = static_cast<Cycles>(
                std::strtoull(next().c_str(), nullptr, 10));
            if (topo.lookahead < 1)
                fusion_fatal("--lookahead must be >= 1");
        } else if (a == "--impl") {
            impl = next();
            if (impl != "both" && impl != "kernel" &&
                impl != "legacy") {
                usage(argv[0]);
                fusion_fatal("unknown --impl: ", impl);
            }
        } else if (a == "--repeat") {
            repeat = static_cast<int>(
                std::strtol(next().c_str(), nullptr, 10));
            if (repeat < 1)
                fusion_fatal("--repeat must be >= 1");
        } else if (a == "--json") {
            jsonPath = next();
        } else if (a == "-h" || a == "--help") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            fusion_fatal("unknown option: ", a);
        }
    }
    for (std::size_t p : pendings)
        if (p == 0)
            fusion_fatal("--pending sizes must be >= 1");

    if (compare) {
        return runShardCompare(topo, tile_list, shard_domains,
                               shard_workers, ops, repeat,
                               jsonPath);
    }

    std::printf("=== kernel dispatch throughput ===\n");
    std::printf("%llu dispatches per row; closures capture ~48 B\n\n",
                static_cast<unsigned long long>(ops));
    std::printf("%10s %14s %14s %8s\n", "pending", "kernel ev/s",
                "legacy ev/s", "speedup");

    std::vector<Row> rows;
    for (std::size_t p : pendings) {
        Row row;
        row.pending = p;
        row.events = p + ops;
        // Interleave the implementations across repeats and keep the
        // fastest sample of each, so a load spike hits both sides
        // rather than biasing one row.
        for (int rep = 0; rep < repeat; ++rep) {
            if (impl != "legacy") {
                double s = ChurnBench<EventQueue>{}.measure(p, ops);
                row.kernelSec = rep
                                    ? std::min(row.kernelSec, s)
                                    : s;
            }
            if (impl != "kernel") {
                double s =
                    ChurnBench<LegacyEventQueue>{}.measure(p, ops);
                row.legacySec = rep
                                    ? std::min(row.legacySec, s)
                                    : s;
            }
        }
        auto rate = [&](double sec) {
            return sec > 0.0
                       ? static_cast<double>(row.events) / sec
                       : 0.0;
        };
        std::printf("%10zu %14.3e %14.3e %8s\n", p,
                    rate(row.kernelSec), rate(row.legacySec),
                    (row.kernelSec > 0.0 && row.legacySec > 0.0)
                        ? (std::to_string(row.legacySec /
                                          row.kernelSec)
                               .substr(0, 5) +
                           "x")
                              .c_str()
                        : "-");
        rows.push_back(row);
    }

    SpeedupSummary sum;
    for (const Row &r : rows) {
        if (r.kernelSec > 0.0 && r.legacySec > 0.0)
            sum.add(r.legacySec / r.kernelSec);
    }
    double geomean = 0.0;
    std::size_t speedups = sum.n;
    if (sum.finish()) {
        geomean = sum.geomean;
        std::printf("\ngeomean speedup: %.2fx (min %.2fx, max "
                    "%.2fx over %zu configs)\n",
                    sum.geomean, sum.min, sum.max, sum.n);
    }

    if (!jsonPath.empty()) {
        std::FILE *f = std::fopen(jsonPath.c_str(), "w");
        if (!f)
            fusion_fatal("cannot open ", jsonPath);
        std::fprintf(f, "{\"bench\":\"micro_kernel\",\"ops\":%llu,"
                        "\"repeat\":%d,\"rows\":[",
                     static_cast<unsigned long long>(ops), repeat);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            std::fprintf(f, "%s{\"pending\":%zu", i ? "," : "",
                         r.pending);
            auto put = [&](const char *name, double sec) {
                if (sec <= 0.0)
                    return;
                std::fprintf(
                    f,
                    ",\"%s\":{\"hostSeconds\":%.17g,"
                    "\"events\":%llu,\"eventsPerSecond\":%.17g}",
                    name, sec,
                    static_cast<unsigned long long>(r.events),
                    static_cast<double>(r.events) / sec);
            };
            put("perf", r.kernelSec);
            put("legacyPerf", r.legacySec);
            std::fprintf(f, "}");
        }
        if (speedups > 0) {
            std::fprintf(f,
                         "],\"geomeanSpeedup\":%.17g,"
                         "\"minSpeedup\":%.17g,"
                         "\"maxSpeedup\":%.17g}\n",
                         geomean, sum.min, sum.max);
        } else {
            std::fprintf(f, "]}\n");
        }
        std::fclose(f);
        std::fprintf(stderr, "kernel bench report written to %s\n",
                     jsonPath.c_str());
    }
    return 0;
}
