/**
 * @file
 * Simulation-kernel throughput microbenchmark: schedule/dispatch
 * ops/sec of the event queue itself, with every component model
 * stripped away.
 *
 * Two implementations run the identical workload:
 *
 *  - "kernel": the production EventQueue (calendar buckets +
 *    allocation-free InlineEvent storage, DESIGN.md section 8)
 *  - "legacy": the pre-overhaul kernel, embedded below verbatim —
 *    a std::priority_queue of std::function entries with copy-pop
 *    semantics — as a toggleable baseline
 *
 * The workload mimics the simulator's steady state: a fixed pending
 * set of self-rescheduling events whose deltas (1..8 ticks) look
 * like link/bank latencies and whose closures capture ~48 bytes
 * (this + state), past libstdc++'s 16-byte std::function SSO, so
 * the legacy queue pays one heap allocation per scheduled event
 * exactly as it did for real component closures.
 *
 *   micro_kernel [--ops N] [--pending A,B,..] [--impl both|kernel|
 *                 legacy] [--repeat N] [--json FILE]
 *
 * Each row is measured --repeat times with the implementations
 * interleaved and the best (minimum-time) sample kept, which filters
 * scheduler noise on loaded machines. The summary line reports the
 * geometric mean of the per-row speedups.
 *
 * With --json the report carries the same "perf" object shape
 * (hostSeconds / events / eventsPerSecond) the sweep reports emit.
 */

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace
{

using namespace fusion;

/**
 * The pre-overhaul event queue, kept here as the benchmark
 * baseline: one std::function per event (heap-allocating beyond 16
 * captured bytes) in a single binary heap, popped by copy. Ordering
 * semantics — (when, priority, insertion seq) — match the
 * production kernel, so both sides execute the same event sequence.
 */
class LegacyEventQueue
{
  public:
    Tick now() const { return _now; }

    void
    schedule(Tick when, std::function<void()> fn)
    {
        fusion_assert(when >= _now, "schedule in the past");
        _heap.push(Entry{when, 0, _nextSeq++, std::move(fn)});
    }

    void
    scheduleIn(Cycles delta, std::function<void()> fn)
    {
        schedule(_now + delta, std::move(fn));
    }

    Tick
    run()
    {
        while (!_heap.empty()) {
            Entry e = _heap.top(); // copy-pop, as the old kernel did
            _heap.pop();
            _now = e.when;
            ++_executed;
            e.fn();
        }
        return _now;
    }

    std::uint64_t executed() const { return _executed; }

  private:
    struct Entry
    {
        Tick when;
        int pri;
        std::uint64_t seq;
        std::function<void()> fn;
    };
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.pri != b.pri)
                return a.pri > b.pri;
            return a.seq > b.seq;
        }
    };
    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
};

/** xorshift step — cheap, deterministic per-chain delta source. */
inline std::uint64_t
nextState(std::uint64_t x)
{
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
}

/**
 * One measurement: @p pending self-rescheduling chains dispatching
 * @p ops events total. Returns seconds of wall clock.
 *
 * Each chain's closure captures this-pointer, its xorshift state
 * and 32 bytes of payload (~48 bytes total): inline in InlineEvent,
 * one heap allocation per schedule in std::function.
 */
template <class Queue>
struct ChurnBench
{
    Queue q;
    std::uint64_t remaining = 0;
    std::uint64_t sink = 0;

    void
    arm(std::uint64_t state)
    {
        std::array<std::uint64_t, 4> payload{
            state, state ^ 0x9e3779b97f4a7c15ull, state * 3, ~state};
        q.scheduleIn(1 + (state & 7), [this, state, payload] {
            sink += payload[0] ^ payload[3];
            if (remaining > 0) {
                --remaining;
                arm(nextState(state));
            }
        });
    }

    double
    measure(std::size_t pending, std::uint64_t ops)
    {
        // The chains stop rescheduling once `remaining` hits zero,
        // so total dispatches = pending (seeds) + ops (refills).
        remaining = ops;
        std::uint64_t seed = 0x2545f4914f6cdd1dull;
        for (std::size_t i = 0; i < pending; ++i) {
            seed = nextState(seed);
            arm(seed);
        }
        auto t0 = std::chrono::steady_clock::now();
        q.run();
        auto t1 = std::chrono::steady_clock::now();
        fusion_assert(q.executed() == pending + ops,
                      "dispatch count mismatch: ", q.executed());
        return std::chrono::duration<double>(t1 - t0).count();
    }
};

struct Row
{
    std::size_t pending;
    std::uint64_t events;
    double kernelSec = 0.0;
    double legacySec = 0.0;
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--ops N] [--pending A,B,...] "
        "[--impl both|kernel|legacy] [--repeat N] [--json FILE]\n"
        "  --ops N        dispatches per pending-set size "
        "(default 2000000)\n"
        "  --pending L    comma-separated pending-set sizes "
        "(default 1,64,1024,16384)\n"
        "  --impl WHICH   run only one implementation "
        "(default both)\n"
        "  --repeat N     samples per row, best kept "
        "(default 3)\n"
        "  --json FILE    write machine-readable results with "
        "perf objects\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t ops = 2'000'000;
    std::vector<std::size_t> pendings{1, 64, 1024, 16384};
    std::string impl = "both";
    std::string jsonPath;
    int repeat = 3;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage(argv[0]);
                fusion_fatal("missing value for ", a);
            }
            return argv[++i];
        };
        if (a == "--ops") {
            ops = std::strtoull(next().c_str(), nullptr, 10);
        } else if (a == "--pending") {
            pendings.clear();
            std::string list = next();
            for (std::size_t pos = 0; pos < list.size();) {
                std::size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                pendings.push_back(static_cast<std::size_t>(
                    std::strtoull(list.substr(pos, comma - pos)
                                      .c_str(),
                                  nullptr, 10)));
                pos = comma + 1;
            }
        } else if (a == "--impl") {
            impl = next();
            if (impl != "both" && impl != "kernel" &&
                impl != "legacy") {
                usage(argv[0]);
                fusion_fatal("unknown --impl: ", impl);
            }
        } else if (a == "--repeat") {
            repeat = static_cast<int>(
                std::strtol(next().c_str(), nullptr, 10));
            if (repeat < 1)
                fusion_fatal("--repeat must be >= 1");
        } else if (a == "--json") {
            jsonPath = next();
        } else if (a == "-h" || a == "--help") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            fusion_fatal("unknown option: ", a);
        }
    }
    for (std::size_t p : pendings)
        if (p == 0)
            fusion_fatal("--pending sizes must be >= 1");

    std::printf("=== kernel dispatch throughput ===\n");
    std::printf("%llu dispatches per row; closures capture ~48 B\n\n",
                static_cast<unsigned long long>(ops));
    std::printf("%10s %14s %14s %8s\n", "pending", "kernel ev/s",
                "legacy ev/s", "speedup");

    std::vector<Row> rows;
    for (std::size_t p : pendings) {
        Row row;
        row.pending = p;
        row.events = p + ops;
        // Interleave the implementations across repeats and keep the
        // fastest sample of each, so a load spike hits both sides
        // rather than biasing one row.
        for (int rep = 0; rep < repeat; ++rep) {
            if (impl != "legacy") {
                double s = ChurnBench<EventQueue>{}.measure(p, ops);
                row.kernelSec = rep
                                    ? std::min(row.kernelSec, s)
                                    : s;
            }
            if (impl != "kernel") {
                double s =
                    ChurnBench<LegacyEventQueue>{}.measure(p, ops);
                row.legacySec = rep
                                    ? std::min(row.legacySec, s)
                                    : s;
            }
        }
        auto rate = [&](double sec) {
            return sec > 0.0
                       ? static_cast<double>(row.events) / sec
                       : 0.0;
        };
        std::printf("%10zu %14.3e %14.3e %8s\n", p,
                    rate(row.kernelSec), rate(row.legacySec),
                    (row.kernelSec > 0.0 && row.legacySec > 0.0)
                        ? (std::to_string(row.legacySec /
                                          row.kernelSec)
                               .substr(0, 5) +
                           "x")
                              .c_str()
                        : "-");
        rows.push_back(row);
    }

    double geomean = 0.0;
    std::size_t speedups = 0;
    for (const Row &r : rows) {
        if (r.kernelSec > 0.0 && r.legacySec > 0.0) {
            geomean += std::log(r.legacySec / r.kernelSec);
            ++speedups;
        }
    }
    if (speedups > 0) {
        geomean = std::exp(geomean / static_cast<double>(speedups));
        std::printf("\ngeomean speedup: %.2fx\n", geomean);
    }

    if (!jsonPath.empty()) {
        std::FILE *f = std::fopen(jsonPath.c_str(), "w");
        if (!f)
            fusion_fatal("cannot open ", jsonPath);
        std::fprintf(f, "{\"bench\":\"micro_kernel\",\"ops\":%llu,"
                        "\"repeat\":%d,\"rows\":[",
                     static_cast<unsigned long long>(ops), repeat);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            std::fprintf(f, "%s{\"pending\":%zu", i ? "," : "",
                         r.pending);
            auto put = [&](const char *name, double sec) {
                if (sec <= 0.0)
                    return;
                std::fprintf(
                    f,
                    ",\"%s\":{\"hostSeconds\":%.17g,"
                    "\"events\":%llu,\"eventsPerSecond\":%.17g}",
                    name, sec,
                    static_cast<unsigned long long>(r.events),
                    static_cast<double>(r.events) / sec);
            };
            put("perf", r.kernelSec);
            put("legacyPerf", r.legacySec);
            std::fprintf(f, "}");
        }
        if (speedups > 0)
            std::fprintf(f, "],\"geomeanSpeedup\":%.17g}\n", geomean);
        else
            std::fprintf(f, "]}\n");
        std::fclose(f);
        std::fprintf(stderr, "kernel bench report written to %s\n",
                     jsonPath.c_str());
    }
    return 0;
}
