/**
 * @file
 * google-benchmark microbenchmarks of the hot simulation
 * structures: event queue throughput, cache-array lookups,
 * directory transactions and trace capture.
 */

#include <benchmark/benchmark.h>

#include "accel/tile.hh"
#include "host/host_l1.hh"
#include "host/llc.hh"
#include "mem/cache_array.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "trace/analysis.hh"
#include "trace/recorder.hh"
#include "vm/ax_tlb.hh"
#include "workloads/workload.hh"

namespace
{

using namespace fusion;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(static_cast<Tick>(i % 97), [&] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_CacheArrayLookup(benchmark::State &state)
{
    mem::CacheArray tags(
        mem::CacheGeometry{64 * 1024, 8, kLineBytes});
    Rng rng(7);
    for (int i = 0; i < 512; ++i) {
        Addr a = lineAlign(rng.below(1 << 22));
        if (auto *w = tags.victim(a))
            tags.install(*w, a);
    }
    Rng probe(13);
    for (auto _ : state) {
        Addr a = lineAlign(probe.below(1 << 22));
        benchmark::DoNotOptimize(tags.find(a));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayLookup);

void
BM_DirectoryMesiTransaction(benchmark::State &state)
{
    SimContext ctx;
    mem::Dram dram(ctx, mem::DramParams{});
    host::Llc llc(ctx, host::LlcParams{}, dram);
    interconnect::Link link(
        ctx, interconnect::LinkParams{
                 "l", energy::LinkClass::HostL1ToL2, 2, "m", "d"});
    host::HostL1 l1(ctx, host::HostL1Params{}, llc, &link);
    Rng rng(3);
    for (auto _ : state) {
        bool done = false;
        l1.access(lineAlign(rng.below(1 << 24)), rng.below(2) == 0,
                  [&] { done = true; });
        ctx.eq.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectoryMesiTransaction);

void
BM_TraceCapture(benchmark::State &state)
{
    for (auto _ : state) {
        trace::Recorder rec("bm");
        trace::VaAllocator va;
        FuncId f = rec.addFunction({"f", 0, 2, 500});
        trace::Traced<int> arr(rec, va, 4096);
        rec.beginInvocation(f);
        for (std::size_t i = 0; i < 4096; ++i) {
            rec.intOps(4);
            arr[i] = static_cast<int>(i);
        }
        rec.end();
        auto prog = rec.take();
        benchmark::DoNotOptimize(prog.opCount());
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_TraceCapture);

void
BM_AxTlbTranslate(benchmark::State &state)
{
    SimContext ctx;
    vm::PageTable pt;
    pt.ensureMappedRange(1, 0x10000000, 1 << 22);
    vm::AxTlb tlb(ctx, vm::AxTlbParams{}, pt);
    Rng rng(5);
    for (auto _ : state) {
        Addr va = 0x10000000 + (rng.below(1 << 22) & ~7ull);
        bool done = false;
        tlb.translate(1, va, [&](Addr) { done = true; });
        ctx.eq.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AxTlbTranslate);

void
BM_AccLeaseRoundTrip(benchmark::State &state)
{
    SimContext ctx;
    mem::Dram dram(ctx, mem::DramParams{});
    host::Llc llc(ctx, host::LlcParams{}, dram);
    vm::PageTable pt;
    pt.ensureMappedRange(1, 0x10000000, 1 << 22);
    accel::TileParams tp;
    tp.numAccels = 1;
    accel::FusionTile tile(ctx, tp, llc, pt);
    Rng rng(11);
    for (auto _ : state) {
        Addr va = 0x10000000 + (rng.below(1 << 20) & ~63ull);
        bool done = false;
        tile.l1x().requestLease(
            0, va, 1, 500, false, true,
            [&](const accel::LeaseGrant &) { done = true; });
        ctx.eq.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AccLeaseRoundTrip);

void
BM_WindowSegmentation(benchmark::State &state)
{
    trace::Recorder rec("bm");
    trace::VaAllocator va;
    FuncId f = rec.addFunction({"f", 0, 2, 500});
    trace::Traced<int> arr(rec, va, 1 << 14);
    rec.beginInvocation(f);
    Rng rng(17);
    for (int i = 0; i < 20000; ++i)
        arr[rng.below(1 << 14)] = i;
    rec.end();
    auto prog = rec.take();
    for (auto _ : state) {
        auto wins = trace::segmentWindows(prog.invocations[0], 64);
        benchmark::DoNotOptimize(wins.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowSegmentation);

void
BM_ForwardPlanning(benchmark::State &state)
{
    auto w = fusion::workloads::makeWorkload("fft");
    auto prog = w->build(fusion::workloads::Scale::Small);
    for (auto _ : state) {
        auto plan = trace::planForwarding(prog);
        benchmark::DoNotOptimize(plan.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForwardPlanning);

} // namespace

BENCHMARK_MAIN();
