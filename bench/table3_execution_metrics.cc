/**
 * @file
 * Table 3 — "Accelerator Execution Metrics": per function, the
 * cycles spent accelerated (KCyc), the lease time LT assigned to
 * its blocks, its share of total accelerator energy (%En.), and the
 * per-benchmark cache/compute energy ratio — all measured on the
 * FUSION configuration.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace fusion;
    auto opt = bench::parseArgs(argc, argv);
    const auto kKind =
        bench::kindOrDefault(opt, core::SystemKind::Fusion);
    bench::banner("Table 3: Accelerator Execution Metrics",
                  "Table 3 (Section 4)");

    const auto names = workloads::workloadNames();
    // The renderer needs the function metadata (LT column), so the
    // programs are built here and attached to the jobs — the sweep
    // reuses rather than rebuilds them.
    std::vector<sweep::SweepJob> jobs;
    std::vector<std::shared_ptr<const trace::Program>> progs;
    for (const auto &name : names) {
        progs.push_back(std::make_shared<const trace::Program>(
            bench::mustBuild(name, opt.scale)));
        auto j = bench::job(kKind, name,
                            opt.scale);
        j.prog = progs.back();
        jobs.push_back(std::move(j));
    }
    auto results =
        bench::runSweep("table3_execution_metrics", jobs, opt);

    std::printf("%-10s %-10s %9s %6s %6s   (cache/compute ratio "
                "per bench)\n",
                "bench", "function", "KCyc", "LT", "%En.");
    std::printf("%s\n", std::string(64, '-').c_str());

    for (std::size_t w = 0; w < names.size(); ++w) {
        const std::string &name = names[w];
        const trace::Program &prog = *progs[w];
        const core::RunResult &r = results[w];

        double energy_total = 0.0;
        for (const auto &[f, e] : r.funcEnergyPj)
            energy_total += e;

        double cache_pj = r.axcCachePj();
        double compute_pj =
            r.component(energy::comp::kAxcCompute);
        double ratio = compute_pj > 0 ? cache_pj / compute_pj : 0;

        bool first = true;
        for (const auto &fm : prog.functions) {
            auto it = r.funcCycles.find(fm.name);
            std::uint64_t cyc =
                it == r.funcCycles.end() ? 0 : it->second;
            auto eit = r.funcEnergyPj.find(fm.name);
            double pct_en =
                energy_total > 0 && eit != r.funcEnergyPj.end()
                    ? 100.0 * eit->second / energy_total
                    : 0.0;
            std::printf("%-10s %-10s %9.1f %6llu %6.1f%s\n",
                        first ? bench::displayName(name).c_str()
                              : "",
                        fm.name.c_str(),
                        static_cast<double>(cyc) / 1000.0,
                        static_cast<unsigned long long>(
                            fm.leaseTime),
                        pct_en,
                        first ? ("   [" + core::fmt(ratio, 2) + "]")
                                    .c_str()
                              : "");
            first = false;
        }
    }
    std::printf("\nLT values follow Table 3; KCyc and energy shares "
                "are measured.\n");
    return 0;
}
