/**
 * @file
 * Table 2 — "System parameters": prints the simulated
 * configuration, including the derived CACTI-style energy/latency
 * figures each structure actually uses.
 */

#include "bench_util.hh"

#include "energy/link_energy.hh"
#include "energy/sram_model.hh"

namespace
{

void
printSram(const char *name, fusion::energy::SramParams p)
{
    auto f = fusion::energy::evaluateSram(p);
    std::printf("  %-22s %6llu KB %2u-way %2u banks | %5.2f pJ/rd "
                "%5.2f pJ/wr %2llu cyc\n",
                name,
                static_cast<unsigned long long>(p.capacityBytes /
                                                1024),
                p.assoc, p.banks, f.readPj, f.writePj,
                static_cast<unsigned long long>(f.latency));
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace fusion;
    // Static configuration dump — accepts the shared CLI so every
    // harness responds to the same flags.
    auto opt = bench::parseArgs(argc, argv);
    bench::noteFixedComparison(opt,
                               "Table 2 (system parameters)");
    bench::banner("Table 2: System parameters", "Table 2 (Section 4)");

    auto cfg = core::SystemConfig::preset(
        core::SystemConfig::Preset::Paper,
        core::SystemKind::Fusion);

    std::printf("Host core: 2 GHz, %u-wide issue, %u in-flight "
                "loads, %u-entry store queue\n",
                cfg.hostCore.issueWidth, cfg.hostCore.maxOutstanding,
                cfg.hostCore.storeQueue);
    std::printf("LLC: %llu MB, %u-way, %u-tile NUCA ring "
                "(bank %llu cyc + %llu cyc/hop), directory MESI\n",
                static_cast<unsigned long long>(
                    cfg.llc.capacityBytes >> 20),
                cfg.llc.assoc, cfg.llc.nucaBanks,
                static_cast<unsigned long long>(cfg.llc.bankLatency),
                static_cast<unsigned long long>(cfg.llc.hopLatency));
    std::printf("DRAM: %u channels, open page, %llu/%llu cycle "
                "hit/miss latency\n\n",
                cfg.dram.channels,
                static_cast<unsigned long long>(
                    cfg.dram.rowHitLatency),
                static_cast<unsigned long long>(
                    cfg.dram.rowMissLatency));

    std::printf("Accelerator cache hierarchy (45nm ITRS-HP "
                "analytical fit):\n");
    printSram("Scratchpad",
              {cfg.scratchpadBytes, 1, 64, 1,
               energy::SramKind::ScratchpadRam});
    printSram("Private L0X",
              {cfg.l0xBytes, cfg.l0xAssoc, 64, 1,
               energy::SramKind::TimestampCache});
    printSram("Shared L1X",
              {cfg.l1xBytes, cfg.l1xAssoc, 64, cfg.l1xBanks,
               energy::SramKind::TimestampCache});
    printSram("Host L1",
              {cfg.hostL1Bytes, cfg.hostL1Assoc, 64, 1,
               energy::SramKind::Cache});
    auto large = core::SystemConfig::preset(
        core::SystemConfig::Preset::AxcLarge,
        core::SystemKind::Fusion);
    printSram("L0X-Large",
              {large.l0xBytes, large.l0xAssoc, 64, 1,
               energy::SramKind::TimestampCache});
    printSram("L1X-Large",
              {large.l1xBytes, large.l1xAssoc, 64, large.l1xBanks,
               energy::SramKind::TimestampCache});

    std::printf("\nLink energy parameters (Table 2):\n");
    std::printf("  Accelerator-L1X   %.1f pJ/byte\n",
                energy::linkPjPerByte(energy::LinkClass::AxcToL1x));
    std::printf("  L1X-Host L2       %.1f pJ/byte\n",
                energy::linkPjPerByte(energy::LinkClass::L1xToL2));
    std::printf("  L0X-L0X (Dx)      %.1f pJ/byte\n",
                energy::linkPjPerByte(energy::LinkClass::L0xToL0x));
    std::printf("\nDMA engine: oracle, at-LLC, %u outstanding line "
                "transactions\n",
                cfg.dmaMaxOutstanding);
    return 0;
}
