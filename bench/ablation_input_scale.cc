/**
 * @file
 * Ablation — input-scale sensitivity: do the paper's conclusions
 * survive 4x larger inputs? Each benchmark runs at Small, Paper and
 * Large scale; the SHARED/FUSION cycle-time ratios vs SCRATCH show
 * where working sets cross the cache capacities.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace fusion;
    // This harness sweeps the scale axis itself; the shared --small
    // flag is accepted but has no effect.
    auto opt = bench::parseArgs(argc, argv);
    bench::banner("Ablation: input-scale sensitivity",
                  "robustness of Lessons 1-2 across input sizes");

    // The large HIST/TRACK runs are the slowest part of the whole
    // bench suite; restrict to a representative subset.
    const std::vector<std::string> kNames = {"fft", "adpcm",
                                             "filter", "disparity"};
    const auto kScales = {workloads::Scale::Small,
                          workloads::Scale::Paper,
                          workloads::Scale::Large};
    // --system overrides the compared set; the first kind listed
    // becomes the ratio baseline.
    const auto kKinds = bench::kindsOrDefault(
        opt, {core::SystemKind::Scratch, core::SystemKind::Shared,
              core::SystemKind::Fusion});
    const std::size_t nk = kKinds.size();
    std::vector<sweep::SweepJob> jobs;
    for (const auto &name : kNames)
        for (auto scale : kScales)
            for (auto kind : kKinds) {
                auto j = bench::job(kind, name, scale);
                j.tag += std::string("/") + workloads::scaleName(scale);
                jobs.push_back(std::move(j));
            }
    auto results =
        bench::runSweep("ablation_input_scale", jobs, opt);

    const char *base = core::systemKindShortName(kKinds.front());
    std::printf("%-8s %-6s %10s |", "bench", "scale", "WSet(kB)");
    for (std::size_t i = 1; i < nk; ++i) {
        std::printf(" %5s/%s",
                    core::systemKindShortName(kKinds[i]), base);
    }
    std::printf(" | %14s\n",
                (std::string("last energy/") + base).c_str());
    std::printf("%s\n", std::string(66, '-').c_str());

    std::size_t idx = 0;
    for (const auto &name : kNames) {
        for (auto scale : kScales) {
            const core::RunResult &sc = results[idx];
            std::printf(
                "%-8s %-6s %10.1f |",
                scale == workloads::Scale::Small
                    ? bench::displayName(name).c_str()
                    : "",
                workloads::scaleName(scale),
                static_cast<double>(sc.workingSetBytes) / 1024.0);
            for (std::size_t i = 1; i < nk; ++i) {
                const core::RunResult &r = results[idx + i];
                std::printf(" %8.3f",
                            static_cast<double>(r.accelCycles) /
                                static_cast<double>(sc.accelCycles));
            }
            const core::RunResult &last = results[idx + nk - 1];
            std::printf(" | %13.3f\n",
                        last.hierarchyPj() / sc.hierarchyPj());
            idx += nk;
        }
        std::printf("\n");
    }
    std::printf("Ratios < 1 favour the cached systems; growing "
                "inputs shift benchmarks\nfrom the "
                "scratchpad-friendly regime into the DMA-bound "
                "one.\n");
    return 0;
}
