/**
 * @file
 * Table 5 — FUSION-Dx write forwarding: forwarded block counts and
 * the energy saved on the accelerator cache and tile-link
 * components (Lesson 6).
 *
 * Two accountings are reported:
 *  (a) measured: the simulated FUSION vs FUSION-Dx component
 *      deltas. Our invocations are strictly serial (a sequential
 *      program), so only lines alive in the producer's L0X at
 *      invocation end can be pushed — a conservative realization.
 *  (b) paper-style per-block accounting over every trace-identified
 *      producer->consumer line: each forwarded block saves 1 L1X
 *      writeback + 1 L1X read + 1 L0X->L1X request and costs one
 *      L0X->L0X transfer (Section 5.4).
 */

#include "bench_util.hh"

#include "energy/link_energy.hh"
#include "energy/sram_model.hh"
#include "interconnect/message.hh"

int
main(int argc, char **argv)
{
    using namespace fusion;
    auto opt = bench::parseArgs(argc, argv);
    bench::noteFixedComparison(opt, "Table 5 (FUSION vs FUSION-Dx)");
    bench::banner("Table 5: Inter-AXC write forwarding (FUSION-Dx)",
                  "Table 5 (Section 5.4, Lesson 6)");

    // Paper-style per-block delta from the energy model.
    auto cfg = core::SystemConfig::preset(
        core::SystemConfig::Preset::Paper,
        core::SystemKind::Fusion);
    energy::SramParams l1xp{cfg.l1xBytes, cfg.l1xAssoc, 64,
                            cfg.l1xBanks,
                            energy::SramKind::TimestampCache};
    auto l1xf = energy::evaluateSram(l1xp);
    double per_block_saved =
        // 1 writeback (data msg) + 1 read response (data msg) +
        // 1 request (ctrl) on the 0.4 pJ/B tile link...
        (2.0 * interconnect::messageBytes(
                   interconnect::MsgClass::Data) +
         interconnect::messageBytes(
             interconnect::MsgClass::Control)) *
            energy::linkPjPerByte(energy::LinkClass::AxcToL1x) +
        // ...plus 1 L1X write + 1 L1X read.
        l1xf.writePj + l1xf.readPj;
    double per_block_cost =
        interconnect::messageBytes(interconnect::MsgClass::Data) *
            energy::linkPjPerByte(energy::LinkClass::L0xToL0x) +
        interconnect::messageBytes(
            interconnect::MsgClass::Control) *
            energy::linkPjPerByte(energy::LinkClass::AxcToL1x);

    std::printf("per forwarded block: saves %.1f pJ, costs %.1f pJ "
                "(L0X->L0X at 0.1 pJ/B)\n\n",
                per_block_saved, per_block_cost);

    const auto names = workloads::workloadNames();
    // The paper-style accounting walks the trace's forwarding plan,
    // so build and attach the programs.
    std::vector<sweep::SweepJob> jobs;
    std::vector<std::shared_ptr<const trace::Program>> progs;
    for (const auto &name : names) {
        progs.push_back(std::make_shared<const trace::Program>(
            bench::mustBuild(name, opt.scale)));
        for (auto kind : {core::SystemKind::Fusion,
                          core::SystemKind::FusionDx}) {
            auto j = bench::job(kind, name, opt.scale);
            j.prog = progs.back();
            jobs.push_back(std::move(j));
        }
    }
    auto results =
        bench::runSweep("table5_write_forwarding", jobs, opt);

    std::printf("%-8s %10s %10s | %9s %9s | %10s %9s\n", "bench",
                "plan blks", "fwd blks", "dAXC$ %", "dLink %",
                "paper blks", "paper dE");
    std::printf("%s\n", std::string(76, '-').c_str());

    for (std::size_t w = 0; w < names.size(); ++w) {
        const std::string &name = names[w];
        auto plan = trace::planForwarding(*progs[w]);
        std::uint64_t plan_blocks = 0;
        for (const auto &[inv, lines] : plan)
            plan_blocks += lines.size();

        const core::RunResult &fu = results[w * 2];
        const core::RunResult &dx = results[w * 2 + 1];

        double cache_save =
            fu.axcCachePj() > 0
                ? 100.0 * (fu.axcCachePj() - dx.axcCachePj()) /
                      fu.axcCachePj()
                : 0.0;
        double link_save =
            fu.axcLinkPj() > 0
                ? 100.0 * (fu.axcLinkPj() - dx.axcLinkPj()) /
                      fu.axcLinkPj()
                : 0.0;
        double paper_de_uj =
            static_cast<double>(plan_blocks) *
            (per_block_saved - per_block_cost) / 1e6;

        std::printf("%-8s %10llu %10llu | %8.2f%% %8.2f%% | %10llu "
                    "%8.3fuJ\n",
                    bench::displayName(name).c_str(),
                    static_cast<unsigned long long>(plan_blocks),
                    static_cast<unsigned long long>(dx.l0xForwards),
                    cache_save, link_save,
                    static_cast<unsigned long long>(plan_blocks),
                    paper_de_uj);
    }
    std::printf("\n'plan blks' = trace-identified producer->consumer "
                "lines (the paper's #FWD);\n'fwd blks' = pushes the "
                "serial-invocation simulator realizes.\n");
    return 0;
}
