/**
 * @file
 * Ablation — AUTO mode vs the static organizations: the
 * orchestrator (src/orchestrator/) picks a coherence mode per
 * invocation; this harness runs every workload under AUTO and under
 * the four static systems of the paper's evaluation and reports how
 * close AUTO lands to the per-workload best static choice (which no
 * single static system achieves across the whole suite).
 *
 * --system K[,K...] overrides the static comparison set; AUTO is
 * always included.
 */

#include <algorithm>
#include <cmath>

#include "bench_util.hh"
#include "orchestrator/orchestrator.hh"

int
main(int argc, char **argv)
{
    using namespace fusion;
    auto opt = bench::parseArgs(argc, argv);
    bench::banner("Ablation: AUTO mode vs static organizations",
                  "dynamic per-invocation mode selection (no paper "
                  "counterpart)");

    // The static field AUTO competes against.
    std::vector<core::SystemKind> statics = bench::kindsOrDefault(
        opt, {core::SystemKind::Scratch, core::SystemKind::Shared,
              core::SystemKind::Fusion, core::SystemKind::FusionDx});
    statics.erase(std::remove(statics.begin(), statics.end(),
                              core::SystemKind::Auto),
                  statics.end());
    if (statics.empty())
        fusion_fatal("--system: need at least one static kind to "
                     "compare AUTO against");
    const std::size_t nk = statics.size();

    const auto names = workloads::workloadNames();
    std::vector<sweep::SweepJob> jobs;
    for (const auto &name : names) {
        for (auto kind : statics)
            jobs.push_back(bench::job(kind, name, opt.scale));
        jobs.push_back(
            bench::job(core::SystemKind::Auto, name, opt.scale));
    }
    auto results = bench::runSweep("ablation_auto_mode", jobs, opt);

    std::printf("%-8s |", "bench");
    for (auto kind : statics)
        std::printf(" %10s", core::systemKindShortName(kind));
    std::printf(" | %10s %9s %3s | %s\n", "auto", "vs best", "sw",
                "mode mix");
    std::printf("%s\n", std::string(96, '-').c_str());

    std::size_t within = 0;
    for (std::size_t w = 0; w < names.size(); ++w) {
        const std::size_t base = w * (nk + 1);
        std::uint64_t best = ~0ull;
        std::printf("%-8s |",
                    bench::displayName(names[w]).c_str());
        for (std::size_t i = 0; i < nk; ++i) {
            std::uint64_t c = results[base + i].accelCycles;
            best = std::min(best, c);
            std::printf(" %10llu",
                        static_cast<unsigned long long>(c));
        }
        const core::RunResult &au = results[base + nk];
        double ratio = static_cast<double>(au.accelCycles) /
                       static_cast<double>(best);
        // "Within" = the per-invocation choice plus its switch
        // costs lands inside 5% of the best static system.
        if (ratio <= 1.05)
            ++within;
        std::string mix;
        for (const auto &[mode, n] : au.modeInvocations) {
            if (!mix.empty())
                mix += " ";
            mix += mode + ":" + std::to_string(n);
        }
        std::printf(" | %10llu %8.3fx %3llu | %s\n",
                    static_cast<unsigned long long>(au.accelCycles),
                    ratio,
                    static_cast<unsigned long long>(au.modeSwitches),
                    mix.c_str());
    }
    std::printf("%s\n", std::string(96, '-').c_str());
    std::printf("AUTO within-or-better than the best static system "
                "(<= 1.05x) on %zu of %zu workloads\n",
                within, names.size());
    return 0;
}
