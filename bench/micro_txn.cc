/**
 * @file
 * Transaction-path throughput microbenchmark: end-to-end events/sec
 * of the full simulator on fig6b-style FUSION runs, plus a
 * component-level transaction churn loop with a counting allocator.
 *
 * Two kinds of rows:
 *
 *  - "churn.hit" / "churn.miss": a single accelerator issuing a
 *    serial chain of loads at a real FUSION tile (L0X -> L1X/ACC ->
 *    LLC -> DRAM). The hit row stays resident in the L0X; the miss
 *    row cycles a footprint 4x the L0X so every access walks the
 *    MSHR/lease path and hits in the L1X. A global operator-new hook
 *    counts heap allocations across the measured (post-warmup)
 *    region — with the SmallFn/pooled-MSHR/ledger-handle transaction
 *    path the steady state performs zero (DESIGN.md section 8).
 *
 *  - one row per workload: a complete FUSION simulation via
 *    core::runProgram, reporting the RunResult::perf block
 *    (hostSeconds / events / eventsPerSecond) of the best of
 *    --repeat runs.
 *
 *   micro_txn [--churn-ops N] [--workloads A,B,..] [--scale S]
 *             [--repeat N] [--json FILE] [--compare FILE]
 *             [--assert-zero-alloc]
 *
 * --compare loads a previous --json report and prints the per-row
 * events/sec ratio plus the geometric mean over the workload rows,
 * which is how the speedup over a pre-change build is measured.
 * --assert-zero-alloc turns nonzero steady-state churn allocation
 * counts into a fatal error (used by the TxnBenchSmoke ctest entry).
 */

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "accel/tile.hh"
#include "core/runner.hh"
#include "sim/logging.hh"
#include "trace/store.hh"
#include "vm/page_table.hh"

// ---------------------------------------------------------------------
// Counting allocator: every global allocation is tallied while
// g_countAllocs is set. Kept deliberately simple — malloc/free with
// a relaxed atomic counter — since only the churn loop is measured.
// ---------------------------------------------------------------------

namespace
{

std::atomic<std::uint64_t> g_allocCount{0};
std::atomic<bool> g_countAllocs{false};

void *
countedAlloc(std::size_t n)
{
    if (g_countAllocs.load(std::memory_order_relaxed))
        g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc{};
}

} // namespace

void *operator new(std::size_t n) { return countedAlloc(n); }
void *operator new[](std::size_t n) { return countedAlloc(n); }
void *
operator new(std::size_t n, std::align_val_t a)
{
    if (g_countAllocs.load(std::memory_order_relaxed))
        g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::aligned_alloc(static_cast<std::size_t>(a),
                                     (n + static_cast<std::size_t>(a) -
                                      1) &
                                         ~(static_cast<std::size_t>(a) -
                                           1)))
        return p;
    throw std::bad_alloc{};
}
void *
operator new[](std::size_t n, std::align_val_t a)
{
    return operator new(n, a);
}
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace fusion;

/** A minimal FUSION tile under one accelerator: DRAM + LLC + tile. */
struct TxnRig
{
    SimContext ctx;
    mem::Dram dram;
    host::Llc llc;
    vm::PageTable pt;
    std::unique_ptr<accel::FusionTile> tile;

    TxnRig() : dram(ctx, {}), llc(ctx, {}, dram)
    {
        accel::TileParams tp;
        tp.numAccels = 1;
        tile = std::make_unique<accel::FusionTile>(ctx, tp, llc, pt);
        // One long lease so the churn loop measures the transaction
        // path, not lease renewal storms.
        tile->l0x(0).setFunction(50'000'000, 1);
        pt.ensureMappedRange(1, kBase, 1 << 22);
    }

    static constexpr Addr kBase = 0x10000000;
};

/** Serial load chain over a cyclic line set. */
struct TxnChurn
{
    TxnRig &rig;
    std::vector<Addr> lines;
    std::size_t idx = 0;
    std::uint64_t remaining = 0;

    void
    next()
    {
        Addr a = lines[idx];
        idx = idx + 1 == lines.size() ? 0 : idx + 1;
        rig.tile->l0x(0).access(a, 4, false, [this] {
            if (remaining > 0) {
                --remaining;
                next();
            }
        });
    }
};

struct Row
{
    std::string name;
    double hostSeconds = 0.0;
    std::uint64_t events = 0;
    std::uint64_t allocs = 0;   ///< churn rows only
    bool hasAllocs = false;

    double
    rate() const
    {
        return hostSeconds > 0.0
                   ? static_cast<double>(events) / hostSeconds
                   : 0.0;
    }
};

/**
 * One churn measurement: warm the working set once (fills, lease
 * grants, vector growth), then measure @p ops transactions with the
 * allocation counter armed.
 */
Row
runChurn(const std::string &name, std::size_t num_lines,
         std::uint64_t ops)
{
    TxnRig rig;
    TxnChurn churn{rig, {}, 0, 0};
    for (std::size_t i = 0; i < num_lines; ++i)
        churn.lines.push_back(TxnRig::kBase + i * kLineBytes);

    // Warm-up: two full passes so misses fill and every container
    // reaches steady-state capacity.
    churn.remaining = 2 * num_lines;
    churn.next();
    rig.ctx.eq.run();

    churn.idx = 0;
    churn.remaining = ops;
    g_allocCount.store(0, std::memory_order_relaxed);
    g_countAllocs.store(true, std::memory_order_relaxed);
    std::uint64_t ev0 = rig.ctx.eq.executed();
    auto t0 = std::chrono::steady_clock::now();
    churn.next();
    rig.ctx.eq.run();
    auto t1 = std::chrono::steady_clock::now();
    g_countAllocs.store(false, std::memory_order_relaxed);

    Row r;
    r.name = name;
    r.hostSeconds = std::chrono::duration<double>(t1 - t0).count();
    r.events = rig.ctx.eq.executed() - ev0;
    r.allocs = g_allocCount.load(std::memory_order_relaxed);
    r.hasAllocs = true;
    return r;
}

/** Best-of-@p repeat complete FUSION run of one workload. */
Row
runWorkload(const std::string &workload, workloads::Scale scale,
            int repeat)
{
    auto prog = core::buildProgram(workload, scale);
    if (!prog)
        fusion_fatal(core::unknownWorkloadMessage(workload));
    if (trace::globalStore()) {
        // Replay regression (--trace-dir): the build above recorded
        // (or replayed) the trace; a second build must replay from
        // disk and round-trip byte-exactly, so the measured runs
        // below are simulating the very same program either way.
        auto replayed = core::buildProgram(workload, scale);
        fusion_assert(replayed && trace::serializeProgramPayload(
                                      *replayed) ==
                                      trace::serializeProgramPayload(
                                          *prog),
                      "trace replay of '", workload,
                      "' is not byte-exact");
    }
    auto cfg = core::SystemConfig::preset(
        core::SystemConfig::Preset::Paper,
        core::SystemKind::Fusion);

    Row r;
    r.name = workload;
    for (int i = 0; i < repeat; ++i) {
        core::RunResult res = core::runProgram(cfg, *prog);
        fusion_assert(!res.failed(), "run failed: ", workload);
        fusion_assert(res.perf.has_value(),
                      "perf block missing for ", workload);
        if (i == 0 || res.perf->hostSeconds < r.hostSeconds) {
            r.hostSeconds = res.perf->hostSeconds;
            r.events = res.perf->events;
        }
    }
    return r;
}

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--churn-ops N] [--workloads A,B,..] "
        "[--scale small|paper] [--repeat N] [--json FILE]\n"
        "          [--compare FILE] [--assert-zero-alloc] "
        "[--trace-dir DIR]\n"
        "  --churn-ops N        transactions per churn row "
        "(default 200000; 0 disables)\n"
        "  --workloads LIST     comma-separated end-to-end rows "
        "(default: all; 'none' disables)\n"
        "  --scale S            workload input scale "
        "(default small)\n"
        "  --repeat N           runs per workload row, best kept "
        "(default 3)\n"
        "  --json FILE          machine-readable report with perf "
        "objects\n"
        "  --compare FILE       print events/sec ratios vs a "
        "previous --json report\n"
        "  --assert-zero-alloc  fail if a churn row allocated on "
        "the steady-state path\n"
        "  --trace-dir DIR      record/replay workload traces via "
        "DIR and assert the\n"
        "                       replayed trace is byte-exact\n",
        argv0);
}

/** Pull "name":"X" ... "eventsPerSecond":V pairs out of a report. */
std::vector<std::pair<std::string, double>>
parseReportRates(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fusion_fatal("cannot open ", path);
    std::stringstream ss;
    ss << in.rdbuf();
    std::string s = ss.str();
    std::vector<std::pair<std::string, double>> out;
    std::size_t pos = 0;
    while ((pos = s.find("\"name\":\"", pos)) != std::string::npos) {
        pos += 8;
        std::size_t end = s.find('"', pos);
        std::string name = s.substr(pos, end - pos);
        std::size_t eps = s.find("\"eventsPerSecond\":", pos);
        if (eps == std::string::npos)
            break;
        out.emplace_back(
            name, std::strtod(s.c_str() + eps + 18, nullptr));
        pos = eps;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t churn_ops = 200'000;
    std::string workload_list = "all";
    workloads::Scale scale = workloads::Scale::Small;
    int repeat = 3;
    std::string jsonPath;
    std::string comparePath;
    bool assert_zero_alloc = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage(argv[0]);
                fusion_fatal("missing value for ", a);
            }
            return argv[++i];
        };
        if (a == "--churn-ops") {
            churn_ops = std::strtoull(next().c_str(), nullptr, 10);
        } else if (a == "--workloads") {
            workload_list = next();
        } else if (a == "--scale") {
            std::string s = next();
            if (s == "small")
                scale = workloads::Scale::Small;
            else if (s == "paper")
                scale = workloads::Scale::Paper;
            else
                fusion_fatal("unknown --scale: ", s);
        } else if (a == "--repeat") {
            repeat = static_cast<int>(
                std::strtol(next().c_str(), nullptr, 10));
            if (repeat < 1)
                fusion_fatal("--repeat must be >= 1");
        } else if (a == "--json") {
            jsonPath = next();
        } else if (a == "--compare") {
            comparePath = next();
        } else if (a == "--assert-zero-alloc") {
            assert_zero_alloc = true;
        } else if (a == "--trace-dir") {
            trace::setGlobalStoreDir(next());
        } else if (a == "-h" || a == "--help") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            fusion_fatal("unknown option: ", a);
        }
    }

    std::vector<std::string> workload_names;
    if (workload_list == "all") {
        workload_names = workloads::workloadNames();
    } else if (workload_list != "none") {
        for (std::size_t pos = 0; pos < workload_list.size();) {
            std::size_t comma = workload_list.find(',', pos);
            if (comma == std::string::npos)
                comma = workload_list.size();
            workload_names.push_back(
                workload_list.substr(pos, comma - pos));
            pos = comma + 1;
        }
    }

    std::printf("=== transaction-path throughput ===\n");
    std::printf("%14s %12s %14s %10s\n", "row", "events", "events/s",
                "allocs");

    std::vector<Row> rows;
    if (churn_ops > 0) {
        rows.push_back(runChurn("churn.hit", 16, churn_ops));
        // 4x the 4 KB L0X: every access misses the L0X, hits the
        // 64 KB L1X — the MSHR + lease path.
        rows.push_back(runChurn("churn.miss", 256, churn_ops));
    }
    for (const auto &w : workload_names)
        rows.push_back(runWorkload(w, scale, repeat));

    bool alloc_violation = false;
    for (const Row &r : rows) {
        std::printf("%14s %12llu %14.3e %10s\n", r.name.c_str(),
                    static_cast<unsigned long long>(r.events),
                    r.rate(),
                    r.hasAllocs
                        ? std::to_string(r.allocs).c_str()
                        : "-");
        if (r.hasAllocs && r.allocs != 0)
            alloc_violation = true;
    }

    if (!comparePath.empty()) {
        auto base = parseReportRates(comparePath);
        double logsum = 0.0;
        double min_ratio = 0.0, max_ratio = 0.0;
        std::string min_row, max_row;
        std::size_t n = 0;
        std::printf("\n%14s %10s\n", "row", "speedup");
        for (const Row &r : rows) {
            for (const auto &[name, rate] : base) {
                if (name != r.name || rate <= 0.0 ||
                    r.rate() <= 0.0)
                    continue;
                double ratio = r.rate() / rate;
                std::printf("%14s %9.2fx\n", r.name.c_str(), ratio);
                // The headline geomean covers the end-to-end
                // workload rows; churn rows print for reference.
                if (!r.hasAllocs) {
                    logsum += std::log(ratio);
                    if (n == 0 || ratio < min_ratio) {
                        min_ratio = ratio;
                        min_row = r.name;
                    }
                    if (n == 0 || ratio > max_ratio) {
                        max_ratio = ratio;
                        max_row = r.name;
                    }
                    ++n;
                }
                break;
            }
        }
        // Per-config variance beside the mean: a single outlier
        // workload must not hide behind the geomean.
        if (n > 0) {
            std::printf("geomean speedup (workload rows): %.2fx "
                        "(min %.2fx @%s, max %.2fx @%s)\n",
                        std::exp(logsum /
                                 static_cast<double>(n)),
                        min_ratio, min_row.c_str(), max_ratio,
                        max_row.c_str());
        }
    }

    if (!jsonPath.empty()) {
        std::FILE *f = std::fopen(jsonPath.c_str(), "w");
        if (!f)
            fusion_fatal("cannot open ", jsonPath);
        std::fprintf(f,
                     "{\"bench\":\"micro_txn\",\"churnOps\":%llu,"
                     "\"repeat\":%d,\"rows\":[",
                     static_cast<unsigned long long>(churn_ops),
                     repeat);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            std::fprintf(
                f,
                "%s{\"name\":\"%s\",\"perf\":{\"hostSeconds\":%.17g,"
                "\"events\":%llu,\"eventsPerSecond\":%.17g}",
                i ? "," : "", r.name.c_str(), r.hostSeconds,
                static_cast<unsigned long long>(r.events),
                r.rate());
            if (r.hasAllocs)
                std::fprintf(f, ",\"allocs\":%llu",
                             static_cast<unsigned long long>(
                                 r.allocs));
            std::fprintf(f, "}");
        }
        std::fprintf(f, "]}\n");
        std::fclose(f);
        std::fprintf(stderr, "txn bench report written to %s\n",
                     jsonPath.c_str());
    }

    if (assert_zero_alloc && alloc_violation)
        fusion_fatal("steady-state transaction path allocated");
    return 0;
}
