/**
 * @file
 * Ablation — L0X capacity sweep: how much filtering each L0X size
 * buys and where the hit-energy cost overtakes it (the design
 * space between Lesson 3 and Lesson 7).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace fusion;
    auto opt = bench::parseArgs(argc, argv);
    const auto kKind =
        bench::kindOrDefault(opt, core::SystemKind::Fusion);
    bench::banner("Ablation: L0X capacity sweep (FUSION)",
                  "design space between Lessons 3 and 7");

    const std::uint64_t kSizes[] = {1024, 2048, 4096, 8192, 16384};
    const std::vector<std::string> kNames = {"fft", "filter",
                                             "tracking"};
    std::vector<sweep::SweepJob> jobs;
    for (const auto &name : kNames) {
        for (std::uint64_t bytes : kSizes) {
            auto j = bench::job(kKind, name,
                                opt.scale);
            j.cfg.l0xBytes = bytes;
            j.tag += "/l0x=" + std::to_string(bytes);
            jobs.push_back(std::move(j));
        }
    }
    auto results = bench::runSweep("ablation_l0x_size", jobs, opt);

    std::printf("%-8s | %8s %12s %12s %12s\n", "bench", "L0X(B)",
                "cycles", "L1X accesses", "energy(uJ)");
    std::printf("%s\n", std::string(60, '-').c_str());

    std::size_t idx = 0;
    for (const auto &name : kNames) {
        bool first = true;
        for (std::uint64_t bytes : kSizes) {
            const core::RunResult &r = results[idx++];
            std::printf("%-8s | %8llu %12llu %12llu %12.3f\n",
                        first ? bench::displayName(name).c_str()
                              : "",
                        static_cast<unsigned long long>(bytes),
                        static_cast<unsigned long long>(
                            r.accelCycles),
                        static_cast<unsigned long long>(
                            r.l1xHits + r.l1xMisses),
                        r.hierarchyPj() / 1e6);
            first = false;
        }
        std::printf("\n");
    }
    return 0;
}
