/**
 * @file
 * Figure 7 — AXC-Large (8K L0X / 256K L1X) vs AXC-Small (4K/64K):
 * per benchmark, energy and cycle-time ratios of Large over Small
 * for the FUSION system (Lesson 7: larger may not be better).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace fusion;
    auto opt = bench::parseArgs(argc, argv);
    bench::noteFixedComparison(opt, "Figure 7 (FUSION vs AXC-LARGE FUSION)");
    bench::banner("Figure 7: AXC-Large vs AXC-Small (FUSION)",
                  "Figure 7 (Section 5.5, Lesson 7)");

    const auto names = workloads::workloadNames();
    std::vector<sweep::SweepJob> jobs;
    for (const auto &name : names) {
        jobs.push_back(bench::job(core::SystemKind::Fusion, name,
                                  opt.scale));
        sweep::SweepJob lg = jobs.back();
        lg.cfg = core::SystemConfig::preset(
            core::SystemConfig::Preset::AxcLarge,
            core::SystemKind::Fusion);
        lg.tag += "/large";
        jobs.push_back(std::move(lg));
    }
    auto results =
        bench::runSweep("fig7_large_vs_small", jobs, opt);

    std::printf("%-8s %10s | %12s %12s | %12s\n", "bench",
                "WSet(kB)", "energy L/S", "cycles L/S",
                "L1X miss dlt");
    std::printf("%s\n", std::string(64, '-').c_str());

    for (std::size_t w = 0; w < names.size(); ++w) {
        const std::string &name = names[w];
        const core::RunResult &small = results[w * 2];
        const core::RunResult &large = results[w * 2 + 1];
        double miss_delta =
            small.l1xMisses
                ? 100.0 *
                      (static_cast<double>(small.l1xMisses) -
                       static_cast<double>(large.l1xMisses)) /
                      static_cast<double>(small.l1xMisses)
                : 0.0;
        std::printf("%-8s %10.1f | %11.3fx %11.3fx | %10.1f%%\n",
                    bench::displayName(name).c_str(),
                    static_cast<double>(small.workingSetBytes) /
                        1024.0,
                    large.hierarchyPj() / small.hierarchyPj(),
                    static_cast<double>(large.accelCycles) /
                        static_cast<double>(small.accelCycles),
                    miss_delta);
    }
    std::printf("\nenergy L/S > 1 means the Large configuration "
                "wastes energy (Lesson 7); a\npositive L1X miss "
                "delta means the bigger L1X newly captured the "
                "working set.\n");
    return 0;
}
