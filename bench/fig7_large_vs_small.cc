/**
 * @file
 * Figure 7 — AXC-Large (8K L0X / 256K L1X) vs AXC-Small (4K/64K):
 * per benchmark, energy and cycle-time ratios of Large over Small
 * for the FUSION system (Lesson 7: larger may not be better).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace fusion;
    auto scale = bench::scaleFromArgs(argc, argv);
    bench::banner("Figure 7: AXC-Large vs AXC-Small (FUSION)",
                  "Figure 7 (Section 5.5, Lesson 7)");

    std::printf("%-8s %10s | %12s %12s | %12s\n", "bench",
                "WSet(kB)", "energy L/S", "cycles L/S",
                "L1X miss dlt");
    std::printf("%s\n", std::string(64, '-').c_str());

    for (const auto &name : workloads::workloadNames()) {
        trace::Program prog = core::buildProgram(name, scale);
        core::RunResult small = core::runProgram(
            core::SystemConfig::paperDefault(
                core::SystemKind::Fusion),
            prog);
        core::RunResult large = core::runProgram(
            core::SystemConfig::axcLarge(core::SystemKind::Fusion),
            prog);
        double miss_delta =
            small.l1xMisses
                ? 100.0 *
                      (static_cast<double>(small.l1xMisses) -
                       static_cast<double>(large.l1xMisses)) /
                      static_cast<double>(small.l1xMisses)
                : 0.0;
        std::printf("%-8s %10.1f | %11.3fx %11.3fx | %10.1f%%\n",
                    bench::displayName(name).c_str(),
                    static_cast<double>(small.workingSetBytes) /
                        1024.0,
                    large.hierarchyPj() / small.hierarchyPj(),
                    static_cast<double>(large.accelCycles) /
                        static_cast<double>(small.accelCycles),
                    miss_delta);
    }
    std::printf("\nenergy L/S > 1 means the Large configuration "
                "wastes energy (Lesson 7); a\npositive L1X miss "
                "delta means the bigger L1X newly captured the "
                "working set.\n");
    return 0;
}
