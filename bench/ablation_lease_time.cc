/**
 * @file
 * Ablation — lease-time sensitivity. The LT column of Table 3 is a
 * per-function tuning knob: short leases force frequent
 * self-invalidation re-fetches (request-message energy, Lesson 4);
 * long leases delay host-forwarded responses (GTIME stalls) and
 * keep write epochs open longer. This sweep scales every function's
 * LT and reports the FUSION cycle/energy response.
 */

#include "bench_util.hh"

#include "sim/hash.hh"

int
main(int argc, char **argv)
{
    using namespace fusion;
    auto opt = bench::parseArgs(argc, argv);
    const auto kKind =
        bench::kindOrDefault(opt, core::SystemKind::Fusion);
    bench::banner("Ablation: lease-time sensitivity (FUSION)",
                  "design choice behind Table 3's LT column");

    const double kScales[] = {0.25, 0.5, 1.0, 2.0, 4.0, 16.0};
    const std::vector<std::string> kNames = {"adpcm", "fft",
                                             "susan"};
    // Each LT point simulates a lease-rescaled copy of the trace.
    // The rescale rides as a lazy SweepJob transform on a shared
    // base program: the engine copies and mutates only when a point
    // actually simulates, so cache hits skip the deep copy and the
    // per-copy content hash entirely.
    std::vector<sweep::SweepJob> jobs;
    for (const auto &name : kNames) {
        auto prog = std::make_shared<const trace::Program>(
            bench::mustBuild(name, opt.scale));
        for (double s : kScales) {
            auto j = bench::job(kKind, name,
                                opt.scale);
            j.prog = prog;
            j.transform = [s](trace::Program &p) {
                for (auto &f : p.functions) {
                    f.leaseTime = std::max<Cycles>(
                        16,
                        static_cast<Cycles>(
                            static_cast<double>(f.leaseTime) * s));
                }
            };
            j.transformId =
                fnv1a("lease-scale/" + core::fmt(s, 2));
            j.tag += "/lt=" + core::fmt(s, 2);
            jobs.push_back(std::move(j));
        }
    }
    auto results =
        bench::runSweep("ablation_lease_time", jobs, opt);

    std::printf("%-8s | %8s %12s %12s %12s\n", "bench", "LT scale",
                "cycles", "tile msgs", "energy(uJ)");
    std::printf("%s\n", std::string(60, '-').c_str());

    std::size_t idx = 0;
    for (const auto &name : kNames) {
        for (double s : kScales) {
            const core::RunResult &r = results[idx++];
            std::printf("%-8s | %8.2f %12llu %12llu %12.3f\n",
                        s == kScales[0]
                            ? bench::displayName(name).c_str()
                            : "",
                        s,
                        static_cast<unsigned long long>(
                            r.accelCycles),
                        static_cast<unsigned long long>(
                            r.l0xL1xCtrlMsgs),
                        r.hierarchyPj() / 1e6);
        }
        std::printf("\n");
    }
    std::printf("Short leases raise tile request traffic; very long "
                "leases mostly plateau\n(the paper sizes epochs to "
                "expected invocation latency).\n");
    return 0;
}
