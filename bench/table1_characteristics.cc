/**
 * @file
 * Table 1 — "Accelerator Characteristics": per accelerated function,
 * the fraction of (host) execution time, the operation mix
 * (%INT/%FP/%LD/%ST), the memory-level parallelism assumed for its
 * datapath, and the sharing degree %SHR (fraction of its cache
 * lines also touched by another accelerator).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace fusion;
    // Table 1 is trace profiling + the serial host-replay profile —
    // no system sweep — but shares the harness CLI for uniformity.
    auto opt = bench::parseArgs(argc, argv);
    bench::noteFixedComparison(opt, "Table 1 (workload characterization)");
    auto scale = opt.scale;
    bench::banner("Table 1: Accelerator Characteristics",
                  "Table 1 (Section 2)");

    std::printf("%-10s %-10s %7s %6s %6s %6s %6s %4s %6s\n",
                "bench", "function", "%Time", "%INT", "%FP", "%LD",
                "%ST", "MLP", "%SHR");
    std::printf("%s\n", std::string(72, '-').c_str());

    for (const auto &name : workloads::workloadNames()) {
        trace::Program prog = bench::mustBuild(name, scale);
        auto profiles = trace::profileFunctions(prog);
        auto host_cycles = core::hostProfile(prog);
        std::uint64_t total_cycles = 0;
        for (const auto &[f, c] : host_cycles)
            total_cycles += c;

        bool first = true;
        for (const auto &p : profiles) {
            double pct_time =
                total_cycles
                    ? 100.0 *
                          static_cast<double>(
                              host_cycles.at(p.name)) /
                          static_cast<double>(total_cycles)
                    : 0.0;
            std::printf("%-10s %-10s %7.1f %6.1f %6.1f %6.1f %6.1f "
                        "%4u %6.1f\n",
                        first ? bench::displayName(name).c_str()
                              : "",
                        p.name.c_str(), pct_time, p.pctInt, p.pctFp,
                        p.pctLd, p.pctSt, p.mlp, p.sharePct);
            first = false;
        }
    }
    std::printf("\nMLP values follow Table 1; %%SHR and op mixes are "
                "measured on the captured traces.\n");
    return 0;
}
