/**
 * @file
 * Ablation — overlapped invocation execution. The paper's Figure 5
 * timeline shows producer and consumer accelerators concurrently
 * active; our default model runs the sequential program's
 * invocations strictly in order. This harness enables the
 * dependence-driven overlap scheduler (trace-analyzed RAW/WAW/WAR
 * edges) and reports the headroom concurrency buys each system —
 * and how much more forwarding FUSION-Dx realizes when producer
 * and consumer overlap.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace fusion;
    auto scale = bench::scaleFromArgs(argc, argv);
    bench::banner("Ablation: overlapped invocation execution",
                  "Figure 5's producer/consumer concurrency");

    std::printf("%-8s %-6s | %12s %12s %8s | %10s\n", "bench",
                "sys", "serial cyc", "overlap cyc", "speedup",
                "Dx fwds");
    std::printf("%s\n", std::string(68, '-').c_str());

    for (const auto &name : workloads::workloadNames()) {
        trace::Program prog = core::buildProgram(name, scale);
        for (auto kind :
             {core::SystemKind::Fusion, core::SystemKind::FusionDx}) {
            core::SystemConfig serial =
                core::SystemConfig::paperDefault(kind);
            core::SystemConfig overlap = serial;
            overlap.overlapInvocations = true;
            core::RunResult rs = core::runProgram(serial, prog);
            core::RunResult ro = core::runProgram(overlap, prog);
            std::printf("%-8s %-6s | %12llu %12llu %7.2fx | %10llu\n",
                        kind == core::SystemKind::Fusion
                            ? bench::displayName(name).c_str()
                            : "",
                        core::systemKindShortName(kind),
                        static_cast<unsigned long long>(
                            rs.accelCycles),
                        static_cast<unsigned long long>(
                            ro.accelCycles),
                        static_cast<double>(rs.accelCycles) /
                            static_cast<double>(ro.accelCycles),
                        static_cast<unsigned long long>(
                            ro.l0xForwards));
        }
        std::printf("\n");
    }
    std::printf("Speedup > 1 means data-independent invocations ran "
                "concurrently on\ndifferent accelerators; "
                "dependences are enforced from the trace.\n");
    return 0;
}
