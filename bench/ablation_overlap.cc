/**
 * @file
 * Ablation — overlapped invocation execution. The paper's Figure 5
 * timeline shows producer and consumer accelerators concurrently
 * active; our default model runs the sequential program's
 * invocations strictly in order. This harness enables the
 * dependence-driven overlap scheduler (trace-analyzed RAW/WAW/WAR
 * edges) and reports the headroom concurrency buys each system —
 * and how much more forwarding FUSION-Dx realizes when producer
 * and consumer overlap.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace fusion;
    auto opt = bench::parseArgs(argc, argv);
    bench::noteFixedComparison(opt, "the overlap ablation (FUSION vs FUSION-Dx)");
    bench::banner("Ablation: overlapped invocation execution",
                  "Figure 5's producer/consumer concurrency");

    const auto kKinds = {core::SystemKind::Fusion,
                         core::SystemKind::FusionDx};
    const auto names = workloads::workloadNames();
    std::vector<sweep::SweepJob> jobs;
    for (const auto &name : names) {
        for (auto kind : kKinds) {
            auto serial = bench::job(kind, name, opt.scale);
            auto overlap = serial;
            overlap.cfg.overlapInvocations = true;
            overlap.tag += "/overlap";
            jobs.push_back(std::move(serial));
            jobs.push_back(std::move(overlap));
        }
    }
    auto results = bench::runSweep("ablation_overlap", jobs, opt);

    std::printf("%-8s %-6s | %12s %12s %8s | %10s\n", "bench",
                "sys", "serial cyc", "overlap cyc", "speedup",
                "Dx fwds");
    std::printf("%s\n", std::string(68, '-').c_str());

    std::size_t idx = 0;
    for (const auto &name : names) {
        for (auto kind : kKinds) {
            const core::RunResult &rs = results[idx++];
            const core::RunResult &ro = results[idx++];
            std::printf("%-8s %-6s | %12llu %12llu %7.2fx | %10llu\n",
                        kind == core::SystemKind::Fusion
                            ? bench::displayName(name).c_str()
                            : "",
                        core::systemKindShortName(kind),
                        static_cast<unsigned long long>(
                            rs.accelCycles),
                        static_cast<unsigned long long>(
                            ro.accelCycles),
                        static_cast<double>(rs.accelCycles) /
                            static_cast<double>(ro.accelCycles),
                        static_cast<unsigned long long>(
                            ro.l0xForwards));
        }
        std::printf("\n");
    }
    std::printf("Speedup > 1 means data-independent invocations ran "
                "concurrently on\ndifferent accelerators; "
                "dependences are enforced from the trace.\n");
    return 0;
}
