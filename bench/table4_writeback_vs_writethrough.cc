/**
 * @file
 * Table 4 — "Bandwidth in Flits": L0X<->L1X link flits under
 * write-through vs writeback L0Xs, plus the fraction of blocks
 * written back dirty (Lesson 5: write-through is expensive).
 */

#include <unordered_set>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace fusion;
    auto opt = bench::parseArgs(argc, argv);
    bench::noteFixedComparison(opt, "Table 4 (FUSION write-back vs write-through)");
    bench::banner("Table 4: Write-through vs writeback L0X "
                  "bandwidth (flits)",
                  "Table 4 (Section 5.3, Lesson 5)");

    const auto names = workloads::workloadNames();
    // %Dirty Blocks is computed on the trace itself; build and
    // attach the programs so both passes share one capture.
    std::vector<sweep::SweepJob> jobs;
    std::vector<std::shared_ptr<const trace::Program>> progs;
    for (const auto &name : names) {
        progs.push_back(std::make_shared<const trace::Program>(
            bench::mustBuild(name, opt.scale)));
        auto wbj = bench::job(core::SystemKind::Fusion, name,
                              opt.scale);
        wbj.prog = progs.back();
        auto wtj = wbj;
        wtj.cfg.l0xWriteThrough = true;
        wtj.tag += "/wt";
        jobs.push_back(std::move(wbj));
        jobs.push_back(std::move(wtj));
    }
    auto results = bench::runSweep(
        "table4_writeback_vs_writethrough", jobs, opt);

    std::printf("%-8s %14s %14s %8s %14s\n", "bench",
                "Write-Through", "Writeback", "ratio",
                "%Dirty Blocks");
    std::printf("%s\n", std::string(64, '-').c_str());

    for (std::size_t w = 0; w < names.size(); ++w) {
        const std::string &name = names[w];
        const trace::Program &prog = *progs[w];
        const core::RunResult &rwb = results[w * 2];
        const core::RunResult &rwt = results[w * 2 + 1];

        // %Dirty Blocks: fraction of the accelerator-touched lines
        // that get stored to (and hence eventually written back).
        std::unordered_set<Addr> touched, stored;
        for (const auto &inv : prog.invocations) {
            for (const auto &op : inv.ops) {
                if (op.kind == trace::OpKind::Compute)
                    continue;
                touched.insert(lineAlign(op.addr));
                if (op.kind == trace::OpKind::Store)
                    stored.insert(lineAlign(op.addr));
            }
        }
        double dirty_pct =
            touched.empty()
                ? 0.0
                : 100.0 * static_cast<double>(stored.size()) /
                      static_cast<double>(touched.size());
        std::printf("%-8s %14llu %14llu %7.1fx %13.1f%%\n",
                    bench::displayName(name).c_str(),
                    static_cast<unsigned long long>(rwt.l0xL1xFlits),
                    static_cast<unsigned long long>(rwb.l0xL1xFlits),
                    rwb.l0xL1xFlits
                        ? static_cast<double>(rwt.l0xL1xFlits) /
                              static_cast<double>(rwb.l0xL1xFlits)
                        : 0.0,
                    dirty_pct);
    }
    std::printf("\n%%Dirty Blocks = accelerator lines stored to / "
                "lines touched (trace).\n");
    return 0;
}
