/**
 * @file
 * Table 6d (embedded in Figure 6) — per benchmark: working-set
 * size, total data moved by the oracle DMA, their ratio (the
 * "pathological behaviour" indicator of Section 5.2), and the
 * number of DMA operations.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace fusion;
    auto opt = bench::parseArgs(argc, argv);
    const auto kKind =
        bench::kindOrDefault(opt, core::SystemKind::Scratch);
    bench::banner("Table 6d: DMA traffic vs working set (SCRATCH)",
                  "Figure 6d table (Section 5.2)");

    const auto names = workloads::workloadNames();
    std::vector<sweep::SweepJob> jobs;
    for (const auto &name : names)
        jobs.push_back(bench::job(kKind, name,
                                  opt.scale));
    auto results = bench::runSweep("table6d_dma_vs_wset", jobs, opt);

    std::printf("%-8s %10s %10s %8s %10s %10s\n", "bench",
                "WSet(kB)", "DMA(kB)", "ratio", "DMA ops",
                "DMA cyc%");
    std::printf("%s\n", std::string(62, '-').c_str());

    for (std::size_t w = 0; w < names.size(); ++w) {
        const std::string &name = names[w];
        const core::RunResult &r = results[w];
        double wset_kb =
            static_cast<double>(r.workingSetBytes) / 1024.0;
        double dma_kb = static_cast<double>(r.dmaBytes) / 1024.0;
        std::printf("%-8s %10.1f %10.1f %8.1f %10llu %9.1f%%\n",
                    bench::displayName(name).c_str(), wset_kb,
                    dma_kb, wset_kb > 0 ? dma_kb / wset_kb : 0,
                    static_cast<unsigned long long>(r.dmaOps),
                    100.0 * static_cast<double>(r.dmaCycles) /
                        static_cast<double>(r.accelCycles));
    }
    std::printf("\nHigh DMA/WSet ratios flag the repeated inter-AXC "
                "ping-pong SCRATCH suffers.\n");
    return 0;
}
