#!/bin/sh
# Kernel-throughput bench driver: runs micro_kernel's sharded-kernel
# comparison at 1, 2 and 4 domains plus the micro_txn end-to-end
# rows, and folds the per-run reports into one BENCH_kernel.json.
#
#   bench/run_bench.sh [BUILD_DIR] [OUT_JSON] [CACHE_OUT_JSON]
#
# Defaults: BUILD_DIR=build, OUT_JSON=BENCH_kernel.json and
# CACHE_OUT_JSON=BENCH_sweep_cache.json (in the current directory).
# Shell + the bench binaries only — no python.
# The per-domain events/sec come from the "perf" objects micro_kernel
# --compare emits (the sharded side; "serialPerf" carries the serial
# baseline), so the 4-vs-1 speedup is readable straight off the file.
# BENCH_sweep_cache.json records the cold-vs-warm wall clock of one
# identical sweep re-run against the result cache (DESIGN.md §10).
set -eu

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_kernel.json}
CACHE_OUT=${3:-BENCH_sweep_cache.json}

KERNEL="$BUILD_DIR/bench/micro_kernel"
TXN="$BUILD_DIR/bench/micro_txn"
ABLATION="$BUILD_DIR/bench/ablation_lease_time"
for bin in "$KERNEL" "$TXN" "$ABLATION"; do
    if [ ! -x "$bin" ]; then
        echo "run_bench.sh: $bin not built (cmake --build $BUILD_DIR)" >&2
        exit 1
    fi
done

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# Sharded-kernel rows: same workload at 1, 2 and 4 physical domains.
# Repeat=3 best-kept inside the harness; tiles 4 and 8 cover the
# >=4-tile FUSION-shaped topologies.
for d in 1 2 4; do
    echo "== micro_kernel --compare --shard-domains $d ==" >&2
    "$KERNEL" --compare --shard-domains "$d" --tiles 4,8 \
        --ops 1000000 --repeat 3 \
        --json "$TMP/kernel_d$d.json" >&2
done

# End-to-end transaction path (serial kernel; per-workload rows).
echo "== micro_txn ==" >&2
"$TXN" --churn-ops 50000 --workloads adpcm,fft --repeat 2 \
    --json "$TMP/txn.json" >&2

# Fold the reports into one file. Each per-run report is a complete
# JSON object; BENCH_kernel.json nests them verbatim.
{
    printf '{"bench":"BENCH_kernel","shardDomains":{'
    sep=''
    for d in 1 2 4; do
        printf '%s"%s":' "$sep" "$d"
        cat "$TMP/kernel_d$d.json"
        sep=','
    done
    printf '},"txn":'
    cat "$TMP/txn.json"
    printf '}\n'
} | tr -d '\n' > "$OUT"
echo "" >> "$OUT"

echo "wrote $OUT" >&2

# Result-cache cold-vs-warm: the same sweep twice against a fresh
# private cache. The first pass simulates and populates the cache;
# the second replays every point from disk. date +%s%N is GNU
# coreutils (nanoseconds), which the bench environments ship.
CACHE_DIR="$TMP/result-cache"
echo "== ablation_lease_time (cold) ==" >&2
c0=$(date +%s%N)
"$ABLATION" --small --jobs 2 --cache-dir "$CACHE_DIR" \
    --json "$TMP/sweep_cold.json" >&2
c1=$(date +%s%N)
echo "== ablation_lease_time (warm) ==" >&2
w0=$(date +%s%N)
"$ABLATION" --small --jobs 2 --cache-dir "$CACHE_DIR" \
    --json "$TMP/sweep_warm.json" >&2
w1=$(date +%s%N)

# Cache counters straight out of the warm report's "cache" object.
WARM_CACHE=$(sed -n 's/.*"cache":{\([^}]*\)}.*/{\1}/p' \
    "$TMP/sweep_warm.json")
[ -n "$WARM_CACHE" ] || WARM_CACHE='{}'

awk -v c0="$c0" -v c1="$c1" -v w0="$w0" -v w1="$w1" \
    -v cache="$WARM_CACHE" 'BEGIN {
    cold = (c1 - c0) / 1e9
    warm = (w1 - w0) / 1e9
    printf "{\"bench\":\"BENCH_sweep_cache\"," \
           "\"harness\":\"ablation_lease_time --small --jobs 2\"," \
           "\"coldSeconds\":%.3f,\"warmSeconds\":%.3f," \
           "\"speedup\":%.2f,\"warmCache\":%s}\n",
           cold, warm, (warm > 0 ? cold / warm : 0), cache
}' > "$CACHE_OUT"

echo "wrote $CACHE_OUT" >&2
