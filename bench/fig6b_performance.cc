/**
 * @file
 * Figure 6b — cycle time normalized to SCRATCH (Lessons 1-2):
 * the DMA-transfer-bound benchmarks favour the cached systems while
 * small-working-set benchmarks favour the scratchpad; FUSION's
 * private L0Xs recover the loss SHARED suffers on them.
 */

#include <cmath>
#include <iostream>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace fusion;
    auto opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 6b: Cycle time normalized to SCRATCH",
                  "Figure 6b (Section 5.1, Lessons 1-2)");

    const auto kKinds = {
        core::SystemKind::Scratch, core::SystemKind::Shared,
        core::SystemKind::Fusion, core::SystemKind::FusionDx};
    const auto names = workloads::workloadNames();
    std::vector<sweep::SweepJob> jobs;
    for (const auto &name : names)
        for (auto kind : kKinds)
            jobs.push_back(bench::job(kind, name, opt.scale));
    auto results = bench::runSweep("fig6b_performance", jobs, opt);

    std::printf("%-8s %12s %8s | %8s %8s %8s   %s\n", "bench",
                "SC cycles", "DMA%", "SH", "FU", "FU-Dx",
                "(fraction of SCRATCH cycle time; lower is better)");
    std::printf("%s\n", std::string(86, '-').c_str());

    double geo_sh = 1.0, geo_fu = 1.0;
    int n = 0;
    for (std::size_t w = 0; w < names.size(); ++w) {
        const core::RunResult &sc = results[w * 4];
        double ratios[3];
        for (int i = 0; i < 3; ++i) {
            const core::RunResult &r =
                results[w * 4 + 1 + static_cast<std::size_t>(i)];
            ratios[i] = static_cast<double>(r.accelCycles) /
                        static_cast<double>(sc.accelCycles);
        }
        std::printf("%-8s %12llu %7.1f%% | %8.3f %8.3f %8.3f\n",
                    bench::displayName(names[w]).c_str(),
                    static_cast<unsigned long long>(sc.accelCycles),
                    100.0 * static_cast<double>(sc.dmaCycles) /
                        static_cast<double>(sc.accelCycles),
                    ratios[0], ratios[1], ratios[2]);
        geo_sh *= ratios[0];
        geo_fu *= ratios[1];
        ++n;
    }
    geo_sh = std::pow(geo_sh, 1.0 / n);
    geo_fu = std::pow(geo_fu, 1.0 / n);
    std::printf("%s\n", std::string(86, '-').c_str());
    std::printf("geomean speedup vs SCRATCH: SHARED %.2fx, FUSION "
                "%.2fx\n",
                1.0 / geo_sh, 1.0 / geo_fu);

    // Telemetry runs (--metrics-interval/--trace-out) additionally
    // carry per-histogram latency percentiles; print them after the
    // figure. Prints nothing on a plain run.
    std::vector<std::string> tags;
    for (const auto &j : jobs)
        tags.push_back(j.tag);
    core::printLatencyTable(std::cout, tags, results);
    return 0;
}
