/**
 * @file
 * Figure 6b — cycle time normalized to SCRATCH (Lessons 1-2):
 * the DMA-transfer-bound benchmarks favour the cached systems while
 * small-working-set benchmarks favour the scratchpad; FUSION's
 * private L0Xs recover the loss SHARED suffers on them.
 *
 * --system K[,K...] overrides the compared systems; the first kind
 * listed becomes the normalization baseline.
 */

#include <cmath>
#include <iostream>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace fusion;
    auto opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 6b: Cycle time normalized to SCRATCH",
                  "Figure 6b (Section 5.1, Lessons 1-2)");

    const auto kinds = bench::kindsOrDefault(
        opt, {core::SystemKind::Scratch, core::SystemKind::Shared,
              core::SystemKind::Fusion, core::SystemKind::FusionDx});
    const std::size_t nk = kinds.size();
    const auto names = workloads::workloadNames();
    std::vector<sweep::SweepJob> jobs;
    for (const auto &name : names)
        for (auto kind : kinds)
            jobs.push_back(bench::job(kind, name, opt.scale));
    auto results = bench::runSweep("fig6b_performance", jobs, opt);

    const char *base = core::systemKindShortName(kinds.front());
    std::printf("%-8s %12s %8s |", "bench", "base cycles", "DMA%");
    for (std::size_t i = 1; i < nk; ++i)
        std::printf(" %8s", core::systemKindShortName(kinds[i]));
    std::printf("   (fraction of %s cycle time; lower is "
                "better)\n",
                base);
    std::printf("%s\n", std::string(86, '-').c_str());

    std::vector<double> geo(nk, 1.0);
    int n = 0;
    for (std::size_t w = 0; w < names.size(); ++w) {
        const core::RunResult &sc = results[w * nk];
        std::printf("%-8s %12llu %7.1f%% |",
                    bench::displayName(names[w]).c_str(),
                    static_cast<unsigned long long>(sc.accelCycles),
                    100.0 * static_cast<double>(sc.dmaCycles) /
                        static_cast<double>(sc.accelCycles));
        for (std::size_t i = 1; i < nk; ++i) {
            const core::RunResult &r = results[w * nk + i];
            double ratio = static_cast<double>(r.accelCycles) /
                           static_cast<double>(sc.accelCycles);
            geo[i] *= ratio;
            std::printf(" %8.3f", ratio);
        }
        std::printf("\n");
        ++n;
    }
    std::printf("%s\n", std::string(86, '-').c_str());
    if (n > 0 && nk > 1) {
        std::printf("geomean speedup vs %s:", base);
        for (std::size_t i = 1; i < nk; ++i) {
            std::printf(" %s %.2fx",
                        core::systemKindShortName(kinds[i]),
                        1.0 / std::pow(geo[i], 1.0 / n));
        }
        std::printf("\n");
    }

    // Telemetry runs (--metrics-interval/--trace-out) additionally
    // carry per-histogram latency percentiles; print them after the
    // figure. Prints nothing on a plain run.
    std::vector<std::string> tags;
    for (const auto &j : jobs)
        tags.push_back(j.tag);
    core::printLatencyTable(std::cout, tags, results);
    return 0;
}
