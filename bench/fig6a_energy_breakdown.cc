/**
 * @file
 * Figure 6a — dynamic energy breakdown of the cache hierarchy for
 * SCRATCH / SHARED / FUSION, per benchmark, normalized to SCRATCH.
 * The stack categories mirror the paper's: accelerator compute,
 * local store (L0X or scratchpad), shared L1X, host L2, tile links
 * (L0X<->L1X and L0X<->L0X), and tile<->L2 links (incl. DMA).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace fusion;
    auto opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 6a: Dynamic energy breakdown (normalized "
                  "to SCRATCH)",
                  "Figure 6a (Section 5.2, Lessons 3-4)");

    // --system overrides the compared set; the first kind listed
    // becomes the normalization baseline.
    const auto kKinds = bench::kindsOrDefault(
        opt, {core::SystemKind::Scratch, core::SystemKind::Shared,
              core::SystemKind::Fusion});
    const auto names = workloads::workloadNames();
    std::vector<sweep::SweepJob> jobs;
    for (const auto &name : names)
        for (auto kind : kKinds)
            jobs.push_back(bench::job(kind, name, opt.scale));
    auto results =
        bench::runSweep("fig6a_energy_breakdown", jobs, opt);

    std::printf("%-8s %-6s %7s | %6s %6s %6s %6s %6s %6s\n",
                "bench", "sys", "total", "axc", "local", "l1x",
                "l2", "tlink", "hlink");
    std::printf("%s\n", std::string(72, '-').c_str());

    std::size_t idx = 0;
    for (const auto &name : names) {
        double scratch_total = 0.0;
        for (auto kind : kKinds) {
            const core::RunResult &r = results[idx++];
            core::EnergyStack s = core::energyStack(r);
            double hier = r.hierarchyPj();
            if (kind == kKinds.front())
                scratch_total = hier;
            double n = scratch_total > 0 ? hier / scratch_total : 0;
            auto frac = [&](double pj) {
                return scratch_total > 0 ? pj / scratch_total : 0;
            };
            std::printf("%-8s %-6s %7.3f | %6.3f %6.3f %6.3f %6.3f "
                        "%6.3f %6.3f\n",
                        kind == kKinds.front()
                            ? bench::displayName(name).c_str()
                            : "",
                        core::systemKindShortName(kind), n,
                        frac(s.axcComputePj), frac(s.localStorePj),
                        frac(s.l1xPj), frac(s.llcPj),
                        frac(s.tileLinkPj), frac(s.hostLinkPj));
        }
        std::printf("\n");
    }
    std::printf("Lower is better. SCRATCH's tile<->L2 column (hlink) "
                "is its DMA traffic.\n");
    return 0;
}
