/**
 * @file
 * Figure 6a — dynamic energy breakdown of the cache hierarchy for
 * SCRATCH / SHARED / FUSION, per benchmark, normalized to SCRATCH.
 * The stack categories mirror the paper's: accelerator compute,
 * local store (L0X or scratchpad), shared L1X, host L2, tile links
 * (L0X<->L1X and L0X<->L0X), and tile<->L2 links (incl. DMA).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace fusion;
    auto scale = bench::scaleFromArgs(argc, argv);
    bench::banner("Figure 6a: Dynamic energy breakdown (normalized "
                  "to SCRATCH)",
                  "Figure 6a (Section 5.2, Lessons 3-4)");

    std::printf("%-8s %-6s %7s | %6s %6s %6s %6s %6s %6s\n",
                "bench", "sys", "total", "axc", "local", "l1x",
                "l2", "tlink", "hlink");
    std::printf("%s\n", std::string(72, '-').c_str());

    for (const auto &name : workloads::workloadNames()) {
        trace::Program prog = core::buildProgram(name, scale);
        double scratch_total = 0.0;
        for (auto kind :
             {core::SystemKind::Scratch, core::SystemKind::Shared,
              core::SystemKind::Fusion}) {
            core::RunResult r = core::runProgram(
                core::SystemConfig::paperDefault(kind), prog);
            core::EnergyStack s = core::energyStack(r);
            double hier = r.hierarchyPj();
            if (kind == core::SystemKind::Scratch)
                scratch_total = hier;
            double n = scratch_total > 0 ? hier / scratch_total : 0;
            auto frac = [&](double pj) {
                return scratch_total > 0 ? pj / scratch_total : 0;
            };
            std::printf("%-8s %-6s %7.3f | %6.3f %6.3f %6.3f %6.3f "
                        "%6.3f %6.3f\n",
                        kind == core::SystemKind::Scratch
                            ? bench::displayName(name).c_str()
                            : "",
                        core::systemKindShortName(kind), n,
                        frac(s.axcComputePj), frac(s.localStorePj),
                        frac(s.l1xPj), frac(s.llcPj),
                        frac(s.tileLinkPj), frac(s.hostLinkPj));
        }
        std::printf("\n");
    }
    std::printf("Lower is better. SCRATCH's tile<->L2 column (hlink) "
                "is its DMA traffic.\n");
    return 0;
}
