/**
 * @file
 * Ablation — intra-tile coherence protocol: ACC (timestamp
 * self-invalidation, the paper's proposal) vs a conventional
 * directory MESI between the L0Xs, with identical geometries, host
 * integration and energy parameters. Run both serial (the paper's
 * execution model) and overlapped (Figure 5's concurrency), where
 * MESI pays invalidation ping-pong that ACC's leases avoid.
 */

#include "bench_util.hh"

namespace
{

struct Row
{
    unsigned long long cycles;
    unsigned long long msgs;
    double uj;
};

Row
rowOf(const fusion::core::RunResult &r)
{
    return {static_cast<unsigned long long>(r.accelCycles),
            static_cast<unsigned long long>(r.l0xL1xCtrlMsgs),
            r.hierarchyPj() / 1e6};
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace fusion;
    auto opt = bench::parseArgs(argc, argv);
    bench::noteFixedComparison(opt, "the tile-protocol ablation (FUSION vs FUSION-MESI)");
    bench::banner("Ablation: intra-tile protocol, ACC vs MESI",
                  "the protocol choice of Section 3.2");

    const auto names = workloads::workloadNames();
    std::vector<sweep::SweepJob> jobs;
    for (const auto &name : names)
        for (bool overlap : {false, true})
            for (auto kind : {core::SystemKind::Fusion,
                              core::SystemKind::FusionMesi}) {
                auto j = bench::job(kind, name, opt.scale);
                j.cfg.overlapInvocations = overlap;
                if (overlap)
                    j.tag += "/overlap";
                jobs.push_back(std::move(j));
            }
    auto results =
        bench::runSweep("ablation_tile_protocol", jobs, opt);

    std::printf("%-8s %-8s | %10s %9s %8s | %10s %9s %8s\n",
                "bench", "exec", "ACC cyc", "ACC msgs", "ACC uJ",
                "MESI cyc", "MESI msg", "MESI uJ");
    std::printf("%s\n", std::string(80, '-').c_str());

    std::size_t idx = 0;
    for (const auto &name : names) {
        for (bool overlap : {false, true}) {
            Row acc = rowOf(results[idx++]);
            Row mesi = rowOf(results[idx++]);
            std::printf("%-8s %-8s | %10llu %9llu %8.3f | %10llu "
                        "%9llu %8.3f\n",
                        overlap
                            ? ""
                            : bench::displayName(name).c_str(),
                        overlap ? "overlap" : "serial", acc.cycles,
                        acc.msgs, acc.uj, mesi.cycles, mesi.msgs,
                        mesi.uj);
        }
        std::printf("\n");
    }
    std::printf(
        "Control messages are tile-link requests+probes+acks. The\n"
        "paper's case for ACC over an intra-tile MESI also rests "
        "on\nhardware arguments this simulator does not price: no "
        "transient\nstates to verify, no L0X probe ports, and "
        "virtual caching\nwithout reverse translation at every "
        "L0X.\n");
    return 0;
}
