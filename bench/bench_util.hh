/**
 * @file
 * Shared helpers for the paper-reproduction bench harnesses.
 *
 * Every harness regenerates one table or figure of the paper's
 * evaluation at the Paper input scale; pass --small for a fast
 * smoke run on CI-size inputs.
 */

#ifndef FUSION_BENCH_BENCH_UTIL_HH
#define FUSION_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/reporters.hh"
#include "core/runner.hh"
#include "trace/analysis.hh"

namespace fusion::bench
{

/** Parse --small (default is the paper-scale inputs). */
inline workloads::Scale
scaleFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--small") == 0)
            return workloads::Scale::Small;
    }
    return workloads::Scale::Paper;
}

/** Build all seven benchmarks once. */
inline std::vector<trace::Program>
buildSuite(workloads::Scale scale)
{
    return workloads::buildAll(scale);
}

/** Display name lookup ("FFT", "DISP.", ...). */
inline std::string
displayName(const std::string &workload)
{
    auto w = workloads::makeWorkload(workload);
    return w ? w->displayName() : workload;
}

/** Print a header banner for a harness. */
inline void
banner(const char *what, const char *paper_ref)
{
    std::printf("=== %s ===\n", what);
    std::printf("reproduces: %s\n", paper_ref);
    std::printf("(shapes, not absolute numbers, are the "
                "reproduction target; see EXPERIMENTS.md)\n\n");
}

} // namespace fusion::bench

#endif // FUSION_BENCH_BENCH_UTIL_HH
