/**
 * @file
 * Shared helpers for the paper-reproduction bench harnesses.
 *
 * Every harness regenerates one table or figure of the paper's
 * evaluation by building a sweep-job list and submitting it to the
 * parallel sweep engine, then rendering the ordered results. All
 * harnesses share one CLI:
 *
 *   --small       fast CI-size inputs (default: paper scale)
 *   --jobs N      sweep worker threads (default: hardware threads)
 *   --json FILE   also write the machine-readable SweepReport
 *   --guard       enable the hardening layer (watchdog + periodic
 *                 invariant checkers; docs/HARDENING.md)
 *   --trace-dir / --cache-dir / --no-cache
 *                 trace record/replay + content-addressed result
 *                 cache (DESIGN.md §10). Caching is ON by default
 *                 (.fusion-cache under the working directory, or
 *                 $FUSION_CACHE_DIR); a re-run of an identical
 *                 harness invocation replays completed results
 *                 from disk instead of re-simulating. --no-cache
 *                 restores the pre-cache behaviour byte for byte.
 *
 * Output is identical for every --jobs value: results land by
 * submission index regardless of completion order. When any sweep
 * entry fails, the harness prints a one-line summary of the failed
 * jobs on stderr and exits with status 2 (the SweepReport, when
 * requested, still records every job including the failures).
 */

#ifndef FUSION_BENCH_BENCH_UTIL_HH
#define FUSION_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/reporters.hh"
#include "core/runner.hh"
#include "obs/json_lint.hh"
#include "obs/perfetto.hh"
#include "obs/span_tracer.hh"
#include "sim/logging.hh"
#include "sweep/result_cache.hh"
#include "trace/analysis.hh"
#include "trace/store.hh"

namespace fusion::bench
{

/** Parsed shared harness CLI. */
struct Options
{
    workloads::Scale scale = workloads::Scale::Paper;
    std::size_t jobs = sweep::defaultJobs();
    std::string jsonPath;
    bool guard = false;
    /** --system selection (empty: the harness's own default set).
     *  Harnesses whose comparison is intrinsically fixed print a
     *  note and ignore it. */
    std::vector<core::SystemKind> systems;
    // Telemetry (docs/OBSERVABILITY.md). All default-off: a plain
    // harness run carries no observability state at all.
    std::string traceOut;
    std::string traceKinds;
    std::size_t traceLimit = std::size_t{1} << 16;
    Tick metricsInterval = 0;
    /** --shard-domains: event-kernel domains per job (DESIGN.md §8;
     *  1 = serial kernel, byte-identical output either way). */
    std::uint32_t shardDomains = 1;
    /** --fault/--fault-seed: armed on every job (docs/HARDENING.md). */
    guard::FaultSchedule faults;
    // Trace record/replay + result cache (DESIGN.md §10). Empty dirs
    // mean "use the default location"; --no-cache disables both.
    std::string traceDir; ///< --trace-dir override
    std::string cacheDir; ///< --cache-dir override
    bool noCache = false; ///< --no-cache: pre-cache behaviour
    /** --cache-smoke (test-only): run the sweep twice against a
     *  fresh private cache and assert the second pass is all hits
     *  with a byte-identical report (the CacheBenchSmoke entry). */
    bool cacheSmoke = false;

    bool telemetry() const
    {
        return !traceOut.empty() || metricsInterval > 0;
    }
    bool faultsArmed() const { return !faults.empty(); }
};

/**
 * Effective result-cache directory: --cache-dir, else
 * $FUSION_CACHE_DIR, else ".fusion-cache" under the working
 * directory. Empty = caching disabled (--no-cache).
 */
inline std::string
resolvedCacheDir(const Options &opt)
{
    if (opt.noCache)
        return "";
    if (!opt.cacheDir.empty())
        return opt.cacheDir;
    if (const char *env = std::getenv("FUSION_CACHE_DIR"))
        if (*env != '\0')
            return env;
    return ".fusion-cache";
}

/**
 * Effective trace-store directory: --trace-dir, else
 * $FUSION_TRACE_DIR, else "traces" inside the cache directory.
 * Empty = record/replay disabled (--no-cache).
 */
inline std::string
resolvedTraceDir(const Options &opt)
{
    if (opt.noCache)
        return "";
    if (!opt.traceDir.empty())
        return opt.traceDir;
    if (const char *env = std::getenv("FUSION_TRACE_DIR"))
        if (*env != '\0')
            return env;
    std::string cache = resolvedCacheDir(opt);
    return cache.empty() ? "" : cache + "/traces";
}

inline void
usage(const char *argv0)
{
    std::printf("usage: %s [--small] [--jobs N] [--json FILE] "
                "[--guard] [--system K[,K...]] [--trace-out FILE]\n"
                "  --small      CI-size inputs (default: paper "
                "scale)\n"
                "  --jobs N     parallel sweep workers (default: "
                "%zu)\n"
                "  --json FILE  write the machine-readable sweep "
                "report\n"
                "  --system K[,K...]  system kind(s): auto, "
                "scratch, shared, fusion,\n"
                "               fusion-dx, fusion-mesi (short "
                "names accepted;\n"
                "               fixed-comparison harnesses ignore "
                "this)\n"
                "  --guard      enable watchdog + invariant "
                "checkers (docs/HARDENING.md)\n"
                "  --trace-out FILE       write a Perfetto span "
                "trace (docs/OBSERVABILITY.md)\n"
                "  --trace-limit N        spans retained per job "
                "(default 65536)\n"
                "  --trace-kinds a,b,...  only trace these span "
                "kinds (default: all)\n"
                "  --metrics-interval N   sample gauges every N "
                "ticks into the JSON report\n"
                "  --shard-domains N      event-kernel domains per "
                "job (default 1 = serial;\n"
                "               output is byte-identical for every "
                "N; DESIGN.md §8)\n"
                "  --fault KIND[:after[:delay[:prob]]]  arm a fault "
                "on every job (repeatable;\n"
                "               kinds: leak-mshr, drop-writeback, "
                "delay-grant, corrupt-lease,\n"
                "               drop-flit, dup-flit, reorder-flit, "
                "dma-truncate, dma-stall,\n"
                "               corrupt-dir, stale-host-l1; "
                "docs/HARDENING.md)\n"
                "  --fault-seed N         seed for probabilistic "
                "fault draws\n"
                "  --cache-dir DIR        result-cache directory "
                "(default .fusion-cache or\n"
                "               $FUSION_CACHE_DIR); identical re-runs "
                "replay results from disk\n"
                "  --trace-dir DIR        trace record/replay "
                "directory (default: traces/\n"
                "               inside the cache dir, or "
                "$FUSION_TRACE_DIR)\n"
                "  --no-cache             disable trace replay and "
                "the result cache\n"
                "               (byte-identical to the pre-cache "
                "harness behaviour)\n",
                argv0, sweep::defaultJobs());
}

/** Parse a comma-separated --system value into @p out or die. */
inline void
parseSystemList(const char *argv0, const std::string &vals,
                std::vector<core::SystemKind> &out)
{
    std::stringstream ss(vals);
    std::string tok;
    bool any = false;
    while (std::getline(ss, tok, ',')) {
        if (tok.empty())
            continue;
        auto k = core::parseSystemKind(tok);
        if (!k) {
            usage(argv0);
            fusion_fatal("--system: unknown system kind '", tok,
                         "' (want auto, scratch, shared, fusion, "
                         "fusion-dx, or fusion-mesi)");
        }
        out.push_back(*k);
        any = true;
    }
    if (!any) {
        usage(argv0);
        fusion_fatal("--system: empty system list");
    }
}

/**
 * Parse the shared flags. Unrecognized arguments are fatal unless
 * @p extra is given, in which case they are returned for the
 * harness to interpret (positional workload names etc.).
 */
inline Options
parseArgs(int argc, char **argv,
          std::vector<std::string> *extra = nullptr)
{
    // Honor FUSION_DEBUG=ACC,MESI,OBS,... for every harness.
    Debug::initFromEnvironment();
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage(argv[0]);
                fusion_fatal("missing value for ", a);
            }
            return argv[++i];
        };
        auto parseFault = [&](const std::string &spec) {
            guard::ArmedFault f;
            if (!guard::parseFaultSpec(spec, f)) {
                usage(argv[0]);
                fusion_fatal("--fault: bad spec '", spec,
                             "' (want KIND[:after[:delay[:prob]]])");
            }
            opt.faults.faults.push_back(f);
        };
        // --system accepts both "--system K" and "--system=K".
        if (a.rfind("--system=", 0) == 0) {
            parseSystemList(argv[0], a.substr(9), opt.systems);
            continue;
        }
        if (a.rfind("--fault=", 0) == 0) {
            parseFault(a.substr(8));
            continue;
        }
        if (a.rfind("--fault-seed=", 0) == 0) {
            opt.faults.seed = std::strtoull(
                a.substr(13).c_str(), nullptr, 10);
            continue;
        }
        if (a == "--system") {
            parseSystemList(argv[0], next(), opt.systems);
        } else if (a == "--small") {
            opt.scale = workloads::Scale::Small;
        } else if (a == "--paper") {
            opt.scale = workloads::Scale::Paper;
        } else if (a == "--jobs") {
            long n = std::atol(next().c_str());
            if (n < 1) {
                usage(argv[0]);
                fusion_fatal("--jobs must be >= 1");
            }
            opt.jobs = static_cast<std::size_t>(n);
        } else if (a == "--json") {
            opt.jsonPath = next();
        } else if (a == "--guard") {
            opt.guard = true;
        } else if (a == "--fault") {
            parseFault(next());
        } else if (a == "--fault-seed") {
            opt.faults.seed =
                std::strtoull(next().c_str(), nullptr, 10);
        } else if (a == "--trace-out") {
            opt.traceOut = next();
        } else if (a == "--trace-kinds") {
            opt.traceKinds = next();
        } else if (a == "--trace-limit") {
            long n = std::atol(next().c_str());
            if (n < 1) {
                usage(argv[0]);
                fusion_fatal("--trace-limit must be >= 1");
            }
            opt.traceLimit = static_cast<std::size_t>(n);
        } else if (a == "--metrics-interval") {
            long n = std::atol(next().c_str());
            if (n < 1) {
                usage(argv[0]);
                fusion_fatal("--metrics-interval must be >= 1");
            }
            opt.metricsInterval = static_cast<Tick>(n);
        } else if (a == "--shard-domains") {
            long n = std::atol(next().c_str());
            if (n < 1) {
                usage(argv[0]);
                fusion_fatal("--shard-domains must be >= 1");
            }
            opt.shardDomains = static_cast<std::uint32_t>(n);
        } else if (a == "--trace-dir") {
            opt.traceDir = next();
        } else if (a == "--cache-dir") {
            opt.cacheDir = next();
        } else if (a == "--no-cache") {
            opt.noCache = true;
        } else if (a == "--cache-smoke") {
            opt.cacheSmoke = true;
        } else if (a == "-h" || a == "--help") {
            usage(argv[0]);
            std::exit(0);
        } else if (extra) {
            extra->push_back(a);
        } else {
            usage(argv[0]);
            fusion_fatal("unknown option: ", a);
        }
    }
    // --cache-smoke isolates itself in a fresh private cache so the
    // cold pass really is cold and nothing the user cares about is
    // wiped; bench::runSweep removes it again afterwards.
    if (opt.cacheSmoke) {
        namespace fs = std::filesystem;
        std::error_code ec;
        fs::path d = fs::temp_directory_path(ec);
        if (ec)
            d = ".";
        d /= "fusion-cache-smoke-" +
             std::to_string(static_cast<unsigned long>(::getpid()));
        fs::remove_all(d, ec);
        opt.noCache = false;
        opt.cacheDir = d.string();
        opt.traceDir.clear();
    }
    // Arm the global trace record/replay store here, before the
    // harness builds any program: mustBuild() and the sweep engine's
    // ProgramCache both route through core::buildProgram, so every
    // build after this line is captured once and replayed from disk.
    trace::setGlobalStoreDir(resolvedTraceDir(opt));
    return opt;
}

/** Shorthand for the common (paper-preset system, workload) job. */
inline sweep::SweepJob
job(core::SystemKind kind, const std::string &workload,
    workloads::Scale scale)
{
    sweep::SweepJob j;
    j.cfg = core::SystemConfig::preset(
        core::SystemConfig::Preset::Paper, kind);
    j.workload = workload;
    j.scale = scale;
    j.tag = workload + "/" + core::systemKindShortName(kind);
    return j;
}

/** The --system list, or @p defaults when the flag was not given. */
inline std::vector<core::SystemKind>
kindsOrDefault(const Options &opt,
               std::vector<core::SystemKind> defaults)
{
    return opt.systems.empty() ? std::move(defaults) : opt.systems;
}

/** A single-system harness's kind: the first --system value (extras
 *  are rejected), or @p fallback. */
inline core::SystemKind
kindOrDefault(const Options &opt, core::SystemKind fallback)
{
    if (opt.systems.empty())
        return fallback;
    if (opt.systems.size() > 1)
        fusion_fatal("--system: this harness runs exactly one "
                     "system kind");
    return opt.systems.front();
}

/** Fixed-comparison harnesses call this to ignore --system. */
inline void
noteFixedComparison(const Options &opt, const char *what)
{
    if (!opt.systems.empty()) {
        std::fprintf(stderr,
                     "note: %s compares a fixed set of systems; "
                     "--system ignored\n",
                     what);
    }
}

/**
 * Submit @p jobs with the harness options: worker count from
 * --jobs, live progress on stderr when it is a terminal, and the
 * SweepReport written when --json was given. Results are ordered by
 * submission index, so table-rendering code indexes them exactly as
 * it pushed the jobs.
 */
/** The --guard knob set: liveness + safety checks, no fault plan. */
inline guard::GuardConfig
guardChecks()
{
    guard::GuardConfig g;
    g.noProgressTicks = 1u << 20;
    g.invariantPeriod = 256;
    g.invariantsAtEnd = true;
    return g;
}

/** The telemetry knob set for the --trace-... / --metrics-... flags. */
inline obs::ObsConfig
obsConfig(const Options &opt)
{
    obs::ObsConfig oc;
    oc.trace = !opt.traceOut.empty();
    oc.traceLimit = opt.traceLimit;
    oc.metricsInterval = opt.metricsInterval;
    if (!opt.traceKinds.empty()) {
        std::string err;
        oc.traceKindMask = obs::parseKindMask(opt.traceKinds, &err);
        if (!err.empty())
            fusion_fatal("--trace-kinds: ", err);
    }
    return oc;
}

inline std::vector<core::RunResult>
runSweep(const char *sweepName,
         const std::vector<sweep::SweepJob> &jobs,
         const Options &opt)
{
    // --guard / --trace-* / --metrics-interval instrument every job;
    // jobs are otherwise untouched, so a plain harness run stays
    // byte-identical.
    std::vector<sweep::SweepJob> guarded;
    const std::vector<sweep::SweepJob> *list = &jobs;
    if (opt.guard || opt.telemetry() || opt.faultsArmed() ||
        opt.shardDomains > 1) {
        guarded = jobs;
        for (auto &j : guarded) {
            if (opt.guard)
                j.cfg.guard = guardChecks();
            if (opt.faultsArmed())
                j.cfg.guard.schedule = opt.faults;
            if (opt.telemetry())
                j.cfg.obs = obsConfig(opt);
            if (opt.shardDomains > 1)
                j.cfg.shardDomains = opt.shardDomains;
        }
        list = &guarded;
    }

    // Content-addressed result cache (DESIGN.md §10): on by default,
    // off via --no-cache. Telemetry- or fault-instrumented jobs are
    // individually refused by ResultCache::cacheable, so armed
    // flags never change what a cached entry means.
    const std::string cacheDir = resolvedCacheDir(opt);
    std::unique_ptr<sweep::ResultCache> cache;
    if (!cacheDir.empty())
        cache = std::make_unique<sweep::ResultCache>(cacheDir);
    sweep::SweepCacheStats cstats;
    // Cache probes become spans on a "result-cache" Perfetto process
    // when both the cache and --trace-out are active.
    std::shared_ptr<obs::SpanTracer> cacheSpans;
    if (cache && !opt.traceOut.empty()) {
        obs::ObsConfig oc;
        oc.trace = true;
        cacheSpans = std::make_shared<obs::SpanTracer>(oc);
    }

    sweep::SweepOptions so;
    so.jobs = opt.jobs;
    so.cache = cache.get();
    so.cacheStats = cache ? &cstats : nullptr;
    so.cacheSpans = cacheSpans.get();
    if (isatty(STDERR_FILENO)) {
        so.progress = [](const sweep::SweepProgress &p) {
            std::fprintf(stderr, "\r[%zu/%zu] %-32s", p.completed,
                         p.total, p.job->tag.c_str());
            if (p.completed == p.total)
                std::fprintf(stderr, "\n");
        };
    }
    auto results = core::runSweep(*list, so);

    // --cache-smoke: replay the identical sweep against the cache
    // just populated. Every cacheable point must hit, nothing may
    // re-simulate, and the regenerated report (counters aside) must
    // be byte-identical — including the wall-clock perf blocks,
    // which warm runs replay from the stored entries.
    if (opt.cacheSmoke && cache) {
        sweep::SweepCacheStats warm;
        sweep::SweepOptions so2;
        so2.jobs = opt.jobs;
        so2.cache = cache.get();
        so2.cacheStats = &warm;
        auto results2 = core::runSweep(*list, so2);
        const std::string cold = sweep::reportJson(
            sweepName, *list, results, /*includePerf=*/true);
        const std::string rewarmed = sweep::reportJson(
            sweepName, *list, results2, /*includePerf=*/true);
        const bool pass = warm.misses == 0 && cold == rewarmed;
        std::fprintf(stderr,
                     "cache smoke: cold misses=%llu warm hits=%llu "
                     "misses=%llu deduped=%llu report %s => %s\n",
                     static_cast<unsigned long long>(cstats.misses),
                     static_cast<unsigned long long>(warm.hits),
                     static_cast<unsigned long long>(warm.misses),
                     static_cast<unsigned long long>(warm.deduped),
                     cold == rewarmed ? "identical" : "DIFFERS",
                     pass ? "PASS" : "FAIL");
        std::error_code ec;
        std::filesystem::remove_all(cacheDir, ec);
        if (!pass)
            std::exit(2);
    }

    if (!opt.jsonPath.empty()) {
        // Machine-readable reports carry the wall-clock "perf"
        // blocks (per run + sweep aggregate); terminal output and
        // determinism tests never see them. Cache counters ride
        // along whenever the cache was consulted.
        sweep::writeReportFile(opt.jsonPath, sweepName, *list,
                               results, /*includePerf=*/true,
                               cache ? &cstats : nullptr);
        std::fprintf(stderr, "sweep report written to %s\n",
                     opt.jsonPath.c_str());
    }
    if (!opt.traceOut.empty()) {
        // One Perfetto process per job; pid = submission index.
        std::vector<obs::TraceProcess> procs;
        std::size_t spans = 0;
        for (std::size_t i = 0; i < results.size(); ++i) {
            procs.push_back(
                obs::TraceProcess{(*list)[i].tag, results[i].trace});
            if (results[i].trace)
                spans += results[i].trace->retained();
        }
        if (cacheSpans && cacheSpans->retained() > 0) {
            procs.push_back(
                obs::TraceProcess{"result-cache", cacheSpans});
            spans += cacheSpans->retained();
        }
        std::string err;
        if (!obs::writePerfettoFile(opt.traceOut, procs, &err))
            fusion_fatal("--trace-out: ", err);
        // Self-check: the file we just wrote must parse as JSON
        // (this is what the ObsBenchSmoke ctest entry relies on).
        std::ifstream in(opt.traceOut, std::ios::binary);
        std::stringstream buf;
        buf << in.rdbuf();
        if (!obs::jsonParses(buf.str(), &err)) {
            std::fprintf(stderr,
                         "trace %s failed JSON validation: %s\n",
                         opt.traceOut.c_str(), err.c_str());
            std::exit(2);
        }
        std::fprintf(stderr, "trace written to %s (%zu spans)\n",
                     opt.traceOut.c_str(), spans);
    }

    // Fault isolation: failed jobs are recorded, siblings complete;
    // the harness reports them once, in one line, and exits nonzero.
    std::size_t failed = 0;
    std::string summary;
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (!results[i].failed())
            continue;
        ++failed;
        if (!summary.empty())
            summary += ", ";
        summary += (*list)[i].tag;
        summary += " (";
        summary +=
            guard::errorCategoryName(results[i].error->category);
        summary += ")";
    }
    if (failed != 0) {
        std::fprintf(stderr, "%zu/%zu sweep job(s) FAILED: %s\n",
                     failed, results.size(), summary.c_str());
        std::exit(2);
    }
    return results;
}

/** Build a program by name or die with the known-name list. */
inline trace::Program
mustBuild(const std::string &name, workloads::Scale scale)
{
    auto p = core::buildProgram(name, scale);
    if (!p)
        fusion_fatal(core::unknownWorkloadMessage(name));
    return std::move(*p);
}

/** Display name lookup ("FFT", "DISP.", ...). */
inline std::string
displayName(const std::string &workload)
{
    auto w = workloads::makeWorkload(workload);
    return w ? w->displayName() : workload;
}

/** Print a header banner for a harness. */
inline void
banner(const char *what, const char *paper_ref)
{
    std::printf("=== %s ===\n", what);
    std::printf("reproduces: %s\n", paper_ref);
    std::printf("(shapes, not absolute numbers, are the "
                "reproduction target; see EXPERIMENTS.md)\n\n");
}

} // namespace fusion::bench

#endif // FUSION_BENCH_BENCH_UTIL_HH
