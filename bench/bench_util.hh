/**
 * @file
 * Shared helpers for the paper-reproduction bench harnesses.
 *
 * Every harness regenerates one table or figure of the paper's
 * evaluation by building a sweep-job list and submitting it to the
 * parallel sweep engine, then rendering the ordered results. All
 * harnesses share one CLI:
 *
 *   --small       fast CI-size inputs (default: paper scale)
 *   --jobs N      sweep worker threads (default: hardware threads)
 *   --json FILE   also write the machine-readable SweepReport
 *   --guard       enable the hardening layer (watchdog + periodic
 *                 invariant checkers; docs/HARDENING.md)
 *
 * Output is identical for every --jobs value: results land by
 * submission index regardless of completion order. When any sweep
 * entry fails, the harness prints a one-line summary of the failed
 * jobs on stderr and exits with status 2 (the SweepReport, when
 * requested, still records every job including the failures).
 */

#ifndef FUSION_BENCH_BENCH_UTIL_HH
#define FUSION_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/reporters.hh"
#include "core/runner.hh"
#include "obs/json_lint.hh"
#include "obs/perfetto.hh"
#include "sim/logging.hh"
#include "trace/analysis.hh"

namespace fusion::bench
{

/** Parsed shared harness CLI. */
struct Options
{
    workloads::Scale scale = workloads::Scale::Paper;
    std::size_t jobs = sweep::defaultJobs();
    std::string jsonPath;
    bool guard = false;
    /** --system selection (empty: the harness's own default set).
     *  Harnesses whose comparison is intrinsically fixed print a
     *  note and ignore it. */
    std::vector<core::SystemKind> systems;
    // Telemetry (docs/OBSERVABILITY.md). All default-off: a plain
    // harness run carries no observability state at all.
    std::string traceOut;
    std::string traceKinds;
    std::size_t traceLimit = std::size_t{1} << 16;
    Tick metricsInterval = 0;
    /** --shard-domains: event-kernel domains per job (DESIGN.md §8;
     *  1 = serial kernel, byte-identical output either way). */
    std::uint32_t shardDomains = 1;
    /** --fault/--fault-seed: armed on every job (docs/HARDENING.md). */
    guard::FaultSchedule faults;

    bool telemetry() const
    {
        return !traceOut.empty() || metricsInterval > 0;
    }
    bool faultsArmed() const { return !faults.empty(); }
};

inline void
usage(const char *argv0)
{
    std::printf("usage: %s [--small] [--jobs N] [--json FILE] "
                "[--guard] [--system K[,K...]] [--trace-out FILE]\n"
                "  --small      CI-size inputs (default: paper "
                "scale)\n"
                "  --jobs N     parallel sweep workers (default: "
                "%zu)\n"
                "  --json FILE  write the machine-readable sweep "
                "report\n"
                "  --system K[,K...]  system kind(s): auto, "
                "scratch, shared, fusion,\n"
                "               fusion-dx, fusion-mesi (short "
                "names accepted;\n"
                "               fixed-comparison harnesses ignore "
                "this)\n"
                "  --guard      enable watchdog + invariant "
                "checkers (docs/HARDENING.md)\n"
                "  --trace-out FILE       write a Perfetto span "
                "trace (docs/OBSERVABILITY.md)\n"
                "  --trace-limit N        spans retained per job "
                "(default 65536)\n"
                "  --trace-kinds a,b,...  only trace these span "
                "kinds (default: all)\n"
                "  --metrics-interval N   sample gauges every N "
                "ticks into the JSON report\n"
                "  --shard-domains N      event-kernel domains per "
                "job (default 1 = serial;\n"
                "               output is byte-identical for every "
                "N; DESIGN.md §8)\n"
                "  --fault KIND[:after[:delay[:prob]]]  arm a fault "
                "on every job (repeatable;\n"
                "               kinds: leak-mshr, drop-writeback, "
                "delay-grant, corrupt-lease,\n"
                "               drop-flit, dup-flit, reorder-flit, "
                "dma-truncate, dma-stall,\n"
                "               corrupt-dir, stale-host-l1; "
                "docs/HARDENING.md)\n"
                "  --fault-seed N         seed for probabilistic "
                "fault draws\n",
                argv0, sweep::defaultJobs());
}

/** Parse a comma-separated --system value into @p out or die. */
inline void
parseSystemList(const char *argv0, const std::string &vals,
                std::vector<core::SystemKind> &out)
{
    std::stringstream ss(vals);
    std::string tok;
    bool any = false;
    while (std::getline(ss, tok, ',')) {
        if (tok.empty())
            continue;
        auto k = core::parseSystemKind(tok);
        if (!k) {
            usage(argv0);
            fusion_fatal("--system: unknown system kind '", tok,
                         "' (want auto, scratch, shared, fusion, "
                         "fusion-dx, or fusion-mesi)");
        }
        out.push_back(*k);
        any = true;
    }
    if (!any) {
        usage(argv0);
        fusion_fatal("--system: empty system list");
    }
}

/**
 * Parse the shared flags. Unrecognized arguments are fatal unless
 * @p extra is given, in which case they are returned for the
 * harness to interpret (positional workload names etc.).
 */
inline Options
parseArgs(int argc, char **argv,
          std::vector<std::string> *extra = nullptr)
{
    // Honor FUSION_DEBUG=ACC,MESI,OBS,... for every harness.
    Debug::initFromEnvironment();
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage(argv[0]);
                fusion_fatal("missing value for ", a);
            }
            return argv[++i];
        };
        auto parseFault = [&](const std::string &spec) {
            guard::ArmedFault f;
            if (!guard::parseFaultSpec(spec, f)) {
                usage(argv[0]);
                fusion_fatal("--fault: bad spec '", spec,
                             "' (want KIND[:after[:delay[:prob]]])");
            }
            opt.faults.faults.push_back(f);
        };
        // --system accepts both "--system K" and "--system=K".
        if (a.rfind("--system=", 0) == 0) {
            parseSystemList(argv[0], a.substr(9), opt.systems);
            continue;
        }
        if (a.rfind("--fault=", 0) == 0) {
            parseFault(a.substr(8));
            continue;
        }
        if (a.rfind("--fault-seed=", 0) == 0) {
            opt.faults.seed = std::strtoull(
                a.substr(13).c_str(), nullptr, 10);
            continue;
        }
        if (a == "--system") {
            parseSystemList(argv[0], next(), opt.systems);
        } else if (a == "--small") {
            opt.scale = workloads::Scale::Small;
        } else if (a == "--paper") {
            opt.scale = workloads::Scale::Paper;
        } else if (a == "--jobs") {
            long n = std::atol(next().c_str());
            if (n < 1) {
                usage(argv[0]);
                fusion_fatal("--jobs must be >= 1");
            }
            opt.jobs = static_cast<std::size_t>(n);
        } else if (a == "--json") {
            opt.jsonPath = next();
        } else if (a == "--guard") {
            opt.guard = true;
        } else if (a == "--fault") {
            parseFault(next());
        } else if (a == "--fault-seed") {
            opt.faults.seed =
                std::strtoull(next().c_str(), nullptr, 10);
        } else if (a == "--trace-out") {
            opt.traceOut = next();
        } else if (a == "--trace-kinds") {
            opt.traceKinds = next();
        } else if (a == "--trace-limit") {
            long n = std::atol(next().c_str());
            if (n < 1) {
                usage(argv[0]);
                fusion_fatal("--trace-limit must be >= 1");
            }
            opt.traceLimit = static_cast<std::size_t>(n);
        } else if (a == "--metrics-interval") {
            long n = std::atol(next().c_str());
            if (n < 1) {
                usage(argv[0]);
                fusion_fatal("--metrics-interval must be >= 1");
            }
            opt.metricsInterval = static_cast<Tick>(n);
        } else if (a == "--shard-domains") {
            long n = std::atol(next().c_str());
            if (n < 1) {
                usage(argv[0]);
                fusion_fatal("--shard-domains must be >= 1");
            }
            opt.shardDomains = static_cast<std::uint32_t>(n);
        } else if (a == "-h" || a == "--help") {
            usage(argv[0]);
            std::exit(0);
        } else if (extra) {
            extra->push_back(a);
        } else {
            usage(argv[0]);
            fusion_fatal("unknown option: ", a);
        }
    }
    return opt;
}

/** Shorthand for the common (paper-preset system, workload) job. */
inline sweep::SweepJob
job(core::SystemKind kind, const std::string &workload,
    workloads::Scale scale)
{
    sweep::SweepJob j;
    j.cfg = core::SystemConfig::preset(
        core::SystemConfig::Preset::Paper, kind);
    j.workload = workload;
    j.scale = scale;
    j.tag = workload + "/" + core::systemKindShortName(kind);
    return j;
}

/** The --system list, or @p defaults when the flag was not given. */
inline std::vector<core::SystemKind>
kindsOrDefault(const Options &opt,
               std::vector<core::SystemKind> defaults)
{
    return opt.systems.empty() ? std::move(defaults) : opt.systems;
}

/** A single-system harness's kind: the first --system value (extras
 *  are rejected), or @p fallback. */
inline core::SystemKind
kindOrDefault(const Options &opt, core::SystemKind fallback)
{
    if (opt.systems.empty())
        return fallback;
    if (opt.systems.size() > 1)
        fusion_fatal("--system: this harness runs exactly one "
                     "system kind");
    return opt.systems.front();
}

/** Fixed-comparison harnesses call this to ignore --system. */
inline void
noteFixedComparison(const Options &opt, const char *what)
{
    if (!opt.systems.empty()) {
        std::fprintf(stderr,
                     "note: %s compares a fixed set of systems; "
                     "--system ignored\n",
                     what);
    }
}

/**
 * Submit @p jobs with the harness options: worker count from
 * --jobs, live progress on stderr when it is a terminal, and the
 * SweepReport written when --json was given. Results are ordered by
 * submission index, so table-rendering code indexes them exactly as
 * it pushed the jobs.
 */
/** The --guard knob set: liveness + safety checks, no fault plan. */
inline guard::GuardConfig
guardChecks()
{
    guard::GuardConfig g;
    g.noProgressTicks = 1u << 20;
    g.invariantPeriod = 256;
    g.invariantsAtEnd = true;
    return g;
}

/** The telemetry knob set for the --trace-... / --metrics-... flags. */
inline obs::ObsConfig
obsConfig(const Options &opt)
{
    obs::ObsConfig oc;
    oc.trace = !opt.traceOut.empty();
    oc.traceLimit = opt.traceLimit;
    oc.metricsInterval = opt.metricsInterval;
    if (!opt.traceKinds.empty()) {
        std::string err;
        oc.traceKindMask = obs::parseKindMask(opt.traceKinds, &err);
        if (!err.empty())
            fusion_fatal("--trace-kinds: ", err);
    }
    return oc;
}

inline std::vector<core::RunResult>
runSweep(const char *sweepName,
         const std::vector<sweep::SweepJob> &jobs,
         const Options &opt)
{
    // --guard / --trace-* / --metrics-interval instrument every job;
    // jobs are otherwise untouched, so a plain harness run stays
    // byte-identical.
    std::vector<sweep::SweepJob> guarded;
    const std::vector<sweep::SweepJob> *list = &jobs;
    if (opt.guard || opt.telemetry() || opt.faultsArmed() ||
        opt.shardDomains > 1) {
        guarded = jobs;
        for (auto &j : guarded) {
            if (opt.guard)
                j.cfg.guard = guardChecks();
            if (opt.faultsArmed())
                j.cfg.guard.schedule = opt.faults;
            if (opt.telemetry())
                j.cfg.obs = obsConfig(opt);
            if (opt.shardDomains > 1)
                j.cfg.shardDomains = opt.shardDomains;
        }
        list = &guarded;
    }

    sweep::SweepOptions so;
    so.jobs = opt.jobs;
    if (isatty(STDERR_FILENO)) {
        so.progress = [](const sweep::SweepProgress &p) {
            std::fprintf(stderr, "\r[%zu/%zu] %-32s", p.completed,
                         p.total, p.job->tag.c_str());
            if (p.completed == p.total)
                std::fprintf(stderr, "\n");
        };
    }
    auto results = core::runSweep(*list, so);
    if (!opt.jsonPath.empty()) {
        // Machine-readable reports carry the wall-clock "perf"
        // blocks (per run + sweep aggregate); terminal output and
        // determinism tests never see them.
        sweep::writeReportFile(opt.jsonPath, sweepName, *list,
                               results, /*includePerf=*/true);
        std::fprintf(stderr, "sweep report written to %s\n",
                     opt.jsonPath.c_str());
    }
    if (!opt.traceOut.empty()) {
        // One Perfetto process per job; pid = submission index.
        std::vector<obs::TraceProcess> procs;
        std::size_t spans = 0;
        for (std::size_t i = 0; i < results.size(); ++i) {
            procs.push_back(
                obs::TraceProcess{(*list)[i].tag, results[i].trace});
            if (results[i].trace)
                spans += results[i].trace->retained();
        }
        std::string err;
        if (!obs::writePerfettoFile(opt.traceOut, procs, &err))
            fusion_fatal("--trace-out: ", err);
        // Self-check: the file we just wrote must parse as JSON
        // (this is what the ObsBenchSmoke ctest entry relies on).
        std::ifstream in(opt.traceOut, std::ios::binary);
        std::stringstream buf;
        buf << in.rdbuf();
        if (!obs::jsonParses(buf.str(), &err)) {
            std::fprintf(stderr,
                         "trace %s failed JSON validation: %s\n",
                         opt.traceOut.c_str(), err.c_str());
            std::exit(2);
        }
        std::fprintf(stderr, "trace written to %s (%zu spans)\n",
                     opt.traceOut.c_str(), spans);
    }

    // Fault isolation: failed jobs are recorded, siblings complete;
    // the harness reports them once, in one line, and exits nonzero.
    std::size_t failed = 0;
    std::string summary;
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (!results[i].failed())
            continue;
        ++failed;
        if (!summary.empty())
            summary += ", ";
        summary += (*list)[i].tag;
        summary += " (";
        summary +=
            guard::errorCategoryName(results[i].error->category);
        summary += ")";
    }
    if (failed != 0) {
        std::fprintf(stderr, "%zu/%zu sweep job(s) FAILED: %s\n",
                     failed, results.size(), summary.c_str());
        std::exit(2);
    }
    return results;
}

/** Build a program by name or die with the known-name list. */
inline trace::Program
mustBuild(const std::string &name, workloads::Scale scale)
{
    auto p = core::buildProgram(name, scale);
    if (!p)
        fusion_fatal(core::unknownWorkloadMessage(name));
    return std::move(*p);
}

/** Display name lookup ("FFT", "DISP.", ...). */
inline std::string
displayName(const std::string &workload)
{
    auto w = workloads::makeWorkload(workload);
    return w ? w->displayName() : workload;
}

/** Print a header banner for a harness. */
inline void
banner(const char *what, const char *paper_ref)
{
    std::printf("=== %s ===\n", what);
    std::printf("reproduces: %s\n", paper_ref);
    std::printf("(shapes, not absolute numbers, are the "
                "reproduction target; see EXPERIMENTS.md)\n\n");
}

} // namespace fusion::bench

#endif // FUSION_BENCH_BENCH_UTIL_HH
