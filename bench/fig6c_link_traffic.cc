/**
 * @file
 * Figure 6c — link message breakdown: requests (L0X->L1X MSG),
 * data responses (L1X->L0X DATA) and tile<->L2 traffic per system.
 * Shows the pull-based coherence request overhead of Lesson 4 and
 * the L0X's filtering of Lesson 3.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace fusion;
    auto opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 6c: Link traffic breakdown",
                  "Figure 6c (Section 5.2, Lessons 3-4)");

    const auto kKinds = bench::kindsOrDefault(
        opt, {core::SystemKind::Scratch, core::SystemKind::Shared,
              core::SystemKind::Fusion, core::SystemKind::FusionDx});
    const auto names = workloads::workloadNames();
    std::vector<sweep::SweepJob> jobs;
    for (const auto &name : names)
        for (auto kind : kKinds)
            jobs.push_back(bench::job(kind, name, opt.scale));
    auto results = bench::runSweep("fig6c_link_traffic", jobs, opt);

    std::printf("%-8s %-6s | %12s %12s %12s %12s %10s\n", "bench",
                "sys", "l0x>l1x msg", "l1x>l0x data", "l1x<>l2 msg",
                "l1x<>l2 data", "l0x>l0x");
    std::printf("%s\n", std::string(84, '-').c_str());

    std::size_t idx = 0;
    for (const auto &name : names) {
        for (auto kind : kKinds) {
            const core::RunResult &r = results[idx++];
            std::printf(
                "%-8s %-6s | %12llu %12llu %12llu %12llu %10llu\n",
                kind == kKinds.front()
                    ? bench::displayName(name).c_str()
                    : "",
                core::systemKindShortName(kind),
                static_cast<unsigned long long>(r.l0xL1xCtrlMsgs),
                static_cast<unsigned long long>(r.l0xL1xDataMsgs),
                static_cast<unsigned long long>(r.l1xL2CtrlMsgs),
                static_cast<unsigned long long>(r.l1xL2DataMsgs),
                static_cast<unsigned long long>(r.l0xL0xDataMsgs));
        }
        std::printf("\n");
    }
    std::printf("SCRATCH's l1x<>l2 columns are its DMA transfers; "
                "its tile links are idle.\n");
    return 0;
}
