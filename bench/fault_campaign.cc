/**
 * @file
 * Randomized fault-injection campaign driver (docs/HARDENING.md).
 *
 * Default mode runs a seeded campaign over the sweep pool: every
 * trial arms a random multi-fault schedule on a random (system,
 * workload) pair, triages the outcome against a clean golden run,
 * and the driver prints the per-kind detection-rate table. The exit
 * status is 2 unless the campaign is clean (no silent divergence, no
 * crash), so a ctest entry doubles as a detection regression gate.
 *
 *   fault_campaign --small --trials 32 --seed 7 --jobs 4
 *
 * --shrink additionally delta-debugs the first failing trial down to
 * a minimal schedule and prints a one-line reproducer.
 *
 * --repro replays a single trial from the shared --fault /
 * --fault-seed flags (this is the command line the shrinker prints):
 *
 *   fault_campaign --repro --system fusion --workload adpcm --small \
 *       --fault-seed 9 --fault corrupt-dir:4:512
 */

#include "bench_util.hh"

#include "sim/guard/campaign.hh"

namespace
{

void
localUsage(const char *argv0)
{
    fusion::bench::usage(argv0);
    std::printf(
        "campaign options:\n"
        "  --trials N      randomized trials (default 16)\n"
        "  --seed N        campaign master seed (default 1)\n"
        "  --max-faults N  max armed faults per trial (default 3)\n"
        "  --workload W    workload pool entry (repeatable; "
        "default adpcm)\n"
        "  --shrink        delta-debug the first failing trial and "
        "print a reproducer\n"
        "  --repro         replay one trial from --fault/--fault-seed "
        "instead of a campaign\n");
}

void
printTrial(const fusion::guard::TrialResult &t)
{
    namespace guard = fusion::guard;
    std::printf("system:    %s\nworkload:  %s\noutcome:   %s\n",
                fusion::core::systemKindCliName(t.system),
                t.workload.c_str(),
                guard::trialOutcomeName(t.outcome));
    std::printf("schedule:  seed=%llu",
                static_cast<unsigned long long>(t.schedule.seed));
    for (const auto &f : t.schedule.faults)
        std::printf(" %s", guard::faultSpec(f).c_str());
    std::printf("\nfired:     %u fault(s), kind mask 0x%x\n",
                t.faultsFired, t.firedMask);
    if (!t.errorCategory.empty())
        std::printf("error:     %s (%s)\n", t.errorCategory.c_str(),
                    t.errorComponent.c_str());
    std::printf("hash:      clean=%016llx result=%016llx\n",
                static_cast<unsigned long long>(t.cleanHash),
                static_cast<unsigned long long>(t.resultHash));
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace fusion;

    std::vector<std::string> extra;
    bench::Options opt = bench::parseArgs(argc, argv, &extra);

    guard::CampaignConfig cc;
    cc.systems = opt.systems;
    cc.scale = opt.scale;
    cc.jobs = opt.jobs;
    bool repro = false;
    bool shrink = false;
    for (std::size_t i = 0; i < extra.size(); ++i) {
        const std::string &a = extra[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= extra.size()) {
                localUsage(argv[0]);
                fusion_fatal("missing value for ", a);
            }
            return extra[++i];
        };
        if (a == "--trials") {
            cc.trials = std::strtoull(next().c_str(), nullptr, 10);
        } else if (a == "--seed") {
            cc.seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (a == "--max-faults") {
            cc.maxFaults =
                std::strtoull(next().c_str(), nullptr, 10);
            if (cc.maxFaults < 1) {
                localUsage(argv[0]);
                fusion_fatal("--max-faults must be >= 1");
            }
        } else if (a == "--workload") {
            cc.workloads.push_back(next());
        } else if (a == "--shrink") {
            shrink = true;
        } else if (a == "--repro") {
            repro = true;
        } else {
            localUsage(argv[0]);
            fusion_fatal("unknown option: ", a);
        }
    }

    if (repro) {
        if (opt.faults.empty())
            fusion_fatal("--repro needs at least one --fault spec");
        core::SystemKind kind =
            bench::kindOrDefault(opt, core::SystemKind::Fusion);
        std::string w =
            cc.workloads.empty() ? "adpcm" : cc.workloads.front();
        guard::TrialResult t =
            guard::runTrial(kind, w, opt.scale, opt.faults);
        printTrial(t);
        return 0;
    }
    if (!opt.faults.empty())
        fusion_fatal("--fault only applies to --repro mode; "
                     "campaign trials draw their own schedules");

    bench::banner("fault-injection campaign",
                  "hardening layer detection coverage "
                  "(docs/HARDENING.md)");
    guard::CampaignReport report = guard::runCampaign(cc);
    std::printf("%s\n", report.renderTable().c_str());
    std::printf(
        "trials: %zu  benign: %zu  perturbed: %zu  detected: %zu  "
        "hang: %zu  silent: %zu  crash: %zu\n",
        report.trials.size(),
        report.countOutcome(guard::TrialOutcome::Benign),
        report.countOutcome(guard::TrialOutcome::Perturbed),
        report.countOutcome(guard::TrialOutcome::Detected),
        report.countOutcome(guard::TrialOutcome::Hang),
        report.countOutcome(guard::TrialOutcome::SilentDivergence),
        report.countOutcome(guard::TrialOutcome::Crash));

    if (!opt.jsonPath.empty()) {
        std::ofstream out(opt.jsonPath);
        if (!out)
            fusion_fatal("cannot open campaign report file ",
                         opt.jsonPath);
        out << report.toJson();
        std::fprintf(stderr, "campaign report written to %s\n",
                     opt.jsonPath.c_str());
    }

    if (shrink) {
        const guard::TrialResult *victim = nullptr;
        for (const auto &t : report.trials) {
            if (t.outcome == guard::TrialOutcome::Benign ||
                t.outcome == guard::TrialOutcome::Perturbed)
                continue;
            victim = &t;
            break;
        }
        if (!victim) {
            std::printf("\nshrink: no failing trial to minimize\n");
        } else if (auto s = guard::shrinkTrial(*victim, cc.scale)) {
            std::printf("\nshrunk trial %zu (%s) to %zu fault(s) in "
                        "%zu probe(s):\n  %s\n",
                        victim->index,
                        guard::trialOutcomeName(victim->outcome),
                        s->schedule.faults.size(), s->probes,
                        s->reproCommand.c_str());
        } else {
            std::printf("\nshrink: trial %zu did not reproduce\n",
                        victim->index);
        }
    }

    if (!report.clean()) {
        std::fprintf(stderr,
                     "campaign NOT clean: %zu silent-divergence, "
                     "%zu crash trial(s)\n",
                     report.countOutcome(
                         guard::TrialOutcome::SilentDivergence),
                     report.countOutcome(
                         guard::TrialOutcome::Crash));
        return 2;
    }
    return 0;
}
