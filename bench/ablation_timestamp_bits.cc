/**
 * @file
 * Ablation — ACC timestamp width. Section 4: the 32-bit timestamp
 * check adds ~15% tag energy; "provisioning for 24 bits accounts
 * for 98% of accelerator invocations ... 3 additional bits account
 * for all invocations". Timestamps must cover an invocation's
 * duration plus its lease, so the required width follows the
 * measured per-invocation cycle counts.
 */

#include <algorithm>
#include <cmath>

#include "bench_util.hh"

#include "energy/sram_model.hh"

namespace
{

unsigned
bitsFor(std::uint64_t v)
{
    unsigned b = 1;
    while ((1ull << b) <= v && b < 63)
        ++b;
    return b;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace fusion;
    auto opt = bench::parseArgs(argc, argv);
    const auto kKind =
        bench::kindOrDefault(opt, core::SystemKind::Fusion);
    bench::banner("Ablation: ACC timestamp width",
                  "Section 4 (24-bit sufficiency discussion)");

    const auto names = workloads::workloadNames();
    // The analysis needs each trace's lease times, so programs are
    // built here and shared with the sweep.
    std::vector<sweep::SweepJob> jobs;
    std::vector<std::shared_ptr<const trace::Program>> progs;
    for (const auto &name : names) {
        progs.push_back(std::make_shared<const trace::Program>(
            bench::mustBuild(name, opt.scale)));
        auto j = bench::job(kKind, name,
                            opt.scale);
        j.prog = progs.back();
        jobs.push_back(std::move(j));
    }
    auto results =
        bench::runSweep("ablation_timestamp_bits", jobs, opt);

    std::printf("%-8s %8s %8s %10s %10s %10s\n", "bench", "invs",
                "max bits", "p98 bits", "<=24 bits", "longest inv");
    std::printf("%s\n", std::string(62, '-').c_str());

    unsigned global_max = 0;
    for (std::size_t w = 0; w < names.size(); ++w) {
        const std::string &name = names[w];
        const trace::Program &prog = *progs[w];
        const core::RunResult &r = results[w];
        Cycles max_lt = 0;
        for (const auto &f : prog.functions)
            max_lt = std::max(max_lt, f.leaseTime);
        std::vector<unsigned> bits;
        std::uint64_t longest = 0;
        std::uint64_t within24 = 0;
        for (std::uint64_t c : r.invocationCycles) {
            bits.push_back(bitsFor(c + max_lt));
            longest = std::max(longest, c);
            if (bits.back() <= 24)
                ++within24;
        }
        std::sort(bits.begin(), bits.end());
        unsigned p98 =
            bits[std::min(bits.size() - 1,
                          static_cast<std::size_t>(
                              0.98 * static_cast<double>(
                                         bits.size())))];
        global_max = std::max(global_max, bits.back());
        std::printf("%-8s %8zu %8u %10u %9.1f%% %10llu\n",
                    bench::displayName(name).c_str(), bits.size(),
                    bits.back(), p98,
                    100.0 * static_cast<double>(within24) /
                        static_cast<double>(bits.size()),
                    static_cast<unsigned long long>(longest));
    }

    // Tag-energy cost of the timestamp field at various widths,
    // scaling the 32-bit/15% calibration point linearly.
    std::printf("\nL0X tag-energy overhead vs timestamp width "
                "(32 bits = +15%%):\n");
    energy::SramParams p{4096, 4, 64, 1, energy::SramKind::Cache};
    double base = energy::evaluateSram(p).readPj;
    for (unsigned w : {16u, 24u, 27u, 32u, 40u}) {
        double overhead = 0.15 * static_cast<double>(w) / 32.0;
        double pj = base * (1.0 + 0.15 * overhead /* tag share */);
        std::printf("  %2u bits: +%4.1f%% tag energy (%0.3f pJ/read "
                    "L0X)%s\n",
                    w, 100.0 * overhead, pj,
                    w >= global_max ? "  <- covers every invocation"
                                    : "");
    }
    return 0;
}
