/**
 * @file
 * Ablation — L0X replacement policy: LRU vs FIFO vs random. The
 * tiny 4 KB L0X (16 sets x 4 ways) is sensitive to conflict
 * behaviour on strided kernels (FFT's butterflies) and insensitive
 * on streaming ones.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace fusion;
    auto scale = bench::scaleFromArgs(argc, argv);
    bench::banner("Ablation: L0X replacement policy (FUSION)",
                  "design-space extension beyond the paper");

    struct Policy
    {
        const char *name;
        mem::ReplPolicy p;
    };
    const Policy kPolicies[] = {{"LRU", mem::ReplPolicy::Lru},
                                {"FIFO", mem::ReplPolicy::Fifo},
                                {"Random", mem::ReplPolicy::Random}};

    std::printf("%-8s %-8s | %12s %12s %12s\n", "bench", "policy",
                "cycles", "L0X fills", "energy(uJ)");
    std::printf("%s\n", std::string(60, '-').c_str());

    for (const auto &name : workloads::workloadNames()) {
        trace::Program prog = core::buildProgram(name, scale);
        bool first = true;
        for (const auto &pol : kPolicies) {
            core::SystemConfig cfg = core::SystemConfig::paperDefault(
                core::SystemKind::Fusion);
            cfg.l0xRepl = pol.p;
            core::RunResult r = core::runProgram(cfg, prog);
            std::printf("%-8s %-8s | %12llu %12llu %12.3f\n",
                        first ? bench::displayName(name).c_str()
                              : "",
                        pol.name,
                        static_cast<unsigned long long>(
                            r.accelCycles),
                        static_cast<unsigned long long>(r.l0xFills),
                        r.hierarchyPj() / 1e6);
            first = false;
        }
        std::printf("\n");
    }
    return 0;
}
