/**
 * @file
 * Ablation — L0X replacement policy: LRU vs FIFO vs random. The
 * tiny 4 KB L0X (16 sets x 4 ways) is sensitive to conflict
 * behaviour on strided kernels (FFT's butterflies) and insensitive
 * on streaming ones.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace fusion;
    auto opt = bench::parseArgs(argc, argv);
    const auto kKind =
        bench::kindOrDefault(opt, core::SystemKind::Fusion);
    bench::banner("Ablation: L0X replacement policy (FUSION)",
                  "design-space extension beyond the paper");

    struct Policy
    {
        const char *name;
        mem::ReplPolicy p;
    };
    const Policy kPolicies[] = {{"LRU", mem::ReplPolicy::Lru},
                                {"FIFO", mem::ReplPolicy::Fifo},
                                {"Random", mem::ReplPolicy::Random}};

    const auto names = workloads::workloadNames();
    std::vector<sweep::SweepJob> jobs;
    for (const auto &name : names) {
        for (const auto &pol : kPolicies) {
            auto j = bench::job(kKind, name,
                                opt.scale);
            j.cfg.l0xRepl = pol.p;
            j.tag += std::string("/") + pol.name;
            jobs.push_back(std::move(j));
        }
    }
    auto results =
        bench::runSweep("ablation_replacement", jobs, opt);

    std::printf("%-8s %-8s | %12s %12s %12s\n", "bench", "policy",
                "cycles", "L0X fills", "energy(uJ)");
    std::printf("%s\n", std::string(60, '-').c_str());

    std::size_t idx = 0;
    for (const auto &name : names) {
        bool first = true;
        for (const auto &pol : kPolicies) {
            const core::RunResult &r = results[idx++];
            std::printf("%-8s %-8s | %12llu %12llu %12.3f\n",
                        first ? bench::displayName(name).c_str()
                              : "",
                        pol.name,
                        static_cast<unsigned long long>(
                            r.accelCycles),
                        static_cast<unsigned long long>(r.l0xFills),
                        r.hierarchyPj() / 1e6);
            first = false;
        }
        std::printf("\n");
    }
    return 0;
}
