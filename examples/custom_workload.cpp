/**
 * @file
 * How to bring your own workload: implement the kernel over
 * Traced<> arrays, verify it against a golden reference, and run
 * the captured program on every system — everything a user needs
 * to evaluate a new offload candidate on the FUSION hierarchy.
 *
 * The example offloads a two-stage sparse pipeline:
 *   gather(AXC-0):  dense[i] = table[idx[i]]
 *   scale (AXC-1):  dense[i] *= alpha        (consumes AXC-0 output)
 * Indirect accesses give the gather poor spatial locality — watch
 * the L0X miss rate versus the streaming scale stage.
 */

#include <cstdio>
#include <vector>

#include "core/reporters.hh"
#include "core/runner.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "trace/analysis.hh"
#include "trace/recorder.hh"

using namespace fusion;

namespace
{

trace::Program
buildGatherScale(std::size_t n, std::size_t table_size)
{
    trace::Recorder rec("gather_scale");
    // MLP 8: gathers are independent; LT 600 cycles.
    FuncId gather = rec.addFunction({"gather", 0, 8, 600});
    FuncId scalef = rec.addFunction({"scale", 1, 2, 600});

    trace::VaAllocator va;
    trace::Traced<float> table(rec, va, table_size);
    trace::Traced<int> idx(rec, va, n);
    trace::Traced<float> dense(rec, va, n);

    Rng rng(0xC0FFEEu);
    for (std::size_t i = 0; i < table_size; ++i)
        table.poke(i, static_cast<float>(i) * 0.5f);
    std::vector<int> idx_ref(n);
    for (std::size_t i = 0; i < n; ++i) {
        idx_ref[i] = static_cast<int>(rng.below(table_size));
        idx.poke(i, idx_ref[i]);
    }

    rec.beginHostInit();
    hostTouchArray(rec, table, true);
    hostTouchArray(rec, idx, true);
    rec.end();

    const float alpha = 3.0f;

    rec.beginInvocation(gather);
    for (std::size_t i = 0; i < n; ++i) {
        int j = idx[i];
        dense[i] = table[static_cast<std::size_t>(j)];
        rec.intOps(4);
    }
    rec.end();

    rec.beginInvocation(scalef);
    for (std::size_t i = 0; i < n; ++i) {
        dense[i] = static_cast<float>(dense[i]) * alpha;
        rec.fpOps(1);
        rec.intOps(2);
    }
    rec.end();

    rec.beginHostFinal();
    hostTouchArray(rec, dense, false);
    rec.end();

    // Golden check: the functional results must match an
    // independent computation before we trust the trace.
    for (std::size_t i = 0; i < n; i += 7) {
        float want = static_cast<float>(idx_ref[i]) * 0.5f * alpha;
        fusion_assert(dense.peek(i) == want,
                      "golden check failed at ", i);
    }
    return rec.take();
}

} // namespace

int
main()
{
    trace::Program prog = buildGatherScale(8192, 16384);

    // The captured trace is analyzable before simulating anything.
    auto profiles = trace::profileFunctions(prog);
    std::printf("captured trace: %llu mem ops, working set %.1f "
                "kB\n",
                static_cast<unsigned long long>(prog.memOpCount()),
                trace::workingSet(prog).kilobytes());
    for (const auto &p : profiles) {
        std::printf("  %-8s %%LD=%.1f %%ST=%.1f %%SHR=%.1f\n",
                    p.name.c_str(), p.pctLd, p.pctSt, p.sharePct);
    }

    std::printf("\n%-10s %12s %14s\n", "system", "cycles",
                "energy(uJ)");
    for (auto kind :
         {core::SystemKind::Scratch, core::SystemKind::Shared,
          core::SystemKind::Fusion, core::SystemKind::FusionDx}) {
        auto r = core::runProgram(
            core::SystemConfig::preset(
            core::SystemConfig::Preset::Paper, kind), prog);
        std::printf("%-10s %12llu %14.3f\n",
                    core::systemKindName(kind),
                    static_cast<unsigned long long>(r.accelCycles),
                    r.hierarchyPj() / 1e6);
    }
    std::printf("\nNote how the random gather punishes the "
                "windowed DMA of SCRATCH\n(every window's read set "
                "is scattered) while the caches absorb it.\n");
    return 0;
}
