/**
 * @file
 * Quickstart: build one benchmark's trace, run it on all four
 * systems, and print the headline comparison (cycles + energy).
 *
 *   ./example_quickstart [workload] [--paper]
 *
 * Defaults to the ADPCM workload at the fast "Small" input scale.
 */

#include <cstdio>
#include <string>

#include "core/reporters.hh"
#include "core/runner.hh"

int
main(int argc, char **argv)
{
    using namespace fusion;

    std::string workload = "adpcm";
    workloads::Scale scale = workloads::Scale::Small;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--paper")
            scale = workloads::Scale::Paper;
        else
            workload = arg;
    }

    std::printf("building '%s' trace (runs the real kernels and "
                "verifies them against golden references)...\n",
                workload.c_str());
    auto built = core::buildProgram(workload, scale);
    if (!built) {
        std::fprintf(stderr, "%s\n",
                     core::unknownWorkloadMessage(workload).c_str());
        return 1;
    }
    trace::Program prog = std::move(*built);
    std::printf("  %zu functions, %zu invocations, %llu memory "
                "ops\n\n",
                prog.functions.size(), prog.invocations.size(),
                static_cast<unsigned long long>(prog.memOpCount()));

    core::RunResult scratch;
    std::printf("%-10s %14s %14s %16s\n", "system", "accel cycles",
                "DMA cycles", "energy (uJ)");
    for (auto kind :
         {core::SystemKind::Scratch, core::SystemKind::Shared,
          core::SystemKind::Fusion, core::SystemKind::FusionDx,
          core::SystemKind::FusionMesi}) {
        auto cfg = core::SystemConfig::preset(
            core::SystemConfig::Preset::Paper, kind);
        core::RunResult r = core::runProgram(cfg, prog);
        if (kind == core::SystemKind::Scratch)
            scratch = r;
        double speedup =
            static_cast<double>(scratch.accelCycles) /
            static_cast<double>(r.accelCycles ? r.accelCycles : 1);
        double esave = scratch.totalPj() /
                       (r.totalPj() > 0 ? r.totalPj() : 1.0);
        std::printf("%-10s %14llu %14llu %16.3f   (%.2fx perf, "
                    "%.2fx energy vs SCRATCH)\n",
                    core::systemKindName(kind),
                    static_cast<unsigned long long>(r.accelCycles),
                    static_cast<unsigned long long>(r.dmaCycles),
                    r.totalPj() / 1e6, speedup, esave);
    }
    return 0;
}
