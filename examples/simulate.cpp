/**
 * @file
 * fusion-simulate: the full command-line driver. Runs any workload
 * on any system organization with every configuration knob exposed,
 * and can dump the complete statistics tree and energy ledger.
 *
 *   ./example_simulate --workload fft --system fusion --paper
 *   ./example_simulate -w histogram -s scratch --spm 8192
 *   ./example_simulate -w disparity -s fusion-dx --overlap \
 *       --tiles 2 --l0x 8192 --l1x 262144 --stats stats.txt
 *
 * FUSION_DEBUG=ACC,... in the environment enables debug traces.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/reporters.hh"
#include "core/runner.hh"
#include "core/system.hh"
#include "sim/logging.hh"

using namespace fusion;

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  -w, --workload NAME   fft|disparity|tracking|adpcm|\n"
        "                        susan|filter|histogram "
        "(default adpcm)\n"
        "  -s, --system KIND     scratch|shared|fusion|fusion-dx|"
        "fusion-mesi (default fusion)\n"
        "      --paper           paper-scale inputs "
        "(default: small)\n"
        "      --l0x BYTES       private L0X capacity\n"
        "      --l1x BYTES       shared L1X capacity\n"
        "      --spm BYTES       scratchpad capacity (SCRATCH)\n"
        "      --repl POLICY     lru|fifo|random (L0X)\n"
        "      --write-through   write-through L0X (Table 4 mode)\n"
        "      --overlap         overlap independent invocations\n"
        "      --tiles N         number of accelerator tiles\n"
        "      --stats FILE      dump the stats tree + energy "
        "ledger\n"
        "  -h, --help\n",
        argv0);
}

bool
parseSystem(const std::string &s, core::SystemKind &out)
{
    // Canonical names + aliases (including "auto" for the
    // orchestrator) live next to SystemKind itself.
    auto k = core::parseSystemKind(s);
    if (!k)
        return false;
    out = *k;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Debug::initFromEnvironment();

    std::string workload = "adpcm";
    core::SystemKind kind = core::SystemKind::Fusion;
    workloads::Scale scale = workloads::Scale::Small;
    core::SystemConfig cfg = core::SystemConfig::preset(
            core::SystemConfig::Preset::Paper, kind);
    std::string stats_path;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fusion_fatal("missing value for ", a);
            return argv[++i];
        };
        if (a == "-w" || a == "--workload") {
            workload = next();
        } else if (a == "-s" || a == "--system") {
            if (!parseSystem(next(), kind))
                fusion_fatal("unknown system kind");
        } else if (a == "--paper") {
            scale = workloads::Scale::Paper;
        } else if (a == "--l0x") {
            cfg.l0xBytes = std::stoull(next());
        } else if (a == "--l1x") {
            cfg.l1xBytes = std::stoull(next());
        } else if (a == "--spm") {
            cfg.scratchpadBytes = std::stoull(next());
        } else if (a == "--repl") {
            std::string p = next();
            if (p == "lru")
                cfg.l0xRepl = mem::ReplPolicy::Lru;
            else if (p == "fifo")
                cfg.l0xRepl = mem::ReplPolicy::Fifo;
            else if (p == "random")
                cfg.l0xRepl = mem::ReplPolicy::Random;
            else
                fusion_fatal("unknown replacement policy: ", p);
        } else if (a == "--write-through") {
            cfg.l0xWriteThrough = true;
        } else if (a == "--overlap") {
            cfg.overlapInvocations = true;
        } else if (a == "--tiles") {
            cfg.numTiles =
                static_cast<std::uint32_t>(std::stoul(next()));
        } else if (a == "--stats") {
            stats_path = next();
        } else if (a == "-h" || a == "--help") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            fusion_fatal("unknown option: ", a);
        }
    }
    cfg.kind = kind;

    auto errs = cfg.validate();
    if (!errs.empty()) {
        for (const auto &e : errs)
            std::fprintf(stderr, "error: %s\n", e.c_str());
        return 1;
    }

    std::printf("building '%s' (%s scale)...\n", workload.c_str(),
                scale == workloads::Scale::Paper ? "paper"
                                                 : "small");
    auto built = core::buildProgram(workload, scale);
    if (!built)
        fusion_fatal(core::unknownWorkloadMessage(workload));
    trace::Program prog = std::move(*built);
    std::printf("  %zu functions, %zu invocations, %llu memory "
                "ops\n",
                prog.functions.size(), prog.invocations.size(),
                static_cast<unsigned long long>(
                    prog.memOpCount()));

    core::System sys(cfg, prog);
    core::RunResult r = sys.run();

    std::printf("\n%s results:\n", core::systemKindName(kind));
    std::printf("  total cycles        %llu\n",
                static_cast<unsigned long long>(r.totalCycles));
    std::printf("  accelerated region  %llu cycles\n",
                static_cast<unsigned long long>(r.accelCycles));
    if (r.dmaCycles) {
        std::printf("  DMA wait            %llu cycles (%.1f%%)\n",
                    static_cast<unsigned long long>(r.dmaCycles),
                    100.0 * static_cast<double>(r.dmaCycles) /
                        static_cast<double>(r.accelCycles));
    }
    std::printf("  dynamic energy      %.3f uJ total, %.3f uJ "
                "hierarchy\n",
                r.totalPj() / 1e6, r.hierarchyPj() / 1e6);
    std::printf("\n  per-function cycles:\n");
    for (const auto &[f, c] : r.funcCycles) {
        std::printf("    %-12s %llu\n", f.c_str(),
                    static_cast<unsigned long long>(c));
    }
    std::printf("\n  energy by component (pJ):\n");
    for (const auto &[comp, pj] : r.energyPj)
        std::printf("    %-22s %14.1f\n", comp.c_str(), pj);

    if (!stats_path.empty()) {
        std::ofstream out(stats_path);
        if (!out)
            fusion_fatal("cannot open ", stats_path);
        sys.ctx().stats.dump(out);
        out << "\n# energy ledger (pJ)\n";
        for (const auto &[comp, pj] :
             sys.ctx().energy.components())
            out << comp << " " << pj << "\n";
        std::printf("\nstats tree written to %s\n",
                    stats_path.c_str());
    }
    return 0;
}
