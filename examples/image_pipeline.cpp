/**
 * @file
 * The paper's Figure 1 motivating example, built directly against
 * the public trace API: an image pipeline whose step1() and step2()
 * are offloaded to two accelerators (AXC-1, AXC-2) while step3()
 * runs on the host.
 *
 *   in_img -> step1(AXC-1) -> tmp_1 -> step2(AXC-2) -> tmp_2
 *          -> step3(host) -> out_img
 *
 * Running it on SCRATCH vs FUSION shows exactly the effect the
 * introduction describes: the DMA ping-pong of tmp_1 through the
 * host L2 disappears when the tile is coherent.
 */

#include <cstdio>

#include "core/reporters.hh"
#include "core/runner.hh"
#include "trace/recorder.hh"

using namespace fusion;

namespace
{

trace::Program
buildFigure1Pipeline(std::size_t w, std::size_t h)
{
    trace::Recorder rec("figure1");
    FuncId step1 = rec.addFunction({"step1", 0, 4, 500});
    FuncId step2 = rec.addFunction({"step2", 1, 4, 500});

    trace::VaAllocator va;
    trace::Traced<float> in_img(rec, va, w * h);
    trace::Traced<float> tmp1(rec, va, w * h);
    trace::Traced<float> tmp2(rec, va, w * h);

    for (std::size_t i = 0; i < w * h; ++i)
        in_img.poke(i, static_cast<float>(i % 251));

    // Host writes the input image.
    rec.beginHostInit();
    hostTouchArray(rec, in_img, true);
    rec.end();

    // step1 on AXC-1: 3x1 horizontal smoothing.
    rec.beginInvocation(step1);
    for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
            std::size_t xl = x > 0 ? x - 1 : 0;
            std::size_t xr = x + 1 < w ? x + 1 : w - 1;
            float v = (in_img[y * w + xl] + in_img[y * w + x] +
                       in_img[y * w + xr]) /
                      3.0f;
            tmp1[y * w + x] = v;
            rec.fpOps(4);
            rec.intOps(6);
        }
    }
    rec.end();

    // step2 on AXC-2: consumes tmp_1 (the shared intermediate!),
    // 1x3 vertical gradient.
    rec.beginInvocation(step2);
    for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
            std::size_t yu = y > 0 ? y - 1 : 0;
            std::size_t yd = y + 1 < h ? y + 1 : h - 1;
            tmp2[y * w + x] =
                tmp1[yd * w + x] - tmp1[yu * w + x];
            rec.fpOps(2);
            rec.intOps(6);
        }
    }
    rec.end();

    // step3 runs on the host: it consumes tmp_2 incrementally.
    rec.beginHostFinal();
    hostTouchArray(rec, tmp2, false);
    rec.end();
    return rec.take();
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t dim = argc > 1 ? std::stoul(argv[1]) : 96;
    trace::Program prog = buildFigure1Pipeline(dim, dim);
    std::printf("Figure-1 pipeline: %zux%zu image, %llu memory "
                "ops, 2 accelerators + host step3\n\n",
                dim, dim,
                static_cast<unsigned long long>(prog.memOpCount()));

    std::printf("%-10s %12s %12s %14s %16s\n", "system", "cycles",
                "DMA cycles", "tmp_1 via L2?", "hier. energy(uJ)");
    for (auto kind :
         {core::SystemKind::Scratch, core::SystemKind::Shared,
          core::SystemKind::Fusion, core::SystemKind::FusionDx}) {
        auto r = core::runProgram(
            core::SystemConfig::preset(
            core::SystemConfig::Preset::Paper, kind), prog);
        // In SCRATCH the shared tmp_1 array crosses the expensive
        // tile<->L2 link twice (out of AXC-1, into AXC-2); the
        // coherent hierarchies keep it inside the tile.
        const char *ping_pong =
            kind == core::SystemKind::Scratch ? "yes (DMA x2)"
                                              : "no";
        std::printf("%-10s %12llu %12llu %14s %16.3f\n",
                    core::systemKindName(kind),
                    static_cast<unsigned long long>(r.accelCycles),
                    static_cast<unsigned long long>(r.dmaCycles),
                    ping_pong, r.hierarchyPj() / 1e6);
    }
    std::printf("\nThe l1x<->l2 data-message counts make the "
                "ping-pong visible:\n");
    for (auto kind :
         {core::SystemKind::Scratch, core::SystemKind::Fusion}) {
        auto r = core::runProgram(
            core::SystemConfig::preset(
            core::SystemConfig::Preset::Paper, kind), prog);
        std::printf("  %-10s %llu line transfers across the "
                    "tile<->L2 boundary\n",
                    core::systemKindName(kind),
                    static_cast<unsigned long long>(
                        r.l1xL2DataMsgs));
    }
    return 0;
}
