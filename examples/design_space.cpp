/**
 * @file
 * Design-space exploration with the public API: sweep the tile's
 * L0X and L1X capacities for one workload in parallel and print the
 * energy/performance frontier — the kind of study the FUSION
 * infrastructure exists to support.
 *
 *   ./example_design_space [workload] [--paper] [--jobs N]
 *                          [--json FILE]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/reporters.hh"
#include "core/runner.hh"
#include "sim/logging.hh"

int
main(int argc, char **argv)
{
    using namespace fusion;
    std::string workload = "filter";
    auto scale = workloads::Scale::Small;
    core::SweepOptions sweep_opt;
    sweep_opt.jobs = sweep::defaultJobs();
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fusion_fatal("missing value for ", a);
            return argv[++i];
        };
        if (a == "--paper")
            scale = workloads::Scale::Paper;
        else if (a == "--jobs")
            sweep_opt.jobs = static_cast<std::size_t>(
                std::atol(next().c_str()));
        else if (a == "--json")
            json_path = next();
        else
            workload = a;
    }

    auto prog = core::buildProgram(workload, scale);
    if (!prog) {
        std::fprintf(stderr, "%s\n",
                     core::unknownWorkloadMessage(workload).c_str());
        return 1;
    }
    std::printf("design-space sweep on '%s' (%llu memory ops)\n\n",
                workload.c_str(),
                static_cast<unsigned long long>(
                    prog->memOpCount()));

    // One job per (L0X, L1X) point, all sharing the captured trace.
    const std::vector<std::uint64_t> kL0x = {2048, 4096, 8192};
    const std::vector<std::uint64_t> kL1xKb = {32, 64, 256};
    auto shared_prog = std::make_shared<const trace::Program>(
        std::move(*prog));
    std::vector<core::SweepJob> jobs;
    for (std::uint64_t l0x : kL0x) {
        for (std::uint64_t l1x_kb : kL1xKb) {
            core::SweepJob j;
            j.cfg = core::SystemConfig::preset(
                core::SystemConfig::Preset::Paper,
                core::SystemKind::Fusion);
            j.cfg.l0xBytes = l0x;
            j.cfg.l1xBytes = l1x_kb * 1024;
            j.workload = workload;
            j.scale = scale;
            j.prog = shared_prog;
            j.tag = "l0x=" + std::to_string(l0x) +
                    "/l1x=" + std::to_string(l1x_kb) + "K";
            jobs.push_back(std::move(j));
        }
    }
    auto results = core::runSweep(jobs, sweep_opt);
    if (!json_path.empty())
        sweep::writeReportFile(json_path, "design_space", jobs,
                               results);

    struct Point
    {
        std::uint64_t l0x, l1x;
        const core::RunResult *r;
    };
    std::vector<Point> points;

    std::printf("%8s %8s | %12s %14s %12s\n", "L0X(B)", "L1X(KB)",
                "cycles", "energy(uJ)", "L1X accesses");
    std::printf("%s\n", std::string(62, '-').c_str());
    std::size_t idx = 0;
    for (std::uint64_t l0x : kL0x) {
        for (std::uint64_t l1x_kb : kL1xKb) {
            const core::RunResult &r = results[idx++];
            std::printf("%8llu %8llu | %12llu %14.3f %12llu\n",
                        static_cast<unsigned long long>(l0x),
                        static_cast<unsigned long long>(l1x_kb),
                        static_cast<unsigned long long>(
                            r.accelCycles),
                        r.hierarchyPj() / 1e6,
                        static_cast<unsigned long long>(
                            r.l1xHits + r.l1xMisses));
            points.push_back({l0x, l1x_kb, &r});
        }
    }

    // Pareto frontier on (cycles, energy).
    std::printf("\nPareto-optimal configurations:\n");
    for (const auto &p : points) {
        bool dominated = false;
        for (const auto &q : points) {
            if (&q == &p)
                continue;
            if (q.r->accelCycles <= p.r->accelCycles &&
                q.r->hierarchyPj() <= p.r->hierarchyPj() &&
                (q.r->accelCycles < p.r->accelCycles ||
                 q.r->hierarchyPj() < p.r->hierarchyPj())) {
                dominated = true;
                break;
            }
        }
        if (!dominated) {
            std::printf("  L0X %llu B + L1X %llu KB  (%llu cycles, "
                        "%.3f uJ)\n",
                        static_cast<unsigned long long>(p.l0x),
                        static_cast<unsigned long long>(p.l1x),
                        static_cast<unsigned long long>(
                            p.r->accelCycles),
                        p.r->hierarchyPj() / 1e6);
        }
    }
    return 0;
}
