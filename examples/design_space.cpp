/**
 * @file
 * Design-space exploration with the public API: sweep the tile's
 * L0X and L1X capacities for one workload and print the
 * energy/performance frontier — the kind of study the FUSION
 * infrastructure exists to support.
 *
 *   ./example_design_space [workload] [--paper]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/reporters.hh"
#include "core/runner.hh"

int
main(int argc, char **argv)
{
    using namespace fusion;
    std::string workload = "filter";
    auto scale = workloads::Scale::Small;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--paper")
            scale = workloads::Scale::Paper;
        else
            workload = a;
    }

    trace::Program prog = core::buildProgram(workload, scale);
    std::printf("design-space sweep on '%s' (%llu memory ops)\n\n",
                workload.c_str(),
                static_cast<unsigned long long>(prog.memOpCount()));

    struct Point
    {
        std::uint64_t l0x, l1x;
        core::RunResult r;
    };
    std::vector<Point> points;

    std::printf("%8s %8s | %12s %14s %12s\n", "L0X(B)", "L1X(KB)",
                "cycles", "energy(uJ)", "L1X accesses");
    std::printf("%s\n", std::string(62, '-').c_str());
    for (std::uint64_t l0x : {2048ull, 4096ull, 8192ull}) {
        for (std::uint64_t l1x_kb : {32ull, 64ull, 256ull}) {
            core::SystemConfig cfg = core::SystemConfig::paperDefault(
                core::SystemKind::Fusion);
            cfg.l0xBytes = l0x;
            cfg.l1xBytes = l1x_kb * 1024;
            core::RunResult r = core::runProgram(cfg, prog);
            std::printf("%8llu %8llu | %12llu %14.3f %12llu\n",
                        static_cast<unsigned long long>(l0x),
                        static_cast<unsigned long long>(l1x_kb),
                        static_cast<unsigned long long>(
                            r.accelCycles),
                        r.hierarchyPj() / 1e6,
                        static_cast<unsigned long long>(
                            r.l1xHits + r.l1xMisses));
            points.push_back({l0x, l1x_kb, std::move(r)});
        }
    }

    // Pareto frontier on (cycles, energy).
    std::printf("\nPareto-optimal configurations:\n");
    for (const auto &p : points) {
        bool dominated = false;
        for (const auto &q : points) {
            if (&q == &p)
                continue;
            if (q.r.accelCycles <= p.r.accelCycles &&
                q.r.hierarchyPj() <= p.r.hierarchyPj() &&
                (q.r.accelCycles < p.r.accelCycles ||
                 q.r.hierarchyPj() < p.r.hierarchyPj())) {
                dominated = true;
                break;
            }
        }
        if (!dominated) {
            std::printf("  L0X %llu B + L1X %llu KB  (%llu cycles, "
                        "%.3f uJ)\n",
                        static_cast<unsigned long long>(p.l0x),
                        static_cast<unsigned long long>(p.l1x),
                        static_cast<unsigned long long>(
                            p.r.accelCycles),
                        p.r.hierarchyPj() / 1e6);
        }
    }
    return 0;
}
