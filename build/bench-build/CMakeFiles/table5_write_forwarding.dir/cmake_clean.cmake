file(REMOVE_RECURSE
  "../bench/table5_write_forwarding"
  "../bench/table5_write_forwarding.pdb"
  "CMakeFiles/table5_write_forwarding.dir/table5_write_forwarding.cc.o"
  "CMakeFiles/table5_write_forwarding.dir/table5_write_forwarding.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_write_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
