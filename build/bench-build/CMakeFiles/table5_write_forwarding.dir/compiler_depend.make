# Empty compiler generated dependencies file for table5_write_forwarding.
# This may be replaced when dependencies are built.
