# Empty dependencies file for fig6a_energy_breakdown.
# This may be replaced when dependencies are built.
