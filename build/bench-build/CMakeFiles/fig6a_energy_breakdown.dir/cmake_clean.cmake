file(REMOVE_RECURSE
  "../bench/fig6a_energy_breakdown"
  "../bench/fig6a_energy_breakdown.pdb"
  "CMakeFiles/fig6a_energy_breakdown.dir/fig6a_energy_breakdown.cc.o"
  "CMakeFiles/fig6a_energy_breakdown.dir/fig6a_energy_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_energy_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
