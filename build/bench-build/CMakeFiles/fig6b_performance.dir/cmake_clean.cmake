file(REMOVE_RECURSE
  "../bench/fig6b_performance"
  "../bench/fig6b_performance.pdb"
  "CMakeFiles/fig6b_performance.dir/fig6b_performance.cc.o"
  "CMakeFiles/fig6b_performance.dir/fig6b_performance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
