# Empty compiler generated dependencies file for fig6b_performance.
# This may be replaced when dependencies are built.
