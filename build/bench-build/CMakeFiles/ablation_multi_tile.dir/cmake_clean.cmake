file(REMOVE_RECURSE
  "../bench/ablation_multi_tile"
  "../bench/ablation_multi_tile.pdb"
  "CMakeFiles/ablation_multi_tile.dir/ablation_multi_tile.cc.o"
  "CMakeFiles/ablation_multi_tile.dir/ablation_multi_tile.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multi_tile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
