# Empty dependencies file for ablation_multi_tile.
# This may be replaced when dependencies are built.
