file(REMOVE_RECURSE
  "../bench/table3_execution_metrics"
  "../bench/table3_execution_metrics.pdb"
  "CMakeFiles/table3_execution_metrics.dir/table3_execution_metrics.cc.o"
  "CMakeFiles/table3_execution_metrics.dir/table3_execution_metrics.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_execution_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
