file(REMOVE_RECURSE
  "../bench/table2_system_params"
  "../bench/table2_system_params.pdb"
  "CMakeFiles/table2_system_params.dir/table2_system_params.cc.o"
  "CMakeFiles/table2_system_params.dir/table2_system_params.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_system_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
