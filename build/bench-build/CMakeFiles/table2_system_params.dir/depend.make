# Empty dependencies file for table2_system_params.
# This may be replaced when dependencies are built.
