# Empty compiler generated dependencies file for fig6c_link_traffic.
# This may be replaced when dependencies are built.
