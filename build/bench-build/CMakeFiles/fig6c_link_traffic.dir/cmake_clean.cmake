file(REMOVE_RECURSE
  "../bench/fig6c_link_traffic"
  "../bench/fig6c_link_traffic.pdb"
  "CMakeFiles/fig6c_link_traffic.dir/fig6c_link_traffic.cc.o"
  "CMakeFiles/fig6c_link_traffic.dir/fig6c_link_traffic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6c_link_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
