file(REMOVE_RECURSE
  "../bench/ablation_lease_time"
  "../bench/ablation_lease_time.pdb"
  "CMakeFiles/ablation_lease_time.dir/ablation_lease_time.cc.o"
  "CMakeFiles/ablation_lease_time.dir/ablation_lease_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lease_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
