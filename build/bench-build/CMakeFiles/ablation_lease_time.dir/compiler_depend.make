# Empty compiler generated dependencies file for ablation_lease_time.
# This may be replaced when dependencies are built.
