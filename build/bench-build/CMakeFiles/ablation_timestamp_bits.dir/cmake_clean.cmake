file(REMOVE_RECURSE
  "../bench/ablation_timestamp_bits"
  "../bench/ablation_timestamp_bits.pdb"
  "CMakeFiles/ablation_timestamp_bits.dir/ablation_timestamp_bits.cc.o"
  "CMakeFiles/ablation_timestamp_bits.dir/ablation_timestamp_bits.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_timestamp_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
