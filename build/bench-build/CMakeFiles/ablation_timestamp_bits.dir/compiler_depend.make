# Empty compiler generated dependencies file for ablation_timestamp_bits.
# This may be replaced when dependencies are built.
