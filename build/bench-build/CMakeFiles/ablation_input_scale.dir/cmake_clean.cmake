file(REMOVE_RECURSE
  "../bench/ablation_input_scale"
  "../bench/ablation_input_scale.pdb"
  "CMakeFiles/ablation_input_scale.dir/ablation_input_scale.cc.o"
  "CMakeFiles/ablation_input_scale.dir/ablation_input_scale.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_input_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
