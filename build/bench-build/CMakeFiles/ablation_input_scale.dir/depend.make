# Empty dependencies file for ablation_input_scale.
# This may be replaced when dependencies are built.
