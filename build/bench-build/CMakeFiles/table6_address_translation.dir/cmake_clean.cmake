file(REMOVE_RECURSE
  "../bench/table6_address_translation"
  "../bench/table6_address_translation.pdb"
  "CMakeFiles/table6_address_translation.dir/table6_address_translation.cc.o"
  "CMakeFiles/table6_address_translation.dir/table6_address_translation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_address_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
