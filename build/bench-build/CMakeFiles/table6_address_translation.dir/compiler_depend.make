# Empty compiler generated dependencies file for table6_address_translation.
# This may be replaced when dependencies are built.
