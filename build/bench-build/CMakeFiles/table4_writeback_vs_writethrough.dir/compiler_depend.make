# Empty compiler generated dependencies file for table4_writeback_vs_writethrough.
# This may be replaced when dependencies are built.
