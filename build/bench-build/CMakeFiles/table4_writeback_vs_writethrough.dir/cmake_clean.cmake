file(REMOVE_RECURSE
  "../bench/table4_writeback_vs_writethrough"
  "../bench/table4_writeback_vs_writethrough.pdb"
  "CMakeFiles/table4_writeback_vs_writethrough.dir/table4_writeback_vs_writethrough.cc.o"
  "CMakeFiles/table4_writeback_vs_writethrough.dir/table4_writeback_vs_writethrough.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_writeback_vs_writethrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
