# Empty compiler generated dependencies file for fig7_large_vs_small.
# This may be replaced when dependencies are built.
