file(REMOVE_RECURSE
  "../bench/fig7_large_vs_small"
  "../bench/fig7_large_vs_small.pdb"
  "CMakeFiles/fig7_large_vs_small.dir/fig7_large_vs_small.cc.o"
  "CMakeFiles/fig7_large_vs_small.dir/fig7_large_vs_small.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_large_vs_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
