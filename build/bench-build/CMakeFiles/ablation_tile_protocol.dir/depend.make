# Empty dependencies file for ablation_tile_protocol.
# This may be replaced when dependencies are built.
