file(REMOVE_RECURSE
  "../bench/ablation_tile_protocol"
  "../bench/ablation_tile_protocol.pdb"
  "CMakeFiles/ablation_tile_protocol.dir/ablation_tile_protocol.cc.o"
  "CMakeFiles/ablation_tile_protocol.dir/ablation_tile_protocol.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tile_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
