# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for table6d_dma_vs_wset.
