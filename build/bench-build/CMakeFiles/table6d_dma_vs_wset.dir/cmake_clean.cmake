file(REMOVE_RECURSE
  "../bench/table6d_dma_vs_wset"
  "../bench/table6d_dma_vs_wset.pdb"
  "CMakeFiles/table6d_dma_vs_wset.dir/table6d_dma_vs_wset.cc.o"
  "CMakeFiles/table6d_dma_vs_wset.dir/table6d_dma_vs_wset.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6d_dma_vs_wset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
