# Empty compiler generated dependencies file for table6d_dma_vs_wset.
# This may be replaced when dependencies are built.
