file(REMOVE_RECURSE
  "../bench/ablation_l0x_size"
  "../bench/ablation_l0x_size.pdb"
  "CMakeFiles/ablation_l0x_size.dir/ablation_l0x_size.cc.o"
  "CMakeFiles/ablation_l0x_size.dir/ablation_l0x_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_l0x_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
