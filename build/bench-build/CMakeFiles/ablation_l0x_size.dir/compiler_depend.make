# Empty compiler generated dependencies file for ablation_l0x_size.
# This may be replaced when dependencies are built.
