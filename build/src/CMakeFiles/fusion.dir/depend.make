# Empty dependencies file for fusion.
# This may be replaced when dependencies are built.
