
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/accel_core.cc" "src/CMakeFiles/fusion.dir/accel/accel_core.cc.o" "gcc" "src/CMakeFiles/fusion.dir/accel/accel_core.cc.o.d"
  "/root/repo/src/accel/dma_engine.cc" "src/CMakeFiles/fusion.dir/accel/dma_engine.cc.o" "gcc" "src/CMakeFiles/fusion.dir/accel/dma_engine.cc.o.d"
  "/root/repo/src/accel/l0x.cc" "src/CMakeFiles/fusion.dir/accel/l0x.cc.o" "gcc" "src/CMakeFiles/fusion.dir/accel/l0x.cc.o.d"
  "/root/repo/src/accel/l1x.cc" "src/CMakeFiles/fusion.dir/accel/l1x.cc.o" "gcc" "src/CMakeFiles/fusion.dir/accel/l1x.cc.o.d"
  "/root/repo/src/accel/scratchpad_frontend.cc" "src/CMakeFiles/fusion.dir/accel/scratchpad_frontend.cc.o" "gcc" "src/CMakeFiles/fusion.dir/accel/scratchpad_frontend.cc.o.d"
  "/root/repo/src/accel/tile.cc" "src/CMakeFiles/fusion.dir/accel/tile.cc.o" "gcc" "src/CMakeFiles/fusion.dir/accel/tile.cc.o.d"
  "/root/repo/src/accel/tile_mesi.cc" "src/CMakeFiles/fusion.dir/accel/tile_mesi.cc.o" "gcc" "src/CMakeFiles/fusion.dir/accel/tile_mesi.cc.o.d"
  "/root/repo/src/coherence/protocol.cc" "src/CMakeFiles/fusion.dir/coherence/protocol.cc.o" "gcc" "src/CMakeFiles/fusion.dir/coherence/protocol.cc.o.d"
  "/root/repo/src/core/reporters.cc" "src/CMakeFiles/fusion.dir/core/reporters.cc.o" "gcc" "src/CMakeFiles/fusion.dir/core/reporters.cc.o.d"
  "/root/repo/src/core/runner.cc" "src/CMakeFiles/fusion.dir/core/runner.cc.o" "gcc" "src/CMakeFiles/fusion.dir/core/runner.cc.o.d"
  "/root/repo/src/core/system.cc" "src/CMakeFiles/fusion.dir/core/system.cc.o" "gcc" "src/CMakeFiles/fusion.dir/core/system.cc.o.d"
  "/root/repo/src/core/system_config.cc" "src/CMakeFiles/fusion.dir/core/system_config.cc.o" "gcc" "src/CMakeFiles/fusion.dir/core/system_config.cc.o.d"
  "/root/repo/src/energy/sram_model.cc" "src/CMakeFiles/fusion.dir/energy/sram_model.cc.o" "gcc" "src/CMakeFiles/fusion.dir/energy/sram_model.cc.o.d"
  "/root/repo/src/host/host_core.cc" "src/CMakeFiles/fusion.dir/host/host_core.cc.o" "gcc" "src/CMakeFiles/fusion.dir/host/host_core.cc.o.d"
  "/root/repo/src/host/host_l1.cc" "src/CMakeFiles/fusion.dir/host/host_l1.cc.o" "gcc" "src/CMakeFiles/fusion.dir/host/host_l1.cc.o.d"
  "/root/repo/src/host/llc.cc" "src/CMakeFiles/fusion.dir/host/llc.cc.o" "gcc" "src/CMakeFiles/fusion.dir/host/llc.cc.o.d"
  "/root/repo/src/interconnect/link.cc" "src/CMakeFiles/fusion.dir/interconnect/link.cc.o" "gcc" "src/CMakeFiles/fusion.dir/interconnect/link.cc.o.d"
  "/root/repo/src/mem/cache_array.cc" "src/CMakeFiles/fusion.dir/mem/cache_array.cc.o" "gcc" "src/CMakeFiles/fusion.dir/mem/cache_array.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/fusion.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/fusion.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/scratchpad.cc" "src/CMakeFiles/fusion.dir/mem/scratchpad.cc.o" "gcc" "src/CMakeFiles/fusion.dir/mem/scratchpad.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/fusion.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/fusion.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/fusion.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/fusion.dir/sim/stats.cc.o.d"
  "/root/repo/src/trace/analysis.cc" "src/CMakeFiles/fusion.dir/trace/analysis.cc.o" "gcc" "src/CMakeFiles/fusion.dir/trace/analysis.cc.o.d"
  "/root/repo/src/trace/recorder.cc" "src/CMakeFiles/fusion.dir/trace/recorder.cc.o" "gcc" "src/CMakeFiles/fusion.dir/trace/recorder.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/CMakeFiles/fusion.dir/trace/trace.cc.o" "gcc" "src/CMakeFiles/fusion.dir/trace/trace.cc.o.d"
  "/root/repo/src/vm/ax_rmap.cc" "src/CMakeFiles/fusion.dir/vm/ax_rmap.cc.o" "gcc" "src/CMakeFiles/fusion.dir/vm/ax_rmap.cc.o.d"
  "/root/repo/src/vm/ax_tlb.cc" "src/CMakeFiles/fusion.dir/vm/ax_tlb.cc.o" "gcc" "src/CMakeFiles/fusion.dir/vm/ax_tlb.cc.o.d"
  "/root/repo/src/vm/page_table.cc" "src/CMakeFiles/fusion.dir/vm/page_table.cc.o" "gcc" "src/CMakeFiles/fusion.dir/vm/page_table.cc.o.d"
  "/root/repo/src/workloads/adpcm.cc" "src/CMakeFiles/fusion.dir/workloads/adpcm.cc.o" "gcc" "src/CMakeFiles/fusion.dir/workloads/adpcm.cc.o.d"
  "/root/repo/src/workloads/disparity.cc" "src/CMakeFiles/fusion.dir/workloads/disparity.cc.o" "gcc" "src/CMakeFiles/fusion.dir/workloads/disparity.cc.o.d"
  "/root/repo/src/workloads/fft.cc" "src/CMakeFiles/fusion.dir/workloads/fft.cc.o" "gcc" "src/CMakeFiles/fusion.dir/workloads/fft.cc.o.d"
  "/root/repo/src/workloads/filter.cc" "src/CMakeFiles/fusion.dir/workloads/filter.cc.o" "gcc" "src/CMakeFiles/fusion.dir/workloads/filter.cc.o.d"
  "/root/repo/src/workloads/histogram.cc" "src/CMakeFiles/fusion.dir/workloads/histogram.cc.o" "gcc" "src/CMakeFiles/fusion.dir/workloads/histogram.cc.o.d"
  "/root/repo/src/workloads/susan.cc" "src/CMakeFiles/fusion.dir/workloads/susan.cc.o" "gcc" "src/CMakeFiles/fusion.dir/workloads/susan.cc.o.d"
  "/root/repo/src/workloads/tracking.cc" "src/CMakeFiles/fusion.dir/workloads/tracking.cc.o" "gcc" "src/CMakeFiles/fusion.dir/workloads/tracking.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/fusion.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/fusion.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
