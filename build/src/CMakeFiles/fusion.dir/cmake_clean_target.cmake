file(REMOVE_RECURSE
  "libfusion.a"
)
