
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_acc_protocol.cc" "tests/CMakeFiles/fusion_tests.dir/test_acc_protocol.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_acc_protocol.cc.o.d"
  "/root/repo/tests/test_accel_core.cc" "tests/CMakeFiles/fusion_tests.dir/test_accel_core.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_accel_core.cc.o.d"
  "/root/repo/tests/test_ax_rmap.cc" "tests/CMakeFiles/fusion_tests.dir/test_ax_rmap.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_ax_rmap.cc.o.d"
  "/root/repo/tests/test_ax_tlb.cc" "tests/CMakeFiles/fusion_tests.dir/test_ax_tlb.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_ax_tlb.cc.o.d"
  "/root/repo/tests/test_bank_scheduler.cc" "tests/CMakeFiles/fusion_tests.dir/test_bank_scheduler.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_bank_scheduler.cc.o.d"
  "/root/repo/tests/test_cache_array.cc" "tests/CMakeFiles/fusion_tests.dir/test_cache_array.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_cache_array.cc.o.d"
  "/root/repo/tests/test_conservation.cc" "tests/CMakeFiles/fusion_tests.dir/test_conservation.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_conservation.cc.o.d"
  "/root/repo/tests/test_dma_engine.cc" "tests/CMakeFiles/fusion_tests.dir/test_dma_engine.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_dma_engine.cc.o.d"
  "/root/repo/tests/test_dram.cc" "tests/CMakeFiles/fusion_tests.dir/test_dram.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_dram.cc.o.d"
  "/root/repo/tests/test_edge_cases.cc" "tests/CMakeFiles/fusion_tests.dir/test_edge_cases.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_edge_cases.cc.o.d"
  "/root/repo/tests/test_energy.cc" "tests/CMakeFiles/fusion_tests.dir/test_energy.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_energy.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/fusion_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_host_core.cc" "tests/CMakeFiles/fusion_tests.dir/test_host_core.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_host_core.cc.o.d"
  "/root/repo/tests/test_host_l1.cc" "tests/CMakeFiles/fusion_tests.dir/test_host_l1.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_host_l1.cc.o.d"
  "/root/repo/tests/test_l0x.cc" "tests/CMakeFiles/fusion_tests.dir/test_l0x.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_l0x.cc.o.d"
  "/root/repo/tests/test_link.cc" "tests/CMakeFiles/fusion_tests.dir/test_link.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_link.cc.o.d"
  "/root/repo/tests/test_llc_mesi.cc" "tests/CMakeFiles/fusion_tests.dir/test_llc_mesi.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_llc_mesi.cc.o.d"
  "/root/repo/tests/test_logging_rng.cc" "tests/CMakeFiles/fusion_tests.dir/test_logging_rng.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_logging_rng.cc.o.d"
  "/root/repo/tests/test_mshr.cc" "tests/CMakeFiles/fusion_tests.dir/test_mshr.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_mshr.cc.o.d"
  "/root/repo/tests/test_multi_tile.cc" "tests/CMakeFiles/fusion_tests.dir/test_multi_tile.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_multi_tile.cc.o.d"
  "/root/repo/tests/test_overlap.cc" "tests/CMakeFiles/fusion_tests.dir/test_overlap.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_overlap.cc.o.d"
  "/root/repo/tests/test_page_table.cc" "tests/CMakeFiles/fusion_tests.dir/test_page_table.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_page_table.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/fusion_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_reporters.cc" "tests/CMakeFiles/fusion_tests.dir/test_reporters.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_reporters.cc.o.d"
  "/root/repo/tests/test_ring.cc" "tests/CMakeFiles/fusion_tests.dir/test_ring.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_ring.cc.o.d"
  "/root/repo/tests/test_scratchpad.cc" "tests/CMakeFiles/fusion_tests.dir/test_scratchpad.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_scratchpad.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/fusion_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/fusion_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_tile_mesi.cc" "tests/CMakeFiles/fusion_tests.dir/test_tile_mesi.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_tile_mesi.cc.o.d"
  "/root/repo/tests/test_trace_analysis.cc" "tests/CMakeFiles/fusion_tests.dir/test_trace_analysis.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_trace_analysis.cc.o.d"
  "/root/repo/tests/test_trace_recorder.cc" "tests/CMakeFiles/fusion_tests.dir/test_trace_recorder.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_trace_recorder.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/fusion_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/fusion_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fusion.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
