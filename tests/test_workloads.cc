/**
 * @file
 * Workload tests: every benchmark builds (passing its internal
 * golden self-check), produces a well-formed trace, and exhibits
 * the qualitative properties Table 1 rests on (function counts,
 * inter-accelerator sharing, op mixes).
 */

#include <gtest/gtest.h>

#include "trace/analysis.hh"
#include "workloads/workload.hh"

namespace fusion::workloads
{
namespace
{

TEST(Workloads, RegistryListsTheSevenBenchmarks)
{
    auto names = workloadNames();
    ASSERT_EQ(names.size(), 7u);
    for (const auto &n : names)
        EXPECT_NE(makeWorkload(n), nullptr) << n;
    EXPECT_EQ(makeWorkload("nope"), nullptr);
}

struct ExpectedShape
{
    const char *name;
    std::size_t functions;
    std::size_t minInvocations;
};

class WorkloadShape : public ::testing::TestWithParam<ExpectedShape>
{
};

TEST_P(WorkloadShape, BuildsAndSelfChecks)
{
    const auto &e = GetParam();
    auto w = makeWorkload(e.name);
    ASSERT_NE(w, nullptr);
    // build() panics if the golden check fails, so reaching the
    // assertions below implies numerical correctness.
    trace::Program p = w->build(Scale::Small);
    EXPECT_EQ(p.functions.size(), e.functions);
    EXPECT_GE(p.invocations.size(), e.minInvocations);
    EXPECT_GT(p.memOpCount(), 0u);
    EXPECT_FALSE(p.hostInit.empty());
    EXPECT_FALSE(p.hostFinal.empty());
    // Every invocation references a declared function.
    for (const auto &inv : p.invocations) {
        ASSERT_GE(inv.func, 0);
        ASSERT_LT(static_cast<std::size_t>(inv.func),
                  p.functions.size());
    }
    // Function metadata is sane.
    for (const auto &f : p.functions) {
        EXPECT_GT(f.mlp, 0u);
        EXPECT_GT(f.leaseTime, 0u);
        EXPECT_LT(static_cast<std::uint32_t>(f.accel),
                  p.accelCount());
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, WorkloadShape,
    ::testing::Values(ExpectedShape{"fft", 6, 7},
                      ExpectedShape{"disparity", 5, 10},
                      ExpectedShape{"tracking", 3, 4},
                      ExpectedShape{"adpcm", 2, 2},
                      ExpectedShape{"susan", 4, 4},
                      ExpectedShape{"filter", 2, 2},
                      ExpectedShape{"histogram", 4, 4}),
    [](const auto &info) { return std::string(info.param.name); });

TEST(Workloads, DeterministicTraces)
{
    auto w = makeWorkload("adpcm");
    trace::Program a = w->build(Scale::Small);
    trace::Program b = w->build(Scale::Small);
    ASSERT_EQ(a.invocations.size(), b.invocations.size());
    ASSERT_EQ(a.memOpCount(), b.memOpCount());
    for (std::size_t i = 0; i < a.invocations.size(); ++i) {
        const auto &ia = a.invocations[i].ops;
        const auto &ib = b.invocations[i].ops;
        ASSERT_EQ(ia.size(), ib.size());
        for (std::size_t j = 0; j < ia.size(); j += 97)
            EXPECT_EQ(ia[j].addr, ib[j].addr);
    }
}

TEST(Workloads, SharingDegreeIsSubstantial)
{
    // Table 1: apart from initialization functions, the average
    // sharing degree is ~50%. Check the flagship sharers.
    for (const char *name : {"adpcm", "tracking"}) {
        auto p = makeWorkload(name)->build(Scale::Small);
        auto profs = trace::profileFunctions(p);
        double best = 0;
        for (const auto &f : profs)
            best = std::max(best, f.sharePct);
        EXPECT_GE(best, 50.0) << name;
    }
}

TEST(Workloads, AdpcmIsIntegerOnly)
{
    auto p = makeWorkload("adpcm")->build(Scale::Small);
    for (const auto &f : trace::profileFunctions(p)) {
        EXPECT_DOUBLE_EQ(f.pctFp, 0.0) << f.name;
        EXPECT_GT(f.pctInt, 30.0) << f.name;
    }
}

TEST(Workloads, HistogramConversionIsFpHeavy)
{
    auto p = makeWorkload("histogram")->build(Scale::Small);
    auto profs = trace::profileFunctions(p);
    // rgb2hsl / hsl2rgb dominated by FP (Table 1: 51.8 / 40.8).
    EXPECT_GT(profs[0].pctFp, 30.0);
    EXPECT_GT(profs[3].pctFp, 30.0);
    // histogram/equalize are integer + load dominated.
    EXPECT_LT(profs[1].pctFp, 20.0);
}

TEST(Workloads, PaperScaleFootprintsLandInTable6dRegime)
{
    // The relative ordering the evaluation depends on: HIST is by
    // far the biggest; TRACK > DISP > FFT; ADPCM/SUSAN/FILT are
    // small (< ~40 kB).
    std::map<std::string, double> kb;
    for (const auto &n : workloadNames()) {
        auto p = makeWorkload(n)->build(Scale::Paper);
        kb[n] = trace::workingSet(p).kilobytes();
    }
    EXPECT_GT(kb["histogram"], 800.0);
    EXPECT_GT(kb["tracking"], 250.0);
    EXPECT_GT(kb["disparity"], 60.0);
    EXPECT_LT(kb["adpcm"], 40.0);
    EXPECT_LT(kb["susan"], 40.0);
    EXPECT_LT(kb["filter"], 40.0);
    EXPECT_GT(kb["histogram"], kb["tracking"]);
    EXPECT_GT(kb["tracking"], kb["disparity"]);
    EXPECT_GT(kb["disparity"], kb["fft"]);
}

TEST(Workloads, EveryFunctionIsExercised)
{
    for (const auto &n : workloadNames()) {
        auto p = makeWorkload(n)->build(Scale::Small);
        std::vector<bool> seen(p.functions.size(), false);
        for (const auto &inv : p.invocations)
            seen[static_cast<std::size_t>(inv.func)] = true;
        for (std::size_t f = 0; f < seen.size(); ++f)
            EXPECT_TRUE(seen[f])
                << n << ":" << p.functions[f].name;
    }
}

} // namespace
} // namespace fusion::workloads
