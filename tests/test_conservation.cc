/**
 * @file
 * Cross-system conservation properties: quantities that must agree
 * between independent accounting paths (ledger vs link counters vs
 * stats tree) and across system organizations.
 */

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "core/system.hh"
#include "energy/link_energy.hh"

namespace fusion::core
{
namespace
{

/** Link energy booked in the ledger must equal bytes x pJ/B from
 *  the per-link byte counters — two fully independent paths. */
TEST(Conservation, LinkLedgerMatchesByteCounters)
{
    trace::Program p = *core::buildProgram("adpcm", workloads::Scale::Small);
    SystemConfig cfg = SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion);
    System sys(cfg, p);
    sys.run();

    const auto &links =
        sys.ctx().stats.root().children().at("links");
    auto bytes_of = [&](const char *name) {
        auto it = links.children().find(name);
        return it == links.children().end()
                   ? 0.0
                   : it->second.scalarValue("bytes");
    };
    double tile_pj =
        sys.ctx().energy.total(energy::comp::kLinkL0xL1xMsg) +
        sys.ctx().energy.total(energy::comp::kLinkL0xL1xData);
    EXPECT_NEAR(tile_pj,
                bytes_of("l0x_l1x") *
                    energy::linkPjPerByte(
                        energy::LinkClass::AxcToL1x),
                1e-6);
    double host_pj =
        sys.ctx().energy.total(energy::comp::kLinkL1xL2Msg) +
        sys.ctx().energy.total(energy::comp::kLinkL1xL2Data);
    EXPECT_NEAR(host_pj,
                bytes_of("l1x_l2") *
                    energy::linkPjPerByte(
                        energy::LinkClass::L1xToL2),
                1e-6);
}

/** Cold DRAM traffic is a property of the program, not the
 *  accelerator organization: every cached system fetches each
 *  touched line exactly once (footprints fit the 4 MB LLC). */
TEST(Conservation, DramAccessesMatchAcrossCachedSystems)
{
    trace::Program p =
        *core::buildProgram("filter", workloads::Scale::Small);
    std::vector<double> accesses;
    for (auto k : {SystemKind::Shared, SystemKind::Fusion,
                   SystemKind::FusionDx}) {
        System sys(SystemConfig::preset(SystemConfig::Preset::Paper, k), p);
        sys.run();
        accesses.push_back(sys.ctx()
                               .stats.root()
                               .children()
                               .at("dram")
                               .scalarValue("accesses"));
    }
    EXPECT_DOUBLE_EQ(accesses[0], accesses[1]);
    EXPECT_DOUBLE_EQ(accesses[1], accesses[2]);
}

/** The L0X's request counters and the tile link's control-message
 *  counter describe the same events. */
TEST(Conservation, TileRequestsMatchLinkMessages)
{
    trace::Program p = *core::buildProgram("susan", workloads::Scale::Small);
    System sys(SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion), p);
    RunResult r = sys.run();
    const auto &root = sys.ctx().stats.root();
    double misses = 0;
    for (const auto &[name, grp] : root.children()) {
        if (name.find(".l0x") == std::string::npos)
            continue;
        misses += grp.hasScalar("load_misses")
                      ? grp.scalarValue("load_misses")
                      : 0;
        misses += grp.hasScalar("store_misses")
                      ? grp.scalarValue("store_misses")
                      : 0;
    }
    // Each distinct miss sends one request message (merged misses
    // share one), so requests <= misses; and every control message
    // on the tile link is either a request or a Dx lease transfer.
    EXPECT_LE(r.l0xL1xCtrlMsgs, static_cast<std::uint64_t>(misses));
    EXPECT_GT(r.l0xL1xCtrlMsgs, 0u);
}

/** Total accelerator memory operations are invariant across
 *  systems (the trace is the trace). */
TEST(Conservation, MemOpsSeenEqualTraceLength)
{
    trace::Program p = *core::buildProgram("adpcm", workloads::Scale::Small);
    for (auto k : {SystemKind::Scratch, SystemKind::Shared,
                   SystemKind::Fusion}) {
        System sys(SystemConfig::preset(SystemConfig::Preset::Paper, k), p);
        sys.run();
        const auto &root = sys.ctx().stats.root();
        double ops = 0;
        for (const auto &[name, grp] : root.children()) {
            if (name.rfind("axc", 0) != 0)
                continue;
            auto it = grp.children().find("core");
            if (it == grp.children().end())
                continue;
            ops += it->second.scalarValue("loads") +
                   it->second.scalarValue("stores");
        }
        EXPECT_DOUBLE_EQ(ops,
                         static_cast<double>(p.memOpCount()))
            << systemKindName(k);
    }
}

/** Energy is monotone in work: Paper-scale inputs cost strictly
 *  more than Small on every system. */
TEST(Conservation, EnergyMonotoneInInputScale)
{
    trace::Program small =
        *core::buildProgram("filter", workloads::Scale::Small);
    trace::Program paper =
        *core::buildProgram("filter", workloads::Scale::Paper);
    for (auto k : {SystemKind::Scratch, SystemKind::Fusion}) {
        RunResult rs =
            runProgram(SystemConfig::preset(SystemConfig::Preset::Paper, k), small);
        RunResult rp =
            runProgram(SystemConfig::preset(SystemConfig::Preset::Paper, k), paper);
        EXPECT_GT(rp.totalPj(), rs.totalPj());
        EXPECT_GT(rp.accelCycles, rs.accelCycles);
    }
}

} // namespace
} // namespace fusion::core
