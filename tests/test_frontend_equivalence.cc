/**
 * @file
 * Determinism anchor for the TileFrontend refactor: the serialized
 * RunResult of every static system kind must stay byte-identical to
 * the pre-refactor (switch-based core::System) output. The golden
 * FNV-1a hashes below were recorded from the seed tree immediately
 * before the frontends were introduced; a mismatch means the
 * refactor changed construction order, stat naming, or scheduling —
 * not just "a number moved".
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/runner.hh"
#include "core/system.hh"

namespace fusion::core
{
namespace
{

/** FNV-1a 64-bit, the same hash the sweep engine uses for golden
 *  run fingerprints. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

struct GoldenRun
{
    const char *workload;
    SystemKind kind;
    std::uint64_t hash;
};

// Recorded from the seed (pre-TileFrontend) tree:
//   fnv1a(runProgram(SystemConfig::paperDefault(kind),
//                    *buildProgram(workload, Scale::Small)).toJson())
constexpr GoldenRun kGolden[] = {
    {"adpcm", SystemKind::Scratch, 0x7917dacb329ac80cull},
    {"adpcm", SystemKind::Shared, 0x22d56ecdba89ca8eull},
    {"adpcm", SystemKind::Fusion, 0x71248aec94ea7684ull},
    {"adpcm", SystemKind::FusionDx, 0xe9618fc4fdc1401aull},
    {"adpcm", SystemKind::FusionMesi, 0x7ed91a81f7587a68ull},
    {"fft", SystemKind::Scratch, 0xe31eea07cba154beull},
    {"fft", SystemKind::Shared, 0x7926f0519b30b428ull},
    {"fft", SystemKind::Fusion, 0x00613cf437140a7cull},
    {"fft", SystemKind::FusionDx, 0x2cfbc1e32d213911ull},
    {"fft", SystemKind::FusionMesi, 0x8644822fc08167fcull},
    {"histogram", SystemKind::Scratch, 0xad36fbf560a86c8cull},
    {"histogram", SystemKind::Shared, 0x825ca8981f3149b8ull},
    {"histogram", SystemKind::Fusion, 0x649266069aa6635full},
    {"histogram", SystemKind::FusionDx, 0x97c437972abdd3abull},
    {"histogram", SystemKind::FusionMesi, 0x5f83b6be5548c7cdull},
};

class FrontendEquivalence
    : public ::testing::TestWithParam<GoldenRun>
{
};

TEST_P(FrontendEquivalence, JsonByteIdenticalToSeed)
{
    const GoldenRun &g = GetParam();
    trace::Program p =
        *buildProgram(g.workload, workloads::Scale::Small);
    RunResult r = runProgram(SystemConfig::paperDefault(g.kind), p);
    EXPECT_EQ(fnv1a(r.toJson()), g.hash)
        << "serialized output for " << g.workload << "/"
        << systemKindName(g.kind)
        << " diverged from the pre-frontend seed";
}

INSTANTIATE_TEST_SUITE_P(
    Golden, FrontendEquivalence, ::testing::ValuesIn(kGolden),
    [](const auto &info) {
        std::string name = info.param.workload;
        name += "_";
        for (const char *c = systemKindName(info.param.kind); *c;
             ++c) {
            if ((*c >= 'A' && *c <= 'Z') ||
                (*c >= 'a' && *c <= 'z') ||
                (*c >= '0' && *c <= '9'))
                name += *c;
        }
        return name;
    });

// The preset() satellite: the deprecated forwarders must stay exact
// synonyms of the new factory (same serialized config behavior).
TEST(FrontendEquivalence, PresetMatchesDeprecatedForwarders)
{
    for (SystemKind k : kStaticSystemKinds) {
        SystemConfig via_preset =
            SystemConfig::preset(SystemConfig::Preset::Paper, k);
        SystemConfig via_fwd = SystemConfig::paperDefault(k);
        trace::Program p =
            *buildProgram("adpcm", workloads::Scale::Small);
        EXPECT_EQ(runProgram(via_preset, p).toJson(),
                  runProgram(via_fwd, p).toJson())
            << systemKindName(k);

        SystemConfig big_preset =
            SystemConfig::preset(SystemConfig::Preset::AxcLarge, k);
        SystemConfig big_fwd = SystemConfig::axcLarge(k);
        EXPECT_EQ(big_preset.l1xBytes, big_fwd.l1xBytes);
        EXPECT_EQ(big_preset.l0xBytes, big_fwd.l0xBytes);
        EXPECT_EQ(big_preset.scratchpadBytes,
                  big_fwd.scratchpadBytes);
    }
}

} // namespace
} // namespace fusion::core
