/**
 * @file
 * Determinism anchor for the TileFrontend refactor: the serialized
 * RunResult of every static system kind must stay byte-identical to
 * the pre-refactor (switch-based core::System) output. The golden
 * FNV-1a hashes below were recorded from the seed tree immediately
 * before the frontends were introduced; a mismatch means the
 * refactor changed construction order, stat naming, or scheduling —
 * not just "a number moved".
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/runner.hh"
#include "core/system.hh"
#include "sim/hash.hh"

namespace fusion::core
{
namespace
{

struct GoldenRun
{
    const char *workload;
    SystemKind kind;
    std::uint64_t hash;
};

// Recorded from the seed (pre-TileFrontend) tree:
//   fnv1a(runProgram(SystemConfig::preset(SystemConfig::Preset::Paper, kind),
//                    *core::buildProgram(workload, Scale::Small)).toJson())
//
// Re-recorded once when the hash moved to the shared sim/hash.hh:
// this test's original inline FNV-1a used a typo'd offset basis
// (1469598103934665603, missing the trailing 7 of the standard
// 14695981039346656037), so the raw hash values changed. The JSON
// itself was diffed byte-for-byte against the pre-change tree at
// re-recording time; only the fingerprint function changed.
constexpr GoldenRun kGolden[] = {
    {"adpcm", SystemKind::Scratch, 0x1bba9d6b40bb1ab6ull},
    {"adpcm", SystemKind::Shared, 0xfa9a5be0efc3bc28ull},
    {"adpcm", SystemKind::Fusion, 0x1a347ff1a26fe836ull},
    {"adpcm", SystemKind::FusionDx, 0xc95af23ffe0520ecull},
    {"adpcm", SystemKind::FusionMesi, 0x925e020e271469e6ull},
    {"fft", SystemKind::Scratch, 0x1f97641d79106d60ull},
    {"fft", SystemKind::Shared, 0xcde45be1efbc3eeeull},
    {"fft", SystemKind::Fusion, 0x925524a955ad6982ull},
    {"fft", SystemKind::FusionDx, 0xa7f0c91b66dcb75full},
    {"fft", SystemKind::FusionMesi, 0xd7ce3d45a5dcf76aull},
    {"histogram", SystemKind::Scratch, 0x454f9c6e782acc6eull},
    {"histogram", SystemKind::Shared, 0x730d1ff0eeb3b96eull},
    {"histogram", SystemKind::Fusion, 0x53f5fe959937b5e9ull},
    {"histogram", SystemKind::FusionDx, 0xd91e902178bbe57dull},
    {"histogram", SystemKind::FusionMesi, 0x81a169fd53c6d113ull},
};

class FrontendEquivalence
    : public ::testing::TestWithParam<GoldenRun>
{
};

TEST_P(FrontendEquivalence, JsonByteIdenticalToSeed)
{
    const GoldenRun &g = GetParam();
    trace::Program p =
        *core::buildProgram(g.workload, workloads::Scale::Small);
    RunResult r = runProgram(SystemConfig::preset(SystemConfig::Preset::Paper, g.kind), p);
    EXPECT_EQ(fnv1a(r.toJson()), g.hash)
        << "serialized output for " << g.workload << "/"
        << systemKindName(g.kind)
        << " diverged from the pre-frontend seed";
}

INSTANTIATE_TEST_SUITE_P(
    Golden, FrontendEquivalence, ::testing::ValuesIn(kGolden),
    [](const auto &info) {
        std::string name = info.param.workload;
        name += "_";
        for (const char *c = systemKindName(info.param.kind); *c;
             ++c) {
            if ((*c >= 'A' && *c <= 'Z') ||
                (*c >= 'a' && *c <= 'z') ||
                (*c >= '0' && *c <= '9'))
                name += *c;
        }
        return name;
    });

// The deprecated paperDefault/axcLarge forwarders were removed once
// every call site moved to SystemConfig::preset (DESIGN.md
// changelog records the removal, static_assert-style: code that
// still names them now fails to compile rather than silently
// diverging from the factory).

} // namespace
} // namespace fusion::core
