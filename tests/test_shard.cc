/**
 * @file
 * Sharded event kernel (DESIGN.md §8) test suite.
 *
 * Three layers:
 *
 *  1. ShardDeterminism — the headline contract: a sharded run's
 *     serialized RunResult is byte-identical to the serial kernel's,
 *     for every static system kind, for any domain count, with the
 *     hardening layer armed, with faults firing, and under the
 *     randomized fault campaign's triage.
 *  2. Router unit/property tests — the ordered router executes the
 *     exact global (when, priority, sequence) order a single
 *     EventQueue produces, and EventQueue::peekHead (the router's
 *     window into each domain queue) always reports the key of the
 *     event step() pops next.
 *  3. DomainScheduler property tests — the threaded conservative-
 *     window engine delivers cross-domain messages in the reference
 *     merge order and produces worker-count-independent results.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "core/runner.hh"
#include "core/system.hh"
#include "sim/guard/campaign.hh"
#include "sim/guard/sim_error.hh"
#include "sim/shard/mailbox.hh"
#include "sim/shard/router.hh"
#include "sim/shard/scheduler.hh"

namespace fusion
{
namespace
{

using core::RunResult;
using core::SystemConfig;
using core::SystemKind;

RunResult
runAt(SystemKind kind, std::uint32_t domains,
      const trace::Program &prog)
{
    SystemConfig cfg =
        SystemConfig::preset(SystemConfig::Preset::Paper, kind);
    cfg.shardDomains = domains;
    return core::runProgram(cfg, prog);
}

// ---------------------------------------------------------------
// 1. End-to-end determinism.
// ---------------------------------------------------------------

class ShardDeterminism
    : public ::testing::TestWithParam<SystemKind>
{
};

TEST_P(ShardDeterminism, JsonByteIdenticalToSerial)
{
    SystemKind kind = GetParam();
    trace::Program prog =
        *core::buildProgram("adpcm", workloads::Scale::Small);
    std::string serial = runAt(kind, 1, prog).toJson();
    for (std::uint32_t d : {2u, 4u}) {
        EXPECT_EQ(serial, runAt(kind, d, prog).toJson())
            << core::systemKindName(kind) << " diverged at "
            << d << " domains";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ShardDeterminism,
    ::testing::ValuesIn(std::begin(core::kStaticSystemKinds),
                        std::end(core::kStaticSystemKinds)),
    [](const auto &info) {
        std::string name;
        for (const char *c = core::systemKindName(info.param); *c;
             ++c) {
            if ((*c >= 'A' && *c <= 'Z') ||
                (*c >= 'a' && *c <= 'z') ||
                (*c >= '0' && *c <= '9'))
                name += *c;
        }
        return name;
    });

TEST(ShardDeterminismTest, MultiTileFusionByteIdentical)
{
    // More tiles than domains and more domains than tiles both have
    // to hold: the round-robin tile->domain map must not perturb
    // ordering either way.
    trace::Program prog =
        *core::buildProgram("fft", workloads::Scale::Small);
    for (std::uint32_t tiles : {2u, 4u}) {
        SystemConfig cfg = SystemConfig::preset(
            SystemConfig::Preset::Paper, SystemKind::Fusion);
        cfg.numTiles = tiles;
        std::string serial = core::runProgram(cfg, prog).toJson();
        for (std::uint32_t d : {2u, 3u, 4u, 8u}) {
            SystemConfig scfg = cfg;
            scfg.shardDomains = d;
            EXPECT_EQ(serial, core::runProgram(scfg, prog).toJson())
                << tiles << " tiles diverged at " << d
                << " domains";
        }
    }
}

TEST(ShardDeterminismTest, OverlappedInvocationsByteIdentical)
{
    trace::Program prog =
        *core::buildProgram("fft", workloads::Scale::Small);
    SystemConfig cfg = SystemConfig::preset(
        SystemConfig::Preset::Paper, SystemKind::Fusion);
    cfg.numTiles = 2;
    cfg.overlapInvocations = true;
    std::string serial = core::runProgram(cfg, prog).toJson();
    SystemConfig scfg = cfg;
    scfg.shardDomains = 4;
    EXPECT_EQ(serial, core::runProgram(scfg, prog).toJson());
}

TEST(ShardDeterminismTest, GuardedFaultRunByteIdentical)
{
    // The hardening layer rides the same facade: invariant sweeps
    // and fault injections fire at identical steps, so a faulted
    // sharded run reproduces the faulted serial run byte for byte.
    trace::Program prog =
        *core::buildProgram("adpcm", workloads::Scale::Small);
    SystemConfig cfg = SystemConfig::preset(
        SystemConfig::Preset::Paper, SystemKind::Fusion);
    cfg.guard.noProgressTicks = 1u << 20;
    cfg.guard.invariantPeriod = 256;
    cfg.guard.invariantsAtEnd = true;
    cfg.guard.schedule.arm(guard::FaultKind::DelayGrant,
                           /*trigger_after=*/2, /*delay=*/7);
    cfg.guard.schedule.arm(guard::FaultKind::ReorderFlit,
                           /*trigger_after=*/5, /*delay=*/4);
    std::string serial = core::runProgram(cfg, prog).toJson();
    SystemConfig scfg = cfg;
    scfg.shardDomains = 4;
    RunResult sharded = core::runProgram(scfg, prog);
    EXPECT_EQ(serial, sharded.toJson());
    EXPECT_GT(sharded.faultsFired, 0u);
}

TEST(ShardDeterminismTest, CampaignTriageIdentical)
{
    // A whole randomized fault campaign must triage every trial into
    // the same outcome class (and hashes) at 4 domains as at 1.
    guard::CampaignConfig cc;
    cc.seed = 7;
    cc.trials = 6;
    cc.workloads = {"adpcm"};
    cc.scale = workloads::Scale::Small;
    guard::CampaignConfig cs = cc;
    cs.shardDomains = 4;
    guard::CampaignReport serial = guard::runCampaign(cc);
    guard::CampaignReport sharded = guard::runCampaign(cs);
    ASSERT_EQ(serial.trials.size(), sharded.trials.size());
    for (std::size_t i = 0; i < serial.trials.size(); ++i) {
        EXPECT_EQ(serial.trials[i].outcome,
                  sharded.trials[i].outcome)
            << "trial " << i << " triaged differently";
        EXPECT_EQ(serial.trials[i].resultHash,
                  sharded.trials[i].resultHash)
            << "trial " << i << " output hash differs";
        EXPECT_EQ(serial.trials[i].cleanHash,
                  sharded.trials[i].cleanHash);
    }
}

TEST(ShardDeterminismTest, ScratchAndAutoDegradeToSerial)
{
    // SCRATCH has no asynchronous tile<->LLC edge and AUTO switches
    // frontends across the partition: both run the serial kernel
    // even when shardDomains > 1 (and still match, trivially).
    trace::Program prog =
        *core::buildProgram("adpcm", workloads::Scale::Small);
    for (SystemKind k : {SystemKind::Scratch, SystemKind::Auto}) {
        SystemConfig cfg =
            SystemConfig::preset(SystemConfig::Preset::Paper, k);
        core::System serial(cfg, prog);
        EXPECT_FALSE(serial.ctx().eq.sharded());
        SystemConfig scfg = cfg;
        scfg.shardDomains = 4;
        core::System sharded(scfg, prog);
        EXPECT_FALSE(sharded.ctx().eq.sharded());
    }
    SystemConfig fcfg = SystemConfig::preset(
        SystemConfig::Preset::Paper, SystemKind::Fusion);
    fcfg.shardDomains = 4;
    core::System fus(fcfg, prog);
    EXPECT_TRUE(fus.ctx().eq.sharded());
}

TEST(ShardDeterminismTest, ZeroDomainsRejected)
{
    SystemConfig cfg = SystemConfig::preset(
        SystemConfig::Preset::Paper, SystemKind::Fusion);
    cfg.shardDomains = 0;
    EXPECT_FALSE(cfg.validate().empty());
}

// ---------------------------------------------------------------
// 2. Ordered router + peekHead.
// ---------------------------------------------------------------

TEST(ShardRouter, ExactOrderMatchesSerialQueue)
{
    // The same randomized closure program — events rescheduling
    // further events with random (delta, priority) draws — must
    // execute in the same order through a 3-domain router as through
    // a plain EventQueue.
    constexpr int kSeeds = 20;
    for (int seed = 1; seed <= kSeeds; ++seed) {
        auto runLog = [seed](bool sharded) {
            SimContext ctx;
            std::unique_ptr<shard::Router> router;
            if (sharded)
                router =
                    std::make_unique<shard::Router>(ctx, 3u);
            std::vector<int> log;
            std::mt19937_64 rng(
                static_cast<std::uint64_t>(seed));
            int next_id = 0;
            // Each event logs its id and spawns children until the
            // budget runs out; children are scheduled through the
            // facade, so under the router they land in whichever
            // domain is current.
            struct Spawner
            {
                SimContext &ctx;
                shard::Router *router;
                std::vector<int> &log;
                std::mt19937_64 &rng;
                int &next_id;
                int budget;

                void
                spawn(int id)
                {
                    log.push_back(id);
                    if (budget <= 0)
                        return;
                    int kids = static_cast<int>(rng() % 3);
                    for (int k = 0; k < kids && budget > 0; ++k) {
                        --budget;
                        int cid = ++next_id;
                        auto delta = static_cast<Cycles>(
                            rng() % 90); // bucket + spill ranges
                        auto pri = static_cast<EventPriority>(
                            static_cast<int>(rng() % 3) * 10 -
                            10);
                        // Drawn in both modes so the rng streams
                        // stay aligned; serial ignores it.
                        auto dom = static_cast<shard::DomainId>(
                            rng() % 3);
                        auto fire = [this, cid] { spawn(cid); };
                        if (router != nullptr) {
                            // Hop to a random domain first: the
                            // global order must not care which
                            // queue holds an event.
                            router->onDomain(dom, [&] {
                                ctx.eq.scheduleIn(delta, fire,
                                                  pri);
                            });
                        } else {
                            ctx.eq.scheduleIn(delta, fire, pri);
                        }
                    }
                }
            };
            Spawner sp{ctx,  router.get(), log,
                       rng,  next_id,      /*budget=*/200};
            for (int r = 0; r < 8; ++r) {
                int id = ++next_id;
                ctx.eq.scheduleIn(static_cast<Cycles>(rng() % 40),
                                  [&sp, id] { sp.spawn(id); });
            }
            while (ctx.eq.step()) {
            }
            return log;
        };
        EXPECT_EQ(runLog(false), runLog(true))
            << "order diverged for seed " << seed;
    }
}

TEST(ShardRouter, CrossDeliveryTracksLookahead)
{
    SimContext ctx;
    shard::Router router(ctx, 2u);
    EXPECT_EQ(router.minCrossLatency(), kTickNever);
    int fired = 0;
    router.scheduleCross(1, /*when=*/5, /*latency=*/5,
                         EventFn([&fired] { ++fired; }));
    router.scheduleCross(0, /*when=*/9, /*latency=*/3,
                         EventFn([&fired] { ++fired; }));
    EXPECT_EQ(router.crossings(), 2u);
    EXPECT_EQ(router.minCrossLatency(), 3);
    while (ctx.eq.step()) {
    }
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(router.totalExecuted(), 2u);
}

TEST(ShardRouter, PeekHeadMatchesPopOrder)
{
    // peekHead must always report exactly the key of the event the
    // next step() executes, including across bucket/spill migration
    // boundaries — the router's global merge depends on it.
    std::mt19937_64 rng(99);
    for (int round = 0; round < 10; ++round) {
        EventQueue q;
        int events = 120;
        struct Key
        {
            Tick when;
            int pri;
            std::uint64_t seq;
        };
        std::vector<Key> peeked;
        std::vector<Tick> fired_at;
        auto seed_one = [&](Tick base) {
            auto when =
                base + static_cast<Tick>(rng() % 200);
            auto pri = static_cast<EventPriority>(
                static_cast<int>(rng() % 3) * 10 - 10);
            q.schedule(when, [&fired_at, &q] {
                fired_at.push_back(q.now());
            }, pri);
        };
        for (int i = 0; i < events; ++i)
            seed_one(0);
        while (!q.empty()) {
            Tick when = 0;
            int pri = 0;
            std::uint64_t seq = 0;
            ASSERT_TRUE(q.peekHead(when, pri, seq));
            EXPECT_EQ(when, q.headTick());
            peeked.push_back(Key{when, pri, seq});
            ASSERT_TRUE(q.step());
            EXPECT_EQ(q.now(), when)
                << "peeked tick was not the tick that executed";
        }
        // The peeked key sequence must be the sorted event order.
        for (std::size_t i = 1; i < peeked.size(); ++i) {
            const Key &a = peeked[i - 1];
            const Key &b = peeked[i];
            bool le = a.when < b.when ||
                      (a.when == b.when &&
                       (a.pri < b.pri ||
                        (a.pri == b.pri && a.seq < b.seq)));
            EXPECT_TRUE(le) << "peek order regressed at " << i;
        }
        EXPECT_EQ(fired_at.size(),
                  static_cast<std::size_t>(events));
    }
}

// ---------------------------------------------------------------
// 3. Mailbox merge + DomainScheduler.
// ---------------------------------------------------------------

TEST(ShardMailbox, RandomizedDrainMatchesReferenceMerge)
{
    std::mt19937_64 rng(1234);
    for (int round = 0; round < 50; ++round) {
        std::uint32_t domains = 2 + rng() % 4;
        std::vector<shard::Mailbox> lanes(domains * domains);
        std::vector<shard::ShardMsg> reference;
        std::vector<std::uint64_t> seq(domains, 0);
        std::size_t n = 1 + rng() % 64;
        for (std::size_t i = 0; i < n; ++i) {
            auto src =
                static_cast<shard::DomainId>(rng() % domains);
            auto dst =
                static_cast<shard::DomainId>(rng() % domains);
            auto when = static_cast<Tick>(rng() % 32);
            int pri = static_cast<int>(rng() % 3) * 10 - 10;
            lanes[src * domains + dst].push(shard::ShardMsg(
                when, pri, src, seq[src], EventFn([] {})));
            reference.emplace_back(when, pri, src, seq[src],
                                   EventFn([] {}));
            ++seq[src];
        }
        // Barrier drain: concatenate lanes (any lane order), sort.
        std::vector<shard::ShardMsg> drained;
        for (auto &lane : lanes)
            lane.drainInto(drained);
        std::sort(drained.begin(), drained.end(),
                  shard::ShardMsgOrder{});
        shard::referenceMerge(reference);
        ASSERT_EQ(drained.size(), reference.size());
        for (std::size_t i = 0; i < drained.size(); ++i) {
            EXPECT_EQ(drained[i].when, reference[i].when);
            EXPECT_EQ(drained[i].pri, reference[i].pri);
            EXPECT_EQ(drained[i].src, reference[i].src);
            EXPECT_EQ(drained[i].seq, reference[i].seq);
        }
    }
}

namespace
{

/**
 * A deterministic synthetic workload for the parallel engine: each
 * domain runs a self-rescheduling local chain and periodically sends
 * cross-domain pings that respawn chains on the receiver. Every
 * event appends (domain-local) to its domain's log, so two runs are
 * comparable without any cross-thread state.
 */
struct SchedulerHarness
{
    shard::DomainScheduler &ds;
    std::vector<std::vector<std::uint64_t>> logs;

    explicit SchedulerHarness(shard::DomainScheduler &s)
        : ds(s), logs(s.numDomains())
    {
    }

    void
    chain(shard::DomainId d, std::uint64_t tag, int steps,
          int cross_every)
    {
        logs[d].push_back((tag << 8) | ds.queueOf(d).now() % 251);
        if (steps <= 0)
            return;
        if (cross_every > 0 && steps % cross_every == 0) {
            auto dst = static_cast<shard::DomainId>(
                (d + 1) % ds.numDomains());
            ds.sendCross(d, dst, ds.lookahead() + (tag % 3),
                         [this, dst, tag, steps, cross_every] {
                             chain(dst, tag * 31 + 7, steps - 1,
                                   cross_every);
                         });
        }
        ds.queueOf(d).scheduleIn(
            1 + (tag % 4),
            [this, d, tag, steps, cross_every] {
                chain(d, tag + 1, steps - 1, cross_every);
            });
    }
};

} // namespace

TEST(ShardScheduler, WorkerCountInvariant)
{
    // Identical seeding must give identical per-domain logs and
    // totals for 1, 2 and 4 workers (and the worker==domain default).
    auto runOnce = [](std::size_t workers) {
        shard::DomainScheduler::Params p;
        p.domains = 4;
        p.lookahead = 3;
        p.workers = workers;
        shard::DomainScheduler ds(p);
        SchedulerHarness h(ds);
        for (shard::DomainId d = 0; d < 4; ++d) {
            ds.queueOf(d).scheduleIn(
                static_cast<Cycles>(1 + d), [&h, d] {
                    h.chain(d, 1000 + d, /*steps=*/60,
                            /*cross_every=*/5);
                });
        }
        Tick end = ds.run();
        return std::tuple(std::move(h.logs), end,
                          ds.totalExecuted(),
                          ds.totals().crossMessages);
    };
    auto [logs1, end1, exec1, cross1] = runOnce(1);
    EXPECT_GT(cross1, 0u);
    for (std::size_t w : {std::size_t{2}, std::size_t{4},
                          std::size_t{0}}) {
        auto [logs, end, exec, cross] = runOnce(w);
        EXPECT_EQ(logs, logs1) << w << " workers diverged";
        EXPECT_EQ(end, end1);
        EXPECT_EQ(exec, exec1);
        EXPECT_EQ(cross, cross1);
    }
}

TEST(ShardScheduler, SameDomainSendShortCircuits)
{
    shard::DomainScheduler::Params p;
    p.domains = 2;
    p.workers = 1;
    shard::DomainScheduler ds(p);
    int fired = 0;
    ds.queueOf(0).scheduleIn(1, [&ds, &fired] {
        // delay below lookahead is legal for a same-domain send —
        // it never crosses, so the conservative bound is irrelevant.
        ds.sendCross(0, 0, 1, [&fired] { ++fired; });
    });
    ds.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(ds.totals().crossMessages, 0u);
}

TEST(ShardScheduler, SoloFastPathCountsWindows)
{
    // One busy domain: everything should run through the solo path
    // with zero parallel windows and zero cross messages.
    shard::DomainScheduler::Params p;
    p.domains = 3;
    p.workers = 1;
    shard::DomainScheduler ds(p);
    int fired = 0;
    struct Chain
    {
        shard::DomainScheduler &ds;
        int &fired;
        void
        go(int left)
        {
            ++fired;
            if (left > 0)
                ds.queueOf(0).scheduleIn(
                    2, [this, left] { go(left - 1); });
        }
    } chain{ds, fired};
    ds.queueOf(0).scheduleIn(1, [&chain] { chain.go(50); });
    ds.run();
    EXPECT_EQ(fired, 51);
    EXPECT_EQ(ds.totals().windows, 0u);
    EXPECT_GT(ds.totals().soloWindows, 0u);
    EXPECT_EQ(ds.totals().crossMessages, 0u);
}

TEST(ShardScheduler, WallClockWatchdogTrips)
{
    shard::DomainScheduler::Params p;
    p.domains = 2;
    p.workers = 1;
    p.maxWallMs = 1;
    shard::DomainScheduler ds(p);
    // Two domains ping-ponging forever: only the wall-clock budget
    // can end this run.
    struct Pong
    {
        shard::DomainScheduler &ds;
        void
        go(shard::DomainId d)
        {
            auto dst = static_cast<shard::DomainId>(1 - d);
            ds.sendCross(d, dst, ds.lookahead(),
                         [this, dst] { go(dst); });
        }
    } pong{ds};
    ds.queueOf(0).scheduleIn(1, [&pong] { pong.go(0); });
    EXPECT_THROW(ds.run(), guard::SimErrorException);
}

TEST(ShardScheduler, WindowSpansMergeSorted)
{
    shard::DomainScheduler::Params p;
    p.domains = 3;
    p.workers = 1;
    p.traceWindows = true;
    shard::DomainScheduler ds(p);
    SchedulerHarness h(ds);
    for (shard::DomainId d = 0; d < 3; ++d) {
        ds.queueOf(d).scheduleIn(1, [&h, d] {
            h.chain(d, 7 + d, /*steps=*/30, /*cross_every=*/4);
        });
    }
    ds.run();
    std::vector<obs::SpanRecord> spans = ds.mergedWindowSpans();
    ASSERT_FALSE(spans.empty());
    for (std::size_t i = 0; i < spans.size(); ++i) {
        EXPECT_EQ(spans[i].kind, obs::SpanKind::ShardWindow);
        if (i > 0) {
            EXPECT_GE(spans[i].begin, spans[i - 1].begin)
                << "merged spans out of order at " << i;
        }
    }
}

} // namespace
} // namespace fusion
