/**
 * @file
 * The sweep engine's correctness anchor: the same job list run with
 * 1 worker and with 8 workers produces byte-identical RunResults
 * (via RunResult::toJson()), proving no mutable state is shared
 * across concurrent simulations. Also covers the redesigned
 * experiment API: SystemConfig::validate(), the optional-returning
 * buildProgram(), progress-callback ordering, and the SweepReport.
 *
 * Built as its own binary so a ThreadSanitizer configuration
 * (-DFUSION_TSAN=ON) can run exactly this suite.
 */

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/runner.hh"

using namespace fusion;

namespace
{

/** The cross-system job list used by the determinism tests. */
std::vector<core::SweepJob>
mixedJobs()
{
    std::vector<core::SweepJob> jobs;
    for (const auto &name :
         {std::string("fft"), std::string("adpcm"),
          std::string("filter")}) {
        for (auto kind :
             {core::SystemKind::Scratch, core::SystemKind::Shared,
              core::SystemKind::Fusion,
              core::SystemKind::FusionDx}) {
            core::SweepJob j;
            j.cfg = core::SystemConfig::preset(core::SystemConfig::Preset::Paper, kind);
            j.workload = name;
            j.scale = workloads::Scale::Small;
            j.tag = name + "/" + core::systemKindShortName(kind);
            jobs.push_back(std::move(j));
        }
    }
    return jobs;
}

} // namespace

TEST(Sweep, ParallelMatchesSerialByteForByte)
{
    auto jobs = mixedJobs();

    core::SweepOptions serial;
    serial.jobs = 1;
    auto r1 = core::runSweep(jobs, serial);

    core::SweepOptions parallel;
    parallel.jobs = 8;
    auto r8 = core::runSweep(jobs, parallel);

    ASSERT_EQ(r1.size(), jobs.size());
    ASSERT_EQ(r8.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(r1[i].toJson(), r8[i].toJson())
            << "job " << i << " (" << jobs[i].tag
            << ") diverged between 1 and 8 workers";
    }
}

TEST(Sweep, MatchesDirectRunProgram)
{
    auto prog = core::buildProgram("adpcm", workloads::Scale::Small);
    ASSERT_TRUE(prog.has_value());
    core::RunResult direct = core::runProgram(
        core::SystemConfig::preset(core::SystemConfig::Preset::Paper, core::SystemKind::Fusion),
        *prog);

    core::SweepJob j;
    j.cfg = core::SystemConfig::preset(core::SystemConfig::Preset::Paper, 
        core::SystemKind::Fusion);
    j.workload = "adpcm";
    j.scale = workloads::Scale::Small;
    core::SweepOptions opt;
    opt.jobs = 4;
    auto results = core::runSweep({j, j, j}, opt);

    ASSERT_EQ(results.size(), 3u);
    for (const auto &r : results)
        EXPECT_EQ(r.toJson(), direct.toJson());
}

TEST(Sweep, SharedPrebuiltProgramAcrossWorkers)
{
    auto prog = std::make_shared<const trace::Program>(
        *core::buildProgram("fft", workloads::Scale::Small));
    std::vector<core::SweepJob> jobs;
    for (std::uint64_t l0x : {1024ull, 2048ull, 4096ull, 8192ull}) {
        core::SweepJob j;
        j.cfg = core::SystemConfig::preset(core::SystemConfig::Preset::Paper, 
            core::SystemKind::Fusion);
        j.cfg.l0xBytes = l0x;
        j.workload = "fft";
        j.prog = prog;
        jobs.push_back(std::move(j));
    }
    core::SweepOptions opt;
    opt.jobs = 4;
    auto par = core::runSweep(jobs, opt);
    opt.jobs = 1;
    auto ser = core::runSweep(jobs, opt);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(par[i].toJson(), ser[i].toJson());
}

TEST(Sweep, ProgressReportsEveryJobExactlyOnce)
{
    auto jobs = mixedJobs();
    std::atomic<std::size_t> calls{0};
    std::set<std::size_t> seen;
    std::size_t last_completed = 0;
    bool monotone = true;
    core::SweepOptions opt;
    opt.jobs = 8;
    // The engine serializes progress callbacks, so plain containers
    // are safe here.
    opt.progress = [&](const core::SweepProgress &p) {
        ++calls;
        seen.insert(p.index);
        monotone = monotone && p.completed == last_completed + 1;
        last_completed = p.completed;
        EXPECT_EQ(p.total, 12u);
        EXPECT_NE(p.job, nullptr);
    };
    core::runSweep(jobs, opt);
    EXPECT_EQ(calls.load(), jobs.size());
    EXPECT_EQ(seen.size(), jobs.size());
    EXPECT_TRUE(monotone) << "completed counter skipped or repeated";
}

TEST(Sweep, EmptyJobListIsFine)
{
    auto results = core::runSweep({}, core::SweepOptions{8, {}});
    EXPECT_TRUE(results.empty());
}

TEST(Sweep, ReportJsonPairsJobsWithResults)
{
    core::SweepJob j;
    j.cfg = core::SystemConfig::preset(core::SystemConfig::Preset::Paper, 
        core::SystemKind::Scratch);
    j.workload = "adpcm";
    j.scale = workloads::Scale::Small;
    j.tag = "adpcm/SC";
    auto results = core::runSweep({j});
    std::string json =
        sweep::reportJson("unit", {j}, results);

    EXPECT_NE(json.find("\"sweep\":\"unit\""), std::string::npos);
    EXPECT_NE(json.find("\"tag\":\"adpcm\\/SC\"") != std::string::npos ||
                      json.find("\"tag\":\"adpcm/SC\"") !=
                          std::string::npos,
              false);
    EXPECT_NE(json.find("\"system\":\"SCRATCH\""),
              std::string::npos);
    EXPECT_NE(json.find("\"accelCycles\":"), std::string::npos);
    // The embedded result is the job's toJson, verbatim.
    EXPECT_NE(json.find(results[0].toJson()), std::string::npos);
}

TEST(RunResult, ToJsonIsStableAndEscapes)
{
    core::RunResult r;
    r.workload = "we\"ird";
    r.kind = core::SystemKind::Fusion;
    r.accelCycles = 42;
    r.energyPj["l0x"] = 1.5;
    r.invocationCycles = {1, 2, 3};
    std::string a = r.toJson();
    std::string b = r.toJson();
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"workload\":\"we\\\"ird\""),
              std::string::npos);
    EXPECT_NE(a.find("\"accelCycles\":42"), std::string::npos);
    EXPECT_NE(a.find("\"invocationCycles\":[1,2,3]"),
              std::string::npos);
}

TEST(SystemConfig, ValidateAcceptsPaperDefaults)
{
    for (auto kind :
         {core::SystemKind::Scratch, core::SystemKind::Shared,
          core::SystemKind::Fusion, core::SystemKind::FusionDx,
          core::SystemKind::FusionMesi}) {
        EXPECT_TRUE(core::SystemConfig::preset(core::SystemConfig::Preset::Paper, kind)
                        .validate()
                        .empty());
        EXPECT_TRUE(
            core::SystemConfig::preset(core::SystemConfig::Preset::AxcLarge, kind).validate().empty());
    }
}

TEST(SystemConfig, ValidateCatchesMisconfiguration)
{
    core::SystemConfig cfg = core::SystemConfig::preset(core::SystemConfig::Preset::Paper, 
        core::SystemKind::Fusion);
    cfg.l0xBytes = 3000; // not a power of two
    cfg.l1xBanks = 0;
    cfg.numTiles = 0;
    auto errs = cfg.validate();
    ASSERT_EQ(errs.size(), 3u);
    auto joined = [&] {
        std::string s;
        for (const auto &e : errs)
            s += e + "\n";
        return s;
    }();
    EXPECT_NE(joined.find("L0X capacity"), std::string::npos);
    EXPECT_NE(joined.find("L1X bank count"), std::string::npos);
    EXPECT_NE(joined.find("numTiles"), std::string::npos);
}

TEST(SystemConfig, ValidateCatchesTinyCapacity)
{
    core::SystemConfig cfg = core::SystemConfig::preset(core::SystemConfig::Preset::Paper, 
        core::SystemKind::Fusion);
    cfg.l0xBytes = 128; // 2 lines, but 4-way: can't hold one set
    auto errs = cfg.validate();
    ASSERT_EQ(errs.size(), 1u);
    EXPECT_NE(errs[0].find("cannot hold one 4-way set"),
              std::string::npos);
}

TEST(Runner, BuildProgramReturnsNulloptForUnknownNames)
{
    EXPECT_FALSE(
        core::buildProgram("nope", workloads::Scale::Small)
            .has_value());
    EXPECT_TRUE(
        core::buildProgram("adpcm", workloads::Scale::Small)
            .has_value());
    std::string msg = core::unknownWorkloadMessage("nope");
    EXPECT_NE(msg.find("unknown workload 'nope'"),
              std::string::npos);
    for (const auto &n : workloads::workloadNames())
        EXPECT_NE(msg.find(n), std::string::npos);
}

TEST(Sweep, InvalidJobsDieBeforeSimulating)
{
    std::vector<core::SweepJob> jobs;
    core::SweepJob j;
    j.cfg = core::SystemConfig::preset(core::SystemConfig::Preset::Paper, 
        core::SystemKind::Fusion);
    j.workload = "not-a-workload";
    j.scale = workloads::Scale::Small;
    jobs.push_back(j);
    EXPECT_EXIT(core::runSweep(jobs),
                ::testing::ExitedWithCode(1),
                "unknown workload 'not-a-workload'");
}

TEST(Sweep, WriteReportFileRoundTrips)
{
    core::SweepJob j;
    j.cfg = core::SystemConfig::preset(core::SystemConfig::Preset::Paper, 
        core::SystemKind::Fusion);
    j.workload = "adpcm";
    j.scale = workloads::Scale::Small;
    j.tag = "rt";
    auto results = core::runSweep({j});

    std::string path = ::testing::TempDir() + "sweep_rt.json";
    sweep::writeReportFile(path, "roundtrip", {j}, results);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(),
              sweep::reportJson("roundtrip", {j}, results));
    std::remove(path.c_str());
}

TEST(Sweep, PoisonedJobIsIsolatedAndDeterministic)
{
    // One poisoned job (absurdly small cycle budget) between two
    // healthy ones: the failure must be recorded as a structured
    // SweepReport entry while its siblings complete, and the whole
    // report must not depend on the worker count.
    auto makeJobs = [] {
        std::vector<core::SweepJob> jobs;
        core::SweepJob a;
        a.cfg = core::SystemConfig::preset(core::SystemConfig::Preset::Paper, 
            core::SystemKind::Fusion);
        a.workload = "adpcm";
        a.scale = workloads::Scale::Small;
        a.tag = "healthy/FU";
        jobs.push_back(a);

        core::SweepJob bad = a;
        bad.cfg.guard.maxCycles = 100;
        bad.tag = "poisoned/FU";
        jobs.push_back(bad);

        core::SweepJob c = a;
        c.cfg = core::SystemConfig::preset(core::SystemConfig::Preset::Paper, 
            core::SystemKind::Scratch);
        c.tag = "healthy/SC";
        jobs.push_back(c);
        return jobs;
    };

    auto jobs = makeJobs();
    core::SweepOptions serial;
    serial.jobs = 1;
    auto rs = core::runSweep(jobs, serial);
    core::SweepOptions parallel;
    parallel.jobs = 8;
    auto rp = core::runSweep(jobs, parallel);

    ASSERT_EQ(rs.size(), 3u);
    EXPECT_FALSE(rs[0].failed());
    EXPECT_GT(rs[0].totalCycles, 0u);
    ASSERT_TRUE(rs[1].failed());
    EXPECT_EQ(rs[1].error->category,
              guard::ErrorCategory::CycleBudget);
    EXPECT_FALSE(rs[1].error->diagnostic.empty());
    EXPECT_EQ(rs[1].workload, "adpcm");
    EXPECT_FALSE(rs[2].failed());
    EXPECT_GT(rs[2].totalCycles, 0u);

    // Byte-identical across worker counts, report included.
    ASSERT_EQ(rp.size(), rs.size());
    for (std::size_t i = 0; i < rs.size(); ++i)
        EXPECT_EQ(rs[i].toJson(), rp[i].toJson()) << "job " << i;
    std::string report = sweep::reportJson("poison", jobs, rs);
    EXPECT_EQ(report, sweep::reportJson("poison", jobs, rp));
    EXPECT_NE(report.find("\"failed\":1"), std::string::npos);
    EXPECT_NE(report.find("\"category\":\"cycle-budget\""),
              std::string::npos);
}

namespace
{

/** A workload whose build() always throws (program-cache tests). */
class ThrowingWorkload : public workloads::Workload
{
  public:
    std::string name() const override { return "boom"; }
    std::string displayName() const override { return "BOOM"; }
    trace::Program
    build(workloads::Scale) const override
    {
        throw std::runtime_error("synthetic build failure");
    }
};

std::unique_ptr<workloads::Workload>
makeBoom()
{
    return std::make_unique<ThrowingWorkload>();
}

} // namespace

TEST(Sweep, FailedProgramBuildPoisonsOnlyItsJobs)
{
    // The program cache builds each (workload, scale) once; when
    // that build throws, the builder *and* every concurrent waiter
    // on the same key must fail as isolated per-job errors while
    // jobs keyed on other programs complete normally.
    workloads::registerWorkload("boom", &makeBoom);

    auto makeJobs = [] {
        std::vector<core::SweepJob> jobs;
        for (auto kind :
             {core::SystemKind::Fusion, core::SystemKind::Shared,
              core::SystemKind::Scratch}) {
            core::SweepJob bad;
            bad.cfg = core::SystemConfig::preset(core::SystemConfig::Preset::Paper, kind);
            bad.workload = "boom";
            bad.scale = workloads::Scale::Small;
            bad.tag = std::string("boom/") +
                      core::systemKindShortName(kind);
            jobs.push_back(bad);

            core::SweepJob ok = bad;
            ok.workload = "adpcm";
            ok.tag = std::string("adpcm/") +
                     core::systemKindShortName(kind);
            jobs.push_back(ok);
        }
        return jobs;
    };

    auto jobs = makeJobs();
    for (std::size_t workers : {std::size_t{1}, std::size_t{6}}) {
        core::SweepOptions opt;
        opt.jobs = workers;
        auto rs = core::runSweep(jobs, opt);
        ASSERT_EQ(rs.size(), jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (jobs[i].workload == "boom") {
                ASSERT_TRUE(rs[i].failed())
                    << jobs[i].tag << " with " << workers
                    << " workers";
                // The builder surfaces the original exception; the
                // waiters surface the cache's poisoned-slot error.
                const std::string &msg = rs[i].error->message;
                EXPECT_TRUE(
                    msg.find("synthetic build failure") !=
                        std::string::npos ||
                    msg.find("program build failed for workload "
                             "'boom'") != std::string::npos)
                    << msg;
            } else {
                EXPECT_FALSE(rs[i].failed())
                    << jobs[i].tag << " with " << workers
                    << " workers";
                EXPECT_GT(rs[i].totalCycles, 0u);
            }
        }
    }

    workloads::registerWorkload("boom", nullptr);
}

TEST(Sweep, DeterminismAnchorAcrossAllSystemKinds)
{
    // The kernel-internals anchor: every system organization run
    // twice must serialize byte-identically. Any nondeterminism in
    // the event kernel (ordering, stat accounting, wall-clock data
    // leaking into the default JSON) trips this immediately.
    for (auto kind :
         {core::SystemKind::Scratch, core::SystemKind::Shared,
          core::SystemKind::Fusion, core::SystemKind::FusionDx,
          core::SystemKind::FusionMesi}) {
        core::SweepJob j;
        j.cfg = core::SystemConfig::preset(core::SystemConfig::Preset::Paper, kind);
        j.workload = "adpcm";
        j.scale = workloads::Scale::Small;
        j.tag = core::systemKindShortName(kind);
        auto twice = core::runSweep({j, j});
        ASSERT_EQ(twice.size(), 2u);
        EXPECT_EQ(twice[0].toJson(), twice[1].toJson())
            << "system " << core::systemKindName(kind)
            << " is nondeterministic";
    }
}

TEST(RunResult, PerfIsOptInAndOffByDefault)
{
    auto prog = core::buildProgram("adpcm", workloads::Scale::Small);
    ASSERT_TRUE(prog.has_value());
    core::RunResult r = core::runProgram(
        core::SystemConfig::preset(core::SystemConfig::Preset::Paper, core::SystemKind::Fusion),
        *prog);

    // Every run measures wall-clock throughput...
    ASSERT_TRUE(r.perf.has_value());
    EXPECT_GT(r.perf->events, 0u);
    EXPECT_GE(r.perf->hostSeconds, 0.0);

    // ...but serializes it only on request, so the determinism
    // comparisons above keep holding.
    EXPECT_EQ(r.toJson().find("\"perf\""), std::string::npos);
    std::string with = r.toJson(/*include_perf=*/true);
    EXPECT_NE(with.find("\"perf\":{\"hostSeconds\":"),
              std::string::npos);
    EXPECT_NE(with.find("\"eventsPerSecond\":"), std::string::npos);
    // The perf block is the only difference.
    std::string without = r.toJson();
    std::size_t at = with.find(",\"perf\":{");
    ASSERT_NE(at, std::string::npos);
    std::size_t end = with.find('}', at);
    ASSERT_NE(end, std::string::npos);
    EXPECT_EQ(with.substr(0, at) + with.substr(end + 1), without);
}

TEST(Sweep, ReportPerfAggregateIsOptIn)
{
    core::SweepJob j;
    j.cfg = core::SystemConfig::preset(core::SystemConfig::Preset::Paper, 
        core::SystemKind::Fusion);
    j.workload = "adpcm";
    j.scale = workloads::Scale::Small;
    j.tag = "agg";
    auto results = core::runSweep({j, j});
    std::string plain = sweep::reportJson("agg", {j, j}, results);
    EXPECT_EQ(plain.find("\"perf\""), std::string::npos);
    std::string with =
        sweep::reportJson("agg", {j, j}, results, true);
    // Per-result blocks plus the sweep-level aggregate.
    std::size_t first = with.find("\"perf\":{");
    ASSERT_NE(first, std::string::npos);
    std::size_t count = 0;
    for (std::size_t at = first; at != std::string::npos;
         at = with.find("\"perf\":{", at + 1))
        ++count;
    EXPECT_EQ(count, 3u);
}

TEST(Sweep, ReportOmitsFailureFieldsWhenAllHealthy)
{
    core::SweepJob j;
    j.cfg = core::SystemConfig::preset(core::SystemConfig::Preset::Paper, 
        core::SystemKind::Fusion);
    j.workload = "adpcm";
    j.scale = workloads::Scale::Small;
    j.tag = "ok";
    auto results = core::runSweep({j});
    std::string report = sweep::reportJson("clean", {j}, results);
    // Guard-off healthy output stays byte-compatible with pre-guard
    // reports: no "failed" counter, no "error" objects.
    EXPECT_EQ(report.find("\"failed\""), std::string::npos);
    EXPECT_EQ(report.find("\"error\""), std::string::npos);
}
