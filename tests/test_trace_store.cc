/**
 * @file
 * Trace store (src/trace/store.*) tests: byte-exact round trips for
 * every workload and scale the sweeps use, RunResult byte-identity
 * between fresh and replayed programs, on-disk TraceStore behavior,
 * and — the hardening half — corruption robustness: truncated,
 * bit-flipped and randomly mutated file images must load as a clean
 * failure, never a crash or a silently wrong program
 * (docs/HARDENING.md "corrupt artifacts degrade to misses").
 *
 * The seeded-mutation suite is registered with ctest as
 * TraceStoreFuzzSmoke so sanitizer configurations can run exactly
 * it: ctest --test-dir build-asan -R TraceStoreFuzz
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "core/runner.hh"
#include "sim/rng.hh"
#include "trace/store.hh"
#include "workloads/workload.hh"

namespace fusion::trace
{
namespace
{

namespace fs = std::filesystem;

/** Fresh private directory under the system temp dir. */
class TempDir
{
  public:
    explicit TempDir(const char *tag)
        : _path(fs::temp_directory_path() /
                (std::string("fusion-test-") + tag + "-" +
                 std::to_string(::getpid())))
    {
        fs::remove_all(_path);
        fs::create_directories(_path);
    }
    ~TempDir() { fs::remove_all(_path); }
    const fs::path &path() const { return _path; }

  private:
    fs::path _path;
};

Program
build(const std::string &name,
      workloads::Scale scale = workloads::Scale::Small)
{
    auto p = core::buildProgram(name, scale);
    EXPECT_TRUE(p.has_value()) << name;
    return std::move(*p);
}

// ---------------------------------------------------------------
// Round trips.
// ---------------------------------------------------------------

/** serialize -> deserialize reproduces the payload byte for byte
 *  for every workload at the scales the sweeps run. */
TEST(TraceStore, RoundTripAllWorkloadsAllScales)
{
    for (const auto &name : workloads::workloadNames()) {
        for (auto scale :
             {workloads::Scale::Small, workloads::Scale::Paper}) {
            Program prog = build(name, scale);
            const std::string image = serializeProgram(prog);
            Program out;
            std::string err;
            ASSERT_TRUE(deserializeProgram(image, out, &err))
                << name << ": " << err;
            // Payload identity implies full structural identity:
            // the payload encodes every field the simulator reads.
            EXPECT_EQ(serializeProgramPayload(prog),
                      serializeProgramPayload(out))
                << name << "@"
                << workloads::scaleName(scale);
            EXPECT_EQ(prog.name, out.name);
            EXPECT_EQ(prog.functions.size(), out.functions.size());
            EXPECT_EQ(prog.invocations.size(),
                      out.invocations.size());
            EXPECT_EQ(programHash(prog), programHash(out));
        }
    }
}

/** A replayed program simulates to byte-identical JSON on both
 *  config presets the paper evaluates. */
TEST(TraceStore, ReplayedProgramSimulatesIdentically)
{
    using core::SystemConfig;
    Program fresh = build("fft", workloads::Scale::Small);
    Program replayed;
    ASSERT_TRUE(
        deserializeProgram(serializeProgram(fresh), replayed));
    for (auto preset : {SystemConfig::Preset::Paper,
                        SystemConfig::Preset::AxcLarge}) {
        auto cfg = SystemConfig::preset(
            preset, core::SystemKind::Fusion);
        EXPECT_EQ(core::runProgram(cfg, fresh).toJson(),
                  core::runProgram(cfg, replayed).toJson())
            << core::presetName(preset);
    }
}

/** Any content difference moves programHash. */
TEST(TraceStore, HashTracksContent)
{
    Program prog = build("adpcm");
    const std::uint64_t h = programHash(prog);
    Program leased = prog;
    ASSERT_FALSE(leased.functions.empty());
    leased.functions[0].leaseTime += 1;
    EXPECT_NE(programHash(leased), h);
    Program renamed = prog;
    renamed.name += "x";
    EXPECT_NE(programHash(renamed), h);
    ASSERT_FALSE(prog.invocations.empty());
    ASSERT_FALSE(prog.invocations[0].ops.empty());
    Program reop = prog;
    reop.invocations[0].ops[0].addr ^= 0x40;
    EXPECT_NE(programHash(reop), h);
}

// ---------------------------------------------------------------
// On-disk store.
// ---------------------------------------------------------------

TEST(TraceStore, StoreAndLoad)
{
    TempDir dir("store");
    TraceStore store(dir.path().string());
    Program prog = build("susan");
    store.store("susan", workloads::Scale::Small, prog);
    ASSERT_TRUE(
        fs::exists(store.path("susan", workloads::Scale::Small)));
    auto loaded = store.load("susan", workloads::Scale::Small);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(serializeProgramPayload(prog),
              serializeProgramPayload(*loaded));
    // Other keys are independent misses.
    EXPECT_FALSE(
        store.load("susan", workloads::Scale::Paper).has_value());
    EXPECT_FALSE(
        store.load("fft", workloads::Scale::Small).has_value());
}

TEST(TraceStore, GlobalStoreRecordsThenReplays)
{
    TempDir dir("global");
    setGlobalStoreDir(dir.path().string());
    ASSERT_NE(globalStore(), nullptr);
    // First build records...
    Program first = build("adpcm");
    ASSERT_TRUE(fs::exists(globalStore()->path(
        "adpcm", workloads::Scale::Small)));
    // ...second build replays the identical program.
    Program second = build("adpcm");
    EXPECT_EQ(serializeProgramPayload(first),
              serializeProgramPayload(second));
    setGlobalStoreDir("");
    EXPECT_EQ(globalStore(), nullptr);
}

// ---------------------------------------------------------------
// Corruption robustness.
// ---------------------------------------------------------------

TEST(TraceStore, TruncationAtEveryPrefixFailsCleanly)
{
    Program prog = build("adpcm");
    const std::string image = serializeProgram(prog);
    // Every strict prefix must fail; stride keeps runtime sane on
    // the larger images while still covering the envelope borders.
    const std::size_t stride =
        image.size() > 4096 ? 97 : 1;
    for (std::size_t n = 0; n < image.size(); n += stride) {
        Program out;
        EXPECT_FALSE(
            deserializeProgram(image.substr(0, n), out))
            << "prefix " << n;
    }
}

TEST(TraceStore, BitFlipsAndTrailingGarbageFailCleanly)
{
    Program prog = build("adpcm");
    const std::string image = serializeProgram(prog);
    for (std::size_t pos :
         {std::size_t{0}, std::size_t{5}, image.size() / 2,
          image.size() - 1}) {
        std::string bad = image;
        bad[pos] = static_cast<char>(bad[pos] ^ 0x01);
        Program out;
        EXPECT_FALSE(deserializeProgram(bad, out))
            << "flip at " << pos;
    }
    Program out;
    EXPECT_FALSE(deserializeProgram(image + "tail", out));
    EXPECT_FALSE(deserializeProgram("", out));
    EXPECT_FALSE(deserializeProgram("FTRC", out));
}

TEST(TraceStore, CorruptFileOnDiskIsAMiss)
{
    TempDir dir("corrupt");
    TraceStore store(dir.path().string());
    Program prog = build("fft");
    store.store("fft", workloads::Scale::Small, prog);
    const std::string p =
        store.path("fft", workloads::Scale::Small);
    // Truncate the stored file to half size.
    std::string image;
    {
        std::ifstream in(p, std::ios::binary);
        image.assign(std::istreambuf_iterator<char>(in), {});
    }
    {
        std::ofstream outf(p,
                           std::ios::binary | std::ios::trunc);
        outf.write(image.data(),
                   static_cast<std::streamsize>(image.size() / 2));
    }
    EXPECT_FALSE(
        store.load("fft", workloads::Scale::Small).has_value());
}

/**
 * Seeded random-mutation fuzz: 64 mutated images per op must either
 * decode (a mutation can land in slack the hash does not cover —
 * it cannot, since the hash covers the whole payload, but the
 * contract is "no crash", not "always reject") or fail cleanly.
 * Under ASan/TSan/UBSan this is the memory-safety anchor for the
 * whole decode path. Registered with ctest as TraceStoreFuzzSmoke.
 */
TEST(TraceStoreFuzz, SeededMutationsNeverCrash)
{
    Program prog = build("adpcm");
    const std::string image = serializeProgram(prog);
    Rng rng(0xf00dfeedu);
    int rejected = 0;
    for (int i = 0; i < 64; ++i) {
        std::string bad = image;
        // 1-8 mutations: byte flips, overwrites, truncations and
        // small insertions, like a torn or bit-rotted artifact.
        const int edits = 1 + static_cast<int>(rng.below(8));
        for (int e = 0; e < edits && !bad.empty(); ++e) {
            const std::size_t pos = rng.below(bad.size());
            switch (rng.below(4)) {
              case 0:
                bad[pos] = static_cast<char>(
                    bad[pos] ^
                    static_cast<char>(1u << rng.below(8)));
                break;
              case 1:
                bad[pos] =
                    static_cast<char>(rng.below(256));
                break;
              case 2:
                bad.resize(pos);
                break;
              default:
                bad.insert(pos, 1,
                           static_cast<char>(rng.below(256)));
                break;
            }
        }
        Program out;
        std::string err;
        if (!deserializeProgram(bad, out, &err))
            ++rejected;
    }
    // The envelope hash makes accidental acceptance essentially
    // impossible; every mutated image should have been rejected.
    EXPECT_EQ(rejected, 64);
}

} // namespace
} // namespace fusion::trace
