/**
 * @file
 * End-to-end integration tests: whole programs on all four system
 * organizations, plus cross-system invariants.
 */

#include <gtest/gtest.h>

#include "core/reporters.hh"
#include "core/runner.hh"
#include "core/system.hh"

namespace fusion::core
{
namespace
{

trace::Program
smallProgram(const char *name = "adpcm")
{
    return *core::buildProgram(name, workloads::Scale::Small);
}

class AllSystems : public ::testing::TestWithParam<SystemKind>
{
};

TEST_P(AllSystems, RunsToCompletion)
{
    trace::Program p = smallProgram();
    RunResult r = runProgram(SystemConfig::preset(SystemConfig::Preset::Paper, GetParam()),
                             p);
    EXPECT_GT(r.totalCycles, 0u);
    EXPECT_GT(r.accelCycles, 0u);
    EXPECT_GT(r.totalPj(), 0.0);
    EXPECT_EQ(r.workload, "adpcm");
    EXPECT_EQ(r.kind, GetParam());
    // Both functions ran.
    EXPECT_EQ(r.funcCycles.size(), 2u);
    EXPECT_GT(r.funcCycles.at("coder"), 0u);
    EXPECT_GT(r.funcCycles.at("decoder"), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllSystems,
    ::testing::Values(SystemKind::Scratch, SystemKind::Shared,
                      SystemKind::Fusion, SystemKind::FusionDx),
    [](const auto &info) {
        return std::string(systemKindName(info.param)) == "FUSION-Dx"
                   ? std::string("FusionDx")
                   : std::string(systemKindName(info.param));
    });

TEST(SystemIntegration, DeterministicAcrossRuns)
{
    trace::Program p = smallProgram();
    RunResult a = runProgram(
        SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion), p);
    RunResult b = runProgram(
        SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion), p);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_DOUBLE_EQ(a.totalPj(), b.totalPj());
    EXPECT_EQ(a.l0xL1xCtrlMsgs, b.l0xL1xCtrlMsgs);
}

TEST(SystemIntegration, OnlyScratchUsesDma)
{
    trace::Program p = smallProgram();
    for (auto k : {SystemKind::Scratch, SystemKind::Shared,
                   SystemKind::Fusion}) {
        RunResult r = runProgram(SystemConfig::preset(SystemConfig::Preset::Paper, k), p);
        if (k == SystemKind::Scratch) {
            EXPECT_GT(r.dmaOps, 0u);
            EXPECT_GT(r.dmaBytes, 0u);
            EXPECT_GT(r.dmaCycles, 0u);
        } else {
            EXPECT_EQ(r.dmaOps, 0u);
            EXPECT_EQ(r.dmaCycles, 0u);
        }
    }
}

TEST(SystemIntegration, FusionEliminatesInterAccelDma)
{
    // The paper's core claim: data moves between accelerators
    // without host DMA. The DMA moves strictly more bytes than the
    // working set when functions share data; FUSION's L1X<->L2
    // data traffic stays near the working set.
    trace::Program p = smallProgram("tracking");
    RunResult sc = runProgram(
        SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Scratch), p);
    RunResult fu = runProgram(
        SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion), p);
    EXPECT_GT(sc.dmaBytes, sc.workingSetBytes);
    std::uint64_t fu_l2_bytes = fu.l1xL2DataMsgs * 72ull;
    EXPECT_LT(fu_l2_bytes, sc.dmaBytes);
}

TEST(SystemIntegration, FusionFiltersL1xAccesses)
{
    // Lesson 3: the L0X filters the great majority of accesses.
    trace::Program p = smallProgram();
    RunResult fu = runProgram(
        SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion), p);
    std::uint64_t l1x_traffic = fu.l1xHits + fu.l1xMisses;
    EXPECT_LT(l1x_traffic * 4, p.memOpCount());
}

TEST(SystemIntegration, SharedPaysPerAccessLinkTraffic)
{
    trace::Program p = smallProgram();
    RunResult sh = runProgram(
        SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Shared), p);
    // Every accelerator access crosses the AXC<->L1X link.
    EXPECT_GE(sh.l0xL1xCtrlMsgs + sh.l0xL1xDataMsgs,
              p.memOpCount());
}

TEST(SystemIntegration, HostFinalReadsForwardIntoTheTile)
{
    // Table 6: the host consuming outputs generates forwarded
    // requests answered via the AX-RMAP.
    trace::Program p = smallProgram();
    RunResult fu = runProgram(
        SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion), p);
    EXPECT_GT(fu.fwdsToTile, 0u);
    EXPECT_GT(fu.axRmapLookups, 0u);
    EXPECT_GT(fu.axTlbLookups, 0u);
    // TLB lookups happen on the L1X miss path only.
    EXPECT_EQ(fu.axTlbLookups, fu.l1xMisses);
}

TEST(SystemIntegration, WriteThroughMultipliesTileFlits)
{
    trace::Program p = smallProgram();
    SystemConfig wb = SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion);
    SystemConfig wt = wb;
    wt.l0xWriteThrough = true;
    RunResult rwb = runProgram(wb, p);
    RunResult rwt = runProgram(wt, p);
    // Table 4: orders of magnitude more write bandwidth.
    EXPECT_GT(rwt.l0xL1xFlits, 3 * rwb.l0xL1xFlits);
}

TEST(SystemIntegration, DxForwardsOnSharingWorkloads)
{
    trace::Program p = smallProgram("fft");
    RunResult dx = runProgram(
        SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::FusionDx), p);
    EXPECT_GT(dx.l0xForwards, 0u);
    EXPECT_GT(dx.l0xL0xDataMsgs, 0u);
    RunResult fu = runProgram(
        SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion), p);
    EXPECT_EQ(fu.l0xForwards, 0u);
}

TEST(SystemIntegration, LargeConfigDoublesL1xCapacityCost)
{
    trace::Program p = smallProgram();
    SystemConfig small = SystemConfig::preset(SystemConfig::Preset::Paper, 
        SystemKind::Fusion);
    SystemConfig large = SystemConfig::preset(SystemConfig::Preset::AxcLarge, SystemKind::Fusion);
    EXPECT_EQ(large.l0xBytes, 2 * small.l0xBytes);
    EXPECT_EQ(large.l1xBytes, 4 * small.l1xBytes);
    RunResult rs = runProgram(small, p);
    RunResult rl = runProgram(large, p);
    // Small working set: larger caches cannot help, higher access
    // energy hurts (Lesson 7).
    EXPECT_GE(rl.totalPj(), rs.totalPj());
}

TEST(SystemIntegration, HostProfileCoversAllFunctions)
{
    trace::Program p = smallProgram("susan");
    auto cycles = hostProfile(p);
    EXPECT_EQ(cycles.size(), p.functions.size());
    std::uint64_t total = 0;
    for (const auto &[name, c] : cycles) {
        EXPECT_GT(c, 0u) << name;
        total += c;
    }
    // smooth dominates (Table 1: 66% of time).
    EXPECT_GT(cycles.at("smooth") * 2, total);
}

TEST(SystemIntegration, EnergyStackPartitionsTheLedger)
{
    trace::Program p = smallProgram();
    RunResult r = runProgram(
        SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion), p);
    EnergyStack s = energyStack(r);
    EXPECT_NEAR(s.total(), r.totalPj(), r.totalPj() * 1e-9);
    EXPECT_GT(s.localStorePj, 0.0);
    EXPECT_GT(s.l1xPj, 0.0);
    EXPECT_DOUBLE_EQ(r.hierarchyPj(), r.totalPj() - s.dramPj);
}

TEST(SystemIntegration, MultiProcessTilePidIsolation)
{
    // Two processes' programs run back-to-back on one tile
    // without interference (PID-tagged caches).
    trace::Program p1 = smallProgram();
    trace::Program p2 = smallProgram();
    p2.pid = 2;
    RunResult r1 = runProgram(
        SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion), p1);
    RunResult r2 = runProgram(
        SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion), p2);
    EXPECT_EQ(r1.totalCycles, r2.totalCycles);
}

} // namespace
} // namespace fusion::core
