/**
 * @file
 * Tests for the telemetry subsystem (src/obs/): span tracer
 * mechanics, kind-mask parsing, interval metrics, Perfetto export,
 * the JSON linter, and — most importantly — the determinism anchors:
 * telemetry output is byte-identical across identical runs on every
 * system kind, and default (telemetry-off) output is unchanged.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "core/runner.hh"
#include "obs/json_lint.hh"
#include "obs/metrics.hh"
#include "obs/perfetto.hh"
#include "obs/span_tracer.hh"
#include "sweep/sweep.hh"

namespace fusion::obs
{
namespace
{

ObsConfig
allOn(Tick interval = 256)
{
    ObsConfig oc;
    oc.trace = true;
    oc.metricsInterval = interval;
    return oc;
}

// ---------------------------------------------------------------
// SpanTracer unit tests.
// ---------------------------------------------------------------

TEST(SpanTracer, RecordsBeginEndSpans)
{
    SpanTracer t(allOn());
    auto trk = t.registerTrack("comp");
    t.begin(trk, SpanKind::Access, 0x40, 10);
    t.end(trk, SpanKind::Access, 0x40, 25);
    ASSERT_EQ(t.retained(), 1u);
    auto spans = t.sortedSpans();
    EXPECT_EQ(spans[0].begin, 10u);
    EXPECT_EQ(spans[0].end, 25u);
    EXPECT_EQ(spans[0].addr, 0x40u);
    EXPECT_EQ(spans[0].track, trk);
    EXPECT_EQ(spans[0].kind, SpanKind::Access);
}

TEST(SpanTracer, ReentrantBeginsNest)
{
    // Secondary MSHR targets joining an outstanding miss re-begin
    // the same key: one span from first begin to last end.
    SpanTracer t(allOn());
    auto trk = t.registerTrack("comp");
    t.begin(trk, SpanKind::Lease, 0x80, 5);
    t.begin(trk, SpanKind::Lease, 0x80, 7);
    t.end(trk, SpanKind::Lease, 0x80, 9);
    EXPECT_EQ(t.retained(), 0u); // still one level open
    t.end(trk, SpanKind::Lease, 0x80, 12);
    ASSERT_EQ(t.retained(), 1u);
    auto spans = t.sortedSpans();
    EXPECT_EQ(spans[0].begin, 5u);
    EXPECT_EQ(spans[0].end, 12u);
}

TEST(SpanTracer, PhasesAttachToOpenSpan)
{
    SpanTracer t(allOn());
    auto trk = t.registerTrack("comp");
    t.begin(trk, SpanKind::Access, 0x40, 1);
    t.phase(trk, SpanKind::Access, 0x40, "miss", 3);
    t.end(trk, SpanKind::Access, 0x40, 8);
    auto spans = t.sortedSpans();
    ASSERT_EQ(spans.size(), 1u);
    ASSERT_EQ(spans[0].numPhases, 1u);
    EXPECT_STREQ(spans[0].phases[0].name, "miss");
    EXPECT_EQ(spans[0].phases[0].tick, 3u);
}

TEST(SpanTracer, UnmatchedEndIsIgnored)
{
    SpanTracer t(allOn());
    auto trk = t.registerTrack("comp");
    t.end(trk, SpanKind::Access, 0x40, 8); // no matching begin
    EXPECT_EQ(t.retained(), 0u);
    EXPECT_EQ(t.recorded(), 0u);
}

TEST(SpanTracer, RingOverwritesOldestWhenFull)
{
    ObsConfig oc = allOn();
    oc.traceLimit = 4;
    SpanTracer t(oc);
    auto trk = t.registerTrack("comp");
    for (Tick i = 0; i < 6; ++i)
        t.complete(trk, SpanKind::LinkMsg, i, i * 10, i * 10 + 1);
    EXPECT_EQ(t.recorded(), 6u);
    EXPECT_EQ(t.dropped(), 2u);
    auto spans = t.sortedSpans();
    ASSERT_EQ(spans.size(), 4u);
    // The two oldest (begin 0 and 10) were recycled.
    EXPECT_EQ(spans.front().begin, 20u);
    EXPECT_EQ(spans.back().begin, 50u);
}

TEST(SpanTracer, KindMaskFiltersAtRecordTime)
{
    ObsConfig oc = allOn();
    oc.traceKindMask = spanKindBit(SpanKind::Access);
    SpanTracer t(oc);
    auto trk = t.registerTrack("comp");
    t.begin(trk, SpanKind::Lease, 0x40, 1);
    t.end(trk, SpanKind::Lease, 0x40, 2);
    t.complete(trk, SpanKind::LinkMsg, 0, 1, 2);
    t.begin(trk, SpanKind::Access, 0x40, 3);
    t.end(trk, SpanKind::Access, 0x40, 4);
    auto spans = t.sortedSpans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].kind, SpanKind::Access);
}

TEST(SpanKinds, ParseKindMask)
{
    std::string err;
    EXPECT_EQ(parseKindMask("", &err), ~0u); // empty = everything
    EXPECT_EQ(parseKindMask("access", &err),
              spanKindBit(SpanKind::Access));
    EXPECT_EQ(parseKindMask("access,lease", &err),
              spanKindBit(SpanKind::Access) |
                  spanKindBit(SpanKind::Lease));
    // Whitespace and case are tolerated.
    EXPECT_EQ(parseKindMask(" Access , LEASE ", &err),
              spanKindBit(SpanKind::Access) |
                  spanKindBit(SpanKind::Lease));
    EXPECT_TRUE(err.empty());
    // Unknown names fail loudly, naming the offender and the
    // valid vocabulary.
    EXPECT_EQ(parseKindMask("access,bogus", &err), 0u);
    EXPECT_NE(err.find("bogus"), std::string::npos) << err;
    EXPECT_NE(err.find("link_msg"), std::string::npos) << err;
}

TEST(SpanKinds, NamesAreStable)
{
    EXPECT_STREQ(spanKindName(SpanKind::Invocation), "invocation");
    EXPECT_STREQ(spanKindName(SpanKind::Access), "access");
    EXPECT_STREQ(spanKindName(SpanKind::Lease), "lease");
    EXPECT_STREQ(spanKindName(SpanKind::MesiReq), "mesi_req");
    EXPECT_STREQ(spanKindName(SpanKind::LlcReq), "llc_req");
    EXPECT_STREQ(spanKindName(SpanKind::HostFwd), "host_fwd");
    EXPECT_STREQ(spanKindName(SpanKind::Dma), "dma");
    EXPECT_STREQ(spanKindName(SpanKind::LinkMsg), "link_msg");
}

// ---------------------------------------------------------------
// JSON linter.
// ---------------------------------------------------------------

TEST(JsonLint, AcceptsValidDocuments)
{
    EXPECT_TRUE(jsonParses("{}"));
    EXPECT_TRUE(jsonParses("[]"));
    EXPECT_TRUE(jsonParses("{\"a\":[1,2.5,-3e4],\"b\":null,"
                           "\"c\":true,\"d\":\"x\\\"y\"}"));
    EXPECT_TRUE(jsonParses(" [ {\"nested\":{\"deep\":[]}} ] "));
}

TEST(JsonLint, RejectsInvalidDocuments)
{
    std::string err;
    EXPECT_FALSE(jsonParses("", &err));
    EXPECT_FALSE(jsonParses("{", &err));
    EXPECT_FALSE(jsonParses("{\"a\":}", &err));
    EXPECT_FALSE(jsonParses("[1,2,]", &err));
    EXPECT_FALSE(jsonParses("{} trailing", &err));
    EXPECT_FALSE(jsonParses("'single'", &err));
    EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------
// End-to-end: telemetry on real runs across every system kind.
// ---------------------------------------------------------------

core::RunResult
runWith(core::SystemKind kind, const trace::Program &p,
        const ObsConfig &oc)
{
    core::SystemConfig cfg = core::SystemConfig::preset(core::SystemConfig::Preset::Paper, kind);
    cfg.obs = oc;
    return core::runProgram(cfg, p);
}

class ObsAllSystems
    : public ::testing::TestWithParam<core::SystemKind>
{
};

TEST_P(ObsAllSystems, TelemetryOutputIsDeterministic)
{
    // The determinism anchor: two identical runs with tracing and
    // interval metrics produce byte-identical result JSON and
    // byte-identical Perfetto traces.
    trace::Program p =
        *core::buildProgram("adpcm", workloads::Scale::Small);
    core::RunResult a = runWith(GetParam(), p, allOn());
    core::RunResult b = runWith(GetParam(), p, allOn());

    EXPECT_EQ(a.toJson(), b.toJson());

    ASSERT_TRUE(a.trace);
    ASSERT_TRUE(b.trace);
    std::ostringstream ta, tb;
    writePerfetto(ta, {TraceProcess{"job", a.trace}});
    writePerfetto(tb, {TraceProcess{"job", b.trace}});
    EXPECT_GT(a.trace->retained(), 0u);
    EXPECT_EQ(ta.str(), tb.str());

    // And the trace parses as JSON.
    std::string err;
    EXPECT_TRUE(jsonParses(ta.str(), &err)) << err;
}

TEST_P(ObsAllSystems, DisabledTelemetryLeavesResultUntouched)
{
    trace::Program p =
        *core::buildProgram("adpcm", workloads::Scale::Small);
    core::RunResult plain = runWith(GetParam(), p, ObsConfig{});
    EXPECT_FALSE(plain.metrics.has_value());
    EXPECT_EQ(plain.trace, nullptr);
    EXPECT_TRUE(plain.latency.empty());
    std::string json = plain.toJson();
    EXPECT_EQ(json.find("\"metrics\""), std::string::npos);
    EXPECT_EQ(json.find("\"latency\""), std::string::npos);

    // A telemetry run must not perturb the simulation itself: the
    // simulated metrics are identical with and without telemetry.
    core::RunResult traced = runWith(GetParam(), p, allOn());
    EXPECT_EQ(plain.totalCycles, traced.totalCycles);
    EXPECT_EQ(plain.accelCycles, traced.accelCycles);
    EXPECT_DOUBLE_EQ(plain.totalPj(), traced.totalPj());
}

TEST_P(ObsAllSystems, MetricsSeriesIsWellFormed)
{
    trace::Program p =
        *core::buildProgram("adpcm", workloads::Scale::Small);
    core::RunResult r = runWith(GetParam(), p, allOn(512));
    ASSERT_TRUE(r.metrics.has_value());
    const MetricsSeries &m = *r.metrics;
    EXPECT_EQ(m.interval, 512u);
    EXPECT_FALSE(m.names.empty());
    ASSERT_FALSE(m.rows.empty());
    Tick prev = 0;
    for (const MetricsRow &row : m.rows) {
        EXPECT_EQ(row.values.size(), m.names.size());
        EXPECT_GT(row.tick, prev); // strictly increasing
        EXPECT_EQ(row.tick % 512, 0u);
        prev = row.tick;
    }
    // The series JSON itself parses.
    std::ostringstream os;
    writeSeriesJson(os, m);
    std::string err;
    EXPECT_TRUE(jsonParses(os.str(), &err)) << err;
    // Latency percentiles were harvested and are ordered.
    ASSERT_FALSE(r.latency.empty());
    for (const auto &[name, ls] : r.latency) {
        EXPECT_GT(ls.samples, 0u) << name;
        EXPECT_LE(ls.p50, ls.p95) << name;
        EXPECT_LE(ls.p95, ls.p99) << name;
        EXPECT_LE(ls.p99, ls.max) << name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, ObsAllSystems,
    ::testing::Values(core::SystemKind::Scratch,
                      core::SystemKind::Shared,
                      core::SystemKind::Fusion,
                      core::SystemKind::FusionDx,
                      core::SystemKind::FusionMesi),
    [](const auto &info) {
        std::string n = core::systemKindName(info.param);
        std::string out;
        for (char c : n)
            if (c != '-')
                out += c;
        return out;
    });

std::unordered_set<std::string>
spanKindsOf(const core::RunResult &r)
{
    std::unordered_set<std::string> kinds;
    for (const SpanRecord &s : r.trace->sortedSpans())
        kinds.insert(spanKindName(s.kind));
    return kinds;
}

TEST(ObsCoverage, FusionTracesAccLeaseLlcAndLinks)
{
    trace::Program p =
        *core::buildProgram("adpcm", workloads::Scale::Small);
    core::RunResult r =
        runWith(core::SystemKind::Fusion, p, allOn());
    ASSERT_TRUE(r.trace);
    auto kinds = spanKindsOf(r);
    EXPECT_TRUE(kinds.count("invocation"));
    EXPECT_TRUE(kinds.count("access"));   // ACC L0X
    EXPECT_TRUE(kinds.count("lease"));    // L1X lease grant
    EXPECT_TRUE(kinds.count("llc_req"));  // host LLC/directory
    EXPECT_TRUE(kinds.count("link_msg")); // interconnect
}

TEST(ObsCoverage, FusionMesiTracesMesiRequests)
{
    trace::Program p =
        *core::buildProgram("adpcm", workloads::Scale::Small);
    core::RunResult r =
        runWith(core::SystemKind::FusionMesi, p, allOn());
    ASSERT_TRUE(r.trace);
    auto kinds = spanKindsOf(r);
    EXPECT_TRUE(kinds.count("access"));   // MESI L0X
    EXPECT_TRUE(kinds.count("mesi_req")); // intra-tile directory
}

TEST(ObsCoverage, ScratchTracesDmaTransfers)
{
    trace::Program p =
        *core::buildProgram("adpcm", workloads::Scale::Small);
    core::RunResult r =
        runWith(core::SystemKind::Scratch, p, allOn());
    ASSERT_TRUE(r.trace);
    auto kinds = spanKindsOf(r);
    EXPECT_TRUE(kinds.count("dma"));
    EXPECT_TRUE(kinds.count("llc_req") == 0 ||
                true); // scratch may not issue MESI requests
}

TEST(ObsCoverage, KindMaskLimitsRecordedSpans)
{
    trace::Program p =
        *core::buildProgram("adpcm", workloads::Scale::Small);
    ObsConfig oc = allOn();
    oc.traceKindMask = spanKindBit(SpanKind::Lease);
    core::RunResult r = runWith(core::SystemKind::Fusion, p, oc);
    ASSERT_TRUE(r.trace);
    auto kinds = spanKindsOf(r);
    EXPECT_EQ(kinds.size(), 1u);
    EXPECT_TRUE(kinds.count("lease"));
}

// ---------------------------------------------------------------
// Sweep integration: metricsSummary aggregation.
// ---------------------------------------------------------------

TEST(ObsSweep, ReportCarriesMetricsSummaryOnlyWhenSampled)
{
    std::vector<sweep::SweepJob> jobs(2);
    jobs[0].cfg =
        core::SystemConfig::preset(core::SystemConfig::Preset::Paper, core::SystemKind::Fusion);
    jobs[0].workload = "adpcm";
    jobs[0].scale = workloads::Scale::Small;
    jobs[0].tag = "adpcm/FU";
    jobs[1] = jobs[0];
    jobs[1].cfg =
        core::SystemConfig::preset(core::SystemConfig::Preset::Paper, core::SystemKind::Shared);
    jobs[1].tag = "adpcm/SH";

    auto plain = sweep::runSweep(jobs);
    std::string plain_json = sweep::reportJson("obs", jobs, plain);
    EXPECT_EQ(plain_json.find("metricsSummary"), std::string::npos);

    for (auto &j : jobs)
        j.cfg.obs = allOn(512);
    auto sampled = sweep::runSweep(jobs);
    std::string json = sweep::reportJson("obs", jobs, sampled);
    EXPECT_NE(json.find("\"metricsSummary\""), std::string::npos);
    std::string err;
    EXPECT_TRUE(jsonParses(json, &err)) << err;

    // Determinism extends to the whole report.
    auto again = sweep::runSweep(jobs);
    EXPECT_EQ(json, sweep::reportJson("obs", jobs, again));

    // Summary aggregation is min <= mean <= max per gauge.
    std::map<std::string, GaugeSummary> sum;
    for (const auto &r : sampled)
        if (r.metrics)
            accumulate(sum, *r.metrics);
    ASSERT_FALSE(sum.empty());
    for (const auto &[name, g] : sum) {
        EXPECT_LE(g.min, g.mean()) << name;
        EXPECT_LE(g.mean(), g.max) << name;
    }
}

} // namespace
} // namespace fusion::obs
