/**
 * @file
 * Unit tests for the MSHR file.
 */

#include <gtest/gtest.h>

#include "mem/mshr.hh"

namespace fusion::mem
{
namespace
{

TEST(Mshr, FirstAllocationIsPrimary)
{
    MshrFile m;
    int fired = 0;
    EXPECT_TRUE(m.allocate(0x100, [&] { ++fired; }));
    EXPECT_FALSE(m.allocate(0x100, [&] { ++fired; }));
    EXPECT_TRUE(m.pending(0x100));
    m.complete(0x100);
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(m.pending(0x100));
}

TEST(Mshr, DistinctLinesAreIndependent)
{
    MshrFile m;
    int a = 0, b = 0;
    EXPECT_TRUE(m.allocate(0x100, [&] { ++a; }));
    EXPECT_TRUE(m.allocate(0x200, [&] { ++b; }));
    EXPECT_EQ(m.size(), 2u);
    m.complete(0x100);
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 0);
    m.complete(0x200);
    EXPECT_EQ(b, 1);
}

TEST(Mshr, TargetsRunInArrivalOrder)
{
    MshrFile m;
    std::vector<int> order;
    m.allocate(0x40, [&] { order.push_back(0); });
    m.allocate(0x40, [&] { order.push_back(1); });
    m.allocate(0x40, [&] { order.push_back(2); });
    m.complete(0x40);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Mshr, TargetMayReallocateSameLine)
{
    // A store retry after a read fill re-allocates the same line
    // (upgrade): complete() must tolerate re-entry.
    MshrFile m;
    bool second_round = false;
    m.allocate(0x80, [&] {
        EXPECT_TRUE(m.allocate(0x80, [&] { second_round = true; }));
    });
    m.complete(0x80);
    EXPECT_TRUE(m.pending(0x80));
    m.complete(0x80);
    EXPECT_TRUE(second_round);
}

TEST(Mshr, PidsDistinguishSameLine)
{
    MshrFile m;
    int a = 0, b = 0;
    EXPECT_TRUE(m.allocate(0x100, 1, [&] { ++a; }));
    EXPECT_TRUE(m.allocate(0x100, 2, [&] { ++b; }));
    EXPECT_EQ(m.size(), 2u);
    m.complete(0x100, 1);
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 0);
    EXPECT_FALSE(m.pending(0x100, 1));
    EXPECT_TRUE(m.pending(0x100, 2));
    m.complete(0x100, 2);
    EXPECT_EQ(b, 1);
}

TEST(Mshr, XorFoldCollisionPairsStayIndependent)
{
    // Regression: the L1X stall queues (and the MESI tile
    // directory) used to key by vline ^ (pid << 48). These two
    // (line, pid) pairs collide under that fold, which merged
    // unrelated transactions; composite keying must keep them
    // apart.
    const Addr l1 = 0x4000;
    const Pid p1 = 1, p2 = 3;
    const Addr l2 =
        l1 ^ ((static_cast<Addr>(p1) ^ static_cast<Addr>(p2))
              << 48);
    ASSERT_EQ(l1 ^ (static_cast<Addr>(p1) << 48),
              l2 ^ (static_cast<Addr>(p2) << 48));
    MshrFile m;
    int a = 0, b = 0;
    EXPECT_TRUE(m.allocate(l1, p1, [&] { ++a; }));
    // Under the old keying this merged onto the first entry.
    EXPECT_TRUE(m.allocate(l2, p2, [&] { ++b; }));
    EXPECT_EQ(m.size(), 2u);
    m.complete(l1, p1);
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 0);
    EXPECT_TRUE(m.pending(l2, p2));
    m.complete(l2, p2);
    EXPECT_EQ(b, 1);
    EXPECT_EQ(m.size(), 0u);
}

TEST(Mshr, TargetReallocatesSameLineMidDrain)
{
    // The first target re-allocates the line while a second target
    // of the *completed* entry is still queued: the old drain must
    // finish (arrival order) and the re-allocation must land on a
    // fresh entry, not the one being drained.
    MshrFile m;
    std::vector<int> order;
    bool refired = false;
    m.allocate(0x80, 2, [&] {
        order.push_back(0);
        EXPECT_TRUE(m.allocate(0x80, 2, [&] { refired = true; }));
        EXPECT_TRUE(m.pending(0x80, 2));
    });
    m.allocate(0x80, 2, [&] { order.push_back(1); });
    m.complete(0x80, 2);
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_FALSE(refired); // queued on the fresh entry
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(m.targets(), 1u);
    m.complete(0x80, 2);
    EXPECT_TRUE(refired);
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.targets(), 0u);
}

TEST(Mshr, SurvivesBucketGrowth)
{
    // Push past the initial bucket count so grow() re-chains, then
    // drain everything and check no entry was lost or duplicated.
    MshrFile m;
    int fired = 0;
    constexpr int kN = 64;
    for (int i = 0; i < kN; ++i) {
        EXPECT_TRUE(m.allocate(0x1000 + 64 * static_cast<Addr>(i),
                               i % 3, [&] { ++fired; }));
    }
    EXPECT_EQ(m.size(), static_cast<std::size_t>(kN));
    for (int i = 0; i < kN; ++i)
        m.complete(0x1000 + 64 * static_cast<Addr>(i), i % 3);
    EXPECT_EQ(fired, kN);
    EXPECT_EQ(m.size(), 0u);
}

TEST(MshrDeathTest, CompletingUnknownLinePanics)
{
    MshrFile m;
    EXPECT_DEATH(m.complete(0xDEAD), "unknown line");
}

} // namespace
} // namespace fusion::mem
