/**
 * @file
 * Unit tests for the MSHR file.
 */

#include <gtest/gtest.h>

#include "mem/mshr.hh"

namespace fusion::mem
{
namespace
{

TEST(Mshr, FirstAllocationIsPrimary)
{
    MshrFile m;
    int fired = 0;
    EXPECT_TRUE(m.allocate(0x100, [&] { ++fired; }));
    EXPECT_FALSE(m.allocate(0x100, [&] { ++fired; }));
    EXPECT_TRUE(m.pending(0x100));
    m.complete(0x100);
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(m.pending(0x100));
}

TEST(Mshr, DistinctLinesAreIndependent)
{
    MshrFile m;
    int a = 0, b = 0;
    EXPECT_TRUE(m.allocate(0x100, [&] { ++a; }));
    EXPECT_TRUE(m.allocate(0x200, [&] { ++b; }));
    EXPECT_EQ(m.size(), 2u);
    m.complete(0x100);
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 0);
    m.complete(0x200);
    EXPECT_EQ(b, 1);
}

TEST(Mshr, TargetsRunInArrivalOrder)
{
    MshrFile m;
    std::vector<int> order;
    m.allocate(0x40, [&] { order.push_back(0); });
    m.allocate(0x40, [&] { order.push_back(1); });
    m.allocate(0x40, [&] { order.push_back(2); });
    m.complete(0x40);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Mshr, TargetMayReallocateSameLine)
{
    // A store retry after a read fill re-allocates the same line
    // (upgrade): complete() must tolerate re-entry.
    MshrFile m;
    bool second_round = false;
    m.allocate(0x80, [&] {
        EXPECT_TRUE(m.allocate(0x80, [&] { second_round = true; }));
    });
    m.complete(0x80);
    EXPECT_TRUE(m.pending(0x80));
    m.complete(0x80);
    EXPECT_TRUE(second_round);
}

TEST(MshrDeathTest, CompletingUnknownLinePanics)
{
    MshrFile m;
    EXPECT_DEATH(m.complete(0xDEAD), "unknown line");
}

} // namespace
} // namespace fusion::mem
