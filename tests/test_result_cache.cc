/**
 * @file
 * Result-cache tests (src/sweep/result_cache.*, DESIGN.md §10):
 *
 *  - SystemConfig::canonicalHash() moves for EVERY user-settable
 *    knob and is value-based (explicitly-assigned defaults hash
 *    like untouched defaults) — the property that makes the hash a
 *    safe cache key.
 *  - RunResult binary round trips are toJson()-byte-identical,
 *    including the wall-clock perf block.
 *  - ResultCache disk behavior: hit/miss, corrupt entries degrade
 *    to misses and are deleted, the byte cap evicts oldest-first,
 *    failed results are never stored.
 *  - runSweep() integration: cold-then-warm byte identity, lazy
 *    transforms, in-flight dedupe, telemetry/fault bypass, and the
 *    cache-off path matching the cache-on results exactly.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "core/runner.hh"
#include "sim/hash.hh"
#include "sweep/result_cache.hh"
#include "sweep/sweep.hh"

namespace fusion::sweep
{
namespace
{

namespace fs = std::filesystem;
using core::RunResult;
using core::SystemConfig;
using core::SystemKind;

class TempDir
{
  public:
    explicit TempDir(const char *tag)
        : _path(fs::temp_directory_path() /
                (std::string("fusion-test-") + tag + "-" +
                 std::to_string(::getpid())))
    {
        fs::remove_all(_path);
        fs::create_directories(_path);
    }
    ~TempDir() { fs::remove_all(_path); }
    std::string str() const { return _path.string(); }

  private:
    fs::path _path;
};

// ---------------------------------------------------------------
// canonicalHash.
// ---------------------------------------------------------------

/** Every user-settable knob must move the hash. A knob missing from
 *  this table (or from canonicalHash) means a config change could
 *  alias a stale cache entry — extend BOTH when adding a field. */
TEST(CanonicalHash, EveryKnobChangesTheHash)
{
    struct Knob
    {
        const char *name;
        void (*mutate)(SystemConfig &);
    };
    const Knob kKnobs[] = {
        {"kind",
         [](SystemConfig &c) { c.kind = SystemKind::Scratch; }},
        {"scratchpadBytes",
         [](SystemConfig &c) { c.scratchpadBytes *= 2; }},
        {"l0xBytes", [](SystemConfig &c) { c.l0xBytes *= 2; }},
        {"l0xAssoc", [](SystemConfig &c) { c.l0xAssoc *= 2; }},
        {"l0xRepl",
         [](SystemConfig &c) {
             c.l0xRepl = c.l0xRepl == mem::ReplPolicy::Lru
                             ? mem::ReplPolicy::Fifo
                             : mem::ReplPolicy::Lru;
         }},
        {"l1xBytes", [](SystemConfig &c) { c.l1xBytes *= 2; }},
        {"l1xAssoc", [](SystemConfig &c) { c.l1xAssoc *= 2; }},
        {"l1xBanks", [](SystemConfig &c) { c.l1xBanks *= 2; }},
        {"l0xWriteThrough",
         [](SystemConfig &c) {
             c.l0xWriteThrough = !c.l0xWriteThrough;
         }},
        {"llc.capacityBytes",
         [](SystemConfig &c) { c.llc.capacityBytes *= 2; }},
        {"llc.assoc", [](SystemConfig &c) { c.llc.assoc *= 2; }},
        {"llc.nucaBanks",
         [](SystemConfig &c) { c.llc.nucaBanks *= 2; }},
        {"llc.bankLatency",
         [](SystemConfig &c) { c.llc.bankLatency += 1; }},
        {"llc.hopLatency",
         [](SystemConfig &c) { c.llc.hopLatency += 1; }},
        {"dram.channels",
         [](SystemConfig &c) { c.dram.channels *= 2; }},
        {"dram.cmdQueueDepth",
         [](SystemConfig &c) { c.dram.cmdQueueDepth += 1; }},
        {"dram.rowHitLatency",
         [](SystemConfig &c) { c.dram.rowHitLatency += 1; }},
        {"dram.rowMissLatency",
         [](SystemConfig &c) { c.dram.rowMissLatency += 1; }},
        {"dram.burstCycles",
         [](SystemConfig &c) { c.dram.burstCycles += 1; }},
        {"dram.rowBytes",
         [](SystemConfig &c) { c.dram.rowBytes *= 2; }},
        {"dram.accessPj",
         [](SystemConfig &c) { c.dram.accessPj += 1.0; }},
        {"hostCore.issueWidth",
         [](SystemConfig &c) { c.hostCore.issueWidth += 1; }},
        {"hostCore.maxOutstanding",
         [](SystemConfig &c) { c.hostCore.maxOutstanding += 1; }},
        {"hostCore.storeQueue",
         [](SystemConfig &c) { c.hostCore.storeQueue += 1; }},
        {"hostL1Bytes",
         [](SystemConfig &c) { c.hostL1Bytes *= 2; }},
        {"hostL1Assoc",
         [](SystemConfig &c) { c.hostL1Assoc *= 2; }},
        {"datapathWidth",
         [](SystemConfig &c) { c.datapathWidth += 1; }},
        {"accelStoreBuffer",
         [](SystemConfig &c) { c.accelStoreBuffer += 1; }},
        {"overlapInvocations",
         [](SystemConfig &c) {
             c.overlapInvocations = !c.overlapInvocations;
         }},
        {"numTiles", [](SystemConfig &c) { c.numTiles += 1; }},
        {"dmaMaxOutstanding",
         [](SystemConfig &c) { c.dmaMaxOutstanding += 1; }},
        {"guard.maxCycles",
         [](SystemConfig &c) { c.guard.maxCycles += 1000; }},
        {"guard.maxWallMs",
         [](SystemConfig &c) { c.guard.maxWallMs += 1000; }},
        {"guard.noProgressTicks",
         [](SystemConfig &c) { c.guard.noProgressTicks += 100; }},
        {"guard.invariantPeriod",
         [](SystemConfig &c) { c.guard.invariantPeriod += 64; }},
        {"guard.invariantsAtEnd",
         [](SystemConfig &c) {
             c.guard.invariantsAtEnd = !c.guard.invariantsAtEnd;
         }},
        {"guard.fault.kind",
         [](SystemConfig &c) {
             c.guard.fault.kind = guard::FaultKind::LeakMshr;
         }},
        {"guard.fault.triggerAfter",
         [](SystemConfig &c) { c.guard.fault.triggerAfter += 1; }},
        {"guard.fault.delay",
         [](SystemConfig &c) { c.guard.fault.delay += 1; }},
        {"guard.schedule.seed",
         [](SystemConfig &c) { c.guard.schedule.seed += 1; }},
        {"guard.schedule.faults",
         [](SystemConfig &c) {
             c.guard.schedule.faults.push_back(
                 {guard::FaultKind::DropFlit, 3, 0, 0.5});
         }},
        {"obs.trace",
         [](SystemConfig &c) { c.obs.trace = !c.obs.trace; }},
        {"obs.traceKindMask",
         [](SystemConfig &c) { c.obs.traceKindMask ^= 1; }},
        {"obs.traceLimit",
         [](SystemConfig &c) { c.obs.traceLimit += 1; }},
        {"obs.metricsInterval",
         [](SystemConfig &c) { c.obs.metricsInterval += 128; }},
        {"orchestrator.policy",
         [](SystemConfig &c) {
             c.orchestrator.policy =
                 core::OrchPolicy::EpsilonGreedy;
         }},
        {"orchestrator.staticMode",
         [](SystemConfig &c) {
             c.orchestrator.staticMode = SystemKind::Shared;
         }},
        {"orchestrator.epsilon",
         [](SystemConfig &c) { c.orchestrator.epsilon += 0.05; }},
        {"orchestrator.rngSeed",
         [](SystemConfig &c) { c.orchestrator.rngSeed += 1; }},
        {"orchestrator.minDwell",
         [](SystemConfig &c) { c.orchestrator.minDwell += 1; }},
        {"orchestrator.switchFixedCycles",
         [](SystemConfig &c) {
             c.orchestrator.switchFixedCycles += 1;
         }},
        {"orchestrator.switchCyclesPerLine",
         [](SystemConfig &c) {
             c.orchestrator.switchCyclesPerLine += 1;
         }},
        {"orchestrator.switchPjPerLine",
         [](SystemConfig &c) {
             c.orchestrator.switchPjPerLine += 1.0;
         }},
        {"orchestrator.dxForwardFraction",
         [](SystemConfig &c) {
             c.orchestrator.dxForwardFraction += 0.01;
         }},
        {"orchestrator.scratchFootprintRatio",
         [](SystemConfig &c) {
             c.orchestrator.scratchFootprintRatio += 1.0;
         }},
        {"shardDomains",
         [](SystemConfig &c) { c.shardDomains += 1; }},
    };
    const SystemConfig base;
    const std::uint64_t h0 = base.canonicalHash();
    for (const Knob &k : kKnobs) {
        SystemConfig c;
        k.mutate(c);
        EXPECT_NE(c.canonicalHash(), h0) << k.name;
    }
}

/** Value-based: re-assigning the default value is a no-op, and two
 *  paths to the same values hash identically. */
TEST(CanonicalHash, InvariantToDefaultedAssignments)
{
    const SystemConfig base;
    SystemConfig assigned;
    assigned.l0xBytes = base.l0xBytes;
    assigned.numTiles = base.numTiles;
    assigned.overlapInvocations = base.overlapInvocations;
    assigned.orchestrator.epsilon = base.orchestrator.epsilon;
    EXPECT_EQ(assigned.canonicalHash(), base.canonicalHash());

    auto a = SystemConfig::preset(SystemConfig::Preset::AxcLarge,
                                  SystemKind::Fusion);
    SystemConfig b;
    b.kind = SystemKind::Fusion;
    b.scratchpadBytes = 8 * 1024;
    b.l0xBytes = 8 * 1024;
    b.l1xBytes = 256 * 1024;
    EXPECT_EQ(a.canonicalHash(), b.canonicalHash());
}

// ---------------------------------------------------------------
// RunResult binary round trip.
// ---------------------------------------------------------------

RunResult
smallRun(SystemKind kind = SystemKind::Fusion)
{
    auto prog =
        core::buildProgram("fft", workloads::Scale::Small);
    SystemConfig cfg;
    cfg.kind = kind;
    return core::runProgram(cfg, *prog);
}

TEST(ResultSerde, RoundTripIsJsonIdentical)
{
    for (auto kind : {SystemKind::Scratch, SystemKind::Fusion,
                      SystemKind::Auto}) {
        RunResult r = smallRun(kind);
        RunResult out;
        std::string err;
        ASSERT_TRUE(core::deserializeResult(
            core::serializeResult(r), out, &err))
            << err;
        EXPECT_EQ(r.toJson(), out.toJson());
        // The perf block rides along bit-exactly, so warm --json
        // reports (which include perf) replay byte-identically.
        EXPECT_EQ(r.toJson(true), out.toJson(true));
    }
}

TEST(ResultSerde, CorruptImagesAreRejected)
{
    RunResult r = smallRun();
    const std::string image = core::serializeResult(r);
    RunResult out;
    EXPECT_FALSE(core::deserializeResult("", out));
    EXPECT_FALSE(core::deserializeResult(
        image.substr(0, image.size() / 2), out));
    EXPECT_FALSE(core::deserializeResult(image + "x", out));
    std::string bad = image;
    bad[bad.size() / 2] =
        static_cast<char>(bad[bad.size() / 2] ^ 0x10);
    EXPECT_FALSE(core::deserializeResult(bad, out));
}

// ---------------------------------------------------------------
// ResultCache disk behavior.
// ---------------------------------------------------------------

TEST(ResultCache, StoreLookupHitMissAndTouch)
{
    TempDir dir("rescache");
    ResultCache cache(dir.str());
    const CacheKey key{0x1234, 0x5678};
    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_EQ(cache.stats().misses, 1u);
    RunResult r = smallRun();
    cache.store(key, r);
    EXPECT_EQ(cache.stats().stores, 1u);
    auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->toJson(true), r.toJson(true));
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ResultCache, CorruptEntryIsAMissAndIsDeleted)
{
    TempDir dir("rescorrupt");
    ResultCache cache(dir.str());
    const CacheKey key{1, 2};
    cache.store(key, smallRun());
    const std::string p = cache.path(key);
    ASSERT_TRUE(fs::exists(p));
    {
        std::ofstream f(p, std::ios::binary | std::ios::trunc);
        f << "not a result";
    }
    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_EQ(cache.stats().corrupt, 1u);
    EXPECT_FALSE(fs::exists(p)) << "corrupt entry not removed";
}

TEST(ResultCache, FailedResultsAreNeverStored)
{
    TempDir dir("resfail");
    ResultCache cache(dir.str());
    RunResult r = smallRun();
    guard::SimError e;
    e.category = guard::ErrorCategory::Internal;
    e.component = "test";
    r.error = std::move(e);
    cache.store({9, 9}, r);
    EXPECT_EQ(cache.stats().stores, 0u);
    EXPECT_FALSE(cache.lookup({9, 9}).has_value());
}

TEST(ResultCache, ByteCapEvictsOldestFirst)
{
    TempDir dir("resevict");
    RunResult r = smallRun();
    const std::uint64_t entry =
        core::serializeResult(r).size();
    // Room for ~2 entries; storing 4 must evict.
    ResultCache cache(dir.str(), 2 * entry + entry / 2);
    for (std::uint64_t i = 0; i < 4; ++i)
        cache.store({i, i}, r);
    EXPECT_GT(cache.stats().evictions, 0u);
    std::uint64_t total = 0;
    for (const auto &ent :
         fs::recursive_directory_iterator(dir.str()))
        if (ent.is_regular_file())
            total += ent.file_size();
    EXPECT_LE(total, cache.maxBytes());
    // The newest entry must have survived.
    EXPECT_TRUE(cache.lookup({3, 3}).has_value());
}

// ---------------------------------------------------------------
// Sweep integration.
// ---------------------------------------------------------------

std::vector<SweepJob>
smallJobs()
{
    std::vector<SweepJob> jobs;
    for (auto kind : {SystemKind::Scratch, SystemKind::Shared,
                      SystemKind::Fusion}) {
        SweepJob j;
        j.cfg.kind = kind;
        j.workload = "adpcm";
        j.scale = workloads::Scale::Small;
        j.tag = core::systemKindShortName(kind);
        jobs.push_back(std::move(j));
    }
    return jobs;
}

TEST(SweepCache, ColdThenWarmIsByteIdentical)
{
    TempDir dir("sweepcache");
    ResultCache cache(dir.str());
    auto jobs = smallJobs();

    SweepCacheStats cold, warm;
    SweepOptions so;
    so.jobs = 2;
    so.cache = &cache;
    so.cacheStats = &cold;
    auto r1 = runSweep(jobs, so);
    EXPECT_EQ(cold.misses, jobs.size());
    EXPECT_EQ(cold.hits, 0u);

    so.cacheStats = &warm;
    auto r2 = runSweep(jobs, so);
    EXPECT_EQ(warm.hits, jobs.size());
    EXPECT_EQ(warm.misses, 0u);
    EXPECT_EQ(reportJson("t", jobs, r1), reportJson("t", jobs, r2));
    // And both match a cache-free sweep: the cache may never change
    // what a sweep returns, only how fast it returns it.
    auto r3 = runSweep(jobs, {});
    EXPECT_EQ(reportJson("t", jobs, r1), reportJson("t", jobs, r3));
}

TEST(SweepCache, IdenticalInFlightJobsAreDeduplicated)
{
    TempDir dir("sweepdedup");
    ResultCache cache(dir.str());
    // Four byte-identical jobs: one simulates, three share it.
    std::vector<SweepJob> jobs(4, smallJobs()[0]);
    SweepCacheStats stats;
    SweepOptions so;
    so.jobs = 4;
    so.cache = &cache;
    so.cacheStats = &stats;
    auto results = runSweep(jobs, so);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.deduped, 3u);
    for (std::size_t i = 1; i < results.size(); ++i)
        EXPECT_EQ(results[0].toJson(), results[i].toJson());
}

TEST(SweepCache, InstrumentedJobsBypassTheCache)
{
    TempDir dir("sweepbypass");
    ResultCache cache(dir.str());
    auto jobs = smallJobs();
    jobs[0].cfg.obs.trace = true; // telemetry => not cacheable
    jobs[1].cfg.guard.fault.kind =
        guard::FaultKind::DelayGrant; // armed fault => not cacheable
    jobs[1].cfg.guard.fault.delay = 8;
    SweepCacheStats stats;
    SweepOptions so;
    so.cache = &cache;
    so.cacheStats = &stats;
    (void)runSweep(jobs, so);
    // Only the untouched third job participates.
    EXPECT_EQ(stats.misses + stats.hits, 1u);
    (void)runSweep(jobs, so);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 0u);
}

TEST(SweepCache, LazyTransformMatchesEagerCopy)
{
    auto base = std::make_shared<const trace::Program>(
        *core::buildProgram("adpcm", workloads::Scale::Small));

    // Eager: mutate a copy up front, attach it to the job.
    auto eager = std::make_shared<trace::Program>(*base);
    for (auto &f : eager->functions)
        f.leaseTime *= 2;
    SweepJob je;
    je.workload = "adpcm";
    je.scale = workloads::Scale::Small;
    je.prog = eager;

    // Lazy: attach the base and express the mutation as a
    // transform; the engine applies it inside the worker.
    SweepJob jl = je;
    jl.prog = base;
    jl.transform = [](trace::Program &p) {
        for (auto &f : p.functions)
            f.leaseTime *= 2;
    };
    jl.transformId = fnv1a("test/lease-x2");

    auto re = runSweep({je}, {});
    auto rl = runSweep({jl}, {});
    EXPECT_EQ(re[0].toJson(), rl[0].toJson());

    // Distinct transforms on the same base must key distinct cache
    // entries: warm both and expect two independent hits.
    SweepJob j2 = jl;
    j2.transform = [](trace::Program &p) {
        for (auto &f : p.functions)
            f.leaseTime *= 4;
    };
    j2.transformId = fnv1a("test/lease-x4");
    TempDir dir("sweeptransform");
    ResultCache cache(dir.str());
    SweepCacheStats stats;
    SweepOptions so;
    so.cache = &cache;
    so.cacheStats = &stats;
    (void)runSweep({jl, j2}, so);
    EXPECT_EQ(stats.misses, 2u);
    (void)runSweep({jl, j2}, so);
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.deduped, 0u);
}

} // namespace
} // namespace fusion::sweep
