/**
 * @file
 * Tests for the conventional intra-tile MESI alternative
 * (FUSION-MESI): protocol state machine at the tile directory and
 * end-to-end equivalence of results with the ACC tile.
 */

#include <gtest/gtest.h>

#include "accel/tile_mesi.hh"
#include "core/runner.hh"
#include "test_util.hh"

namespace fusion
{
namespace
{

struct MesiTileRig : test::HostRig
{
    vm::PageTable pt;
    std::unique_ptr<accel::MesiTile> tile;

    MesiTileRig()
    {
        tile = std::make_unique<accel::MesiTile>(
            ctx, 2, 4096, 4, 64 * 1024, 8, 16, llc, pt);
        pt.ensureMappedRange(1, 0x10000000, 1 << 20);
        tile->l0x(0).setPid(1);
        tile->l0x(1).setPid(1);
    }

    void
    accessSync(AccelId a, Addr va, bool is_write)
    {
        bool done = false;
        tile->l0x(a).access(va, 8, is_write, [&] { done = true; });
        while (!done && ctx.eq.step()) {
        }
        EXPECT_TRUE(done);
    }
};

TEST(TileMesi, MissThenHitNoLeaseExpiry)
{
    MesiTileRig r;
    r.accessSync(0, 0x10000000, false);
    EXPECT_EQ(r.tile->l0x(0).misses(), 1u);
    // Unlike ACC, the copy never self-invalidates: still a hit far
    // in the future.
    r.ctx.eq.schedule(r.ctx.now() + 1000000, [] {});
    r.ctx.eq.run();
    r.accessSync(0, 0x10000000, false);
    EXPECT_EQ(r.tile->l0x(0).hits(), 1u);
    EXPECT_EQ(r.tile->l0x(0).misses(), 1u);
}

TEST(TileMesi, SecondReaderDowngradesOwner)
{
    MesiTileRig r;
    r.accessSync(0, 0x10000000, true); // M in L0X-0
    r.accessSync(1, 0x10000000, false);
    // The conventional protocol PROBED the owner (ACC never does).
    EXPECT_EQ(r.tile->l0x(0).probes(), 1u);
    // Both can now read without further traffic.
    auto msgs = r.tile->l1x().probesSent();
    r.accessSync(0, 0x10000000, false);
    r.accessSync(1, 0x10000000, false);
    EXPECT_EQ(r.tile->l1x().probesSent(), msgs);
}

TEST(TileMesi, WriterInvalidatesSharers)
{
    MesiTileRig r;
    r.accessSync(0, 0x10000000, false);
    r.accessSync(1, 0x10000000, false); // both S
    r.accessSync(0, 0x10000000, true);  // upgrade: invalidate 1
    EXPECT_GE(r.tile->l0x(1).probes(), 1u);
    // L0X-1's next read misses again (it was invalidated).
    auto misses = r.tile->l0x(1).misses();
    r.accessSync(1, 0x10000000, false);
    EXPECT_EQ(r.tile->l0x(1).misses(), misses + 1);
}

TEST(TileMesi, PingPongCostsProbesEveryRound)
{
    MesiTileRig r;
    for (int round = 0; round < 4; ++round) {
        r.accessSync(0, 0x10000000, true);
        r.accessSync(1, 0x10000000, true);
    }
    // Every ownership handoff probed the previous owner: the
    // invalidation traffic ACC's leases avoid.
    EXPECT_GE(r.tile->l1x().probesSent(), 7u);
}

TEST(TileMesi, HostDemandProbesTheL0xs)
{
    MesiTileRig r;
    interconnect::Link host_link(
        r.ctx, interconnect::LinkParams{
                   "hostl1_l2", energy::LinkClass::HostL1ToL2, 2,
                   "t.h", "t.h"});
    host::HostL1 host_l1(r.ctx, host::HostL1Params{}, r.llc,
                         &host_link);
    r.accessSync(0, 0x10000000, true); // dirty in tile
    Addr pa = r.pt.translate(1, 0x10000000);
    bool done = false;
    host_l1.access(pa, true, [&] { done = true; });
    r.ctx.eq.run();
    EXPECT_TRUE(done);
    // The host demand reached into the L0X (ACC answers from the
    // L1X's GTIME instead).
    EXPECT_GE(r.tile->l0x(0).probes(), 1u);
    EXPECT_TRUE(r.llc.tags().find(pa)->dirty);
}

TEST(TileMesi, EndToEndAllWorkloads)
{
    for (const auto &name : workloads::workloadNames()) {
        trace::Program p =
            *core::buildProgram(name, workloads::Scale::Small);
        core::RunResult r = core::runProgram(
            core::SystemConfig::preset(core::SystemConfig::Preset::Paper, 
                core::SystemKind::FusionMesi),
            p);
        EXPECT_GT(r.accelCycles, 0u) << name;
        EXPECT_EQ(r.funcCycles.size(), p.functions.size()) << name;
        EXPECT_GT(r.l0xFills, 0u) << name;
        EXPECT_EQ(r.axTlbLookups, r.l1xMisses) << name;
    }
}

TEST(TileMesi, OverlapAmplifiesMesiTraffic)
{
    // Under concurrency, write sharing ping-pongs between L0Xs in
    // MESI while ACC serializes at the L1X without probes.
    trace::Program p =
        *core::buildProgram("disparity", workloads::Scale::Small);
    auto run = [&](core::SystemKind k, bool overlap) {
        auto cfg = core::SystemConfig::preset(core::SystemConfig::Preset::Paper, k);
        cfg.overlapInvocations = overlap;
        return core::runProgram(cfg, p);
    };
    core::RunResult serial =
        run(core::SystemKind::FusionMesi, false);
    core::RunResult overlap =
        run(core::SystemKind::FusionMesi, true);
    EXPECT_LE(overlap.accelCycles, serial.accelCycles);
    EXPECT_GT(overlap.accelCycles, 0u);
}

TEST(TileMesi, DeterministicRuns)
{
    trace::Program p =
        *core::buildProgram("adpcm", workloads::Scale::Small);
    auto cfg = core::SystemConfig::preset(core::SystemConfig::Preset::Paper, 
        core::SystemKind::FusionMesi);
    core::RunResult a = core::runProgram(cfg, p);
    core::RunResult b = core::runProgram(cfg, p);
    EXPECT_EQ(a.accelCycles, b.accelCycles);
    EXPECT_DOUBLE_EQ(a.totalPj(), b.totalPj());
}

} // namespace
} // namespace fusion
