/**
 * @file
 * Unit tests for the scratchpad RAM model.
 */

#include <gtest/gtest.h>

#include "mem/scratchpad.hh"

namespace fusion::mem
{
namespace
{

TEST(Scratchpad, SingleCycleAt4K)
{
    SimContext ctx;
    Scratchpad s(ctx, 4096, "spm");
    EXPECT_EQ(s.latency(), 1u);
    EXPECT_EQ(s.capacityLines(), 64u);
}

TEST(Scratchpad, CountsAccesses)
{
    SimContext ctx;
    Scratchpad s(ctx, 4096, "spm");
    s.access(false);
    s.access(false);
    s.access(true);
    EXPECT_EQ(s.reads(), 2u);
    EXPECT_EQ(s.writes(), 1u);
}

TEST(Scratchpad, WordAccessCheaperThanDmaLine)
{
    SimContext ctx;
    Scratchpad s(ctx, 4096, "spm");
    s.access(false);
    double word_pj = ctx.energy.total(energy::comp::kScratchpad);
    ctx.energy.reset();
    s.dmaLineAccess(true);
    double line_pj = ctx.energy.total(energy::comp::kScratchpad);
    EXPECT_LT(word_pj, line_pj);
}

TEST(Scratchpad, EightKIsStillFastButCostlier)
{
    SimContext c1, c2;
    Scratchpad small(c1, 4096, "spm");
    Scratchpad large(c2, 8192, "spm");
    small.access(false);
    large.access(false);
    EXPECT_LT(c1.energy.grandTotal(), c2.energy.grandTotal());
}

} // namespace
} // namespace fusion::mem
