/**
 * @file
 * Directory MESI protocol tests at the LLC, using scripted fake
 * agents to verify the 3-hop flows, invalidation sets, recalls and
 * DMA coherence.
 */

#include <gtest/gtest.h>

#include <vector>

#include "test_util.hh"

namespace fusion
{
namespace
{

using coherence::CoherenceReq;
using coherence::FwdKind;

/** Scripted coherent agent: records forwarded demands. */
class FakeAgent : public coherence::CoherentAgent
{
  public:
    explicit FakeAgent(std::string name) : _name(std::move(name)) {}

    struct Fwd
    {
        Addr pa;
        FwdKind kind;
    };

    void
    handleFwd(Addr pa, FwdKind kind, FwdDone done) override
    {
        fwds.push_back({pa, kind});
        done(respondDirty, kind == FwdKind::FwdGetS && retainOnGetS);
    }

    const std::string &name() const override { return _name; }

    std::vector<Fwd> fwds;
    bool respondDirty = false;
    bool retainOnGetS = true;

  private:
    std::string _name;
};

struct MesiRig : test::HostRig
{
    interconnect::Link linkA, linkB;
    FakeAgent agentA{"A"}, agentB{"B"};
    int idA, idB;

    MesiRig()
        : linkA(ctx,
                interconnect::LinkParams{
                    "linkA", energy::LinkClass::HostL1ToL2, 2,
                    "test.a", "test.a"}),
          linkB(ctx,
                interconnect::LinkParams{
                    "linkB", energy::LinkClass::L1xToL2, 3,
                    "test.b", "test.b"})
    {
        idA = llc.registerAgent(&agentA, &linkA, 0);
        idB = llc.registerAgent(&agentB, &linkB, 4);
    }

    host::LlcResponse
    requestSync(int agent, Addr pa, CoherenceReq kind)
    {
        host::LlcResponse resp;
        bool done = false;
        llc.request(agent, pa, kind,
                    [&](const host::LlcResponse &r) {
                        resp = r;
                        done = true;
                    });
        ctx.eq.run();
        EXPECT_TRUE(done);
        return resp;
    }
};

TEST(LlcMesi, FirstGetSGrantsExclusive)
{
    MesiRig r;
    auto resp = r.requestSync(r.idA, 0x1000, CoherenceReq::GetS);
    EXPECT_TRUE(resp.exclusive);
    EXPECT_TRUE(r.llc.isOwner(r.idA, 0x1000));
}

TEST(LlcMesi, SecondGetSDowngradesOwnerToSharer)
{
    MesiRig r;
    r.requestSync(r.idA, 0x1000, CoherenceReq::GetS);
    auto resp = r.requestSync(r.idB, 0x1000, CoherenceReq::GetS);
    EXPECT_FALSE(resp.exclusive);
    ASSERT_EQ(r.agentA.fwds.size(), 1u);
    EXPECT_EQ(r.agentA.fwds[0].kind, FwdKind::FwdGetS);
    EXPECT_TRUE(r.llc.isSharer(r.idA, 0x1000));
    EXPECT_TRUE(r.llc.isSharer(r.idB, 0x1000));
    EXPECT_FALSE(r.llc.isOwner(r.idA, 0x1000));
}

TEST(LlcMesi, GetSFromRelinquishingOwnerLeavesNoSharer)
{
    MesiRig r;
    r.agentA.retainOnGetS = false; // accelerator-tile behaviour
    r.requestSync(r.idA, 0x1000, CoherenceReq::GetS);
    r.requestSync(r.idB, 0x1000, CoherenceReq::GetS);
    EXPECT_FALSE(r.llc.isSharer(r.idA, 0x1000));
    EXPECT_TRUE(r.llc.isSharer(r.idB, 0x1000));
}

TEST(LlcMesi, GetXInvalidatesOwnerAndSharers)
{
    MesiRig r;
    r.requestSync(r.idA, 0x1000, CoherenceReq::GetS);
    r.requestSync(r.idB, 0x1000, CoherenceReq::GetS); // both share
    r.agentA.fwds.clear();
    r.agentB.fwds.clear();
    auto resp = r.requestSync(r.idB, 0x1000, CoherenceReq::Upgrade);
    EXPECT_TRUE(resp.exclusive);
    ASSERT_EQ(r.agentA.fwds.size(), 1u);
    EXPECT_EQ(r.agentA.fwds[0].kind, FwdKind::Inv);
    EXPECT_TRUE(r.agentB.fwds.empty());
    EXPECT_TRUE(r.llc.isOwner(r.idB, 0x1000));
    EXPECT_FALSE(r.llc.isSharer(r.idA, 0x1000));
}

TEST(LlcMesi, GetXForwardsToDirtyOwner3Hop)
{
    MesiRig r;
    r.requestSync(r.idA, 0x1000, CoherenceReq::GetX);
    r.agentA.respondDirty = true;
    auto resp = r.requestSync(r.idB, 0x1000, CoherenceReq::GetX);
    EXPECT_TRUE(resp.exclusive);
    ASSERT_EQ(r.agentA.fwds.size(), 1u);
    EXPECT_EQ(r.agentA.fwds[0].kind, FwdKind::FwdGetX);
    EXPECT_TRUE(r.llc.isOwner(r.idB, 0x1000));
    // Dirty data updated the LLC frame.
    EXPECT_TRUE(r.llc.tags().find(0x1000)->dirty);
}

TEST(LlcMesi, WritebackClearsOwnership)
{
    MesiRig r;
    r.requestSync(r.idA, 0x1000, CoherenceReq::GetX);
    r.llc.writebackData(r.idA, 0x1000);
    r.drain();
    EXPECT_FALSE(r.llc.isOwner(r.idA, 0x1000));
    EXPECT_TRUE(r.llc.tags().find(0x1000)->dirty);
    // After the writeback, a GetS by B forwards nothing to A.
    r.requestSync(r.idB, 0x1000, CoherenceReq::GetS);
    EXPECT_TRUE(r.agentA.fwds.empty());
}

TEST(LlcMesi, EvictNoticeRemovesSharer)
{
    MesiRig r;
    r.requestSync(r.idA, 0x1000, CoherenceReq::GetS);
    r.requestSync(r.idB, 0x1000, CoherenceReq::GetS);
    r.llc.evictNotice(r.idA, 0x1000);
    r.drain();
    EXPECT_FALSE(r.llc.isSharer(r.idA, 0x1000));
    // B upgrading now needs no invalidation messages.
    r.agentA.fwds.clear();
    r.requestSync(r.idB, 0x1000, CoherenceReq::Upgrade);
    EXPECT_TRUE(r.agentA.fwds.empty());
}

TEST(LlcMesi, ConflictingRequestsSerializePerLine)
{
    MesiRig r;
    int completed = 0;
    r.llc.request(r.idA, 0x1000, CoherenceReq::GetX,
                  [&](const host::LlcResponse &) { ++completed; });
    r.llc.request(r.idB, 0x1000, CoherenceReq::GetX,
                  [&](const host::LlcResponse &) {
                      ++completed;
                      // B is second: A must have been invalidated.
                      EXPECT_EQ(r.agentA.fwds.size(), 1u);
                  });
    r.drain();
    EXPECT_EQ(completed, 2);
    EXPECT_TRUE(r.llc.isOwner(r.idB, 0x1000));
}

TEST(LlcMesi, InclusiveRecallOnLlcEviction)
{
    // A tiny LLC forces a recall: the victim's remote copy must be
    // invalidated before the frame is reused.
    host::LlcParams lp;
    lp.capacityBytes = 2 * kLineBytes;
    lp.assoc = 1;
    lp.nucaBanks = 1;
    test::HostRig base{lp};
    interconnect::Link link(
        base.ctx, interconnect::LinkParams{
                      "l", energy::LinkClass::HostL1ToL2, 2,
                      "test.l", "test.l"});
    FakeAgent agent("A");
    int id = base.llc.registerAgent(&agent, &link, 0);

    auto sync = [&](Addr pa) {
        bool done = false;
        base.llc.request(id, pa, CoherenceReq::GetX,
                         [&](const host::LlcResponse &) {
                             done = true;
                         });
        base.ctx.eq.run();
        EXPECT_TRUE(done);
    };
    // Two lines mapping to set 0 of a 2-set direct-mapped LLC.
    sync(0x0);
    sync(2 * kLineBytes);  // set 0 again -> recalls 0x0
    EXPECT_EQ(agent.fwds.size(), 1u);
    EXPECT_EQ(agent.fwds[0].pa, 0x0u);
    EXPECT_EQ(base.llc.tags().find(0x0), nullptr);
}

TEST(LlcMesi, DmaReadSnoopsDirtyOwner)
{
    MesiRig r;
    r.requestSync(r.idA, 0x1000, CoherenceReq::GetX);
    r.agentA.respondDirty = true;
    bool done = false;
    r.llc.dmaRead(0x1000, &r.linkB, [&] { done = true; });
    r.drain();
    EXPECT_TRUE(done);
    ASSERT_EQ(r.agentA.fwds.size(), 1u);
    EXPECT_EQ(r.agentA.fwds[0].kind, FwdKind::FwdGetS);
    // Owner keeps a shared copy; DMA is not registered as a sharer.
    EXPECT_TRUE(r.llc.isSharer(r.idA, 0x1000));
}

TEST(LlcMesi, DmaWriteInvalidatesAllCopies)
{
    MesiRig r;
    r.requestSync(r.idA, 0x1000, CoherenceReq::GetS);
    r.requestSync(r.idB, 0x1000, CoherenceReq::GetS);
    bool done = false;
    r.llc.dmaWrite(0x1000, &r.linkB, [&] { done = true; });
    r.drain();
    EXPECT_TRUE(done);
    EXPECT_FALSE(r.llc.isSharer(r.idA, 0x1000));
    EXPECT_FALSE(r.llc.isSharer(r.idB, 0x1000));
    EXPECT_TRUE(r.llc.tags().find(0x1000)->dirty);
}

TEST(LlcMesi, FwdsToAgentCounter)
{
    MesiRig r;
    r.requestSync(r.idB, 0x1000, CoherenceReq::GetX);
    r.requestSync(r.idA, 0x1000, CoherenceReq::GetX);
    r.requestSync(r.idB, 0x2000, CoherenceReq::GetX);
    EXPECT_EQ(r.llc.fwdsToAgent(r.idB), 1u);
    EXPECT_EQ(r.llc.fwdsToAgent(r.idA), 0u);
}

} // namespace
} // namespace fusion
