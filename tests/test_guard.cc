/**
 * @file
 * Tests for the simulation hardening layer: watchdog liveness
 * checks, invariant checkers, typed SimError propagation, and the
 * fault-injection hooks that prove the guards actually fire.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "core/runner.hh"
#include "sim/event_queue.hh"
#include "sim/guard/registry.hh"
#include "sim/guard/sim_error.hh"
#include "sim/guard/watchdog.hh"
#include "sim/logging.hh"

namespace fusion
{
namespace
{

using core::RunResult;
using core::SystemConfig;
using core::SystemKind;

trace::Program
smallProgram()
{
    return *core::buildProgram("adpcm", workloads::Scale::Small);
}

/** Self-rescheduling no-op chain: one event per tick, no progress. */
void
scheduleIdleChain(EventQueue &eq, Tick until)
{
    eq.scheduleIn(1, [&eq, until] {
        if (eq.now() < until)
            scheduleIdleChain(eq, until);
    });
}

guard::SimError
runGuardedLoop(EventQueue &eq, guard::GuardRegistry &reg)
{
    guard::Watchdog wd(reg, eq);
    try {
        while (!eq.empty()) {
            wd.beforeStep();
            eq.step();
        }
    } catch (const guard::SimErrorException &ex) {
        return ex.error();
    }
    ADD_FAILURE() << "watchdog did not trip";
    return {};
}

// ---------------------------------------------------------------
// Watchdog unit tests (raw event queue, no System).
// ---------------------------------------------------------------

TEST(WatchdogUnit, NoProgressTripsWithOutstandingWork)
{
    EventQueue eq;
    guard::GuardRegistry reg;
    guard::GuardConfig cfg;
    cfg.noProgressTicks = 10;
    reg.configure(cfg);
    reg.registerSnapshot("fake.mshr", [] {
        guard::ComponentState s;
        s.outstanding = 3;
        s.detail = "stuck";
        return s;
    });
    scheduleIdleChain(eq, 100);

    guard::SimError e = runGuardedLoop(eq, reg);
    EXPECT_EQ(e.category, guard::ErrorCategory::NoProgress);
    EXPECT_EQ(e.component, "watchdog");
    EXPECT_GT(e.tick, 10u);
    EXPECT_NE(e.diagnostic.find("fake.mshr"), std::string::npos);
    EXPECT_NE(e.diagnostic.find("outstanding=3"), std::string::npos);
    EXPECT_NE(e.diagnostic.find("stuck"), std::string::npos);
}

TEST(WatchdogUnit, NoProgressIgnoredWithoutOutstandingWork)
{
    EventQueue eq;
    guard::GuardRegistry reg;
    guard::GuardConfig cfg;
    cfg.noProgressTicks = 10;
    reg.configure(cfg);
    // No snapshot provider -> outstandingTotal() == 0: an idle chain
    // is not a hang, just a quiet simulation.
    scheduleIdleChain(eq, 100);

    guard::Watchdog wd(reg, eq);
    EXPECT_NO_THROW({
        while (!eq.empty()) {
            wd.beforeStep();
            eq.step();
        }
    });
}

TEST(WatchdogUnit, CycleBudgetTrips)
{
    EventQueue eq;
    guard::GuardRegistry reg;
    guard::GuardConfig cfg;
    cfg.maxCycles = 50;
    reg.configure(cfg);
    scheduleIdleChain(eq, 100);

    guard::SimError e = runGuardedLoop(eq, reg);
    EXPECT_EQ(e.category, guard::ErrorCategory::CycleBudget);
    EXPECT_NE(e.message.find("cycle budget"), std::string::npos);
    EXPECT_LE(e.tick, 50u);
    EXPECT_NE(e.diagnostic.find("event queue:"), std::string::npos);
}

TEST(WatchdogUnit, WallClockBudgetTrips)
{
    EventQueue eq;
    guard::GuardRegistry reg;
    guard::GuardConfig cfg;
    cfg.maxWallMs = 1;
    reg.configure(cfg);
    scheduleIdleChain(eq, 5000);

    guard::Watchdog wd(reg, eq);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    guard::SimError e;
    try {
        while (!eq.empty()) {
            wd.beforeStep();
            eq.step();
        }
        FAIL() << "wall-clock watchdog did not trip";
    } catch (const guard::SimErrorException &ex) {
        e = ex.error();
    }
    EXPECT_EQ(e.category, guard::ErrorCategory::WallClock);
}

TEST(WatchdogUnit, PeriodicInvariantViolationTrips)
{
    EventQueue eq;
    guard::GuardRegistry reg;
    guard::GuardConfig cfg;
    cfg.invariantPeriod = 4;
    reg.configure(cfg);
    reg.registerInvariant(
        "fake.checker",
        [&eq](const guard::InvariantContext &ic,
              std::vector<std::string> &out) {
            if (ic.now >= 20)
                out.push_back("went bad");
        });
    scheduleIdleChain(eq, 100);

    guard::SimError e = runGuardedLoop(eq, reg);
    EXPECT_EQ(e.category, guard::ErrorCategory::Invariant);
    EXPECT_EQ(e.component, "invariant-checker");
    EXPECT_NE(e.diagnostic.find("fake.checker: went bad"),
              std::string::npos);
}

TEST(WatchdogUnit, FaultPlanFiresExactlyOnce)
{
    guard::GuardRegistry reg;
    guard::GuardConfig cfg;
    cfg.fault.kind = guard::FaultKind::LeakMshr;
    cfg.fault.triggerAfter = 2;
    reg.configure(cfg);

    // Wrong kind never fires and does not consume opportunities.
    EXPECT_FALSE(reg.fireFault(guard::FaultKind::DropWriteback));
    EXPECT_FALSE(reg.fireFault(guard::FaultKind::LeakMshr)); // #0
    EXPECT_FALSE(reg.fireFault(guard::FaultKind::LeakMshr)); // #1
    EXPECT_TRUE(reg.fireFault(guard::FaultKind::LeakMshr));  // #2
    EXPECT_FALSE(reg.fireFault(guard::FaultKind::LeakMshr)); // spent
}

// ---------------------------------------------------------------
// fusion_panic routing (satellite: assertions become SimErrors).
// ---------------------------------------------------------------

TEST(PanicRouting, ThrowsTypedErrorUnderTickScope)
{
    EventQueue eq;
    eq.scheduleIn(42, [] {});
    eq.step();
    guard::TickScope scope(eq);
    try {
        fusion_panic("broken ", 123);
        FAIL() << "panic did not throw";
    } catch (const guard::SimErrorException &ex) {
        EXPECT_EQ(ex.error().category,
                  guard::ErrorCategory::Assertion);
        EXPECT_NE(ex.error().message.find("broken 123"),
                  std::string::npos);
        EXPECT_EQ(ex.error().tick, 42u);
        EXPECT_NE(std::string(ex.what()).find("assertion"),
                  std::string::npos);
    }
}

TEST(PanicRouting, AbortsWithoutTickScope)
{
    ASSERT_FALSE(guard::TickScope::active());
    EXPECT_DEATH(fusion_panic("still fatal"), "still fatal");
}

// ---------------------------------------------------------------
// Whole-system behaviour.
// ---------------------------------------------------------------

guard::GuardConfig
fullChecks()
{
    guard::GuardConfig g;
    g.maxCycles = 1ull << 40;
    g.noProgressTicks = 1u << 20;
    g.invariantPeriod = 64;
    g.invariantsAtEnd = true;
    return g;
}

class GuardedSystems : public ::testing::TestWithParam<SystemKind>
{
};

TEST_P(GuardedSystems, HealthyRunUnchangedByGuards)
{
    trace::Program p = smallProgram();
    SystemConfig off = SystemConfig::preset(SystemConfig::Preset::Paper, GetParam());
    SystemConfig on = off;
    on.guard = fullChecks();

    RunResult base = core::runProgram(off, p);
    RunResult guarded = core::runProgram(on, p);
    ASSERT_FALSE(guarded.failed())
        << guarded.error->toJson();
    // Guards observe; they never perturb: outputs byte-identical.
    EXPECT_EQ(base.toJson(), guarded.toJson());
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, GuardedSystems,
    ::testing::Values(SystemKind::Scratch, SystemKind::Shared,
                      SystemKind::Fusion, SystemKind::FusionDx,
                      SystemKind::FusionMesi),
    [](const auto &info) {
        std::string n = core::systemKindName(info.param);
        std::string out;
        for (char c : n)
            if (c != '-')
                out += c;
        return out;
    });

TEST(GuardedSystems, CycleBudgetRecordedNotAborted)
{
    trace::Program p = smallProgram();
    SystemConfig cfg = SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion);
    cfg.guard.maxCycles = 200;

    RunResult r = core::runProgram(cfg, p);
    ASSERT_TRUE(r.failed());
    EXPECT_EQ(r.error->category, guard::ErrorCategory::CycleBudget);
    EXPECT_EQ(r.error->component, "watchdog");
    EXPECT_LE(r.error->tick, 200u);
    EXPECT_NE(r.error->diagnostic.find("event queue:"),
              std::string::npos);
    EXPECT_EQ(r.workload, "adpcm");
    EXPECT_EQ(r.kind, SystemKind::Fusion);
    // The error also lands in the JSON report.
    EXPECT_NE(r.toJson().find("\"category\":\"cycle-budget\""),
              std::string::npos);
}

// ---------------------------------------------------------------
// Fault injection through the real protocol stack.
// ---------------------------------------------------------------

TEST(FaultInjection, LeakedMshrIsCaughtAsDeadlock)
{
    trace::Program p = smallProgram();
    SystemConfig cfg = SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion);
    cfg.guard.fault.kind = guard::FaultKind::LeakMshr;

    RunResult r = core::runProgram(cfg, p);
    ASSERT_TRUE(r.failed());
    EXPECT_EQ(r.error->category, guard::ErrorCategory::Deadlock);
    // The diagnostic names the component still holding work and the
    // leaked line address.
    EXPECT_NE(r.error->diagnostic.find("l0x"), std::string::npos);
    EXPECT_NE(r.error->diagnostic.find("mshr_lines=[0x"),
              std::string::npos);
}

TEST(FaultInjection, CorruptLeaseTripsAccInvariant)
{
    trace::Program p = smallProgram();
    SystemConfig cfg = SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion);
    cfg.guard.fault.kind = guard::FaultKind::CorruptLease;
    cfg.guard.fault.delay = 1u << 20;
    cfg.guard.invariantPeriod = 1;

    RunResult r = core::runProgram(cfg, p);
    ASSERT_TRUE(r.failed());
    EXPECT_EQ(r.error->category, guard::ErrorCategory::Invariant);
    EXPECT_NE(r.error->message.find("invariant violation"),
              std::string::npos);
    EXPECT_NE(r.error->diagnostic.find("not covered by L1X GTIME"),
              std::string::npos);
}

TEST(FaultInjection, DroppedWritebackIsDetected)
{
    trace::Program p = smallProgram();
    SystemConfig cfg = SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion);
    cfg.guard.fault.kind = guard::FaultKind::DropWriteback;
    cfg.guard.invariantsAtEnd = true;

    RunResult r = core::runProgram(cfg, p);
    ASSERT_TRUE(r.failed());
    // A swallowed writeback either wedges later requesters of the
    // locked line (deadlock / assertion on teardown) or survives to
    // the end-of-sim invariant pass; all are typed failures.
    EXPECT_TRUE(r.error->category ==
                    guard::ErrorCategory::Deadlock ||
                r.error->category ==
                    guard::ErrorCategory::Invariant ||
                r.error->category ==
                    guard::ErrorCategory::Assertion)
        << r.error->toJson();
    EXPECT_FALSE(r.error->diagnostic.empty());
}

TEST(FaultInjection, DelayedGrantIsDeterministic)
{
    trace::Program p = smallProgram();
    SystemConfig cfg = SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion);
    cfg.guard.fault.kind = guard::FaultKind::DelayGrant;
    cfg.guard.fault.delay = 4;
    cfg.guard.fault.triggerAfter = 5;

    RunResult a = core::runProgram(cfg, p);
    RunResult b = core::runProgram(cfg, p);
    ASSERT_FALSE(a.failed());
    EXPECT_EQ(a.toJson(), b.toJson());
    EXPECT_GT(a.totalCycles, 0u);
}

// ---------------------------------------------------------------
// GuardConfig::anyEnabled() regression: an armed fault plan or
// schedule must count as "guard layer in use" (the watchdog, the
// link delivery tracking and the harness instrumentation all key
// off it), even with every liveness/invariant knob off.
// ---------------------------------------------------------------

TEST(GuardConfigUnit, AnyEnabledSeesArmedFaults)
{
    guard::GuardConfig off;
    EXPECT_FALSE(off.anyEnabled());
    EXPECT_FALSE(off.faultArmed());

    guard::GuardConfig legacy;
    legacy.fault.kind = guard::FaultKind::LeakMshr;
    EXPECT_TRUE(legacy.faultArmed());
    EXPECT_TRUE(legacy.anyEnabled());

    guard::GuardConfig sched;
    sched.schedule.arm(guard::FaultKind::DropFlit, 3);
    EXPECT_TRUE(sched.faultArmed());
    EXPECT_TRUE(sched.anyEnabled());
}

// ---------------------------------------------------------------
// Fault-spec parsing (the shared --fault CLI syntax).
// ---------------------------------------------------------------

TEST(FaultSpecUnit, ParsesAndRoundTrips)
{
    guard::ArmedFault f;
    ASSERT_TRUE(guard::parseFaultSpec("drop-flit", f));
    EXPECT_EQ(f.kind, guard::FaultKind::DropFlit);
    EXPECT_EQ(f.triggerAfter, 0u);
    EXPECT_EQ(f.delay, 0u);
    EXPECT_EQ(f.probability, 1.0);

    ASSERT_TRUE(guard::parseFaultSpec("corrupt-dir:4", f));
    EXPECT_EQ(f.kind, guard::FaultKind::CorruptDir);
    EXPECT_EQ(f.triggerAfter, 4u);

    ASSERT_TRUE(guard::parseFaultSpec("dma-stall:2:128", f));
    EXPECT_EQ(f.kind, guard::FaultKind::StallDma);
    EXPECT_EQ(f.triggerAfter, 2u);
    EXPECT_EQ(f.delay, 128u);

    ASSERT_TRUE(guard::parseFaultSpec("dup-flit:1:0:0.5", f));
    EXPECT_EQ(f.kind, guard::FaultKind::DupFlit);
    EXPECT_EQ(f.probability, 0.5);

    // faultSpec() emits what parseFaultSpec() accepts.
    guard::ArmedFault back;
    ASSERT_TRUE(guard::parseFaultSpec(guard::faultSpec(f), back));
    EXPECT_EQ(back.kind, f.kind);
    EXPECT_EQ(back.triggerAfter, f.triggerAfter);
    EXPECT_EQ(back.delay, f.delay);
    EXPECT_EQ(back.probability, f.probability);
}

TEST(FaultSpecUnit, RejectsMalformedSpecs)
{
    guard::ArmedFault f;
    EXPECT_FALSE(guard::parseFaultSpec("", f));
    EXPECT_FALSE(guard::parseFaultSpec("none", f));
    EXPECT_FALSE(guard::parseFaultSpec("unknown-kind", f));
    EXPECT_FALSE(guard::parseFaultSpec("drop-flit:x", f));
    EXPECT_FALSE(guard::parseFaultSpec("drop-flit:1:2:1.5", f));
    EXPECT_FALSE(guard::parseFaultSpec("drop-flit:1:2:0.5:9", f));
}

TEST(FaultSpecUnit, EveryKindHasAStableNameRoundTrip)
{
    for (unsigned k = 1; k < guard::kFaultKindCount; ++k) {
        auto kind = static_cast<guard::FaultKind>(k);
        const char *name = guard::faultKindName(kind);
        ASSERT_STRNE(name, "unknown") << k;
        guard::FaultKind parsed = guard::FaultKind::None;
        ASSERT_TRUE(guard::parseFaultKind(name, parsed)) << name;
        EXPECT_EQ(parsed, kind) << name;
    }
}

// ---------------------------------------------------------------
// FaultSchedule semantics on a raw registry.
// ---------------------------------------------------------------

TEST(FaultScheduleUnit, IndependentKindsFireIndependently)
{
    guard::GuardRegistry reg;
    guard::GuardConfig cfg;
    cfg.schedule.arm(guard::FaultKind::DropFlit, 1)
        .arm(guard::FaultKind::TruncateDma, 0, 16);
    reg.configure(cfg);

    // TruncateDma fires on its first opportunity; DropFlit needs one
    // skipped opportunity first. Neither consumes the other's count.
    EXPECT_TRUE(reg.fireFault(guard::FaultKind::TruncateDma));
    EXPECT_EQ(reg.faultDelay(), 16u);
    EXPECT_FALSE(reg.fireFault(guard::FaultKind::DropFlit)); // #0
    EXPECT_TRUE(reg.fireFault(guard::FaultKind::DropFlit));  // #1
    EXPECT_FALSE(reg.fireFault(guard::FaultKind::DropFlit));
    EXPECT_EQ(reg.faultsFired(), 2u);
    EXPECT_TRUE(reg.firedFaultMask() &
                (1u << static_cast<unsigned>(
                     guard::FaultKind::DropFlit)));
    EXPECT_TRUE(reg.firedFaultMask() &
                (1u << static_cast<unsigned>(
                     guard::FaultKind::TruncateDma)));
}

TEST(FaultScheduleUnit, RepeatedKindFiresOncePerEntry)
{
    guard::GuardRegistry reg;
    guard::GuardConfig cfg;
    cfg.schedule.arm(guard::FaultKind::DropFlit)
        .arm(guard::FaultKind::DropFlit);
    reg.configure(cfg);

    EXPECT_TRUE(reg.fireFault(guard::FaultKind::DropFlit));
    EXPECT_TRUE(reg.fireFault(guard::FaultKind::DropFlit));
    EXPECT_FALSE(reg.fireFault(guard::FaultKind::DropFlit));
    EXPECT_EQ(reg.faultsFired(), 2u);
}

TEST(FaultScheduleUnit, ProbabilisticDrawIsSeedDeterministic)
{
    auto trace = [](std::uint64_t seed) {
        guard::GuardRegistry reg;
        guard::GuardConfig cfg;
        cfg.schedule.seed = seed;
        cfg.schedule.arm(guard::FaultKind::DropFlit, 0, 0, 0.3);
        reg.configure(cfg);
        std::string out;
        for (int i = 0; i < 64; ++i)
            out += reg.fireFault(guard::FaultKind::DropFlit) ? '1'
                                                             : '0';
        return out;
    };
    // Same seed, same draw sequence; the fault fires exactly once.
    std::string a = trace(42);
    EXPECT_EQ(a, trace(42));
    EXPECT_EQ(std::count(a.begin(), a.end(), '1'), 1);
    // A p=0.3 draw should not fire on a different seed at exactly
    // the same opportunity for every seed; spot-check divergence.
    EXPECT_NE(a, trace(43));
}

TEST(FaultScheduleUnit, LegacyPlanAndScheduleCompose)
{
    guard::GuardRegistry reg;
    guard::GuardConfig cfg;
    cfg.fault.kind = guard::FaultKind::LeakMshr; // old single-plan
    cfg.fault.triggerAfter = 1;
    cfg.schedule.arm(guard::FaultKind::DropFlit);
    reg.configure(cfg);

    EXPECT_FALSE(reg.fireFault(guard::FaultKind::LeakMshr));
    EXPECT_TRUE(reg.fireFault(guard::FaultKind::LeakMshr));
    EXPECT_TRUE(reg.fireFault(guard::FaultKind::DropFlit));
    EXPECT_EQ(reg.faultsFired(), 2u);
}

// ---------------------------------------------------------------
// The widened fault surface, end to end: every new kind fires at
// its protocol seam and is caught by a matching checker (or is
// timing-only and must keep the run deterministic).
// ---------------------------------------------------------------

/** Arm @p kind as a one-shot schedule with full checks. */
SystemConfig
faultedConfig(SystemKind system, guard::FaultKind kind,
              std::uint64_t trigger_after = 0, Cycles delay = 0)
{
    SystemConfig cfg = SystemConfig::preset(SystemConfig::Preset::Paper, system);
    cfg.guard = fullChecks();
    cfg.guard.schedule.arm(kind, trigger_after, delay);
    return cfg;
}

TEST(FaultSurface, DroppedFlitIsDetected)
{
    trace::Program p = smallProgram();
    SystemConfig cfg =
        faultedConfig(SystemKind::Fusion, guard::FaultKind::DropFlit,
                      /*trigger_after=*/8);

    RunResult r = core::runProgram(cfg, p);
    ASSERT_TRUE(r.failed());
    EXPECT_EQ(r.faultsFired, 1u);
    // A lost delivery either wedges a waiter (deadlock) or the run
    // limps to the end where the link delivery-conservation
    // invariant counts it.
    EXPECT_TRUE(r.error->category ==
                    guard::ErrorCategory::Deadlock ||
                r.error->category ==
                    guard::ErrorCategory::Invariant)
        << r.error->toJson();
}

TEST(FaultSurface, DuplicatedFlitTripsConservation)
{
    trace::Program p = smallProgram();
    SystemConfig cfg =
        faultedConfig(SystemKind::Fusion, guard::FaultKind::DupFlit,
                      /*trigger_after=*/4);

    RunResult r = core::runProgram(cfg, p);
    ASSERT_TRUE(r.failed());
    EXPECT_EQ(r.faultsFired, 1u);
    EXPECT_EQ(r.error->category, guard::ErrorCategory::Invariant);
    EXPECT_NE(r.error->diagnostic.find("flit"), std::string::npos);
}

TEST(FaultSurface, ReorderedFlitIsTimingOnly)
{
    trace::Program p = smallProgram();
    SystemConfig cfg = faultedConfig(SystemKind::Fusion,
                                     guard::FaultKind::ReorderFlit,
                                     /*trigger_after=*/8,
                                     /*delay=*/32);

    RunResult a = core::runProgram(cfg, p);
    RunResult b = core::runProgram(cfg, p);
    ASSERT_FALSE(a.failed()) << a.error->toJson();
    EXPECT_EQ(a.faultsFired, 1u);
    EXPECT_TRUE(
        guard::faultPerturbsTimingOnly(guard::FaultKind::ReorderFlit));
    EXPECT_EQ(a.toJson(), b.toJson());
}

TEST(FaultSurface, TruncatedDmaTripsLineConservation)
{
    trace::Program p = smallProgram();
    SystemConfig cfg = faultedConfig(SystemKind::Scratch,
                                     guard::FaultKind::TruncateDma,
                                     /*trigger_after=*/2);

    RunResult r = core::runProgram(cfg, p);
    ASSERT_TRUE(r.failed());
    EXPECT_EQ(r.faultsFired, 1u);
    EXPECT_EQ(r.error->category, guard::ErrorCategory::Invariant);
    EXPECT_NE(r.error->diagnostic.find("line transfers"),
              std::string::npos);
}

TEST(FaultSurface, StalledDmaIsTimingOnly)
{
    trace::Program p = smallProgram();
    SystemConfig cfg = faultedConfig(SystemKind::Scratch,
                                     guard::FaultKind::StallDma,
                                     /*trigger_after=*/2,
                                     /*delay=*/512);

    RunResult a = core::runProgram(cfg, p);
    RunResult b = core::runProgram(cfg, p);
    ASSERT_FALSE(a.failed()) << a.error->toJson();
    EXPECT_EQ(a.faultsFired, 1u);
    EXPECT_TRUE(
        guard::faultPerturbsTimingOnly(guard::FaultKind::StallDma));
    EXPECT_EQ(a.toJson(), b.toJson());
}

TEST(FaultSurface, CorruptedDirectoryTripsResidencyInvariant)
{
    trace::Program p = smallProgram();
    SystemConfig cfg = faultedConfig(SystemKind::Fusion,
                                     guard::FaultKind::CorruptDir,
                                     /*trigger_after=*/2);
    cfg.guard.invariantPeriod = 1;

    RunResult r = core::runProgram(cfg, p);
    ASSERT_TRUE(r.failed());
    EXPECT_EQ(r.faultsFired, 1u);
    EXPECT_EQ(r.error->category, guard::ErrorCategory::Invariant);
    // Caught by an agent-side residency checker: a cached copy the
    // directory no longer accounts for.
    EXPECT_NE(r.error->diagnostic.find("directory"),
              std::string::npos);
}

TEST(FaultSurface, StaleHostL1TripsMesiAgreement)
{
    trace::Program p = smallProgram();
    SystemConfig cfg = faultedConfig(SystemKind::Fusion,
                                     guard::FaultKind::StaleHostL1);
    cfg.guard.invariantPeriod = 1;

    RunResult r = core::runProgram(cfg, p);
    ASSERT_TRUE(r.failed());
    EXPECT_EQ(r.faultsFired, 1u);
    EXPECT_EQ(r.error->category, guard::ErrorCategory::Invariant);
    EXPECT_NE(r.error->diagnostic.find("not in directory"),
              std::string::npos);
}

} // namespace
} // namespace fusion
