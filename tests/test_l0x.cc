/**
 * @file
 * L0X private-cache tests: lease-based self-invalidation, write
 * caching with self-downgrade, write-through mode and FUSION-Dx
 * forwarding behaviour.
 */

#include <gtest/gtest.h>

#include "accel/tile.hh"
#include "test_util.hh"

namespace fusion
{
namespace
{

struct L0xRig : test::HostRig
{
    vm::PageTable pt;
    std::unique_ptr<accel::FusionTile> tile;

    explicit L0xRig(bool write_through = false, bool dx = false)
    {
        accel::TileParams p;
        p.numAccels = 2;
        p.writeThrough = write_through;
        p.enableDx = dx;
        tile = std::make_unique<accel::FusionTile>(ctx, p, llc, pt);
        pt.ensureMappedRange(1, 0x10000000, 1 << 20);
        tile->l0x(0).setFunction(500, 1);
        tile->l0x(1).setFunction(500, 1);
    }

    Tick
    accessSync(AccelId a, Addr va, bool is_write)
    {
        bool done = false;
        tile->l0x(a).access(va, 8, is_write, [&] { done = true; });
        // Step minimally: draining the whole queue would run past
        // lease expiries and fire self-downgrades between accesses.
        while (!done && ctx.eq.step()) {
        }
        EXPECT_TRUE(done);
        return ctx.now();
    }
};

TEST(L0x, MissThenHitWithinLease)
{
    L0xRig r;
    r.accessSync(0, 0x10000000, false);
    EXPECT_EQ(r.tile->l0x(0).misses(), 1u);
    r.accessSync(0, 0x10000008, false); // same line
    EXPECT_EQ(r.tile->l0x(0).hits(), 1u);
}

TEST(L0x, SelfInvalidationAfterLeaseExpiry)
{
    L0xRig r;
    r.accessSync(0, 0x10000000, false);
    // Idle past the lease.
    r.ctx.eq.schedule(r.ctx.now() + 2000, [] {});
    r.ctx.eq.run();
    r.accessSync(0, 0x10000000, false);
    // The expired line is a miss: self-invalidation needs no
    // invalidate messages.
    EXPECT_EQ(r.tile->l0x(0).misses(), 2u);
}

TEST(L0x, LeaseRenewalRefetchesData)
{
    L0xRig r;
    r.accessSync(0, 0x10000000, false);
    std::uint64_t data_before = r.tile->tileLink().dataMessages();
    std::uint64_t l1x_miss_before = r.tile->l1x().misses();
    r.ctx.eq.schedule(r.ctx.now() + 2000, [] {});
    r.ctx.eq.run();
    r.accessSync(0, 0x10000000, false); // expired: re-lease
    // Self-invalidation means the renewal must re-fetch the line
    // (another accelerator may have written it meanwhile) — this
    // is exactly the pull-based request/data traffic of Lesson 4.
    EXPECT_EQ(r.tile->tileLink().dataMessages(), data_before + 1);
    // ...but it stays within the tile: no host traffic.
    EXPECT_EQ(r.tile->l1x().misses(), l1x_miss_before);
}

TEST(L0x, WriteCachingCoalescesStoresLocally)
{
    L0xRig r;
    r.accessSync(0, 0x10000000, true);
    std::uint64_t wb_before = r.tile->l0x(0).writebacksSent();
    // 16 more stores to the same line within the epoch.
    for (int i = 1; i < 16; ++i)
        r.accessSync(0, 0x10000000 + 4u * i, true);
    EXPECT_EQ(r.tile->l0x(0).hits(), 15u);
    EXPECT_EQ(r.tile->l0x(0).writebacksSent(), wb_before);
}

TEST(L0x, SelfDowngradeWritesBackAtEpochEnd)
{
    L0xRig r;
    r.accessSync(0, 0x10000000, true);
    EXPECT_EQ(r.tile->l0x(0).writebacksSent(), 0u);
    // Run past the epoch: the downgrade sweep fires by timestamp.
    r.ctx.eq.schedule(r.ctx.now() + 2000, [] {});
    r.ctx.eq.run();
    EXPECT_EQ(r.tile->l0x(0).writebacksSent(), 1u);
    // Downgrade used the filtered sweep, not a full-cache scan per
    // line: exactly one sweep sufficed.
    EXPECT_GE(r.ctx.stats.root()
                  .child("axc0.l0x")
                  .scalarValue("downgrade_sweeps"),
              1.0);
}

TEST(L0x, DirtyEvictionWritesBackEarly)
{
    L0xRig r;
    // Fill one set (16 sets, 4 ways): lines with stride numSets*64.
    Addr base = 0x10000000;
    Addr stride = 16 * kLineBytes;
    r.accessSync(0, base, true);
    for (int w = 1; w <= 4; ++w)
        r.accessSync(0, base + stride * w, false);
    // The dirty line was evicted by the 5th fill -> early writeback
    // before its epoch expired.
    EXPECT_EQ(r.tile->l0x(0).writebacksSent(), 1u);
}

TEST(L0x, WriteThroughSendsEveryStore)
{
    L0xRig r(/*write_through=*/true);
    std::uint64_t data_before = r.tile->tileLink().dataMessages();
    for (int i = 0; i < 8; ++i)
        r.accessSync(0, 0x10000000 + 8u * i, true);
    // 8 stores -> 8 data messages on the tile link (Table 4).
    EXPECT_EQ(r.tile->tileLink().dataMessages() - data_before, 8u);
    EXPECT_EQ(r.tile->l0x(0).writebacksSent(), 0u);
}

TEST(L0x, ForwardMovesDirtyLineToConsumer)
{
    L0xRig r(false, /*dx=*/true);
    r.accessSync(0, 0x10000000, true); // dirty in producer
    std::unordered_map<Addr, trace::ForwardHint> plan{
        {0x10000000, trace::ForwardHint{1, true}}};
    r.tile->installForwardPlan(0, plan);
    r.tile->finishInvocation(0);
    r.ctx.eq.runUntil(r.ctx.now() + 100);
    EXPECT_EQ(r.tile->l0x(0).forwardsOut(), 1u);
    // Consumer hits the pushed line without an L1X request.
    std::uint64_t l1x_reads_before = static_cast<std::uint64_t>(
        r.ctx.stats.root().child("l1x").scalarValue("reads"));
    r.accessSync(1, 0x10000008, false);
    EXPECT_EQ(r.tile->l0x(1).hits(), 1u);
    EXPECT_EQ(static_cast<std::uint64_t>(
                  r.ctx.stats.root().child("l1x").scalarValue(
                      "reads")),
              l1x_reads_before);
    // Write responsibility moved: the consumer eventually writes
    // the line back.
    r.ctx.eq.schedule(r.ctx.now() + 2000, [] {});
    r.ctx.eq.run();
    EXPECT_EQ(r.tile->l0x(1).writebacksSent(), 1u);
    EXPECT_EQ(r.tile->l0x(0).writebacksSent(), 0u);
}

TEST(L0x, ForwardUsesCheapLink)
{
    L0xRig r(false, true);
    r.accessSync(0, 0x10000000, true);
    std::unordered_map<Addr, trace::ForwardHint> plan{
        {0x10000000, trace::ForwardHint{1, true}}};
    r.tile->installForwardPlan(0, plan);
    double fwd_before =
        r.ctx.energy.total(energy::comp::kLinkL0xL0x);
    r.tile->finishInvocation(0);
    r.ctx.eq.runUntil(r.ctx.now() + 100);
    // 72 bytes at 0.1 pJ/B.
    EXPECT_DOUBLE_EQ(
        r.ctx.energy.total(energy::comp::kLinkL0xL0x) - fwd_before,
        72 * 0.1);
}

TEST(L0x, CleanPlannedLinesAreAlsoPushed)
{
    L0xRig r(false, true);
    r.accessSync(0, 0x10000000, false); // clean read
    std::unordered_map<Addr, trace::ForwardHint> plan{
        {0x10000000, trace::ForwardHint{1, true}}};
    r.tile->installForwardPlan(0, plan);
    r.tile->finishInvocation(0);
    r.ctx.eq.runUntil(r.ctx.now() + 100);
    EXPECT_EQ(r.tile->l0x(0).forwardsOut(), 1u);
    // Consumer hit, and nobody owes a writeback.
    r.accessSync(1, 0x10000000, false);
    EXPECT_EQ(r.tile->l0x(1).hits(), 1u);
    r.ctx.eq.schedule(r.ctx.now() + 2000, [] {});
    r.ctx.eq.run();
    EXPECT_EQ(r.tile->l0x(1).writebacksSent(), 0u);
}

TEST(L0x, ForwardFallsBackWhenConsumerIsFull)
{
    L0xRig r(false, true);
    // Long epochs so the consumer's dirty fills stay dirty across
    // the cold-miss latencies of this sequence.
    r.tile->l0x(0).setFunction(50000, 1);
    r.tile->l0x(1).setFunction(50000, 1);
    // Fill every way of the consumer's target set with dirty lines.
    Addr base = 0x10000000;
    Addr stride = 16 * kLineBytes;
    for (int w = 0; w < 4; ++w)
        r.accessSync(1, base + stride * w, true);
    // Producer dirties a line mapping to the same consumer set.
    Addr line = base + stride * 8;
    r.accessSync(0, line, true);
    std::unordered_map<Addr, trace::ForwardHint> plan{
        {line, trace::ForwardHint{1, true}}};
    r.tile->installForwardPlan(0, plan);
    r.tile->finishInvocation(0);
    r.ctx.eq.runUntil(r.ctx.now() + 100);
    // No forward: the producer degraded to a normal writeback.
    EXPECT_EQ(r.tile->l0x(0).forwardsOut(), 0u);
    EXPECT_EQ(r.tile->l0x(0).writebacksSent(), 1u);
}

TEST(L0x, PidTagsKeepProcessesApart)
{
    L0xRig r;
    r.pt.ensureMappedRange(2, 0x10000000, 1 << 16);
    r.accessSync(0, 0x10000000, false); // pid 1
    r.tile->l0x(0).setFunction(500, 2);
    r.accessSync(0, 0x10000000, false); // pid 2: must miss
    EXPECT_EQ(r.tile->l0x(0).misses(), 2u);
}

} // namespace
} // namespace fusion
