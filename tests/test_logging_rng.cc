/**
 * @file
 * Unit tests for debug-category logging and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace fusion
{
namespace
{

TEST(Debug, EnableDisable)
{
    EXPECT_FALSE(Debug::enabled("TESTCAT"));
    Debug::enable("TESTCAT");
    EXPECT_TRUE(Debug::enabled("TESTCAT"));
    Debug::disable("TESTCAT");
    EXPECT_FALSE(Debug::enabled("TESTCAT"));
}

TEST(Debug, DprintfnIsGated)
{
    // Must compile and be a no-op when disabled (no crash, no
    // side effects on the stream).
    DPRINTFN("DISABLED_CAT", "value=", 42);
    Debug::enable("ENABLED_CAT");
    DPRINTFN("ENABLED_CAT", "value=", 42);
    Debug::disable("ENABLED_CAT");
}

TEST(Debug, KnownCategoryList)
{
    EXPECT_TRUE(Debug::isKnown("ACC"));
    EXPECT_TRUE(Debug::isKnown("MESI"));
    EXPECT_TRUE(Debug::isKnown("OBS"));
    EXPECT_FALSE(Debug::isKnown("TESTCAT"));
    EXPECT_FALSE(Debug::isKnown("acc")); // case-sensitive
}

TEST(Debug, InitFromEnvironmentTrimsWhitespace)
{
    // "ACC, MESI ,,  " must enable exactly ACC and MESI: entries are
    // trimmed and empties skipped.
    ::setenv("FUSION_DEBUG", " ACC, MESI ,,  ", 1);
    testing::internal::CaptureStderr();
    Debug::initFromEnvironment();
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_TRUE(Debug::enabled("ACC"));
    EXPECT_TRUE(Debug::enabled("MESI"));
    EXPECT_FALSE(Debug::enabled(""));
    EXPECT_FALSE(Debug::enabled(" ACC"));
    // Both names are known, so no warning was printed.
    EXPECT_EQ(err.find("unknown category"), std::string::npos) << err;
    Debug::disable("ACC");
    Debug::disable("MESI");
    ::unsetenv("FUSION_DEBUG");
}

TEST(Debug, InitFromEnvironmentWarnsOnUnknownButStillEnables)
{
    ::setenv("FUSION_DEBUG", "NOSUCHCAT", 1);
    testing::internal::CaptureStderr();
    Debug::initFromEnvironment();
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("unknown category 'NOSUCHCAT'"),
              std::string::npos)
        << err;
    // The warning lists the valid vocabulary...
    EXPECT_NE(err.find("ACC"), std::string::npos) << err;
    // ...but the category is enabled anyway (advisory warning).
    EXPECT_TRUE(Debug::enabled("NOSUCHCAT"));
    Debug::disable("NOSUCHCAT");
    ::unsetenv("FUSION_DEBUG");
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowIsInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIsInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 4000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 4000.0, 0.5, 0.03);
}

TEST(AssertMacroDeathTest, PanicsWithMessage)
{
    EXPECT_DEATH(fusion_panic("boom ", 42), "boom 42");
    int x = 3;
    EXPECT_DEATH(fusion_assert(x == 4, "x=", x), "x=3");
}

} // namespace
} // namespace fusion
