/**
 * @file
 * Accelerator core timing model tests against a scripted MemPort.
 */

#include <gtest/gtest.h>

#include "accel/accel_core.hh"
#include "sim/sim_context.hh"

namespace fusion::accel
{
namespace
{

/** Port with a fixed per-access latency; records issue times. */
class FixedLatencyPort : public MemPort
{
  public:
    FixedLatencyPort(SimContext &ctx, Cycles lat)
        : _ctx(ctx), _lat(lat)
    {
    }

    void
    access(Addr va, std::uint32_t, bool is_write,
           PortDone done) override
    {
        issues.push_back({_ctx.now(), va, is_write});
        ++inflight;
        maxInflight = std::max(maxInflight, inflight);
        _ctx.eq.scheduleIn(_lat,
                           [this, done = std::move(done)]() mutable {
                               --inflight;
                               done();
                           });
    }

    struct Issue
    {
        Tick when;
        Addr va;
        bool write;
    };
    std::vector<Issue> issues;
    std::uint32_t inflight = 0;
    std::uint32_t maxInflight = 0;

  private:
    SimContext &_ctx;
    Cycles _lat;
};

struct CoreRig
{
    SimContext ctx;
    AccelCore core;
    explicit CoreRig(AccelCoreParams p = {}) : core(ctx, p, 0) {}

    Tick
    runSync(const trace::Invocation &inv, std::uint32_t mlp,
            MemPort &port)
    {
        bool done = false;
        Tick t0 = ctx.now();
        core.run(inv, mlp, port, [&] { done = true; });
        ctx.eq.run();
        EXPECT_TRUE(done);
        return ctx.now() - t0;
    }
};

trace::Invocation
loadsOnly(int n)
{
    trace::Invocation inv;
    inv.func = 0;
    for (int i = 0; i < n; ++i)
        inv.ops.push_back(trace::TraceOp::load(0x1000 + 64u * i, 8));
    return inv;
}

TEST(AccelCore, MlpBoundsOutstandingLoads)
{
    CoreRig r;
    FixedLatencyPort port(r.ctx, 50);
    r.runSync(loadsOnly(20), 3, port);
    EXPECT_EQ(port.maxInflight, 3u);
}

TEST(AccelCore, HigherMlpIsFasterOnLatencyBoundStreams)
{
    Tick t_low, t_high;
    {
        CoreRig r;
        FixedLatencyPort port(r.ctx, 50);
        t_low = r.runSync(loadsOnly(20), 1, port);
    }
    {
        CoreRig r;
        FixedLatencyPort port(r.ctx, 50);
        t_high = r.runSync(loadsOnly(20), 5, port);
    }
    EXPECT_LT(t_high * 3, t_low);
}

TEST(AccelCore, ComputeGapsStallIssue)
{
    CoreRig r;
    FixedLatencyPort port(r.ctx, 1);
    trace::Invocation inv;
    inv.func = 0;
    inv.ops.push_back(trace::TraceOp::load(0x1000, 8));
    inv.ops.push_back(trace::TraceOp::compute(40, 0)); // 10 cycles
    inv.ops.push_back(trace::TraceOp::load(0x1040, 8));
    r.runSync(inv, 4, port);
    ASSERT_EQ(port.issues.size(), 2u);
    EXPECT_GE(port.issues[1].when - port.issues[0].when, 10u);
}

TEST(AccelCore, ComputeEnergyFollowsActivityCounts)
{
    AccelCoreParams p;
    CoreRig r(p);
    FixedLatencyPort port(r.ctx, 1);
    trace::Invocation inv;
    inv.func = 0;
    inv.ops.push_back(trace::TraceOp::compute(100, 10));
    r.runSync(inv, 2, port);
    EXPECT_DOUBLE_EQ(
        r.ctx.energy.total(energy::comp::kAxcCompute),
        100 * p.intOpPj + 10 * p.fpOpPj);
}

TEST(AccelCore, StoreBufferDecouplesStores)
{
    AccelCoreParams p;
    p.storeBuffer = 4;
    CoreRig r(p);
    FixedLatencyPort port(r.ctx, 100); // slow stores
    trace::Invocation inv;
    inv.func = 0;
    for (int i = 0; i < 4; ++i)
        inv.ops.push_back(
            trace::TraceOp::store(0x1000 + 64u * i, 8));
    Tick t = r.runSync(inv, 1, port);
    // All four issue back-to-back; completion bounded by one
    // latency, not four.
    EXPECT_LT(t, 150u);
    EXPECT_EQ(port.maxInflight, 4u);
}

TEST(AccelCore, SubRangeReplaysOnlyTheWindow)
{
    CoreRig r;
    FixedLatencyPort port(r.ctx, 1);
    trace::Invocation inv = loadsOnly(10);
    bool done = false;
    r.core.run(inv, 2, port, 3, 7, [&] { done = true; });
    r.ctx.eq.run();
    EXPECT_TRUE(done);
    ASSERT_EQ(port.issues.size(), 4u);
    EXPECT_EQ(port.issues[0].va, 0x1000u + 64 * 3);
    EXPECT_EQ(port.issues[3].va, 0x1000u + 64 * 6);
}

TEST(AccelCore, CompletionWaitsForAllOutstanding)
{
    CoreRig r;
    FixedLatencyPort port(r.ctx, 200);
    trace::Invocation inv;
    inv.func = 0;
    inv.ops.push_back(trace::TraceOp::store(0x1000, 8));
    Tick t = r.runSync(inv, 1, port);
    EXPECT_GE(t, 200u);
    EXPECT_FALSE(r.core.busy());
}

TEST(AccelCoreDeathTest, ZeroMlpPanics)
{
    CoreRig r;
    FixedLatencyPort port(r.ctx, 1);
    trace::Invocation inv = loadsOnly(1);
    EXPECT_DEATH(r.core.run(inv, 0, port, [] {}), "MLP");
}

} // namespace
} // namespace fusion::accel
