/**
 * @file
 * Unit tests for the open-page DRAM model.
 */

#include <gtest/gtest.h>

#include "energy/energy_ledger.hh"
#include "mem/dram.hh"

namespace fusion::mem
{
namespace
{

struct DramRig
{
    SimContext ctx;
    DramParams p;
    Dram dram;

    explicit DramRig(DramParams params = {})
        : p(params), dram(ctx, p)
    {
    }

    Tick
    accessSync(Addr a, bool w)
    {
        Tick done_at = 0;
        dram.access(a, w, [&] { done_at = ctx.now(); });
        ctx.eq.run();
        return done_at;
    }
};

TEST(Dram, ColdAccessPaysRowMissLatency)
{
    DramRig r;
    Tick t = r.accessSync(0x0, false);
    EXPECT_EQ(t, r.p.rowMissLatency);
    EXPECT_EQ(r.dram.accesses(), 1u);
    EXPECT_EQ(r.dram.rowHits(), 0u);
}

TEST(Dram, OpenPageHitIsFaster)
{
    DramRig r;
    r.accessSync(0x0, false);
    Tick start = r.ctx.now();
    Tick t = r.accessSync(0x100, false); // same 4K row, channel 0?
    // Same channel requires lineNumber % channels equal; 0x100 is
    // line 4, channel 0 with 4 channels.
    EXPECT_EQ(t - start, r.p.rowHitLatency);
    EXPECT_EQ(r.dram.rowHits(), 1u);
}

TEST(Dram, DifferentRowsMissAgain)
{
    DramRig r;
    r.accessSync(0x0, false);
    Tick start = r.ctx.now();
    Tick t = r.accessSync(0x10000, false); // row 16, channel 0
    EXPECT_EQ(t - start, r.p.rowMissLatency);
}

TEST(Dram, ChannelsServiceInParallel)
{
    DramRig r;
    int done = 0;
    // Lines 0..3 hit channels 0..3.
    for (Addr a = 0; a < 4 * kLineBytes; a += kLineBytes)
        r.dram.access(a, false, [&] { ++done; });
    r.ctx.eq.run();
    // All four finished at rowMissLatency: no serialization.
    EXPECT_EQ(done, 4);
    EXPECT_EQ(r.ctx.now(), r.p.rowMissLatency);
}

TEST(Dram, SameChannelQueuesBehindBurst)
{
    DramRig r;
    std::vector<Tick> done;
    // Two different rows, same channel (stride = 4 lines).
    r.dram.access(0x0, false, [&] { done.push_back(r.ctx.now()); });
    r.dram.access(0x10000, false,
                  [&] { done.push_back(r.ctx.now()); });
    r.ctx.eq.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], r.p.rowMissLatency);
    // Second starts after the burst occupancy.
    EXPECT_EQ(done[1], r.p.burstCycles + r.p.rowMissLatency);
}

TEST(Dram, EnergyBookedPerAccess)
{
    DramRig r;
    r.accessSync(0x0, false);
    r.accessSync(0x40, true);
    EXPECT_DOUBLE_EQ(r.ctx.energy.total(energy::comp::kDram),
                     2 * r.p.accessPj);
}

} // namespace
} // namespace fusion::mem
