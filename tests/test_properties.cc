/**
 * @file
 * Property-based sweeps over randomized traces: protocol-level
 * invariants that must hold for *any* program, not just the seven
 * benchmarks. Random programs are generated from seeds
 * (TEST_P/INSTANTIATE_TEST_SUITE_P) and run on every system.
 */

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "core/system.hh"
#include "sim/rng.hh"
#include "trace/analysis.hh"
#include "trace/recorder.hh"

namespace fusion::core
{
namespace
{

/** A random multi-function program with inter-accelerator sharing. */
trace::Program
randomProgram(std::uint64_t seed)
{
    Rng rng(seed);
    trace::Recorder rec("rand" + std::to_string(seed));
    int nfunc = static_cast<int>(2 + rng.below(4));
    std::vector<FuncId> fids;
    for (int f = 0; f < nfunc; ++f) {
        trace::FunctionMeta m;
        m.name = "f" + std::to_string(f);
        m.accel = static_cast<AccelId>(f);
        m.mlp = static_cast<std::uint32_t>(1 + rng.below(6));
        m.leaseTime = 100 + 100 * rng.below(16);
        fids.push_back(rec.addFunction(m));
    }
    // Shared buffers.
    const Addr base = 0x10000000;
    const std::uint64_t buf_bytes = 4096 + rng.below(4) * 4096;

    rec.beginHostInit();
    for (Addr a = 0; a < buf_bytes; a += kLineBytes)
        rec.store(base + a, kLineBytes);
    rec.end();

    int ninv = static_cast<int>(3 + rng.below(6));
    for (int i = 0; i < ninv; ++i) {
        FuncId f = fids[rng.below(fids.size())];
        rec.beginInvocation(f);
        int nops = static_cast<int>(50 + rng.below(400));
        for (int op = 0; op < nops; ++op) {
            Addr a = base + (rng.below(buf_bytes) & ~7ull);
            switch (rng.below(4)) {
              case 0:
                rec.store(a, 8);
                break;
              case 3:
                rec.intOps(static_cast<std::uint32_t>(
                    1 + rng.below(20)));
                break;
              default:
                rec.load(a, 8);
            }
        }
        rec.end();
    }

    rec.beginHostFinal();
    for (Addr a = 0; a < buf_bytes; a += kLineBytes)
        rec.load(base + a, kLineBytes);
    rec.end();
    return rec.take();
}

class RandomPrograms
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomPrograms, EverySystemCompletesAndBooksEnergy)
{
    trace::Program p = randomProgram(GetParam());
    for (auto kind : {SystemKind::Scratch, SystemKind::Shared,
                      SystemKind::Fusion, SystemKind::FusionDx,
                      SystemKind::FusionMesi}) {
        RunResult r =
            runProgram(SystemConfig::preset(SystemConfig::Preset::Paper, kind), p);
        // Liveness: finished (run() panics on deadlock), took time,
        // every invocation attributed.
        EXPECT_GT(r.totalCycles, 0u);
        std::uint64_t func_total = 0;
        for (const auto &[n, c] : r.funcCycles)
            func_total += c;
        EXPECT_LE(func_total, r.totalCycles);
        EXPECT_GE(r.accelCycles, func_total);
        // Conservation: energy positive, hierarchy <= total.
        EXPECT_GT(r.totalPj(), 0.0);
        EXPECT_LE(r.hierarchyPj(), r.totalPj());
    }
}

TEST_P(RandomPrograms, DmaMovesAtLeastTheReadFootprint)
{
    trace::Program p = randomProgram(GetParam());
    RunResult r = runProgram(
        SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Scratch), p);
    // The oracle never transfers less than each window's read set;
    // across the run, DMA bytes >= unique loaded lines once.
    std::uint64_t loaded_lines = 0;
    {
        std::unordered_set<Addr> lines;
        for (const auto &inv : p.invocations)
            for (const auto &op : inv.ops)
                if (op.kind == trace::OpKind::Load)
                    lines.insert(lineAlign(op.addr));
        loaded_lines = lines.size();
    }
    EXPECT_GE(r.dmaBytes, loaded_lines * kLineBytes);
}

TEST_P(RandomPrograms, WindowsPartitionEveryInvocation)
{
    trace::Program p = randomProgram(GetParam());
    for (const auto &inv : p.invocations) {
        auto wins = trace::segmentWindows(inv, 64);
        ASSERT_FALSE(wins.empty());
        EXPECT_EQ(wins.front().beginOp, 0u);
        EXPECT_EQ(wins.back().endOp, inv.ops.size());
        for (std::size_t i = 0; i + 1 < wins.size(); ++i)
            EXPECT_EQ(wins[i].endOp, wins[i + 1].beginOp);
        for (const auto &w : wins) {
            std::unordered_set<Addr> unique;
            for (std::size_t o = w.beginOp; o < w.endOp; ++o) {
                if (inv.ops[o].kind != trace::OpKind::Compute)
                    unique.insert(lineAlign(inv.ops[o].addr));
            }
            EXPECT_LE(unique.size(), 64u);
            // Dirty set == stored lines in the window.
            std::unordered_set<Addr> stored;
            for (std::size_t o = w.beginOp; o < w.endOp; ++o)
                if (inv.ops[o].kind == trace::OpKind::Store)
                    stored.insert(lineAlign(inv.ops[o].addr));
            EXPECT_EQ(stored.size(), w.dirtyLines.size());
        }
    }
}

TEST_P(RandomPrograms, FusionCyclesInsensitiveToLeaseScale)
{
    // Correctness invariant: lease length trades messages for
    // staleness windows but must never deadlock or lose writes;
    // the program completes for extreme lease choices.
    trace::Program p = randomProgram(GetParam());
    for (Cycles lt : {Cycles(50), Cycles(20000)}) {
        trace::Program q = p;
        for (auto &f : q.functions)
            f.leaseTime = lt;
        RunResult r = runProgram(
            SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion), q);
        EXPECT_GT(r.totalCycles, 0u);
    }
}

TEST_P(RandomPrograms, ShortLeasesRaiseTileRequestTraffic)
{
    trace::Program p = randomProgram(GetParam());
    trace::Program shortp = p, longp = p;
    for (auto &f : shortp.functions)
        f.leaseTime = 60;
    for (auto &f : longp.functions)
        f.leaseTime = 50000;
    RunResult rs = runProgram(
        SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion), shortp);
    RunResult rl = runProgram(
        SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion), longp);
    EXPECT_GE(rs.l0xL1xCtrlMsgs, rl.l0xL1xCtrlMsgs);
}

TEST_P(RandomPrograms, ForwardPlanOnlyNamesRealConsumers)
{
    trace::Program p = randomProgram(GetParam());
    auto plan = trace::planForwarding(p);
    for (const auto &[inv_idx, lines] : plan) {
        ASSERT_LT(inv_idx, p.invocations.size());
        AccelId producer =
            p.functions[static_cast<std::size_t>(
                            p.invocations[inv_idx].func)]
                .accel;
        for (const auto &[line, hint] : lines) {
            EXPECT_NE(hint.consumer, producer);
            EXPECT_LT(static_cast<std::uint32_t>(hint.consumer),
                      p.accelCount());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Range<std::uint64_t>(1, 9));

} // namespace
} // namespace fusion::core
