/**
 * @file
 * Tests for the CACTI-style SRAM model, link energies and ledger —
 * including the calibration points the paper's lessons rest on.
 */

#include <gtest/gtest.h>

#include "energy/energy_ledger.hh"
#include "energy/link_energy.hh"
#include "energy/sram_model.hh"

namespace fusion::energy
{
namespace
{

SramFigures
figsFor(std::uint64_t bytes, std::uint32_t assoc,
        std::uint32_t banks, SramKind kind)
{
    SramParams p;
    p.capacityBytes = bytes;
    p.assoc = assoc;
    p.banks = banks;
    p.kind = kind;
    return evaluateSram(p);
}

TEST(SramModel, EnergyGrowsWithCapacity)
{
    auto small = figsFor(4096, 4, 1, SramKind::Cache);
    auto big = figsFor(64 * 1024, 4, 1, SramKind::Cache);
    EXPECT_GT(big.readPj, small.readPj);
    EXPECT_GT(big.areaMm2, small.areaMm2);
}

TEST(SramModel, BankingReducesAccessEnergy)
{
    auto mono = figsFor(64 * 1024, 8, 1, SramKind::Cache);
    auto banked = figsFor(64 * 1024, 8, 16, SramKind::Cache);
    EXPECT_LT(banked.readPj, mono.readPj);
}

TEST(SramModel, TimestampCheckAddsTagEnergy)
{
    auto plain = figsFor(4096, 4, 1, SramKind::Cache);
    auto ts = figsFor(4096, 4, 1, SramKind::TimestampCache);
    EXPECT_GT(ts.readPj, plain.readPj);
    // The overhead is on the tag path only: ~15% of ~15%.
    EXPECT_LT(ts.readPj, plain.readPj * 1.05);
}

TEST(SramModel, ScratchpadHasNoTagEnergy)
{
    auto spm = figsFor(4096, 1, 1, SramKind::ScratchpadRam);
    auto cache = figsFor(4096, 4, 1, SramKind::Cache);
    EXPECT_LT(spm.readPj, cache.readPj);
    EXPECT_DOUBLE_EQ(spm.tagProbePj, 0.0);
}

// Lesson 3 calibration: the 4K L0X is ~1.5x more energy-efficient
// than the heavily banked 64K L1X.
TEST(SramModel, L0xVsL1xRatioMatchesLesson3)
{
    auto l0x = figsFor(4096, 4, 1, SramKind::TimestampCache);
    auto l1x = figsFor(64 * 1024, 8, 16, SramKind::TimestampCache);
    double ratio = l1x.readPj / l0x.readPj;
    EXPECT_GT(ratio, 1.2);
    EXPECT_LT(ratio, 1.8);
}

// Lesson 7 calibration: the 256K L1X costs ~2x the 64K L1X per
// access and is 2 cycles slower.
TEST(SramModel, LargeL1xMatchesLesson7)
{
    auto small = figsFor(64 * 1024, 8, 16, SramKind::TimestampCache);
    auto large = figsFor(256 * 1024, 8, 16,
                         SramKind::TimestampCache);
    double ratio = large.readPj / small.readPj;
    EXPECT_GT(ratio, 1.7);
    EXPECT_LT(ratio, 2.3);
    EXPECT_EQ(large.latency, small.latency + 2);
}

TEST(SramModel, LatencyTable2Points)
{
    // 4KB scratchpad/L0X: single cycle.
    EXPECT_EQ(figsFor(4096, 4, 1, SramKind::Cache).latency, 1u);
    // 64KB host L1: 3 cycles (Table 2).
    EXPECT_EQ(figsFor(64 * 1024, 4, 1, SramKind::Cache).latency,
              3u);
}

TEST(SramModel, WritesCostMoreThanReads)
{
    auto f = figsFor(64 * 1024, 8, 16, SramKind::Cache);
    EXPECT_GT(f.writePj, f.readPj);
}

TEST(LinkEnergy, Table2Values)
{
    EXPECT_DOUBLE_EQ(linkPjPerByte(LinkClass::AxcToL1x), 0.4);
    EXPECT_DOUBLE_EQ(linkPjPerByte(LinkClass::L1xToL2), 6.0);
    EXPECT_DOUBLE_EQ(linkPjPerByte(LinkClass::L0xToL0x), 0.1);
}

TEST(Ledger, AccumulatesPerComponent)
{
    Ledger l;
    l.add("a", 1.0);
    l.add("a", 2.0);
    l.add("b", 4.0);
    EXPECT_DOUBLE_EQ(l.total("a"), 3.0);
    EXPECT_DOUBLE_EQ(l.total("b"), 4.0);
    EXPECT_DOUBLE_EQ(l.total("absent"), 0.0);
    EXPECT_DOUBLE_EQ(l.grandTotal(), 7.0);
}

TEST(Ledger, PrefixSums)
{
    Ledger l;
    l.add("link.a.msg", 1.0);
    l.add("link.a.data", 2.0);
    l.add("llc", 4.0);
    EXPECT_DOUBLE_EQ(l.totalWithPrefix("link."), 3.0);
}

TEST(Ledger, ResetClears)
{
    Ledger l;
    l.add("x", 5.0);
    l.reset();
    EXPECT_DOUBLE_EQ(l.grandTotal(), 0.0);
}

} // namespace
} // namespace fusion::energy
