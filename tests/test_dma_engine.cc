/**
 * @file
 * Oracle DMA engine tests: fill/drain state machine, coherence of
 * transfers and accounting.
 */

#include <gtest/gtest.h>

#include "accel/dma_engine.hh"
#include "test_util.hh"

namespace fusion
{
namespace
{

struct DmaRig : test::L1Rig
{
    vm::PageTable pt;
    mem::Scratchpad spm;
    interconnect::Link dmaLink;
    accel::DmaEngine dma;

    DmaRig()
        : spm(ctx, 4096, "spm"),
          dmaLink(ctx,
                  interconnect::LinkParams{
                      "dma", energy::LinkClass::L1xToL2, 7,
                      energy::comp::kLinkL1xL2Msg,
                      energy::comp::kLinkL1xL2Data}),
          dma(ctx, accel::DmaParams{2}, llc, &dmaLink, pt)
    {
        pt.ensureMappedRange(1, 0x10000000, 1 << 20);
    }

    std::vector<Addr>
    lines(int n, Addr base = 0x10000000)
    {
        std::vector<Addr> v;
        for (int i = 0; i < n; ++i)
            v.push_back(base + static_cast<Addr>(i) * kLineBytes);
        return v;
    }
};

TEST(DmaEngine, FillTransfersEveryLine)
{
    DmaRig r;
    bool done = false;
    auto ls = r.lines(8);
    r.dma.fill(ls, 1, r.spm, [&] { done = true; });
    EXPECT_EQ(r.dma.state(), accel::DmaState::Fill);
    r.drain();
    EXPECT_TRUE(done);
    EXPECT_EQ(r.dma.state(), accel::DmaState::Idle);
    EXPECT_EQ(r.dma.lineTransfers(), 8u);
    EXPECT_EQ(r.dma.bytesTransferred(), 8u * kLineBytes);
    EXPECT_EQ(r.dma.dmaOps(), 1u);
}

TEST(DmaEngine, EmptyWindowCompletesWithoutTraffic)
{
    DmaRig r;
    bool done = false;
    std::vector<Addr> none;
    r.dma.fill(none, 1, r.spm, [&] { done = true; });
    EXPECT_TRUE(done);
    EXPECT_EQ(r.dma.lineTransfers(), 0u);
}

TEST(DmaEngine, DrainMakesDataVisibleAtLlc)
{
    DmaRig r;
    bool done = false;
    auto ls = r.lines(4);
    r.dma.drain(ls, 1, r.spm, [&] { done = true; });
    r.drain();
    EXPECT_TRUE(done);
    for (Addr va : ls) {
        Addr pa = r.pt.translate(1, va);
        ASSERT_NE(r.llc.tags().find(pa), nullptr);
        EXPECT_TRUE(r.llc.tags().find(pa)->dirty);
    }
}

static void
accessSyncHelper(DmaRig &r, Addr pa)
{
    bool done = false;
    r.l1.access(pa, true, [&] { done = true; });
    r.ctx.eq.run();
    ASSERT_TRUE(done);
}

TEST(DmaEngine, FillSnoopsDirtyHostData)
{
    DmaRig r;
    // Host dirties a line in its L1.
    Addr va = 0x10000000;
    Addr pa = r.pt.translate(1, va);
    accessSyncHelper(r, pa);
    bool done = false;
    std::vector<Addr> one{va};
    r.dma.fill(one, 1, r.spm, [&] { done = true; });
    r.drain();
    EXPECT_TRUE(done);
    // The host L1 received a FwdGetS and the LLC got the dirty data.
    EXPECT_TRUE(r.llc.tags().find(pa)->dirty);
    EXPECT_EQ(r.llc.fwdsToAgent(0), 1u);
}

TEST(DmaEngine, DrainInvalidatesStaleHostCopies)
{
    DmaRig r;
    Addr va = 0x10000040;
    Addr pa = r.pt.translate(1, va);
    accessSyncHelper(r, pa);
    ASSERT_TRUE(r.llc.isOwner(0, pa));
    bool done = false;
    std::vector<Addr> one{va};
    r.dma.drain(one, 1, r.spm, [&] { done = true; });
    r.drain();
    EXPECT_TRUE(done);
    EXPECT_FALSE(r.llc.isOwner(0, pa));
}

TEST(DmaEngine, OutstandingTransfersAreBounded)
{
    DmaRig r;
    // With depth 2, 8 transfers cannot all be in flight: completion
    // takes at least 4 serial LLC round trips.
    bool done = false;
    auto ls = r.lines(8);
    Tick t0 = r.ctx.now();
    r.dma.fill(ls, 1, r.spm, [&] { done = true; });
    r.drain();
    EXPECT_TRUE(done);
    // Lower bound: 4 rounds x (bank latency 12) at minimum.
    EXPECT_GE(r.ctx.now() - t0, 4u * 12);
}

TEST(DmaEngine, ScratchpadSideBooked)
{
    DmaRig r;
    bool done = false;
    auto ls = r.lines(3);
    r.dma.fill(ls, 1, r.spm, [&] { done = true; });
    r.drain();
    EXPECT_DOUBLE_EQ(r.ctx.stats.root().child("spm").scalarValue(
                         "dma_line_xfers"),
                     3.0);
}

TEST(DmaEngineDeathTest, OverlappingOperationsPanic)
{
    DmaRig r;
    auto ls = r.lines(4);
    r.dma.fill(ls, 1, r.spm, [] {});
    EXPECT_DEATH(r.dma.drain(ls, 1, r.spm, [] {}), "busy");
}

} // namespace
} // namespace fusion
