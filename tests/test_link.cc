/**
 * @file
 * Unit tests for interconnect links and message accounting.
 */

#include <gtest/gtest.h>

#include "interconnect/link.hh"

namespace fusion::interconnect
{
namespace
{

Link
makeLink(SimContext &ctx, energy::LinkClass cls, Cycles lat = 3)
{
    return Link(ctx, LinkParams{"test_link", cls, lat, "test.msg",
                                "test.data"});
}

TEST(Message, SizesAndFlits)
{
    EXPECT_EQ(messageBytes(MsgClass::Control), 8u);
    EXPECT_EQ(messageBytes(MsgClass::Word), 16u);
    EXPECT_EQ(messageBytes(MsgClass::Data), 72u);
    EXPECT_EQ(messageFlits(MsgClass::Control), 1u);
    EXPECT_EQ(messageFlits(MsgClass::Word), 2u);
    EXPECT_EQ(messageFlits(MsgClass::Data), 9u);
}

TEST(Link, DeliveryAfterLatency)
{
    SimContext ctx;
    auto link = makeLink(ctx, energy::LinkClass::AxcToL1x, 5);
    Tick delivered = 0;
    link.send(MsgClass::Control, [&] { delivered = ctx.now(); });
    ctx.eq.run();
    EXPECT_EQ(delivered, 5u);
}

TEST(Link, EnergySplitsByTrafficClass)
{
    SimContext ctx;
    auto link = makeLink(ctx, energy::LinkClass::AxcToL1x);
    link.book(MsgClass::Control);
    link.book(MsgClass::Data);
    // 0.4 pJ/B: control 8B, data 72B.
    EXPECT_DOUBLE_EQ(ctx.energy.total("test.msg"), 8 * 0.4);
    EXPECT_DOUBLE_EQ(ctx.energy.total("test.data"), 72 * 0.4);
}

TEST(Link, WordCountsAsDataTraffic)
{
    SimContext ctx;
    auto link = makeLink(ctx, energy::LinkClass::AxcToL1x);
    link.book(MsgClass::Word);
    EXPECT_EQ(link.dataMessages(), 1u);
    EXPECT_DOUBLE_EQ(ctx.energy.total("test.data"), 16 * 0.4);
}

TEST(Link, FlitAndByteCounters)
{
    SimContext ctx;
    auto link = makeLink(ctx, energy::LinkClass::L1xToL2);
    link.book(MsgClass::Control, 3);
    link.book(MsgClass::Data, 2);
    EXPECT_EQ(link.controlMessages(), 3u);
    EXPECT_EQ(link.dataMessages(), 2u);
    EXPECT_EQ(link.totalFlits(), 3u * 1 + 2u * 9);
    EXPECT_EQ(link.totalBytes(), 3u * 8 + 2u * 72);
}

TEST(Link, ExpensiveHostLinkCostsMore)
{
    SimContext ctx;
    auto tile = makeLink(ctx, energy::LinkClass::AxcToL1x);
    tile.book(MsgClass::Data);
    double tile_pj = ctx.energy.grandTotal();
    ctx.energy.reset();
    auto host = makeLink(ctx, energy::LinkClass::L1xToL2);
    host.book(MsgClass::Data);
    // 6 pJ/B vs 0.4 pJ/B: 15x.
    EXPECT_DOUBLE_EQ(ctx.energy.grandTotal(), tile_pj * 15.0);
}

} // namespace
} // namespace fusion::interconnect
