/**
 * @file
 * Trace analysis tests: profiles, footprints, DMA windowing and the
 * FUSION-Dx forwarding plan.
 */

#include <gtest/gtest.h>

#include "trace/analysis.hh"
#include "trace/recorder.hh"

namespace fusion::trace
{
namespace
{

/** Two functions on two accelerators sharing one buffer. */
Program
makeSharingProgram()
{
    Recorder rec("share");
    FuncId prod = rec.addFunction({"prod", 0, 2, 500});
    FuncId cons = rec.addFunction({"cons", 1, 2, 500});
    rec.beginInvocation(prod);
    for (Addr a = 0; a < 8 * kLineBytes; a += 8) {
        rec.intOps(2);
        rec.store(0x1000 + a, 8);
    }
    rec.end();
    rec.beginInvocation(cons);
    for (Addr a = 0; a < 8 * kLineBytes; a += 8) {
        rec.fpOps(1);
        rec.load(0x1000 + a, 8);
    }
    // Private output of the consumer.
    for (Addr a = 0; a < 4 * kLineBytes; a += 8)
        rec.store(0x8000 + a, 8);
    rec.end();
    return rec.take();
}

TEST(Analysis, ProfileOpMixAndSharing)
{
    Program p = makeSharingProgram();
    auto profs = profileFunctions(p);
    ASSERT_EQ(profs.size(), 2u);
    // prod: 64 stores, 128 int ops -> %ST = 64/192.
    EXPECT_NEAR(profs[0].pctSt, 100.0 * 64 / 192, 0.01);
    EXPECT_NEAR(profs[0].pctInt, 100.0 * 128 / 192, 0.01);
    EXPECT_DOUBLE_EQ(profs[0].pctLd, 0.0);
    // All of prod's lines are read by cons: 100% shared.
    EXPECT_DOUBLE_EQ(profs[0].sharePct, 100.0);
    // cons touches 12 lines, 8 shared.
    EXPECT_NEAR(profs[1].sharePct, 100.0 * 8 / 12, 0.01);
    EXPECT_EQ(profs[1].footprintLines, 12u);
}

TEST(Analysis, FootprintCountsUniqueLines)
{
    Program p = makeSharingProgram();
    EXPECT_EQ(footprintLines(p), 12u);
    EXPECT_EQ(workingSet(p).lines, 12u);
    EXPECT_DOUBLE_EQ(workingSet(p).kilobytes(), 12 * 64 / 1024.0);
}

TEST(Analysis, WindowsRespectScratchpadCapacity)
{
    Program p = makeSharingProgram();
    // prod streams 8 lines; a 2-line scratchpad needs 4 windows.
    auto wins = segmentWindows(p.invocations[0], 2);
    ASSERT_EQ(wins.size(), 4u);
    for (const auto &w : wins) {
        EXPECT_LE(w.readLines.size() + w.dirtyLines.size(), 2u);
        // Write-only stream: nothing to DMA in.
        EXPECT_TRUE(w.readLines.empty());
        EXPECT_EQ(w.dirtyLines.size(), 2u);
    }
    // Windows tile the op stream contiguously.
    EXPECT_EQ(wins.front().beginOp, 0u);
    for (std::size_t i = 1; i < wins.size(); ++i)
        EXPECT_EQ(wins[i].beginOp, wins[i - 1].endOp);
    EXPECT_EQ(wins.back().endOp, p.invocations[0].ops.size());
}

TEST(Analysis, WindowReadSetOnlyHoldsLoadedLines)
{
    Recorder rec("w");
    FuncId f = rec.addFunction({"f", 0, 2, 500});
    rec.beginInvocation(f);
    rec.load(0x0, 8);        // line 0: read
    rec.store(0x40, 8);      // line 1: written only
    rec.load(0x80, 8);       // line 2: read
    rec.store(0x80, 8);      //         ... and written
    rec.end();
    Program p = rec.take();
    auto wins = segmentWindows(p.invocations[0], 64);
    ASSERT_EQ(wins.size(), 1u);
    EXPECT_EQ(wins[0].readLines,
              (std::vector<Addr>{0x0, 0x80}));
    EXPECT_EQ(wins[0].dirtyLines,
              (std::vector<Addr>{0x40, 0x80}));
}

TEST(Analysis, ReusedLineDoesNotSplitWindow)
{
    Recorder rec("w");
    FuncId f = rec.addFunction({"f", 0, 2, 500});
    rec.beginInvocation(f);
    for (int rep = 0; rep < 10; ++rep)
        rec.load(0x0, 8); // one line, many touches
    rec.end();
    Program p = rec.take();
    auto wins = segmentWindows(p.invocations[0], 1);
    EXPECT_EQ(wins.size(), 1u);
}

TEST(Analysis, ForwardPlanFindsProducerConsumerPairs)
{
    Program p = makeSharingProgram();
    ForwardPlan plan = planForwarding(p);
    // Invocation 0 produces all 8 lines for accelerator 1.
    ASSERT_TRUE(plan.count(0));
    EXPECT_EQ(plan.at(0).size(), 8u);
    for (const auto &[line, hint] : plan.at(0)) {
        EXPECT_EQ(hint.consumer, 1);
        EXPECT_TRUE(hint.earlyOk); // compact store bursts
    }
    // The consumer's private stores have no next reader.
    EXPECT_FALSE(plan.count(1));
}

TEST(Analysis, NoForwardWithinOneAccelerator)
{
    Recorder rec("same");
    FuncId a = rec.addFunction({"a", 0, 2, 500});
    FuncId b = rec.addFunction({"b", 0, 2, 500}); // same accel!
    rec.beginInvocation(a);
    rec.store(0x1000, 8);
    rec.end();
    rec.beginInvocation(b);
    rec.load(0x1000, 8);
    rec.end();
    Program p = rec.take();
    EXPECT_TRUE(planForwarding(p).empty());
}

TEST(Analysis, NoForwardWhenConsumerWritesFirst)
{
    Recorder rec("wf");
    FuncId a = rec.addFunction({"a", 0, 2, 500});
    FuncId b = rec.addFunction({"b", 1, 2, 500});
    rec.beginInvocation(a);
    rec.store(0x1000, 8);
    rec.end();
    rec.beginInvocation(b);
    rec.store(0x1000, 8); // overwrites: no use forwarding
    rec.end();
    Program p = rec.take();
    EXPECT_TRUE(planForwarding(p).empty());
}

TEST(Analysis, ScatteredStoresAreNotEarlyForwardable)
{
    Recorder rec("sc");
    FuncId a = rec.addFunction({"a", 0, 2, 500});
    FuncId b = rec.addFunction({"b", 1, 2, 500});
    rec.beginInvocation(a);
    rec.store(0x1000, 8);
    for (int i = 0; i < 400; ++i)
        rec.load(0x8000 + 8u * i, 8); // long gap
    rec.store(0x1008, 8); // same line again, much later
    rec.end();
    rec.beginInvocation(b);
    rec.load(0x1000, 8);
    rec.end();
    Program p = rec.take();
    ForwardPlan plan = planForwarding(p);
    ASSERT_TRUE(plan.count(0));
    EXPECT_FALSE(plan.at(0).at(0x1000).earlyOk);
}

} // namespace
} // namespace fusion::trace
