/**
 * @file
 * Host L1 MESI controller tests: hit/miss state machine, upgrades,
 * evictions and forwarded-demand handling.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

namespace fusion
{
namespace
{

TEST(HostL1, LoadMissThenHit)
{
    test::L1Rig r;
    r.accessSync(0x1000, false);
    EXPECT_EQ(r.l1.misses(), 1u);
    EXPECT_EQ(r.l1.hits(), 0u);
    r.accessSync(0x1000, false);
    r.accessSync(0x1020, false); // same line
    EXPECT_EQ(r.l1.hits(), 2u);
    EXPECT_EQ(r.l1.misses(), 1u);
}

TEST(HostL1, SoleLoadGetsExclusiveSilentUpgrade)
{
    test::L1Rig r;
    r.accessSync(0x1000, false);
    // E state: a store hits without another coherence request.
    auto before = r.l1.misses();
    r.accessSync(0x1000, true);
    EXPECT_EQ(r.l1.misses(), before);
    EXPECT_TRUE(r.llc.isOwner(0, 0x1000));
}

TEST(HostL1, StoreMissTakesExclusive)
{
    test::L1Rig r;
    r.accessSync(0x2000, true);
    EXPECT_TRUE(r.llc.isOwner(0, 0x2000));
    r.accessSync(0x2000, false); // load hits the M line
    EXPECT_EQ(r.l1.hits(), 1u);
}

TEST(HostL1, CapacityEvictionWritesBackDirtyLine)
{
    host::HostL1Params p;
    p.capacityBytes = 2 * kLineBytes;
    p.assoc = 1; // two-set direct mapped
    test::L1Rig r(p);
    r.accessSync(0x0, true); // set 0, dirty
    r.accessSync(2 * kLineBytes, false); // set 0 again -> evict
    r.drain();
    // Ownership returned to the directory; LLC has the dirty data.
    EXPECT_FALSE(r.llc.isOwner(0, 0x0));
    EXPECT_TRUE(r.llc.tags().find(0x0)->dirty);
}

TEST(HostL1, CleanEvictionSendsNotice)
{
    host::HostL1Params p;
    p.capacityBytes = 2 * kLineBytes;
    p.assoc = 1;
    test::L1Rig r(p);
    r.accessSync(0x0, false);
    r.accessSync(2 * kLineBytes, false);
    r.drain();
    EXPECT_FALSE(r.llc.isOwner(0, 0x0));
    EXPECT_FALSE(r.llc.isSharer(0, 0x0));
}

TEST(HostL1, ConcurrentMissesToOneLineMerge)
{
    test::L1Rig r;
    int done = 0;
    r.l1.access(0x3000, false, [&] { ++done; });
    r.l1.access(0x3008, false, [&] { ++done; });
    r.l1.access(0x3010, false, [&] { ++done; });
    r.drain();
    EXPECT_EQ(done, 3);
    EXPECT_EQ(r.l1.misses(), 3u);
    // Only one LLC request was issued for the line.
    EXPECT_EQ(r.ctx.stats.root().child("llc").scalarValue(
                  "requests"),
              1.0);
}

TEST(HostL1, FlushAllReturnsEverything)
{
    test::L1Rig r;
    r.accessSync(0x1000, true);
    r.accessSync(0x2000, false);
    r.l1.flushAll();
    r.drain();
    EXPECT_FALSE(r.llc.isOwner(0, 0x1000));
    EXPECT_FALSE(r.llc.isOwner(0, 0x2000));
    // Next access misses again.
    auto before = r.l1.misses();
    r.accessSync(0x1000, false);
    EXPECT_EQ(r.l1.misses(), before + 1);
}

TEST(HostL1, TwoL1sPingPongALine)
{
    // Two MESI L1s exchanging a dirty line through the directory.
    test::HostRig base;
    interconnect::Link la(base.ctx,
                          interconnect::LinkParams{
                              "la", energy::LinkClass::HostL1ToL2,
                              2, "t.a", "t.a"});
    interconnect::Link lb(base.ctx,
                          interconnect::LinkParams{
                              "lb", energy::LinkClass::HostL1ToL2,
                              2, "t.b", "t.b"});
    host::HostL1Params pa, pb;
    pa.name = "l1a";
    pb.name = "l1b";
    host::HostL1 a(base.ctx, pa, base.llc, &la);
    host::HostL1 b(base.ctx, pb, base.llc, &lb);

    auto sync = [&](host::HostL1 &c, Addr addr, bool w) {
        bool done = false;
        c.access(addr, w, [&] { done = true; });
        base.ctx.eq.run();
        EXPECT_TRUE(done);
    };
    for (int round = 0; round < 4; ++round) {
        sync(a, 0x4000, true);
        sync(b, 0x4000, true);
    }
    // Ownership ends at b; a was invalidated each round.
    EXPECT_TRUE(base.llc.isOwner(1, 0x4000));
    EXPECT_FALSE(base.llc.isOwner(0, 0x4000));
    EXPECT_GE(base.llc.fwdsToAgent(0), 4u);
}

TEST(HostL1, SharedLoadThenUpgradeInvalidatesPeer)
{
    test::HostRig base;
    interconnect::Link la(base.ctx,
                          interconnect::LinkParams{
                              "la", energy::LinkClass::HostL1ToL2,
                              2, "t.a", "t.a"});
    interconnect::Link lb(base.ctx,
                          interconnect::LinkParams{
                              "lb", energy::LinkClass::HostL1ToL2,
                              2, "t.b", "t.b"});
    host::HostL1Params pa, pb;
    pa.name = "l1a";
    pb.name = "l1b";
    host::HostL1 a(base.ctx, pa, base.llc, &la);
    host::HostL1 b(base.ctx, pb, base.llc, &lb);
    auto sync = [&](host::HostL1 &c, Addr addr, bool w) {
        bool done = false;
        c.access(addr, w, [&] { done = true; });
        base.ctx.eq.run();
        EXPECT_TRUE(done);
    };
    sync(a, 0x5000, false);
    sync(b, 0x5000, false); // both sharers
    sync(a, 0x5000, true);  // upgrade
    EXPECT_TRUE(base.llc.isOwner(0, 0x5000));
    EXPECT_FALSE(base.llc.isSharer(1, 0x5000));
    // b's next load misses (its copy was invalidated).
    auto before = b.misses();
    sync(b, 0x5000, false);
    EXPECT_EQ(b.misses(), before + 1);
}

} // namespace
} // namespace fusion
