/**
 * @file
 * Unit tests for the reporting helpers and RunResult aggregates.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/reporters.hh"
#include "energy/energy_ledger.hh"

namespace fusion::core
{
namespace
{

TEST(Fmt, FixedDecimals)
{
    EXPECT_EQ(fmt(1.23456, 2), "1.23");
    EXPECT_EQ(fmt(1.0, 0), "1");
    EXPECT_EQ(fmtRatio(2.5), "2.50x");
}

TEST(TableWriter, AlignsColumnsAndRules)
{
    std::ostringstream os;
    TableWriter tw(os, {"a", "b"}, {4, 6});
    tw.row({"x", "y"});
    std::string out = os.str();
    EXPECT_NE(out.find("a    b"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
    EXPECT_NE(out.find("x    y"), std::string::npos);
}

RunResult
sampleResult()
{
    namespace c = energy::comp;
    RunResult r;
    r.energyPj[c::kAxcCompute] = 10;
    r.energyPj[c::kL0x] = 20;
    r.energyPj[c::kScratchpad] = 5;
    r.energyPj[c::kL1x] = 30;
    r.energyPj[c::kLlc] = 40;
    r.energyPj[c::kLinkL0xL1xMsg] = 1;
    r.energyPj[c::kLinkL0xL1xData] = 2;
    r.energyPj[c::kLinkL0xL0x] = 3;
    r.energyPj[c::kLinkL1xL2Msg] = 4;
    r.energyPj[c::kLinkL1xL2Data] = 5;
    r.energyPj[c::kDram] = 100;
    r.energyPj[c::kLinkLlcDram] = 10;
    r.energyPj[c::kAxTlb] = 0.5;
    return r;
}

TEST(RunResult, ComponentAndTotals)
{
    RunResult r = sampleResult();
    EXPECT_DOUBLE_EQ(r.component(energy::comp::kL0x), 20.0);
    EXPECT_DOUBLE_EQ(r.component("nope"), 0.0);
    EXPECT_DOUBLE_EQ(r.totalPj(), 230.5);
    EXPECT_DOUBLE_EQ(r.hierarchyPj(), 230.5 - 110.0);
    EXPECT_DOUBLE_EQ(r.axcCachePj(), 20 + 5 + 30);
    EXPECT_DOUBLE_EQ(r.axcLinkPj(), 1 + 2 + 3);
}

TEST(EnergyStack, PartitionsEveryComponent)
{
    RunResult r = sampleResult();
    EnergyStack s = energyStack(r);
    EXPECT_DOUBLE_EQ(s.axcComputePj, 10);
    EXPECT_DOUBLE_EQ(s.localStorePj, 25);
    EXPECT_DOUBLE_EQ(s.l1xPj, 30);
    EXPECT_DOUBLE_EQ(s.llcPj, 40);
    EXPECT_DOUBLE_EQ(s.tileLinkPj, 6);
    EXPECT_DOUBLE_EQ(s.hostLinkPj, 9);
    EXPECT_DOUBLE_EQ(s.dramPj, 110);
    EXPECT_DOUBLE_EQ(s.otherPj, 0.5);
    EXPECT_DOUBLE_EQ(s.total(), r.totalPj());
}

TEST(SystemKindNames, AllDistinct)
{
    EXPECT_STREQ(systemKindName(SystemKind::Scratch), "SCRATCH");
    EXPECT_STREQ(systemKindName(SystemKind::Shared), "SHARED");
    EXPECT_STREQ(systemKindName(SystemKind::Fusion), "FUSION");
    EXPECT_STREQ(systemKindName(SystemKind::FusionDx),
                 "FUSION-Dx");
    EXPECT_STREQ(systemKindShortName(SystemKind::Scratch), "SC");
    EXPECT_STREQ(systemKindShortName(SystemKind::FusionDx),
                 "FU-Dx");
}

} // namespace
} // namespace fusion::core
