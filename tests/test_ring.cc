/**
 * @file
 * Unit tests for the NUCA ring topology helper.
 */

#include <gtest/gtest.h>

#include "interconnect/ring.hh"

namespace fusion::interconnect
{
namespace
{

TEST(Ring, ShortestPathWrapsAround)
{
    Ring r(8, 2);
    EXPECT_EQ(r.hops(0, 0), 0u);
    EXPECT_EQ(r.hops(0, 3), 3u);
    EXPECT_EQ(r.hops(0, 4), 4u);
    EXPECT_EQ(r.hops(0, 5), 3u); // wraps
    EXPECT_EQ(r.hops(0, 7), 1u);
    EXPECT_EQ(r.hops(6, 1), 3u);
}

TEST(Ring, LatencyIsHopsTimesPerHop)
{
    Ring r(8, 2);
    EXPECT_EQ(r.latency(0, 4), 8u);
    EXPECT_EQ(r.latency(2, 2), 0u);
}

TEST(Ring, HomeNodeInterleavesByLine)
{
    Ring r(8, 2);
    EXPECT_EQ(r.homeNode(0), 0u);
    EXPECT_EQ(r.homeNode(kLineBytes), 1u);
    EXPECT_EQ(r.homeNode(8 * kLineBytes), 0u);
}

TEST(Ring, AverageLlcLatencyNearTable2)
{
    // Table 2: "avg. 20 cycles" to the NUCA LLC. The ring + bank
    // composition should land in that neighbourhood from the host
    // node: bank 12 + avg hops 2*2 + link 2 each way.
    Ring r(8, 2);
    double total = 0;
    for (std::uint32_t b = 0; b < 8; ++b)
        total += static_cast<double>(r.latency(0, b));
    double avg_ring = total / 8.0;
    double avg_llc = 12.0 + avg_ring + 2.0; // bank + ring + link
    EXPECT_GE(avg_llc, 15.0);
    EXPECT_LE(avg_llc, 25.0);
}

} // namespace
} // namespace fusion::interconnect
