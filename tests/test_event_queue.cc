/**
 * @file
 * Unit tests for the deterministic event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace fusion
{
namespace
{

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifoWithinPriority)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, MaintenancePriorityRunsFirstWithinTick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); },
                EventPriority::Default);
    eq.schedule(5, [&] { order.push_back(0); },
                EventPriority::Maintenance);
    eq.schedule(5, [&] { order.push_back(2); },
                EventPriority::Stats);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleIn(5, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 105u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 100)
            eq.scheduleIn(1, chain);
    };
    eq.scheduleIn(1, chain);
    eq.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, RunUntilStopsAtLimitInclusive)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(21, [&] { ++fired; });
    eq.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ExecutedCounterCounts)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(static_cast<Tick>(i), [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 5u);
}

TEST(EventQueue, ResetClearsState)
{
    EventQueue eq;
    eq.schedule(50, [] {});
    eq.runUntil(0);
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "schedule in the past");
}

} // namespace
} // namespace fusion
