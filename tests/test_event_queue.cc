/**
 * @file
 * Unit tests for the deterministic event queue.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <random>
#include <tuple>
#include <vector>

#include "sim/event_queue.hh"

namespace fusion
{
namespace
{

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifoWithinPriority)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, MaintenancePriorityRunsFirstWithinTick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); },
                EventPriority::Default);
    eq.schedule(5, [&] { order.push_back(0); },
                EventPriority::Maintenance);
    eq.schedule(5, [&] { order.push_back(2); },
                EventPriority::Stats);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleIn(5, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 105u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 100)
            eq.scheduleIn(1, chain);
    };
    eq.scheduleIn(1, chain);
    eq.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, RunUntilStopsAtLimitInclusive)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(21, [&] { ++fired; });
    eq.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ExecutedCounterCounts)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(static_cast<Tick>(i), [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 5u);
}

TEST(EventQueue, ResetClearsState)
{
    EventQueue eq;
    eq.schedule(50, [] {});
    eq.runUntil(0);
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "schedule in the past");
}

TEST(EventQueue, ResetAfterRunIsFullyReusable)
{
    EventQueue eq;
    int fired = 0;
    // Mix near (bucketed) and far (spilled) events, run past both,
    // then reset and verify the queue behaves like a fresh one.
    eq.schedule(3, [&] { ++fired; });
    eq.schedule(500, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 500u);

    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.executed(), 0u);
    EXPECT_EQ(eq.headTick(), kTickNever);

    // Ticks earlier than the pre-reset clock must be schedulable
    // again, and ordering must be intact.
    std::vector<int> order;
    eq.schedule(2, [&] { order.push_back(2); });
    eq.schedule(1, [&] { order.push_back(1); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.executed(), 2u);
}

TEST(EventQueue, FarFutureEventsSpillAndReturn)
{
    EventQueue eq;
    std::vector<Tick> seen;
    // Lease-expiry-like deltas far beyond the calendar window,
    // interleaved with near events, including two spilled events
    // landing on ticks that alias the same bucket slot.
    for (Tick t : {5000u, 3u, 70u, 5064u, 200u, 4999u})
        eq.schedule(t, [&, t] { seen.push_back(t); });
    eq.run();
    EXPECT_EQ(seen,
              (std::vector<Tick>{3, 70, 200, 4999, 5000, 5064}));
    EXPECT_EQ(eq.now(), 5064u);
}

TEST(EventQueue, HeadTickSeesBucketedAndSpilledEvents)
{
    EventQueue eq;
    EXPECT_EQ(eq.headTick(), kTickNever);
    eq.schedule(900, [] {}); // spill
    EXPECT_EQ(eq.headTick(), 900u);
    eq.schedule(7, [] {}); // bucket
    EXPECT_EQ(eq.headTick(), 7u);
    eq.step();
    EXPECT_EQ(eq.headTick(), 900u);
}

TEST(EventQueue, RunUntilParksBeforeFarFutureWork)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10'000, [&] { ++fired; });
    // The stop limit is far below the only pending event: the clock
    // must not jump past the limit chasing it.
    eq.runUntil(100);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_LE(eq.now(), 100u);
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 10'000u);
}

/**
 * Property test: random schedules (including same-tick bursts and
 * events scheduling events) must execute in exactly the order of a
 * reference stable sort by (when, priority, insertion seq).
 */
TEST(EventQueue, RandomizedOrderMatchesReferenceStableSort)
{
    std::mt19937 rng(0xf051u);
    std::uniform_int_distribution<int> pri_pick(0, 2);
    constexpr std::array<EventPriority, 3> kPris{
        EventPriority::Maintenance, EventPriority::Default,
        EventPriority::Stats};

    for (int round = 0; round < 20; ++round) {
        // Ref entry: (when, pri, insertion seq) — seq assigned in
        // schedule order, including runtime-scheduled events.
        struct Ref
        {
            Tick when;
            int pri;
            std::uint64_t seq;
        };
        std::vector<Ref> ref;
        std::vector<std::uint64_t> executed;
        EventQueue eq;
        std::uint64_t next_seq = 0;

        // Deltas start at 1: a runtime spawn at delta 0 with a
        // *lower* priority than the executing event would run after
        // it (the tick is already past that priority band), which a
        // plain sort of (when, pri, seq) cannot express.
        std::uniform_int_distribution<Tick> delta_pick(
            1, round % 2 ? 90 : 9000); // near-heavy and far-heavy
        std::function<void()> schedule_random = [&] {
            Tick when = eq.now() + delta_pick(rng);
            EventPriority pri = kPris[static_cast<std::size_t>(
                pri_pick(rng))];
            std::uint64_t seq = next_seq++;
            ref.push_back(Ref{when, static_cast<int>(pri), seq});
            bool spawn = (seq % 5) == 0; // events schedule events
            eq.schedule(
                when,
                [&, seq, spawn] {
                    executed.push_back(seq);
                    if (spawn && next_seq < 600)
                        schedule_random();
                },
                pri);
        };
        // 400 seeds over a small tick range: same-tick bursts are
        // guaranteed by pigeonhole; runtime spawns extend the tail.
        for (int i = 0; i < 400; ++i)
            schedule_random();
        eq.run();

        ASSERT_EQ(executed.size(), ref.size());
        std::stable_sort(ref.begin(), ref.end(),
                         [](const Ref &a, const Ref &b) {
                             return std::tie(a.when, a.pri, a.seq) <
                                    std::tie(b.when, b.pri, b.seq);
                         });
        for (std::size_t i = 0; i < ref.size(); ++i)
            ASSERT_EQ(executed[i], ref[i].seq)
                << "round " << round << " position " << i;
    }
}

TEST(InlineEvent, SmallCallablesAreStoredInline)
{
    std::array<std::uint64_t, 4> payload{1, 2, 3, 4}; // 32 bytes
    int hits = 0;
    InlineEvent ev([&hits, payload] { hits += payload[3]; });
    EXPECT_TRUE(static_cast<bool>(ev));
    EXPECT_TRUE(ev.isInline());
    ev();
    EXPECT_EQ(hits, 4);
}

TEST(InlineEvent, OversizedCallablesFallBackToHeap)
{
    std::array<std::uint64_t, 16> payload{}; // 128 bytes > inline
    payload[15] = 9;
    int hits = 0;
    InlineEvent ev([&hits, payload] {
        hits += static_cast<int>(payload[15]);
    });
    EXPECT_FALSE(ev.isInline());
    ev();
    EXPECT_EQ(hits, 9);
}

TEST(InlineEvent, MoveTransfersOwnership)
{
    int fired = 0;
    InlineEvent a([&fired] { ++fired; });
    InlineEvent b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(fired, 1);

    InlineEvent c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));
    c();
    EXPECT_EQ(fired, 2);
}

TEST(InlineEvent, DestructorRunsForBothStorageKinds)
{
    struct Probe
    {
        int *count;
        explicit Probe(int *c) : count(c) { ++*count; }
        Probe(const Probe &o) : count(o.count) { ++*count; }
        Probe(Probe &&o) noexcept : count(o.count)
        {
            o.count = nullptr;
        }
        ~Probe()
        {
            if (count)
                --*count;
        }
        void operator()() const {}
    };
    int live = 0;
    {
        InlineEvent small{Probe(&live)};
        std::array<char, 100> pad{};
        InlineEvent big{[p = Probe(&live), pad] { (void)pad; }};
        EXPECT_TRUE(small.isInline());
        EXPECT_FALSE(big.isInline());
        EXPECT_EQ(live, 2);
    }
    EXPECT_EQ(live, 0);
}

} // namespace
} // namespace fusion
