/**
 * @file
 * Unit tests for the AUTO-mode orchestrator (src/orchestrator/):
 * policy decisions under synthetic outlooks, the forced-mode
 * StaticBest path, bandit learning determinism, and the transition
 * machinery — a mode switch must emit exactly one flush/DMA
 * transition (one ModeSwitch span, one cost event, one energy
 * booking).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/runner.hh"
#include "core/system.hh"
#include "orchestrator/orchestrator.hh"
#include "orchestrator/policy.hh"

namespace fusion::orch
{
namespace
{

core::SystemConfig
autoConfig()
{
    return core::SystemConfig::preset(
        core::SystemConfig::Preset::Paper, core::SystemKind::Auto);
}

InvocationOutlook
outlook(std::uint64_t footprint_lines, double fwd_frac,
        double l0x_miss)
{
    InvocationOutlook o;
    o.func = 0;
    o.footprintLines = footprint_lines;
    o.forwardFraction = fwd_frac;
    o.l0xMissRate = l0x_miss;
    o.l1xMissRate = 0.0;
    return o;
}

// ---------------------------------------------------------------
// Policies under synthetic counters.
// ---------------------------------------------------------------

TEST(ThresholdPolicy, ForwardingHeavyOutlookPicksFusionDx)
{
    core::SystemConfig cfg = autoConfig();
    auto policy = makePolicy(cfg);
    // Forwarding fraction above the threshold dominates.
    EXPECT_EQ(policy->choose(outlook(64, 0.25, 0.0)),
              core::SystemKind::FusionDx);
}

TEST(ThresholdPolicy, StreamingOutlookPicksScratch)
{
    core::SystemConfig cfg = autoConfig();
    // Footprint must exceed scratchFootprintRatio * l1xBytes with a
    // thrashing L0X for the DMA organization to win.
    std::uint64_t big_lines =
        (cfg.l1xBytes / kLineBytes) *
            static_cast<std::uint64_t>(
                cfg.orchestrator.scratchFootprintRatio) *
            2;
    auto policy = makePolicy(cfg);
    EXPECT_EQ(policy->choose(outlook(big_lines, 0.0, 0.9)),
              core::SystemKind::Scratch);
    // Same footprint but the L0X still hits: stay cached.
    EXPECT_EQ(policy->choose(outlook(big_lines, 0.0, 0.1)),
              core::SystemKind::Fusion);
}

TEST(ThresholdPolicy, DefaultOutlookPicksFusion)
{
    core::SystemConfig cfg = autoConfig();
    auto policy = makePolicy(cfg);
    EXPECT_EQ(policy->choose(outlook(64, 0.0, 0.2)),
              core::SystemKind::Fusion);
}

TEST(StaticBestPolicy, AlwaysPicksForcedMode)
{
    core::SystemConfig cfg = autoConfig();
    cfg.orchestrator.policy = core::OrchPolicy::StaticBest;
    cfg.orchestrator.staticMode = core::SystemKind::Shared;
    auto policy = makePolicy(cfg);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(policy->choose(outlook(1u << i, 0.5, 0.9)),
                  core::SystemKind::Shared);
    }
}

TEST(EpsilonGreedyPolicy, ExploitsObservedCheapestMode)
{
    core::SystemConfig cfg = autoConfig();
    cfg.orchestrator.policy = core::OrchPolicy::EpsilonGreedy;
    cfg.orchestrator.epsilon = 0.0; // pure exploitation
    auto policy = makePolicy(cfg);
    InvocationOutlook o = outlook(64, 0.0, 0.2);

    // Unvisited: falls back to the threshold seed (FUSION here).
    EXPECT_EQ(policy->choose(o), core::SystemKind::Fusion);

    // Teach it that SHARED retires the same function far cheaper.
    policy->observe(o, {core::SystemKind::Fusion, 10000, 0.0});
    policy->observe(o, {core::SystemKind::Shared, 100, 0.0});
    EXPECT_EQ(policy->choose(o), core::SystemKind::Shared);
}

// ---------------------------------------------------------------
// Orchestrator mechanics.
// ---------------------------------------------------------------

TEST(Orchestrator, SwitchEmitsExactlyOneFlushTransition)
{
    trace::Program p =
        *core::buildProgram("adpcm", workloads::Scale::Small);
    core::SystemConfig cfg = autoConfig();

    SimContext ctx;
    obs::ObsConfig oc;
    oc.trace = true;
    ctx.obs.configure(oc);

    Orchestrator orch(ctx, cfg, p);

    const std::uint64_t flush_lines = 10;
    Tick fired_at = 0;
    orch.transition(core::SystemKind::Fusion,
                    core::SystemKind::Scratch, flush_lines,
                    [&] { fired_at = ctx.now(); });
    ctx.eq.run();

    // The continuation fires after the modeled flush cost.
    Tick want = cfg.orchestrator.switchFixedCycles +
                cfg.orchestrator.switchCyclesPerLine * flush_lines;
    EXPECT_EQ(fired_at, want);
    EXPECT_EQ(orch.switches(), 1u);

    // Exactly one ModeSwitch span spanning the flush.
    auto spans = ctx.obs.tracer()->sortedSpans();
    std::size_t n = 0;
    for (const auto &s : spans) {
        if (s.kind == obs::SpanKind::ModeSwitch) {
            ++n;
            EXPECT_EQ(s.end - s.begin, want);
        }
    }
    EXPECT_EQ(n, 1u);

    // The flush booked energy against its own component.
    auto comps = ctx.energy.components();
    ASSERT_TRUE(comps.count("orch.flush"));
    EXPECT_DOUBLE_EQ(comps.at("orch.flush"),
                     cfg.orchestrator.switchPjPerLine *
                         static_cast<double>(flush_lines));

    // Stats mirror the switch count.
    const auto &g = ctx.stats.root().children().at("orchestrator");
    EXPECT_EQ(g.scalarValue("switches"), 1.0);
    EXPECT_EQ(g.scalarValue("flush_lines"),
              static_cast<double>(flush_lines));
}

TEST(Orchestrator, DwellHysteresisDampsThrashing)
{
    trace::Program p =
        *core::buildProgram("adpcm", workloads::Scale::Small);
    core::SystemConfig cfg = autoConfig();
    cfg.orchestrator.minDwell = 1000; // never allowed to move
    SimContext ctx;
    Orchestrator orch(ctx, cfg, p);
    core::SystemKind first = orch.decide(0);
    for (std::size_t i = 1; i < p.invocations.size(); ++i)
        EXPECT_EQ(orch.decide(i), first) << "invocation " << i;
}

// ---------------------------------------------------------------
// End-to-end AUTO runs.
// ---------------------------------------------------------------

TEST(AutoMode, RunsToCompletionAndAccountsEveryInvocation)
{
    trace::Program p =
        *core::buildProgram("adpcm", workloads::Scale::Small);
    core::RunResult r = core::runProgram(autoConfig(), p);
    EXPECT_GT(r.totalCycles, 0u);
    EXPECT_EQ(r.kind, core::SystemKind::Auto);
    std::uint64_t accounted = 0;
    for (const auto &[mode, n] : r.modeInvocations)
        accounted += n;
    EXPECT_EQ(accounted, p.invocations.size());
}

TEST(AutoMode, StaticBestForcesEveryInvocationOntoOneMode)
{
    trace::Program p =
        *core::buildProgram("fft", workloads::Scale::Small);
    core::SystemConfig cfg = autoConfig();
    cfg.orchestrator.policy = core::OrchPolicy::StaticBest;
    cfg.orchestrator.staticMode = core::SystemKind::Shared;
    core::RunResult r = core::runProgram(cfg, p);
    ASSERT_EQ(r.modeInvocations.size(), 1u);
    EXPECT_EQ(r.modeInvocations.begin()->first, "shared");
    EXPECT_EQ(r.modeInvocations.begin()->second,
              p.invocations.size());
    EXPECT_EQ(r.modeSwitches, 0u);
}

TEST(AutoMode, DeterministicAcrossRuns)
{
    trace::Program p =
        *core::buildProgram("histogram", workloads::Scale::Small);
    core::SystemConfig cfg = autoConfig();
    cfg.orchestrator.policy = core::OrchPolicy::EpsilonGreedy;
    std::string a = core::runProgram(cfg, p).toJson();
    std::string b = core::runProgram(cfg, p).toJson();
    EXPECT_EQ(a, b);
}

TEST(AutoMode, RejectsOverlapInvocations)
{
    core::SystemConfig cfg = autoConfig();
    cfg.overlapInvocations = true;
    EXPECT_FALSE(cfg.validate().empty());
}

} // namespace
} // namespace fusion::orch
