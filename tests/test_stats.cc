/**
 * @file
 * Unit tests for the stats package.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/stats.hh"

namespace fusion::stats
{
namespace
{

TEST(Scalar, AccumulatesAndResets)
{
    Scalar s;
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Histogram, BucketsAndMoments)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.sample(i + 0.5);
    EXPECT_EQ(h.samples(), 10u);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
    EXPECT_DOUBLE_EQ(h.minValue(), 0.5);
    EXPECT_DOUBLE_EQ(h.maxValue(), 9.5);
    for (auto b : h.buckets())
        EXPECT_EQ(b, 1u);
}

TEST(Histogram, BucketBoundariesUnchangedByScalePrecompute)
{
    // Regression for the reciprocal-scale fast path in sample():
    // values exactly on bucket boundaries must land in the same
    // bucket the old divide produced, and values epsilon below a
    // boundary must stay one bucket lower.
    Histogram h(0.0, 64.0, 16); // width 4 — the in-tree shape
    for (int b = 0; b < 16; ++b)
        h.sample(b * 4.0); // boundary value opens bucket b
    for (std::size_t b = 0; b < 16; ++b)
        EXPECT_EQ(h.buckets()[b], 1u) << "bucket " << b;

    Histogram below(0.0, 64.0, 16);
    for (int b = 1; b < 16; ++b)
        below.sample(std::nextafter(b * 4.0, 0.0));
    for (std::size_t b = 0; b + 1 < 16; ++b)
        EXPECT_EQ(below.buckets()[b], 1u) << "bucket " << b;
    EXPECT_EQ(below.buckets()[15], 0u);

    // Non-power-of-two range where the scale is inexact.
    Histogram odd(0.0, 10.0, 10);
    for (int b = 0; b < 10; ++b)
        odd.sample(static_cast<double>(b));
    for (std::size_t b = 0; b < 10; ++b)
        EXPECT_EQ(odd.buckets()[b], 1u) << "bucket " << b;
}

TEST(Histogram, UnderAndOverflow)
{
    Histogram h(0.0, 10.0, 5);
    h.sample(-1.0);
    h.sample(10.0); // hi is exclusive
    h.sample(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
}

TEST(Histogram, PercentileInterpolatesWithinBuckets)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.sample(i + 0.5); // one sample per bucket
    // p0/p100 pin to the observed extremes.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.5);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 9.5);
    // Half the mass lies below 5.0 (buckets 0..4).
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 5.0);
    // p95 lands in the last bucket: rank 9.5 with 9 seen -> half way
    // through [9, 10), clamped to max 9.5.
    EXPECT_DOUBLE_EQ(h.percentile(95.0), 9.5);
    EXPECT_GE(h.percentile(99.0), h.percentile(95.0));
    // Monotone in p.
    for (int p = 10; p <= 100; p += 10)
        EXPECT_GE(h.percentile(p), h.percentile(p - 10));
}

TEST(Histogram, PercentileSingleSampleBucketReportsTheSample)
{
    // Interpolation is clamped to the observed extremes, so one
    // sample reports itself at every percentile rather than a
    // bucket-edge artifact.
    Histogram h(0.0, 64.0, 16);
    h.sample(7.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 7.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 7.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 7.0);
}

TEST(Histogram, PercentileHandlesUnderAndOverflowMass)
{
    Histogram h(0.0, 10.0, 5);
    h.sample(-1.0);
    h.sample(10.0);
    h.sample(100.0);
    // All mass is in the under/overflow bins; the estimate stays
    // inside [min, max] and is monotone.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), -1.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 100.0);
    double p50 = h.percentile(50.0);
    EXPECT_GE(p50, -1.0);
    EXPECT_LE(p50, 100.0);
    // The p50 rank (1.5 of 3) is half way through the overflow bin
    // spanning [10, 100].
    EXPECT_DOUBLE_EQ(p50, 32.5);
    // Pure-underflow percentiles interpolate over [min, lo).
    double p10 = h.percentile(10.0);
    EXPECT_GE(p10, -1.0);
    EXPECT_LE(p10, 0.0);
}

TEST(Histogram, PercentileEmptyAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0); // no samples
    h.sample(4.0);
    // Out-of-range p clamps instead of reading out of bounds.
    EXPECT_DOUBLE_EQ(h.percentile(-5.0), h.percentile(0.0));
    EXPECT_DOUBLE_EQ(h.percentile(250.0), h.percentile(100.0));
}

TEST(Group, ChildrenAreStable)
{
    Group g("root");
    Group &a = g.child("a");
    a.scalar("x") += 1;
    Group &a2 = g.child("a");
    EXPECT_EQ(&a, &a2);
    EXPECT_DOUBLE_EQ(a2.scalarValue("x"), 1.0);
}

TEST(Group, HasScalarAndPanicOnMissing)
{
    Group g("root");
    g.scalar("present") += 1;
    EXPECT_TRUE(g.hasScalar("present"));
    EXPECT_FALSE(g.hasScalar("absent"));
    EXPECT_DEATH(g.scalarValue("absent"), "no scalar");
}

TEST(Group, ResetIsRecursive)
{
    Group g("root");
    g.scalar("x") += 5;
    g.child("c").scalar("y") += 7;
    g.reset();
    EXPECT_DOUBLE_EQ(g.scalarValue("x"), 0.0);
    EXPECT_DOUBLE_EQ(g.child("c").scalarValue("y"), 0.0);
}

TEST(Registry, DumpContainsDottedPaths)
{
    Registry r;
    r.root().child("llc").scalar("hits") += 42;
    std::ostringstream os;
    r.dump(os);
    EXPECT_NE(os.str().find("sim.llc.hits 42"), std::string::npos);
}

} // namespace
} // namespace fusion::stats
