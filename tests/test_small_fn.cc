/**
 * @file
 * Unit tests for sim::SmallFn, the allocation-free move-only closure
 * used on every transaction path (DESIGN.md section 8).
 */

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>

#include "sim/small_fn.hh"

namespace fusion::sim
{
namespace
{

TEST(SmallFn, EmptyByDefault)
{
    SmallFn<void()> f;
    EXPECT_FALSE(f);
}

TEST(SmallFn, SmallCaptureIsInline)
{
    int hits = 0;
    SmallFn<void()> f = [&hits] { ++hits; };
    ASSERT_TRUE(f);
    EXPECT_TRUE(f.isInline());
    f();
    f();
    EXPECT_EQ(hits, 2);
}

TEST(SmallFn, ForwardsArgumentsAndReturn)
{
    SmallFn<int(int, int)> add = [](int a, int b) { return a + b; };
    EXPECT_EQ(add(2, 3), 5);
    int base = 10;
    SmallFn<int(int)> offset = [base](int x) { return base + x; };
    EXPECT_EQ(offset(7), 17);
}

TEST(SmallFn, MoveTransfersClosure)
{
    int hits = 0;
    SmallFn<void()> a = [&hits] { ++hits; };
    SmallFn<void()> b = std::move(a);
    EXPECT_FALSE(a); // NOLINT: moved-from must read empty
    ASSERT_TRUE(b);
    b();
    EXPECT_EQ(hits, 1);

    SmallFn<void()> c;
    c = std::move(b);
    EXPECT_FALSE(b); // NOLINT
    c();
    EXPECT_EQ(hits, 2);
}

TEST(SmallFn, HoldsMoveOnlyCapture)
{
    auto p = std::make_unique<int>(42);
    SmallFn<int()> f = [p = std::move(p)] { return *p; };
    EXPECT_EQ(f(), 42);
    SmallFn<int()> g = std::move(f);
    EXPECT_EQ(g(), 42);
}

TEST(SmallFn, OversizedCaptureGoesToSlab)
{
    std::array<std::uint64_t, 32> big{}; // 256 B > kInlineBytes
    big[0] = 7;
    big[31] = 9;
    SmallFn<std::uint64_t()> f = [big] { return big[0] + big[31]; };
    ASSERT_TRUE(f);
    EXPECT_FALSE(f.isInline());
    EXPECT_EQ(f(), 16u);
    // Heap-path moves hand over the block pointer.
    SmallFn<std::uint64_t()> g = std::move(f);
    EXPECT_FALSE(f); // NOLINT
    EXPECT_EQ(g(), 16u);
}

TEST(SmallFn, ResetDestroysCapture)
{
    auto alive = std::make_shared<int>(1);
    std::weak_ptr<int> watch = alive;
    SmallFn<void()> f = [keep = std::move(alive)] { (void)keep; };
    EXPECT_FALSE(watch.expired());
    f.reset();
    EXPECT_TRUE(watch.expired());
    EXPECT_FALSE(f);
}

TEST(SmallFn, DestructorReleasesOversizedCapture)
{
    auto alive = std::make_shared<int>(1);
    std::weak_ptr<int> watch = alive;
    {
        std::array<std::uint64_t, 32> pad{};
        SmallFn<void()> f = [keep = std::move(alive), pad] {
            (void)keep;
            (void)pad;
        };
        EXPECT_FALSE(f.isInline());
        EXPECT_FALSE(watch.expired());
    }
    EXPECT_TRUE(watch.expired());
}

TEST(SmallFn, ChainedContinuationRunsViaSlab)
{
    // The canonical transaction shape: a closure that carries a
    // moved-in downstream continuation. A whole SmallFn is wider
    // than the inline buffer, so the chain takes the slab path —
    // the point of the freelist is that this still costs no heap
    // allocation in steady state (asserted end-to-end by the
    // TxnBenchSmoke counting-allocator harness).
    int order = 0;
    SmallFn<void()> inner = [&order] { order = order * 10 + 2; };
    SmallFn<void()> outer = [&order,
                             inner = std::move(inner)]() mutable {
        order = order * 10 + 1;
        inner();
    };
    EXPECT_FALSE(outer.isInline());
    SmallFn<void()> moved = std::move(outer);
    EXPECT_FALSE(outer); // NOLINT
    moved();
    EXPECT_EQ(order, 12);
}

} // namespace
} // namespace fusion::sim
