/**
 * @file
 * Unit tests for the AX-TLB (Section 3.2 / Table 6).
 */

#include <gtest/gtest.h>

#include "vm/ax_tlb.hh"

namespace fusion::vm
{
namespace
{

struct TlbRig
{
    SimContext ctx;
    PageTable pt;
    AxTlbParams p;
    AxTlb tlb;

    explicit TlbRig(AxTlbParams params = {})
        : p(params), tlb(ctx, p, pt)
    {
    }

    Tick
    translateSync(Pid pid, Addr va, Addr *pa_out = nullptr)
    {
        Tick done_at = 0;
        tlb.translate(pid, va, [&](Addr pa) {
            done_at = ctx.now();
            if (pa_out)
                *pa_out = pa;
        });
        ctx.eq.run();
        return done_at;
    }
};

TEST(AxTlb, MissWalksThenHits)
{
    TlbRig r;
    r.pt.ensureMapped(1, 0x10000000);
    Addr pa1 = 0, pa2 = 0;
    Tick t1 = r.translateSync(1, 0x10000040, &pa1);
    EXPECT_EQ(t1, r.p.walkLatency);
    EXPECT_EQ(r.tlb.misses(), 1u);

    Tick t2 = r.translateSync(1, 0x10000080, &pa2);
    EXPECT_EQ(t2 - t1, r.p.hitLatency);
    EXPECT_EQ(r.tlb.misses(), 1u);
    EXPECT_EQ(r.tlb.lookups(), 2u);
    // Same page: same frame, offsets preserved.
    EXPECT_EQ(pa1 & ~Addr(kPageBytes - 1),
              pa2 & ~Addr(kPageBytes - 1));
}

TEST(AxTlb, TranslationMatchesPageTable)
{
    TlbRig r;
    r.pt.ensureMapped(1, 0x10002000);
    Addr pa = 0;
    r.translateSync(1, 0x10002123, &pa);
    EXPECT_EQ(pa, r.pt.translate(1, 0x10002123));
}

TEST(AxTlb, LruEvictionAtCapacity)
{
    AxTlbParams p;
    p.entries = 4;
    TlbRig r(p);
    for (Addr page = 0; page < 5; ++page)
        r.pt.ensureMapped(1, 0x10000000 + page * kPageBytes);
    // Fill 4 entries, then touch a 5th: the first should evict.
    for (Addr page = 0; page < 5; ++page)
        r.translateSync(1, 0x10000000 + page * kPageBytes);
    EXPECT_EQ(r.tlb.misses(), 5u);
    r.translateSync(1, 0x10000000); // page 0 was evicted
    EXPECT_EQ(r.tlb.misses(), 6u);
    r.translateSync(1, 0x10004000); // page 4 still resident
    EXPECT_EQ(r.tlb.misses(), 6u);
}

TEST(AxTlb, PidsDoNotAlias)
{
    TlbRig r;
    r.pt.ensureMapped(1, 0x10000000);
    r.pt.ensureMapped(2, 0x10000000);
    Addr pa1 = 0, pa2 = 0;
    r.translateSync(1, 0x10000000, &pa1);
    r.translateSync(2, 0x10000000, &pa2);
    EXPECT_NE(pa1, pa2);
    EXPECT_EQ(r.tlb.misses(), 2u);
}

TEST(AxTlb, EnergyBookedPerLookup)
{
    TlbRig r;
    r.pt.ensureMapped(1, 0x10000000);
    r.translateSync(1, 0x10000000);
    r.translateSync(1, 0x10000040);
    EXPECT_DOUBLE_EQ(r.ctx.energy.total(energy::comp::kAxTlb),
                     2 * r.p.lookupPj);
}

} // namespace
} // namespace fusion::vm
