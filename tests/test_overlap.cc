/**
 * @file
 * Tests for the dependence analysis and the overlapped invocation
 * scheduler.
 */

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "core/system.hh"
#include "trace/analysis.hh"
#include "trace/recorder.hh"

namespace fusion
{
namespace
{

/** inv0 writes A; inv1 reads A (RAW); inv2 touches B only. */
trace::Program
chainAndIndependent()
{
    trace::Recorder rec("dep");
    FuncId f0 = rec.addFunction({"w", 0, 2, 500});
    FuncId f1 = rec.addFunction({"r", 1, 2, 500});
    FuncId f2 = rec.addFunction({"x", 2, 2, 500});
    rec.beginInvocation(f0);
    for (int i = 0; i < 32; ++i)
        rec.store(0x1000 + 8u * i, 8);
    rec.end();
    rec.beginInvocation(f1);
    for (int i = 0; i < 32; ++i)
        rec.load(0x1000 + 8u * i, 8);
    rec.end();
    rec.beginInvocation(f2);
    for (int i = 0; i < 32; ++i)
        rec.load(0x8000 + 8u * i, 8);
    rec.end();
    return rec.take();
}

TEST(InvocationDeps, RawEdgeAndIndependence)
{
    trace::Program p = chainAndIndependent();
    auto deps = trace::invocationDependences(p);
    ASSERT_EQ(deps.size(), 3u);
    EXPECT_TRUE(deps[0].empty());
    EXPECT_EQ(deps[1], (std::vector<std::uint32_t>{0}));
    EXPECT_TRUE(deps[2].empty());
}

TEST(InvocationDeps, WawAndWarEdges)
{
    trace::Recorder rec("waw");
    FuncId f0 = rec.addFunction({"a", 0, 2, 500});
    FuncId f1 = rec.addFunction({"b", 1, 2, 500});
    FuncId f2 = rec.addFunction({"c", 2, 2, 500});
    // a writes X; b reads X; c writes X: c depends on both (WAW on
    // a, WAR on b).
    rec.beginInvocation(f0);
    rec.store(0x1000, 8);
    rec.end();
    rec.beginInvocation(f1);
    rec.load(0x1000, 8);
    rec.end();
    rec.beginInvocation(f2);
    rec.store(0x1000, 8);
    rec.end();
    auto deps = trace::invocationDependences(rec.take());
    EXPECT_EQ(deps[1], (std::vector<std::uint32_t>{0}));
    EXPECT_EQ(deps[2], (std::vector<std::uint32_t>{0, 1}));
}

TEST(InvocationDeps, ReadersDoNotDependOnEachOther)
{
    trace::Recorder rec("rr");
    FuncId f0 = rec.addFunction({"a", 0, 2, 500});
    FuncId f1 = rec.addFunction({"b", 1, 2, 500});
    rec.beginInvocation(f0);
    rec.load(0x1000, 8);
    rec.end();
    rec.beginInvocation(f1);
    rec.load(0x1000, 8);
    rec.end();
    auto deps = trace::invocationDependences(rec.take());
    EXPECT_TRUE(deps[0].empty());
    EXPECT_TRUE(deps[1].empty());
}

TEST(InvocationDeps, TransitiveRawThroughReaders)
{
    // W(0), R(1), R(2): both readers depend on the writer even
    // though they are not adjacent in the line's touch sequence.
    trace::Recorder rec("trans");
    FuncId f0 = rec.addFunction({"a", 0, 2, 500});
    FuncId f1 = rec.addFunction({"b", 1, 2, 500});
    FuncId f2 = rec.addFunction({"c", 2, 2, 500});
    rec.beginInvocation(f0);
    rec.store(0x1000, 8);
    rec.end();
    for (FuncId f : {f1, f2}) {
        rec.beginInvocation(f);
        rec.load(0x1000, 8);
        rec.end();
    }
    auto deps = trace::invocationDependences(rec.take());
    EXPECT_EQ(deps[1], (std::vector<std::uint32_t>{0}));
    EXPECT_EQ(deps[2], (std::vector<std::uint32_t>{0}));
}

TEST(Overlap, IndependentInvocationsRunConcurrently)
{
    trace::Program p = chainAndIndependent();
    core::SystemConfig serial = core::SystemConfig::preset(core::SystemConfig::Preset::Paper, 
        core::SystemKind::Fusion);
    core::SystemConfig overlap = serial;
    overlap.overlapInvocations = true;
    core::RunResult rs = core::runProgram(serial, p);
    core::RunResult ro = core::runProgram(overlap, p);
    EXPECT_LT(ro.accelCycles, rs.accelCycles);
    // Every invocation still ran exactly once.
    ASSERT_EQ(ro.invocationCycles.size(), 3u);
    for (auto c : ro.invocationCycles)
        EXPECT_GT(c, 0u);
}

TEST(Overlap, DependentChainStaysSerial)
{
    trace::Recorder rec("chain");
    FuncId f0 = rec.addFunction({"a", 0, 2, 500});
    FuncId f1 = rec.addFunction({"b", 1, 2, 500});
    rec.beginInvocation(f0);
    for (int i = 0; i < 16; ++i)
        rec.store(0x1000 + 8u * i, 8);
    rec.end();
    rec.beginInvocation(f1);
    for (int i = 0; i < 16; ++i)
        rec.load(0x1000 + 8u * i, 8);
    rec.end();
    trace::Program p = rec.take();

    core::SystemConfig serial = core::SystemConfig::preset(core::SystemConfig::Preset::Paper, 
        core::SystemKind::Fusion);
    core::SystemConfig overlap = serial;
    overlap.overlapInvocations = true;
    core::RunResult rs = core::runProgram(serial, p);
    core::RunResult ro = core::runProgram(overlap, p);
    EXPECT_EQ(ro.accelCycles, rs.accelCycles);
}

TEST(Overlap, SameAcceleratorSerializes)
{
    // Two independent invocations on ONE accelerator cannot
    // overlap: there is only one core.
    trace::Recorder rec("same");
    FuncId f0 = rec.addFunction({"a", 0, 2, 500});
    for (int inv = 0; inv < 2; ++inv) {
        rec.beginInvocation(f0);
        for (int i = 0; i < 16; ++i)
            rec.load(0x1000 + 0x2000u * inv + 8u * i, 8);
        rec.end();
    }
    trace::Program p = rec.take();
    core::SystemConfig overlap = core::SystemConfig::preset(core::SystemConfig::Preset::Paper, 
        core::SystemKind::Fusion);
    overlap.overlapInvocations = true;
    core::SystemConfig serial = core::SystemConfig::preset(core::SystemConfig::Preset::Paper, 
        core::SystemKind::Fusion);
    EXPECT_EQ(core::runProgram(overlap, p).accelCycles,
              core::runProgram(serial, p).accelCycles);
}

TEST(Overlap, ScratchIgnoresOverlapFlag)
{
    trace::Program p = chainAndIndependent();
    core::SystemConfig cfg = core::SystemConfig::preset(core::SystemConfig::Preset::Paper, 
        core::SystemKind::Scratch);
    cfg.overlapInvocations = true;
    core::SystemConfig serial = core::SystemConfig::preset(core::SystemConfig::Preset::Paper, 
        core::SystemKind::Scratch);
    EXPECT_EQ(core::runProgram(cfg, p).accelCycles,
              core::runProgram(serial, p).accelCycles);
}

TEST(Overlap, DeterministicAndCompleteOnRealWorkloads)
{
    for (const char *name : {"disparity", "susan"}) {
        trace::Program p = *core::buildProgram(
            name, workloads::Scale::Small);
        core::SystemConfig cfg = core::SystemConfig::preset(core::SystemConfig::Preset::Paper, 
            core::SystemKind::Fusion);
        cfg.overlapInvocations = true;
        core::RunResult a = core::runProgram(cfg, p);
        core::RunResult b = core::runProgram(cfg, p);
        EXPECT_EQ(a.accelCycles, b.accelCycles) << name;
        EXPECT_EQ(a.invocationCycles.size(),
                  p.invocations.size())
            << name;
        // Overlap never loses work: per-function cycle totals all
        // positive.
        for (const auto &[f, c] : a.funcCycles)
            EXPECT_GT(c, 0u) << name << ":" << f;
    }
}

TEST(Overlap, NeverSlowerThanSerial)
{
    for (const char *name : {"fft", "disparity", "histogram"}) {
        trace::Program p = *core::buildProgram(
            name, workloads::Scale::Small);
        core::SystemConfig serial = core::SystemConfig::preset(core::SystemConfig::Preset::Paper, 
            core::SystemKind::Fusion);
        core::SystemConfig overlap = serial;
        overlap.overlapInvocations = true;
        core::RunResult rs = core::runProgram(serial, p);
        core::RunResult ro = core::runProgram(overlap, p);
        // Tiny protocol-timing differences aside, overlap must not
        // hurt: allow 2% slack.
        EXPECT_LE(ro.accelCycles,
                  rs.accelCycles + rs.accelCycles / 50)
            << name;
    }
}

} // namespace
} // namespace fusion
