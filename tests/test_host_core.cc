/**
 * @file
 * Host core timing model tests.
 */

#include <gtest/gtest.h>

#include "host/host_core.hh"
#include "test_util.hh"

namespace fusion
{
namespace
{

struct CoreRig : test::L1Rig
{
    vm::PageTable pt;
    host::HostCore core;

    explicit CoreRig(host::HostCoreParams p = {})
        : core(ctx, p, l1, pt)
    {
    }

    Tick
    runSync(const std::vector<trace::TraceOp> &ops)
    {
        pt.ensureMappedRange(1, 0, 1 << 20);
        Tick t0 = ctx.now();
        bool done = false;
        core.run(ops, 1, [&] { done = true; });
        ctx.eq.run();
        EXPECT_TRUE(done);
        return ctx.now() - t0;
    }
};

TEST(HostCore, EmptyStreamCompletesImmediately)
{
    CoreRig r;
    EXPECT_EQ(r.runSync({}), 0u);
    EXPECT_FALSE(r.core.busy());
}

TEST(HostCore, ComputeBurstTakesWidthScaledCycles)
{
    CoreRig r;
    // 40 int ops at width 4 = 10 cycles.
    Tick t = r.runSync({trace::TraceOp::compute(40, 0)});
    EXPECT_EQ(t, 10u);
}

TEST(HostCore, MemoryOpsPipelineAtOnePerCycle)
{
    CoreRig r;
    std::vector<trace::TraceOp> ops;
    // Warm one line.
    ops.push_back(trace::TraceOp::load(0x100, 8));
    Tick t_one = r.runSync(ops);
    // 16 more loads to the same (now hot) line.
    ops.clear();
    for (int i = 0; i < 16; ++i)
        ops.push_back(trace::TraceOp::load(0x100, 8));
    Tick t = r.runSync(ops);
    // Hits pipeline: far less than 16 serial L1 latencies.
    EXPECT_LT(t, 16 * 4u);
    EXPECT_GT(t, 15u);
    (void)t_one;
}

TEST(HostCore, StoresDoNotBlockIssue)
{
    CoreRig r;
    // A cold store (long LLC+DRAM miss) followed by hot loads: the
    // loads must not wait for the store to complete.
    r.runSync({trace::TraceOp::load(0x200, 8)});
    std::vector<trace::TraceOp> ops;
    ops.push_back(trace::TraceOp::store(0x40000, 8)); // cold
    for (int i = 0; i < 8; ++i)
        ops.push_back(trace::TraceOp::load(0x200, 8)); // hot
    Tick t = r.runSync(ops);
    // Completion still waits for the store, but far less than
    // 8 serialized misses.
    EXPECT_LT(t, 2u * 400u);
    EXPECT_EQ(r.core.memOps(), 10u);
}

TEST(HostCore, LoadMlpBoundsOutstanding)
{
    host::HostCoreParams p;
    p.maxOutstanding = 1;
    CoreRig serial(p);
    host::HostCoreParams p2;
    p2.maxOutstanding = 8;
    CoreRig parallel(p2);

    std::vector<trace::TraceOp> ops;
    for (int i = 0; i < 16; ++i)
        ops.push_back(
            trace::TraceOp::load(0x1000 + 0x40u * i, 8)); // misses
    Tick ts = serial.runSync(ops);
    Tick tp = parallel.runSync(ops);
    EXPECT_LT(tp, ts);
}

TEST(HostCoreDeathTest, OverlappingRunsPanic)
{
    CoreRig r;
    r.pt.ensureMappedRange(1, 0, 1 << 20);
    std::vector<trace::TraceOp> ops{trace::TraceOp::load(0x100, 8)};
    r.core.run(ops, 1, [] {});
    EXPECT_DEATH(r.core.run(ops, 1, [] {}), "already running");
}

} // namespace
} // namespace fusion
