/**
 * @file
 * Unit tests for the bank-conflict scheduler.
 */

#include <gtest/gtest.h>

#include "mem/bank_scheduler.hh"

namespace fusion::mem
{
namespace
{

TEST(BankScheduler, IdleBankHasNoDelay)
{
    BankScheduler b(16, 1);
    EXPECT_EQ(b.reserve(0x0, 100), 0u);
    EXPECT_EQ(b.conflicts(), 0u);
}

TEST(BankScheduler, SameBankSameTickSerializes)
{
    BankScheduler b(16, 1);
    EXPECT_EQ(b.reserve(0x0, 100), 0u);
    // Same line -> same bank, still busy this cycle.
    EXPECT_EQ(b.reserve(0x0, 100), 1u);
    EXPECT_EQ(b.reserve(0x0, 100), 2u);
    EXPECT_EQ(b.conflicts(), 2u);
}

TEST(BankScheduler, DifferentBanksProceedInParallel)
{
    BankScheduler b(16, 1);
    for (Addr line = 0; line < 16; ++line)
        EXPECT_EQ(b.reserve(line * kLineBytes, 50), 0u);
    EXPECT_EQ(b.conflicts(), 0u);
}

TEST(BankScheduler, BankFreesAfterOccupancy)
{
    BankScheduler b(4, 3);
    EXPECT_EQ(b.reserve(0x0, 10), 0u); // busy until 13
    EXPECT_EQ(b.reserve(0x0, 13), 0u); // free again
    EXPECT_EQ(b.reserve(0x0, 14), 2u); // busy until 16
}

TEST(BankScheduler, LineInterleavingWraps)
{
    BankScheduler b(4, 1);
    EXPECT_EQ(b.bankOf(0), 0u);
    EXPECT_EQ(b.bankOf(kLineBytes), 1u);
    EXPECT_EQ(b.bankOf(4 * kLineBytes), 0u);
    EXPECT_EQ(b.bankOf(5 * kLineBytes + 8), 1u);
}

} // namespace
} // namespace fusion::mem
