/**
 * @file
 * Unit tests for per-process page tables and synonyms.
 */

#include <gtest/gtest.h>

#include "vm/page_table.hh"

namespace fusion::vm
{
namespace
{

TEST(PageTable, TranslationPreservesPageOffset)
{
    PageTable pt;
    pt.ensureMapped(1, 0x10000123);
    Addr pa = pt.translate(1, 0x10000123);
    EXPECT_EQ(pageOffset(pa), 0x123u);
}

TEST(PageTable, MappingIsIdempotent)
{
    PageTable pt;
    Addr p1 = pt.ensureMapped(1, 0x10000000);
    Addr p2 = pt.ensureMapped(1, 0x10000800); // same page
    EXPECT_EQ(p1, p2);
    EXPECT_EQ(pt.pageCount(), 1u);
}

TEST(PageTable, DistinctPagesGetDistinctFrames)
{
    PageTable pt;
    Addr p1 = pt.ensureMapped(1, 0x10000000);
    Addr p2 = pt.ensureMapped(1, 0x10001000);
    EXPECT_NE(p1, p2);
}

TEST(PageTable, PidsAreIsolated)
{
    PageTable pt;
    Addr p1 = pt.ensureMapped(1, 0x10000000);
    Addr p2 = pt.ensureMapped(2, 0x10000000);
    EXPECT_NE(p1, p2);
    EXPECT_TRUE(pt.mapped(1, 0x10000000));
    EXPECT_FALSE(pt.mapped(3, 0x10000000));
}

TEST(PageTable, RangeMappingCoversBothEnds)
{
    PageTable pt;
    pt.ensureMappedRange(1, 0x10000F00, 0x300); // straddles pages
    EXPECT_TRUE(pt.mapped(1, 0x10000F00));
    EXPECT_TRUE(pt.mapped(1, 0x10001000));
}

TEST(PageTable, DeterministicFrameAssignment)
{
    PageTable a, b;
    a.ensureMapped(1, 0x1000);
    a.ensureMapped(1, 0x5000);
    b.ensureMapped(1, 0x1000);
    b.ensureMapped(1, 0x5000);
    EXPECT_EQ(a.translate(1, 0x5010), b.translate(1, 0x5010));
}

TEST(PageTable, SynonymsShareThePhysicalPage)
{
    PageTable pt;
    pt.ensureMapped(1, 0x10000000);
    pt.alias(1, 0x20000000, 0x10000000);
    EXPECT_EQ(pt.translate(1, 0x20000040),
              pt.translate(1, 0x10000040));
}

TEST(PageTableDeathTest, UnmappedTranslationPanics)
{
    PageTable pt;
    EXPECT_DEATH(pt.translate(1, 0xBAD000), "unmapped");
}

TEST(PageTableDeathTest, AliasToUnmappedPanics)
{
    PageTable pt;
    EXPECT_DEATH(pt.alias(1, 0x2000, 0x1000), "not mapped");
}

} // namespace
} // namespace fusion::vm
