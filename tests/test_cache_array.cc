/**
 * @file
 * Unit + property tests for the set-associative CacheArray.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/cache_array.hh"
#include "sim/rng.hh"

namespace fusion::mem
{
namespace
{

CacheArray
make(std::uint64_t bytes = 4096, std::uint32_t assoc = 4)
{
    return CacheArray(CacheGeometry{bytes, assoc, kLineBytes});
}

TEST(CacheArray, GeometryDerivesSets)
{
    auto c = make(4096, 4);
    EXPECT_EQ(c.numSets(), 16u);
    EXPECT_EQ(c.assoc(), 4u);
}

TEST(CacheArray, MissThenInstallThenHit)
{
    auto c = make();
    EXPECT_EQ(c.find(0x1000), nullptr);
    CacheLine *way = c.victim(0x1000);
    ASSERT_NE(way, nullptr);
    c.install(*way, 0x1000);
    CacheLine *hit = c.find(0x1000);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->lineAddr, 0x1000u);
}

TEST(CacheArray, SubLineAddressesMatchTheLine)
{
    auto c = make();
    CacheLine *way = c.victim(0x1000);
    c.install(*way, 0x1000);
    EXPECT_NE(c.find(0x1004), nullptr);
    EXPECT_NE(c.find(0x103F), nullptr);
    EXPECT_EQ(c.find(0x1040), nullptr);
}

TEST(CacheArray, PidTagsDistinguishProcesses)
{
    auto c = make();
    CacheLine *w1 = c.victim(0x1000);
    c.install(*w1, 0x1000, /*pid=*/1);
    EXPECT_NE(c.find(0x1000, 1), nullptr);
    EXPECT_EQ(c.find(0x1000, 2), nullptr);
}

TEST(CacheArray, LruVictimIsLeastRecentlyTouched)
{
    auto c = make(4 * kLineBytes, 4); // one set
    Addr lines[4] = {0, 0x100, 0x200, 0x300};
    // All map to set 0 in a 1-set cache.
    for (Addr a : lines) {
        CacheLine *w = c.victim(a);
        c.install(*w, a);
    }
    // Touch all but lines[1].
    c.touch(*c.find(lines[0]));
    c.touch(*c.find(lines[2]));
    c.touch(*c.find(lines[3]));
    CacheLine *v = c.victim(0x400);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->lineAddr, lines[1]);
}

TEST(CacheArray, EvictablePredicateFiltersVictims)
{
    auto c = make(4 * kLineBytes, 4);
    for (Addr a : {Addr(0), Addr(0x100), Addr(0x200), Addr(0x300)}) {
        CacheLine *w = c.victim(a);
        c.install(*w, a);
        w->locked = true;
    }
    EXPECT_EQ(c.victim(0x400,
                       [](const CacheLine &l) { return !l.locked; }),
              nullptr);
    c.find(0x200)->locked = false;
    CacheLine *v = c.victim(
        0x400, [](const CacheLine &l) { return !l.locked; });
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->lineAddr, 0x200u);
}

TEST(CacheArray, InstallResetsMetadata)
{
    auto c = make();
    CacheLine *w = c.victim(0x1000);
    c.install(*w, 0x1000);
    w->dirty = true;
    w->ltime = 99;
    w->locked = true;
    c.install(*w, 0x2000);
    EXPECT_FALSE(w->dirty);
    EXPECT_FALSE(w->locked);
    EXPECT_EQ(w->ltime, 0u);
    EXPECT_EQ(w->lineAddr, 0x2000u);
}

TEST(CacheArray, InvalidateAllAndValidCount)
{
    auto c = make();
    for (Addr a = 0; a < 10 * kLineBytes; a += kLineBytes) {
        CacheLine *w = c.victim(a);
        c.install(*w, a);
    }
    EXPECT_EQ(c.validCount(), 10u);
    c.invalidateAll();
    EXPECT_EQ(c.validCount(), 0u);
}

TEST(CacheArray, ForEachValidInSetVisitsOnlyThatSet)
{
    auto c = make(4096, 4); // 16 sets
    // Set 3 lines: line number % 16 == 3.
    Addr a1 = 3ull * kLineBytes;
    Addr a2 = (3ull + 16) * kLineBytes;
    Addr other = 5ull * kLineBytes;
    for (Addr a : {a1, a2, other}) {
        CacheLine *w = c.victim(a);
        c.install(*w, a);
    }
    std::set<Addr> seen;
    c.forEachValidInSet(3, [&](CacheLine &l) {
        seen.insert(l.lineAddr);
    });
    EXPECT_EQ(seen, (std::set<Addr>{a1, a2}));
}

TEST(CacheArray, FifoEvictsOldestInstall)
{
    CacheArray c(CacheGeometry{4 * kLineBytes, 4, kLineBytes,
                               ReplPolicy::Fifo});
    Addr lines[4] = {0, 0x100, 0x200, 0x300};
    for (Addr a : lines) {
        CacheLine *w = c.victim(a);
        c.install(*w, a);
    }
    // Touching lines[0] must NOT save it under FIFO.
    c.touch(*c.find(lines[0]));
    CacheLine *v = c.victim(0x400);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->lineAddr, lines[0]);
}

TEST(CacheArray, RandomPolicyIsDeterministicAndValid)
{
    auto mk = [] {
        return CacheArray(CacheGeometry{4 * kLineBytes, 4,
                                        kLineBytes,
                                        ReplPolicy::Random});
    };
    auto c1 = mk();
    auto c2 = mk();
    std::vector<Addr> evicted1, evicted2;
    auto run = [](CacheArray &c, std::vector<Addr> &evicted) {
        for (Addr a = 0; a < 32 * 0x100; a += 0x100) {
            if (c.find(a))
                continue;
            CacheLine *w = c.victim(a);
            ASSERT_NE(w, nullptr);
            if (w->valid)
                evicted.push_back(w->lineAddr);
            c.install(*w, a);
        }
    };
    run(c1, evicted1);
    run(c2, evicted2);
    EXPECT_EQ(evicted1, evicted2); // reproducible
    EXPECT_EQ(evicted1.size(), 28u);
}

TEST(CacheArray, RandomPolicyRespectsEvictablePredicate)
{
    CacheArray c(CacheGeometry{4 * kLineBytes, 4, kLineBytes,
                               ReplPolicy::Random});
    for (Addr a : {Addr(0), Addr(0x100), Addr(0x200), Addr(0x300)}) {
        CacheLine *w = c.victim(a);
        c.install(*w, a);
        w->locked = (a != 0x200);
    }
    for (int i = 0; i < 16; ++i) {
        CacheLine *v = c.victim(
            0x400 + 0x100u * i,
            [](const CacheLine &l) { return !l.locked; });
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(v->lineAddr, 0x200u);
    }
}

/** Property: a direct-mapped cache of N sets keeps exactly the last
 *  line installed per set, whatever the access sequence. */
class CacheArrayProperty
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CacheArrayProperty, RandomizedInstallFindConsistency)
{
    Rng rng(GetParam());
    auto c = make(8192, 2);
    std::set<Addr> installed;
    for (int i = 0; i < 2000; ++i) {
        Addr a = lineAlign(rng.below(1 << 20));
        if (CacheLine *hit = c.find(a)) {
            // A hit must match the queried line exactly.
            EXPECT_EQ(hit->lineAddr, a);
            c.touch(*hit);
        } else {
            CacheLine *w = c.victim(a);
            ASSERT_NE(w, nullptr);
            c.install(*w, a);
        }
        // The line just accessed is always present afterwards.
        EXPECT_NE(c.find(a), nullptr);
        // Valid count never exceeds capacity.
        EXPECT_LE(c.validCount(),
                  c.geometry().capacityBytes / kLineBytes);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheArrayProperty,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234u));

} // namespace
} // namespace fusion::mem
