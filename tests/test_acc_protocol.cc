/**
 * @file
 * ACC protocol tests at the shared L1X: leases, write-epoch
 * locking, self-invalidation semantics, MEI integration with the
 * host directory (GTIME-delayed responses), the AX-TLB miss path
 * and AX-RMAP synonym filtering.
 */

#include <gtest/gtest.h>

#include "accel/tile.hh"
#include "test_util.hh"

namespace fusion
{
namespace
{

struct TileRig : test::HostRig
{
    vm::PageTable pt;
    accel::TileParams tp;
    std::unique_ptr<accel::FusionTile> tile;
    // A host-side L1 registered BEFORE the tile so the tile is
    // agent 1, as in the full system.
    interconnect::Link hostLink;
    host::HostL1 hostL1;

    explicit TileRig(accel::TileParams params = makeParams())
        : hostLink(ctx,
                   interconnect::LinkParams{
                       "hostl1_l2", energy::LinkClass::HostL1ToL2,
                       2, "t.h", "t.h"}),
          hostL1(ctx, host::HostL1Params{}, llc, &hostLink)
    {
        tp = params;
        tile = std::make_unique<accel::FusionTile>(ctx, tp, llc,
                                                   pt);
        pt.ensureMappedRange(1, 0x10000000, 1 << 20);
    }

    static accel::TileParams
    makeParams()
    {
        accel::TileParams p;
        p.numAccels = 2;
        return p;
    }

    /** Synchronous lease request straight at the L1X. */
    Tick
    leaseSync(AccelId who, Addr vline, Cycles lt, bool is_write,
              Tick *granted_end = nullptr)
    {
        bool done = false;
        Tick end = 0;
        tile->l1x().requestLease(
            who, vline, 1, lt, is_write, true,
            [&](const accel::LeaseGrant &g) {
                done = true;
                end = g.leaseEnd;
            });
        ctx.eq.run();
        EXPECT_TRUE(done);
        if (granted_end)
            *granted_end = end;
        return ctx.now();
    }

    void
    hostAccessSync(Addr pa, bool is_write)
    {
        bool done = false;
        hostL1.access(pa, is_write, [&] { done = true; });
        ctx.eq.run();
        EXPECT_TRUE(done);
    }
};

TEST(AccProtocol, ReadLeaseEndsAtNowPlusLt)
{
    TileRig r;
    Tick end = 0;
    r.tile->l1x().requestLease(
        0, 0x10000000, 1, 500, false, true,
        [&](const accel::LeaseGrant &g) { end = g.leaseEnd; });
    // Run only far enough to observe the grant.
    r.ctx.eq.run();
    EXPECT_GT(end, 0u);
    // The lease covers the request processing time + 500.
    EXPECT_LE(end, r.ctx.now() + 500);
}

TEST(AccProtocol, MissFetchesExclusively)
{
    TileRig r;
    r.leaseSync(0, 0x10000000, 500, false);
    Addr pa = r.pt.translate(1, 0x10000000);
    // The tile (agent 1) owns the line even for a *read* lease.
    EXPECT_TRUE(r.llc.isOwner(1, pa));
    EXPECT_EQ(r.tile->l1x().misses(), 1u);
}

TEST(AccProtocol, SecondLeaseHitsWithoutHostTraffic)
{
    TileRig r;
    r.leaseSync(0, 0x10000000, 500, false);
    double llc_reqs =
        r.ctx.stats.root().child("llc").scalarValue("requests");
    r.leaseSync(1, 0x10000000, 500, false); // other accelerator
    EXPECT_EQ(r.tile->l1x().hits(), 1u);
    EXPECT_DOUBLE_EQ(
        r.ctx.stats.root().child("llc").scalarValue("requests"),
        llc_reqs);
}

TEST(AccProtocol, ReadLeasesCoexist)
{
    TileRig r;
    int grants = 0;
    for (AccelId a : {0, 1}) {
        r.tile->l1x().requestLease(
            a, 0x10000000, 1, 500, false, true,
            [&](const accel::LeaseGrant &) { ++grants; });
    }
    r.ctx.eq.run();
    EXPECT_EQ(grants, 2);
}

TEST(AccProtocol, WriteEpochStallsReadersUntilWriteback)
{
    TileRig r;
    Tick wend = 0;
    r.leaseSync(0, 0x10000000, 500, true, &wend);

    // A reader must stall until the epoch expires AND the dirty
    // writeback arrives.
    bool granted = false;
    r.tile->l1x().requestLease(
        1, 0x10000000, 1, 500, false, true,
        [&](const accel::LeaseGrant &) { granted = true; });
    r.ctx.eq.run();
    // Without a writeback the reader is still stalled.
    EXPECT_FALSE(granted);

    // The producer's self-downgrade writeback releases it.
    r.tile->l1x().writeback(0, 0x10000000, 1);
    r.ctx.eq.run();
    EXPECT_TRUE(granted);
}

TEST(AccProtocol, WritebackMarksLineDirtyAtL1x)
{
    TileRig r;
    r.leaseSync(0, 0x10000000, 500, true);
    r.tile->l1x().writeback(0, 0x10000000, 1);
    r.ctx.eq.run();
    // Host load now forwards to the tile and gets dirty data: the
    // LLC frame ends up dirty.
    Addr pa = r.pt.translate(1, 0x10000000);
    r.hostAccessSync(pa, false);
    EXPECT_TRUE(r.llc.tags().find(pa)->dirty);
}

TEST(AccProtocol, HostDemandStallsUntilGtime)
{
    TileRig r;
    Tick end = 0;
    r.leaseSync(0, 0x10000000, 800, false, &end);
    Addr pa = r.pt.translate(1, 0x10000000);

    // Host store: the directory forwards to the tile; the response
    // (eviction notice) must wait for GTIME expiry (Figure 4).
    Tick t0 = r.ctx.now();
    r.hostAccessSync(pa, true);
    EXPECT_GE(r.ctx.now(), end);
    EXPECT_GT(r.ctx.now(), t0);
    EXPECT_EQ(r.tile->rmap().lookups(), 1u);
    // The tile relinquished the line.
    EXPECT_TRUE(r.llc.isOwner(0, pa));
}

TEST(AccProtocol, ExpiredGtimeRespondsImmediately)
{
    TileRig r;
    Tick end = 0;
    r.leaseSync(0, 0x10000000, 100, false, &end);
    // Let the lease expire by scheduling idle time.
    r.ctx.eq.schedule(end + 500, [] {});
    r.ctx.eq.run();
    Addr pa = r.pt.translate(1, 0x10000000);
    Tick t0 = r.ctx.now();
    r.hostAccessSync(pa, true);
    // No GTIME wait: just the protocol round trips.
    EXPECT_LT(r.ctx.now() - t0, 100u);
}

TEST(AccProtocol, HostDemandForUncachedLineMissesRmap)
{
    TileRig r;
    r.leaseSync(0, 0x10000000, 500, false);
    // Host touches a line the tile never cached.
    Addr pa = r.pt.translate(1, 0x10040000);
    r.hostAccessSync(pa, true);
    // The forward never reaches the tile (directory is precise), so
    // the RMAP is not probed.
    EXPECT_EQ(r.tile->rmap().lookups(), 0u);
}

TEST(AccProtocol, TlbSitsOnTheMissPathOnly)
{
    TileRig r;
    r.leaseSync(0, 0x10000000, 500, false);
    r.leaseSync(1, 0x10000000, 500, false);
    r.leaseSync(0, 0x10000000, 500, false);
    // Three lease requests, one L1X miss -> exactly one TLB lookup
    // (Section 3.2: translation off the critical path).
    EXPECT_EQ(r.tile->tlb().lookups(), 1u);
}

TEST(AccProtocol, LeasedLinesAreNotEvictable)
{
    accel::TileParams p = TileRig::makeParams();
    p.l1x.capacityBytes = 2 * kLineBytes;
    p.l1x.assoc = 1; // 2 sets
    TileRig r(p);
    // Lease line A (set 0) with a long lease.
    Tick endA = 0;
    r.leaseSync(0, 0x10000000, 5000, false, &endA);
    // Request a conflicting line (same set): the fill must wait for
    // A's lease to expire before stealing the frame.
    Tick t = r.leaseSync(0, 0x10000080, 300, false);
    EXPECT_GE(t, endA);
    EXPECT_GT(r.ctx.stats.root().child("l1x").scalarValue(
                  "frame_retries"),
              0.0);
}

TEST(AccProtocol, EvictionWritesBackDirtyLines)
{
    accel::TileParams p = TileRig::makeParams();
    p.l1x.capacityBytes = 2 * kLineBytes;
    p.l1x.assoc = 1;
    TileRig r(p);
    Tick wend = 0;
    r.leaseSync(0, 0x10000000, 100, true, &wend);
    r.tile->l1x().writeback(0, 0x10000000, 1);
    r.ctx.eq.run();
    // Conflict-evict the dirty line after its lease expires.
    r.leaseSync(0, 0x10000080, 100, false);
    r.drain();
    Addr pa = r.pt.translate(1, 0x10000000);
    // The LLC received the dirty writeback (PUTX).
    EXPECT_FALSE(r.llc.isOwner(1, pa));
    EXPECT_TRUE(r.llc.tags().find(pa)->dirty);
}

TEST(AccProtocol, SynonymDuplicateIsEvicted)
{
    TileRig r;
    // Map a synonym: two VAs, one PA.
    r.pt.alias(1, 0x20000000, 0x10000000);
    r.leaseSync(0, 0x10000000, 500, false);
    r.leaseSync(0, 0x20000000, 500, false);
    // Only one synonym may stay resident (Appendix).
    EXPECT_DOUBLE_EQ(r.ctx.stats.root()
                         .child("l1x")
                         .scalarValue("synonym_evictions"),
                     1.0);
    EXPECT_EQ(r.tile->rmap().size(), 1u);
}

TEST(AccProtocol, LeaseTransferLocksUntilConsumerWriteback)
{
    TileRig r;
    r.leaseSync(0, 0x10000000, 100, false);
    // Simulate a FUSION-Dx dirty transfer to accel 1 ending later.
    Tick end = r.ctx.now() + 400;
    r.tile->l1x().leaseTransfer(0x10000000, 1, end, true);
    bool granted = false;
    r.tile->l1x().requestLease(
        0, 0x10000000, 1, 100, false, true,
        [&](const accel::LeaseGrant &) { granted = true; });
    r.ctx.eq.run();
    EXPECT_FALSE(granted); // locked
    r.tile->l1x().writeback(1, 0x10000000, 1);
    r.ctx.eq.run();
    EXPECT_TRUE(granted);
}

TEST(AccProtocol, CleanLeaseTransferDoesNotLock)
{
    TileRig r;
    r.leaseSync(0, 0x10000000, 100, false);
    r.tile->l1x().leaseTransfer(0x10000000, 1,
                                r.ctx.now() + 400, false);
    bool granted = false;
    r.tile->l1x().requestLease(
        0, 0x10000000, 1, 100, false, true,
        [&](const accel::LeaseGrant &) { granted = true; });
    r.ctx.eq.run();
    EXPECT_TRUE(granted);
}

TEST(AccProtocol, WriteThroughStoreDirtiesL1x)
{
    TileRig r;
    r.leaseSync(0, 0x10000000, 500, false);
    r.tile->l1x().writeThroughStore(0, 0x10000000, 1);
    r.ctx.eq.run();
    Addr pa = r.pt.translate(1, 0x10000000);
    r.hostAccessSync(pa, false);
    EXPECT_TRUE(r.llc.tags().find(pa)->dirty);
}

} // namespace
} // namespace fusion
