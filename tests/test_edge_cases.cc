/**
 * @file
 * Edge-case battery: degenerate programs and extreme configurations
 * must neither deadlock nor corrupt accounting.
 */

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "core/system.hh"
#include "trace/analysis.hh"
#include "trace/recorder.hh"

namespace fusion::core
{
namespace
{

std::vector<SystemKind>
allKinds()
{
    return {SystemKind::Scratch, SystemKind::Shared,
            SystemKind::Fusion, SystemKind::FusionDx};
}

trace::Program
emptyInvocationProgram()
{
    trace::Recorder rec("empty");
    FuncId f = rec.addFunction({"nop", 0, 2, 500});
    rec.beginInvocation(f);
    rec.end();
    return rec.take();
}

TEST(EdgeCases, EmptyInvocationCompletesEverywhere)
{
    trace::Program p = emptyInvocationProgram();
    for (auto k : allKinds()) {
        RunResult r = runProgram(SystemConfig::preset(SystemConfig::Preset::Paper, k), p);
        EXPECT_EQ(r.funcCycles.at("nop"), 0u);
    }
}

TEST(EdgeCases, ComputeOnlyInvocation)
{
    trace::Recorder rec("compute");
    FuncId f = rec.addFunction({"calc", 0, 2, 500});
    rec.beginInvocation(f);
    rec.intOps(400);
    rec.fpOps(40);
    rec.end();
    trace::Program p = rec.take();
    for (auto k : allKinds()) {
        RunResult r = runProgram(SystemConfig::preset(SystemConfig::Preset::Paper, k), p);
        // 440 ops at width 4 = 110 cycles, identical on every
        // system (no memory).
        EXPECT_EQ(r.funcCycles.at("calc"), 110u) << int(k);
    }
}

TEST(EdgeCases, StoreOnlyInvocation)
{
    trace::Recorder rec("st");
    FuncId f = rec.addFunction({"wr", 0, 2, 500});
    rec.beginInvocation(f);
    for (int i = 0; i < 64; ++i)
        rec.store(0x1000 + 8u * i, 8);
    rec.end();
    trace::Program p = rec.take();
    for (auto k : allKinds()) {
        RunResult r = runProgram(SystemConfig::preset(SystemConfig::Preset::Paper, k), p);
        EXPECT_GT(r.funcCycles.at("wr"), 0u);
        if (k == SystemKind::Scratch) {
            // Write-only windows DMA nothing in, everything out.
            EXPECT_EQ(r.dmaBytes, 8u * kLineBytes);
        }
    }
}

TEST(EdgeCases, SingleAcceleratorProgram)
{
    trace::Recorder rec("solo");
    FuncId f = rec.addFunction({"only", 0, 1, 100});
    for (int round = 0; round < 3; ++round) {
        rec.beginInvocation(f);
        for (int i = 0; i < 32; ++i)
            rec.load(0x1000 + 8u * i, 8);
        rec.end();
    }
    trace::Program p = rec.take();
    EXPECT_EQ(p.accelCount(), 1u);
    for (auto k : allKinds()) {
        RunResult r = runProgram(SystemConfig::preset(SystemConfig::Preset::Paper, k), p);
        EXPECT_GT(r.accelCycles, 0u);
    }
}

TEST(EdgeCases, DirectMappedTinyL0x)
{
    trace::Program p =
        *core::buildProgram("adpcm", workloads::Scale::Small);
    SystemConfig cfg = SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion);
    cfg.l0xBytes = 256; // 4 lines
    cfg.l0xAssoc = 1;
    RunResult r = runProgram(cfg, p);
    EXPECT_GT(r.accelCycles, 0u);
    EXPECT_GT(r.l0xFills, 100u); // thrashes but stays correct
}

TEST(EdgeCases, TinyL1xUnderLeasePressure)
{
    trace::Program p =
        *core::buildProgram("adpcm", workloads::Scale::Small);
    SystemConfig cfg = SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion);
    cfg.l1xBytes = 1024; // 16 lines, 8-way: 2 sets
    RunResult r = runProgram(cfg, p);
    EXPECT_GT(r.accelCycles, 0u);
    EXPECT_GT(r.l1xMisses, 20u);
}

TEST(EdgeCases, TinyScratchpadManyWindows)
{
    trace::Program p =
        *core::buildProgram("filter", workloads::Scale::Small);
    SystemConfig cfg = SystemConfig::preset(SystemConfig::Preset::Paper, 
        SystemKind::Scratch);
    cfg.scratchpadBytes = 256; // 4 lines per window
    RunResult r = runProgram(cfg, p);
    EXPECT_GT(r.dmaOps, 20u);
    EXPECT_GT(r.accelCycles, 0u);
}

TEST(EdgeCases, WriteThroughComposesWithDx)
{
    trace::Program p = *core::buildProgram("fft", workloads::Scale::Small);
    SystemConfig cfg = SystemConfig::preset(SystemConfig::Preset::Paper, 
        SystemKind::FusionDx);
    cfg.l0xWriteThrough = true;
    RunResult r = runProgram(cfg, p);
    EXPECT_GT(r.accelCycles, 0u);
    // Write-through leaves nothing dirty to forward.
    EXPECT_EQ(r.l0xWritebacks, 0u);
}

TEST(EdgeCases, ExtremeLeaseLengthsComplete)
{
    trace::Program p = *core::buildProgram("susan", workloads::Scale::Small);
    for (Cycles lt : {Cycles(1), Cycles(1u << 20)}) {
        trace::Program q = p;
        for (auto &f : q.functions)
            f.leaseTime = lt;
        RunResult r = runProgram(
            SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion), q);
        EXPECT_GT(r.accelCycles, 0u) << lt;
    }
}

TEST(EdgeCases, MlpOneIsFullySerial)
{
    trace::Program p = *core::buildProgram("adpcm", workloads::Scale::Small);
    trace::Program serial = p;
    for (auto &f : serial.functions)
        f.mlp = 1;
    RunResult r1 = runProgram(
        SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion), serial);
    RunResult r8 = runProgram(
        SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion), p);
    EXPECT_GE(r1.accelCycles, r8.accelCycles);
}

TEST(EdgeCases, LargeScaleBuildsAndFootprintsGrow)
{
    auto w = workloads::makeWorkload("filter");
    auto small = w->build(workloads::Scale::Small);
    auto paper = w->build(workloads::Scale::Paper);
    auto large = w->build(workloads::Scale::Large);
    EXPECT_LT(trace::footprintLines(small),
              trace::footprintLines(paper));
    EXPECT_LT(trace::footprintLines(paper),
              trace::footprintLines(large));
}

} // namespace
} // namespace fusion::core
