/**
 * @file
 * Trace recorder + Traced<> instrumentation tests.
 */

#include <gtest/gtest.h>

#include "trace/recorder.hh"

namespace fusion::trace
{
namespace
{

TEST(VaAllocator, PageAlignedBump)
{
    VaAllocator va(0x10000000);
    Addr a = va.allocate(100);
    Addr b = va.allocate(5000);
    Addr c = va.allocate(1);
    EXPECT_EQ(a, 0x10000000u);
    EXPECT_EQ(b, 0x10001000u); // 100 rounds to one page
    EXPECT_EQ(c, 0x10003000u); // 5000 rounds to two pages
}

TEST(Recorder, PhasesRouteOpsToTheRightStreams)
{
    Recorder rec("t");
    FuncId f = rec.addFunction({"f", 0, 2, 500});
    rec.beginHostInit();
    rec.store(0x100, 64);
    rec.end();
    rec.beginInvocation(f);
    rec.load(0x200, 4);
    rec.end();
    rec.beginHostFinal();
    rec.load(0x100, 64);
    rec.end();

    Program p = rec.take();
    ASSERT_EQ(p.hostInit.size(), 1u);
    EXPECT_EQ(p.hostInit[0].kind, OpKind::Store);
    ASSERT_EQ(p.invocations.size(), 1u);
    ASSERT_EQ(p.invocations[0].ops.size(), 1u);
    EXPECT_EQ(p.invocations[0].ops[0].addr, 0x200u);
    ASSERT_EQ(p.hostFinal.size(), 1u);
}

TEST(Recorder, ComputeOpsCoalesceUntilNextMemOp)
{
    Recorder rec("t");
    FuncId f = rec.addFunction({"f", 0, 2, 500});
    rec.beginInvocation(f);
    rec.intOps(3);
    rec.fpOps(2);
    rec.intOps(5);
    rec.load(0x100, 4);
    rec.intOps(1);
    rec.end(); // flushes the trailing burst

    Program p = rec.take();
    const auto &ops = p.invocations[0].ops;
    ASSERT_EQ(ops.size(), 3u);
    EXPECT_EQ(ops[0].kind, OpKind::Compute);
    EXPECT_EQ(ops[0].intOps, 8u);
    EXPECT_EQ(ops[0].fpOps, 2u);
    EXPECT_EQ(ops[1].kind, OpKind::Load);
    EXPECT_EQ(ops[2].kind, OpKind::Compute);
    EXPECT_EQ(ops[2].intOps, 1u);
}

TEST(Recorder, MultipleInvocationsKeepProgramOrder)
{
    Recorder rec("t");
    FuncId f0 = rec.addFunction({"f0", 0, 2, 500});
    FuncId f1 = rec.addFunction({"f1", 1, 2, 500});
    for (FuncId f : {f0, f1, f0}) {
        rec.beginInvocation(f);
        rec.load(0x100, 4);
        rec.end();
    }
    Program p = rec.take();
    ASSERT_EQ(p.invocations.size(), 3u);
    EXPECT_EQ(p.invocations[0].func, f0);
    EXPECT_EQ(p.invocations[1].func, f1);
    EXPECT_EQ(p.invocations[2].func, f0);
    EXPECT_EQ(p.accelCount(), 2u);
}

TEST(Traced, ReadsAndWritesAreRecordedWithAddresses)
{
    Recorder rec("t");
    VaAllocator va;
    FuncId f = rec.addFunction({"f", 0, 2, 500});
    Traced<int> arr(rec, va, 16);
    rec.beginInvocation(f);
    arr[3] = 42;
    int v = arr[3];
    rec.end();
    EXPECT_EQ(v, 42);
    Program p = rec.take();
    const auto &ops = p.invocations[0].ops;
    ASSERT_EQ(ops.size(), 2u);
    EXPECT_EQ(ops[0].kind, OpKind::Store);
    EXPECT_EQ(ops[0].addr, arr.baseVa() + 3 * sizeof(int));
    EXPECT_EQ(ops[0].size, sizeof(int));
    EXPECT_EQ(ops[1].kind, OpKind::Load);
}

TEST(Traced, CompoundAssignRecordsLoadAndStore)
{
    Recorder rec("t");
    VaAllocator va;
    FuncId f = rec.addFunction({"f", 0, 2, 500});
    Traced<int> arr(rec, va, 4);
    arr.poke(0, 10);
    rec.beginInvocation(f);
    arr[0] += 5;
    rec.end();
    EXPECT_EQ(arr.peek(0), 15);
    Program p = rec.take();
    ASSERT_EQ(p.invocations[0].ops.size(), 2u);
    EXPECT_EQ(p.invocations[0].ops[0].kind, OpKind::Load);
    EXPECT_EQ(p.invocations[0].ops[1].kind, OpKind::Store);
}

TEST(Traced, PeekPokeAreUntraced)
{
    Recorder rec("t");
    VaAllocator va;
    FuncId f = rec.addFunction({"f", 0, 2, 500});
    Traced<float> arr(rec, va, 8);
    rec.beginInvocation(f);
    arr.poke(1, 2.5f);
    EXPECT_FLOAT_EQ(arr.peek(1), 2.5f);
    rec.end();
    Program p = rec.take();
    EXPECT_TRUE(p.invocations[0].ops.empty());
}

TEST(Traced, HostTouchArrayCoversEveryLine)
{
    Recorder rec("t");
    VaAllocator va;
    Traced<int> arr(rec, va, 64); // 256 bytes = 4 lines
    rec.beginHostInit();
    hostTouchArray(rec, arr, true);
    rec.end();
    Program p = rec.take();
    EXPECT_EQ(p.hostInit.size(), 4u);
    for (const auto &op : p.hostInit)
        EXPECT_EQ(op.kind, OpKind::Store);
}

TEST(TracedDeathTest, OutOfBoundsPanics)
{
    Recorder rec("t");
    VaAllocator va;
    FuncId f = rec.addFunction({"f", 0, 2, 500});
    Traced<int> arr(rec, va, 4);
    rec.beginInvocation(f);
    EXPECT_DEATH(arr.read(4), "OOB");
}

TEST(RecorderDeathTest, OpsOutsidePhasesPanic)
{
    Recorder rec("t");
    EXPECT_DEATH(rec.load(0x100, 4), "outside any phase");
}

TEST(RecorderDeathTest, NestedPhasesPanic)
{
    Recorder rec("t");
    rec.beginHostInit();
    EXPECT_DEATH(rec.beginHostFinal(), "not idle");
}

} // namespace
} // namespace fusion::trace
