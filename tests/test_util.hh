/**
 * @file
 * Shared fixtures/helpers for the FUSION test suite.
 */

#ifndef FUSION_TESTS_TEST_UTIL_HH
#define FUSION_TESTS_TEST_UTIL_HH

#include <memory>

#include "host/host_l1.hh"
#include "host/llc.hh"
#include "mem/dram.hh"
#include "sim/sim_context.hh"
#include "vm/page_table.hh"

namespace fusion::test
{

/** A minimal host tile: DRAM + LLC, ready for agents. */
struct HostRig
{
    SimContext ctx;
    mem::Dram dram;
    host::Llc llc;

    explicit HostRig(host::LlcParams lp = {},
                     mem::DramParams dp = {})
        : dram(ctx, dp), llc(ctx, lp, dram)
    {
    }

    /** Run the event queue dry. */
    void drain() { ctx.eq.run(); }
};

/** A host rig plus one MESI L1 and its link. */
struct L1Rig : HostRig
{
    interconnect::Link link;
    host::HostL1 l1;

    explicit L1Rig(host::HostL1Params p = {})
        : link(ctx,
               interconnect::LinkParams{
                   "hostl1_l2", energy::LinkClass::HostL1ToL2, 2,
                   energy::comp::kLinkHostL1L2,
                   energy::comp::kLinkHostL1L2}),
          l1(ctx, p, llc, &link)
    {
    }

    /** Blocking access helper: runs the queue until done. */
    void
    accessSync(Addr pa, bool is_write)
    {
        bool done = false;
        l1.access(pa, is_write, [&done] { done = true; });
        ctx.eq.run();
        EXPECT_TRUE(done);
    }
};

} // namespace fusion::test

#endif // FUSION_TESTS_TEST_UTIL_HH
