/**
 * @file
 * Tests for the fault-injection campaign engine: seeded trial
 * determinism, outcome triage, the per-kind detection-rate report,
 * and the delta-debugging repro shrinker.
 */

#include <gtest/gtest.h>

#include "sim/guard/campaign.hh"

namespace fusion::guard
{
namespace
{

CampaignConfig
tinyCampaign()
{
    CampaignConfig cc;
    cc.seed = 7;
    cc.trials = 6;
    cc.jobs = 2;
    cc.scale = workloads::Scale::Small;
    return cc;
}

TEST(Campaign, FixedSeedIsDeterministic)
{
    CampaignReport a = runCampaign(tinyCampaign());
    CampaignReport b = runCampaign(tinyCampaign());
    ASSERT_EQ(a.trials.size(), 6u);
    EXPECT_EQ(a.toJson(), b.toJson());
    // Schedules actually vary across trials (the point of the
    // randomization): not every trial armed the same first kind.
    bool varied = false;
    for (const auto &t : a.trials)
        if (t.schedule.faults.size() !=
                a.trials.front().schedule.faults.size() ||
            t.schedule.faults.front().kind !=
                a.trials.front().schedule.faults.front().kind)
            varied = true;
    EXPECT_TRUE(varied);
}

TEST(Campaign, DifferentSeedsDrawDifferentSchedules)
{
    CampaignConfig c2 = tinyCampaign();
    c2.seed = 8;
    CampaignReport a = runCampaign(tinyCampaign());
    CampaignReport b = runCampaign(c2);
    EXPECT_NE(a.toJson(), b.toJson());
}

TEST(Campaign, ReportTableCoversEveryArmedKind)
{
    CampaignReport r = runCampaign(tinyCampaign());
    ASSERT_FALSE(r.kinds.empty());
    std::string table = r.renderTable();
    for (const auto &k : r.kinds) {
        EXPECT_NE(table.find(faultKindName(k.kind)),
                  std::string::npos)
            << faultKindName(k.kind);
        EXPECT_GE(k.armedTrials, k.firedTrials);
    }
    // Outcome counts partition the trial list.
    std::size_t sum = 0;
    for (auto o :
         {TrialOutcome::Benign, TrialOutcome::Perturbed,
          TrialOutcome::Detected, TrialOutcome::Hang,
          TrialOutcome::SilentDivergence, TrialOutcome::Crash})
        sum += r.countOutcome(o);
    EXPECT_EQ(sum, r.trials.size());
}

TEST(Campaign, CleanKindsDetectEverythingTheyFire)
{
    // The shipped checkers must leave no silent divergence or crash
    // on the fixed smoke seed — the same gate FaultCampaignSmoke
    // enforces in CI, kept here so a plain test run catches it too.
    CampaignConfig cc = tinyCampaign();
    cc.trials = 10;
    CampaignReport r = runCampaign(cc);
    EXPECT_EQ(r.countOutcome(TrialOutcome::SilentDivergence), 0u)
        << r.toJson();
    EXPECT_EQ(r.countOutcome(TrialOutcome::Crash), 0u)
        << r.toJson();
    EXPECT_TRUE(r.clean());
}

TEST(Trial, TimingOnlyFaultTriagesAsPerturbed)
{
    // Stall one DMA line completion long enough to move the final
    // cycle count: output changes, but the fault kind is declared
    // timing-only, so triage lands on Perturbed, not divergence.
    FaultSchedule s;
    s.arm(FaultKind::StallDma, /*trigger_after=*/0,
          /*delay=*/4096);
    TrialResult t = runTrial(core::SystemKind::Scratch, "adpcm",
                             workloads::Scale::Small, s);
    EXPECT_EQ(t.outcome, TrialOutcome::Perturbed);
    EXPECT_EQ(t.faultsFired, 1u);
    EXPECT_NE(t.cleanHash, t.resultHash);
}

TEST(Trial, UnfiredScheduleTriagesAsBenign)
{
    FaultSchedule s;
    // DMA faults have no seam to fire on in a pure cache hierarchy.
    s.arm(FaultKind::TruncateDma);
    TrialResult t = runTrial(core::SystemKind::Fusion, "adpcm",
                             workloads::Scale::Small, s);
    EXPECT_EQ(t.outcome, TrialOutcome::Benign);
    EXPECT_EQ(t.faultsFired, 0u);
    EXPECT_EQ(t.cleanHash, t.resultHash);
}

TEST(Trial, CorruptionTriagesAsDetected)
{
    FaultSchedule s;
    s.arm(FaultKind::CorruptDir, /*trigger_after=*/2);
    TrialResult t = runTrial(core::SystemKind::Fusion, "adpcm",
                             workloads::Scale::Small, s);
    EXPECT_EQ(t.outcome, TrialOutcome::Detected);
    EXPECT_EQ(t.errorCategory, "invariant");
}

TEST(Shrinker, BenignTrialHasNothingToShrink)
{
    FaultSchedule s;
    s.arm(FaultKind::TruncateDma);
    TrialResult t = runTrial(core::SystemKind::Fusion, "adpcm",
                             workloads::Scale::Small, s);
    EXPECT_FALSE(
        shrinkTrial(t, workloads::Scale::Small).has_value());
}

TEST(Shrinker, ReducesMultiFaultScheduleToMinimalRepro)
{
    // Two timing-only decoys around one real corruption: the
    // shrinker must strip the decoys and keep the detected outcome.
    FaultSchedule s;
    s.seed = 99;
    s.arm(FaultKind::DelayGrant, 3, 32)
        .arm(FaultKind::CorruptDir, 2)
        .arm(FaultKind::ReorderFlit, 7, 16);
    TrialResult t = runTrial(core::SystemKind::Fusion, "adpcm",
                             workloads::Scale::Small, s);
    ASSERT_EQ(t.outcome, TrialOutcome::Detected);

    auto shrunk = shrinkTrial(t, workloads::Scale::Small);
    ASSERT_TRUE(shrunk.has_value());
    EXPECT_EQ(shrunk->outcome, TrialOutcome::Detected);
    EXPECT_LE(shrunk->schedule.faults.size(), 2u);
    EXPECT_GT(shrunk->probes, 0u);
    // The reproducer names the binary, the system and every
    // surviving fault spec.
    EXPECT_NE(shrunk->reproCommand.find("fault_campaign --repro"),
              std::string::npos);
    EXPECT_NE(shrunk->reproCommand.find("--system fusion"),
              std::string::npos);
    EXPECT_NE(shrunk->reproCommand.find("--workload adpcm"),
              std::string::npos);
    for (const auto &f : shrunk->schedule.faults)
        EXPECT_NE(shrunk->reproCommand.find(faultSpec(f)),
                  std::string::npos);
    // And replaying it reproduces the outcome.
    TrialResult replay =
        runTrial(shrunk->system, shrunk->workload, shrunk->scale,
                 shrunk->schedule);
    EXPECT_EQ(replay.outcome, TrialOutcome::Detected);
}

} // namespace
} // namespace fusion::guard
