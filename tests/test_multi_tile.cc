/**
 * @file
 * Multi-tile tests: accelerators split across tiles keep full
 * coherence through the host directory; collocation (1 tile) beats
 * splitting on sharing-heavy programs.
 */

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "core/system.hh"

namespace fusion::core
{
namespace
{

class MultiTile : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(MultiTile, RunsToCompletionOnEveryBenchmark)
{
    for (const char *name : {"adpcm", "disparity"}) {
        trace::Program p =
            *core::buildProgram(name, workloads::Scale::Small);
        SystemConfig cfg =
            SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion);
        cfg.numTiles = GetParam();
        RunResult r = runProgram(cfg, p);
        EXPECT_GT(r.accelCycles, 0u) << name;
        EXPECT_EQ(r.funcCycles.size(), p.functions.size()) << name;
    }
}

INSTANTIATE_TEST_SUITE_P(TileCounts, MultiTile,
                         ::testing::Values(1u, 2u, 3u, 8u));

TEST(MultiTileTopology, AcceleratorsArePartitioned)
{
    trace::Program p =
        *core::buildProgram("disparity", workloads::Scale::Small);
    SystemConfig cfg = SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion);
    cfg.numTiles = 2;
    System sys(cfg, p);
    ASSERT_EQ(sys.tiles().size(), 2u);
    std::uint32_t total = 0;
    for (auto &t : sys.tiles())
        total += t->numAccels();
    EXPECT_EQ(total, p.accelCount());
}

TEST(MultiTileTopology, MoreTilesThanAcceleratorsClamps)
{
    trace::Program p = *core::buildProgram("adpcm", workloads::Scale::Small);
    SystemConfig cfg = SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion);
    cfg.numTiles = 16; // adpcm has 2 accelerators
    System sys(cfg, p);
    EXPECT_EQ(sys.tiles().size(), 2u);
    RunResult r = sys.run();
    EXPECT_GT(r.accelCycles, 0u);
}

TEST(MultiTile, SplittingSharersCostsHostTraffic)
{
    // ADPCM's coder/decoder share nearly everything: splitting them
    // across two tiles must push the shared lines through the host
    // LLC (inter-tile MESI forwards) instead of the tile L1X.
    trace::Program p = *core::buildProgram("adpcm", workloads::Scale::Small);
    SystemConfig one = SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion);
    SystemConfig two = one;
    two.numTiles = 2;
    RunResult r1 = runProgram(one, p);
    RunResult r2 = runProgram(two, p);
    // Split tiles exchange data via the directory: strictly more
    // tile<->L2 messages and more host-forwarded demands.
    EXPECT_GT(r2.l1xL2CtrlMsgs + r2.l1xL2DataMsgs,
              r1.l1xL2CtrlMsgs + r1.l1xL2DataMsgs);
    EXPECT_GE(r2.fwdsToTile, r1.fwdsToTile);
    // ...and collocation is at least as energy-efficient.
    EXPECT_LE(r1.hierarchyPj(), r2.hierarchyPj());
}

TEST(MultiTile, DxForwardingStaysIntraTile)
{
    trace::Program p = *core::buildProgram("fft", workloads::Scale::Small);
    SystemConfig cfg =
        SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::FusionDx);
    cfg.numTiles = 3; // splits the 6 FFT stages 2/2/2
    RunResult split = runProgram(cfg, p);
    SystemConfig one = SystemConfig::preset(SystemConfig::Preset::Paper, 
        SystemKind::FusionDx);
    RunResult coloc = runProgram(one, p);
    // Cross-tile consumers cannot receive pushes.
    EXPECT_LE(split.l0xForwards, coloc.l0xForwards);
}

TEST(MultiTile, OverlapComposesWithTiles)
{
    trace::Program p =
        *core::buildProgram("disparity", workloads::Scale::Small);
    SystemConfig cfg = SystemConfig::preset(SystemConfig::Preset::Paper, SystemKind::Fusion);
    cfg.numTiles = 2;
    cfg.overlapInvocations = true;
    RunResult r = runProgram(cfg, p);
    SystemConfig serial = cfg;
    serial.overlapInvocations = false;
    RunResult rs = runProgram(serial, p);
    EXPECT_GT(r.accelCycles, 0u);
    EXPECT_LE(r.accelCycles, rs.accelCycles + rs.accelCycles / 50);
}

} // namespace
} // namespace fusion::core
