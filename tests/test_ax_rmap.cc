/**
 * @file
 * Unit tests for the AX-RMAP reverse map (Section 3.2, Appendix).
 */

#include <gtest/gtest.h>

#include "vm/ax_rmap.hh"

namespace fusion::vm
{
namespace
{

TEST(AxRmap, InsertLookupErase)
{
    SimContext ctx;
    AxRmap rmap(ctx, AxRmapParams{});
    rmap.insert(0x5000, 0x10000040, 1);
    auto e = rmap.lookup(0x5000);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->vline, lineAlign(Addr(0x10000040)));
    EXPECT_EQ(e->pid, 1);
    rmap.erase(0x5000);
    EXPECT_FALSE(rmap.lookup(0x5000).has_value());
}

TEST(AxRmap, LookupAlignsToLine)
{
    SimContext ctx;
    AxRmap rmap(ctx, AxRmapParams{});
    rmap.insert(0x5000, 0x10000000, 1);
    EXPECT_TRUE(rmap.lookup(0x5004).has_value());
    EXPECT_FALSE(rmap.lookup(0x5040).has_value());
}

TEST(AxRmap, LookupCountsOnlyForwardedProbes)
{
    SimContext ctx;
    AxRmap rmap(ctx, AxRmapParams{});
    rmap.insert(0x5000, 0x10000000, 1);
    rmap.lookup(0x5000);
    rmap.lookup(0x6000);
    rmap.probeForSynonym(0x5000);
    // Table 6 counts forwarded-request lookups; synonym probes are
    // accounted separately.
    EXPECT_EQ(rmap.lookups(), 2u);
}

TEST(AxRmap, ReinsertOverwrites)
{
    SimContext ctx;
    AxRmap rmap(ctx, AxRmapParams{});
    rmap.insert(0x5000, 0x10000000, 1);
    rmap.insert(0x5000, 0x20000000, 1);
    auto e = rmap.lookup(0x5000);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->vline, 0x20000000u);
    EXPECT_EQ(rmap.size(), 1u);
}

TEST(AxRmap, EnergyBookedPerProbe)
{
    SimContext ctx;
    AxRmapParams p;
    AxRmap rmap(ctx, p);
    rmap.lookup(0x1000);
    rmap.probeForSynonym(0x1000);
    EXPECT_DOUBLE_EQ(ctx.energy.total(energy::comp::kAxRmap),
                     2 * p.lookupPj);
}

} // namespace
} // namespace fusion::vm
