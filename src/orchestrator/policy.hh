/**
 * @file
 * Pluggable per-invocation coherence-mode selection policies for
 * SystemKind::Auto (ROADMAP item 4, after Cohmeleon and "A Case for
 * Fine-grain Coherence Specialization in Heterogeneous Systems").
 *
 * A policy sees one InvocationOutlook — the trace-derived working
 * set and producer->consumer forwarding fraction of the invocation
 * about to run, plus online miss-rate estimates maintained by the
 * orchestrator — and picks the static organization to run it under.
 * After the invocation retires it observes the realized cycles and
 * energy, which is what lets the learner improve.
 */

#ifndef FUSION_ORCHESTRATOR_POLICY_HH
#define FUSION_ORCHESTRATOR_POLICY_HH

#include <cstdint>
#include <memory>

#include "core/system_config.hh"

namespace fusion::orch
{

/** What is known about an invocation before it runs. */
struct InvocationOutlook
{
    /** Function index into Program::functions. */
    std::uint32_t func = 0;
    /** Unique lines this invocation touches (trace-derived). */
    std::uint64_t footprintLines = 0;
    /** Fraction of those lines whose next toucher is a load by a
     *  different accelerator (the FUSION-Dx forwarding signal). */
    double forwardFraction = 0.0;
    /** Online L0X/L1X miss-rate estimates for this function (EWMA
     *  over retired invocations; 0 before any history exists). */
    double l0xMissRate = 0.0;
    double l1xMissRate = 0.0;
};

/** What an invocation cost once it retired. */
struct InvocationOutcome
{
    core::SystemKind mode = core::SystemKind::Fusion;
    std::uint64_t cycles = 0;
    double energyPj = 0.0;
};

/** One mode-selection policy. */
class ModePolicy
{
  public:
    virtual ~ModePolicy() = default;

    /** Display name ("threshold", "epsilon-greedy", ...). */
    virtual const char *name() const = 0;

    /** Pick the static mode to run this invocation under. */
    virtual core::SystemKind choose(const InvocationOutlook &o) = 0;

    /** Feed back the realized cost (no-op for static policies). */
    virtual void
    observe(const InvocationOutlook &o, const InvocationOutcome &res)
    {
        (void)o;
        (void)res;
    }
};

/** Policy factory keyed on cfg.orchestrator.policy. */
std::unique_ptr<ModePolicy> makePolicy(const core::SystemConfig &cfg);

} // namespace fusion::orch

#endif // FUSION_ORCHESTRATOR_POLICY_HH
