/**
 * @file
 * The three built-in AUTO-mode policies.
 *
 *  - ThresholdPolicy: a deterministic heuristic seeded from the
 *    paper's Table 3 workload characteristics. Invocations with a
 *    meaningful producer->consumer forwarding fraction go to
 *    FUSION-Dx (the paper's FFT/DISPARITY pipelines); invocations
 *    that stream a working set far larger than the L1X while
 *    missing heavily in the L0X go to SCRATCH (oracle DMA beats
 *    caching when nothing is reused); everything else runs FUSION,
 *    which Table 3 / Figure 6 show dominant across the suite.
 *    SHARED and FUSION-MESI are never picked — the paper's result
 *    is precisely that they are dominated design points.
 *
 *  - EpsilonGreedyPolicy: a per-(function, mode) bandit over the
 *    five static modes, minimizing realized cycles. Arms start from
 *    an optimistic prior on the threshold heuristic's pick (so the
 *    learner explores outward from the Table 3 seed), and
 *    exploration uses the deterministic SplitMix64 PRNG so runs are
 *    reproducible.
 *
 *  - StaticBestPolicy: always cfg.orchestrator.staticMode; forces a
 *    mode through the orchestrator machinery (tests, debugging,
 *    per-workload static-best sweeps).
 */

#include "orchestrator/policy.hh"

#include <limits>
#include <map>
#include <utility>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace fusion::orch
{

namespace
{

class ThresholdPolicy final : public ModePolicy
{
  public:
    explicit ThresholdPolicy(const core::SystemConfig &cfg)
        : _cfg(cfg)
    {
    }

    const char *name() const override { return "threshold"; }

    core::SystemKind
    choose(const InvocationOutlook &o) override
    {
        const core::OrchestratorConfig &oc = _cfg.orchestrator;
        // Smooth the forwarding signal: per-invocation fractions in
        // pipelined programs alternate between producer (high) and
        // consumer (zero) invocations, and deciding on the raw value
        // would thrash FUSION<->FUSION-Dx, paying a flush each time.
        // The EWMA tracks the program's sustained forwarding level.
        if (_seenFwd) {
            _fwdEwma += 0.5 * (o.forwardFraction - _fwdEwma);
        } else {
            _fwdEwma = o.forwardFraction;
            _seenFwd = true;
        }
        if (_fwdEwma > oc.dxForwardFraction)
            return core::SystemKind::FusionDx;
        double fp_bytes =
            static_cast<double>(o.footprintLines * kLineBytes);
        bool streaming =
            fp_bytes > oc.scratchFootprintRatio *
                           static_cast<double>(_cfg.l1xBytes) &&
            o.l0xMissRate > 0.5;
        if (streaming)
            return core::SystemKind::Scratch;
        return core::SystemKind::Fusion;
    }

  private:
    const core::SystemConfig &_cfg;
    double _fwdEwma = 0.0;
    bool _seenFwd = false;
};

class EpsilonGreedyPolicy final : public ModePolicy
{
  public:
    explicit EpsilonGreedyPolicy(const core::SystemConfig &cfg)
        : _cfg(cfg), _seed(cfg), _rng(cfg.orchestrator.rngSeed)
    {
    }

    const char *name() const override { return "epsilon-greedy"; }

    core::SystemKind
    choose(const InvocationOutlook &o) override
    {
        if (_rng.uniform() < _cfg.orchestrator.epsilon) {
            return core::kStaticSystemKinds[_rng.below(
                core::kNumStaticSystemKinds)];
        }
        // Greedy: lowest mean cycles; unvisited arms are seeded
        // with an optimistic zero prior on the threshold pick so
        // the first exploitation matches the Table 3 heuristic.
        core::SystemKind seeded = _seed.choose(o);
        core::SystemKind best = seeded;
        double best_mean = mean(o.func, seeded, seeded);
        for (core::SystemKind k : core::kStaticSystemKinds) {
            double m = mean(o.func, k, seeded);
            if (m < best_mean) {
                best_mean = m;
                best = k;
            }
        }
        return best;
    }

    void
    observe(const InvocationOutlook &o,
            const InvocationOutcome &res) override
    {
        Arm &arm = _arms[{o.func, res.mode}];
        ++arm.pulls;
        arm.meanCycles +=
            (static_cast<double>(res.cycles) - arm.meanCycles) /
            static_cast<double>(arm.pulls);
    }

  private:
    struct Arm
    {
        std::uint64_t pulls = 0;
        double meanCycles = 0.0;
    };

    double
    mean(std::uint32_t func, core::SystemKind k,
         core::SystemKind seeded) const
    {
        auto it = _arms.find({func, k});
        if (it != _arms.end() && it->second.pulls > 0)
            return it->second.meanCycles;
        return k == seeded
                   ? 0.0
                   : std::numeric_limits<double>::infinity();
    }

    const core::SystemConfig &_cfg;
    ThresholdPolicy _seed;
    Rng _rng;
    std::map<std::pair<std::uint32_t, core::SystemKind>, Arm> _arms;
};

class StaticBestPolicy final : public ModePolicy
{
  public:
    explicit StaticBestPolicy(core::SystemKind mode) : _mode(mode) {}

    const char *name() const override { return "static-best"; }

    core::SystemKind
    choose(const InvocationOutlook &) override
    {
        return _mode;
    }

  private:
    core::SystemKind _mode;
};

} // namespace

std::unique_ptr<ModePolicy>
makePolicy(const core::SystemConfig &cfg)
{
    switch (cfg.orchestrator.policy) {
      case core::OrchPolicy::Threshold:
        return std::make_unique<ThresholdPolicy>(cfg);
      case core::OrchPolicy::EpsilonGreedy:
        return std::make_unique<EpsilonGreedyPolicy>(cfg);
      case core::OrchPolicy::StaticBest:
        return std::make_unique<StaticBestPolicy>(
            cfg.orchestrator.staticMode);
    }
    return std::make_unique<ThresholdPolicy>(cfg);
}

} // namespace fusion::orch
