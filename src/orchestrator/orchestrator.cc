#include "orchestrator/orchestrator.hh"

#include "trace/analysis.hh"

namespace fusion::orch
{

namespace
{

/** EWMA weight for the online miss-rate estimates. */
constexpr double kAlpha = 0.5;

/** Small integer id for a ModeSwitch span: (from << 8) | to. */
Addr
switchAddr(core::SystemKind from, core::SystemKind to)
{
    return (static_cast<Addr>(from) << 8) |
           static_cast<Addr>(to);
}

} // namespace

Orchestrator::Orchestrator(SimContext &ctx,
                           const core::SystemConfig &cfg,
                           const trace::Program &prog)
    : _ctx(ctx), _cfg(cfg), _prog(prog), _policy(makePolicy(cfg))
{
    // Trace-derived per-invocation characteristics. The forwarding
    // fraction comes from the same producer->consumer analysis
    // FUSION-Dx plans with, so the policy sees exactly the signal
    // the Dx hardware would exploit.
    _invFootprint.reserve(prog.invocations.size());
    for (const auto &inv : prog.invocations)
        _invFootprint.push_back(trace::footprintLines(inv.ops));
    _invForwardFraction.assign(prog.invocations.size(), 0.0);
    trace::ForwardPlan plan = trace::planForwarding(prog);
    for (const auto &[idx, lines] : plan) {
        if (idx < _invForwardFraction.size() &&
            _invFootprint[idx] > 0) {
            _invForwardFraction[idx] =
                static_cast<double>(lines.size()) /
                static_cast<double>(_invFootprint[idx]);
        }
    }
    _funcEst.resize(prog.functions.size());

    stats::Group &g = ctx.stats.root().child("orchestrator");
    _stDecisions = &g.scalar("decisions");
    _stSwitches = &g.scalar("switches");
    _stFlushLines = &g.scalar("flush_lines");
    _ecFlush = ctx.energy.component("orch.flush");

    _tracer = ctx.obs.tracer();
    if (_tracer)
        _track = _tracer->registerTrack("orchestrator");
    ctx.obs.registerGauge("orch.mode", [this] {
        return _haveMode ? static_cast<double>(_mode) : -1.0;
    });
    ctx.obs.registerCounter("orch.switches", [this] {
        return static_cast<double>(_switches);
    });
}

InvocationOutlook
Orchestrator::outlook(std::size_t idx) const
{
    const trace::Invocation &inv = _prog.invocations[idx];
    InvocationOutlook o;
    o.func = static_cast<std::uint32_t>(inv.func);
    o.footprintLines = _invFootprint[idx];
    o.forwardFraction = _invForwardFraction[idx];
    const FuncEstimate &est =
        _funcEst[static_cast<std::size_t>(inv.func)];
    o.l0xMissRate = est.l0xMissRate;
    o.l1xMissRate = est.l1xMissRate;
    return o;
}

core::SystemKind
Orchestrator::decide(std::size_t idx)
{
    core::SystemKind pick = _policy->choose(outlook(idx));
    *_stDecisions += 1;
    // Dwell hysteresis: a freshly adopted mode must run minDwell
    // invocations before the policy may move again, so borderline
    // outlooks cannot thrash (every switch pays the flush cost).
    if (_haveMode && pick != _mode &&
        _dwell < _cfg.orchestrator.minDwell)
        pick = _mode;
    if (!_haveMode || pick != _mode) {
        _mode = pick;
        _haveMode = true;
        _dwell = 0;
    }
    ++_dwell;
    return pick;
}

void
Orchestrator::transition(core::SystemKind from, core::SystemKind to,
                         std::uint64_t flush_lines,
                         sim::SmallFn<void()> done)
{
    const core::OrchestratorConfig &oc = _cfg.orchestrator;
    ++_switches;
    *_stSwitches += 1;
    *_stFlushLines += static_cast<double>(flush_lines);
    // One flush/DMA event: the outgoing organization's dirty state
    // drains to the host (fixed controller cost + per-line burst),
    // with per-line energy on the same scale as a DMA line move.
    Tick cost = oc.switchFixedCycles +
                oc.switchCyclesPerLine *
                    static_cast<Tick>(flush_lines);
    _ctx.energy.add(_ecFlush, oc.switchPjPerLine *
                                  static_cast<double>(flush_lines));
    if (_tracer) {
        _tracer->complete(_track, obs::SpanKind::ModeSwitch,
                          switchAddr(from, to), _ctx.now(),
                          _ctx.now() + cost);
    }
    _ctx.eq.scheduleIn(static_cast<Cycles>(cost), std::move(done));
}

void
Orchestrator::beforeLaunch(std::size_t idx,
                           const accel::FrontendCounters &snap)
{
    (void)idx;
    _snap = snap;
}

void
Orchestrator::afterInvocation(std::size_t idx,
                              const accel::FrontendCounters &now,
                              std::uint64_t cycles, double energy_pj)
{
    const trace::Invocation &inv = _prog.invocations[idx];
    FuncEstimate &est =
        _funcEst[static_cast<std::size_t>(inv.func)];
    auto rate = [](std::uint64_t miss,
                   std::uint64_t hit) -> double {
        std::uint64_t total = miss + hit;
        return total == 0
                   ? 0.0
                   : static_cast<double>(miss) /
                         static_cast<double>(total);
    };
    std::uint64_t l0h = now.l0xHits - _snap.l0xHits;
    std::uint64_t l0m = now.l0xMisses - _snap.l0xMisses;
    std::uint64_t l1h = now.l1xHits - _snap.l1xHits;
    std::uint64_t l1m = now.l1xMisses - _snap.l1xMisses;
    if (l0h + l0m > 0 || l1h + l1m > 0) {
        double r0 = rate(l0m, l0h);
        double r1 = rate(l1m, l1h);
        if (est.seen) {
            est.l0xMissRate += kAlpha * (r0 - est.l0xMissRate);
            est.l1xMissRate += kAlpha * (r1 - est.l1xMissRate);
        } else {
            est.l0xMissRate = r0;
            est.l1xMissRate = r1;
            est.seen = true;
        }
    }

    ++_modeInvocations[core::systemKindCliName(_mode)];
    InvocationOutcome res;
    res.mode = _mode;
    res.cycles = cycles;
    res.energyPj = energy_pj;
    _policy->observe(outlook(idx), res);
}

std::uint64_t
Orchestrator::flushLinesBefore(std::size_t idx) const
{
    // The outgoing organization plausibly holds the previous
    // invocation's working set; that is what the flush must move.
    return idx == 0 ? 0 : _invFootprint[idx - 1];
}

} // namespace fusion::orch
