/**
 * @file
 * The AUTO-mode orchestrator: picks a coherence mode per accelerator
 * invocation and models the cost of changing modes.
 *
 * core::System (kind == SystemKind::Auto) constructs every static
 * TileFrontend plus one Orchestrator. Before each invocation it asks
 * decide() which mode to run under; when the answer differs from the
 * active frontend, the orchestrator models the transition — a
 * flush/DMA event of fixed + per-flushed-line cycles with per-line
 * energy booked to the "orch.flush" component — so switches are not
 * free, emits exactly one ModeSwitch span, and only then does the
 * invocation launch on the new frontend.
 *
 * Decision inputs are the trace-derived per-invocation working set
 * and producer->consumer forwarding fraction (both precomputed at
 * construction) plus online per-function L0X/L1X miss-rate EWMAs
 * maintained from FrontendCounters deltas across retired
 * invocations. The pluggable ModePolicy (src/orchestrator/policy.hh)
 * turns an outlook into a mode; dwell hysteresis (minDwell) damps
 * thrashing regardless of policy.
 */

#ifndef FUSION_ORCHESTRATOR_ORCHESTRATOR_HH
#define FUSION_ORCHESTRATOR_ORCHESTRATOR_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "accel/tile_frontend.hh"
#include "orchestrator/policy.hh"

namespace fusion::orch
{

class Orchestrator
{
  public:
    Orchestrator(SimContext &ctx, const core::SystemConfig &cfg,
                 const trace::Program &prog);

    /** Mode to run invocation @p idx under (policy + hysteresis). */
    core::SystemKind decide(std::size_t idx);

    /**
     * Model the @p from -> @p to switch: schedules one flush/DMA
     * cost event (@p flush_lines drives the per-line terms), books
     * its energy, records exactly one ModeSwitch span, and fires
     * @p done when the transition cost has elapsed.
     */
    void transition(core::SystemKind from, core::SystemKind to,
                    std::uint64_t flush_lines,
                    sim::SmallFn<void()> done);

    /** Counter snapshot taken just before invocation @p idx runs. */
    void beforeLaunch(std::size_t idx,
                      const accel::FrontendCounters &snap);

    /** Invocation @p idx retired under the current mode: update the
     *  online estimates and feed the policy's learner. */
    void afterInvocation(std::size_t idx,
                         const accel::FrontendCounters &now,
                         std::uint64_t cycles, double energy_pj);

    /** Flush-cost proxy for switching away before invocation
     *  @p idx: the previous invocation's working set (the lines the
     *  outgoing organization plausibly holds). */
    std::uint64_t flushLinesBefore(std::size_t idx) const;

    /** The policy in use (display). */
    const char *policyName() const { return _policy->name(); }

    std::uint64_t switches() const { return _switches; }
    /** Invocation counts per mode short name (RunResult). */
    const std::map<std::string, std::uint64_t> &
    modeInvocations() const
    {
        return _modeInvocations;
    }

  private:
    /** Assemble the policy's view of invocation @p idx. */
    InvocationOutlook outlook(std::size_t idx) const;

    SimContext &_ctx;
    const core::SystemConfig &_cfg;
    const trace::Program &_prog;
    std::unique_ptr<ModePolicy> _policy;

    // Trace-derived per-invocation characteristics (precomputed).
    std::vector<std::uint64_t> _invFootprint;
    std::vector<double> _invForwardFraction;

    // Online per-function miss-rate EWMAs.
    struct FuncEstimate
    {
        double l0xMissRate = 0.0;
        double l1xMissRate = 0.0;
        bool seen = false;
    };
    std::vector<FuncEstimate> _funcEst;

    // Decision state.
    bool _haveMode = false;
    core::SystemKind _mode = core::SystemKind::Fusion;
    std::uint32_t _dwell = 0;
    std::uint64_t _switches = 0;
    std::map<std::string, std::uint64_t> _modeInvocations;
    accel::FrontendCounters _snap;

    // Bookkeeping sinks.
    stats::Scalar *_stDecisions;
    stats::Scalar *_stSwitches;
    stats::Scalar *_stFlushLines;
    energy::ComponentId _ecFlush;
    obs::SpanTracer *_tracer = nullptr;
    std::uint32_t _track = 0;
};

} // namespace fusion::orch

#endif // FUSION_ORCHESTRATOR_ORCHESTRATOR_HH
