#include "host/llc.hh"

#include <algorithm>
#include <memory>
#include <sstream>

#include "energy/sram_model.hh"
#include "sim/logging.hh"

namespace fusion::host
{

using coherence::CoherenceReq;
using coherence::FwdKind;
using interconnect::MsgClass;

Llc::Llc(SimContext &ctx, const LlcParams &p, mem::Dram &dram)
    : _ctx(ctx), _p(p), _dram(dram),
      _ring(p.nucaBanks, p.hopLatency),
      _tags(mem::CacheGeometry{p.capacityBytes, p.assoc, kLineBytes}),
      _dramLink(ctx,
                interconnect::LinkParams{
                    "llc_dram", energy::LinkClass::LlcToDram, 4,
                    energy::comp::kLinkLlcDram,
                    energy::comp::kLinkLlcDram})
{
    energy::SramParams sp;
    sp.capacityBytes = p.capacityBytes;
    sp.assoc = p.assoc;
    sp.banks = p.nucaBanks;
    sp.kind = energy::SramKind::Cache;
    auto fig = energy::evaluateSram(sp);
    _bankReadPj = fig.readPj;
    _bankWritePj = fig.writePj;
    _ecLlc = ctx.energy.component(energy::comp::kLlc);
    _stats = &ctx.stats.root().child("llc");
    _stBankReads = &_stats->scalar("bank_reads");
    _stBankWrites = &_stats->scalar("bank_writes");
    _stRequests = &_stats->scalar("requests");
    _stHits = &_stats->scalar("hits");
    _stMisses = &_stats->scalar("misses");
    _stDeferred = &_stats->scalar("deferred");

    _tracer = ctx.obs.tracer();
    if (_tracer)
        _track = _tracer->registerTrack("llc");
    ctx.obs.registerGauge("llc.dir_entries", [this] {
        return static_cast<double>(_dir.size());
    });
    ctx.obs.registerCounter("llc.requests", [this] {
        return _stRequests->value();
    });

    ctx.guard.registerSnapshot("llc", [this] {
        guard::ComponentState s;
        std::vector<Addr> busy;
        std::uint64_t deferred = 0;
        for (const auto &[pa, d] : _dir) {
            if (d.busy)
                busy.push_back(pa);
            deferred += d.deferred.size();
        }
        s.outstanding = busy.size() + deferred;
        if (!busy.empty()) {
            std::sort(busy.begin(), busy.end());
            std::ostringstream os;
            os << "busy_lines=[" << std::hex;
            for (std::size_t i = 0; i < busy.size(); ++i)
                os << (i ? "," : "") << "0x" << busy[i];
            os << ']' << std::dec << " deferred=" << deferred;
            s.detail = os.str();
        }
        return s;
    });
    ctx.guard.registerInvariant(
        "llc.dir",
        [this](const guard::InvariantContext &,
               std::vector<std::string> &out) {
            // Directory self-consistency for quiesced entries:
            // exclusive ownership excludes sharers, and the LLC is
            // inclusive of everything the directory records. Busy
            // entries are mid-transaction by design.
            std::vector<std::pair<Addr, const char *>> bad;
            for (const auto &[pa, d] : _dir) {
                if (d.busy)
                    continue;
                if (d.owner >= 0 && d.sharers != 0)
                    bad.emplace_back(pa, "owner and sharers coexist");
                if ((d.owner >= 0 || d.sharers != 0) &&
                    !_tags.find(pa)) {
                    bad.emplace_back(
                        pa, "directory entry without LLC frame");
                }
            }
            std::sort(bad.begin(), bad.end());
            for (const auto &[pa, why] : bad) {
                std::ostringstream os;
                os << why << " @ 0x" << std::hex << pa;
                out.push_back(os.str());
            }
        });
}

int
Llc::registerAgent(coherence::CoherentAgent *agent,
                   interconnect::Link *link, std::uint32_t ring_node)
{
    fusion_assert(_agents.size() < 31, "too many coherent agents");
    _agents.push_back(AgentInfo{agent, link, ring_node, 0});
    return static_cast<int>(_agents.size()) - 1;
}

Llc::DirInfo &
Llc::dirInfo(Addr pa)
{
    return _dir[lineAlign(pa)];
}

const Llc::DirInfo *
Llc::dirInfoIfAny(Addr pa) const
{
    auto it = _dir.find(lineAlign(pa));
    return it == _dir.end() ? nullptr : &it->second;
}

void
Llc::maybeGarbageCollect(Addr pa)
{
    auto it = _dir.find(lineAlign(pa));
    if (it != _dir.end() && it->second.idle())
        _dir.erase(it);
}

Cycles
Llc::pathLatency(int agent, Addr pa) const
{
    const AgentInfo &a = _agents[static_cast<std::size_t>(agent)];
    return a.link->latency() +
           _ring.latency(a.node, _ring.homeNode(pa));
}

void
Llc::bankAccess(bool is_write)
{
    *(is_write ? _stBankWrites : _stBankReads) += 1;
    _ctx.energy.add(_ecLlc, is_write ? _bankWritePj : _bankReadPj);
}

void
Llc::request(int agent, Addr pa, CoherenceReq kind, LlcDone done)
{
    pa = lineAlign(pa);
    *_stRequests += 1;
    if (_tracer)
        _tracer->begin(_track, obs::SpanKind::LlcReq, pa, _ctx.now());
    _agents[static_cast<std::size_t>(agent)].link->send(
        MsgClass::Control, pathLatency(agent, pa),
        [this, agent, pa, kind, done = std::move(done)]() mutable {
            arrive(agent, pa, kind, std::move(done));
        });
}

void
Llc::arrive(int agent, Addr pa, CoherenceReq kind, LlcDone done)
{
    DirInfo &d = dirInfo(pa);
    if (d.busy) {
        d.deferred.push_back([this, agent, pa, kind,
                              done = std::move(done)]() mutable {
            arrive(agent, pa, kind, std::move(done));
        });
        *_stDeferred += 1;
        return;
    }
    d.busy = true;
    bankAccess(false);
    _ctx.eq.scheduleIn(_p.bankLatency,
                       [this, agent, pa, kind,
                        done = std::move(done)]() mutable {
                           lookup(agent, pa, kind, std::move(done));
                       });
}

void
Llc::lookup(int agent, Addr pa, CoherenceReq kind, LlcDone done)
{
    if (_tags.find(pa)) {
        *_stHits += 1;
        dirAction(agent, pa, kind, std::move(done));
        return;
    }
    *_stMisses += 1;
    ensurePresent(pa, [this, agent, pa, kind,
                       done = std::move(done)]() mutable {
        dirAction(agent, pa, kind, std::move(done));
    });
}

void
Llc::ensurePresent(Addr pa, sim::SmallFn<void()> then)
{
    fusion_assert(!_tags.find(pa), "ensurePresent on present line");
    mem::CacheLine *victim = _tags.victim(
        pa, [this](const mem::CacheLine &l) {
            const DirInfo *d = dirInfoIfAny(l.lineAddr);
            return !d || !d->busy;
        });
    if (!victim) {
        // Every way is pinned by a busy transaction; retry shortly.
        _stats->scalar("victim_retries") += 1;
        _ctx.eq.scheduleIn(
            8, [this, pa, then = std::move(then)]() mutable {
                ensurePresent(pa, std::move(then));
            });
        return;
    }

    auto finish_fill = [this, pa, victim,
                        then = std::move(then)]() mutable {
        _tags.install(*victim, pa);
        victim->mesi = mem::MesiState::E; // present at LLC
        // Fetch the line from memory.
        _dramLink.book(MsgClass::Data);
        _dram.access(pa, false, [then = std::move(then)]() mutable {
            then();
        });
    };

    if (!victim->valid) {
        finish_fill();
        return;
    }

    // Inclusive LLC: recall remote copies of the victim first. The
    // victim's directory entry is marked busy for the duration so a
    // new request to the victim line cannot start a conflicting
    // transaction mid-recall.
    Addr victim_addr = victim->lineAddr;
    _stats->scalar("recalls") += 1;
    bool victim_dirty = victim->dirty;
    dirInfo(victim_addr).busy = true;
    clearRemote(-1, victim_addr, false,
                [this, victim_addr, victim_dirty, victim,
                 finish_fill = std::move(finish_fill)]() mutable {
                    mem::CacheLine *v = _tags.find(victim_addr);
                    bool dirty = victim_dirty ||
                                 (v != nullptr && v->dirty);
                    if (dirty) {
                        _dramLink.book(MsgClass::Data);
                        _dram.access(victim_addr, true, [] {});
                    }
                    if (v)
                        _tags.invalidate(*v);
                    finishTransaction(victim_addr);
                    finish_fill();
                });
}

void
Llc::dirAction(int agent, Addr pa, CoherenceReq kind, LlcDone done)
{
    DirInfo &d = dirInfo(pa);
    mem::CacheLine *line = _tags.find(pa);
    fusion_assert(line, "dirAction without LLC frame");
    _tags.touch(*line);

    switch (kind) {
      case CoherenceReq::GetS: {
        if (d.owner >= 0 && d.owner != agent) {
            clearRemote(agent, pa, true,
                        [this, agent, pa,
                         done = std::move(done)]() mutable {
                            // The previous owner is now a sharer if
                            // it retained a copy (clearRemote
                            // updated the map); the requester joins
                            // the sharer list.
                            DirInfo &dd = dirInfo(pa);
                            dd.sharers |= bit(agent);
                            respond(agent, pa, MsgClass::Data,
                                    false, std::move(done));
                        });
            return;
        }
        if (d.owner == agent) {
            // Requester already owns it (stale request); just reply.
            respond(agent, pa, MsgClass::Data, true, std::move(done));
            return;
        }
        bool exclusive = (d.sharers == 0);
        if (exclusive) {
            d.owner = agent; // grant Exclusive
        } else {
            d.sharers |= bit(agent);
        }
        respond(agent, pa, MsgClass::Data, exclusive, std::move(done));
        return;
      }
      case CoherenceReq::GetX:
      case CoherenceReq::Upgrade: {
        bool had_sharer_copy =
            (kind == CoherenceReq::Upgrade) &&
            ((d.sharers & bit(agent)) != 0 || d.owner == agent);
        clearRemote(agent, pa, false,
                    [this, agent, pa, had_sharer_copy,
                     done = std::move(done)]() mutable {
                        DirInfo &dd = dirInfo(pa);
                        dd.owner = agent;
                        dd.sharers = 0;
                        respond(agent, pa,
                                had_sharer_copy ? MsgClass::Control
                                                : MsgClass::Data,
                                true, std::move(done));
                    });
        return;
      }
    }
    fusion_panic("unhandled coherence request");
}

void
Llc::clearRemote(int except_agent, Addr pa, bool downgrade_to_s,
                 sim::SmallFn<void()> then)
{
    DirInfo &d = dirInfo(pa);
    struct Target
    {
        int agent;
        FwdKind kind;
    };
    std::vector<Target> targets;
    if (d.owner >= 0 && d.owner != except_agent) {
        targets.push_back({d.owner, downgrade_to_s ? FwdKind::FwdGetS
                                                   : FwdKind::FwdGetX});
    }
    for (int a = 0; a < static_cast<int>(_agents.size()); ++a) {
        if (a == except_agent || a == d.owner)
            continue;
        if (d.sharers & bit(a))
            targets.push_back({a, FwdKind::Inv});
    }
    if (targets.empty()) {
        then();
        return;
    }

    auto remaining = std::make_shared<std::size_t>(targets.size());
    auto cont = std::make_shared<sim::SmallFn<void()>>(
        std::move(then));
    for (const Target &t : targets) {
        AgentInfo &ai = _agents[static_cast<std::size_t>(t.agent)];
        ai.fwds += 1;
        _stats->scalar("fwds") += 1;
        // Forward demand travels LLC -> agent.
        Cycles out_lat = pathLatency(t.agent, pa);
        FwdKind kind = t.kind;
        int agent_id = t.agent;
        ai.link->send(MsgClass::Control, out_lat,
                      [this, agent_id, pa, kind, remaining, cont]() {
            AgentInfo &target = _agents[
                static_cast<std::size_t>(agent_id)];
            target.agent->handleFwd(pa, kind, [this, agent_id, pa,
                                               kind, remaining,
                                               cont](bool dirty,
                                                     bool retained) {
                AgentInfo &ta = _agents[
                    static_cast<std::size_t>(agent_id)];
                MsgClass resp_cls = MsgClass::Control; // ack only
                if (dirty) {
                    // Owner supplies data (3-hop): the payload
                    // crosses the owner's link and updates the LLC.
                    resp_cls = MsgClass::Data;
                    bankAccess(true);
                    mem::CacheLine *l = _tags.find(pa);
                    if (l)
                        l->dirty = true;
                }
                DirInfo &dd = dirInfo(pa);
                switch (kind) {
                  case FwdKind::Inv:
                    dd.sharers &= ~bit(agent_id);
                    break;
                  case FwdKind::FwdGetX:
                    if (dd.owner == agent_id)
                        dd.owner = -1;
                    dd.sharers &= ~bit(agent_id);
                    break;
                  case FwdKind::FwdGetS:
                    if (dd.owner == agent_id)
                        dd.owner = -1;
                    if (retained)
                        dd.sharers |= bit(agent_id);
                    else
                        dd.sharers &= ~bit(agent_id);
                    break;
                }
                Cycles back = pathLatency(agent_id, pa);
                ta.link->send(resp_cls, back, [remaining, cont]() {
                    if (--*remaining == 0)
                        (*cont)();
                });
            });
        });
    }
}

void
Llc::respond(int agent, Addr pa, MsgClass cls, bool exclusive,
             LlcDone done)
{
    if (_ctx.guard.fireFault(guard::FaultKind::CorruptDir)) {
        // The directory "forgets" what it just recorded: the owner
        // bit or one sharer bit vanishes while the agent's copy
        // stays live (and the response below still tells the agent
        // it has the line). Caught by the agent-side residency
        // checkers on the next invariant sweep.
        DirInfo &d = dirInfo(pa);
        if (d.owner >= 0)
            d.owner = -1;
        else if (d.sharers != 0)
            d.sharers &= d.sharers - 1;
    }
    Cycles lat = pathLatency(agent, pa);
    if (_tracer)
        _tracer->end(_track, obs::SpanKind::LlcReq, pa, _ctx.now());
    finishTransaction(pa);
    _agents[static_cast<std::size_t>(agent)].link->send(
        cls, lat, [exclusive, done = std::move(done)]() mutable {
            done(LlcResponse{exclusive});
        });
}

void
Llc::finishTransaction(Addr pa)
{
    DirInfo &d = dirInfo(pa);
    fusion_assert(d.busy, "finishing idle transaction");
    d.busy = false;
    if (!d.deferred.empty()) {
        auto next = std::move(d.deferred.front());
        d.deferred.pop_front();
        next();
    } else {
        maybeGarbageCollect(pa);
    }
}

void
Llc::writebackData(int agent, Addr pa)
{
    pa = lineAlign(pa);
    _stats->scalar("writebacks") += 1;
    AgentInfo &ai = _agents[static_cast<std::size_t>(agent)];
    ai.link->send(MsgClass::Data, pathLatency(agent, pa),
                  [this, agent, pa]() {
        bankAccess(true);
        DirInfo &d = dirInfo(pa);
        if (d.owner == agent)
            d.owner = -1;
        d.sharers &= ~bit(agent);
        mem::CacheLine *line = _tags.find(pa);
        if (line) {
            line->dirty = true;
        } else {
            // Line was recalled concurrently: spill to memory.
            _dramLink.book(MsgClass::Data);
            _dram.access(pa, true, [] {});
        }
        maybeGarbageCollect(pa);
    });
}

void
Llc::evictNotice(int agent, Addr pa)
{
    pa = lineAlign(pa);
    _stats->scalar("evict_notices") += 1;
    AgentInfo &ai = _agents[static_cast<std::size_t>(agent)];
    ai.link->send(MsgClass::Control, pathLatency(agent, pa),
                  [this, agent, pa]() {
        DirInfo &d = dirInfo(pa);
        if (d.owner == agent)
            d.owner = -1;
        d.sharers &= ~bit(agent);
        maybeGarbageCollect(pa);
    });
}

void
Llc::dmaRead(Addr pa, interconnect::Link *dma_link, DmaDone done)
{
    dmaArrive(lineAlign(pa), false, dma_link, std::move(done));
}

void
Llc::dmaWrite(Addr pa, interconnect::Link *dma_link, DmaDone done)
{
    dmaArrive(lineAlign(pa), true, dma_link, std::move(done));
}

void
Llc::dmaArrive(Addr pa, bool is_write, interconnect::Link *dma_link,
               DmaDone done)
{
    DirInfo &d = dirInfo(pa);
    if (d.busy) {
        d.deferred.push_back([this, pa, is_write, dma_link,
                              done = std::move(done)]() mutable {
            dmaArrive(pa, is_write, dma_link, std::move(done));
        });
        return;
    }
    d.busy = true;
    _stats->scalar(is_write ? "dma_writes" : "dma_reads") += 1;
    bankAccess(is_write);
    _ctx.eq.scheduleIn(_p.bankLatency, [this, pa, is_write, dma_link,
                                        done =
                                            std::move(done)]() mutable {
        auto proceed = [this, pa, is_write, dma_link,
                        done = std::move(done)]() mutable {
            if (is_write) {
                // Invalidate all stale copies, then install dirty
                // data at the LLC.
                clearRemote(-1, pa, false,
                            [this, pa, dma_link,
                             done = std::move(done)]() mutable {
                                DirInfo &dd = dirInfo(pa);
                                dd.owner = -1;
                                dd.sharers = 0;
                                mem::CacheLine *l = _tags.find(pa);
                                fusion_assert(l, "DMA write lost frame");
                                l->dirty = true;
                                finishTransaction(pa);
                                // Data crossed scratchpad -> LLC.
                                dma_link->send(
                                    MsgClass::Data,
                                    dma_link->latency(),
                                    [done = std::move(done)]() mutable {
                                        done();
                                    });
                            });
            } else {
                // Snoop the freshest copy (downgrade a dirty owner),
                // then push the line to the scratchpad.
                clearRemote(-1, pa, true,
                            [this, pa, dma_link,
                             done = std::move(done)]() mutable {
                                DirInfo &dd = dirInfo(pa);
                                if (dd.owner >= 0) {
                                    dd.sharers |= bit(dd.owner);
                                    dd.owner = -1;
                                }
                                finishTransaction(pa);
                                dma_link->send(
                                    MsgClass::Data,
                                    dma_link->latency(),
                                    [done = std::move(done)]() mutable {
                                        done();
                                    });
                            });
            }
        };
        if (_tags.find(pa)) {
            proceed();
        } else {
            ensurePresent(pa, std::move(proceed));
        }
    });
}

std::uint64_t
Llc::fwdsToAgent(int agent) const
{
    return _agents[static_cast<std::size_t>(agent)].fwds;
}

bool
Llc::isOwner(int agent, Addr pa) const
{
    const DirInfo *d = dirInfoIfAny(pa);
    return d && d->owner == agent;
}

bool
Llc::isSharer(int agent, Addr pa) const
{
    const DirInfo *d = dirInfoIfAny(pa);
    return d && (d->sharers & bit(agent)) != 0;
}

bool
Llc::dirBusy(Addr pa) const
{
    const DirInfo *d = dirInfoIfAny(pa);
    return d && d->busy;
}

} // namespace fusion::host
