/**
 * @file
 * The host multicore's shared L2 (LLC): an 8-tile NUCA array on a
 * ring with an embedded full-map 3-hop directory MESI protocol
 * (Table 2), backed by the DRAM model.
 *
 * All coherence in the host address space is ordered here. The LLC
 * is inclusive of every agent's cached lines; the directory has
 * perfect sharer information because agents send explicit eviction
 * notices (the accelerator tile never silently drops lines since it
 * only holds M/E states, Section 3.2).
 *
 * The LLC also services the oracle DMA engine of the SCRATCH
 * baseline: DMA reads snoop the most-up-to-date data (ARM ACP /
 * IBM PowerBus style coherent DMA, Section 2.1) and DMA writes
 * invalidate stale copies before updating the LLC.
 */

#ifndef FUSION_HOST_LLC_HH
#define FUSION_HOST_LLC_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "coherence/protocol.hh"
#include "interconnect/link.hh"
#include "interconnect/ring.hh"
#include "mem/cache_array.hh"
#include "mem/dram.hh"
#include "obs/span_tracer.hh"
#include "sim/sim_context.hh"

namespace fusion::host
{

/** LLC configuration (defaults = Table 2). */
struct LlcParams
{
    std::uint64_t capacityBytes = 4ull << 20;
    std::uint32_t assoc = 16;
    std::uint32_t nucaBanks = 8;
    Cycles bankLatency = 12; ///< bank+directory access
    Cycles hopLatency = 2;   ///< ring, per hop
};

/** What the directory granted for a request. */
struct LlcResponse
{
    /** Line granted in E/M (sole copy) rather than S. */
    bool exclusive = false;
};

/** Completion callback for LLC MESI transactions. */
using LlcDone = sim::SmallFn<void(const LlcResponse &)>;

/** Completion callback for DMA transfers. */
using DmaDone = sim::SmallFn<void()>;

/** NUCA LLC with embedded MESI directory. */
class Llc
{
  public:
    Llc(SimContext &ctx, const LlcParams &p, mem::Dram &dram);

    /**
     * Register a coherent agent (host L1, accelerator tile L1X).
     * @param agent forwarded-request sink
     * @param link the agent's physical link to the LLC
     * @param ring_node the agent's attachment point on the ring
     * @return agent id used in subsequent calls
     */
    int registerAgent(coherence::CoherentAgent *agent,
                      interconnect::Link *link,
                      std::uint32_t ring_node);

    /**
     * MESI request from an agent. @p done fires when the data (or
     * upgrade ack) arrives back at the agent.
     */
    void request(int agent, Addr pa, coherence::CoherenceReq kind,
                 LlcDone done);

    /**
     * Dirty writeback (PUTX) from an agent that owned the line.
     * Fire-and-forget: directory state updates after the data
     * message arrives.
     */
    void writebackData(int agent, Addr pa);

    /** Clean eviction notice (PutS/PutE). */
    void evictNotice(int agent, Addr pa);

    /**
     * Coherent DMA read: fetches the most-up-to-date line and ships
     * it over @p dma_link (LLC -> scratchpad). The DMA engine sits
     * at the LLC, so there is no request-message overhead (oracle
     * DMA, Section 4).
     */
    void dmaRead(Addr pa, interconnect::Link *dma_link, DmaDone done);

    /**
     * Coherent DMA write: ships the line over @p dma_link
     * (scratchpad -> LLC), invalidates stale copies and updates the
     * LLC.
     */
    void dmaWrite(Addr pa, interconnect::Link *dma_link, DmaDone done);

    /** Total directory-forwarded demands sent to @p agent. */
    std::uint64_t fwdsToAgent(int agent) const;

    /** Accessor used by tests. */
    mem::CacheArray &tags() { return _tags; }

    /** True if @p agent currently owns @p pa per the directory. */
    bool isOwner(int agent, Addr pa) const;
    /** True if @p agent is a sharer of @p pa per the directory. */
    bool isSharer(int agent, Addr pa) const;
    /**
     * True while a directory transaction for @p pa is in flight.
     * Invariant checkers skip busy entries: their dir state is
     * mid-update by design.
     */
    bool dirBusy(Addr pa) const;

  private:
    struct AgentInfo
    {
        coherence::CoherentAgent *agent = nullptr;
        interconnect::Link *link = nullptr;
        std::uint32_t node = 0;
        std::uint64_t fwds = 0;
    };

    struct DirInfo
    {
        int owner = -1;
        std::uint32_t sharers = 0;
        bool busy = false;
        std::deque<sim::SmallFn<void()>> deferred;

        bool
        idle() const
        {
            return owner < 0 && sharers == 0 && !busy &&
                   deferred.empty();
        }
    };

    static std::uint32_t bit(int agent)
    {
        return 1u << static_cast<std::uint32_t>(agent);
    }

    DirInfo &dirInfo(Addr pa);
    const DirInfo *dirInfoIfAny(Addr pa) const;
    void maybeGarbageCollect(Addr pa);

    /** Path latency agent <-> home bank (link + ring). */
    Cycles pathLatency(int agent, Addr pa) const;

    /** Book one bank access (energy + stats). */
    void bankAccess(bool is_write);

    void arrive(int agent, Addr pa, coherence::CoherenceReq kind,
                LlcDone done);
    void lookup(int agent, Addr pa, coherence::CoherenceReq kind,
                LlcDone done);
    /** Ensure @p pa has an LLC frame; may recall a victim + touch
     *  DRAM. Continues with @p then. */
    void ensurePresent(Addr pa, sim::SmallFn<void()> then);
    void dirAction(int agent, Addr pa, coherence::CoherenceReq kind,
                   LlcDone done);
    /** Invalidate/downgrade all remote holders, then @p then. */
    void clearRemote(int except_agent, Addr pa, bool downgrade_to_s,
                     sim::SmallFn<void()> then);
    void respond(int agent, Addr pa, interconnect::MsgClass cls,
                 bool exclusive, LlcDone done);
    void finishTransaction(Addr pa);

    void dmaArrive(Addr pa, bool is_write,
                   interconnect::Link *dma_link, DmaDone done);

    SimContext &_ctx;
    LlcParams _p;
    mem::Dram &_dram;
    interconnect::Ring _ring;
    mem::CacheArray _tags;
    double _bankReadPj = 0.0;
    double _bankWritePj = 0.0;
    energy::ComponentId _ecLlc = energy::kInvalidComponent;
    std::vector<AgentInfo> _agents;
    std::unordered_map<Addr, DirInfo> _dir;
    interconnect::Link _dramLink;
    stats::Group *_stats;
    // Per-access counters resolved once at construction.
    stats::Scalar *_stBankReads;
    stats::Scalar *_stBankWrites;
    stats::Scalar *_stRequests;
    stats::Scalar *_stHits;
    stats::Scalar *_stMisses;
    stats::Scalar *_stDeferred;
    /// Telemetry span tracer (null when tracing is off).
    obs::SpanTracer *_tracer = nullptr;
    std::uint32_t _track = 0;
};

} // namespace fusion::host

#endif // FUSION_HOST_LLC_HH
