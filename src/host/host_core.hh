/**
 * @file
 * Trace-driven host core timing model (Table 2: 2 GHz 4-way OOO,
 * 96-entry ROB, 32-entry load/store queues).
 *
 * The model replays a TraceOp stream: compute bursts retire at the
 * pipeline width per cycle; memory operations issue in program order
 * at one per cycle with a bounded number outstanding (approximating
 * the load-queue/ROB limits). This is deliberately simpler than a
 * full OOO pipeline — the paper's conclusions all live in the memory
 * system, and the host model only has to (a) produce the host phases
 * that exercise MESI against the accelerator tile and (b) rank
 * function weights for Table 1's %Time column.
 */

#ifndef FUSION_HOST_HOST_CORE_HH
#define FUSION_HOST_HOST_CORE_HH

#include <vector>

#include "host/host_l1.hh"
#include "sim/sim_context.hh"
#include "sim/small_fn.hh"
#include "trace/trace.hh"
#include "vm/page_table.hh"

namespace fusion::host
{

/** Host core parameters. */
struct HostCoreParams
{
    std::uint32_t issueWidth = 4;      ///< compute ops per cycle
    std::uint32_t maxOutstanding = 16; ///< in-flight loads
    std::uint32_t storeQueue = 32;     ///< Table 2 store queue
};

/** Trace-replay host core. */
class HostCore
{
  public:
    HostCore(SimContext &ctx, const HostCoreParams &p, HostL1 &l1,
             const vm::PageTable &pt);

    /**
     * Replay @p ops; @p done fires when the last op commits.
     * Only one run() may be active at a time.
     */
    void run(const std::vector<trace::TraceOp> &ops, Pid pid,
             sim::SmallFn<void()> done);

    /** True while a replay is active. */
    bool busy() const { return _active; }

    /** Committed memory operations. */
    std::uint64_t memOps() const { return _memOps; }

  private:
    void pump();

    SimContext &_ctx;
    HostCoreParams _p;
    HostL1 &_l1;
    const vm::PageTable &_pt;

    const std::vector<trace::TraceOp> *_ops = nullptr;
    Pid _pid = 0;
    std::size_t _pos = 0;
    std::uint32_t _outstandingLoads = 0;
    std::uint32_t _outstandingStores = 0;
    bool _active = false;
    bool _pumpScheduled = false;
    sim::SmallFn<void()> _done;
    std::uint64_t _memOps = 0;
};

} // namespace fusion::host

#endif // FUSION_HOST_HOST_CORE_HH
