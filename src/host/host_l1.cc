#include "host/host_l1.hh"

#include <sstream>
#include <vector>

#include "energy/sram_model.hh"
#include "sim/logging.hh"

namespace fusion::host
{

using coherence::CoherenceReq;
using coherence::FwdKind;
using mem::MesiState;

HostL1::HostL1(SimContext &ctx, const HostL1Params &p, Llc &llc,
               interconnect::Link *llc_link)
    : _ctx(ctx), _name(p.name), _llc(llc), _link(llc_link),
      _tags(mem::CacheGeometry{p.capacityBytes, p.assoc, kLineBytes}),
      _banks(p.banks, 1),
      _energyComponent(ctx.energy.component(
          p.energyComponent.empty() ? energy::comp::kHostL1
                                    : p.energyComponent))
{
    energy::SramParams sp;
    sp.capacityBytes = p.capacityBytes;
    sp.assoc = p.assoc;
    sp.banks = p.banks;
    sp.kind = energy::SramKind::Cache;
    _fig = energy::evaluateSram(sp);
    _wordAccessScale = p.wordAccessScale;
    _agentId = llc.registerAgent(this, llc_link, p.ringNode);
    _stats = &ctx.stats.root().child(p.name);
    _stReads = &_stats->scalar("reads");
    _stWrites = &_stats->scalar("writes");
    _stHits = &_stats->scalar("hits");
    _stMisses = &_stats->scalar("misses");
    _stBankConflicts = &_stats->scalar("bank_conflicts");
    _stMissLatency = &_stats->histogram("miss_latency", 0, 1024, 32);

    ctx.obs.registerGauge(p.name + ".mshrs", [this] {
        return static_cast<double>(_mshrs.size());
    });
    ctx.obs.registerCounter(p.name + ".misses", [this] {
        return static_cast<double>(_misses);
    });

    ctx.guard.registerSnapshot(_name, [this] {
        guard::ComponentState s;
        s.outstanding = _mshrs.size();
        if (s.outstanding != 0)
            s.detail = "mshrs=" + std::to_string(_mshrs.size());
        return s;
    });
    ctx.guard.registerInvariant(
        _name,
        [this](const guard::InvariantContext &ic,
               std::vector<std::string> &out) {
            // MESI agreement: every quiesced resident line must be
            // recorded at the directory with a compatible state.
            _tags.forEachValid([&](const mem::CacheLine &l) {
                if (_llc.dirBusy(l.lineAddr))
                    return;
                bool excl = l.mesi == mem::MesiState::M ||
                            l.mesi == mem::MesiState::E;
                bool ok = excl
                              ? _llc.isOwner(_agentId, l.lineAddr)
                              : (_llc.isSharer(_agentId, l.lineAddr) ||
                                 _llc.isOwner(_agentId, l.lineAddr));
                if (!ok) {
                    std::ostringstream os;
                    os << "resident line not in directory @ 0x"
                       << std::hex << l.lineAddr;
                    out.push_back(os.str());
                }
            });
            if (ic.atEnd && _mshrs.size() != 0) {
                out.push_back("leaked MSHRs at end-of-sim: " +
                              std::to_string(_mshrs.size()));
            }
        });
}

void
HostL1::bookAccess(bool is_write, double scale)
{
    _ctx.energy.add(_energyComponent,
                    (is_write ? _fig.writePj : _fig.readPj) * scale);
    *(is_write ? _stWrites : _stReads) += 1;
}

void
HostL1::access(Addr pa, bool is_write, AccessDone done)
{
    Addr line_addr = lineAlign(pa);
    bookAccess(is_write, _wordAccessScale);
    Cycles bank_delay = _banks.reserve(line_addr, _ctx.now());
    if (bank_delay > 0)
        *_stBankConflicts += 1;
    _ctx.eq.scheduleIn(_fig.latency + bank_delay,
                       [this, line_addr, is_write,
                        done = std::move(done)]() mutable {
                           lookup(line_addr, is_write,
                                  std::move(done));
                       });
}

void
HostL1::lookup(Addr line_addr, bool is_write, AccessDone done,
               bool is_retry)
{
    mem::CacheLine *line = _tags.find(line_addr);
    if (line) {
        bool hit = !is_write || line->mesi == MesiState::M ||
                   line->mesi == MesiState::E;
        if (hit) {
            if (!is_retry) {
                ++_hits;
                *_stHits += 1;
            }
            _tags.touch(*line);
            if (is_write) {
                line->mesi = MesiState::M;
                line->dirty = true;
            }
            done();
            return;
        }
        // Store to a Shared line: upgrade.
        if (!is_retry) {
            ++_misses;
            _stats->scalar("upgrades") += 1;
        }
        if (_mshrs.allocate(
                line_addr,
                [this, line_addr, is_write,
                 done = std::move(done)]() mutable {
                    // Retry after the upgrade completes.
                    lookup(line_addr, is_write, std::move(done),
                           true);
                })) {
            Tick t0 = _ctx.now();
            _llc.request(_agentId, line_addr, CoherenceReq::Upgrade,
                         [this, line_addr,
                          t0](const LlcResponse &) {
                             _stMissLatency->sample(
                                 static_cast<double>(_ctx.now() -
                                                     t0));
                             fillDone(line_addr, true, true);
                         });
        }
        return;
    }

    // Miss.
    if (!is_retry) {
        ++_misses;
        *_stMisses += 1;
    }
    bool primary = _mshrs.allocate(
        line_addr, [this, line_addr, is_write,
                    done = std::move(done)]() mutable {
            lookup(line_addr, is_write, std::move(done), true);
        });
    if (primary) {
        Tick t0 = _ctx.now();
        _llc.request(_agentId, line_addr,
                     is_write ? CoherenceReq::GetX
                              : CoherenceReq::GetS,
                     [this, line_addr, is_write,
                      t0](const LlcResponse &r) {
                         _stMissLatency->sample(
                             static_cast<double>(_ctx.now() - t0));
                         fillDone(line_addr, is_write, r.exclusive);
                     });
    }
}

mem::CacheLine *
HostL1::allocateFrame(Addr line_addr)
{
    mem::CacheLine *way = _tags.victim(line_addr);
    fusion_assert(way, "L1 victim selection failed");
    if (way->valid) {
        _stats->scalar("evictions") += 1;
        if (way->dirty || way->mesi == MesiState::M) {
            _llc.writebackData(_agentId, way->lineAddr);
        } else {
            _llc.evictNotice(_agentId, way->lineAddr);
        }
    }
    _tags.install(*way, line_addr);
    bookAccess(true); // fill writes the array
    return way;
}

void
HostL1::fillDone(Addr line_addr, bool is_write, bool exclusive)
{
    mem::CacheLine *line = _tags.find(line_addr);
    if (!line)
        line = allocateFrame(line_addr);
    if (is_write) {
        line->mesi = MesiState::M;
        line->dirty = true;
    } else {
        line->mesi = exclusive ? MesiState::E : MesiState::S;
    }
    _tags.touch(*line);
    _mshrs.complete(line_addr);
}

void
HostL1::handleFwd(Addr pa, FwdKind kind, FwdDone done)
{
    mem::CacheLine *line = _tags.find(lineAlign(pa));
    if (!line) {
        // Copy already evicted (race with our own writeback).
        done(false, false);
        return;
    }
    bool was_dirty = line->dirty || line->mesi == MesiState::M;
    bool retained = false;
    _stats->scalar("fwd_recv") += 1;
    bookAccess(false);
    if (_ctx.guard.fireFault(guard::FaultKind::StaleHostL1)) {
        // Ack the forward without acting on it: the directory clears
        // this agent while the L1 keeps (and may keep hitting on) a
        // stale copy. Caught by the MESI-agreement invariant on the
        // next sweep.
        done(false, false);
        return;
    }
    switch (kind) {
      case FwdKind::Inv:
      case FwdKind::FwdGetX:
        _tags.invalidate(*line);
        break;
      case FwdKind::FwdGetS:
        line->mesi = MesiState::S;
        line->dirty = false;
        retained = true;
        break;
    }
    done(was_dirty, retained);
}

void
HostL1::flushAll()
{
    _tags.forEachValid([this](mem::CacheLine &l) {
        if (l.dirty || l.mesi == MesiState::M) {
            _llc.writebackData(_agentId, l.lineAddr);
        } else {
            _llc.evictNotice(_agentId, l.lineAddr);
        }
        _tags.invalidate(l);
    });
}

} // namespace fusion::host
