/**
 * @file
 * The host core's private L1 data cache: a full MESI participant of
 * the LLC directory protocol (Table 2: 64 KB, 4-way, 3 cycles).
 *
 * In the SHARED configuration the accelerator tile's shared L1X is
 * modelled by this same controller class (it "appears as just
 * another L1 agent to the coherence protocol", Section 2.1), so the
 * construction parameters carry the geometry, link and energy
 * component explicitly.
 */

#ifndef FUSION_HOST_HOST_L1_HH
#define FUSION_HOST_HOST_L1_HH

#include <string>

#include "energy/sram_model.hh"
#include "coherence/protocol.hh"
#include "host/llc.hh"
#include "mem/cache_array.hh"
#include "mem/bank_scheduler.hh"
#include "mem/mshr.hh"
#include "sim/sim_context.hh"

namespace fusion::host
{

/** Construction parameters for a MESI L1 controller. */
struct HostL1Params
{
    std::string name = "host.l1";
    std::uint64_t capacityBytes = 64 * 1024;
    std::uint32_t assoc = 4;
    std::uint32_t banks = 1;
    std::string energyComponent; ///< ledger name for array accesses
    std::uint32_t ringNode = 0;  ///< attachment point on the LLC ring
    /// Energy scale for requester-side word accesses (the SHARED
    /// L1X is accessed at word granularity by the accelerators;
    /// fills and writebacks stay line-granular).
    double wordAccessScale = 1.0;
};

/**
 * A write-back, write-allocate MESI L1 cache controller.
 */
class HostL1 : public coherence::CoherentAgent
{
  public:
    using AccessDone = sim::SmallFn<void()>;

    HostL1(SimContext &ctx, const HostL1Params &p, Llc &llc,
           interconnect::Link *llc_link);

    /**
     * Perform one load/store of at most one cache line.
     * @p done fires when the access commits (hit latency included).
     */
    void access(Addr pa, bool is_write, AccessDone done);

    /** Flush every dirty line to the LLC and invalidate (barrier). */
    void flushAll();

    /** Access latency of the array. */
    Cycles latency() const { return _fig.latency; }

    // CoherentAgent interface.
    void handleFwd(Addr pa, coherence::FwdKind kind,
                   FwdDone done) override;
    const std::string &name() const override { return _name; }

    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }
    /** LLC agent id assigned at registration (fwdsToAgent key). */
    int agentId() const { return _agentId; }

  private:
    /** State/tag check after the array access latency. @p is_retry
     *  marks MSHR-fill replays (no hit/miss accounting). */
    void lookup(Addr line_addr, bool is_write, AccessDone done,
                bool is_retry = false);
    /** Handle the LLC response for a miss. */
    void fillDone(Addr line_addr, bool is_write, bool exclusive);
    /** Pick + clean a victim way, then install the line. */
    mem::CacheLine *allocateFrame(Addr line_addr);
    void bookAccess(bool is_write, double scale = 1.0);

    SimContext &_ctx;
    std::string _name;
    Llc &_llc;
    interconnect::Link *_link;
    mem::CacheArray _tags;
    mem::BankScheduler _banks;
    mem::MshrFile _mshrs;
    energy::SramFigures _fig;
    energy::ComponentId _energyComponent =
        energy::kInvalidComponent;
    double _wordAccessScale = 1.0;
    int _agentId = -1;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
    stats::Group *_stats;
    // Per-access counters resolved once at construction.
    stats::Scalar *_stReads;
    stats::Scalar *_stWrites;
    stats::Scalar *_stHits;
    stats::Scalar *_stMisses;
    stats::Scalar *_stBankConflicts;
    stats::Histogram *_stMissLatency;
};

} // namespace fusion::host

#endif // FUSION_HOST_HOST_L1_HH
