#include "host/host_core.hh"

#include "sim/logging.hh"

namespace fusion::host
{

HostCore::HostCore(SimContext &ctx, const HostCoreParams &p,
                   HostL1 &l1, const vm::PageTable &pt)
    : _ctx(ctx), _p(p), _l1(l1), _pt(pt)
{
    ctx.guard.registerSnapshot("host.core", [this] {
        guard::ComponentState s;
        s.outstanding = _outstandingLoads + _outstandingStores;
        if (_active) {
            s.detail = "op " + std::to_string(_pos) + "/" +
                       std::to_string(_ops ? _ops->size() : 0);
        }
        return s;
    });
}

void
HostCore::run(const std::vector<trace::TraceOp> &ops, Pid pid,
              sim::SmallFn<void()> done)
{
    fusion_assert(!_active, "host core already running a stream");
    _ops = &ops;
    _pid = pid;
    _pos = 0;
    _outstandingLoads = 0;
    _outstandingStores = 0;
    _active = true;
    _done = std::move(done);
    pump();
}

void
HostCore::pump()
{
    _pumpScheduled = false;
    while (_pos < _ops->size()) {
        const trace::TraceOp &op = (*_ops)[_pos];
        if (op.kind == trace::OpKind::Compute) {
            // Issue stalls for the burst's duration at the pipeline
            // width.
            Cycles c = (op.intOps + op.fpOps + _p.issueWidth - 1) /
                       _p.issueWidth;
            ++_pos;
            if (c > 0) {
                _pumpScheduled = true;
                _ctx.eq.scheduleIn(c, [this] { pump(); });
                return;
            }
            continue;
        }
        bool is_store = op.kind == trace::OpKind::Store;
        if (is_store ? _outstandingStores >= _p.storeQueue
                     : _outstandingLoads >= _p.maxOutstanding)
            return; // completion callback re-pumps
        ++_pos;
        ++_memOps;
        if (is_store)
            ++_outstandingStores;
        else
            ++_outstandingLoads;
        Addr pa = _pt.translate(_pid, op.addr);
        _l1.access(pa, is_store, [this, is_store] {
            if (is_store)
                --_outstandingStores;
            else
                --_outstandingLoads;
            _ctx.guard.noteProgress();
            if (!_pumpScheduled) {
                _pumpScheduled = true;
                _ctx.eq.scheduleIn(0, [this] { pump(); });
            }
        });
        // One memory issue per cycle.
        if (_pos < _ops->size()) {
            _pumpScheduled = true;
            _ctx.eq.scheduleIn(1, [this] { pump(); });
        }
        return;
    }
    if (_outstandingLoads == 0 && _outstandingStores == 0 &&
        _active) {
        _active = false;
        auto done = std::move(_done); // move empties _done
        done();
    }
}

} // namespace fusion::host
