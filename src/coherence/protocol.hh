/**
 * @file
 * Directory MESI protocol types shared between the LLC directory and
 * the coherent agents (host L1 and the accelerator tile's shared
 * L1X).
 *
 * The protocol is a 3-hop full-map directory MESI (Section 4: "We
 * have implemented a directory based 3-hop MESI protocol"). The
 * directory at the LLC serializes transactions per line; owners
 * receive forwarded requests (FwdGetS / FwdGetX) and sharers receive
 * invalidations.
 */

#ifndef FUSION_COHERENCE_PROTOCOL_HH
#define FUSION_COHERENCE_PROTOCOL_HH

#include <string>

#include "sim/small_fn.hh"
#include "sim/types.hh"

namespace fusion::coherence
{

/** Requests an agent can make to the directory. */
enum class CoherenceReq
{
    GetS,   ///< read: shared (or exclusive-clean if sole) copy
    GetX,   ///< write: exclusive copy, others invalidated
    Upgrade ///< S->M: invalidate other sharers, no data needed
};

/** Demands the directory forwards to caching agents. */
enum class FwdKind
{
    Inv,     ///< drop a shared copy
    FwdGetS, ///< owner: supply data, downgrade M/E -> S
    FwdGetX  ///< owner: supply data, invalidate
};

/** Human-readable names (debug traces). */
const char *reqName(CoherenceReq r);
const char *fwdName(FwdKind f);

/**
 * Interface implemented by every cache that participates in MESI.
 *
 * The directory calls handleFwd() when it needs the agent to give up
 * or downgrade a line. The agent *must* eventually invoke @p done,
 * passing whether it is returning dirty data; the accelerator tile
 * uses this hook to stall the response until the line's GTIME lease
 * expires (Section 3.2, "Integrating ACC with MESI").
 */
class CoherentAgent
{
  public:
    virtual ~CoherentAgent() = default;

    /**
     * Completion callback.
     * @p dirty    modified data supplied with the response
     * @p retained the agent kept a shared copy (host caches
     *             downgrade on FwdGetS; the accelerator tile always
     *             relinquishes, Section 3.2)
     */
    using FwdDone = sim::SmallFn<void(bool dirty, bool retained)>;

    /**
     * Handle a forwarded coherence demand for physical line @p pa.
     */
    virtual void handleFwd(Addr pa, FwdKind kind, FwdDone done) = 0;

    /** Agent name for traces and stats. */
    virtual const std::string &name() const = 0;
};

} // namespace fusion::coherence

#endif // FUSION_COHERENCE_PROTOCOL_HH
