#include "coherence/protocol.hh"

namespace fusion::coherence
{

const char *
reqName(CoherenceReq r)
{
    switch (r) {
      case CoherenceReq::GetS:
        return "GetS";
      case CoherenceReq::GetX:
        return "GetX";
      case CoherenceReq::Upgrade:
        return "Upgrade";
    }
    return "?";
}

const char *
fwdName(FwdKind f)
{
    switch (f) {
      case FwdKind::Inv:
        return "Inv";
      case FwdKind::FwdGetS:
        return "FwdGetS";
      case FwdKind::FwdGetX:
        return "FwdGetX";
    }
    return "?";
}

} // namespace fusion::coherence
