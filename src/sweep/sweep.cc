#include "sweep/sweep.hh"

#include <atomic>
#include <condition_variable>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "core/runner.hh"
#include "core/system.hh"
#include "obs/span_tracer.hh"
#include "sim/hash.hh"
#include "sim/logging.hh"
#include "sweep/result_cache.hh"
#include "trace/store.hh"

namespace fusion::sweep
{

namespace
{

/**
 * Thread-safe build-once cache of traced programs, keyed by
 * (workload, scale). The first worker to need a program builds it;
 * concurrent requesters for the same key block on its slot while
 * other keys build in parallel.
 */
class ProgramCache
{
  public:
    std::shared_ptr<const trace::Program>
    get(const std::string &workload, workloads::Scale scale)
    {
        Key key{workload, static_cast<int>(scale)};
        std::shared_ptr<Slot> slot;
        bool builder = false;
        {
            std::lock_guard<std::mutex> lk(_mu);
            auto [it, inserted] =
                _slots.try_emplace(key, nullptr);
            if (inserted)
                it->second = std::make_shared<Slot>();
            slot = it->second;
            if (!slot->claimed) {
                slot->claimed = true;
                builder = true;
            }
        }
        if (builder) {
            try {
                // core::buildProgram is the record/replay seam: when
                // a global trace store is armed (--trace-dir), the
                // build is captured once and replayed from disk.
                auto built = core::buildProgram(workload, scale);
                fusion_assert(built,
                              "sweep job validated but workload '",
                              workload, "' vanished");
                auto prog = std::make_shared<const trace::Program>(
                    std::move(*built));
                {
                    std::lock_guard<std::mutex> lk(slot->mu);
                    slot->prog = std::move(prog);
                }
                slot->cv.notify_all();
            } catch (...) {
                // Wake every waiter so a failed build poisons only
                // the jobs that need this program, not the sweep.
                {
                    std::lock_guard<std::mutex> lk(slot->mu);
                    slot->failed = true;
                }
                slot->cv.notify_all();
                throw;
            }
        }
        std::unique_lock<std::mutex> lk(slot->mu);
        slot->cv.wait(lk, [&] {
            return slot->prog != nullptr || slot->failed;
        });
        if (slot->failed) {
            guard::SimError e;
            e.category = guard::ErrorCategory::Internal;
            e.component = "program-cache";
            e.message = "program build failed for workload '" +
                        workload + "'";
            throw guard::SimErrorException(std::move(e));
        }
        return slot->prog;
    }

  private:
    using Key = std::pair<std::string, int>;

    struct Slot
    {
        std::mutex mu;
        std::condition_variable cv;
        bool claimed = false; ///< guarded by ProgramCache::_mu
        bool failed = false;  ///< build threw; guarded by mu
        std::shared_ptr<const trace::Program> prog;
    };

    std::mutex _mu;
    std::map<Key, std::shared_ptr<Slot>> _slots;
};

/** Reject bad jobs before any thread starts simulating. */
void
validateJobs(const std::vector<SweepJob> &jobs)
{
    std::ostringstream errs;
    bool bad = false;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const SweepJob &j = jobs[i];
        auto label = [&]() -> std::string {
            return "job " + std::to_string(i) +
                   (j.tag.empty() ? "" : " (" + j.tag + ")");
        };
        if (!j.prog && !workloads::makeWorkload(j.workload)) {
            bad = true;
            errs << "\n  " << label() << ": unknown workload '"
                 << j.workload << "' (known:";
            for (const auto &n : workloads::workloadNames())
                errs << ' ' << n;
            errs << ')';
        }
        if (static_cast<bool>(j.transform) !=
            (j.transformId != 0)) {
            bad = true;
            errs << "\n  " << label()
                 << (j.transform
                         ? ": transform set but transformId is 0 "
                           "(would alias the untransformed trace "
                           "in the result cache)"
                         : ": transformId set without a transform");
        }
        for (const std::string &e : j.cfg.validate()) {
            bad = true;
            errs << "\n  " << label() << ": " << e;
        }
    }
    if (bad)
        fusion_fatal("invalid sweep job list:", errs.str());
}

} // namespace

std::size_t
defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

std::vector<core::RunResult>
runSweep(const std::vector<SweepJob> &jobs, const SweepOptions &opt)
{
    validateJobs(jobs);

    std::vector<core::RunResult> results(jobs.size());
    if (opt.cacheStats)
        *opt.cacheStats = SweepCacheStats{};
    if (jobs.empty())
        return results;

    ProgramCache cache;
    std::atomic<std::size_t> next{0};
    std::mutex progressMu;
    std::size_t completed = 0;

    // Result-cache plumbing; all of it is inert when opt.cache is
    // null, keeping the engine byte-identical to its pre-cache form.
    SweepCacheStats cstats;
    std::mutex cacheMu; // counters, span marks, hash memo, dedupe map
    // Program content hashes, memoized per shared program instance
    // (jobs sharing one build hash it once).
    std::map<const trace::Program *, std::uint64_t> progHashes;
    // In-flight dedupe: identical (config, trace) jobs in the same
    // sweep share one simulation via a builder/waiter slot, same
    // discipline as ProgramCache.
    struct DedupSlot
    {
        std::mutex mu;
        std::condition_variable cv;
        bool claimed = false; ///< guarded by cacheMu
        bool done = false;    ///< guarded by mu
        core::RunResult result;
    };
    std::map<CacheKey, std::shared_ptr<DedupSlot>> dedup;

    std::uint32_t hitTrack = 0, missTrack = 0, dedupTrack = 0,
                  bypassTrack = 0;
    obs::SpanTracer *spans = opt.cache ? opt.cacheSpans : nullptr;
    if (spans) {
        hitTrack = spans->registerTrack("cache.hit");
        missTrack = spans->registerTrack("cache.miss");
        dedupTrack = spans->registerTrack("cache.dedup");
        // Jobs the cache refuses (telemetry or faults armed) are
        // marked too, so a --trace-out export still shows the cache
        // decision for every sweep point.
        bypassTrack = spans->registerTrack("cache.bypass");
    }
    // Callers hold cacheMu.
    auto mark = [&](std::uint32_t track, std::size_t index) {
        if (spans)
            spans->complete(track, obs::SpanKind::CacheLookup,
                            static_cast<Addr>(index), 0, 0);
    };

    auto hashOf =
        [&](const std::shared_ptr<const trace::Program> &p) {
            std::lock_guard<std::mutex> lk(cacheMu);
            auto [it, inserted] = progHashes.try_emplace(p.get(), 0);
            if (inserted)
                it->second = trace::programHash(*p);
            return it->second;
        };
    // Trace identity of a job: the base program's content hash,
    // folded with the transform identity when one is attached. The
    // transformed program itself is never hashed — that is the point
    // of lazy transforms (a cache hit skips the copy entirely).
    auto traceHashOf =
        [&](const SweepJob &j,
            const std::shared_ptr<const trace::Program> &p) {
            std::uint64_t h = hashOf(p);
            if (j.transform) {
                unsigned char b[16];
                for (int k = 0; k < 8; ++k) {
                    b[k] = static_cast<unsigned char>(h >> (8 * k));
                    b[8 + k] = static_cast<unsigned char>(
                        j.transformId >> (8 * k));
                }
                h = fnv1a({reinterpret_cast<const char *>(b),
                           sizeof(b)});
            }
            return h;
        };

    // One isolated simulation; every failure mode becomes a failed
    // result so a poisoned job never takes down sibling jobs.
    auto simulate = [](const SweepJob &j,
                       const trace::Program &prog) {
        core::RunResult res;
        try {
            // Each job gets its own System and therefore its own
            // SimContext/event queue: no state crosses jobs.
            core::System sys(j.cfg, prog);
            try {
                res = sys.run();
            } catch (const guard::SimErrorException &ex) {
                res = core::RunResult{};
                res.workload = j.workload;
                res.kind = j.cfg.kind;
                res.error = ex.error();
                res.faultsFired = sys.ctx().guard.faultsFired();
                res.faultFiredMask = sys.ctx().guard.firedFaultMask();
            }
        } catch (const guard::SimErrorException &ex) {
            res = core::RunResult{};
            res.workload = j.workload;
            res.kind = j.cfg.kind;
            res.error = ex.error();
        } catch (const std::exception &ex) {
            res = core::RunResult{};
            res.workload = j.workload;
            res.kind = j.cfg.kind;
            guard::SimError e;
            e.category = guard::ErrorCategory::Internal;
            e.component = "sweep-worker";
            e.message = ex.what();
            res.error = std::move(e);
        }
        return res;
    };

    // simulate() plus the lazy transform copy. Never throws: a
    // transform failure becomes a failed result so the builder of a
    // dedupe slot always publishes and waiters never hang.
    auto runJob = [&](const SweepJob &j,
                      const trace::Program &base) {
        if (!j.transform)
            return simulate(j, base);
        try {
            trace::Program copy(base);
            j.transform(copy);
            return simulate(j, copy);
        } catch (const std::exception &ex) {
            core::RunResult res;
            res.workload = j.workload;
            res.kind = j.cfg.kind;
            guard::SimError e;
            e.category = guard::ErrorCategory::Internal;
            e.component = "sweep-transform";
            e.message = ex.what();
            res.error = std::move(e);
            return res;
        }
    };

    auto worker = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= jobs.size())
                return;
            const SweepJob &j = jobs[i];
            try {
                std::shared_ptr<const trace::Program> prog =
                    j.prog ? j.prog
                           : cache.get(j.workload, j.scale);
                if (opt.cache && ResultCache::cacheable(j.cfg)) {
                    const CacheKey key{j.cfg.canonicalHash(),
                                       traceHashOf(j, prog)};
                    std::shared_ptr<DedupSlot> slot;
                    bool builder = false;
                    {
                        std::lock_guard<std::mutex> lk(cacheMu);
                        auto [it, inserted] =
                            dedup.try_emplace(key, nullptr);
                        if (inserted)
                            it->second =
                                std::make_shared<DedupSlot>();
                        slot = it->second;
                        if (!slot->claimed) {
                            slot->claimed = true;
                            builder = true;
                        }
                    }
                    if (builder) {
                        std::optional<core::RunResult> hit =
                            opt.cache->lookup(key);
                        if (hit) {
                            results[i] = std::move(*hit);
                            std::lock_guard<std::mutex> lk(cacheMu);
                            ++cstats.hits;
                            mark(hitTrack, i);
                        } else {
                            {
                                std::lock_guard<std::mutex> lk(
                                    cacheMu);
                                ++cstats.misses;
                                mark(missTrack, i);
                            }
                            results[i] = runJob(j, *prog);
                            // Failed results are rejected by store().
                            opt.cache->store(key, results[i]);
                        }
                        {
                            std::lock_guard<std::mutex> lk(slot->mu);
                            slot->result = results[i];
                            slot->done = true;
                        }
                        slot->cv.notify_all();
                    } else {
                        // An identical job is already in flight:
                        // share its (deterministic) result instead
                        // of simulating the same point twice.
                        {
                            std::unique_lock<std::mutex> lk(slot->mu);
                            slot->cv.wait(
                                lk, [&] { return slot->done; });
                            results[i] = slot->result;
                        }
                        std::lock_guard<std::mutex> lk(cacheMu);
                        ++cstats.deduped;
                        mark(dedupTrack, i);
                    }
                } else {
                    if (opt.cache && spans) {
                        std::lock_guard<std::mutex> lk(cacheMu);
                        mark(bypassTrack, i);
                    }
                    results[i] = runJob(j, *prog);
                }
            } catch (const guard::SimErrorException &ex) {
                // Program build failures.
                results[i] = core::RunResult{};
                results[i].workload = j.workload;
                results[i].kind = j.cfg.kind;
                results[i].error = ex.error();
            } catch (const std::exception &ex) {
                results[i] = core::RunResult{};
                results[i].workload = j.workload;
                results[i].kind = j.cfg.kind;
                guard::SimError e;
                e.category = guard::ErrorCategory::Internal;
                e.component = "sweep-worker";
                e.message = ex.what();
                results[i].error = std::move(e);
            }
            {
                std::lock_guard<std::mutex> lk(progressMu);
                ++completed;
                if (opt.progress)
                    opt.progress(SweepProgress{completed,
                                               jobs.size(), i, &j});
            }
        }
    };

    std::size_t workers =
        std::max<std::size_t>(1, std::min(opt.jobs, jobs.size()));
    if (workers == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    if (opt.cacheStats)
        *opt.cacheStats = cstats;
    return results;
}

std::string
reportJson(const std::string &sweepName,
           const std::vector<SweepJob> &jobs,
           const std::vector<core::RunResult> &results,
           bool includePerf, const SweepCacheStats *cacheStats)
{
    fusion_assert(jobs.size() == results.size(),
                  "report jobs/results size mismatch: ",
                  jobs.size(), " vs ", results.size());
    auto escape = [](const std::string &s) {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out;
    };
    auto scaleName = [](workloads::Scale s) {
        switch (s) {
          case workloads::Scale::Small:
            return "small";
          case workloads::Scale::Paper:
            return "paper";
          case workloads::Scale::Large:
            return "large";
        }
        return "?";
    };

    std::ostringstream os;
    os << "{\"sweep\":\"" << escape(sweepName) << "\",\"jobs\":[";
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const SweepJob &j = jobs[i];
        const core::SystemConfig &c = j.cfg;
        os << (i ? ",\n" : "\n") << "{\"index\":" << i
           << ",\"tag\":\"" << escape(j.tag) << '"'
           << ",\"workload\":\"" << escape(j.workload) << '"'
           << ",\"scale\":\"" << scaleName(j.scale) << '"'
           << ",\"config\":{"
           << "\"system\":\"" << core::systemKindName(c.kind) << '"'
           << ",\"scratchpadBytes\":" << c.scratchpadBytes
           << ",\"l0xBytes\":" << c.l0xBytes
           << ",\"l0xAssoc\":" << c.l0xAssoc
           << ",\"l1xBytes\":" << c.l1xBytes
           << ",\"l1xAssoc\":" << c.l1xAssoc
           << ",\"l1xBanks\":" << c.l1xBanks
           << ",\"l0xWriteThrough\":"
           << (c.l0xWriteThrough ? "true" : "false")
           << ",\"overlapInvocations\":"
           << (c.overlapInvocations ? "true" : "false")
           << ",\"numTiles\":" << c.numTiles
           << ",\"dmaMaxOutstanding\":" << c.dmaMaxOutstanding
           << "},\"result\":" << results[i].toJson(includePerf)
           << '}';
    }
    os << "\n]";
    // Only emitted when some job failed, so healthy reports stay
    // byte-identical to pre-hardening output.
    std::size_t failed = 0;
    for (const auto &r : results)
        if (r.failed())
            ++failed;
    if (failed != 0)
        os << ",\"failed\":" << failed;
    // Sweep-level gauge aggregate (min/mean/max per gauge across
    // every sampled job). Only present when some job carried interval
    // metrics, so default reports stay byte-identical.
    {
        std::map<std::string, obs::GaugeSummary> summary;
        for (const auto &r : results)
            if (r.metrics)
                obs::accumulate(summary, *r.metrics);
        if (!summary.empty()) {
            os << ",\"metricsSummary\":";
            obs::writeSummaryJson(os, summary);
        }
    }
    // Sweep-level aggregate of the per-run wall-clock data; only on
    // request, for the same determinism reasons as RunResult::perf.
    if (includePerf) {
        double host_seconds = 0.0;
        std::uint64_t events = 0;
        for (const auto &r : results) {
            if (r.perf) {
                host_seconds += r.perf->hostSeconds;
                events += r.perf->events;
            }
        }
        os << ",\"perf\":{\"hostSeconds\":" << host_seconds
           << ",\"events\":" << events << ",\"eventsPerSecond\":"
           << (host_seconds > 0.0
                   ? static_cast<double>(events) / host_seconds
                   : 0.0)
           << '}';
    }
    // Result-cache counters: only on request, and never inside the
    // per-job entries, so the results array is byte-identical
    // whether a point was simulated or replayed from cache.
    if (cacheStats) {
        os << ",\"cache\":{\"hits\":" << cacheStats->hits
           << ",\"misses\":" << cacheStats->misses
           << ",\"deduped\":" << cacheStats->deduped << '}';
    }
    os << "}\n";
    return os.str();
}

void
writeReport(std::ostream &os, const std::string &sweepName,
            const std::vector<SweepJob> &jobs,
            const std::vector<core::RunResult> &results,
            bool includePerf, const SweepCacheStats *cacheStats)
{
    os << reportJson(sweepName, jobs, results, includePerf,
                     cacheStats);
}

void
writeReportFile(const std::string &path,
                const std::string &sweepName,
                const std::vector<SweepJob> &jobs,
                const std::vector<core::RunResult> &results,
                bool includePerf, const SweepCacheStats *cacheStats)
{
    std::ofstream out(path);
    if (!out)
        fusion_fatal("cannot open sweep report file ", path);
    writeReport(out, sweepName, jobs, results, includePerf,
                cacheStats);
}

} // namespace fusion::sweep
