/**
 * @file
 * Parallel experiment sweep engine.
 *
 * Every figure/table of the paper's evaluation is a sweep: a list
 * of independent (SystemConfig x workload) simulations whose
 * results are rendered into one table. Each simulation is a
 * deterministic, isolated event-queue run (its own SimContext), so
 * sweeps parallelize perfectly across worker threads.
 *
 * The engine takes a job list, runs it on a fixed-size thread pool,
 * and returns results ordered by submission index — regardless of
 * completion order, the result vector is identical to a serial run.
 * Programs are built on demand and shared: jobs naming the same
 * (workload, scale) pair reuse one trace capture.
 */

#ifndef FUSION_SWEEP_SWEEP_HH
#define FUSION_SWEEP_SWEEP_HH

#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/results.hh"
#include "core/system_config.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace fusion::sweep
{

/** One independent simulation of a sweep. */
struct SweepJob
{
    /** System to simulate; validated before any job runs. */
    core::SystemConfig cfg;
    /** Workload name ("fft", ...); ignored when @ref prog is set. */
    std::string workload;
    workloads::Scale scale = workloads::Scale::Paper;
    /** Harness-meaningful label carried into progress callbacks and
     *  the JSON report ("fft/FU-Dx", "lt=4.0", ...). */
    std::string tag;
    /**
     * Optional pre-built (possibly modified) program. When unset
     * the engine builds @ref workload at @ref scale, caching one
     * build per (workload, scale) across the whole sweep.
     */
    std::shared_ptr<const trace::Program> prog;
};

/** Snapshot passed to the progress callback after each completion. */
struct SweepProgress
{
    std::size_t completed = 0; ///< jobs finished so far
    std::size_t total = 0;     ///< jobs submitted
    std::size_t index = 0;     ///< submission index of the finisher
    const SweepJob *job = nullptr;
};

/** Called after every job completes; serialized by the engine. */
using ProgressFn = std::function<void(const SweepProgress &)>;

struct SweepOptions
{
    /** Worker threads; clamped to [1, jobs.size()]. 1 = in-caller
     *  serial execution. */
    std::size_t jobs = 1;
    ProgressFn progress;
};

/** Hardware concurrency, clamped to at least 1. */
std::size_t defaultJobs();

/**
 * Run every job and return results by submission index.
 *
 * Fails fast (fusion_fatal) before any simulation starts if a job
 * names an unknown workload or its SystemConfig::validate() reports
 * errors. Results do not depend on the worker count: job i's result
 * is always at index i and each simulation runs in its own
 * SimContext.
 */
std::vector<core::RunResult>
runSweep(const std::vector<SweepJob> &jobs,
         const SweepOptions &opt = {});

/**
 * Serialize a completed sweep as a JSON document: one entry per
 * job, in submission order, pairing the job's tag/config with its
 * full RunResult (RunResult::toJson()).
 *
 * @param includePerf forward wall-clock "perf" objects into each
 *        result and append a sweep-level aggregate. Off by default:
 *        host timing varies run to run, and the determinism tests
 *        compare reports byte for byte.
 */
std::string reportJson(const std::string &sweepName,
                       const std::vector<SweepJob> &jobs,
                       const std::vector<core::RunResult> &results,
                       bool includePerf = false);

/** reportJson() to a stream. */
void writeReport(std::ostream &os, const std::string &sweepName,
                 const std::vector<SweepJob> &jobs,
                 const std::vector<core::RunResult> &results,
                 bool includePerf = false);

/** reportJson() to a file; fusion_fatal if it cannot be opened. */
void writeReportFile(const std::string &path,
                     const std::string &sweepName,
                     const std::vector<SweepJob> &jobs,
                     const std::vector<core::RunResult> &results,
                     bool includePerf = false);

} // namespace fusion::sweep

#endif // FUSION_SWEEP_SWEEP_HH
