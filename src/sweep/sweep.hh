/**
 * @file
 * Parallel experiment sweep engine.
 *
 * Every figure/table of the paper's evaluation is a sweep: a list
 * of independent (SystemConfig x workload) simulations whose
 * results are rendered into one table. Each simulation is a
 * deterministic, isolated event-queue run (its own SimContext), so
 * sweeps parallelize perfectly across worker threads.
 *
 * The engine takes a job list, runs it on a fixed-size thread pool,
 * and returns results ordered by submission index — regardless of
 * completion order, the result vector is identical to a serial run.
 * Programs are built on demand and shared: jobs naming the same
 * (workload, scale) pair reuse one trace capture.
 */

#ifndef FUSION_SWEEP_SWEEP_HH
#define FUSION_SWEEP_SWEEP_HH

#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/results.hh"
#include "core/system_config.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace fusion::obs
{
class SpanTracer;
}

namespace fusion::sweep
{

class ResultCache;

/** One independent simulation of a sweep. */
struct SweepJob
{
    /** System to simulate; validated before any job runs. */
    core::SystemConfig cfg;
    /** Workload name ("fft", ...); ignored when @ref prog is set. */
    std::string workload;
    workloads::Scale scale = workloads::Scale::Paper;
    /** Harness-meaningful label carried into progress callbacks and
     *  the JSON report ("fft/FU-Dx", "lt=4.0", ...). */
    std::string tag;
    /**
     * Optional pre-built (possibly modified) program. When unset
     * the engine builds @ref workload at @ref scale, caching one
     * build per (workload, scale) across the whole sweep.
     */
    std::shared_ptr<const trace::Program> prog;
    /**
     * Optional program transform, applied to a private copy of the
     * base program immediately before simulation. Harnesses that
     * sweep a trace-side knob (lease scaling, op thinning, ...)
     * should attach the base program once and express the per-point
     * mutation here instead of materializing N mutated copies up
     * front: the copy is made lazily inside the worker, so jobs
     * served from the result cache (or deduplicated in flight)
     * never pay the deep copy or its content hash.
     */
    std::function<void(trace::Program &)> transform;
    /**
     * Content identity of @ref transform, mixed into the job's
     * trace hash for result-cache keying. Must be nonzero when
     * transform is set and zero otherwise (validated before the
     * sweep runs). Two jobs may share a transformId only if their
     * transforms produce identical programs from identical inputs —
     * hash the transform's parameters (fusion::fnv1a over a
     * descriptive string is fine), not just its kind.
     */
    std::uint64_t transformId = 0;
};

/** Snapshot passed to the progress callback after each completion. */
struct SweepProgress
{
    std::size_t completed = 0; ///< jobs finished so far
    std::size_t total = 0;     ///< jobs submitted
    std::size_t index = 0;     ///< submission index of the finisher
    const SweepJob *job = nullptr;
};

/** Called after every job completes; serialized by the engine. */
using ProgressFn = std::function<void(const SweepProgress &)>;

/**
 * How the result cache fared over one sweep. Hit + miss counts cover
 * only *cacheable* jobs (ResultCache::cacheable); a deduped job is
 * one that neither hit disk nor simulated because an identical job
 * was already in flight in this very sweep and its result was shared.
 */
struct SweepCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t deduped = 0;
};

struct SweepOptions
{
    /** Worker threads; clamped to [1, jobs.size()]. 1 = in-caller
     *  serial execution. */
    std::size_t jobs = 1;
    ProgressFn progress;
    /**
     * Content-addressed result cache (result_cache.hh). When set,
     * every cacheable job is looked up by (config hash, trace hash)
     * before dispatch, identical in-flight jobs are deduplicated
     * behind one simulation, and completed results are stored.
     * nullptr (default) = caching off, byte-identical to the
     * pre-cache engine.
     */
    ResultCache *cache = nullptr;
    /** When non-null, filled with this sweep's cache counters. */
    SweepCacheStats *cacheStats = nullptr;
    /**
     * Optional standalone tracer marking every cache probe as a
     * SpanKind::CacheLookup span on a "cache.hit" / "cache.miss" /
     * "cache.dedup" / "cache.bypass" track (addr = job submission
     * index), so a
     * --trace-out Perfetto export shows which sweep points were
     * served from disk. Ignored when @ref cache is null.
     */
    obs::SpanTracer *cacheSpans = nullptr;
};

/** Hardware concurrency, clamped to at least 1. */
std::size_t defaultJobs();

/**
 * Run every job and return results by submission index.
 *
 * Fails fast (fusion_fatal) before any simulation starts if a job
 * names an unknown workload or its SystemConfig::validate() reports
 * errors. Results do not depend on the worker count: job i's result
 * is always at index i and each simulation runs in its own
 * SimContext.
 */
std::vector<core::RunResult>
runSweep(const std::vector<SweepJob> &jobs,
         const SweepOptions &opt = {});

/**
 * Serialize a completed sweep as a JSON document: one entry per
 * job, in submission order, pairing the job's tag/config with its
 * full RunResult (RunResult::toJson()).
 *
 * @param includePerf forward wall-clock "perf" objects into each
 *        result and append a sweep-level aggregate. Off by default:
 *        host timing varies run to run, and the determinism tests
 *        compare reports byte for byte.
 * @param cacheStats when non-null, append a top-level "cache"
 *        object with the sweep's hit/miss/dedupe counters. Kept out
 *        of the default report (and out of the per-job entries) so
 *        the results array is byte-identical whether a job was
 *        simulated or served from cache.
 */
std::string reportJson(const std::string &sweepName,
                       const std::vector<SweepJob> &jobs,
                       const std::vector<core::RunResult> &results,
                       bool includePerf = false,
                       const SweepCacheStats *cacheStats = nullptr);

/** reportJson() to a stream. */
void writeReport(std::ostream &os, const std::string &sweepName,
                 const std::vector<SweepJob> &jobs,
                 const std::vector<core::RunResult> &results,
                 bool includePerf = false,
                 const SweepCacheStats *cacheStats = nullptr);

/** reportJson() to a file; fusion_fatal if it cannot be opened. */
void writeReportFile(const std::string &path,
                     const std::string &sweepName,
                     const std::vector<SweepJob> &jobs,
                     const std::vector<core::RunResult> &results,
                     bool includePerf = false,
                     const SweepCacheStats *cacheStats = nullptr);

} // namespace fusion::sweep

#endif // FUSION_SWEEP_SWEEP_HH
