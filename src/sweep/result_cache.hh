/**
 * @file
 * Content-addressed on-disk cache of completed RunResults.
 *
 * A sweep job is a pure function: (SystemConfig, traced program) ->
 * RunResult, bit-for-bit deterministic (the property anchored by the
 * SweepDeterminism tests). That makes completed results cacheable by
 * *content identity* alone:
 *
 *   key = (SystemConfig::canonicalHash(), trace::programHash(prog))
 *
 * salted on disk by the result-blob format version. Identical
 * invocations of any harness — re-running a figure after an
 * unrelated edit, CI re-runs, parameter sweeps sharing points —
 * skip simulation entirely and replay the stored result, which
 * regenerates byte-identical JSON (doubles are stored bit-exactly).
 *
 * Layout: one file per entry,
 *   <dir>/v<kResultBlobVersion>/<config-hash>-<trace-hash>.res
 * each a self-validating "FRES" envelope (sim/wire.hh). Writes are
 * atomic (tmp + rename) so concurrent processes sharing a cache
 * directory never observe torn entries. Reads are corruption
 * tolerant: a truncated, bit-flipped or wrong-version file is a
 * cache miss (and is deleted), never a crash — the same contract as
 * the trace store (docs/HARDENING.md).
 *
 * The cache is bounded: when the directory exceeds maxBytes the
 * least-recently-used entries (by file mtime; hits re-touch their
 * entry) are evicted until it fits.
 *
 * What is cacheable (ResultCache::cacheable): runs with no telemetry
 * armed and no fault injection armed. Telemetry payloads (span
 * rings, interval series) are deliberately not serialized, and
 * fault-injected runs are intentionally perturbed. Watchdog budgets
 * are fine — a healthy guarded run is deterministic, and failed runs
 * are never stored. Every guard/obs knob still participates in
 * canonicalHash(), so differently-instrumented runs can never alias
 * a cached entry in the first place.
 */

#ifndef FUSION_SWEEP_RESULT_CACHE_HH
#define FUSION_SWEEP_RESULT_CACHE_HH

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "core/results.hh"
#include "core/system_config.hh"

namespace fusion::sweep
{

/** Content identity of one sweep job. */
struct CacheKey
{
    /** SystemConfig::canonicalHash() of the job's config. */
    std::uint64_t configHash = 0;
    /** trace::programHash() of the job's (possibly mutated) program. */
    std::uint64_t traceHash = 0;

    friend bool
    operator==(const CacheKey &a, const CacheKey &b)
    {
        return a.configHash == b.configHash &&
               a.traceHash == b.traceHash;
    }

    friend bool
    operator<(const CacheKey &a, const CacheKey &b)
    {
        return a.configHash != b.configHash
                   ? a.configHash < b.configHash
                   : a.traceHash < b.traceHash;
    }
};

/** Thread-safe content-addressed result store rooted at one dir. */
class ResultCache
{
  public:
    /** Lifetime counters (process-local, monotonic). */
    struct Stats
    {
        std::uint64_t hits = 0;      ///< lookups served from disk
        std::uint64_t misses = 0;    ///< lookups that found nothing
        std::uint64_t stores = 0;    ///< entries written
        std::uint64_t evictions = 0; ///< entries removed by the cap
        std::uint64_t corrupt = 0;   ///< bad entries found (=> miss)
    };

    /**
     * Open (and lazily create) a cache rooted at @p dir.
     * @param maxBytes size cap for eviction; 0 means "use
     *        FUSION_CACHE_MAX_BYTES from the environment, default
     *        256 MiB".
     */
    explicit ResultCache(std::string dir, std::uint64_t maxBytes = 0);

    /**
     * True when a job with this config may be served from / stored
     * into the cache: no telemetry armed (span/metrics payloads are
     * not serialized) and no fault injection armed (perturbed runs
     * must actually run). See the file comment for the rationale.
     */
    static bool
    cacheable(const core::SystemConfig &cfg)
    {
        return !cfg.obs.anyEnabled() && !cfg.guard.faultArmed();
    }

    /**
     * Probe the cache. A hit re-touches the entry's mtime (LRU) and
     * returns the decoded result; anything else — absent, truncated,
     * corrupted, or wrong format version — is a miss (corrupt
     * entries are also deleted so the slot can be rewritten).
     */
    std::optional<core::RunResult> lookup(const CacheKey &key);

    /**
     * Store a completed result under @p key (atomic tmp + rename),
     * then evict least-recently-used entries while the cache
     * exceeds its size cap. Failed results are never stored: a run
     * that tripped a watchdog must re-run, not re-fail from cache.
     * I/O errors warn once and degrade to "cache disabled for this
     * entry" — they never fail the sweep.
     */
    void store(const CacheKey &key, const core::RunResult &result);

    /** Entry path for @p key (exists only after a store). */
    std::string path(const CacheKey &key) const;

    const std::string &dir() const { return _dir; }
    std::uint64_t maxBytes() const { return _maxBytes; }
    Stats stats() const;

  private:
    void evictLocked();

    std::string _dir;         ///< root; entries live in v<N>/ below
    std::string _versionDir;  ///< <dir>/v<kResultBlobVersion>
    std::uint64_t _maxBytes;
    mutable std::mutex _mu;   ///< serializes fs ops + stats
    Stats _stats;
    bool _warned = false;     ///< one warn() per cache on I/O errors
    std::uint64_t _tmpSeq = 0;
};

} // namespace fusion::sweep

#endif // FUSION_SWEEP_RESULT_CACHE_HH
