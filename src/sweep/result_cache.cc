#include "sweep/result_cache.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include <unistd.h>

#include "sim/logging.hh"

namespace fusion::sweep
{

namespace fs = std::filesystem;

namespace
{

/** Default size cap when FUSION_CACHE_MAX_BYTES is unset: 256 MiB. */
constexpr std::uint64_t kDefaultMaxBytes = 256ull * 1024 * 1024;

std::uint64_t
resolveMaxBytes(std::uint64_t requested)
{
    if (requested != 0)
        return requested;
    if (const char *env = std::getenv("FUSION_CACHE_MAX_BYTES")) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return v;
        fusion_warn("ignoring malformed FUSION_CACHE_MAX_BYTES='",
                    env, "'");
    }
    return kDefaultMaxBytes;
}

std::string
hex16(std::uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

ResultCache::ResultCache(std::string dir, std::uint64_t maxBytes)
    : _dir(std::move(dir)),
      _versionDir(_dir + "/v" +
                  std::to_string(core::kResultBlobVersion)),
      _maxBytes(resolveMaxBytes(maxBytes))
{
}

std::string
ResultCache::path(const CacheKey &key) const
{
    return _versionDir + "/" + hex16(key.configHash) + "-" +
           hex16(key.traceHash) + ".res";
}

std::optional<core::RunResult>
ResultCache::lookup(const CacheKey &key)
{
    std::lock_guard<std::mutex> lk(_mu);
    const std::string p = path(key);
    std::ifstream in(p, std::ios::binary);
    if (!in) {
        ++_stats.misses;
        return std::nullopt;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string bytes = buf.str();
    core::RunResult r;
    std::string err;
    if (!core::deserializeResult(bytes, r, &err)) {
        // A bad entry is a miss, never a failure — delete it so the
        // rerun can rewrite the slot with a healthy blob.
        DPRINTFN("CACHE", "result cache: ", p, " rejected (", err,
                 "); deleted");
        ++_stats.misses;
        ++_stats.corrupt;
        std::error_code ec;
        fs::remove(p, ec);
        return std::nullopt;
    }
    ++_stats.hits;
    // Re-touch for LRU eviction; best-effort (a failed touch only
    // ages the entry, it cannot corrupt anything).
    std::error_code ec;
    fs::last_write_time(p, fs::file_time_type::clock::now(), ec);
    DPRINTFN("CACHE", "result cache hit: ", p);
    return r;
}

void
ResultCache::store(const CacheKey &key, const core::RunResult &result)
{
    // Never cache failures: a tripped watchdog or build error must
    // re-run next time, not re-fail instantly from disk.
    if (result.failed())
        return;
    std::lock_guard<std::mutex> lk(_mu);
    std::error_code ec;
    fs::create_directories(_versionDir, ec);
    const std::string dst = path(key);
    // Atomic publish (same discipline as trace::TraceStore): private
    // temp file then rename, so concurrent processes sharing this
    // directory never read a torn entry.
    const std::string tmp =
        dst + ".tmp." +
        std::to_string(static_cast<unsigned long>(::getpid())) + "." +
        std::to_string(_tmpSeq++);
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (out)
            out << core::serializeResult(result);
        if (!out) {
            if (!_warned) {
                _warned = true;
                fusion_warn("result cache: cannot write ", tmp,
                            " (caching disabled for this entry)");
            }
            fs::remove(tmp, ec);
            return;
        }
    }
    fs::rename(tmp, dst, ec);
    if (ec) {
        if (!_warned) {
            _warned = true;
            fusion_warn("result cache: cannot publish ", dst, ": ",
                        ec.message());
        }
        fs::remove(tmp, ec);
        return;
    }
    ++_stats.stores;
    DPRINTFN("CACHE", "result cache store: ", dst);
    evictLocked();
}

void
ResultCache::evictLocked()
{
    struct Entry
    {
        fs::path path;
        fs::file_time_type mtime;
        std::uint64_t size = 0;
    };
    std::vector<Entry> entries;
    std::uint64_t total = 0;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(_versionDir, ec)) {
        if (de.path().extension() != ".res")
            continue;
        std::error_code fec;
        const std::uint64_t sz = de.file_size(fec);
        if (fec)
            continue;
        const fs::file_time_type mt = de.last_write_time(fec);
        if (fec)
            continue;
        entries.push_back({de.path(), mt, sz});
        total += sz;
    }
    if (ec || total <= _maxBytes)
        return;
    // Oldest first: hits re-touch their entry, so mtime order is
    // (approximate, fs-granularity) LRU order.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime < b.mtime;
              });
    for (const Entry &e : entries) {
        if (total <= _maxBytes)
            break;
        std::error_code rec;
        if (fs::remove(e.path, rec) && !rec) {
            total -= e.size;
            ++_stats.evictions;
            DPRINTFN("CACHE", "result cache evict: ",
                     e.path.string());
        }
    }
}

ResultCache::Stats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _stats;
}

} // namespace fusion::sweep
