/**
 * @file
 * CACTI-style analytical energy/latency model for on-chip SRAM
 * structures at 45 nm ITRS-HP (the paper's technology point,
 * Section 4 "Energy Model").
 *
 * CACTI itself is not available offline, so we use an analytical fit
 * of the capacity/banking scaling CACTI 6.0 exhibits at 45 nm:
 *
 *   E_data(read)  = k * sqrt(bank_kB) * (1 + hTree * log2(banks)) pJ
 *   E_tag         = tagFraction * E_data            (caches only)
 *   E_ts          = +15% of tag energy when a 32-bit timestamp is
 *                   checked on every tag access (ACC caches,
 *                   Section 4).
 *
 * The constants are calibrated so the relative points the paper
 * quotes hold: a 4 KB L0X is ~1.5x more energy-efficient than the
 * 16-bank 64 KB L1X (Lesson 3), and the 256 KB L1X costs ~2x the
 * 64 KB L1X per access (Lesson 7). Latencies reproduce Table 2
 * (64 KB host L1 = 3 cycles) and Section 5.5 (L1X-Large = +2 cycles).
 */

#ifndef FUSION_ENERGY_SRAM_MODEL_HH
#define FUSION_ENERGY_SRAM_MODEL_HH

#include <cstdint>

#include "sim/types.hh"

namespace fusion::energy
{

/** Kinds of SRAM structure the model distinguishes. */
enum class SramKind
{
    ScratchpadRam, ///< tagless RAM (data energy only)
    Cache,         ///< tagged cache (tag + data energy)
    TimestampCache ///< ACC cache: tag check includes 32b timestamp
};

/** Static parameters describing one SRAM structure. */
struct SramParams
{
    std::uint64_t capacityBytes = 4096;
    std::uint32_t assoc = 4;      ///< ignored for scratchpads
    std::uint32_t lineBytes = 64; ///< access granularity
    std::uint32_t banks = 1;
    SramKind kind = SramKind::Cache;
};

/** Per-access energy/latency figures produced by the model. */
struct SramFigures
{
    double readPj = 0.0;    ///< full line read, tag + data
    double writePj = 0.0;   ///< full line write, tag + data
    double tagProbePj = 0.0; ///< tag-only probe (miss detection)
    Cycles latency = 1;     ///< access latency in cycles
    double areaMm2 = 0.0;   ///< estimated area (for wire lengths)
};

/**
 * Evaluate the analytical model for one structure.
 *
 * @param p structure parameters
 * @return per-access energy and latency figures
 */
SramFigures evaluateSram(const SramParams &p);

/**
 * Estimated wire length for the paper's formula
 * WireLength = 2 * sum_i sqrt(Component_Area_i) over a dataflow path
 * (Section 4). @return millimetres for one component.
 */
double componentWireMm(const SramParams &p);

} // namespace fusion::energy

#endif // FUSION_ENERGY_SRAM_MODEL_HH
