/**
 * @file
 * Link-energy parameters (Table 2, "Link Energy Parameters").
 *
 * The paper gives:
 *   Accelerator (L0X) <-> L1X        : 0.4 pJ/byte
 *   L1X <-> Host shared L2           : 6 pJ/byte
 *   L0X <-> L0X direct forward (Dx)  : 0.1 pJ/byte (Section 5.4)
 *   Generic wire                     : 1 pJ/mm/byte [Dally, IPDPS'11]
 */

#ifndef FUSION_ENERGY_LINK_ENERGY_HH
#define FUSION_ENERGY_LINK_ENERGY_HH

namespace fusion::energy
{

/** Identifies the physical link class a message traverses. */
enum class LinkClass
{
    AxcToL1x,   ///< accelerator/L0X <-> tile shared L1X
    L1xToL2,    ///< accelerator tile <-> host shared L2 (LLC)
    L0xToL0x,   ///< direct producer->consumer forward (FUSION-Dx)
    HostL1ToL2, ///< host core L1 <-> LLC
    LlcToDram,  ///< LLC <-> memory controller
};

/** Energy per byte for @p link, in picojoules. */
constexpr double
linkPjPerByte(LinkClass link)
{
    switch (link) {
      case LinkClass::AxcToL1x:
        return 0.4;
      case LinkClass::L1xToL2:
        return 6.0;
      case LinkClass::L0xToL0x:
        return 0.1;
      case LinkClass::HostL1ToL2:
        return 6.0;
      case LinkClass::LlcToDram:
        return 10.0;
    }
    return 0.0;
}

/** Generic wire energy in pJ per mm per byte (Dally). */
constexpr double kWirePjPerMmPerByte = 1.0;

} // namespace fusion::energy

#endif // FUSION_ENERGY_LINK_ENERGY_HH
