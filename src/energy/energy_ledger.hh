/**
 * @file
 * Per-component dynamic-energy accounting.
 *
 * Every structure and link in the simulated system books the energy
 * of each access against a named component in one shared Ledger; the
 * experiment harness then renders the Figure-6a-style stacked
 * breakdowns from the ledger totals.
 *
 * Booking is handle-based: a component registers its name once at
 * construction via component() and receives a ComponentId indexing a
 * flat vector of totals, so the per-access path is one indexed add —
 * the old string-keyed add() hashed and probed a map on every cache,
 * link and DRAM access, the hottest path in the simulator. The
 * name-keyed views (components(), total(), totalWithPrefix(),
 * grandTotal()) iterate in name-sorted order over components that
 * have actually booked, which keeps reporter output — including the
 * floating-point accumulation order of the totals — byte-identical
 * to the map-backed ledger.
 */

#ifndef FUSION_ENERGY_ENERGY_LEDGER_HH
#define FUSION_ENERGY_ENERGY_LEDGER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fusion::energy
{

/**
 * Canonical component names used across the simulator so that
 * results are comparable between system configurations.
 */
namespace comp
{
inline constexpr const char *kAxcCompute = "axc.compute";
inline constexpr const char *kL0x = "l0x";
inline constexpr const char *kScratchpad = "scratchpad";
inline constexpr const char *kL1x = "l1x";
inline constexpr const char *kHostL1 = "host.l1";
inline constexpr const char *kLlc = "llc";
inline constexpr const char *kDram = "dram";
inline constexpr const char *kAxTlb = "ax_tlb";
inline constexpr const char *kAxRmap = "ax_rmap";
inline constexpr const char *kLinkL0xL1xMsg = "link.l0x_l1x.msg";
inline constexpr const char *kLinkL0xL1xData = "link.l0x_l1x.data";
inline constexpr const char *kLinkL1xL2Msg = "link.l1x_l2.msg";
inline constexpr const char *kLinkL1xL2Data = "link.l1x_l2.data";
inline constexpr const char *kLinkL0xL0x = "link.l0x_l0x";
inline constexpr const char *kLinkHostL1L2 = "link.hostl1_l2";
inline constexpr const char *kLinkLlcDram = "link.llc_dram";
} // namespace comp

/** Index of one registered component in the ledger (see
 *  Ledger::component()). */
using ComponentId = std::uint32_t;

/** Sentinel for "no component" (e.g. a Link with no energy names
 *  configured). add() on it is invalid; callers gate on it. */
inline constexpr ComponentId kInvalidComponent = 0xffffffffu;

/** Accumulates picojoules per registered component. */
class Ledger
{
  public:
    /**
     * Register (or look up) @p name and return its id. Idempotent;
     * meant to be called once per component at construction, after
     * which every booking is a flat vector add.
     */
    ComponentId
    component(const std::string &name)
    {
        auto [it, inserted] = _index.try_emplace(
            name, static_cast<ComponentId>(_vals.size()));
        if (inserted) {
            _vals.push_back(0.0);
            _booked.push_back(false);
        }
        return it->second;
    }

    /** Book @p pj picojoules against registered component @p id. */
    void
    add(ComponentId id, double pj)
    {
        _vals[id] += pj;
        _booked[id] = true;
    }

    /** Name-keyed booking (registers on demand; report-time and
     *  cold paths only — hot paths hold a ComponentId). */
    void
    add(const std::string &name, double pj)
    {
        add(component(name), pj);
    }

    /** Total booked against @p component (0 if never seen). */
    double
    total(const std::string &component) const
    {
        auto it = _index.find(component);
        return it == _index.end() ? 0.0 : _vals[it->second];
    }

    /** Sum over all components (name-sorted accumulation order). */
    double
    grandTotal() const
    {
        double t = 0.0;
        for (const auto &[k, id] : _index) {
            if (_booked[id])
                t += _vals[id];
        }
        return t;
    }

    /** Sum over all components whose name starts with @p prefix. */
    double
    totalWithPrefix(const std::string &prefix) const
    {
        double t = 0.0;
        for (const auto &[k, id] : _index) {
            if (_booked[id] && k.rfind(prefix, 0) == 0)
                t += _vals[id];
        }
        return t;
    }

    /**
     * All components that have booked at least once, with their
     * totals. Registration alone does not create an entry, so the
     * view (and everything serialized from it) matches the old
     * booked-names-only map exactly.
     */
    std::map<std::string, double>
    components() const
    {
        std::map<std::string, double> out;
        for (const auto &[k, id] : _index) {
            if (_booked[id])
                out.emplace(k, _vals[id]);
        }
        return out;
    }

    /** Zero everything (registrations — and ids — survive). */
    void
    reset()
    {
        for (std::size_t i = 0; i < _vals.size(); ++i) {
            _vals[i] = 0.0;
            _booked[i] = false;
        }
    }

  private:
    std::map<std::string, ComponentId> _index; ///< name-sorted
    std::vector<double> _vals;
    /** Has add() ever run for this id? (keeps never-booked
     *  registrations out of the reported component set) */
    std::vector<bool> _booked;
};

} // namespace fusion::energy

#endif // FUSION_ENERGY_ENERGY_LEDGER_HH
