/**
 * @file
 * Per-component dynamic-energy accounting.
 *
 * Every structure and link in the simulated system books the energy
 * of each access against a named component in one shared Ledger; the
 * experiment harness then renders the Figure-6a-style stacked
 * breakdowns from the ledger totals.
 */

#ifndef FUSION_ENERGY_ENERGY_LEDGER_HH
#define FUSION_ENERGY_ENERGY_LEDGER_HH

#include <map>
#include <string>

namespace fusion::energy
{

/**
 * Canonical component names used across the simulator so that
 * results are comparable between system configurations.
 */
namespace comp
{
inline constexpr const char *kAxcCompute = "axc.compute";
inline constexpr const char *kL0x = "l0x";
inline constexpr const char *kScratchpad = "scratchpad";
inline constexpr const char *kL1x = "l1x";
inline constexpr const char *kHostL1 = "host.l1";
inline constexpr const char *kLlc = "llc";
inline constexpr const char *kDram = "dram";
inline constexpr const char *kAxTlb = "ax_tlb";
inline constexpr const char *kAxRmap = "ax_rmap";
inline constexpr const char *kLinkL0xL1xMsg = "link.l0x_l1x.msg";
inline constexpr const char *kLinkL0xL1xData = "link.l0x_l1x.data";
inline constexpr const char *kLinkL1xL2Msg = "link.l1x_l2.msg";
inline constexpr const char *kLinkL1xL2Data = "link.l1x_l2.data";
inline constexpr const char *kLinkL0xL0x = "link.l0x_l0x";
inline constexpr const char *kLinkHostL1L2 = "link.hostl1_l2";
inline constexpr const char *kLinkLlcDram = "link.llc_dram";
} // namespace comp

/** Accumulates picojoules per named component. */
class Ledger
{
  public:
    /** Book @p pj picojoules against @p component. */
    void
    add(const std::string &component, double pj)
    {
        _pj[component] += pj;
    }

    /** Total booked against @p component (0 if never seen). */
    double
    total(const std::string &component) const
    {
        auto it = _pj.find(component);
        return it == _pj.end() ? 0.0 : it->second;
    }

    /** Sum over all components. */
    double
    grandTotal() const
    {
        double t = 0.0;
        for (const auto &[k, v] : _pj)
            t += v;
        return t;
    }

    /** Sum over all components whose name starts with @p prefix. */
    double
    totalWithPrefix(const std::string &prefix) const
    {
        double t = 0.0;
        for (const auto &[k, v] : _pj) {
            if (k.rfind(prefix, 0) == 0)
                t += v;
        }
        return t;
    }

    /** All components and their totals. */
    const std::map<std::string, double> &components() const
    {
        return _pj;
    }

    /** Zero everything. */
    void reset() { _pj.clear(); }

  private:
    std::map<std::string, double> _pj;
};

} // namespace fusion::energy

#endif // FUSION_ENERGY_ENERGY_LEDGER_HH
