#include "energy/sram_model.hh"

#include <cmath>

#include "sim/logging.hh"

namespace fusion::energy
{

namespace
{

/// Calibration constant: pJ per sqrt(kB) of bank capacity, 45nm HP.
constexpr double kDataPjPerSqrtKb = 2.5;
/// H-tree distribution overhead per doubling of bank count.
constexpr double kHTreePerLog2Bank = 0.10;
/// Tag array energy as a fraction of the data-array energy.
constexpr double kTagFraction = 0.15;
/// Extra tag energy for the 32-bit ACC timestamp check (Section 4).
constexpr double kTimestampOverhead = 0.15;
/// Writes drive bitlines harder than reads at 45nm HP.
constexpr double kWriteFactor = 1.10;
/// Area density, mm^2 per kB of SRAM at 45nm (incl. periphery).
constexpr double kAreaMm2PerKb = 0.0065;

Cycles
latencyForCapacity(double cap_kb)
{
    if (cap_kb <= 4.0)
        return 1;
    if (cap_kb <= 16.0)
        return 2;
    if (cap_kb <= 64.0)
        return 3; // Table 2: 64K host L1 D-cache = 3 cycles
    if (cap_kb <= 256.0)
        return 5; // Section 5.5: L1X-Large = L1X-Small + 2
    if (cap_kb <= 1024.0)
        return 8;
    return 10; // large NUCA bank, before ring hops
}

} // namespace

SramFigures
evaluateSram(const SramParams &p)
{
    fusion_assert(p.capacityBytes > 0 && p.banks > 0,
                  "bad SRAM parameters");
    double cap_kb = static_cast<double>(p.capacityBytes) / 1024.0;
    double bank_kb = cap_kb / static_cast<double>(p.banks);

    double htree = 1.0 + kHTreePerLog2Bank *
                             std::log2(static_cast<double>(p.banks));
    double data_pj = kDataPjPerSqrtKb * std::sqrt(bank_kb) * htree;

    double tag_pj = 0.0;
    if (p.kind != SramKind::ScratchpadRam) {
        tag_pj = kTagFraction * data_pj;
        if (p.kind == SramKind::TimestampCache)
            tag_pj *= 1.0 + kTimestampOverhead;
    }

    SramFigures f;
    f.readPj = data_pj + tag_pj;
    f.writePj = data_pj * kWriteFactor + tag_pj;
    f.tagProbePj = tag_pj;
    f.latency = latencyForCapacity(cap_kb);
    f.areaMm2 = kAreaMm2PerKb * cap_kb;
    return f;
}

double
componentWireMm(const SramParams &p)
{
    return std::sqrt(evaluateSram(p).areaMm2);
}

} // namespace fusion::energy
