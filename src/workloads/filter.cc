/**
 * @file
 * Filter benchmark: 3x3 median filter (medfilt — sorting-network
 * heavy, 74% of time in Table 1) followed by a 3x3 high-pass edge
 * filter (edgefilt) over the median-filtered image. The median
 * output is the shared intermediate between the two accelerators.
 */

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "trace/recorder.hh"
#include "workloads/workload.hh"

namespace fusion::workloads
{

namespace
{

/** 9-element median via a fixed compare-exchange network. */
int
median9(int v[9])
{
    auto cswap = [](int &a, int &b) {
        if (a > b)
            std::swap(a, b);
    };
    cswap(v[1], v[2]);
    cswap(v[4], v[5]);
    cswap(v[7], v[8]);
    cswap(v[0], v[1]);
    cswap(v[3], v[4]);
    cswap(v[6], v[7]);
    cswap(v[1], v[2]);
    cswap(v[4], v[5]);
    cswap(v[7], v[8]);
    cswap(v[0], v[3]);
    cswap(v[5], v[8]);
    cswap(v[4], v[7]);
    cswap(v[3], v[6]);
    cswap(v[1], v[4]);
    cswap(v[2], v[5]);
    cswap(v[4], v[7]);
    cswap(v[4], v[2]);
    cswap(v[6], v[4]);
    cswap(v[4], v[2]);
    return v[4];
}

class FilterWorkload : public Workload
{
  public:
    std::string name() const override { return "filter"; }
    std::string displayName() const override { return "FILT."; }

    trace::Program
    build(Scale scale) const override
    {
        const std::size_t W = scaled(scale, 20, 64, 128);
        const std::size_t H = W;

        trace::Recorder rec("filter");
        trace::FunctionMeta metas[2] = {{"medfilt", 0, 2, 400},
                                        {"edgefilt", 1, 4, 400}};
        FuncId fm = rec.addFunction(metas[0]);
        FuncId fe = rec.addFunction(metas[1]);

        trace::VaAllocator va;
        trace::Traced<std::int16_t> img(rec, va, W * H);
        trace::Traced<std::int16_t> med(rec, va, W * H);
        trace::Traced<std::int16_t> edge(rec, va, W * H);

        // Gradient image with salt-and-pepper noise the median
        // filter must remove.
        Rng rng(0xF117u);
        std::vector<int> ref(W * H);
        for (std::size_t y = 0; y < H; ++y) {
            for (std::size_t x = 0; x < W; ++x) {
                int v = static_cast<int>(2 * x + y);
                if (rng.below(100) < 4)
                    v = rng.below(2) ? 0 : 1023; // impulse noise
                ref[y * W + x] = v;
                img.poke(y * W + x,
                         static_cast<std::int16_t>(v));
            }
        }

        rec.beginHostInit();
        hostTouchArray(rec, img, true);
        rec.end();

        // medfilt: 3x3 median with replicated borders.
        rec.beginInvocation(fm);
        for (std::size_t y = 0; y < H; ++y) {
            for (std::size_t x = 0; x < W; ++x) {
                int v[9];
                int k = 0;
                for (int j = -1; j <= 1; ++j) {
                    for (int i = -1; i <= 1; ++i) {
                        long yy = std::clamp<long>(
                            static_cast<long>(y) + j, 0,
                            static_cast<long>(H) - 1);
                        long xx = std::clamp<long>(
                            static_cast<long>(x) + i, 0,
                            static_cast<long>(W) - 1);
                        v[k++] = img[static_cast<std::size_t>(yy) *
                                         W +
                                     static_cast<std::size_t>(xx)];
                    }
                }
                med[y * W + x] =
                    static_cast<std::int16_t>(median9(v));
                rec.intOps(48); // compare-exchange network + idx
            }
        }
        rec.end();

        // edgefilt: 3x3 high-pass over the median output.
        rec.beginInvocation(fe);
        const int kern[3][3] = {{-1, -1, -1},
                                {-1, 8, -1},
                                {-1, -1, -1}};
        for (std::size_t y = 1; y + 1 < H; ++y) {
            for (std::size_t x = 1; x + 1 < W; ++x) {
                int acc = 0;
                for (int j = -1; j <= 1; ++j) {
                    for (int i = -1; i <= 1; ++i) {
                        acc +=
                            kern[j + 1][i + 1] *
                            med[(y + static_cast<std::size_t>(j + 1)
                                 - 1) * W +
                                (x + static_cast<std::size_t>(i + 1)
                                 - 1)];
                    }
                }
                edge[y * W + x] =
                    static_cast<std::int16_t>(acc);
                rec.intOps(22);
                rec.fpOps(4); // normalization in the original code
            }
        }
        rec.end();

        rec.beginHostFinal();
        hostTouchArray(rec, med, false);
        hostTouchArray(rec, edge, false);
        rec.end();

        verify(ref, med, W, H);
        return rec.take();
    }

  private:
    static void
    verify(const std::vector<int> &ref,
           const trace::Traced<std::int16_t> &med, std::size_t W,
           std::size_t H)
    {
        // Independent median reference (via std::nth_element).
        for (std::size_t y = 0; y < H; ++y) {
            for (std::size_t x = 0; x < W; ++x) {
                std::vector<int> v;
                for (int j = -1; j <= 1; ++j) {
                    for (int i = -1; i <= 1; ++i) {
                        long yy = std::clamp<long>(
                            static_cast<long>(y) + j, 0,
                            static_cast<long>(H) - 1);
                        long xx = std::clamp<long>(
                            static_cast<long>(x) + i, 0,
                            static_cast<long>(W) - 1);
                        v.push_back(
                            ref[static_cast<std::size_t>(yy) * W +
                                static_cast<std::size_t>(xx)]);
                    }
                }
                std::nth_element(v.begin(), v.begin() + 4, v.end());
                fusion_assert(med.peek(y * W + x) == v[4],
                              "median golden check failed at ", y,
                              ",", x);
            }
        }
    }
};

} // namespace

std::unique_ptr<Workload>
makeFilter()
{
    return std::make_unique<FilterWorkload>();
}

} // namespace fusion::workloads
