/**
 * @file
 * The benchmark suite (Section 4, Table 1): seven applications from
 * SD-VBS and MachSuite in which multiple functions are offloaded to
 * accelerators and share data.
 *
 * SD-VBS / MachSuite sources are not redistributable here, so each
 * accelerated function is re-implemented from its published
 * algorithm and executed *for real* over Traced<> arrays on
 * deterministic synthetic inputs sized to land in the paper's
 * working-set regime (Table 6d). Every workload self-checks its
 * numerical results against an independent golden reference before
 * returning the trace, so the traces are memory behaviour of
 * genuinely correct executions.
 *
 * Per-function MLP and lease-time (LT) metadata follow Table 1 /
 * Table 3.
 */

#ifndef FUSION_WORKLOADS_WORKLOAD_HH
#define FUSION_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace fusion::workloads
{

/** Workload input-size scale: Paper = Table 6d regime, Small = fast
 *  CI-size inputs for unit tests, Large = ~4x Paper footprints for
 *  scaling studies. */
enum class Scale
{
    Small,
    Paper,
    Large
};

/** Pick a dimension for the given scale. */
constexpr std::size_t
scaled(Scale s, std::size_t small, std::size_t paper,
       std::size_t large)
{
    switch (s) {
      case Scale::Small:
        return small;
      case Scale::Paper:
        return paper;
      case Scale::Large:
        return large;
    }
    return paper;
}

/** Stable lower-case scale name ("small", "paper", "large"); also
 *  the trace-store file key component. */
const char *scaleName(Scale s);

/** One benchmark application. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Canonical short name ("fft", "disparity", ...). */
    virtual std::string name() const = 0;

    /** Display name used in paper tables ("FFT", "DISP.", ...). */
    virtual std::string displayName() const = 0;

    /**
     * Execute the kernels over instrumented arrays and return the
     * captured Program. Panics if the golden self-check fails.
     */
    virtual trace::Program build(Scale scale) const = 0;
};

/** All benchmark names in the paper's presentation order. */
std::vector<std::string> workloadNames();

/** Factory. @return nullptr for unknown names. */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

/**
 * Register an extra workload factory under @p name (nullptr removes
 * a prior registration). Built-in names always win; registered names
 * are appended to workloadNames(). Intended as a test seam — e.g.
 * injecting a workload whose build() throws to exercise the sweep
 * engine's program-cache failure path — so registration is not
 * synchronized: register before launching sweeps.
 */
void registerWorkload(const std::string &name,
                      std::unique_ptr<Workload> (*factory)());

/**
 * Build one workload by name, with a record/replay path: when the
 * process-global trace store is armed (trace::setGlobalStoreDir,
 * bench --trace-dir), a previously recorded trace for (name, scale)
 * is replayed from disk instead of re-executing the kernels, and a
 * freshly generated trace is recorded for next time. Replayed
 * programs are exact round-trips — byte-identical serialized form
 * and therefore byte-identical simulation results (anchored by
 * tests/test_trace_store.cc). Registered test workloads
 * (registerWorkload) are never recorded or replayed.
 *
 * @return std::nullopt for unknown names.
 */
std::optional<trace::Program> buildProgram(const std::string &name,
                                           Scale scale);

/** Build every workload at @p scale. */
std::vector<trace::Program> buildAll(Scale scale);

} // namespace fusion::workloads

#endif // FUSION_WORKLOADS_WORKLOAD_HH
