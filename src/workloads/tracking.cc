/**
 * @file
 * Tracking benchmark (SD-VBS feature-tracking front end): Gaussian
 * blur (imgBlur, separable 5-tap), half-scale resize (imgResize) and
 * Sobel gradients (calcSobel, invoked once per direction). The
 * blurred and resized intermediates flow between the accelerated
 * functions — imgResize shares ~99% of its accesses (Table 1) —
 * which is what triggers the inter-AXC DMA transfers of Section 5.2.
 */

#include <cmath>
#include <vector>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "trace/recorder.hh"
#include "workloads/workload.hh"

namespace fusion::workloads
{

namespace
{

class TrackingWorkload : public Workload
{
  public:
    std::string name() const override { return "tracking"; }
    std::string displayName() const override { return "TRACK."; }

    trace::Program
    build(Scale scale) const override
    {
        const std::size_t W = scaled(scale, 32, 192, 384);
        const std::size_t H = scaled(scale, 24, 144, 288);
        const std::size_t RW = W / 2;
        const std::size_t RH = H / 2;

        trace::Recorder rec("tracking");
        trace::FunctionMeta metas[3] = {{"imgBlur", 0, 2, 700},
                                        {"imgResize", 1, 1, 770},
                                        {"calcSobel", 2, 1, 720}};
        FuncId fid[3];
        for (int i = 0; i < 3; ++i)
            fid[i] = rec.addFunction(metas[i]);

        trace::VaAllocator va;
        trace::Traced<float> img(rec, va, W * H);
        trace::Traced<float> tmp(rec, va, W * H);
        trace::Traced<float> blur(rec, va, W * H);
        trace::Traced<float> resized(rec, va, RW * RH);
        trace::Traced<float> dx(rec, va, RW * RH);
        trace::Traced<float> dy(rec, va, RW * RH);

        Rng rng(0x77ACu);
        std::vector<float> ref(W * H);
        for (std::size_t i = 0; i < W * H; ++i) {
            ref[i] = static_cast<float>(rng.below(256));
            img.poke(i, ref[i]);
        }

        rec.beginHostInit();
        hostTouchArray(rec, img, true);
        rec.end();

        const float w5[5] = {1.0f / 16, 4.0f / 16, 6.0f / 16,
                             4.0f / 16, 1.0f / 16};
        auto clampi = [](long v, long lo, long hi) {
            return v < lo ? lo : (v > hi ? hi : v);
        };

        // imgBlur: separable 5-tap Gaussian.
        rec.beginInvocation(fid[0]);
        for (std::size_t y = 0; y < H; ++y) {
            for (std::size_t x = 0; x < W; ++x) {
                float acc = 0.0f;
                for (int k = -2; k <= 2; ++k) {
                    long xx = clampi(static_cast<long>(x) + k, 0,
                                     static_cast<long>(W) - 1);
                    acc += img[y * W + static_cast<std::size_t>(xx)]
                           * w5[k + 2];
                }
                tmp[y * W + x] = acc;
                rec.fpOps(10);
                rec.intOps(8);
            }
        }
        for (std::size_t y = 0; y < H; ++y) {
            for (std::size_t x = 0; x < W; ++x) {
                float acc = 0.0f;
                for (int k = -2; k <= 2; ++k) {
                    long yy = clampi(static_cast<long>(y) + k, 0,
                                     static_cast<long>(H) - 1);
                    acc += tmp[static_cast<std::size_t>(yy) * W + x]
                           * w5[k + 2];
                }
                blur[y * W + x] = acc;
                rec.fpOps(10);
                rec.intOps(8);
            }
        }
        rec.end();

        // imgResize: half-scale 2x2 average.
        rec.beginInvocation(fid[1]);
        for (std::size_t y = 0; y < RH; ++y) {
            for (std::size_t x = 0; x < RW; ++x) {
                float acc = blur[(2 * y) * W + 2 * x] +
                            blur[(2 * y) * W + 2 * x + 1] +
                            blur[(2 * y + 1) * W + 2 * x] +
                            blur[(2 * y + 1) * W + 2 * x + 1];
                resized[y * RW + x] = acc * 0.25f;
                rec.fpOps(5);
                rec.intOps(8);
            }
        }
        rec.end();

        // calcSobel: one invocation per gradient direction.
        const int kx[3][3] = {{-1, 0, 1}, {-2, 0, 2}, {-1, 0, 1}};
        for (int dir = 0; dir < 2; ++dir) {
            rec.beginInvocation(fid[2]);
            for (std::size_t y = 0; y < RH; ++y) {
                for (std::size_t x = 0; x < RW; ++x) {
                    float acc = 0.0f;
                    for (int j = -1; j <= 1; ++j) {
                        for (int i = -1; i <= 1; ++i) {
                            long yy = clampi(static_cast<long>(y) + j,
                                             0,
                                             static_cast<long>(RH)
                                                 - 1);
                            long xx = clampi(static_cast<long>(x) + i,
                                             0,
                                             static_cast<long>(RW)
                                                 - 1);
                            int coef = dir == 0 ? kx[j + 1][i + 1]
                                                : kx[i + 1][j + 1];
                            acc += resized[static_cast<std::size_t>(
                                               yy) * RW +
                                           static_cast<std::size_t>(
                                               xx)] *
                                   static_cast<float>(coef);
                        }
                    }
                    if (dir == 0)
                        dx[y * RW + x] = acc;
                    else
                        dy[y * RW + x] = acc;
                    rec.fpOps(18);
                    rec.intOps(14);
                }
            }
            rec.end();
        }

        rec.beginHostFinal();
        hostTouchArray(rec, dx, false);
        hostTouchArray(rec, dy, false);
        rec.end();

        verify(ref, resized, dx, W, H, RW, RH);
        return rec.take();
    }

  private:
    static void
    verify(const std::vector<float> &ref,
           const trace::Traced<float> &resized,
           const trace::Traced<float> &dx, std::size_t W,
           std::size_t H, std::size_t RW, std::size_t RH)
    {
        // Independent reference in double precision.
        const double w5[5] = {1.0 / 16, 4.0 / 16, 6.0 / 16,
                              4.0 / 16, 1.0 / 16};
        auto clampi = [](long v, long lo, long hi) {
            return v < lo ? lo : (v > hi ? hi : v);
        };
        std::vector<double> t(W * H), b(W * H);
        for (std::size_t y = 0; y < H; ++y)
            for (std::size_t x = 0; x < W; ++x) {
                double acc = 0;
                for (int k = -2; k <= 2; ++k)
                    acc += ref[y * W + static_cast<std::size_t>(
                                           clampi(
                                               static_cast<long>(x) +
                                                   k,
                                               0,
                                               static_cast<long>(W) -
                                                   1))] *
                           w5[k + 2];
                t[y * W + x] = acc;
            }
        for (std::size_t y = 0; y < H; ++y)
            for (std::size_t x = 0; x < W; ++x) {
                double acc = 0;
                for (int k = -2; k <= 2; ++k)
                    acc += t[static_cast<std::size_t>(
                                 clampi(static_cast<long>(y) + k, 0,
                                        static_cast<long>(H) - 1)) *
                                 W +
                             x] *
                           w5[k + 2];
                b[y * W + x] = acc;
            }
        for (std::size_t y = 0; y < RH; ++y) {
            for (std::size_t x = 0; x < RW; ++x) {
                double r = 0.25 * (b[2 * y * W + 2 * x] +
                                   b[2 * y * W + 2 * x + 1] +
                                   b[(2 * y + 1) * W + 2 * x] +
                                   b[(2 * y + 1) * W + 2 * x + 1]);
                double got = resized.peek(y * RW + x);
                fusion_assert(std::abs(got - r) < 1e-2,
                              "tracking resize check failed at ", y,
                              ",", x);
            }
        }
        // Gradient of a clamped-constant row region is ~0 at the
        // left/top corner pixel.
        (void)dx;
    }
};

} // namespace

std::unique_ptr<Workload>
makeTracking()
{
    return std::make_unique<TrackingWorkload>();
}

} // namespace fusion::workloads
