/**
 * @file
 * FFT benchmark (MachSuite "fft/strided" style): an in-place
 * radix-2 DIT FFT whose bit-reversal and butterfly stages are split
 * across six accelerated step functions (Table 1). Every stage is a
 * full strided pass over the signal arrays, which is what produces
 * the pathological DMA-to-working-set ratio of the SCRATCH baseline
 * (Section 5.2).
 */

#include <cmath>
#include <complex>
#include <vector>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "trace/recorder.hh"
#include "workloads/workload.hh"

namespace fusion::workloads
{

namespace
{

std::size_t
bitReverse(std::size_t x, unsigned bits)
{
    std::size_t r = 0;
    for (unsigned b = 0; b < bits; ++b) {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    return r;
}

class FftWorkload : public Workload
{
  public:
    std::string name() const override { return "fft"; }
    std::string displayName() const override { return "FFT"; }

    trace::Program
    build(Scale scale) const override
    {
        const std::size_t n = scaled(scale, 256, 2048, 8192);
        const unsigned bits =
            static_cast<unsigned>(std::round(std::log2(n)));

        trace::Recorder rec("fft");
        // Per-function MLP from Table 1, lease times from Table 3.
        trace::FunctionMeta metas[6] = {
            {"step1", 0, 5, 500}, {"step2", 1, 4, 700},
            {"step3", 2, 4, 200}, {"step4", 3, 3, 700},
            {"step5", 4, 3, 700}, {"step6", 5, 4, 500}};
        FuncId fid[6];
        for (int i = 0; i < 6; ++i)
            fid[i] = rec.addFunction(metas[i]);

        trace::VaAllocator va;
        trace::Traced<float> re(rec, va, n);
        trace::Traced<float> im(rec, va, n);
        trace::Traced<float> wr(rec, va, n / 2);
        trace::Traced<float> wi(rec, va, n / 2);

        // Deterministic input signal + twiddle factors.
        Rng rng(0xFF7u);
        std::vector<std::complex<double>> input(n);
        for (std::size_t i = 0; i < n; ++i) {
            double v = rng.uniform() * 2.0 - 1.0;
            re.poke(i, static_cast<float>(v));
            im.poke(i, 0.0f);
            input[i] = {v, 0.0};
        }
        for (std::size_t k = 0; k < n / 2; ++k) {
            double ang = -2.0 * M_PI * static_cast<double>(k) /
                         static_cast<double>(n);
            wr.poke(k, static_cast<float>(std::cos(ang)));
            wi.poke(k, static_cast<float>(std::sin(ang)));
        }

        rec.beginHostInit();
        hostTouchArray(rec, re, true);
        hostTouchArray(rec, im, true);
        hostTouchArray(rec, wr, true);
        hostTouchArray(rec, wi, true);
        rec.end();

        // step1: bit-reversal permutation (integer dominated).
        rec.beginInvocation(fid[0]);
        for (std::size_t i = 0; i < n; ++i) {
            std::size_t j = bitReverse(i, bits);
            rec.intOps(static_cast<std::uint32_t>(bits + 4));
            if (i < j) {
                float tr = re[i];
                float ti = im[i];
                float ur = re[j];
                float ui = im[j];
                re[i] = ur;
                im[i] = ui;
                re[j] = tr;
                im[j] = ti;
            }
        }
        rec.end();

        // Butterfly stages, grouped into step2..step6.
        auto step_for_stage = [bits](unsigned s) -> int {
            // Spread the stages evenly over the five butterfly
            // steps (step2..step6).
            unsigned idx = s * 5u / bits;
            return static_cast<int>(idx > 4 ? 4 : idx) + 1;
        };
        for (unsigned s = 0; s < bits; ++s) {
            rec.beginInvocation(fid[step_for_stage(s)]);
            std::size_t len = 1ull << (s + 1);
            std::size_t half = len / 2;
            for (std::size_t base = 0; base < n; base += len) {
                for (std::size_t k = 0; k < half; ++k) {
                    std::size_t tw = k * (n / len);
                    float wr_v = wr[tw];
                    float wi_v = wi[tw];
                    float xr = re[base + k + half];
                    float xi = im[base + k + half];
                    float tr = wr_v * xr - wi_v * xi;
                    float ti = wr_v * xi + wi_v * xr;
                    float ur = re[base + k];
                    float ui = im[base + k];
                    re[base + k] = ur + tr;
                    im[base + k] = ui + ti;
                    re[base + k + half] = ur - tr;
                    im[base + k + half] = ui - ti;
                    rec.fpOps(10);
                    rec.intOps(6);
                }
            }
            rec.end();
        }

        rec.beginHostFinal();
        hostTouchArray(rec, re, false);
        hostTouchArray(rec, im, false);
        rec.end();

        verify(input, re, im);
        return rec.take();
    }

  private:
    /** Golden check against a naive DFT in double precision. */
    static void
    verify(const std::vector<std::complex<double>> &input,
           const trace::Traced<float> &re,
           const trace::Traced<float> &im)
    {
        std::size_t n = input.size();
        double tol = 2e-3 * std::sqrt(static_cast<double>(n)) + 1e-3;
        // Check a deterministic sample of bins (full DFT at small
        // n, strided sample at large n to keep build fast).
        std::size_t stride = n > 512 ? 37 : 1;
        for (std::size_t k = 0; k < n; k += stride) {
            std::complex<double> acc{0.0, 0.0};
            for (std::size_t j = 0; j < n; ++j) {
                double ang = -2.0 * M_PI * static_cast<double>(j) *
                             static_cast<double>(k) /
                             static_cast<double>(n);
                acc += input[j] *
                       std::complex<double>(std::cos(ang),
                                            std::sin(ang));
            }
            double dr = std::abs(acc.real() -
                                 static_cast<double>(re.peek(k)));
            double di = std::abs(acc.imag() -
                                 static_cast<double>(im.peek(k)));
            fusion_assert(dr < tol && di < tol,
                          "FFT golden check failed at bin ", k,
                          ": err=(", dr, ",", di, ") tol=", tol);
        }
    }
};

} // namespace

std::unique_ptr<Workload>
makeFft()
{
    return std::make_unique<FftWorkload>();
}

} // namespace fusion::workloads
