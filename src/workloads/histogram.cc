/**
 * @file
 * Histogram benchmark (the paper's running image-processing
 * example, Figure 1): rgb2hsl converts the image to HSL (FP heavy),
 * histogram bins the lightness channel, equalize builds the CDF
 * remap table and applies it, and hsl2rgb converts back. The L
 * plane and the histogram/LUT tables are the shared intermediates.
 * The working set (~1.2 MB at Paper scale) deliberately overflows
 * the 64 KB L1X, reproducing HIST's L1X->L2 coherence-message
 * penalty (Section 5.2, Lesson 4).
 */

#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "trace/recorder.hh"
#include "workloads/workload.hh"

namespace fusion::workloads
{

namespace
{

struct Hsl
{
    double h, s, l;
};

/** Reference RGB -> HSL in double precision (r,g,b in [0,1]). */
Hsl
refRgbToHsl(double r, double g, double b)
{
    double mx = std::max(r, std::max(g, b));
    double mn = std::min(r, std::min(g, b));
    double l = (mx + mn) / 2.0;
    double d = mx - mn;
    double s = 0.0, h = 0.0;
    if (d > 1e-12) {
        s = d / (1.0 - std::abs(2.0 * l - 1.0));
        if (mx == r)
            h = std::fmod((g - b) / d + 6.0, 6.0);
        else if (mx == g)
            h = (b - r) / d + 2.0;
        else
            h = (r - g) / d + 4.0;
    }
    return {h, s, l};
}

class HistogramWorkload : public Workload
{
  public:
    std::string name() const override { return "histogram"; }
    std::string displayName() const override { return "HIST."; }

    trace::Program
    build(Scale scale) const override
    {
        const std::size_t W = scaled(scale, 32, 224, 448);
        const std::size_t N = W * W;

        trace::Recorder rec("histogram");
        trace::FunctionMeta metas[4] = {{"rgb2hsl", 0, 4, 500},
                                        {"histogram", 1, 1, 500},
                                        {"equalize", 2, 1, 500},
                                        {"hsl2rgb", 3, 3, 500}};
        FuncId fid[4];
        for (int i = 0; i < 4; ++i)
            fid[i] = rec.addFunction(metas[i]);

        trace::VaAllocator va;
        trace::Traced<float> r(rec, va, N), g(rec, va, N),
            b(rec, va, N);
        trace::Traced<float> hch(rec, va, N), sch(rec, va, N),
            lch(rec, va, N);
        trace::Traced<int> hist(rec, va, 256);
        trace::Traced<float> lut(rec, va, 256);

        Rng rng(0x4157u);
        std::vector<double> rr(N), gg(N), bb(N);
        for (std::size_t i = 0; i < N; ++i) {
            // Low-contrast image: equalization must stretch it.
            rr[i] = 0.3 + 0.2 * rng.uniform();
            gg[i] = 0.35 + 0.2 * rng.uniform();
            bb[i] = 0.25 + 0.2 * rng.uniform();
            r.poke(i, static_cast<float>(rr[i]));
            g.poke(i, static_cast<float>(gg[i]));
            b.poke(i, static_cast<float>(bb[i]));
        }

        rec.beginHostInit();
        hostTouchArray(rec, r, true);
        hostTouchArray(rec, g, true);
        hostTouchArray(rec, b, true);
        rec.end();

        // rgb2hsl.
        rec.beginInvocation(fid[0]);
        for (std::size_t i = 0; i < N; ++i) {
            float rv = r[i], gv = g[i], bv = b[i];
            float mx = std::max(rv, std::max(gv, bv));
            float mn = std::min(rv, std::min(gv, bv));
            float l = (mx + mn) * 0.5f;
            float d = mx - mn;
            float s = 0.0f, h = 0.0f;
            if (d > 1e-12f) {
                s = d / (1.0f - std::abs(2.0f * l - 1.0f));
                if (mx == rv)
                    h = std::fmod((gv - bv) / d + 6.0f, 6.0f);
                else if (mx == gv)
                    h = (bv - rv) / d + 2.0f;
                else
                    h = (rv - gv) / d + 4.0f;
            }
            hch[i] = h;
            sch[i] = s;
            lch[i] = l;
            rec.fpOps(22);
            rec.intOps(6);
        }
        rec.end();

        // histogram of the lightness channel.
        rec.beginInvocation(fid[1]);
        for (int bin = 0; bin < 256; ++bin)
            hist[static_cast<std::size_t>(bin)] = 0;
        for (std::size_t i = 0; i < N; ++i) {
            float l = lch[i];
            int bin = static_cast<int>(l * 255.0f);
            bin = bin < 0 ? 0 : (bin > 255 ? 255 : bin);
            hist[static_cast<std::size_t>(bin)] += 1;
            rec.intOps(5);
            rec.fpOps(1);
        }
        rec.end();

        // equalize: CDF -> remap LUT -> apply to L.
        rec.beginInvocation(fid[2]);
        {
            long cdf = 0;
            for (int bin = 0; bin < 256; ++bin) {
                cdf += hist[static_cast<std::size_t>(bin)];
                lut[static_cast<std::size_t>(bin)] =
                    static_cast<float>(cdf) /
                    static_cast<float>(N);
                rec.intOps(4);
                rec.fpOps(1);
            }
            for (std::size_t i = 0; i < N; ++i) {
                float l = lch[i];
                int bin = static_cast<int>(l * 255.0f);
                bin = bin < 0 ? 0 : (bin > 255 ? 255 : bin);
                lch[i] = lut[static_cast<std::size_t>(bin)];
                rec.intOps(5);
                rec.fpOps(1);
            }
        }
        rec.end();

        // hsl2rgb.
        rec.beginInvocation(fid[3]);
        for (std::size_t i = 0; i < N; ++i) {
            float h = hch[i], s = sch[i], l = lch[i];
            float c = (1.0f - std::abs(2.0f * l - 1.0f)) * s;
            float hm = std::fmod(h, 2.0f);
            float x = c * (1.0f - std::abs(hm - 1.0f));
            float m = l - c * 0.5f;
            float rv = 0, gv = 0, bv = 0;
            int sect = static_cast<int>(h);
            switch (sect) {
              case 0: rv = c; gv = x; break;
              case 1: rv = x; gv = c; break;
              case 2: gv = c; bv = x; break;
              case 3: gv = x; bv = c; break;
              case 4: rv = x; bv = c; break;
              default: rv = c; bv = x; break;
            }
            r[i] = rv + m;
            g[i] = gv + m;
            b[i] = bv + m;
            rec.fpOps(25);
            rec.intOps(8);
        }
        rec.end();

        rec.beginHostFinal();
        hostTouchArray(rec, r, false);
        hostTouchArray(rec, g, false);
        hostTouchArray(rec, b, false);
        rec.end();

        verify(rr, gg, bb, r, g, b, hist, N);
        return rec.take();
    }

  private:
    static void
    verify(const std::vector<double> &rr,
           const std::vector<double> &gg,
           const std::vector<double> &bb,
           const trace::Traced<float> &r,
           const trace::Traced<float> &g,
           const trace::Traced<float> &b,
           const trace::Traced<int> &hist, std::size_t N)
    {
        // Histogram mass must equal the pixel count.
        long total = 0;
        for (int bin = 0; bin < 256; ++bin)
            total += hist.peek(static_cast<std::size_t>(bin));
        fusion_assert(static_cast<std::size_t>(total) == N,
                      "histogram mass mismatch: ", total);

        // Equalization changes only L: hue and saturation of the
        // output must match the input (sampled).
        double worst_h = 0.0, worst_s = 0.0;
        double lo = 1.0, hi = 0.0;
        for (std::size_t i = 0; i < N; i += 17) {
            Hsl in = refRgbToHsl(rr[i], gg[i], bb[i]);
            Hsl out = refRgbToHsl(r.peek(i), g.peek(i), b.peek(i));
            double dh = std::abs(in.h - out.h);
            if (dh > 3.0)
                dh = std::abs(dh - 6.0); // circular hue
            worst_h = std::max(worst_h, dh);
            worst_s = std::max(worst_s, std::abs(in.s - out.s));
            lo = std::min(lo, out.l);
            hi = std::max(hi, out.l);
        }
        fusion_assert(worst_h < 0.05 && worst_s < 0.08,
                      "hsl roundtrip check failed: dh=", worst_h,
                      " ds=", worst_s);
        // The low-contrast input must be stretched to (near) full
        // range by equalization.
        fusion_assert(hi - lo > 0.8,
                      "equalization did not stretch contrast: ",
                      hi - lo);
    }
};

} // namespace

std::unique_ptr<Workload>
makeHistogram()
{
    return std::make_unique<HistogramWorkload>();
}

} // namespace fusion::workloads
