/**
 * @file
 * ADPCM benchmark (MachSuite): IMA ADPCM coder and decoder over a
 * smooth synthetic signal. The encoded stream produced by the coder
 * is consumed by the decoder and both share the quantizer tables,
 * giving the ~99% sharing degree of Table 1 with an even 50/50 time
 * split between the two accelerated functions.
 */

#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "trace/recorder.hh"
#include "workloads/workload.hh"

namespace fusion::workloads
{

namespace
{

const int kIndexTable[16] = {-1, -1, -1, -1, 2, 4, 6, 8,
                             -1, -1, -1, -1, 2, 4, 6, 8};

const int kStepTable[89] = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,
    17,    19,    21,    23,    25,    28,    31,    34,    37,
    41,    45,    50,    55,    60,    66,    73,    80,    88,
    97,    107,   118,   130,   143,   157,   173,   190,   209,
    230,   253,   279,   307,   337,   371,   408,   449,   494,
    544,   598,   658,   724,   796,   876,   963,   1060,  1166,
    1282,  1411,  1552,  1707,  1878,  2066,  2272,  2499,  2749,
    3024,  3327,  3660,  4026,  4428,  4871,  5358,  5894,  6484,
    7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899, 15289,
    16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

int
clampInt(int v, int lo, int hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

class AdpcmWorkload : public Workload
{
  public:
    std::string name() const override { return "adpcm"; }
    std::string displayName() const override { return "ADPCM"; }

    trace::Program
    build(Scale scale) const override
    {
        const std::size_t n = scaled(scale, 512, 8192, 32768);

        trace::Recorder rec("adpcm");
        trace::FunctionMeta metas[2] = {{"coder", 0, 2, 1400},
                                        {"decoder", 1, 2, 1400}};
        FuncId fc = rec.addFunction(metas[0]);
        FuncId fd = rec.addFunction(metas[1]);

        trace::VaAllocator va;
        // The decoder reconstructs *in place* over the sample
        // buffer (as MachSuite does), so coder and decoder share
        // nearly their entire working sets (Table 1: %SHR ~99).
        trace::Traced<std::int16_t> pcm(rec, va, n);
        trace::Traced<std::uint8_t> enc(rec, va, n / 2);
        trace::Traced<int> step_tab(rec, va, 89);
        trace::Traced<int> idx_tab(rec, va, 16);

        // Smooth two-tone input (ADPCM tracks smooth signals).
        std::vector<std::int16_t> ref(n);
        for (std::size_t i = 0; i < n; ++i) {
            double t = static_cast<double>(i);
            double v = 8000.0 * std::sin(t * 0.031) +
                       3000.0 * std::sin(t * 0.0071);
            ref[i] = static_cast<std::int16_t>(v);
            pcm.poke(i, ref[i]);
        }
        for (int i = 0; i < 89; ++i)
            step_tab.poke(static_cast<std::size_t>(i),
                          kStepTable[i]);
        for (int i = 0; i < 16; ++i)
            idx_tab.poke(static_cast<std::size_t>(i),
                         kIndexTable[i]);

        rec.beginHostInit();
        hostTouchArray(rec, pcm, true);
        hostTouchArray(rec, step_tab, true);
        hostTouchArray(rec, idx_tab, true);
        rec.end();

        // coder.
        rec.beginInvocation(fc);
        {
            int valpred = 0, index = 0;
            std::uint8_t pending = 0;
            for (std::size_t i = 0; i < n; ++i) {
                int sample = pcm[i];
                int step = step_tab[static_cast<std::size_t>(index)];
                int delta = encodeOne(sample, valpred, step);
                index = clampInt(
                    index +
                        idx_tab[static_cast<std::size_t>(delta)],
                    0, 88);
                rec.intOps(26);
                if (i % 2 == 0) {
                    pending = static_cast<std::uint8_t>(delta);
                } else {
                    enc[i / 2] = static_cast<std::uint8_t>(
                        pending | (delta << 4));
                }
            }
        }
        rec.end();

        // decoder.
        rec.beginInvocation(fd);
        {
            int valpred = 0, index = 0;
            for (std::size_t i = 0; i < n; ++i) {
                std::uint8_t byte = enc[i / 2];
                int delta = (i % 2 == 0) ? (byte & 0xF)
                                         : ((byte >> 4) & 0xF);
                int step = step_tab[static_cast<std::size_t>(index)];
                decodeOne(delta, valpred, step);
                index = clampInt(
                    index +
                        idx_tab[static_cast<std::size_t>(delta)],
                    0, 88);
                pcm[i] = static_cast<std::int16_t>(valpred);
                rec.intOps(20);
            }
        }
        rec.end();

        rec.beginHostFinal();
        hostTouchArray(rec, pcm, false);
        rec.end();

        verify(ref, pcm);
        return rec.take();
    }

  private:
    /** One IMA encode step; updates valpred, returns the nibble. */
    static int
    encodeOne(int sample, int &valpred, int step)
    {
        int diff = sample - valpred;
        int sign = diff < 0 ? 8 : 0;
        if (sign)
            diff = -diff;
        int delta = 0;
        int vpdiff = step >> 3;
        if (diff >= step) {
            delta = 4;
            diff -= step;
            vpdiff += step;
        }
        step >>= 1;
        if (diff >= step) {
            delta |= 2;
            diff -= step;
            vpdiff += step;
        }
        step >>= 1;
        if (diff >= step) {
            delta |= 1;
            vpdiff += step;
        }
        valpred = sign ? valpred - vpdiff : valpred + vpdiff;
        valpred = clampInt(valpred, -32768, 32767);
        return delta | sign;
    }

    /** One IMA decode step; updates valpred. */
    static void
    decodeOne(int delta, int &valpred, int step)
    {
        int sign = delta & 8;
        int mag = delta & 7;
        int vpdiff = step >> 3;
        if (mag & 4)
            vpdiff += step;
        if (mag & 2)
            vpdiff += step >> 1;
        if (mag & 1)
            vpdiff += step >> 2;
        valpred = sign ? valpred - vpdiff : valpred + vpdiff;
        valpred = clampInt(valpred, -32768, 32767);
    }

    static void
    verify(const std::vector<std::int16_t> &ref,
           const trace::Traced<std::int16_t> &out)
    {
        // Reconstruction error of a smooth signal must stay small
        // relative to the signal swing (~11000 peak).
        double err = 0.0;
        for (std::size_t i = 0; i < ref.size(); ++i) {
            err += std::abs(static_cast<double>(ref[i]) -
                            static_cast<double>(out.peek(i)));
        }
        err /= static_cast<double>(ref.size());
        fusion_assert(err < 500.0,
                      "ADPCM golden check failed: mean abs err=",
                      err);
    }
};

} // namespace

std::unique_ptr<Workload>
makeAdpcm()
{
    return std::make_unique<AdpcmWorkload>();
}

} // namespace fusion::workloads
