/**
 * @file
 * Susan benchmark (smart smallest-univalue-segment corner/edge
 * detection): bright builds the brightness-similarity LUT (tiny,
 * FP-heavy), smooth performs USAN-weighted smoothing over a 5x5
 * mask (the dominant function, 66% of time in Table 1), and corners
 * / edges compute thresholded USAN responses over 3x3 masks.
 */

#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "trace/recorder.hh"
#include "workloads/workload.hh"

namespace fusion::workloads
{

namespace
{

class SusanWorkload : public Workload
{
  public:
    std::string name() const override { return "susan"; }
    std::string displayName() const override { return "SUSAN"; }

    trace::Program
    build(Scale scale) const override
    {
        const std::size_t W = scaled(scale, 24, 80, 160);
        const std::size_t H = W;

        trace::Recorder rec("susan");
        trace::FunctionMeta metas[4] = {{"bright", 0, 2, 1000},
                                        {"smooth", 1, 2, 1700},
                                        {"corners", 2, 2, 1200},
                                        {"edges", 3, 2, 1700}};
        FuncId fid[4];
        for (int i = 0; i < 4; ++i)
            fid[i] = rec.addFunction(metas[i]);

        trace::VaAllocator va;
        trace::Traced<std::uint8_t> img(rec, va, W * H);
        trace::Traced<int> lut(rec, va, 516);
        trace::Traced<std::uint8_t> smoothed(rec, va, W * H);
        trace::Traced<std::uint8_t> corner_map(rec, va, W * H);
        trace::Traced<std::uint8_t> edge_map(rec, va, W * H);

        // Input: dark background with a planted bright square.
        Rng rng(0x5005u);
        std::vector<std::uint8_t> ref(W * H);
        std::size_t sq_lo = W / 4, sq_hi = 3 * W / 4;
        for (std::size_t y = 0; y < H; ++y) {
            for (std::size_t x = 0; x < W; ++x) {
                bool in_sq = y >= sq_lo && y < sq_hi &&
                             x >= sq_lo && x < sq_hi;
                std::uint8_t v = static_cast<std::uint8_t>(
                    (in_sq ? 200 : 40) +
                    static_cast<int>(rng.below(8)));
                ref[y * W + x] = v;
                img.poke(y * W + x, v);
            }
        }

        rec.beginHostInit();
        hostTouchArray(rec, img, true);
        rec.end();

        // bright: similarity LUT, c = 100*exp(-((d/t)^6)).
        const double t = 27.0;
        rec.beginInvocation(fid[0]);
        for (int d = -257; d <= 257; d += 2) {
            double z = static_cast<double>(d) / t;
            double c = 100.0 * std::exp(-(z * z * z * z * z * z));
            lut[static_cast<std::size_t>((d + 257) / 2)] =
                static_cast<int>(c);
            rec.fpOps(9);
            rec.intOps(4);
        }
        rec.end();

        auto lut_at = [&lut](int diff) -> int {
            return lut[static_cast<std::size_t>((diff + 257) / 2)];
        };

        // smooth: USAN-weighted 5x5 smoothing.
        rec.beginInvocation(fid[1]);
        for (std::size_t y = 0; y < H; ++y) {
            for (std::size_t x = 0; x < W; ++x) {
                int center = img[y * W + x];
                long num = 0, den = 0;
                for (int j = -2; j <= 2; ++j) {
                    for (int i = -2; i <= 2; ++i) {
                        if (i == 0 && j == 0)
                            continue;
                        long yy = static_cast<long>(y) + j;
                        long xx = static_cast<long>(x) + i;
                        if (yy < 0 || xx < 0 ||
                            yy >= static_cast<long>(H) ||
                            xx >= static_cast<long>(W))
                            continue;
                        int v = img[static_cast<std::size_t>(yy) * W
                                    + static_cast<std::size_t>(xx)];
                        int c = lut_at(v - center);
                        num += static_cast<long>(c) * v;
                        den += c;
                        rec.intOps(8);
                    }
                }
                smoothed[y * W + x] = static_cast<std::uint8_t>(
                    den > 0 ? num / den : center);
                rec.intOps(6);
            }
        }
        rec.end();

        // corners / edges: thresholded 3x3 USAN area on smoothed.
        for (int pass = 0; pass < 2; ++pass) {
            rec.beginInvocation(fid[2 + pass]);
            // Geometric thresholds: corners need a small USAN,
            // edges a medium one.
            long gmax = 8L * 100L;
            long g = pass == 0 ? gmax / 2 : (3 * gmax) / 4;
            for (std::size_t y = 1; y + 1 < H; ++y) {
                for (std::size_t x = 1; x + 1 < W; ++x) {
                    int center = smoothed[y * W + x];
                    long usan = 0;
                    for (int j = -1; j <= 1; ++j) {
                        for (int i = -1; i <= 1; ++i) {
                            if (i == 0 && j == 0)
                                continue;
                            int v = smoothed[
                                (y + static_cast<std::size_t>(j + 1)
                                 - 1) * W +
                                (x + static_cast<std::size_t>(i + 1)
                                 - 1)];
                            usan += lut_at(v - center);
                            rec.intOps(6);
                        }
                    }
                    std::uint8_t r = static_cast<std::uint8_t>(
                        usan < g ? (g - usan) * 255 / (g ? g : 1)
                                 : 0);
                    rec.intOps(8);
                    if (pass == 0)
                        corner_map[y * W + x] = r;
                    else
                        edge_map[y * W + x] = r;
                }
            }
            rec.end();
        }

        rec.beginHostFinal();
        hostTouchArray(rec, corner_map, false);
        hostTouchArray(rec, edge_map, false);
        rec.end();

        verify(corner_map, edge_map, W, H, sq_lo, sq_hi);
        return rec.take();
    }

  private:
    static void
    verify(const trace::Traced<std::uint8_t> &corner_map,
           const trace::Traced<std::uint8_t> &edge_map,
           std::size_t W, std::size_t H, std::size_t sq_lo,
           std::size_t sq_hi)
    {
        // The planted square's corners must respond in the corner
        // map and its sides in the edge map; the flat interior must
        // stay quiet.
        auto corner_near = [&](std::size_t cy, std::size_t cx) {
            for (long j = -2; j <= 2; ++j) {
                for (long i = -2; i <= 2; ++i) {
                    long y = static_cast<long>(cy) + j;
                    long x = static_cast<long>(cx) + i;
                    if (y < 0 || x < 0 ||
                        y >= static_cast<long>(H) ||
                        x >= static_cast<long>(W))
                        continue;
                    if (corner_map.peek(
                            static_cast<std::size_t>(y) * W +
                            static_cast<std::size_t>(x)) > 0)
                        return true;
                }
            }
            return false;
        };
        fusion_assert(corner_near(sq_lo, sq_lo) &&
                          corner_near(sq_lo, sq_hi - 1) &&
                          corner_near(sq_hi - 1, sq_lo) &&
                          corner_near(sq_hi - 1, sq_hi - 1),
                      "susan corner check failed");
        std::uint64_t edge_hits = 0;
        for (std::size_t x = sq_lo + 2; x < sq_hi - 2; ++x) {
            if (edge_map.peek(sq_lo * W + x) > 0)
                ++edge_hits;
        }
        fusion_assert(edge_hits * 2 > (sq_hi - sq_lo - 4),
                      "susan edge check failed: ", edge_hits);
        // Flat interior quiet.
        std::size_t mid = (sq_lo + sq_hi) / 2;
        fusion_assert(corner_map.peek(mid * W + mid) == 0,
                      "susan interior should be quiet");
    }
};

} // namespace

std::unique_ptr<Workload>
makeSusan()
{
    return std::make_unique<SusanWorkload>();
}

} // namespace fusion::workloads
