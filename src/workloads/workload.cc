#include "workloads/workload.hh"

#include <map>

#include "sim/logging.hh"
#include "trace/store.hh"

namespace fusion::workloads
{

const char *
scaleName(Scale s)
{
    switch (s) {
      case Scale::Small:
        return "small";
      case Scale::Paper:
        return "paper";
      case Scale::Large:
        return "large";
    }
    return "?";
}

// Factories defined in the per-benchmark translation units.
std::unique_ptr<Workload> makeFft();
std::unique_ptr<Workload> makeDisparity();
std::unique_ptr<Workload> makeTracking();
std::unique_ptr<Workload> makeAdpcm();
std::unique_ptr<Workload> makeSusan();
std::unique_ptr<Workload> makeFilter();
std::unique_ptr<Workload> makeHistogram();

namespace
{

/** Extra factories added via registerWorkload (test seam). */
std::map<std::string, std::unique_ptr<Workload> (*)()> &
registeredWorkloads()
{
    static std::map<std::string, std::unique_ptr<Workload> (*)()>
        reg;
    return reg;
}

} // namespace

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names = {
        "fft",   "disparity", "tracking", "adpcm",
        "susan", "filter",    "histogram"};
    for (const auto &[name, factory] : registeredWorkloads())
        names.push_back(name);
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    if (name == "fft")
        return makeFft();
    if (name == "disparity")
        return makeDisparity();
    if (name == "tracking")
        return makeTracking();
    if (name == "adpcm")
        return makeAdpcm();
    if (name == "susan")
        return makeSusan();
    if (name == "filter")
        return makeFilter();
    if (name == "histogram")
        return makeHistogram();
    auto &reg = registeredWorkloads();
    auto it = reg.find(name);
    if (it != reg.end())
        return it->second();
    return nullptr;
}

void
registerWorkload(const std::string &name,
                 std::unique_ptr<Workload> (*factory)())
{
    auto &reg = registeredWorkloads();
    if (factory)
        reg[name] = factory;
    else
        reg.erase(name);
}

std::optional<trace::Program>
buildProgram(const std::string &name, Scale scale)
{
    auto w = makeWorkload(name);
    if (!w)
        return std::nullopt;
    // Replay path: only the built-in benchmarks go through the trace
    // store — registered test workloads are seams whose build() side
    // effects (e.g. deliberately throwing) must keep happening.
    trace::TraceStore *store = trace::globalStore();
    const bool eligible =
        store != nullptr && registeredWorkloads().count(name) == 0;
    if (eligible) {
        if (auto replayed = store->load(name, scale)) {
            DPRINTFN("CACHE", "trace replay: ", name, "/",
                     scaleName(scale), " from ",
                     store->path(name, scale));
            return replayed;
        }
    }
    trace::Program prog = w->build(scale);
    if (eligible)
        store->store(name, scale, prog);
    return prog;
}

std::vector<trace::Program>
buildAll(Scale scale)
{
    std::vector<trace::Program> out;
    for (const auto &n : workloadNames()) {
        auto p = buildProgram(n, scale);
        fusion_assert(p, "missing workload ", n);
        out.push_back(std::move(*p));
    }
    return out;
}

} // namespace fusion::workloads
