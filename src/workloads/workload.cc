#include "workloads/workload.hh"

#include <map>

#include "sim/logging.hh"

namespace fusion::workloads
{

// Factories defined in the per-benchmark translation units.
std::unique_ptr<Workload> makeFft();
std::unique_ptr<Workload> makeDisparity();
std::unique_ptr<Workload> makeTracking();
std::unique_ptr<Workload> makeAdpcm();
std::unique_ptr<Workload> makeSusan();
std::unique_ptr<Workload> makeFilter();
std::unique_ptr<Workload> makeHistogram();

namespace
{

/** Extra factories added via registerWorkload (test seam). */
std::map<std::string, std::unique_ptr<Workload> (*)()> &
registeredWorkloads()
{
    static std::map<std::string, std::unique_ptr<Workload> (*)()>
        reg;
    return reg;
}

} // namespace

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names = {
        "fft",   "disparity", "tracking", "adpcm",
        "susan", "filter",    "histogram"};
    for (const auto &[name, factory] : registeredWorkloads())
        names.push_back(name);
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    if (name == "fft")
        return makeFft();
    if (name == "disparity")
        return makeDisparity();
    if (name == "tracking")
        return makeTracking();
    if (name == "adpcm")
        return makeAdpcm();
    if (name == "susan")
        return makeSusan();
    if (name == "filter")
        return makeFilter();
    if (name == "histogram")
        return makeHistogram();
    auto &reg = registeredWorkloads();
    auto it = reg.find(name);
    if (it != reg.end())
        return it->second();
    return nullptr;
}

void
registerWorkload(const std::string &name,
                 std::unique_ptr<Workload> (*factory)())
{
    auto &reg = registeredWorkloads();
    if (factory)
        reg[name] = factory;
    else
        reg.erase(name);
}

std::vector<trace::Program>
buildAll(Scale scale)
{
    std::vector<trace::Program> out;
    for (const auto &n : workloadNames()) {
        auto w = makeWorkload(n);
        fusion_assert(w, "missing workload ", n);
        out.push_back(w->build(scale));
    }
    return out;
}

} // namespace fusion::workloads
