#include "workloads/workload.hh"

#include "sim/logging.hh"

namespace fusion::workloads
{

// Factories defined in the per-benchmark translation units.
std::unique_ptr<Workload> makeFft();
std::unique_ptr<Workload> makeDisparity();
std::unique_ptr<Workload> makeTracking();
std::unique_ptr<Workload> makeAdpcm();
std::unique_ptr<Workload> makeSusan();
std::unique_ptr<Workload> makeFilter();
std::unique_ptr<Workload> makeHistogram();

std::vector<std::string>
workloadNames()
{
    return {"fft",   "disparity", "tracking", "adpcm",
            "susan", "filter",    "histogram"};
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    if (name == "fft")
        return makeFft();
    if (name == "disparity")
        return makeDisparity();
    if (name == "tracking")
        return makeTracking();
    if (name == "adpcm")
        return makeAdpcm();
    if (name == "susan")
        return makeSusan();
    if (name == "filter")
        return makeFilter();
    if (name == "histogram")
        return makeHistogram();
    return nullptr;
}

std::vector<trace::Program>
buildAll(Scale scale)
{
    std::vector<trace::Program> out;
    for (const auto &n : workloadNames()) {
        auto w = makeWorkload(n);
        fusion_assert(w, "missing workload ", n);
        out.push_back(w->build(scale));
    }
    return out;
}

} // namespace fusion::workloads
