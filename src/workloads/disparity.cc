/**
 * @file
 * Disparity benchmark (SD-VBS): stereo block matching. For every
 * candidate disparity the pipeline computes a per-pixel squared
 * difference (SAD), a 2D integral image (2D2D), a windowed SAD from
 * the integral corners (finalSAD) and a running minimum
 * (findDisparity); padarray4 pads the right image once up front.
 * The intermediate arrays (sad, integral, window sums) are shared
 * between consecutive accelerated functions, giving the high %SHR
 * of Table 1 and the inter-accelerator DMA ping-pong of Section 5.2.
 */

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "trace/recorder.hh"
#include "workloads/workload.hh"

namespace fusion::workloads
{

namespace
{

class DisparityWorkload : public Workload
{
  public:
    std::string name() const override { return "disparity"; }
    std::string displayName() const override { return "DISP."; }

    trace::Program
    build(Scale scale) const override
    {
        // Sized so the intermediates that ping-pong between the
        // accelerators every disparity (sad/integ/retSAD/minSAD,
        // ~48 KB) stay resident in the 64 KB L1X across function
        // switches — the locality SCRATCH destroys with repeated
        // inter-AXC DMA (Section 5.2) — while the total footprint
        // still overflows it.
        const std::size_t W = scaled(scale, 24, 64, 128);
        const std::size_t H = scaled(scale, 16, 48, 96);
        const std::size_t D = scaled(scale, 3, 16, 16);
        const std::size_t win = 4;
        const std::size_t PW = W + win;
        const std::size_t PH = H + win;

        trace::Recorder rec("disparity");
        trace::FunctionMeta metas[5] = {{"padarray4", 0, 5, 500},
                                        {"SAD", 1, 3, 500},
                                        {"2D2D", 2, 4, 500},
                                        {"finalSAD", 3, 6, 500},
                                        {"findDisp", 4, 2, 500}};
        FuncId fid[5];
        for (int i = 0; i < 5; ++i)
            fid[i] = rec.addFunction(metas[i]);

        trace::VaAllocator va;
        // Images are 16-bit (as in SD-VBS); the SAD/integral
        // intermediates need 32 bits. The per-disparity cycle
        // (images + 4 intermediates, ~58 KB) fits the 64 KB L1X.
        trace::Traced<std::int16_t> left(rec, va, W * H);
        trace::Traced<std::int16_t> right(rec, va, W * H);
        trace::Traced<std::int16_t> rpad(rec, va, PW * PH);
        trace::Traced<int> sad(rec, va, W * H);
        trace::Traced<int> integ(rec, va, W * H);
        trace::Traced<int> ret_sad(rec, va, W * H);
        trace::Traced<int> min_sad(rec, va, W * H);
        trace::Traced<std::int16_t> disp(rec, va, W * H);

        // Deterministic stereo pair: right image is the left image
        // shifted by a known disparity plus noise.
        Rng rng(0xD15Fu);
        const std::size_t true_disp = 2;
        std::vector<int> lref(W * H);
        for (std::size_t i = 0; i < W * H; ++i)
            lref[i] = static_cast<int>(rng.below(256));
        for (std::size_t y = 0; y < H; ++y) {
            for (std::size_t x = 0; x < W; ++x) {
                left.poke(y * W + x,
                          static_cast<std::int16_t>(lref[y * W + x]));
                // right[x + true_disp] == left[x]: the matcher must
                // recover d = true_disp.
                std::size_t sx = x >= true_disp ? x - true_disp : 0;
                right.poke(y * W + x,
                           static_cast<std::int16_t>(
                               lref[y * W + sx]));
            }
        }

        rec.beginHostInit();
        hostTouchArray(rec, left, true);
        hostTouchArray(rec, right, true);
        rec.end();

        // padarray4: zero-pad the right image (once).
        rec.beginInvocation(fid[0]);
        for (std::size_t y = 0; y < PH; ++y) {
            for (std::size_t x = 0; x < PW; ++x) {
                rec.intOps(6);
                if (y < H && x < W) {
                    rpad[y * PW + x] = right[y * W + x];
                } else {
                    rpad[y * PW + x] = 0;
                }
            }
        }
        rec.end();

        // Per-disparity pipeline.
        for (std::size_t d = 0; d < D; ++d) {
            // SAD: squared difference of left vs shifted right.
            rec.beginInvocation(fid[1]);
            for (std::size_t y = 0; y < H; ++y) {
                for (std::size_t x = 0; x < W; ++x) {
                    int diff = left[y * W + x] -
                               rpad[y * PW + (x + d)];
                    sad[y * W + x] = diff * diff;
                    rec.intOps(8);
                }
            }
            rec.end();

            // 2D2D: integral image, row pass then column pass.
            rec.beginInvocation(fid[2]);
            for (std::size_t y = 0; y < H; ++y) {
                for (std::size_t x = 0; x < W; ++x) {
                    rec.intOps(6);
                    if (x == 0) {
                        integ[y * W] = sad[y * W];
                    } else {
                        integ[y * W + x] =
                            integ[y * W + x - 1] + sad[y * W + x];
                    }
                }
            }
            for (std::size_t x = 0; x < W; ++x) {
                for (std::size_t y = 1; y < H; ++y) {
                    integ[y * W + x] += integ[(y - 1) * W + x];
                    rec.intOps(5);
                }
            }
            rec.end();

            // finalSAD: windowed sums from integral corners.
            rec.beginInvocation(fid[3]);
            for (std::size_t y = 0; y + win < H; ++y) {
                for (std::size_t x = 0; x + win < W; ++x) {
                    int br = integ[(y + win) * W + (x + win)];
                    int bl = x > 0 ? integ[(y + win) * W + x - 1]
                                   : 0;
                    int tr = y > 0 ? integ[(y - 1) * W + (x + win)]
                                   : 0;
                    int tl = (x > 0 && y > 0)
                                 ? integ[(y - 1) * W + x - 1]
                                 : 0;
                    ret_sad[y * W + x] = br - bl - tr + tl;
                    rec.intOps(10);
                }
            }
            rec.end();

            // findDisparity: running minimum.
            rec.beginInvocation(fid[4]);
            for (std::size_t y = 0; y + win < H; ++y) {
                for (std::size_t x = 0; x + win < W; ++x) {
                    rec.intOps(6);
                    int v = ret_sad[y * W + x];
                    if (d == 0 || v < min_sad[y * W + x]) {
                        min_sad[y * W + x] = v;
                        disp[y * W + x] =
                            static_cast<std::int16_t>(d);
                    }
                }
            }
            rec.end();
        }

        rec.beginHostFinal();
        hostTouchArray(rec, disp, false);
        rec.end();

        verify(lref, disp, W, H, D, win, true_disp);
        return rec.take();
    }

  private:
    /** Independent reference disparity computation. */
    static void
    verify(const std::vector<int> &lref,
           const trace::Traced<std::int16_t> &disp, std::size_t W,
           std::size_t H, std::size_t D, std::size_t win,
           std::size_t true_disp)
    {
        // The right image is an exact copy of the left shifted by
        // true_disp, so the windowed SAD at the planted disparity
        // is zero wherever the window doesn't cross the clamped
        // border; the minimum must recover it for the overwhelming
        // majority of interior pixels.
        (void)lref;
        (void)D;
        std::uint64_t planted = 0, interior = 0;
        for (std::size_t y = 0; y + win < H; ++y) {
            for (std::size_t x = 0; x + win < W; ++x) {
                ++interior;
                if (static_cast<std::size_t>(
                        disp.peek(y * W + x)) == true_disp)
                    ++planted;
            }
        }
        fusion_assert(planted * 10 >= interior * 9,
                      "disparity golden check failed: ", planted,
                      "/", interior, " pixels at planted disparity");
    }
};

} // namespace

std::unique_ptr<Workload>
makeDisparity()
{
    return std::make_unique<DisparityWorkload>();
}

} // namespace fusion::workloads
