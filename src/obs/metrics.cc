/**
 * @file
 * Metrics aggregation and JSON emission.
 *
 * Doubles print through the same shortest-round-trip "%.17g" used by
 * core::RunResult::toJson so telemetry blocks inherit the repo's
 * byte-identical determinism guarantee.
 */

#include "obs/metrics.hh"

#include <cinttypes>
#include <cstdio>

namespace fusion::obs
{

namespace
{

void
putDouble(std::ostream &os, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

void
putUint(std::ostream &os, std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    os << buf;
}

} // namespace

void
accumulate(std::map<std::string, GaugeSummary> &agg,
           const MetricsSeries &series)
{
    for (std::size_t i = 0; i < series.names.size(); ++i) {
        GaugeSummary &g = agg[series.names[i]];
        for (const MetricsRow &row : series.rows) {
            if (i >= row.values.size())
                continue;
            double v = row.values[i];
            if (g.n == 0) {
                g.min = v;
                g.max = v;
            } else {
                g.min = v < g.min ? v : g.min;
                g.max = v > g.max ? v : g.max;
            }
            g.sum += v;
            ++g.n;
        }
    }
}

void
writeSeriesJson(std::ostream &os, const MetricsSeries &series)
{
    os << "{\"interval\":";
    putUint(os, series.interval);
    os << ",\"series\":[";
    for (std::size_t i = 0; i < series.names.size(); ++i) {
        if (i)
            os << ',';
        os << '"' << series.names[i] << '"';
    }
    os << "],\"rows\":[";
    for (std::size_t r = 0; r < series.rows.size(); ++r) {
        if (r)
            os << ',';
        os << '[';
        putUint(os, series.rows[r].tick);
        for (double v : series.rows[r].values) {
            os << ',';
            putDouble(os, v);
        }
        os << ']';
    }
    os << "]}";
}

void
writeSummaryJson(std::ostream &os,
                 const std::map<std::string, GaugeSummary> &agg)
{
    os << '{';
    bool first = true;
    for (const auto &[name, g] : agg) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << name << "\":{\"min\":";
        putDouble(os, g.min);
        os << ",\"mean\":";
        putDouble(os, g.mean());
        os << ",\"max\":";
        putDouble(os, g.max);
        os << '}';
    }
    os << '}';
}

void
writeLatencyJson(std::ostream &os,
                 const std::map<std::string, LatencyStat> &latency)
{
    os << '{';
    bool first = true;
    for (const auto &[name, s] : latency) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << name << "\":{\"samples\":";
        putUint(os, s.samples);
        os << ",\"mean\":";
        putDouble(os, s.mean);
        os << ",\"p50\":";
        putDouble(os, s.p50);
        os << ",\"p95\":";
        putDouble(os, s.p95);
        os << ",\"p99\":";
        putDouble(os, s.p99);
        os << ",\"max\":";
        putDouble(os, s.max);
        os << '}';
    }
    os << '}';
}

} // namespace fusion::obs
