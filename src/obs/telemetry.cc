/**
 * @file
 * Telemetry facade implementation.
 */

#include "obs/telemetry.hh"

#include "sim/logging.hh"

namespace fusion::obs
{

void
Telemetry::configure(const ObsConfig &cfg)
{
    _cfg = cfg;
    if (_cfg.trace) {
        _tracer = std::make_shared<SpanTracer>(_cfg);
        DPRINTFN("OBS", "span tracer armed, limit=", _cfg.traceLimit,
                 " kindMask=0x", std::hex, _cfg.traceKindMask);
    }
    _series = MetricsSeries{};
    _series.interval = _cfg.metricsInterval;
    if (_cfg.metricsInterval > 0)
        DPRINTFN("OBS", "interval metrics armed, interval=",
                 _cfg.metricsInterval);
}

void
Telemetry::sample(Tick now)
{
    if (_series.names.empty()) {
        // First firing: freeze the column order (gauges then
        // counters, each in registration = construction order) and
        // baseline the counters so the first row reports the delta
        // from tick 0.
        for (const auto &[name, fn] : _gauges)
            _series.names.push_back(name);
        for (const auto &[name, fn] : _counters)
            _series.names.push_back(name);
        _lastCounters.assign(_counters.size(), 0.0);
        DPRINTFN("OBS", "metrics sampler first firing at tick ", now,
                 ", ", _series.names.size(), " columns");
    }

    MetricsRow row;
    row.tick = now;
    row.values.reserve(_gauges.size() + _counters.size());
    for (const auto &[name, fn] : _gauges)
        row.values.push_back(fn());
    for (std::size_t i = 0; i < _counters.size(); ++i) {
        double v = _counters[i].second();
        row.values.push_back(v - _lastCounters[i]);
        _lastCounters[i] = v;
    }
    _series.rows.push_back(std::move(row));
}

std::optional<MetricsSeries>
Telemetry::takeMetrics()
{
    if (_series.rows.empty())
        return std::nullopt;
    MetricsSeries out = std::move(_series);
    _series = MetricsSeries{};
    _series.interval = _cfg.metricsInterval;
    return out;
}

} // namespace fusion::obs
