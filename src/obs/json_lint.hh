/**
 * @file
 * Dependency-free JSON well-formedness checker.
 *
 * The repo's reports and traces are emitted by hand-rolled writers;
 * this recursive-descent validator lets the bench harnesses and
 * tests assert the output actually parses (ObsBenchSmoke) without
 * pulling in a JSON library.
 */

#ifndef FUSION_OBS_JSON_LINT_HH
#define FUSION_OBS_JSON_LINT_HH

#include <string>
#include <string_view>

namespace fusion::obs
{

/**
 * True when @p text is one complete, well-formed JSON value
 * (RFC 8259 grammar; no extensions). On failure, when @p err is
 * non-null, stores the byte offset and reason.
 */
bool jsonParses(std::string_view text, std::string *err = nullptr);

} // namespace fusion::obs

#endif // FUSION_OBS_JSON_LINT_HH
