/**
 * @file
 * Perfetto trace_event JSON writer.
 *
 * Timestamps are emitted in raw simulator ticks: the viewer labels
 * the axis in microseconds, but all relative placement and zooming
 * behave correctly and the numbers read directly as ticks.
 */

#include "obs/perfetto.hh"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "sim/logging.hh"

namespace fusion::obs
{

namespace
{

void
putUint(std::ostream &os, std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    os << buf;
}

void
putEscaped(std::ostream &os, const std::string &s)
{
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                os << buf;
            } else {
                os << c;
            }
        }
    }
}

void
writeMeta(std::ostream &os, bool &first, const char *what,
          std::size_t pid, std::uint64_t tid, const std::string &name)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "{\"ph\":\"M\",\"name\":\"" << what << "\",\"pid\":";
    putUint(os, pid);
    if (what[0] == 't') { // thread_name
        os << ",\"tid\":";
        putUint(os, tid);
    }
    os << ",\"args\":{\"name\":\"";
    putEscaped(os, name);
    os << "\"}}";
}

} // namespace

void
writePerfetto(std::ostream &os, const std::vector<TraceProcess> &procs)
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    bool first = true;
    for (std::size_t pid = 0; pid < procs.size(); ++pid) {
        const TraceProcess &p = procs[pid];
        if (!p.tracer)
            continue;
        writeMeta(os, first, "process_name", pid, 0, p.name);
        const auto &tracks = p.tracer->tracks();
        for (std::size_t tid = 0; tid < tracks.size(); ++tid)
            writeMeta(os, first, "thread_name", pid, tid, tracks[tid]);

        for (const SpanRecord &s : p.tracer->sortedSpans()) {
            if (!first)
                os << ",\n";
            first = false;
            Tick dur = s.end >= s.begin ? s.end - s.begin : 0;
            os << "{\"ph\":\"X\",\"name\":\"" << spanKindName(s.kind)
               << "\",\"cat\":\"" << spanKindName(s.kind)
               << "\",\"ts\":";
            putUint(os, s.begin);
            os << ",\"dur\":";
            putUint(os, dur);
            os << ",\"pid\":";
            putUint(os, pid);
            os << ",\"tid\":";
            putUint(os, s.track);
            os << ",\"args\":{\"addr\":\"0x";
            char hex[24];
            std::snprintf(hex, sizeof(hex), "%" PRIx64,
                          static_cast<std::uint64_t>(s.addr));
            os << hex << '"';
            for (std::uint8_t i = 0; i < s.numPhases; ++i) {
                os << ",\"" << s.phases[i].name << "\":";
                putUint(os, s.phases[i].tick);
            }
            os << "}}";
        }
    }
    os << "\n]}\n";
}

bool
writePerfettoFile(const std::string &path,
                  const std::vector<TraceProcess> &procs, std::string *err)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        if (err)
            *err = "cannot open '" + path + "' for writing";
        return false;
    }
    std::size_t spans = 0, dropped = 0;
    for (const TraceProcess &p : procs) {
        if (!p.tracer)
            continue;
        spans += p.tracer->retained();
        dropped += p.tracer->dropped();
    }
    DPRINTFN("OBS", "exporting ", spans, " spans to ", path,
             " (", dropped, " overwritten by the ring)");
    writePerfetto(os, procs);
    os.flush();
    if (!os) {
        if (err)
            *err = "write to '" + path + "' failed";
        return false;
    }
    return true;
}

} // namespace fusion::obs
