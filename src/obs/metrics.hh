/**
 * @file
 * Interval-metrics data model: the time series a run's sampler
 * produces, latency-percentile summaries derived from histograms,
 * and the JSON writers shared by RunResult and the sweep report.
 */

#ifndef FUSION_OBS_METRICS_HH
#define FUSION_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace fusion::obs
{

/** One sampler firing: the tick plus one value per registered series. */
struct MetricsRow
{
    Tick tick = 0;
    std::vector<double> values;
};

/**
 * A run's interval time series. `names[i]` labels `rows[*].values[i]`;
 * gauges come first, then counter rates (per-interval deltas).
 */
struct MetricsSeries
{
    Tick interval = 0;
    std::vector<std::string> names;
    std::vector<MetricsRow> rows;

    bool
    empty() const
    {
        return rows.empty();
    }
};

/** Min/mean/max aggregate of one series across samples (and jobs). */
struct GaugeSummary
{
    double min = 0;
    double max = 0;
    double sum = 0;
    std::uint64_t n = 0;

    double
    mean() const
    {
        return n ? sum / static_cast<double>(n) : 0.0;
    }
};

/** Latency-histogram digest surfaced in RunResult::toJson. */
struct LatencyStat
{
    std::uint64_t samples = 0;
    double mean = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
    double max = 0;
};

/** Fold every sample of @p series into @p agg, keyed by series name. */
void accumulate(std::map<std::string, GaugeSummary> &agg,
                const MetricsSeries &series);

/** `{"interval":N,"series":["a",...],"rows":[[tick,v,...],...]}` */
void writeSeriesJson(std::ostream &os, const MetricsSeries &series);

/** `{"name":{"min":..,"mean":..,"max":..},...}` (map order = sorted). */
void writeSummaryJson(std::ostream &os,
                      const std::map<std::string, GaugeSummary> &agg);

/** `{"name":{"samples":..,"mean":..,"p50":..,...},...}` */
void writeLatencyJson(std::ostream &os,
                      const std::map<std::string, LatencyStat> &latency);

} // namespace fusion::obs

#endif // FUSION_OBS_METRICS_HH
