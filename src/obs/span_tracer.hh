/**
 * @file
 * Ring-buffered transaction span recorder.
 *
 * One SpanTracer lives per SimContext (inside obs::Telemetry) and is
 * only instantiated when tracing is armed, so components gate all
 * instrumentation on a single cached `SpanTracer *` null check.
 *
 * Spans are keyed by (track, kind, address) while open. Re-entrant
 * begins on the same key (e.g. secondary MSHR targets joining an
 * outstanding miss) nest: the span opens at the first begin and
 * closes at the matching last end, which keeps the export free of
 * overlapping same-track duplicates and — because the simulator is
 * deterministic — makes the recorded stream byte-stable across runs.
 *
 * Storage is a fixed-capacity ring: the tracer allocates its slab
 * up front and recycles the oldest record once full, so steady-state
 * tracing performs no heap allocation on the hot path.
 */

#ifndef FUSION_OBS_SPAN_TRACER_HH
#define FUSION_OBS_SPAN_TRACER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/obs_config.hh"
#include "obs/span.hh"

namespace fusion::obs
{

class SpanTracer
{
  public:
    explicit SpanTracer(const ObsConfig &cfg);

    /**
     * Register a component track (one Perfetto thread row). Call
     * once at construction; construction order is deterministic, so
     * track ids are too.
     */
    std::uint32_t registerTrack(const std::string &name);

    /** True when @p kind passes the configured kind filter. */
    bool
    wants(SpanKind kind) const
    {
        return (_mask >> static_cast<unsigned>(kind)) & 1u;
    }

    /** Open (or nest into) the span keyed by (track, kind, addr). */
    void begin(std::uint32_t track, SpanKind kind, Addr addr, Tick now);

    /**
     * Attach a phase mark to the open span with this key. No-op when
     * no such span is open or both phase slots are taken. @p name
     * must be a static string.
     */
    void phase(std::uint32_t track, SpanKind kind, Addr addr,
               const char *name, Tick now);

    /** Close one nesting level; records the span at the last end. */
    void end(std::uint32_t track, SpanKind kind, Addr addr, Tick now);

    /** Record a span whose duration is known up front (no open state). */
    void complete(std::uint32_t track, SpanKind kind, Addr addr,
                  Tick begin_tick, Tick end_tick);

    /** Track names, indexed by track id. */
    const std::vector<std::string> &
    tracks() const
    {
        return _tracks;
    }

    /** Retained spans in (begin, seq) order — stable and chronological. */
    std::vector<SpanRecord> sortedSpans() const;

    /** Total spans recorded, including ones since overwritten. */
    std::uint64_t
    recorded() const
    {
        return _recorded;
    }

    /** Spans lost to ring overwrite. */
    std::uint64_t
    dropped() const
    {
        return _dropped;
    }

    /** Spans currently held in the ring. */
    std::size_t
    retained() const
    {
        return _ring.size();
    }

  private:
    struct OpenKey
    {
        Addr addr;
        std::uint32_t track;
        SpanKind kind;

        bool
        operator==(const OpenKey &o) const
        {
            return addr == o.addr && track == o.track && kind == o.kind;
        }
    };

    struct OpenKeyHash
    {
        std::size_t
        operator()(const OpenKey &k) const
        {
            // splitmix64-style mix over the packed key fields.
            std::uint64_t x = k.addr ^
                (std::uint64_t{k.track} << 40) ^
                (std::uint64_t{static_cast<unsigned>(k.kind)} << 32);
            x ^= x >> 30;
            x *= 0xbf58476d1ce4e5b9ull;
            x ^= x >> 27;
            x *= 0x94d049bb133111ebull;
            x ^= x >> 31;
            return static_cast<std::size_t>(x);
        }
    };

    struct OpenSpan
    {
        Tick begin = 0;
        std::uint32_t nested = 0;
        std::uint8_t numPhases = 0;
        std::array<SpanPhase, 2> phases{};
    };

    void record(const SpanRecord &rec);

    std::uint32_t _mask;
    std::size_t _capacity;
    std::size_t _head = 0; ///< oldest record once the ring is full
    std::uint64_t _nextSeq = 0;
    std::uint64_t _recorded = 0;
    std::uint64_t _dropped = 0;
    std::vector<SpanRecord> _ring;
    std::vector<std::string> _tracks;
    std::unordered_map<OpenKey, OpenSpan, OpenKeyHash> _open;
};

/**
 * Merge several tracers' retained rings into one deterministic
 * stream, ordered by (begin, tracer index, seq). Used by the sharded
 * kernel: each domain records into a private ring (no cross-thread
 * contention during windows), and export-time merging recovers one
 * chronological stream whose order is independent of worker count —
 * per-tracer seq numbers break ties within a tracer and the caller's
 * tracer ordering (domain id) breaks ties across tracers.
 */
std::vector<SpanRecord>
mergeSortedSpans(const std::vector<const SpanTracer *> &parts);

} // namespace fusion::obs

#endif // FUSION_OBS_SPAN_TRACER_HH
