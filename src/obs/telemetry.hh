/**
 * @file
 * Per-context telemetry facade: owns the SpanTracer and the interval
 * sampler's gauge/counter registry.
 *
 * One Telemetry lives inside every SimContext, mirroring the guard
 * subsystem: core::System calls configure() *before* constructing
 * components, components self-register gauges / tracks in their
 * constructors (deterministic construction order ⇒ deterministic
 * track and series ids), and the System drives sample() off the
 * event queue every metricsInterval ticks.
 *
 * Pay-for-what-you-use: with telemetry disabled, tracer() is null —
 * components gate span code on one cached-pointer branch — and
 * sample() never runs. Registration itself always happens; it is
 * construction-time-only and costs nothing per event.
 */

#ifndef FUSION_OBS_TELEMETRY_HH
#define FUSION_OBS_TELEMETRY_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hh"
#include "obs/obs_config.hh"
#include "obs/span_tracer.hh"

namespace fusion::obs
{

class Telemetry
{
  public:
    using ReadFn = std::function<double()>;

    /** Arm features per @p cfg. Call once, before components construct. */
    void configure(const ObsConfig &cfg);

    /** Span tracer, or nullptr when tracing is off. Cache this. */
    SpanTracer *
    tracer()
    {
        return _tracer.get();
    }

    /** True when any feature is armed (spans or interval metrics). */
    bool
    live() const
    {
        return _cfg.anyEnabled();
    }

    Tick
    metricsInterval() const
    {
        return _cfg.metricsInterval;
    }

    /** Register an instantaneous occupancy series (read at each sample). */
    void
    registerGauge(std::string name, ReadFn fn)
    {
        _gauges.emplace_back(std::move(name), std::move(fn));
    }

    /**
     * Register a monotonically increasing counter; the sampler emits
     * its per-interval delta as the series value.
     */
    void
    registerCounter(std::string name, ReadFn fn)
    {
        _counters.emplace_back(std::move(name), std::move(fn));
    }

    /** Take one sample row at @p now. Driven by core::System. */
    void sample(Tick now);

    /** Move the accumulated series out (engaged only when sampling ran). */
    std::optional<MetricsSeries> takeMetrics();

    /** Shared view of the trace for RunResult (null when tracing off). */
    std::shared_ptr<const SpanTracer>
    shareTrace() const
    {
        return _tracer;
    }

  private:
    ObsConfig _cfg;
    std::shared_ptr<SpanTracer> _tracer;
    std::vector<std::pair<std::string, ReadFn>> _gauges;
    std::vector<std::pair<std::string, ReadFn>> _counters;
    std::vector<double> _lastCounters;
    MetricsSeries _series;
};

} // namespace fusion::obs

#endif // FUSION_OBS_TELEMETRY_HH
