/**
 * @file
 * SpanTracer implementation plus the SpanKind name table and the
 * --trace-kinds mask parser.
 */

#include "obs/span_tracer.hh"

#include <algorithm>
#include <cctype>

namespace fusion::obs
{

namespace
{

constexpr const char *kKindNames[] = {
    "invocation", "access",   "lease", "mesi_req",
    "llc_req",    "host_fwd", "dma",   "link_msg",
    "mode_switch", "shard_window", "cache_lookup",
};

static_assert(sizeof(kKindNames) / sizeof(kKindNames[0]) ==
                  static_cast<std::size_t>(SpanKind::NumKinds),
              "kind name table out of sync with SpanKind");

std::string
lowerTrim(std::string_view s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    std::string out(s.substr(b, e - b));
    std::transform(out.begin(), out.end(), out.begin(), [](char c) {
        return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    });
    return out;
}

} // namespace

const char *
spanKindName(SpanKind kind)
{
    auto idx = static_cast<std::size_t>(kind);
    if (idx >= static_cast<std::size_t>(SpanKind::NumKinds))
        return "unknown";
    return kKindNames[idx];
}

std::uint32_t
parseKindMask(std::string_view spec, std::string *err)
{
    if (lowerTrim(spec).empty())
        return ~0u;

    std::uint32_t mask = 0;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string_view::npos)
            comma = spec.size();
        std::string name = lowerTrim(spec.substr(pos, comma - pos));
        pos = comma + 1;
        if (name.empty())
            continue;
        bool found = false;
        for (std::size_t k = 0;
             k < static_cast<std::size_t>(SpanKind::NumKinds); ++k) {
            if (name == kKindNames[k]) {
                mask |= spanKindBit(static_cast<SpanKind>(k));
                found = true;
                break;
            }
        }
        if (!found) {
            if (err) {
                std::string valid;
                for (auto *n : kKindNames) {
                    if (!valid.empty())
                        valid += ", ";
                    valid += n;
                }
                *err = "unknown span kind '" + name + "' (valid: " +
                       valid + ")";
            }
            return 0;
        }
    }
    return mask;
}

SpanTracer::SpanTracer(const ObsConfig &cfg)
    : _mask(cfg.traceKindMask),
      _capacity(std::max<std::size_t>(cfg.traceLimit, 1))
{
    _ring.reserve(_capacity);
    // Transactions in flight at once are bounded by MSHR/queue
    // capacities; 256 buckets keeps the open map re-hash free for
    // every in-tree configuration.
    _open.reserve(256);
}

std::uint32_t
SpanTracer::registerTrack(const std::string &name)
{
    _tracks.push_back(name);
    return static_cast<std::uint32_t>(_tracks.size() - 1);
}

void
SpanTracer::begin(std::uint32_t track, SpanKind kind, Addr addr, Tick now)
{
    if (!wants(kind))
        return;
    OpenSpan &o = _open[OpenKey{addr, track, kind}];
    if (o.nested++ == 0) {
        o.begin = now;
        o.numPhases = 0;
    }
}

void
SpanTracer::phase(std::uint32_t track, SpanKind kind, Addr addr,
                  const char *name, Tick now)
{
    if (!wants(kind))
        return;
    auto it = _open.find(OpenKey{addr, track, kind});
    if (it == _open.end())
        return;
    OpenSpan &o = it->second;
    if (o.numPhases < o.phases.size())
        o.phases[o.numPhases++] = SpanPhase{name, now};
}

void
SpanTracer::end(std::uint32_t track, SpanKind kind, Addr addr, Tick now)
{
    if (!wants(kind))
        return;
    auto it = _open.find(OpenKey{addr, track, kind});
    if (it == _open.end())
        return; // unmatched end — instrumentation seam fired cold
    OpenSpan &o = it->second;
    if (--o.nested > 0)
        return;
    SpanRecord rec;
    rec.begin = o.begin;
    rec.end = now;
    rec.addr = addr;
    rec.track = track;
    rec.kind = kind;
    rec.numPhases = o.numPhases;
    rec.phases = o.phases;
    _open.erase(it);
    record(rec);
}

void
SpanTracer::complete(std::uint32_t track, SpanKind kind, Addr addr,
                     Tick begin_tick, Tick end_tick)
{
    if (!wants(kind))
        return;
    SpanRecord rec;
    rec.begin = begin_tick;
    rec.end = end_tick;
    rec.addr = addr;
    rec.track = track;
    rec.kind = kind;
    record(rec);
}

void
SpanTracer::record(const SpanRecord &rec)
{
    ++_recorded;
    if (_ring.size() < _capacity) {
        _ring.push_back(rec);
        _ring.back().seq = _nextSeq++;
    } else {
        _ring[_head] = rec;
        _ring[_head].seq = _nextSeq++;
        _head = (_head + 1) % _capacity;
        ++_dropped;
    }
}

std::vector<SpanRecord>
SpanTracer::sortedSpans() const
{
    std::vector<SpanRecord> out = _ring;
    std::sort(out.begin(), out.end(),
              [](const SpanRecord &a, const SpanRecord &b) {
                  if (a.begin != b.begin)
                      return a.begin < b.begin;
                  return a.seq < b.seq;
              });
    return out;
}

std::vector<SpanRecord>
mergeSortedSpans(const std::vector<const SpanTracer *> &parts)
{
    struct Tagged
    {
        SpanRecord rec;
        std::size_t part;
    };
    std::vector<Tagged> all;
    std::size_t total = 0;
    for (const SpanTracer *t : parts)
        if (t)
            total += t->retained();
    all.reserve(total);
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (!parts[i])
            continue;
        for (SpanRecord &r : parts[i]->sortedSpans())
            all.push_back(Tagged{r, i});
    }
    std::sort(all.begin(), all.end(),
              [](const Tagged &a, const Tagged &b) {
                  if (a.rec.begin != b.rec.begin)
                      return a.rec.begin < b.rec.begin;
                  if (a.part != b.part)
                      return a.part < b.part;
                  return a.rec.seq < b.rec.seq;
              });
    std::vector<SpanRecord> out;
    out.reserve(all.size());
    for (Tagged &t : all)
        out.push_back(t.rec);
    return out;
}

} // namespace fusion::obs
