/**
 * @file
 * Span vocabulary for the telemetry subsystem.
 *
 * A *span* is one protocol-transaction lifecycle: begin tick, end
 * tick, the component track it ran on, the line address it concerned
 * and a SpanKind saying which protocol seam produced it. Spans may
 * carry up to two *phase marks* — named instants inside the span
 * (e.g. the tick a lease request stalled on a write epoch) that
 * export as Perfetto args.
 */

#ifndef FUSION_OBS_SPAN_HH
#define FUSION_OBS_SPAN_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "sim/types.hh"

namespace fusion::obs
{

/**
 * Which protocol seam a span was recorded at. Used both as the
 * Perfetto category and as the bit index for --trace-kinds
 * filtering.
 */
enum class SpanKind : std::uint8_t
{
    Invocation, ///< accelerator function invocation (System)
    Access,     ///< L0X access, ACC or MESI tile protocol
    Lease,      ///< L1X timestamp-lease transaction (ACC protocol)
    MesiReq,    ///< L1X directory transaction (MESI tile protocol)
    LlcReq,     ///< host LLC/directory transaction
    HostFwd,    ///< host-initiated forward buffered at the L1X
    Dma,        ///< DMA operation / per-line chunk (SCRATCH)
    LinkMsg,    ///< message traversing an interconnect link
    ModeSwitch, ///< orchestrator coherence-mode transition (AUTO)
    ShardWindow, ///< one conservative-lookahead window of a domain
    CacheLookup, ///< sweep result-cache probe (hit/miss/dedup track)
    NumKinds,
};

/** Stable lower-case name, e.g. "lease"; also the Perfetto category. */
const char *spanKindName(SpanKind kind);

/** Bit for @p kind in an ObsConfig::traceKindMask. */
constexpr std::uint32_t
spanKindBit(SpanKind kind)
{
    return std::uint32_t{1} << static_cast<unsigned>(kind);
}

/**
 * Parse a comma-separated list of span-kind names ("lease,llc_req")
 * into a traceKindMask. Names are matched case-insensitively against
 * spanKindName(); surrounding whitespace is trimmed. An empty spec
 * selects every kind. On an unknown name, returns 0 and, when @p err
 * is non-null, stores a message naming the offender and the valid
 * vocabulary.
 */
std::uint32_t parseKindMask(std::string_view spec, std::string *err);

/** A named instant inside a span. @c name must be a static string. */
struct SpanPhase
{
    const char *name = nullptr;
    Tick tick = 0;
};

/** One completed span, as retained in the SpanTracer ring buffer. */
struct SpanRecord
{
    Tick begin = 0;
    Tick end = 0;
    /** Line address (or small integer id for kinds without one). */
    Addr addr = 0;
    /** Record sequence number: total order of span completion. */
    std::uint64_t seq = 0;
    /** Track id from SpanTracer::registerTrack. */
    std::uint32_t track = 0;
    SpanKind kind = SpanKind::Access;
    std::uint8_t numPhases = 0;
    std::array<SpanPhase, 2> phases{};
};

} // namespace fusion::obs

#endif // FUSION_OBS_SPAN_HH
