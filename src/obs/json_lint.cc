/**
 * @file
 * Recursive-descent JSON validator (values only, no DOM).
 */

#include "obs/json_lint.hh"

#include <cctype>
#include <cstdio>

namespace fusion::obs
{

namespace
{

struct Parser
{
    std::string_view text;
    std::size_t pos = 0;
    std::string reason;
    // Traces and reports nest shallowly; a generous depth cap keeps
    // adversarial input from overflowing the stack.
    int depth = 0;
    static constexpr int kMaxDepth = 64;

    bool
    fail(const char *why)
    {
        if (reason.empty()) {
            char buf[128];
            std::snprintf(buf, sizeof(buf), "%s at offset %zu", why, pos);
            reason = buf;
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size()) {
            char c = text[pos];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos;
            else
                break;
        }
    }

    bool
    eat(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text.substr(pos, word.size()) != word)
            return fail("invalid literal");
        pos += word.size();
        return true;
    }

    bool
    string()
    {
        if (!eat('"'))
            return fail("expected string");
        while (pos < text.size()) {
            unsigned char c = text[pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos >= text.size())
                    return fail("truncated escape");
                char e = text[pos++];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        if (pos >= text.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(text[pos])))
                            return fail("bad \\u escape");
                        ++pos;
                    }
                } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                           e != 'f' && e != 'n' && e != 'r' && e != 't') {
                    return fail("bad escape");
                }
            } else if (c < 0x20) {
                return fail("raw control char in string");
            }
        }
        return fail("unterminated string");
    }

    bool
    number()
    {
        eat('-');
        if (!(pos < text.size() &&
              std::isdigit(static_cast<unsigned char>(text[pos]))))
            return fail("bad number");
        if (text[pos] == '0') {
            ++pos;
        } else {
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        if (eat('.')) {
            if (!(pos < text.size() &&
                  std::isdigit(static_cast<unsigned char>(text[pos]))))
                return fail("bad fraction");
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            if (!(pos < text.size() &&
                  std::isdigit(static_cast<unsigned char>(text[pos]))))
                return fail("bad exponent");
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        return true;
    }

    bool
    value()
    {
        if (++depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        bool ok;
        switch (text[pos]) {
          case '{':
            ok = object();
            break;
          case '[':
            ok = array();
            break;
          case '"':
            ok = string();
            break;
          case 't':
            ok = literal("true");
            break;
          case 'f':
            ok = literal("false");
            break;
          case 'n':
            ok = literal("null");
            break;
          default:
            ok = number();
        }
        --depth;
        return ok;
    }

    bool
    object()
    {
        eat('{');
        skipWs();
        if (eat('}'))
            return true;
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (!eat(':'))
                return fail("expected ':'");
            if (!value())
                return false;
            skipWs();
            if (eat(','))
                continue;
            if (eat('}'))
                return true;
            return fail("expected ',' or '}'");
        }
    }

    bool
    array()
    {
        eat('[');
        skipWs();
        if (eat(']'))
            return true;
        while (true) {
            if (!value())
                return false;
            skipWs();
            if (eat(','))
                continue;
            if (eat(']'))
                return true;
            return fail("expected ',' or ']'");
        }
    }
};

} // namespace

bool
jsonParses(std::string_view text, std::string *err)
{
    Parser p{text};
    if (!p.value()) {
        if (err)
            *err = p.reason;
        return false;
    }
    p.skipWs();
    if (p.pos != p.text.size()) {
        if (err) {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "trailing data at offset %zu",
                          p.pos);
            *err = buf;
        }
        return false;
    }
    return true;
}

} // namespace fusion::obs
