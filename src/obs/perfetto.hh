/**
 * @file
 * Chrome/Perfetto `trace_event` JSON export for recorded spans.
 *
 * Emits the legacy JSON trace format (the "JSON Array Format" with a
 * traceEvents wrapper), which ui.perfetto.dev and chrome://tracing
 * both open directly. Each simulated job becomes one process (pid =
 * job index, process_name = job tag) and each component track one
 * thread row, so a whole sweep lands in a single file with the
 * SHARED / FUSION variants side by side.
 */

#ifndef FUSION_OBS_PERFETTO_HH
#define FUSION_OBS_PERFETTO_HH

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/span_tracer.hh"

namespace fusion::obs
{

/** One exported process: a job's tag plus its recorded trace. */
struct TraceProcess
{
    std::string name;
    std::shared_ptr<const SpanTracer> tracer;
};

/** Write the merged trace for @p procs to @p os. */
void writePerfetto(std::ostream &os, const std::vector<TraceProcess> &procs);

/**
 * Write the merged trace to @p path. Returns false (and fills @p err
 * when non-null) if the file cannot be written.
 */
bool writePerfettoFile(const std::string &path,
                       const std::vector<TraceProcess> &procs,
                       std::string *err = nullptr);

} // namespace fusion::obs

#endif // FUSION_OBS_PERFETTO_HH
