/**
 * @file
 * Configuration of the telemetry subsystem (docs/OBSERVABILITY.md).
 *
 * Everything here defaults to *off*: a default run constructs the
 * Telemetry object but never records a span or a sample, and its
 * serialized output is byte-identical to a build without the obs
 * module. The sweep/bench harnesses populate this from the shared
 * --trace-out / --trace-limit / --trace-kinds / --metrics-interval
 * flags (bench_util.hh).
 */

#ifndef FUSION_OBS_OBS_CONFIG_HH
#define FUSION_OBS_OBS_CONFIG_HH

#include <cstddef>
#include <cstdint>

#include "sim/types.hh"

namespace fusion::obs
{

/** Telemetry knobs carried inside core::SystemConfig. */
struct ObsConfig
{
    /** Record transaction spans (SpanTracer armed). */
    bool trace = false;
    /** Bitmask over SpanKind: which span kinds are recorded. */
    std::uint32_t traceKindMask = ~0u;
    /** Span ring-buffer capacity; the oldest spans are overwritten
     *  once a run records more than this many. */
    std::size_t traceLimit = std::size_t{1} << 16;
    /** Interval-metrics sampling period in ticks (0 = off). */
    Tick metricsInterval = 0;

    /** True when any telemetry feature is armed. */
    bool
    anyEnabled() const
    {
        return trace || metricsInterval > 0;
    }
};

} // namespace fusion::obs

#endif // FUSION_OBS_OBS_CONFIG_HH
