#include "trace/store.hh"

#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

#include <unistd.h>

#include "sim/logging.hh"
#include "sim/wire.hh"

namespace fusion::trace
{

namespace fs = std::filesystem;

namespace
{

constexpr std::string_view kMagic = "FTRC";

/**
 * Hard ceiling on decoded collection sizes. Corruption is normally
 * caught by the envelope hash before decoding starts; this bound is
 * the second line of defense so even a deliberately constructed
 * payload cannot drive a multi-gigabyte allocation.
 */
constexpr std::uint64_t kMaxDecodedOps = std::uint64_t{1} << 27;
constexpr std::uint64_t kMaxDecodedSections = std::uint64_t{1} << 20;

/** Op-block encoder: address deltas + compute run-length. */
void
putOps(wire::Writer &w, const std::vector<TraceOp> &ops)
{
    w.u64(ops.size());
    std::uint64_t prevAddr = 0;
    for (std::size_t i = 0; i < ops.size();) {
        const TraceOp &op = ops[i];
        switch (op.kind) {
          case OpKind::Load:
          case OpKind::Store:
            w.u8(op.kind == OpKind::Load ? 0 : 1);
            w.i64(static_cast<std::int64_t>(op.addr) -
                  static_cast<std::int64_t>(prevAddr));
            w.u32(op.size);
            prevAddr = op.addr;
            ++i;
            break;
          case OpKind::Compute: {
            // Run-length collapse consecutive identical computes.
            std::size_t run = 1;
            while (i + run < ops.size() &&
                   ops[i + run].kind == OpKind::Compute &&
                   ops[i + run].intOps == op.intOps &&
                   ops[i + run].fpOps == op.fpOps)
                ++run;
            w.u8(2);
            w.u32(op.intOps);
            w.u32(op.fpOps);
            w.u64(run);
            i += run;
            break;
          }
        }
    }
}

bool
getOps(wire::Reader &r, std::vector<TraceOp> &ops)
{
    std::uint64_t count;
    if (!r.u64(count) || count > kMaxDecodedOps)
        return false;
    ops.clear();
    ops.reserve(static_cast<std::size_t>(count));
    std::uint64_t prevAddr = 0;
    while (ops.size() < count) {
        std::uint8_t tag;
        if (!r.u8(tag))
            return false;
        if (tag == 0 || tag == 1) {
            std::int64_t delta;
            std::uint32_t size;
            if (!r.i64(delta) || !r.u32(size))
                return false;
            std::uint64_t addr = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(prevAddr) + delta);
            ops.push_back(tag == 0
                              ? TraceOp::load(addr, size)
                              : TraceOp::store(addr, size));
            prevAddr = addr;
        } else if (tag == 2) {
            std::uint32_t intOps, fpOps;
            std::uint64_t run;
            if (!r.u32(intOps) || !r.u32(fpOps) || !r.u64(run) ||
                run == 0 || run > count - ops.size())
                return false;
            for (std::uint64_t k = 0; k < run; ++k)
                ops.push_back(TraceOp::compute(intOps, fpOps));
        } else {
            return false;
        }
    }
    return true;
}

} // namespace

std::string
serializeProgramPayload(const Program &prog)
{
    wire::Writer w;
    w.str(prog.name);
    w.u64(prog.pid);

    w.u64(prog.functions.size());
    for (const FunctionMeta &f : prog.functions) {
        w.str(f.name);
        w.u64(f.accel);
        w.u32(f.mlp);
        w.u64(f.leaseTime);
    }

    // Invocation index: per-invocation op-block payload offsets, as
    // deltas. Written before the blocks so tools (and the robustness
    // tests) can locate any invocation without decoding the rest.
    std::vector<std::string> blocks;
    blocks.reserve(prog.invocations.size());
    for (const Invocation &inv : prog.invocations) {
        wire::Writer b;
        b.u64(static_cast<std::uint64_t>(inv.func));
        putOps(b, inv.ops);
        blocks.push_back(b.take());
    }
    w.u64(blocks.size());
    for (const std::string &b : blocks)
        w.u64(b.size());
    for (const std::string &b : blocks)
        w.str(b);

    putOps(w, prog.hostInit);
    putOps(w, prog.hostFinal);
    return w.take();
}

std::string
serializeProgram(const Program &prog)
{
    return wire::wrapPayload(kMagic, kTraceFormatVersion,
                             serializeProgramPayload(prog));
}

bool
deserializeProgram(std::string_view bytes, Program &out,
                   std::string *err)
{
    std::string_view payload;
    if (!wire::unwrapPayload(kMagic, kTraceFormatVersion, bytes,
                             payload, err))
        return false;
    auto fail = [&](const char *why) {
        if (err)
            *err = why;
        return false;
    };

    Program p;
    wire::Reader r(payload);
    std::uint64_t pid, nFuncs, nInvs;
    if (!r.str(p.name) || !r.u64(pid))
        return fail("truncated program header");
    p.pid = static_cast<Pid>(pid);

    if (!r.u64(nFuncs) || nFuncs > kMaxDecodedSections)
        return fail("bad function count");
    p.functions.resize(static_cast<std::size_t>(nFuncs));
    for (FunctionMeta &f : p.functions) {
        std::uint64_t accel, lease;
        if (!r.str(f.name) || !r.u64(accel) || !r.u32(f.mlp) ||
            !r.u64(lease))
            return fail("truncated function meta");
        f.accel = static_cast<AccelId>(accel);
        f.leaseTime = static_cast<Cycles>(lease);
    }

    if (!r.u64(nInvs) || nInvs > kMaxDecodedSections)
        return fail("bad invocation count");
    std::vector<std::uint64_t> blockSizes(
        static_cast<std::size_t>(nInvs));
    for (std::uint64_t &sz : blockSizes)
        if (!r.u64(sz))
            return fail("truncated invocation index");
    p.invocations.resize(static_cast<std::size_t>(nInvs));
    for (std::size_t i = 0; i < p.invocations.size(); ++i) {
        std::string block;
        if (!r.str(block) || block.size() != blockSizes[i])
            return fail("invocation index disagrees with block");
        wire::Reader br(block);
        std::uint64_t func;
        if (!br.u64(func) || !getOps(br, p.invocations[i].ops) ||
            !br.done())
            return fail("bad invocation op block");
        p.invocations[i].func = static_cast<FuncId>(func);
        if (func >= nFuncs)
            return fail("invocation names unknown function");
    }

    if (!getOps(r, p.hostInit) || !getOps(r, p.hostFinal))
        return fail("bad host op block");
    if (!r.done())
        return fail("trailing bytes after program");
    out = std::move(p);
    return true;
}

std::uint64_t
programHash(const Program &prog)
{
    return fnv1a(serializeProgramPayload(prog));
}

TraceStore::TraceStore(std::string dir) : _dir(std::move(dir)) {}

std::string
TraceStore::path(const std::string &name,
                 workloads::Scale scale) const
{
    return _dir + "/" + name + "." +
           workloads::scaleName(scale) + ".ftrc";
}

std::optional<Program>
TraceStore::load(const std::string &name,
                 workloads::Scale scale) const
{
    std::ifstream in(path(name, scale), std::ios::binary);
    if (!in)
        return std::nullopt;
    std::stringstream buf;
    buf << in.rdbuf();
    std::string bytes = buf.str();
    Program p;
    std::string err;
    if (!deserializeProgram(bytes, p, &err)) {
        DPRINTFN("CACHE", "trace store: ", path(name, scale),
                 " rejected (", err, "); regenerating");
        return std::nullopt;
    }
    return p;
}

void
TraceStore::store(const std::string &name, workloads::Scale scale,
                  const Program &prog)
{
    std::error_code ec;
    fs::create_directories(_dir, ec);
    const std::string dst = path(name, scale);
    // Atomic publish: write a private temp file, then rename. A
    // concurrent writer of the same key just wins the last rename;
    // readers only ever see complete files.
    const std::string tmp =
        dst + ".tmp." +
        std::to_string(static_cast<unsigned long>(::getpid()));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (out)
            out << serializeProgram(prog);
        if (!out) {
            if (!_warned) {
                _warned = true;
                fusion_warn("trace store: cannot write ", tmp,
                            " (recording disabled for this store)");
            }
            fs::remove(tmp, ec);
            return;
        }
    }
    fs::rename(tmp, dst, ec);
    if (ec) {
        if (!_warned) {
            _warned = true;
            fusion_warn("trace store: cannot publish ", dst, ": ",
                        ec.message());
        }
        fs::remove(tmp, ec);
    }
}

namespace
{

std::mutex g_storeMu;
std::unique_ptr<TraceStore> g_store;

} // namespace

TraceStore *
globalStore()
{
    std::lock_guard<std::mutex> lk(g_storeMu);
    return g_store.get();
}

void
setGlobalStoreDir(const std::string &dir)
{
    std::lock_guard<std::mutex> lk(g_storeMu);
    if (dir.empty())
        g_store.reset();
    else
        g_store = std::make_unique<TraceStore>(dir);
}

} // namespace fusion::trace
