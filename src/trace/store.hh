/**
 * @file
 * Binary on-disk trace store: capture a generated trace::Program
 * once, replay it from disk thereafter.
 *
 * Every harness run used to regenerate each workload's dynamic trace
 * from scratch — the real kernels execute over instrumented arrays
 * and self-check against golden references, which dominates sweep
 * start-up cost. GPU simulators persist trace artifacts separately
 * from stats for exactly this reason; this store is our equivalent
 * (ROADMAP item 2, DESIGN.md §10).
 *
 * File format ("FTRC", version 1):
 *
 *   "FTRC" | version | payload length | payload FNV-1a   (envelope)
 *   payload:
 *     name | pid
 *     #functions | per function: name, accel, mlp, leaseTime
 *     invocation index: #invocations | per invocation the byte
 *       offset of its op block within the payload (varint deltas)
 *     per invocation: func id | op block
 *     hostInit op block | hostFinal op block
 *
 * An op block encodes the program-ordered TraceOp stream compactly:
 * memory-op addresses are zigzag varint deltas against the previous
 * memory op's address in the same block, and consecutive identical
 * compute ops are run-length collapsed. The payload FNV-1a doubles
 * as the *content identity* of the trace — programHash() — which
 * keys the sweep result cache together with
 * SystemConfig::canonicalHash().
 *
 * Loads are corruption-tolerant end to end: a truncated, bit-flipped
 * or trailing-garbage file fails the envelope hash (or a decode
 * bound) and degrades to a miss — the workload is simply regenerated
 * and re-recorded. A store never crashes the simulation.
 */

#ifndef FUSION_TRACE_STORE_HH
#define FUSION_TRACE_STORE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace fusion::trace
{

/** On-disk trace format version; bump on any encoding change. */
inline constexpr std::uint32_t kTraceFormatVersion = 1;

/** Canonical payload encoding of @p prog (no file envelope). */
std::string serializeProgramPayload(const Program &prog);

/** Complete file image: envelope + payload. */
std::string serializeProgram(const Program &prog);

/**
 * Decode a file image produced by serializeProgram(). Returns false
 * (and a reason in @p err, when non-null) on any corruption; @p out
 * is only modified on success.
 */
bool deserializeProgram(std::string_view bytes, Program &out,
                        std::string *err = nullptr);

/**
 * Content identity of a trace: FNV-1a over the canonical payload
 * encoding. Identical programs hash identically regardless of how
 * they were obtained (generated or replayed); any op, metadata or
 * ordering difference changes the hash.
 */
std::uint64_t programHash(const Program &prog);

/**
 * Directory of serialized traces keyed by (workload name, scale).
 * Writes are atomic (temp file + rename), so concurrent writers of
 * the same key are safe and readers never observe a partial file.
 */
class TraceStore
{
  public:
    explicit TraceStore(std::string dir);

    const std::string &dir() const { return _dir; }

    /** File path for one (workload, scale) key. */
    std::string path(const std::string &name,
                     workloads::Scale scale) const;

    /**
     * Load the stored trace for (name, scale). Any failure — file
     * absent, envelope mismatch, decode error — is a nullopt miss.
     */
    std::optional<Program> load(const std::string &name,
                                workloads::Scale scale) const;

    /**
     * Persist @p prog under (name, scale). Best-effort: failures
     * (unwritable directory, disk full) warn once per store and are
     * otherwise ignored — recording is an optimization, never a
     * correctness requirement.
     */
    void store(const std::string &name, workloads::Scale scale,
               const Program &prog);

  private:
    std::string _dir;
    bool _warned = false;
};

/**
 * Process-global replay store consulted by workloads::buildProgram.
 * Unset by default (every build regenerates, byte-identical to the
 * pre-store tree); the bench harnesses arm it from --trace-dir.
 * @return nullptr when disabled.
 */
TraceStore *globalStore();

/** Arm (non-empty) or disarm (empty) the global replay store. */
void setGlobalStoreDir(const std::string &dir);

} // namespace fusion::trace

#endif // FUSION_TRACE_STORE_HH
