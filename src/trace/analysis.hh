/**
 * @file
 * Post-processing analyses over captured traces.
 *
 * These reproduce the paper's trace-derived inputs:
 *  - per-function operation mix and sharing degree (Table 1),
 *  - working-set footprints (Table 6d),
 *  - DMA window segmentation for the oracle SCRATCH baseline
 *    (Section 4: working sets larger than the scratchpad are
 *    "segmented into windows of execution with DMA operations
 *    required for each window"),
 *  - producer->consumer store identification for FUSION-Dx
 *    (Section 3.2: "we post process the trace to identify the stores
 *    to be forwarded").
 */

#ifndef FUSION_TRACE_ANALYSIS_HH
#define FUSION_TRACE_ANALYSIS_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/trace.hh"

namespace fusion::trace
{

/** Per-function characteristics (Table 1 rows). */
struct FunctionProfile
{
    std::string name;
    double pctTime = 0.0; ///< filled by the runner (host cycles)
    double pctInt = 0.0;
    double pctFp = 0.0;
    double pctLd = 0.0;
    double pctSt = 0.0;
    double sharePct = 0.0; ///< %SHR
    std::uint32_t mlp = 0;
    Cycles leaseTime = 0;
    std::uint64_t memOps = 0;
    std::uint64_t intOps = 0;
    std::uint64_t fpOps = 0;
    std::uint64_t footprintLines = 0;
};

/** Compute op-mix and %SHR for every function of @p prog. */
std::vector<FunctionProfile> profileFunctions(const Program &prog);

/** Unique lines touched by all invocations (accelerator footprint). */
std::uint64_t footprintLines(const Program &prog);

/** Unique lines touched by one op stream. */
std::uint64_t footprintLines(const std::vector<TraceOp> &ops);

/** One DMA window of a SCRATCH-mode invocation. */
struct DmaWindow
{
    std::size_t beginOp = 0; ///< [beginOp, endOp) into the op stream
    std::size_t endOp = 0;
    std::vector<Addr> readLines;  ///< lines DMA must pre-load
    std::vector<Addr> dirtyLines; ///< lines DMA must drain after
};

/**
 * Segment an invocation into windows whose footprint fits the
 * scratchpad.
 *
 * A line counts against capacity from its first access. Lines that
 * are loaded at any point in the window enter the read set (the
 * oracle "only DMAs read data in and dirty data out", Section 4);
 * lines stored to enter the dirty set.
 */
std::vector<DmaWindow> segmentWindows(const Invocation &inv,
                                      std::uint64_t scratch_lines);

/** One planned forward: where to push the line, and whether it is
 *  safe to push at a mid-run self-downgrade. */
struct ForwardHint
{
    AccelId consumer = kNoAccel;
    /// True when the producer's stores to this line form one
    /// compact burst, so a write-epoch-expiry downgrade can forward
    /// immediately without risking a later producer re-write
    /// stalling on the transferred lease.
    bool earlyOk = false;
};

/** Forwarding plan for FUSION-Dx: per invocation, per dirty line,
 *  the consumer accelerator to push the line to. */
using ForwardPlan =
    std::unordered_map<std::uint32_t,
                       std::unordered_map<Addr, ForwardHint>>;

/**
 * Identify producer->consumer stores: a line whose next toucher
 * after invocation i (the producer) is a *load* by a *different*
 * accelerator becomes a forward candidate of invocation i
 * (Section 3.2: "we post process the trace to identify the stores
 * to be forwarded").
 */
ForwardPlan planForwarding(const Program &prog);

/**
 * Inter-invocation dependences for overlapped execution.
 *
 * The offloaded program is sequential, but invocations without
 * memory conflicts can safely run concurrently on different
 * accelerators (the overlap the paper's Figure 5 timeline depicts).
 * deps[j] lists every earlier invocation j must wait for:
 *  - RAW: j reads a line some i < j wrote,
 *  - WAW: j writes a line some i < j wrote,
 *  - WAR: j writes a line some i < j read.
 * Same-accelerator ordering is enforced by the scheduler (one core
 * per accelerator), not recorded here.
 */
std::vector<std::vector<std::uint32_t>>
invocationDependences(const Program &prog);

/** Summary numbers for Table 6d. */
struct WorkingSet
{
    std::uint64_t lines = 0;
    double kilobytes() const
    {
        return static_cast<double>(lines * kLineBytes) / 1024.0;
    }
};

WorkingSet workingSet(const Program &prog);

} // namespace fusion::trace

#endif // FUSION_TRACE_ANALYSIS_HH
