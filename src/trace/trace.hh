/**
 * @file
 * Dynamic-trace representation of an offloaded program.
 *
 * The paper's toolchain profiles each application, extracts the hot
 * functions, and replays a constrained dynamic data-dependence graph
 * per accelerator (Section 4, "Modelling accelerator cores"). We
 * reproduce the same structure: every benchmark executes for real
 * (over instrumented arrays) and records, per *invocation* of an
 * accelerated function, the program-ordered stream of memory
 * references and the operation counts between them.
 *
 * Addresses in traces are *virtual*; the accelerator tile operates
 * on VAs and the vm module translates at the tile boundary
 * (Section 3.2).
 */

#ifndef FUSION_TRACE_TRACE_HH
#define FUSION_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace fusion::trace
{

/** Kind of a trace operation. */
enum class OpKind : std::uint8_t
{
    Load,
    Store,
    Compute
};

/** One dynamic operation. */
struct TraceOp
{
    OpKind kind = OpKind::Compute;
    Addr addr = 0;          ///< virtual address (mem ops)
    std::uint32_t size = 0; ///< access size in bytes (mem ops)
    std::uint32_t intOps = 0; ///< integer ops (compute)
    std::uint32_t fpOps = 0;  ///< floating-point ops (compute)

    static TraceOp
    load(Addr a, std::uint32_t sz)
    {
        return TraceOp{OpKind::Load, a, sz, 0, 0};
    }
    static TraceOp
    store(Addr a, std::uint32_t sz)
    {
        return TraceOp{OpKind::Store, a, sz, 0, 0};
    }
    static TraceOp
    compute(std::uint32_t int_ops, std::uint32_t fp_ops)
    {
        return TraceOp{OpKind::Compute, 0, 0, int_ops, fp_ops};
    }
};

/** Static description of one accelerated function. */
struct FunctionMeta
{
    std::string name;
    AccelId accel = 0;   ///< the fixed-function unit running it
    std::uint32_t mlp = 4; ///< max outstanding memory ops (Table 1)
    Cycles leaseTime = 500; ///< ACC lease length LT (Table 3)
};

/** One dynamic invocation of an accelerated function. */
struct Invocation
{
    FuncId func = kNoFunc;
    std::vector<TraceOp> ops;
};

/** A full program: host phases + accelerated invocations in order. */
struct Program
{
    std::string name;
    Pid pid = 1;
    std::vector<FunctionMeta> functions;
    std::vector<Invocation> invocations;
    /** Host writes the input arrays before offload begins. */
    std::vector<TraceOp> hostInit;
    /** Host consumes the outputs after the last invocation. */
    std::vector<TraceOp> hostFinal;

    /** Number of distinct accelerators used. */
    std::uint32_t
    accelCount() const
    {
        std::uint32_t n = 0;
        for (const auto &f : functions)
            n = f.accel + 1 > static_cast<AccelId>(n)
                    ? static_cast<std::uint32_t>(f.accel + 1)
                    : n;
        return n;
    }

    /** Total memory operations across all invocations. */
    std::uint64_t memOpCount() const;
    /** Total trace operations across all invocations. */
    std::uint64_t opCount() const;
};

} // namespace fusion::trace

#endif // FUSION_TRACE_TRACE_HH
