#include "trace/trace.hh"

namespace fusion::trace
{

std::uint64_t
Program::memOpCount() const
{
    std::uint64_t n = 0;
    for (const auto &inv : invocations) {
        for (const auto &op : inv.ops)
            n += op.kind != OpKind::Compute ? 1 : 0;
    }
    return n;
}

std::uint64_t
Program::opCount() const
{
    std::uint64_t n = 0;
    for (const auto &inv : invocations)
        n += inv.ops.size();
    return n;
}

} // namespace fusion::trace
