#include "trace/recorder.hh"

namespace fusion::trace
{

Recorder::Recorder(std::string program_name, Pid pid)
{
    _prog.name = std::move(program_name);
    _prog.pid = pid;
}

FuncId
Recorder::addFunction(const FunctionMeta &meta)
{
    _prog.functions.push_back(meta);
    return static_cast<FuncId>(_prog.functions.size()) - 1;
}

void
Recorder::beginHostInit()
{
    fusion_assert(_phase == Phase::Idle, "recorder phase not idle");
    _phase = Phase::HostInit;
}

void
Recorder::beginHostFinal()
{
    fusion_assert(_phase == Phase::Idle, "recorder phase not idle");
    _phase = Phase::HostFinal;
}

void
Recorder::beginInvocation(FuncId func)
{
    fusion_assert(_phase == Phase::Idle, "recorder phase not idle");
    fusion_assert(func >= 0 &&
                      func < static_cast<FuncId>(
                                 _prog.functions.size()),
                  "unknown function id ", func);
    _phase = Phase::Invocation;
    _prog.invocations.push_back(Invocation{func, {}});
}

void
Recorder::end()
{
    fusion_assert(_phase != Phase::Idle, "recorder already idle");
    flushCompute();
    _phase = Phase::Idle;
}

std::vector<TraceOp> &
Recorder::activeStream()
{
    switch (_phase) {
      case Phase::HostInit:
        return _prog.hostInit;
      case Phase::HostFinal:
        return _prog.hostFinal;
      case Phase::Invocation:
        return _prog.invocations.back().ops;
      case Phase::Idle:
        break;
    }
    fusion_panic("trace op recorded outside any phase");
}

void
Recorder::flushCompute()
{
    if (_pendingInt == 0 && _pendingFp == 0)
        return;
    activeStream().push_back(TraceOp::compute(_pendingInt,
                                              _pendingFp));
    _pendingInt = 0;
    _pendingFp = 0;
}

void
Recorder::load(Addr va, std::uint32_t size)
{
    flushCompute();
    activeStream().push_back(TraceOp::load(va, size));
}

void
Recorder::store(Addr va, std::uint32_t size)
{
    flushCompute();
    activeStream().push_back(TraceOp::store(va, size));
}

Program
Recorder::take()
{
    fusion_assert(_phase == Phase::Idle,
                  "take() with an open phase");
    return std::move(_prog);
}

} // namespace fusion::trace
