/**
 * @file
 * Trace capture: instrumented arrays over which the benchmark
 * kernels execute *for real*.
 *
 * Each workload allocates its buffers from a VaAllocator (virtual
 * address space of the offloaded process), wraps them in Traced<T>
 * views, and runs its actual algorithm. Every element read/write is
 * recorded into the active invocation's operation stream together
 * with explicit operation-count annotations (intOps / fpOps) — the
 * same information the paper's toolchain extracts from the dynamic
 * data-dependence graph (Section 4).
 */

#ifndef FUSION_TRACE_RECORDER_HH
#define FUSION_TRACE_RECORDER_HH

#include <cstring>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "trace/trace.hh"

namespace fusion::trace
{

/** Bump allocator for the offloaded process's virtual buffers. */
class VaAllocator
{
  public:
    explicit VaAllocator(Addr base = 0x10000000ull) : _next(base) {}

    /** Allocate @p bytes, page aligned. */
    Addr
    allocate(std::uint64_t bytes)
    {
        Addr a = _next;
        std::uint64_t aligned = (bytes + 4095) & ~4095ull;
        _next += aligned;
        return a;
    }

    Addr used() const { return _next; }

  private:
    Addr _next;
};

/** Destination streams the recorder can write to. */
enum class Phase
{
    Idle,
    HostInit,
    Invocation,
    HostFinal
};

/**
 * Builds a Program from an instrumented execution.
 */
class Recorder
{
  public:
    explicit Recorder(std::string program_name, Pid pid = 1);

    /** Register an accelerated function; returns its FuncId. */
    FuncId addFunction(const FunctionMeta &meta);

    /** Route subsequent ops to the host-init stream. */
    void beginHostInit();
    /** Route subsequent ops to the host-final stream. */
    void beginHostFinal();
    /** Open an invocation of @p func. */
    void beginInvocation(FuncId func);
    /** Close the current phase/invocation. */
    void end();

    /** Record one load/store/op-burst in the active stream. */
    void load(Addr va, std::uint32_t size);
    void store(Addr va, std::uint32_t size);
    void intOps(std::uint32_t n) { _pendingInt += n; }
    void fpOps(std::uint32_t n) { _pendingFp += n; }

    /** Finish and take the program (recorder becomes empty). */
    Program take();

    const Program &program() const { return _prog; }

  private:
    std::vector<TraceOp> &activeStream();
    void flushCompute();

    Program _prog;
    Phase _phase = Phase::Idle;
    std::uint32_t _pendingInt = 0;
    std::uint32_t _pendingFp = 0;
};

/**
 * An instrumented array of T. Element access through operator[]
 * returns a proxy that records the load/store against the recorder.
 */
template <typename T>
class Traced
{
  public:
    Traced(Recorder &rec, VaAllocator &va, std::size_t n)
        : _rec(rec), _base(va.allocate(n * sizeof(T))), _data(n)
    {
    }

    /** Proxy for one element. */
    class Ref
    {
      public:
        Ref(Traced &arr, std::size_t i) : _arr(arr), _i(i) {}

        /** Read: records a load. */
        operator T() const // NOLINT(google-explicit-constructor)
        {
            return _arr.read(_i);
        }

        Ref &
        operator=(T v)
        {
            _arr.write(_i, v);
            return *this;
        }

        Ref &
        operator=(const Ref &o)
        {
            _arr.write(_i, static_cast<T>(o));
            return *this;
        }

        Ref &
        operator+=(T v)
        {
            _arr.write(_i, _arr.read(_i) + v);
            return *this;
        }

      private:
        Traced &_arr;
        std::size_t _i;
    };

    Ref operator[](std::size_t i) { return Ref(*this, i); }

    /** Instrumented element read. */
    T
    read(std::size_t i) const
    {
        fusion_assert(i < _data.size(), "Traced read OOB: ", i);
        _rec.load(addrOf(i), sizeof(T));
        return _data[i];
    }

    /** Instrumented element write. */
    void
    write(std::size_t i, T v)
    {
        fusion_assert(i < _data.size(), "Traced write OOB: ", i);
        _rec.store(addrOf(i), sizeof(T));
        _data[i] = v;
    }

    /** Un-instrumented access (result verification / golden init). */
    T peek(std::size_t i) const { return _data[i]; }
    void poke(std::size_t i, T v) { _data[i] = v; }

    std::size_t size() const { return _data.size(); }
    Addr baseVa() const { return _base; }
    std::uint64_t bytes() const { return _data.size() * sizeof(T); }
    Addr addrOf(std::size_t i) const { return _base + i * sizeof(T); }

  private:
    Recorder &_rec;
    Addr _base;
    std::vector<T> _data;
};

/**
 * Record a host phase that touches every line of an array: the host
 * writing inputs (init) or reading outputs (final).
 */
template <typename T>
void
hostTouchArray(Recorder &rec, const Traced<T> &arr, bool is_write)
{
    for (Addr a = lineAlign(arr.baseVa());
         a < arr.baseVa() + arr.bytes(); a += kLineBytes) {
        if (is_write)
            rec.store(a, kLineBytes);
        else
            rec.load(a, kLineBytes);
    }
}

} // namespace fusion::trace

#endif // FUSION_TRACE_RECORDER_HH
