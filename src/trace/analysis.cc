#include "trace/analysis.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fusion::trace
{

std::vector<FunctionProfile>
profileFunctions(const Program &prog)
{
    std::size_t nfunc = prog.functions.size();
    std::vector<FunctionProfile> out(nfunc);
    std::vector<std::unordered_set<Addr>> func_lines(nfunc);
    std::vector<std::uint64_t> loads(nfunc, 0), stores(nfunc, 0);

    for (const auto &inv : prog.invocations) {
        auto f = static_cast<std::size_t>(inv.func);
        for (const auto &op : inv.ops) {
            switch (op.kind) {
              case OpKind::Load:
                ++loads[f];
                func_lines[f].insert(lineAlign(op.addr));
                break;
              case OpKind::Store:
                ++stores[f];
                func_lines[f].insert(lineAlign(op.addr));
                break;
              case OpKind::Compute:
                out[f].intOps += op.intOps;
                out[f].fpOps += op.fpOps;
                break;
            }
        }
    }

    // Lines touched per accelerator (for %SHR the unit of sharing is
    // the accelerator, Section 2: "accessed by at least another
    // accelerator").
    std::unordered_map<AccelId, std::unordered_set<Addr>> accel_lines;
    for (std::size_t f = 0; f < nfunc; ++f) {
        AccelId a = prog.functions[f].accel;
        accel_lines[a].insert(func_lines[f].begin(),
                              func_lines[f].end());
    }

    for (std::size_t f = 0; f < nfunc; ++f) {
        FunctionProfile &p = out[f];
        p.name = prog.functions[f].name;
        p.mlp = prog.functions[f].mlp;
        p.leaseTime = prog.functions[f].leaseTime;
        p.memOps = loads[f] + stores[f];
        p.footprintLines = func_lines[f].size();

        double total = static_cast<double>(p.memOps + p.intOps +
                                           p.fpOps);
        if (total > 0) {
            p.pctInt = 100.0 * static_cast<double>(p.intOps) / total;
            p.pctFp = 100.0 * static_cast<double>(p.fpOps) / total;
            p.pctLd = 100.0 * static_cast<double>(loads[f]) / total;
            p.pctSt = 100.0 * static_cast<double>(stores[f]) / total;
        }

        AccelId mine = prog.functions[f].accel;
        std::uint64_t shared = 0;
        for (Addr line : func_lines[f]) {
            for (const auto &[a, lines] : accel_lines) {
                if (a == mine)
                    continue;
                if (lines.count(line)) {
                    ++shared;
                    break;
                }
            }
        }
        if (!func_lines[f].empty()) {
            p.sharePct = 100.0 * static_cast<double>(shared) /
                         static_cast<double>(func_lines[f].size());
        }
    }
    return out;
}

std::uint64_t
footprintLines(const std::vector<TraceOp> &ops)
{
    std::unordered_set<Addr> lines;
    for (const auto &op : ops) {
        if (op.kind != OpKind::Compute)
            lines.insert(lineAlign(op.addr));
    }
    return lines.size();
}

std::uint64_t
footprintLines(const Program &prog)
{
    std::unordered_set<Addr> lines;
    for (const auto &inv : prog.invocations) {
        for (const auto &op : inv.ops) {
            if (op.kind != OpKind::Compute)
                lines.insert(lineAlign(op.addr));
        }
    }
    return lines.size();
}

std::vector<DmaWindow>
segmentWindows(const Invocation &inv, std::uint64_t scratch_lines)
{
    fusion_assert(scratch_lines > 0, "zero-size scratchpad");
    std::vector<DmaWindow> windows;
    DmaWindow cur;
    std::unordered_set<Addr> in_window;
    std::unordered_set<Addr> read_set;
    std::unordered_set<Addr> dirty_set;

    auto close = [&](std::size_t end_op) {
        if (in_window.empty() && cur.beginOp == end_op)
            return;
        cur.endOp = end_op;
        cur.readLines.assign(read_set.begin(), read_set.end());
        cur.dirtyLines.assign(dirty_set.begin(), dirty_set.end());
        std::sort(cur.readLines.begin(), cur.readLines.end());
        std::sort(cur.dirtyLines.begin(), cur.dirtyLines.end());
        windows.push_back(std::move(cur));
        cur = DmaWindow{};
        cur.beginOp = end_op;
        in_window.clear();
        read_set.clear();
        dirty_set.clear();
    };

    for (std::size_t i = 0; i < inv.ops.size(); ++i) {
        const TraceOp &op = inv.ops[i];
        if (op.kind == OpKind::Compute)
            continue;
        Addr line = lineAlign(op.addr);
        if (!in_window.count(line) &&
            in_window.size() >= scratch_lines) {
            close(i);
        }
        in_window.insert(line);
        if (op.kind == OpKind::Load)
            read_set.insert(line);
        else
            dirty_set.insert(line);
    }
    close(inv.ops.size());
    return windows;
}

ForwardPlan
planForwarding(const Program &prog)
{
    // Build, per line, the ordered list of (invocation, first access
    // kind in that invocation).
    struct Touch
    {
        std::uint32_t inv;
        bool firstIsLoad;
        bool everStored;
        std::uint64_t firstStoreIdx = 0;
        std::uint64_t lastStoreIdx = 0;
    };
    std::unordered_map<Addr, std::vector<Touch>> timeline;

    for (std::uint32_t i = 0; i < prog.invocations.size(); ++i) {
        const Invocation &inv = prog.invocations[i];
        std::unordered_set<Addr> seen;
        std::uint64_t mem_idx = 0;
        for (const auto &op : inv.ops) {
            if (op.kind == OpKind::Compute)
                continue;
            ++mem_idx;
            Addr line = lineAlign(op.addr);
            auto &v = timeline[line];
            if (!seen.count(line)) {
                seen.insert(line);
                v.push_back(Touch{i, op.kind == OpKind::Load, false,
                                  0, 0});
            }
            if (op.kind == OpKind::Store) {
                if (!v.back().everStored)
                    v.back().firstStoreIdx = mem_idx;
                v.back().everStored = true;
                v.back().lastStoreIdx = mem_idx;
            }
        }
    }

    // A store burst spanning at most this many memory ops is
    // "compact": every store lands well inside one write epoch, so
    // a downgrade-time forward can never precede a producer
    // re-write.
    constexpr std::uint64_t kCompactSpan = 150;

    ForwardPlan plan;
    for (const auto &[line, touches] : timeline) {
        for (std::size_t t = 0; t + 1 < touches.size(); ++t) {
            const Touch &prod = touches[t];
            const Touch &cons = touches[t + 1];
            if (!prod.everStored || !cons.firstIsLoad)
                continue;
            AccelId pa =
                prog.functions[static_cast<std::size_t>(
                                   prog.invocations[prod.inv].func)]
                    .accel;
            AccelId ca =
                prog.functions[static_cast<std::size_t>(
                                   prog.invocations[cons.inv].func)]
                    .accel;
            if (pa == ca)
                continue;
            bool early = prod.lastStoreIdx - prod.firstStoreIdx <=
                         kCompactSpan;
            plan[prod.inv][line] = ForwardHint{ca, early};
        }
    }
    return plan;
}

std::vector<std::vector<std::uint32_t>>
invocationDependences(const Program &prog)
{
    std::size_t n = prog.invocations.size();
    std::vector<std::vector<std::uint32_t>> deps(n);
    std::vector<std::unordered_set<std::uint32_t>> dep_sets(n);

    struct LineState
    {
        std::int64_t lastWriter = -1;
        std::vector<std::uint32_t> readersSinceWrite;
    };
    std::unordered_map<Addr, LineState> lines;

    auto add_dep = [&](std::uint32_t from, std::uint32_t to) {
        if (from == to)
            return;
        if (dep_sets[to].insert(from).second)
            deps[to].push_back(from);
    };

    for (std::uint32_t j = 0; j < n; ++j) {
        const Invocation &inv = prog.invocations[j];
        // Unique (line, mode) touches of this invocation.
        std::unordered_map<Addr, bool> touched; // line -> wrote?
        for (const auto &op : inv.ops) {
            if (op.kind == OpKind::Compute)
                continue;
            bool &wrote = touched[lineAlign(op.addr)];
            wrote = wrote || op.kind == OpKind::Store;
        }
        for (const auto &[line, wrote] : touched) {
            LineState &st = lines[line];
            // RAW/WAW: depend on the last writer.
            if (st.lastWriter >= 0) {
                add_dep(static_cast<std::uint32_t>(st.lastWriter),
                        j);
            }
            if (wrote) {
                // WAR: depend on every reader since that write.
                for (std::uint32_t r : st.readersSinceWrite)
                    add_dep(r, j);
                st.lastWriter = j;
                st.readersSinceWrite.clear();
            } else {
                st.readersSinceWrite.push_back(j);
            }
        }
    }
    for (auto &d : deps)
        std::sort(d.begin(), d.end());
    return deps;
}

WorkingSet
workingSet(const Program &prog)
{
    return WorkingSet{footprintLines(prog)};
}

} // namespace fusion::trace
