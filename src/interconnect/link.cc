#include "interconnect/link.hh"

#include "sim/shard/router.hh"

namespace fusion::interconnect
{

Link::Link(SimContext &ctx, const LinkParams &p)
    : _ctx(ctx), _p(p), _pjPerByte(energy::linkPjPerByte(p.cls))
{
    if (!_p.ctrlComponent.empty())
        _ecCtrl = ctx.energy.component(_p.ctrlComponent);
    if (!_p.dataComponent.empty())
        _ecData = ctx.energy.component(_p.dataComponent);
    _stats = &ctx.stats.root().child("links").child(p.name);
    _stCtrlMsgs = &_stats->scalar("ctrl_msgs");
    _stDataMsgs = &_stats->scalar("data_msgs");
    _stFlits = &_stats->scalar("flits");
    _stBytes = &_stats->scalar("bytes");

    _live = ctx.obs.live();
    _tracer = ctx.obs.tracer();
    if (_tracer)
        _track = _tracer->registerTrack("link." + p.name);
    ctx.obs.registerGauge("link." + p.name + ".in_flight",
                          [this] { return static_cast<double>(_inFlight); });
    ctx.obs.registerCounter("link." + p.name + ".flits",
                            [this] { return static_cast<double>(_flits); });

    _tracked = ctx.guard.config().anyEnabled();

    // Flit conservation: total flits booked must be explainable by
    // the message counts (Word and Data payloads are folded into
    // _dataMsgs, so the data side is a band, not an equality).
    ctx.guard.registerInvariant(
        "link." + p.name,
        [this](const guard::InvariantContext &,
               std::vector<std::string> &out) {
            std::uint64_t ctrl =
                _ctrlMsgs * messageFlits(MsgClass::Control);
            std::uint64_t lo =
                ctrl + _dataMsgs * messageFlits(MsgClass::Word);
            std::uint64_t hi =
                ctrl + _dataMsgs * messageFlits(MsgClass::Data);
            if (_flits < lo || _flits > hi) {
                out.push_back(
                    "flit count " + std::to_string(_flits) +
                    " outside conservation band [" +
                    std::to_string(lo) + ", " + std::to_string(hi) +
                    "]");
            }
        });

    // Delivery conservation: every delivery routed through the link
    // must have fired by the time the event queue drains. Catches a
    // dropped message even when the run still completes (redundant
    // traffic), which would otherwise be a silent divergence.
    ctx.guard.registerInvariant(
        "link." + p.name + ".delivery",
        [this](const guard::InvariantContext &ictx,
               std::vector<std::string> &out) {
            if (!ictx.atEnd)
                return;
            if (_delivered != _sentDeliveries) {
                out.push_back(
                    "deliveries lost: sent " +
                    std::to_string(_sentDeliveries) +
                    ", delivered " + std::to_string(_delivered));
            }
        });
}

void
Link::bindShardEdge(shard::Router *router, std::uint32_t a,
                    std::uint32_t b)
{
    fusion_assert(_p.latency >= 1,
                  "cross-domain link '", _p.name,
                  "' needs latency >= 1 for conservative lookahead");
    _shardRouter = router;
    _shardDomA = a;
    _shardDomB = b;
}

void
Link::deliverSharded(Cycles latency, EventFn &&deliver)
{
    std::uint32_t cur = _shardRouter->current();
    fusion_assert(cur == _shardDomA || cur == _shardDomB,
                  "link '", _p.name,
                  "' used from domain ", cur,
                  " but its endpoints live in ", _shardDomA, "/",
                  _shardDomB);
    std::uint32_t dst = cur == _shardDomA ? _shardDomB : _shardDomA;
    _shardRouter->scheduleCross(dst, _ctx.now() + latency, latency,
                                std::move(deliver));
}

void
Link::send(MsgClass cls, sim::SmallFn<void()> deliver)
{
    book(cls);
    if (!deliver)
        return;
    if (!_live && !_tracked) {
        if (_shardRouter == nullptr) [[likely]] {
            _ctx.eq.scheduleIn(_p.latency, std::move(deliver));
        } else {
            deliverSharded(
                _p.latency,
                EventFn([d = std::move(deliver)]() mutable {
                    d();
                }));
        }
        return;
    }
    sendTracked(_p.latency, std::move(deliver));
}

void
Link::sendTracked(Cycles latency, sim::SmallFn<void()> deliver)
{
    ++_sentDeliveries;
    if (_ctx.guard.fireFault(guard::FaultKind::DropFlit))
        return; // booked, counted as sent, never delivered
    if (_ctx.guard.fireFault(guard::FaultKind::ReorderFlit))
        latency += _ctx.guard.faultDelay();
    if (_live)
        ++_inFlight;
    auto wrapped = [this, deliver = std::move(deliver)]() mutable {
        if (_live)
            --_inFlight;
        ++_delivered;
        deliver();
    };
    if (_shardRouter != nullptr) [[unlikely]] {
        deliverSharded(latency, EventFn(std::move(wrapped)));
        return;
    }
    _ctx.eq.scheduleIn(latency, std::move(wrapped));
}

void
Link::book(MsgClass cls, std::uint64_t count)
{
    std::uint64_t bytes = messageBytes(cls) * count;
    std::uint64_t flits = messageFlits(cls) * count;
    if (_tracked &&
        _ctx.guard.fireFault(guard::FaultKind::DupFlit)) {
        // Wire-level retransmission of one message: extra flits and
        // bytes with no matching message count, which pushes _flits
        // past the conservation band the invariant above checks.
        bytes += messageBytes(cls);
        flits += messageFlits(cls);
    }
    _bytes += bytes;
    _flits += flits;
    double pj = _pjPerByte * static_cast<double>(bytes);
    if (cls == MsgClass::Control) {
        _ctrlMsgs += count;
        *_stCtrlMsgs += static_cast<double>(count);
        if (_ecCtrl != energy::kInvalidComponent)
            _ctx.energy.add(_ecCtrl, pj);
    } else {
        // Word and full-line payloads both count as data traffic.
        _dataMsgs += count;
        *_stDataMsgs += static_cast<double>(count);
        if (_ecData != energy::kInvalidComponent)
            _ctx.energy.add(_ecData, pj);
    }
    *_stFlits += static_cast<double>(flits);
    *_stBytes += static_cast<double>(bytes);
    if (_tracer) {
        // Senders that book() and schedule delivery themselves use
        // this same latency, so the span covers the real traversal.
        Tick now = _ctx.now();
        _tracer->complete(_track, obs::SpanKind::LinkMsg,
                          static_cast<Addr>(cls), now, now + _p.latency);
    }
}

} // namespace fusion::interconnect
