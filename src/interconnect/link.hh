/**
 * @file
 * A point-to-point on-chip link with latency, per-byte energy, and
 * flit/message accounting.
 *
 * Each link books its energy against *two* ledger components (one
 * for control traffic, one for data traffic) so that the Figure 6c
 * message-vs-data breakdowns fall directly out of the ledger.
 */

#ifndef FUSION_INTERCONNECT_LINK_HH
#define FUSION_INTERCONNECT_LINK_HH

#include <string>

#include "energy/link_energy.hh"
#include "interconnect/message.hh"
#include "obs/span_tracer.hh"
#include "sim/sim_context.hh"
#include "sim/small_fn.hh"

namespace fusion
{
namespace shard
{
class Router;
}
} // namespace fusion

namespace fusion::interconnect
{

/** Construction parameters for one link. */
struct LinkParams
{
    std::string name = "link";       ///< stats group name
    energy::LinkClass cls = energy::LinkClass::AxcToL1x;
    Cycles latency = 1;              ///< traversal latency
    std::string ctrlComponent;       ///< ledger name for control
    std::string dataComponent;       ///< ledger name for data
};

/** Point-to-point link model. */
class Link
{
  public:
    Link(SimContext &ctx, const LinkParams &p);

    /**
     * Send one message; @p deliver fires after the link latency.
     * @p deliver may be empty when the caller only needs the
     * accounting (e.g. fire-and-forget acks).
     */
    void send(MsgClass cls, sim::SmallFn<void()> deliver = {});

    /**
     * Route one message's delivery through the link: books the
     * traffic and schedules @p deliver after @p latency cycles
     * (which may exceed the raw link latency when the caller folds
     * downstream path segments into one hop). In an unguarded,
     * untraced run this is exactly book() + scheduleIn with the
     * caller's closure constructed in place; with the guard layer
     * armed the delivery is counted against the conservation
     * invariant and subject to the link fault hooks
     * (DropFlit / ReorderFlit).
     */
    template <typename F>
    void
    send(MsgClass cls, Cycles latency, F &&deliver)
    {
        book(cls);
        if (!_live && !_tracked) [[likely]] {
            if (_shardRouter == nullptr) [[likely]] {
                _ctx.eq.scheduleIn(latency,
                                   std::forward<F>(deliver));
            } else {
                deliverSharded(latency,
                               EventFn(std::forward<F>(deliver)));
            }
            return;
        }
        sendTracked(latency,
                    sim::SmallFn<void()>(std::forward<F>(deliver)));
    }

    /** Book traffic without scheduling (bulk accounting paths). */
    void book(MsgClass cls, std::uint64_t count = 1);

    /**
     * Declare this link a cross-domain edge of the sharded kernel:
     * one endpoint lives in domain @p a, the other in @p b. Every
     * delivery is then routed to the *other* endpoint's domain —
     * whichever side is currently executing is the sender. The ring
     * tile<->LLC links are the only cross-domain edges of the
     * partition, so this is the entire cross-domain send surface
     * (DESIGN.md §8).
     */
    void bindShardEdge(shard::Router *router, std::uint32_t a,
                       std::uint32_t b);

    Cycles latency() const { return _p.latency; }

    std::uint64_t controlMessages() const { return _ctrlMsgs; }
    std::uint64_t dataMessages() const { return _dataMsgs; }
    std::uint64_t totalFlits() const { return _flits; }
    std::uint64_t totalBytes() const { return _bytes; }

  private:
    /** Guarded/traced delivery path behind the template fast path. */
    void sendTracked(Cycles latency, sim::SmallFn<void()> deliver);

    /** Cross-domain delivery: hand the closure to the shard router,
     *  destined for the endpoint domain we are not executing in. */
    void deliverSharded(Cycles latency, EventFn &&deliver);

    SimContext &_ctx;
    LinkParams _p;
    double _pjPerByte;
    // Ledger ids resolved once; kInvalidComponent when the param's
    // component name is empty (unbooked link).
    energy::ComponentId _ecCtrl = energy::kInvalidComponent;
    energy::ComponentId _ecData = energy::kInvalidComponent;
    std::uint64_t _ctrlMsgs = 0;
    std::uint64_t _dataMsgs = 0;
    std::uint64_t _flits = 0;
    std::uint64_t _bytes = 0;
    stats::Group *_stats;
    // Stat handles resolved once at construction (map nodes are
    // stable), so book() never does a string-keyed lookup.
    stats::Scalar *_stCtrlMsgs;
    stats::Scalar *_stDataMsgs;
    stats::Scalar *_stFlits;
    stats::Scalar *_stBytes;
    /// Telemetry (null when tracing is off). Each book() records a
    /// link_msg span of exactly the link latency — booking and
    /// delivery scheduling use the same latency on every send path.
    obs::SpanTracer *_tracer = nullptr;
    std::uint32_t _track = 0;
    /// Messages booked but not yet delivered; only maintained when
    /// telemetry is live (the in_flight gauge).
    std::int64_t _inFlight = 0;
    bool _live = false;
    /// True when the guard layer is armed: deliveries are counted so
    /// the end-of-sim conservation invariant can see a dropped one,
    /// and the link fault hooks are reachable.
    bool _tracked = false;
    std::uint64_t _sentDeliveries = 0;
    std::uint64_t _delivered = 0;
    /// Sharded runs: non-null when this link is a cross-domain edge.
    shard::Router *_shardRouter = nullptr;
    std::uint32_t _shardDomA = 0; ///< domain of endpoint A
    std::uint32_t _shardDomB = 0; ///< domain of endpoint B
};

} // namespace fusion::interconnect

#endif // FUSION_INTERCONNECT_LINK_HH
