/**
 * @file
 * The 8-node ring connecting the NUCA LLC tiles (Table 2: "4M shared
 * 16 way, 8 tile NUCA, ring, avg. 20 cycles").
 *
 * We model the ring's contribution to LLC access latency: a request
 * from node s to the bank at node d traverses min(|s-d|, N-|s-d|)
 * hops each way at a fixed per-hop latency. Combined with the bank
 * access latency this averages ~20 cycles from the host node.
 */

#ifndef FUSION_INTERCONNECT_RING_HH
#define FUSION_INTERCONNECT_RING_HH

#include <cstdint>

#include "sim/types.hh"

namespace fusion::interconnect
{

/** Static ring topology helper. */
class Ring
{
  public:
    /**
     * @param nodes number of ring stops (= NUCA banks)
     * @param hop_latency cycles per hop
     */
    Ring(std::uint32_t nodes, Cycles hop_latency)
        : _nodes(nodes), _hopLatency(hop_latency)
    {
    }

    std::uint32_t nodes() const { return _nodes; }

    /** Shortest hop count between two nodes. */
    std::uint32_t
    hops(std::uint32_t from, std::uint32_t to) const
    {
        std::uint32_t d = from > to ? from - to : to - from;
        return d < _nodes - d ? d : _nodes - d;
    }

    /** One-way traversal latency between two nodes. */
    Cycles
    latency(std::uint32_t from, std::uint32_t to) const
    {
        return static_cast<Cycles>(hops(from, to)) * _hopLatency;
    }

    /** NUCA bank (ring node) that homes a physical line address. */
    std::uint32_t
    homeNode(Addr pa) const
    {
        return static_cast<std::uint32_t>(lineNumber(pa) % _nodes);
    }

  private:
    std::uint32_t _nodes;
    Cycles _hopLatency;
};

} // namespace fusion::interconnect

#endif // FUSION_INTERCONNECT_RING_HH
