/**
 * @file
 * On-chip message classes and sizes.
 *
 * The evaluation accounts traffic in 8-byte flits (Table 4). A
 * control message (request, ack, eviction notice) is one flit; a
 * data message carries a 64 B cache line plus an 8 B header, nine
 * flits.
 */

#ifndef FUSION_INTERCONNECT_MESSAGE_HH
#define FUSION_INTERCONNECT_MESSAGE_HH

#include <cstdint>

#include "sim/types.hh"

namespace fusion::interconnect
{

/** Broad traffic classes for accounting. */
enum class MsgClass : std::uint8_t
{
    Control, ///< requests, acks, eviction notices (1 flit)
    Word,    ///< word-granularity payload (header + 8B word):
             ///< SHARED's per-access L1X responses (Figure 6c)
    Data     ///< cache-line payloads (header + 64B)
};

/** Size in bytes of a message of @p cls. */
constexpr std::uint32_t
messageBytes(MsgClass cls)
{
    switch (cls) {
      case MsgClass::Control:
        return kFlitBytes;
      case MsgClass::Word:
        return 2 * kFlitBytes;
      case MsgClass::Data:
        return kFlitBytes + kLineBytes;
    }
    return kFlitBytes;
}

/** Size in flits of a message of @p cls. */
constexpr std::uint32_t
messageFlits(MsgClass cls)
{
    return (messageBytes(cls) + kFlitBytes - 1) / kFlitBytes;
}

static_assert(messageFlits(MsgClass::Control) == 1);
static_assert(messageFlits(MsgClass::Word) == 2);
static_assert(messageFlits(MsgClass::Data) == 9);

} // namespace fusion::interconnect

#endif // FUSION_INTERCONNECT_MESSAGE_HH
