#include "mem/cache_array.hh"

namespace fusion::mem
{

const char *
mesiName(MesiState s)
{
    switch (s) {
      case MesiState::I:
        return "I";
      case MesiState::S:
        return "S";
      case MesiState::E:
        return "E";
      case MesiState::M:
        return "M";
    }
    return "?";
}

CacheArray::CacheArray(const CacheGeometry &geom)
    : _geom(geom), _numSets(geom.numSets())
{
    fusion_assert(_numSets > 0, "cache has zero sets: capacity=",
                  geom.capacityBytes, " assoc=", geom.assoc);
    fusion_assert(geom.capacityBytes % (static_cast<std::uint64_t>(
                      geom.assoc) * geom.lineBytes) == 0,
                  "capacity not divisible by way size");
    _lines.resize(static_cast<std::size_t>(_numSets) * geom.assoc);
}

CacheLine *
CacheArray::find(Addr line_addr, Pid pid)
{
    line_addr = lineAlign(line_addr);
    CacheLine *base = setBase(setIndex(line_addr));
    for (std::uint32_t w = 0; w < _geom.assoc; ++w) {
        CacheLine &l = base[w];
        if (l.valid && l.lineAddr == line_addr && l.pid == pid)
            return &l;
    }
    return nullptr;
}

const CacheLine *
CacheArray::find(Addr line_addr, Pid pid) const
{
    return const_cast<CacheArray *>(this)->find(line_addr, pid);
}

CacheLine *
CacheArray::victim(Addr line_addr,
                   const std::function<bool(const CacheLine &)>
                       &evictable)
{
    // Selection runs inline over the set — no candidate list, this
    // sits on every miss fill.
    CacheLine *base = setBase(setIndex(lineAlign(line_addr)));
    CacheLine *best = nullptr;
    std::size_t candidates = 0;
    for (std::uint32_t w = 0; w < _geom.assoc; ++w) {
        CacheLine &l = base[w];
        if (!l.valid)
            return &l;
        if (evictable && !evictable(l))
            continue;
        ++candidates;
        if (!best) {
            best = &l;
            continue;
        }
        switch (_geom.repl) {
          case ReplPolicy::Lru:
            if (l.lastUse < best->lastUse)
                best = &l;
            break;
          case ReplPolicy::Fifo:
            if (l.installSeq < best->installSeq)
                best = &l;
            break;
          case ReplPolicy::Random:
            break; // picked by index below
        }
    }
    if (!best)
        return nullptr;
    if (_geom.repl == ReplPolicy::Random) {
        // Deterministic pseudo-random pick (SplitMix-style hash of
        // the replacement clock and line address).
        std::uint64_t h = (_useClock + 1) * 0x9e3779b97f4a7c15ull ^
                          lineNumber(line_addr);
        h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
        std::size_t pick = h % candidates;
        for (std::uint32_t w = 0; w < _geom.assoc; ++w) {
            CacheLine &l = base[w];
            if (!l.valid || (evictable && !evictable(l)))
                continue;
            if (pick-- == 0)
                return &l;
        }
    }
    return best;
}

void
CacheArray::install(CacheLine &way, Addr line_addr, Pid pid)
{
    way.valid = true;
    way.lineAddr = lineAlign(line_addr);
    way.pline = 0;
    way.pid = pid;
    way.mesi = MesiState::I;
    way.dirty = false;
    way.ltime = 0;
    way.gtime = 0;
    way.wepochEnd = 0;
    way.locked = false;
    way.installSeq = ++_useClock;
    touch(way);
}

void
CacheArray::invalidate(CacheLine &line)
{
    line.valid = false;
    line.mesi = MesiState::I;
    line.dirty = false;
    line.locked = false;
    line.ltime = 0;
    line.gtime = 0;
    line.wepochEnd = 0;
}

void
CacheArray::invalidateAll()
{
    for (auto &l : _lines)
        invalidate(l);
}

void
CacheArray::forEachValid(const std::function<void(CacheLine &)> &fn)
{
    for (auto &l : _lines) {
        if (l.valid)
            fn(l);
    }
}

void
CacheArray::forEachValid(
    const std::function<void(const CacheLine &)> &fn) const
{
    for (const auto &l : _lines) {
        if (l.valid)
            fn(l);
    }
}

void
CacheArray::forEachValidInSet(std::uint32_t set,
                              const std::function<void(CacheLine &)>
                                  &fn)
{
    fusion_assert(set < _numSets, "set out of range");
    CacheLine *base = setBase(set);
    for (std::uint32_t w = 0; w < _geom.assoc; ++w) {
        if (base[w].valid)
            fn(base[w]);
    }
}

std::uint64_t
CacheArray::validCount() const
{
    std::uint64_t n = 0;
    for (const auto &l : _lines)
        n += l.valid ? 1 : 0;
    return n;
}

} // namespace fusion::mem
