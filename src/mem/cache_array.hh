/**
 * @file
 * Generic set-associative cache tag/state array.
 *
 * One CacheArray implementation backs every tagged structure in the
 * simulator: the host L1, the NUCA LLC banks, the accelerator-tile
 * shared L1X and the per-accelerator L0X caches. Lines carry the
 * superset of metadata the different controllers need (MESI state,
 * dirty bit, PID tag, and the ACC protocol's LTIME / GTIME / write
 * epoch timestamps); each controller uses only its slice.
 *
 * The array is purely a timing/state model: no data payloads are
 * stored (the workload kernels compute functionally at trace-capture
 * time).
 */

#ifndef FUSION_MEM_CACHE_ARRAY_HH
#define FUSION_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace fusion::mem
{

/** MESI stable states (the tile L1X only uses M/E/I, Section 3.2). */
enum class MesiState : std::uint8_t
{
    I,
    S,
    E,
    M
};

/** Human-readable MESI state name. */
const char *mesiName(MesiState s);

/** One cache line's metadata. */
struct CacheLine
{
    bool valid = false;
    Addr lineAddr = 0; ///< line-aligned address (VA or PA per cache)
    Addr pline = 0;    ///< physical line (tile caches: VA-indexed,
                       ///< PA kept for writebacks + AX-RMAP upkeep)
    Pid pid = 0;       ///< process tag (accelerator-tile caches)
    MesiState mesi = MesiState::I;
    bool dirty = false;

    /// ACC lease timestamps (Section 3.2). In an L0X, ltime is the
    /// read-lease end; in the L1X, gtime is the latest lease granted
    /// to any L0X for this line.
    Tick ltime = 0;
    Tick gtime = 0;
    /// End of the current write epoch (0 = none).
    Tick wepochEnd = 0;
    /// Write-epoch lock at the L1X: set while a write lease is
    /// outstanding; readers/writers queue behind it.
    bool locked = false;

    std::uint64_t lastUse = 0;    ///< LRU timestamp
    std::uint64_t installSeq = 0; ///< FIFO install order
};

/** Replacement policies (gem5-style selection). */
enum class ReplPolicy : std::uint8_t
{
    Lru,   ///< true least-recently-used
    Fifo,  ///< oldest install wins
    Random ///< deterministic pseudo-random way
};

/** Geometry of a cache array. */
struct CacheGeometry
{
    std::uint64_t capacityBytes = 4096;
    std::uint32_t assoc = 4;
    std::uint32_t lineBytes = kLineBytes;
    ReplPolicy repl = ReplPolicy::Lru;

    std::uint32_t
    numSets() const
    {
        return static_cast<std::uint32_t>(
            capacityBytes / (static_cast<std::uint64_t>(assoc) *
                             lineBytes));
    }
};

/**
 * Set-associative tag array with true-LRU replacement.
 *
 * Victim selection accepts a predicate so protocol controllers can
 * exclude lines that are not currently evictable (e.g. L1X lines
 * with an unexpired lease).
 */
class CacheArray
{
  public:
    explicit CacheArray(const CacheGeometry &geom);

    /** Geometry accessor. */
    const CacheGeometry &geometry() const { return _geom; }
    std::uint32_t numSets() const { return _numSets; }
    std::uint32_t assoc() const { return _geom.assoc; }

    /** Set index for a line address. */
    std::uint32_t
    setIndex(Addr line_addr) const
    {
        return static_cast<std::uint32_t>(lineNumber(line_addr) %
                                          _numSets);
    }

    /**
     * Find a valid line matching (line address, pid).
     * @return pointer into the array or nullptr on miss.
     */
    CacheLine *find(Addr line_addr, Pid pid = 0);
    const CacheLine *find(Addr line_addr, Pid pid = 0) const;

    /**
     * Touch a line for LRU purposes.
     */
    void
    touch(CacheLine &line)
    {
        line.lastUse = ++_useClock;
    }

    /**
     * Pick a victim way in the set of @p line_addr.
     *
     * Preference order: invalid way, then LRU among ways for which
     * @p evictable returns true.
     *
     * @return pointer to the victim way, or nullptr if every way is
     *         valid and non-evictable (caller must retry later).
     */
    CacheLine *victim(Addr line_addr,
                      const std::function<bool(const CacheLine &)>
                          &evictable = {});

    /**
     * Install a (line address, pid) into the given way, resetting
     * metadata to a just-filled state.
     */
    void install(CacheLine &way, Addr line_addr, Pid pid = 0);

    /** Invalidate one line. */
    void invalidate(CacheLine &line);

    /** Invalidate everything. */
    void invalidateAll();

    /** Iterate all valid lines. */
    void forEachValid(const std::function<void(CacheLine &)> &fn);
    void forEachValid(
        const std::function<void(const CacheLine &)> &fn) const;

    /** Iterate valid lines of one set. */
    void forEachValidInSet(std::uint32_t set,
                           const std::function<void(CacheLine &)> &fn);

    /** Number of currently valid lines. */
    std::uint64_t validCount() const;

  private:
    CacheGeometry _geom;
    std::uint32_t _numSets;
    std::vector<CacheLine> _lines; ///< numSets * assoc, set-major
    std::uint64_t _useClock = 0;

    CacheLine *setBase(std::uint32_t set)
    {
        return &_lines[static_cast<std::size_t>(set) * _geom.assoc];
    }
    const CacheLine *setBase(std::uint32_t set) const
    {
        return &_lines[static_cast<std::size_t>(set) * _geom.assoc];
    }
};

} // namespace fusion::mem

#endif // FUSION_MEM_CACHE_ARRAY_HH
