#include "mem/dram.hh"

#include "energy/energy_ledger.hh"
#include "sim/logging.hh"

namespace fusion::mem
{

Dram::Dram(SimContext &ctx, const DramParams &p)
    : _ctx(ctx), _p(p), _channels(p.channels)
{
    fusion_assert(p.channels > 0, "DRAM needs at least one channel");
    _ecDram = ctx.energy.component(energy::comp::kDram);
    _stats = &ctx.stats.root().child("dram");
    _stQueued = &_stats->scalar("queued");
    _stAccesses = &_stats->scalar("accesses");
    _stRowHits = &_stats->scalar("row_hits");

    ctx.obs.registerGauge("dram.busy_channels", [this] {
        std::size_t busy = 0;
        for (const Channel &c : _channels)
            if (c.busy)
                ++busy;
        return static_cast<double>(busy);
    });
    ctx.obs.registerGauge("dram.queued", [this] {
        std::size_t queued = 0;
        for (const Channel &c : _channels)
            queued += c.queue.size();
        return static_cast<double>(queued);
    });
    ctx.obs.registerCounter("dram.accesses", [this] {
        return static_cast<double>(_accesses);
    });

    ctx.guard.registerSnapshot("dram", [this] {
        guard::ComponentState s;
        std::uint64_t queued = 0, busy = 0;
        for (const Channel &c : _channels) {
            queued += c.queue.size();
            if (c.busy)
                ++busy;
        }
        s.outstanding = queued + busy;
        if (s.outstanding != 0) {
            s.detail = "queued=" + std::to_string(queued) +
                       " busy_channels=" + std::to_string(busy);
        }
        return s;
    });
}

void
Dram::access(Addr pa, bool is_write, DramCallback done)
{
    auto ch = static_cast<std::uint32_t>(lineNumber(pa) % _p.channels);
    Channel &c = _channels[ch];
    // Admission control: a full command queue delays acceptance; we
    // model that by simply queueing (the queue in a trace-driven
    // replay is naturally bounded by requester MLP).
    (void)is_write;
    c.queue.emplace_back(pa, std::move(done));
    *_stQueued += 1;
    if (!c.busy)
        serviceNext(ch);
}

void
Dram::serviceNext(std::uint32_t ch)
{
    Channel &c = _channels[ch];
    if (c.queue.empty()) {
        c.busy = false;
        return;
    }
    c.busy = true;
    auto [pa, done] = std::move(c.queue.front());
    c.queue.pop_front();

    Addr row = pa / _p.rowBytes;
    bool hit = (row == c.openRow);
    c.openRow = row;
    Cycles lat = hit ? _p.rowHitLatency : _p.rowMissLatency;

    ++_accesses;
    _rowHits += hit ? 1 : 0;
    *_stAccesses += 1;
    *_stRowHits += hit ? 1 : 0;
    _ctx.energy.add(_ecDram, _p.accessPj);

    // Data burst occupies the channel; completion fires after the
    // full access latency.
    _ctx.eq.scheduleIn(lat, std::move(done));
    _ctx.eq.scheduleIn(_p.burstCycles,
                       [this, ch] { serviceNext(ch); });
}

} // namespace fusion::mem
