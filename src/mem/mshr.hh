/**
 * @file
 * Miss Status Holding Registers: merge concurrent misses to the same
 * cache line so only one request travels down the hierarchy; later
 * requesters piggyback on the in-flight fill.
 */

#ifndef FUSION_MEM_MSHR_HH
#define FUSION_MEM_MSHR_HH

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace fusion::mem
{

/**
 * MSHR file keyed by line address. Template-free: targets are plain
 * callbacks invoked when the fill completes.
 */
class MshrFile
{
  public:
    using Target = std::function<void()>;

    /**
     * Record a miss to @p line_addr.
     * @return true if this is the *primary* miss (the caller must
     *         issue the downstream request); false if merged onto an
     *         existing entry.
     */
    bool
    allocate(Addr line_addr, Target target)
    {
        auto [it, inserted] = _entries.try_emplace(line_addr);
        it->second.push_back(std::move(target));
        return inserted;
    }

    /**
     * Complete the fill for @p line_addr: pops the entry and invokes
     * every queued target in arrival order.
     */
    void
    complete(Addr line_addr)
    {
        auto it = _entries.find(line_addr);
        fusion_assert(it != _entries.end(),
                      "MSHR complete for unknown line ", line_addr);
        // Move out first: targets may allocate new MSHRs for the
        // same line (e.g. a write upgrade after a read fill).
        std::vector<Target> targets = std::move(it->second);
        _entries.erase(it);
        for (auto &t : targets)
            t();
    }

    /** Is a miss to this line already in flight? */
    bool
    pending(Addr line_addr) const
    {
        return _entries.count(line_addr) != 0;
    }

    /** Number of in-flight distinct lines. */
    std::size_t size() const { return _entries.size(); }

    /** In-flight line addresses, sorted (diagnostic snapshots). */
    std::vector<Addr>
    pendingLines() const
    {
        std::vector<Addr> lines;
        lines.reserve(_entries.size());
        for (const auto &[addr, targets] : _entries)
            lines.push_back(addr);
        std::sort(lines.begin(), lines.end());
        return lines;
    }

  private:
    std::unordered_map<Addr, std::vector<Target>> _entries;
};

} // namespace fusion::mem

#endif // FUSION_MEM_MSHR_HH
