/**
 * @file
 * Miss Status Holding Registers: merge concurrent misses to the same
 * cache line so only one request travels down the hierarchy; later
 * requesters piggyback on the in-flight fill.
 *
 * The file is backed by pooled, freelist-recycled storage: entries
 * live in an intrusive open-hash table (power-of-two bucket array of
 * indices into an entry pool) and targets in a second pooled singly
 * linked list, so the steady-state miss stream performs zero heap
 * allocations — the old unordered_map<Addr, vector<Target>> paid a
 * node allocation per miss and a vector allocation per target list.
 * Entries are keyed by (line address, PID) with a mixed 64-bit hash;
 * virtually-indexed users (the L1X) pass the PID, physical users
 * leave it at 0.
 */

#ifndef FUSION_MEM_MSHR_HH
#define FUSION_MEM_MSHR_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/small_fn.hh"
#include "sim/types.hh"

namespace fusion::mem
{

/**
 * Mix a (line, pid) composite key into a full 64-bit hash
 * (splitmix64-style finalizer). Plain XOR-with-shifted-PID keying
 * aliases high address bits with the PID; the multiply-shift mix
 * separates every bit of both fields.
 */
inline std::uint64_t
mixLinePid(Addr line, Pid pid)
{
    std::uint64_t x =
        line ^ (0x9e3779b97f4a7c15ull *
                (static_cast<std::uint64_t>(
                     static_cast<std::uint32_t>(pid)) +
                 1));
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

/**
 * MSHR file keyed by (line address, PID). Template-free: targets are
 * plain callbacks invoked when the fill completes.
 */
class MshrFile
{
  public:
    using Target = sim::SmallFn<void()>;

    /**
     * Record a miss to (@p line_addr, @p pid).
     * @return true if this is the *primary* miss (the caller must
     *         issue the downstream request); false if merged onto an
     *         existing entry.
     */
    bool
    allocate(Addr line_addr, Pid pid, Target target)
    {
        if (_buckets.empty())
            _buckets.assign(kInitialBuckets, kNil);
        else if (_numEntries >= _buckets.size())
            grow();
        std::size_t b = bucketOf(line_addr, pid);
        std::uint32_t ei = findInBucket(b, line_addr, pid);
        bool primary = ei == kNil;
        if (primary) {
            ei = newEntry(line_addr, pid);
            _entries[ei].nextEntry = _buckets[b];
            _buckets[b] = ei;
            ++_numEntries;
        }
        appendTarget(_entries[ei], std::move(target));
        return primary;
    }

    /** PID-free overload for physically-addressed users. */
    bool
    allocate(Addr line_addr, Target target)
    {
        return allocate(line_addr, 0, std::move(target));
    }

    /**
     * Complete the fill for (@p line_addr, @p pid): pops the entry
     * and invokes every queued target in arrival order. The entry is
     * unlinked (and its storage recycled) *before* any target runs,
     * so a target may re-allocate an MSHR for the same line and
     * becomes a fresh primary miss.
     */
    void
    complete(Addr line_addr, Pid pid = 0)
    {
        std::uint32_t ei = kNil;
        if (!_buckets.empty()) {
            std::size_t b = bucketOf(line_addr, pid);
            std::uint32_t *link = &_buckets[b];
            while (*link != kNil) {
                Entry &e = _entries[*link];
                if (e.line == line_addr && e.pid == pid) {
                    ei = *link;
                    *link = e.nextEntry;
                    break;
                }
                link = &e.nextEntry;
            }
        }
        fusion_assert(ei != kNil,
                      "MSHR complete for unknown line ", line_addr);
        std::uint32_t ti = _entries[ei].headTarget;
        freeEntry(ei);
        --_numEntries;
        while (ti != kNil) {
            // Move the callback out and recycle the node before
            // invoking: the target may allocate MSHRs (possibly for
            // this very line) and must see consistent pool state.
            Target fn = std::move(_targets[ti].fn);
            std::uint32_t next = _targets[ti].next;
            freeTarget(ti);
            --_numTargets;
            ti = next;
            fn();
        }
    }

    /** Is a miss to this (line, pid) already in flight? */
    bool
    pending(Addr line_addr, Pid pid = 0) const
    {
        if (_buckets.empty())
            return false;
        return findInBucket(bucketOf(line_addr, pid), line_addr,
                            pid) != kNil;
    }

    /** Number of in-flight distinct (line, pid) entries. */
    std::size_t size() const { return _numEntries; }

    /** Total queued targets across all entries (diagnostics). */
    std::size_t targets() const { return _numTargets; }

    /** In-flight line addresses, sorted (diagnostic snapshots). */
    std::vector<Addr>
    pendingLines() const
    {
        std::vector<Addr> lines;
        lines.reserve(_numEntries);
        for (std::uint32_t h : _buckets)
            for (std::uint32_t ei = h; ei != kNil;
                 ei = _entries[ei].nextEntry)
                lines.push_back(_entries[ei].line);
        std::sort(lines.begin(), lines.end());
        return lines;
    }

  private:
    static constexpr std::uint32_t kNil = 0xffffffffu;
    static constexpr std::size_t kInitialBuckets = 16;

    struct TargetNode
    {
        Target fn;
        std::uint32_t next = kNil;
    };

    struct Entry
    {
        Addr line = 0;
        Pid pid = 0;
        std::uint32_t headTarget = kNil;
        std::uint32_t tailTarget = kNil;
        /** Bucket chain when live; freelist link when recycled. */
        std::uint32_t nextEntry = kNil;
    };

    std::size_t
    bucketOf(Addr line, Pid pid) const
    {
        return static_cast<std::size_t>(mixLinePid(line, pid)) &
               (_buckets.size() - 1);
    }

    std::uint32_t
    findInBucket(std::size_t b, Addr line, Pid pid) const
    {
        for (std::uint32_t ei = _buckets[b]; ei != kNil;
             ei = _entries[ei].nextEntry) {
            const Entry &e = _entries[ei];
            if (e.line == line && e.pid == pid)
                return ei;
        }
        return kNil;
    }

    std::uint32_t
    newEntry(Addr line, Pid pid)
    {
        std::uint32_t ei;
        if (_entryFree != kNil) {
            ei = _entryFree;
            _entryFree = _entries[ei].nextEntry;
        } else {
            ei = static_cast<std::uint32_t>(_entries.size());
            _entries.emplace_back();
        }
        Entry &e = _entries[ei];
        e.line = line;
        e.pid = pid;
        e.headTarget = kNil;
        e.tailTarget = kNil;
        e.nextEntry = kNil;
        return ei;
    }

    void
    freeEntry(std::uint32_t ei)
    {
        _entries[ei].nextEntry = _entryFree;
        _entryFree = ei;
    }

    void
    appendTarget(Entry &e, Target &&t)
    {
        std::uint32_t ti;
        if (_targetFree != kNil) {
            ti = _targetFree;
            _targetFree = _targets[ti].next;
            _targets[ti].fn = std::move(t);
            _targets[ti].next = kNil;
        } else {
            ti = static_cast<std::uint32_t>(_targets.size());
            _targets.push_back(TargetNode{std::move(t), kNil});
        }
        if (e.tailTarget == kNil)
            e.headTarget = ti;
        else
            _targets[e.tailTarget].next = ti;
        e.tailTarget = ti;
        ++_numTargets;
    }

    void
    freeTarget(std::uint32_t ti)
    {
        _targets[ti].next = _targetFree;
        _targetFree = ti;
    }

    /** Double the bucket array and re-chain every live entry. */
    void
    grow()
    {
        std::vector<std::uint32_t> old = std::move(_buckets);
        _buckets.assign(old.size() * 2, kNil);
        for (std::uint32_t h : old) {
            while (h != kNil) {
                std::uint32_t next = _entries[h].nextEntry;
                std::size_t b =
                    bucketOf(_entries[h].line, _entries[h].pid);
                _entries[h].nextEntry = _buckets[b];
                _buckets[b] = h;
                h = next;
            }
        }
    }

    std::vector<std::uint32_t> _buckets; ///< power-of-two heads
    std::vector<Entry> _entries;         ///< pooled entries
    std::vector<TargetNode> _targets;    ///< pooled target nodes
    std::uint32_t _entryFree = kNil;
    std::uint32_t _targetFree = kNil;
    std::size_t _numEntries = 0;
    std::size_t _numTargets = 0;
};

} // namespace fusion::mem

#endif // FUSION_MEM_MSHR_HH
