/**
 * @file
 * Open-page DRAM model (Table 2: 4 channels, open page, 32-entry
 * command queue, 200-cycle latency, 16 GB).
 *
 * Channels are line-interleaved. Each channel services one command
 * at a time from a bounded queue; an access to the currently open
 * row of a channel completes faster than one that must activate a
 * new row.
 */

#ifndef FUSION_MEM_DRAM_HH
#define FUSION_MEM_DRAM_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/sim_context.hh"
#include "sim/small_fn.hh"
#include "sim/types.hh"

namespace fusion::mem
{

/** Configuration for the DRAM model. */
struct DramParams
{
    std::uint32_t channels = 4;
    std::uint32_t cmdQueueDepth = 32;
    Cycles rowHitLatency = 120;  ///< open-page hit
    Cycles rowMissLatency = 200; ///< activate + access (Table 2)
    Cycles burstCycles = 4;      ///< channel occupancy per transfer
    std::uint32_t rowBytes = 4096;
    double accessPj = 1500.0;    ///< energy per 64B access
};

/** A queued DRAM command's completion callback. */
using DramCallback = sim::SmallFn<void()>;

/** Line-interleaved multi-channel open-page DRAM. */
class Dram
{
  public:
    Dram(SimContext &ctx, const DramParams &p);

    /**
     * Issue a line read/write. @p done fires when the data burst
     * completes. Commands beyond the queue depth stall admission
     * (modelled by queueing delay).
     */
    void access(Addr pa, bool is_write, DramCallback done);

    /** Total accesses serviced. */
    std::uint64_t accesses() const { return _accesses; }
    /** Accesses that hit the open row. */
    std::uint64_t rowHits() const { return _rowHits; }

  private:
    struct Channel
    {
        std::deque<std::pair<Addr, DramCallback>> queue;
        bool busy = false;
        Addr openRow = ~0ull;
    };

    void serviceNext(std::uint32_t ch);

    SimContext &_ctx;
    DramParams _p;
    energy::ComponentId _ecDram = energy::kInvalidComponent;
    std::vector<Channel> _channels;
    std::uint64_t _accesses = 0;
    std::uint64_t _rowHits = 0;
    stats::Group *_stats;
    // Per-access counters resolved once at construction.
    stats::Scalar *_stQueued;
    stats::Scalar *_stAccesses;
    stats::Scalar *_stRowHits;
};

} // namespace fusion::mem

#endif // FUSION_MEM_DRAM_HH
