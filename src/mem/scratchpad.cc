#include "mem/scratchpad.hh"

#include "energy/energy_ledger.hh"

namespace fusion::mem
{

Scratchpad::Scratchpad(SimContext &ctx, std::uint64_t capacity_bytes,
                       const std::string &name)
    : _ctx(ctx), _capacity(capacity_bytes)
{
    energy::SramParams p;
    p.capacityBytes = capacity_bytes;
    p.kind = energy::SramKind::ScratchpadRam;
    p.banks = 1;
    _fig = energy::evaluateSram(p);
    // Accelerator-side accesses are word-granularity (8B of the 64B
    // row): scale the line-read energy down accordingly, with a
    // floor for decode/wordline costs.
    _wordAccessPj = _fig.readPj * 0.35;
    _ecSpm = ctx.energy.component(energy::comp::kScratchpad);
    _stats = &ctx.stats.root().child(name);
    _stReads = &_stats->scalar("reads");
    _stWrites = &_stats->scalar("writes");
    _stDmaLineXfers = &_stats->scalar("dma_line_xfers");
}

Cycles
Scratchpad::access(bool is_write)
{
    if (is_write)
        ++_writes;
    else
        ++_reads;
    *(is_write ? _stWrites : _stReads) += 1;
    _ctx.energy.add(_ecSpm, _wordAccessPj);
    return _fig.latency;
}

void
Scratchpad::dmaLineAccess(bool is_write)
{
    *_stDmaLineXfers += 1;
    _ctx.energy.add(_ecSpm,
                    is_write ? _fig.writePj : _fig.readPj);
}

} // namespace fusion::mem
