/**
 * @file
 * Bank occupancy scheduler for multi-banked SRAMs.
 *
 * The shared L1X is 16-banked (Table 2): concurrent accesses to the
 * same bank serialize. Banks are line-interleaved; each access
 * occupies its bank for a fixed number of cycles, and a request to
 * a busy bank is delayed until the bank frees.
 */

#ifndef FUSION_MEM_BANK_SCHEDULER_HH
#define FUSION_MEM_BANK_SCHEDULER_HH

#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace fusion::mem
{

/** Tracks per-bank busy-until times. */
class BankScheduler
{
  public:
    /**
     * @param banks number of banks (line-interleaved)
     * @param occupancy cycles one access holds a bank
     */
    BankScheduler(std::uint32_t banks, Cycles occupancy)
        : _busyUntil(banks, 0), _occupancy(occupancy)
    {
        fusion_assert(banks > 0, "need at least one bank");
    }

    /** Bank servicing @p addr. */
    std::uint32_t
    bankOf(Addr addr) const
    {
        return static_cast<std::uint32_t>(
            lineNumber(addr) % _busyUntil.size());
    }

    /**
     * Reserve the bank for an access issued at @p now.
     * @return the extra queueing delay (0 when the bank is idle).
     */
    Cycles
    reserve(Addr addr, Tick now)
    {
        Tick &busy = _busyUntil[bankOf(addr)];
        Tick start = busy > now ? busy : now;
        busy = start + _occupancy;
        ++_accesses;
        if (start > now)
            ++_conflicts;
        return start - now;
    }

    std::uint64_t accesses() const { return _accesses; }
    std::uint64_t conflicts() const { return _conflicts; }

  private:
    std::vector<Tick> _busyUntil;
    Cycles _occupancy;
    std::uint64_t _accesses = 0;
    std::uint64_t _conflicts = 0;
};

} // namespace fusion::mem

#endif // FUSION_MEM_BANK_SCHEDULER_HH
