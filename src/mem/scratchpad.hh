/**
 * @file
 * Per-accelerator scratchpad RAM for the SCRATCH baseline
 * (Section 2.1). A tagless, single-cycle, explicitly managed local
 * store; the DMA engine fills and drains it window-by-window.
 */

#ifndef FUSION_MEM_SCRATCHPAD_HH
#define FUSION_MEM_SCRATCHPAD_HH

#include <cstdint>

#include "energy/sram_model.hh"
#include "sim/sim_context.hh"
#include "sim/types.hh"

namespace fusion::mem
{

/** Scratchpad RAM model: energy and latency per access. */
class Scratchpad
{
  public:
    /**
     * @param ctx shared simulation services
     * @param capacity_bytes scratchpad capacity (paper: 4 or 8 KB)
     * @param name stats group name (e.g. "axc0.spm")
     */
    Scratchpad(SimContext &ctx, std::uint64_t capacity_bytes,
               const std::string &name);

    /** Capacity in bytes. */
    std::uint64_t capacityBytes() const { return _capacity; }

    /** Capacity in cache lines. */
    std::uint64_t
    capacityLines() const
    {
        return _capacity / kLineBytes;
    }

    /** Access latency (cycles). */
    Cycles latency() const { return _fig.latency; }

    /**
     * Book one accelerator-side access (word granularity).
     * @return the access latency in cycles.
     */
    Cycles access(bool is_write);

    /**
     * Book one DMA-side line transfer into/out of the scratchpad.
     */
    void dmaLineAccess(bool is_write);

    std::uint64_t reads() const { return _reads; }
    std::uint64_t writes() const { return _writes; }

  private:
    SimContext &_ctx;
    std::uint64_t _capacity;
    energy::SramFigures _fig;
    double _wordAccessPj;
    energy::ComponentId _ecSpm = energy::kInvalidComponent;
    std::uint64_t _reads = 0;
    std::uint64_t _writes = 0;
    stats::Group *_stats;
    // Per-access counters resolved once at construction.
    stats::Scalar *_stReads;
    stats::Scalar *_stWrites;
    stats::Scalar *_stDmaLineXfers;
};

} // namespace fusion::mem

#endif // FUSION_MEM_SCRATCHPAD_HH
