/**
 * @file
 * The accelerator tile's shared L1X cache running the ACC
 * (ACcelerator Coherence) protocol — the ordering point of the tile
 * (Section 3.2).
 *
 * ACC is a timestamp-based self-invalidation protocol:
 *  - L0Xs request *leases*: a read epoch or a write epoch ending at
 *    now + LT (the per-function lease time, Table 3).
 *  - The L1X records the latest lease granted for a line as its
 *    GTIME; by GTIME every L0X copy has self-invalidated, so the
 *    L1X can answer host MESI demands without ever probing an L0X.
 *  - A write epoch implicitly locks the line at the L1X; subsequent
 *    readers/writers stall *at the L1X* until the epoch expires and
 *    the dirty writeback arrives. Read epochs coexist.
 *  - Strict 2-hop within the tile: request -> grant, no
 *    invalidations, no acks.
 *
 * Host integration (MEI): the L1X always fetches lines exclusively
 * (GetX) from the host LLC, so its MESI states collapse to M/E/I
 * and silent S->I drops cannot happen; the host directory's sharer
 * information for the tile is exact. A forwarded host request is
 * translated through the AX-RMAP, evicts the line into a writeback
 * buffer, and the PUTX response is *stalled until GTIME expires*
 * (Figure 4, right).
 *
 * Virtual memory: the L1X is virtually indexed and PID tagged; the
 * AX-TLB sits on its miss path (Figure 3, top) and the AX-RMAP
 * provides the PA -> L1X pointer reverse translation, doubling as
 * the synonym filter of the Appendix.
 */

#ifndef FUSION_ACCEL_L1X_HH
#define FUSION_ACCEL_L1X_HH

#include <list>
#include <string>

#include "energy/sram_model.hh"
#include "coherence/protocol.hh"
#include "host/llc.hh"
#include "interconnect/link.hh"
#include "mem/cache_array.hh"
#include "mem/bank_scheduler.hh"
#include "mem/mshr.hh"
#include "obs/span_tracer.hh"
#include "sim/sim_context.hh"
#include "vm/ax_rmap.hh"
#include "vm/ax_tlb.hh"

namespace fusion::accel
{

/** L1X configuration (Table 2: 64 KB or 256 KB, 16 banks, 8-way). */
struct L1xParams
{
    std::string name = "l1x";
    std::uint64_t capacityBytes = 64 * 1024;
    std::uint32_t assoc = 8;
    std::uint32_t banks = 16;
    std::uint32_t ringNode = 4; ///< tile attachment on the LLC ring
};

/** Result of a lease request. */
struct LeaseGrant
{
    Tick leaseEnd = 0; ///< LTIME handed to the L0X
};

/** The shared L1X with the ACC controller. */
class L1xAcc : public coherence::CoherentAgent
{
  public:
    using LeaseDone = sim::SmallFn<void(const LeaseGrant &)>;

    /**
     * @param tile_link the L0X<->L1X link (response direction booked
     *        here; requests are booked by the L0X side)
     * @param llc_link the tile's link to the host LLC
     */
    L1xAcc(SimContext &ctx, const L1xParams &p, host::Llc &llc,
           interconnect::Link *tile_link,
           interconnect::Link *llc_link, vm::AxTlb &tlb,
           vm::AxRmap &rmap);

    /**
     * Lease request from an L0X (arrives after the tile-link
     * latency, which the L0X models). A write lease locks the line.
     * @p done fires when the grant (with data) reaches the L0X.
     */
    void requestLease(AccelId who, Addr vline, Pid pid,
                      Cycles lease_len, bool is_write,
                      bool need_data, LeaseDone done);

    /**
     * Dirty-line writeback from an L0X self-downgrade. Unlocks the
     * line and wakes stalled requests. (The data message itself is
     * booked by the L0X.)
     */
    void writeback(AccelId who, Addr vline, Pid pid);

    /**
     * FUSION-Dx lease transfer: the producer forwarded the dirty
     * line directly to a consumer L0X whose implicit write epoch
     * ends at @p new_end; the L1X only extends the lease (it "is
     * not concerned with the owner of the lease", Section 3.2).
     */
    void leaseTransfer(Addr vline, Pid pid, Tick new_end,
                       bool dirty);

    /** Write-through store from an L0X (Table 4 ablation). */
    void writeThroughStore(AccelId who, Addr vline, Pid pid);

    // CoherentAgent interface (host-forwarded demands).
    void handleFwd(Addr pa, coherence::FwdKind kind,
                   FwdDone done) override;
    const std::string &name() const override { return _name; }

    Cycles latency() const { return _fig.latency; }
    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }
    /** LLC agent id assigned at registration (fwdsToAgent key). */
    int agentId() const { return _agentId; }

    /** Flush every line to the host (end-of-program barrier). */
    void flushAll();

    // Guard hooks (tile-level invariant checkers).
    /** Valid line lookup without side effects. */
    const mem::CacheLine *
    findLine(Addr vline, Pid pid) const
    {
        return _tags.find(lineAlign(vline), pid);
    }
    /** Is the line parked in the host-demand writeback buffer? */
    bool hasWbBufferedLine(Addr vline, Pid pid) const;

  private:
    struct WbBufEntry
    {
        std::uint64_t id = 0;
        Addr pline = 0;
        Addr vline = 0;
        Pid pid = 0;
        bool dirty = false;
        bool awaitingL0xWb = false;
        Tick readyAt = 0;
        Tick t0 = 0; ///< demand arrival (fwd_latency histogram)
        FwdDone done;
    };

    void bookAccess(bool is_write);
    /** Main lease state machine, post bank-access latency. */
    void processLease(AccelId who, Addr vline, Pid pid,
                      Cycles lease_len, bool is_write,
                      bool need_data, LeaseDone done,
                      bool is_retry = false);
    void grant(mem::CacheLine &line, Cycles lease_len, bool is_write,
               bool need_data, LeaseDone done);
    /** Miss path: translate, fetch exclusively, install. */
    void startFill(Addr vline, Pid pid);
    void finishFill(Addr vline, Pid pid, Addr pline, Tick t0);
    /** Allocate a frame, evicting an expired victim. */
    void allocateFrame(Addr vline, Pid pid, Addr pline,
                       sim::SmallFn<void()> installed);
    void wakeStalled(Addr vline, Pid pid);
    void tryRespondWbBuf(std::uint64_t id);

    SimContext &_ctx;
    std::string _name;
    host::Llc &_llc;
    interconnect::Link *_tileLink;
    interconnect::Link *_llcLink;
    vm::AxTlb &_tlb;
    vm::AxRmap &_rmap;
    mem::CacheArray _tags;
    mem::BankScheduler _banks;
    mem::MshrFile _mshrs; ///< keyed by (vline, pid)
    energy::SramFigures _fig;
    energy::ComponentId _ecL1x = energy::kInvalidComponent;
    int _agentId = -1;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
    /** Write-epoch stall queues — the same pooled (vline, pid)
     *  structure as the MSHR file; wakeStalled() drains one key. */
    mem::MshrFile _stalled;
    std::list<WbBufEntry> _wbBuffer;
    std::uint64_t _nextWbId = 1;
    stats::Group *_stats;
    // Per-access counters resolved once at construction.
    stats::Scalar *_stReads;
    stats::Scalar *_stWrites;
    stats::Scalar *_stHits;
    stats::Scalar *_stMisses;
    stats::Scalar *_stBankConflicts;
    stats::Histogram *_stFillLatency;
    stats::Histogram *_stFwdLatency;
    /// Telemetry span tracer (null when tracing is off).
    obs::SpanTracer *_tracer = nullptr;
    std::uint32_t _track = 0;
};

} // namespace fusion::accel

#endif // FUSION_ACCEL_L1X_HH
