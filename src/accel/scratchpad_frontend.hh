/**
 * @file
 * MemPort adapter exposing a scratchpad to an accelerator core
 * (SCRATCH baseline). Validates that every access falls inside the
 * DMA-resident window — a violation means the oracle windowing is
 * broken, which is a simulator bug.
 */

#ifndef FUSION_ACCEL_SCRATCHPAD_FRONTEND_HH
#define FUSION_ACCEL_SCRATCHPAD_FRONTEND_HH

#include <unordered_set>

#include "accel/mem_port.hh"
#include "mem/scratchpad.hh"
#include "sim/sim_context.hh"

namespace fusion::accel
{

/** Scratchpad-backed memory port. */
class ScratchpadFrontend : public MemPort
{
  public:
    ScratchpadFrontend(SimContext &ctx, mem::Scratchpad &spm);

    /** Declare the lines resident for the current window. */
    void setResidentLines(const std::unordered_set<Addr> &lines);

    void access(Addr va, std::uint32_t size, bool is_write,
                PortDone done) override;

  private:
    SimContext &_ctx;
    mem::Scratchpad &_spm;
    const std::unordered_set<Addr> *_resident = nullptr;
};

} // namespace fusion::accel

#endif // FUSION_ACCEL_SCRATCHPAD_FRONTEND_HH
