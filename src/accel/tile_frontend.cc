/**
 * @file
 * The four TileFrontend implementations. Each constructor replays
 * the exact component wiring (and construction order) the old
 * switch-based core::System used for its kind, which is what keeps
 * static-kind output byte-identical across the refactor.
 */

#include "accel/tile_frontend.hh"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "accel/dma_engine.hh"
#include "accel/scratchpad_frontend.hh"
#include "accel/tile_mesi.hh"
#include "host/host_l1.hh"
#include "mem/scratchpad.hh"
#include "sim/logging.hh"
#include "sim/shard/router.hh"
#include "trace/analysis.hh"

namespace fusion::accel
{

namespace
{

/**
 * SCRATCH: per-accelerator scratchpads fed by the oracle DMA
 * engine. Invocations are segmented into windows whose footprint
 * fits the scratchpad; each window is DMA fill -> replay -> drain,
 * and the accelerator's DMA-blocked cycles accumulate into
 * dmaWaitCycles() (the Figure 6b DMA stack).
 */
class ScratchFrontend final : public TileFrontend
{
  public:
    explicit ScratchFrontend(const FrontendEnv &e)
        : TileFrontend(core::SystemKind::Scratch), _ctx(e.ctx),
          _cfg(e.cfg), _prog(e.prog)
    {
        for (std::uint32_t a = 0; a < e.numAccels; ++a) {
            _spms.push_back(std::make_unique<mem::Scratchpad>(
                _ctx, e.cfg.scratchpadBytes,
                "axc" + std::to_string(a) + ".spm"));
            _spmPorts.push_back(
                std::make_unique<ScratchpadFrontend>(
                    _ctx, *_spms.back()));
        }
        // The DMA engine resides at the LLC; its transfer path to
        // the tile is the same physical link class as L1X<->L2 and
        // books against the same components so energy stacks are
        // comparable across systems. Latency includes the average
        // ring traversal.
        _dmaLink = std::make_unique<interconnect::Link>(
            _ctx, interconnect::LinkParams{
                      "dma", energy::LinkClass::L1xToL2, 7,
                      energy::comp::kLinkL1xL2Msg,
                      energy::comp::kLinkL1xL2Data});
        DmaParams dp;
        dp.maxOutstanding = e.cfg.dmaMaxOutstanding;
        _dma = std::make_unique<DmaEngine>(_ctx, dp, e.llc,
                                           _dmaLink.get(), e.pt);
        _windows.resize(e.prog.invocations.size());
    }

    void
    launch(std::size_t idx, AccelCore &core,
           sim::SmallFn<void()> done) override
    {
        runWindows(idx, 0, core, std::move(done));
    }

    /** One DMA engine serializes the windows. */
    bool supportsOverlap() const override { return false; }

    FrontendCounters
    counters() const override
    {
        FrontendCounters c;
        c.dmaOps = _dma->dmaOps();
        c.dmaBytes = _dma->bytesTransferred();
        return c;
    }

    void
    collect(core::RunResult &r) const override
    {
        r.dmaOps += _dma->dmaOps();
        r.dmaBytes += _dma->bytesTransferred();
    }

    Tick dmaWaitCycles() const override { return _dmaWait; }

  private:
    void
    runWindows(std::size_t inv_idx, std::size_t widx,
               AccelCore &core, sim::SmallFn<void()> then)
    {
        const trace::Invocation &inv = _prog.invocations[inv_idx];
        const trace::FunctionMeta &meta =
            _prog.functions[static_cast<std::size_t>(inv.func)];
        auto &wins = _windows[inv_idx];
        if (widx == 0 && wins.empty()) {
            wins = trace::segmentWindows(
                inv, _cfg.scratchpadBytes / kLineBytes);
        }
        if (widx >= wins.size()) {
            then();
            return;
        }
        const trace::DmaWindow &w = wins[widx];
        auto spm_idx = static_cast<std::size_t>(meta.accel);
        mem::Scratchpad &spm = *_spms[spm_idx];
        ScratchpadFrontend &port = *_spmPorts[spm_idx];

        Tick fill_start = _ctx.now();
        _dma->fill(
            w.readLines, _prog.pid, spm,
            [this, inv_idx, widx, &inv, &w, &spm, &port, &core,
             mlp = meta.mlp, fill_start,
             then = std::move(then)]() mutable {
                _dmaWait += _ctx.now() - fill_start;
                _residentLines.clear();
                _residentLines.insert(w.readLines.begin(),
                                      w.readLines.end());
                _residentLines.insert(w.dirtyLines.begin(),
                                      w.dirtyLines.end());
                port.setResidentLines(_residentLines);
                core.run(
                    inv, mlp, port, w.beginOp, w.endOp,
                    [this, inv_idx, widx, &core, &w, &spm,
                     then = std::move(then)]() mutable {
                        Tick drain_start = _ctx.now();
                        _dma->drain(
                            w.dirtyLines, _prog.pid, spm,
                            [this, inv_idx, widx, &core,
                             drain_start,
                             then = std::move(then)]() mutable {
                                _dmaWait +=
                                    _ctx.now() - drain_start;
                                runWindows(inv_idx, widx + 1, core,
                                           std::move(then));
                            });
                    });
            });
    }

    SimContext &_ctx;
    const core::SystemConfig &_cfg;
    const trace::Program &_prog;
    std::vector<std::unique_ptr<mem::Scratchpad>> _spms;
    std::vector<std::unique_ptr<ScratchpadFrontend>> _spmPorts;
    std::unique_ptr<interconnect::Link> _dmaLink;
    std::unique_ptr<DmaEngine> _dma;
    /// Per-invocation window decomposition (lazy).
    std::vector<std::vector<trace::DmaWindow>> _windows;
    std::unordered_set<Addr> _residentLines;
    Tick _dmaWait = 0;
};

/**
 * SHARED: the accelerators access one shared MESI L1X directly over
 * the tile link. The MemPort adapter translates virtual accelerator
 * accesses and books the per-access AXC<->L1X link traffic (request
 * message + word response) that makes SHARED expensive in link
 * energy (Section 5.2; Figure 6c's "L0X->L1X MSG" / "L1X->L0X DATA"
 * for the SHARED design).
 */
class SharedFrontend final : public TileFrontend
{
  public:
    explicit SharedFrontend(const FrontendEnv &e)
        : TileFrontend(core::SystemKind::Shared), _ctx(e.ctx),
          _prog(e.prog), _llc(e.llc), _numAccels(e.numAccels)
    {
        _tileLink = std::make_unique<interconnect::Link>(
            _ctx, interconnect::LinkParams{
                      "l0x_l1x", energy::LinkClass::AxcToL1x, 1,
                      energy::comp::kLinkL0xL1xMsg,
                      energy::comp::kLinkL0xL1xData});
        _llcLink = std::make_unique<interconnect::Link>(
            _ctx, interconnect::LinkParams{
                      "l1x_l2", energy::LinkClass::L1xToL2, 3,
                      energy::comp::kLinkL1xL2Msg,
                      energy::comp::kLinkL1xL2Data});
        host::HostL1Params sp;
        sp.name = "l1x";
        sp.capacityBytes = e.cfg.l1xBytes;
        sp.assoc = e.cfg.l1xAssoc;
        sp.banks = e.cfg.l1xBanks;
        sp.energyComponent = energy::comp::kL1x;
        sp.ringNode = 4; // the tile sits across the ring
        sp.wordAccessScale = 0.5;
        _l1x = std::make_unique<host::HostL1>(_ctx, sp, e.llc,
                                              _llcLink.get());
        _port = std::make_unique<Port>(_ctx, *_l1x, *_tileLink,
                                       e.pt, e.prog.pid);
    }

    void
    launch(std::size_t idx, AccelCore &core,
           sim::SmallFn<void()> done) override
    {
        const trace::Invocation &inv = _prog.invocations[idx];
        const trace::FunctionMeta &meta =
            _prog.functions[static_cast<std::size_t>(inv.func)];
        core.run(inv, meta.mlp, *_port, std::move(done));
    }

    FrontendCounters
    counters() const override
    {
        FrontendCounters c;
        c.l1xHits = _l1x->hits();
        c.l1xMisses = _l1x->misses();
        return c;
    }

    void
    collect(core::RunResult &r) const override
    {
        r.l1xHits += _l1x->hits();
        r.l1xMisses += _l1x->misses();
        r.fwdsToTile += _llc.fwdsToAgent(_l1x->agentId());
    }

    void
    bindShard(shard::Router &router) override
    {
        // One tile: cores, L0X link and the MESI L1X all live in
        // domain 1; only the L1X<->LLC ring link crosses.
        _llcLink->bindShardEdge(&router, 0, 1);
        for (std::uint32_t a = 0; a < _numAccels; ++a)
            router.setAccelDomain(a, 1);
    }

  private:
    class Port : public MemPort
    {
      public:
        Port(SimContext &ctx, host::HostL1 &l1x,
             interconnect::Link &link, const vm::PageTable &pt,
             Pid pid)
            : _ctx(ctx), _l1x(l1x), _link(link), _pt(pt), _pid(pid)
        {
        }

        void
        access(Addr va, std::uint32_t size, bool is_write,
               PortDone done) override
        {
            (void)size;
            Addr pa = _pt.translate(_pid, va);
            // Request: 1 flit (+ the store's word payload).
            _link.book(is_write ? interconnect::MsgClass::Word
                                : interconnect::MsgClass::Control);
            _ctx.eq.scheduleIn(
                _link.latency(),
                [this, pa, is_write,
                 done = std::move(done)]() mutable {
                    _l1x.access(
                        pa, is_write,
                        [this, is_write,
                         done = std::move(done)]() mutable {
                            // Response: word payload for loads,
                            // ack for stores.
                            _link.book(
                                is_write
                                    ? interconnect::MsgClass::
                                          Control
                                    : interconnect::MsgClass::Word);
                            _ctx.eq.scheduleIn(
                                _link.latency(),
                                [done = std::move(
                                     done)]() mutable {
                                    done();
                                });
                        });
                });
        }

      private:
        SimContext &_ctx;
        host::HostL1 &_l1x;
        interconnect::Link &_link;
        const vm::PageTable &_pt;
        Pid _pid;
    };

    SimContext &_ctx;
    const trace::Program &_prog;
    host::Llc &_llc;
    std::uint32_t _numAccels = 0;
    std::unique_ptr<interconnect::Link> _tileLink;
    std::unique_ptr<interconnect::Link> _llcLink;
    std::unique_ptr<host::HostL1> _l1x;
    std::unique_ptr<Port> _port;
};

/**
 * FUSION-MESI: the FUSION geometry with a conventional directory
 * MESI protocol inside the tile (the design ACC is argued against).
 */
class MesiFrontend final : public TileFrontend
{
  public:
    explicit MesiFrontend(const FrontendEnv &e)
        : TileFrontend(core::SystemKind::FusionMesi), _prog(e.prog),
          _llc(e.llc)
    {
        _tile = std::make_unique<MesiTile>(
            e.ctx, e.numAccels, e.cfg.l0xBytes, e.cfg.l0xAssoc,
            e.cfg.l1xBytes, e.cfg.l1xAssoc, e.cfg.l1xBanks, e.llc,
            e.pt);
        for (std::uint32_t a = 0; a < e.numAccels; ++a)
            _tile->l0x(static_cast<AccelId>(a)).setPid(e.prog.pid);
    }

    void
    launch(std::size_t idx, AccelCore &core,
           sim::SmallFn<void()> done) override
    {
        const trace::Invocation &inv = _prog.invocations[idx];
        const trace::FunctionMeta &meta =
            _prog.functions[static_cast<std::size_t>(inv.func)];
        core.run(inv, meta.mlp, _tile->l0x(meta.accel),
                 std::move(done));
    }

    FrontendCounters
    counters() const override
    {
        FrontendCounters c;
        for (std::uint32_t a = 0; a < _tile->numAccels(); ++a) {
            const L0xMesi &l0 =
                _tile->l0x(static_cast<AccelId>(a));
            c.l0xHits += l0.hits();
            c.l0xMisses += l0.misses();
        }
        c.l1xHits = _tile->l1x().hits();
        c.l1xMisses = _tile->l1x().misses();
        return c;
    }

    void
    collect(core::RunResult &r) const override
    {
        r.axTlbLookups += _tile->tlb().lookups();
        r.axRmapLookups += _tile->rmap().lookups();
        r.l1xHits += _tile->l1x().hits();
        r.l1xMisses += _tile->l1x().misses();
        for (std::uint32_t a = 0; a < _tile->numAccels(); ++a) {
            const L0xMesi &l0 =
                _tile->l0x(static_cast<AccelId>(a));
            r.l0xFills += l0.fills();
            r.l0xWritebacks += l0.writebacks();
        }
        r.fwdsToTile += _llc.fwdsToAgent(_tile->l1x().agentId());
    }

    void
    bindShard(shard::Router &router) override
    {
        // Like SHARED: one directory tile in domain 1, crossing to
        // the host complex over the L1X<->LLC ring link only.
        _tile->llcLink().bindShardEdge(&router, 0, 1);
        for (std::uint32_t a = 0; a < _tile->numAccels(); ++a)
            router.setAccelDomain(a, 1);
    }

  private:
    const trace::Program &_prog;
    host::Llc &_llc;
    std::unique_ptr<MesiTile> _tile;
};

/**
 * FUSION / FUSION-Dx: private L0Xs + shared ACC L1X, accelerators
 * block-partitioned over numTiles tiles, with the Dx variant adding
 * trace-derived L0X->L0X write forwarding.
 */
class FusionFrontend final : public TileFrontend
{
  public:
    FusionFrontend(core::SystemKind kind, const FrontendEnv &e)
        : TileFrontend(kind), _prog(e.prog), _llc(e.llc)
    {
        std::uint32_t num_tiles =
            std::min(std::max(1u, e.cfg.numTiles), e.numAccels);
        // Block-partition accelerators over the tiles.
        std::uint32_t per =
            (e.numAccels + num_tiles - 1) / num_tiles;
        _tileOf.resize(e.numAccels);
        _localId.resize(e.numAccels);
        for (std::uint32_t t = 0; t < num_tiles; ++t) {
            std::uint32_t lo = t * per;
            std::uint32_t hi =
                std::min(e.numAccels, (t + 1) * per);
            if (lo >= hi)
                break;
            TileParams tp;
            tp.numAccels = hi - lo;
            tp.l0xBytes = e.cfg.l0xBytes;
            tp.l0xAssoc = e.cfg.l0xAssoc;
            tp.l0xRepl = e.cfg.l0xRepl;
            tp.writeThrough = e.cfg.l0xWriteThrough;
            tp.enableDx = kind == core::SystemKind::FusionDx;
            tp.l1x.capacityBytes = e.cfg.l1xBytes;
            tp.l1x.assoc = e.cfg.l1xAssoc;
            tp.l1x.banks = e.cfg.l1xBanks;
            tp.l1x.name = num_tiles == 1
                              ? std::string("l1x")
                              : "l1x" + std::to_string(t);
            // Spread tiles over the far side of the ring.
            tp.l1x.ringNode = 4 + t;
            _tiles.push_back(std::make_unique<FusionTile>(
                e.ctx, tp, e.llc, e.pt));
            for (std::uint32_t a = lo; a < hi; ++a) {
                _tileOf[a] = t;
                _localId[a] = static_cast<AccelId>(a - lo);
            }
        }
        if (kind == core::SystemKind::FusionDx)
            _fwdPlan = trace::planForwarding(e.prog);
        // Lease lengths are per accelerated function; prime each
        // L0X with its function's LT so Dx pushes landing before
        // the consumer's first invocation carry the right lease.
        for (const auto &f : _prog.functions) {
            tileFor(f.accel)
                .l0x(_localId[static_cast<std::size_t>(f.accel)])
                .setFunction(f.leaseTime, e.prog.pid);
        }
    }

    void
    launch(std::size_t idx, AccelCore &core,
           sim::SmallFn<void()> done) override
    {
        const trace::Invocation &inv = _prog.invocations[idx];
        const trace::FunctionMeta &meta =
            _prog.functions[static_cast<std::size_t>(inv.func)];
        FusionTile &tile = tileFor(meta.accel);
        AccelId local =
            _localId[static_cast<std::size_t>(meta.accel)];
        L0x &l0 = tile.l0x(local);
        l0.setFunction(meta.leaseTime, _prog.pid);
        if (kind() == core::SystemKind::FusionDx) {
            auto it = _fwdPlan.find(static_cast<std::uint32_t>(idx));
            // Only consumers on the *same* tile can receive pushes
            // (the L0X-L0X link is intra-tile); remap their ids to
            // tile-local indices.
            std::unordered_map<Addr, trace::ForwardHint> local_plan;
            if (it != _fwdPlan.end()) {
                std::uint32_t my_tile =
                    _tileOf[static_cast<std::size_t>(meta.accel)];
                for (const auto &[line, hint] : it->second) {
                    auto ci =
                        static_cast<std::size_t>(hint.consumer);
                    if (_tileOf[ci] == my_tile) {
                        local_plan[line] = trace::ForwardHint{
                            _localId[ci], hint.earlyOk};
                    }
                }
            }
            tile.installForwardPlan(local, local_plan);
        }
        core.run(inv, meta.mlp, l0,
                 [&tile, local,
                  done = std::move(done)]() mutable {
                     tile.finishInvocation(local);
                     done();
                 });
    }

    void
    deactivate() override
    {
        // Mode switch away from FUSION: flush dirty tile state so
        // the next organization starts from the host-owned copy
        // (the orchestrator charges the modeled flush cost).
        for (auto &tile : _tiles)
            tile->drainAll();
    }

    FrontendCounters
    counters() const override
    {
        FrontendCounters c;
        for (const auto &tile : _tiles) {
            c.l1xHits += tile->l1x().hits();
            c.l1xMisses += tile->l1x().misses();
            for (std::uint32_t a = 0; a < tile->numAccels(); ++a) {
                const L0x &l0 = tile->l0x(static_cast<AccelId>(a));
                c.l0xHits += l0.hits();
                c.l0xMisses += l0.misses();
                c.l0xForwards += l0.forwardsOut();
            }
        }
        return c;
    }

    void
    collect(core::RunResult &r) const override
    {
        for (const auto &tile : _tiles) {
            r.axTlbLookups += tile->tlb().lookups();
            r.axRmapLookups += tile->rmap().lookups();
            r.l1xHits += tile->l1x().hits();
            r.l1xMisses += tile->l1x().misses();
            for (std::uint32_t a = 0; a < tile->numAccels(); ++a) {
                const L0x &l0 = tile->l0x(static_cast<AccelId>(a));
                r.l0xFills += l0.fills();
                r.l0xWritebacks += l0.writebacksSent();
                r.l0xForwards += l0.forwardsOut();
            }
            r.fwdsToTile +=
                _llc.fwdsToAgent(tile->l1x().agentId());
        }
    }

    std::vector<std::unique_ptr<FusionTile>> *
    fusionTiles() override
    {
        return &_tiles;
    }

    void
    bindShard(shard::Router &router) override
    {
        // Each ACC tile is a domain's worth of components (cores,
        // L0Xs, Dx forwarding, the tile L1X): tile t maps onto
        // domain tileDomain(t) — round-robin when the partition has
        // fewer domains than tiles — and its LLC ring link is the
        // one cross-domain edge. Dx pushes are intra-tile by
        // construction (launch() filters the plan to same-tile
        // consumers), so they never cross.
        for (std::uint32_t t = 0; t < _tiles.size(); ++t) {
            _tiles[t]->llcLink().bindShardEdge(
                &router, 0, router.tileDomain(t));
        }
        for (std::size_t a = 0; a < _tileOf.size(); ++a) {
            router.setAccelDomain(
                static_cast<std::uint32_t>(a),
                router.tileDomain(_tileOf[a]));
        }
    }

  private:
    FusionTile &
    tileFor(AccelId a)
    {
        return *_tiles[_tileOf[static_cast<std::size_t>(a)]];
    }

    const trace::Program &_prog;
    host::Llc &_llc;
    std::vector<std::unique_ptr<FusionTile>> _tiles;
    std::vector<std::uint32_t> _tileOf;
    std::vector<AccelId> _localId;
    trace::ForwardPlan _fwdPlan;
};

} // namespace

std::unique_ptr<TileFrontend>
makeTileFrontend(core::SystemKind kind, const FrontendEnv &env)
{
    switch (kind) {
      case core::SystemKind::Scratch:
        return std::make_unique<ScratchFrontend>(env);
      case core::SystemKind::Shared:
        return std::make_unique<SharedFrontend>(env);
      case core::SystemKind::FusionMesi:
        return std::make_unique<MesiFrontend>(env);
      case core::SystemKind::Fusion:
      case core::SystemKind::FusionDx:
        return std::make_unique<FusionFrontend>(kind, env);
      case core::SystemKind::Auto:
        break;
    }
    fusion_panic("makeTileFrontend: not a static system kind");
}

} // namespace fusion::accel
