#include "accel/accel_core.hh"

#include "energy/energy_ledger.hh"
#include "sim/logging.hh"

namespace fusion::accel
{

AccelCore::AccelCore(SimContext &ctx, const AccelCoreParams &p,
                     AccelId id)
    : _ctx(ctx), _p(p), _id(id)
{
    _ecCompute = ctx.energy.component(energy::comp::kAxcCompute);
    _stats = &ctx.stats.root()
                  .child("axc" + std::to_string(id))
                  .child("core");
    _stIntOps = &_stats->scalar("int_ops");
    _stFpOps = &_stats->scalar("fp_ops");
    _stLoads = &_stats->scalar("loads");
    _stStores = &_stats->scalar("stores");

    ctx.guard.registerSnapshot(
        "axc" + std::to_string(id), [this] {
            guard::ComponentState s;
            s.outstanding = _outstandingLoads + _outstandingStores;
            if (_active) {
                s.detail = "op " + std::to_string(_pos) + "/" +
                           std::to_string(_end) + " loads=" +
                           std::to_string(_outstandingLoads) +
                           " stores=" +
                           std::to_string(_outstandingStores);
            }
            return s;
        });
}

void
AccelCore::run(const trace::Invocation &inv, std::uint32_t mlp,
               MemPort &port, std::size_t begin_op,
               std::size_t end_op, sim::SmallFn<void()> done)
{
    fusion_assert(!_active, "accelerator ", _id, " already running");
    fusion_assert(mlp > 0, "MLP must be positive");
    fusion_assert(end_op <= inv.ops.size(), "op range OOB");
    _inv = &inv;
    _port = &port;
    _mlp = mlp;
    _pos = begin_op;
    _end = end_op;
    _outstandingLoads = 0;
    _outstandingStores = 0;
    _active = true;
    _done = std::move(done);
    pump();
}

void
AccelCore::pump()
{
    _pumpScheduled = false;
    while (_pos < _end) {
        const trace::TraceOp &op = _inv->ops[_pos];
        if (op.kind == trace::OpKind::Compute) {
            _ctx.energy.add(_ecCompute,
                            _p.intOpPj * op.intOps +
                                _p.fpOpPj * op.fpOps);
            *_stIntOps += op.intOps;
            *_stFpOps += op.fpOps;
            Cycles c =
                (op.intOps + op.fpOps + _p.datapathWidth - 1) /
                _p.datapathWidth;
            ++_pos;
            if (c > 0) {
                _pumpScheduled = true;
                _ctx.eq.scheduleIn(c, [this] { pump(); });
                return;
            }
            continue;
        }
        bool is_store = op.kind == trace::OpKind::Store;
        if (is_store ? _outstandingStores >= _p.storeBuffer
                     : _outstandingLoads >= _mlp)
            return; // a completion re-pumps
        ++_pos;
        ++_memOps;
        *(is_store ? _stStores : _stLoads) += 1;
        if (is_store)
            ++_outstandingStores;
        else
            ++_outstandingLoads;
        _port->access(op.addr, op.size, is_store, [this, is_store] {
            if (is_store)
                --_outstandingStores;
            else
                --_outstandingLoads;
            _ctx.guard.noteProgress();
            if (!_pumpScheduled) {
                _pumpScheduled = true;
                _ctx.eq.scheduleIn(0, [this] { pump(); });
            }
        });
        // At most one memory issue per cycle.
        if (_pos < _end) {
            _pumpScheduled = true;
            _ctx.eq.scheduleIn(1, [this] { pump(); });
        }
        return;
    }
    if (_outstandingLoads == 0 && _outstandingStores == 0 &&
        _active) {
        _active = false;
        auto done = std::move(_done); // move empties _done
        done();
    }
}

} // namespace fusion::accel
