#include "accel/tile.hh"

#include <map>
#include <sstream>
#include <utility>

#include "sim/logging.hh"

namespace fusion::accel
{

FusionTile::FusionTile(SimContext &ctx, const TileParams &p,
                       host::Llc &llc, const vm::PageTable &pt)
    : _ctx(ctx), _p(p)
{
    fusion_assert(p.numAccels > 0, "tile needs accelerators");

    _tileLink = std::make_unique<interconnect::Link>(
        ctx, interconnect::LinkParams{
                 "l0x_l1x", energy::LinkClass::AxcToL1x,
                 p.tileLinkLatency, energy::comp::kLinkL0xL1xMsg,
                 energy::comp::kLinkL0xL1xData});
    _llcLink = std::make_unique<interconnect::Link>(
        ctx, interconnect::LinkParams{
                 "l1x_l2", energy::LinkClass::L1xToL2,
                 p.llcLinkLatency, energy::comp::kLinkL1xL2Msg,
                 energy::comp::kLinkL1xL2Data});
    _fwdLink = std::make_unique<interconnect::Link>(
        ctx, interconnect::LinkParams{
                 "l0x_l0x", energy::LinkClass::L0xToL0x, 1,
                 energy::comp::kLinkL0xL0x,
                 energy::comp::kLinkL0xL0x});

    _plans.resize(p.numAccels);
    _earlyPlans.resize(p.numAccels);
    _tlb = std::make_unique<vm::AxTlb>(ctx, p.tlb, pt);
    _rmap = std::make_unique<vm::AxRmap>(ctx, vm::AxRmapParams{});
    _l1x = std::make_unique<L1xAcc>(ctx, p.l1x, llc, _tileLink.get(),
                                    _llcLink.get(), *_tlb, *_rmap);

    for (std::uint32_t a = 0; a < p.numAccels; ++a) {
        L0xParams lp;
        lp.name = "axc" + std::to_string(a) + ".l0x";
        lp.capacityBytes = p.l0xBytes;
        lp.assoc = p.l0xAssoc;
        lp.repl = p.l0xRepl;
        lp.writeThrough = p.writeThrough;
        lp.accel = static_cast<AccelId>(a);
        _l0xs.push_back(std::make_unique<L0x>(
            ctx, lp, *_l1x, _tileLink.get(),
            p.enableDx ? _fwdLink.get() : nullptr));
    }

    // Tile-level ACC invariants: these relate state *across* the
    // L0Xs and the L1X, so neither cache can check them alone.
    ctx.guard.registerInvariant(
        "tile", [this](const guard::InvariantContext &ic,
                       std::vector<std::string> &out) {
            // Single-writer: at most one dirty copy of a (line, pid)
            // across the tile's L0Xs (ACC write epochs are
            // exclusive; Dx moves the dirty copy, never clones it).
            std::map<std::pair<Addr, Pid>, int> dirty_copies;
            for (const auto &l0 : _l0xs) {
                l0->forEachValidLine([&](const mem::CacheLine &l) {
                    if (l.dirty)
                        ++dirty_copies[{l.lineAddr, l.pid}];
                });
            }
            for (const auto &[key, n] : dirty_copies) {
                if (n > 1) {
                    std::ostringstream os;
                    os << n << " dirty L0X copies of line 0x"
                       << std::hex << key.first;
                    out.push_back(os.str());
                }
            }
            // Lease bounds: every live L0X lease must be covered by
            // the L1X GTIME for that line — that is what lets the
            // L1X answer host demands without probing the L0Xs.
            for (const auto &l0 : _l0xs) {
                l0->forEachValidLine([&](const mem::CacheLine &l) {
                    Tick end = std::max(l.ltime, l.wepochEnd);
                    if (end <= ic.now)
                        return; // lease expired; copy is dead
                    const mem::CacheLine *up =
                        _l1x->findLine(l.lineAddr, l.pid);
                    // Host demand may have evicted the L1X line into
                    // the writeback buffer, where the PUTX stalls
                    // until GTIME expires.
                    bool buffered =
                        _l1x->hasWbBufferedLine(l.lineAddr, l.pid);
                    if (!(up && up->gtime >= end) && !buffered) {
                        std::ostringstream os;
                        os << "L0X lease (end=" << std::dec << end
                           << ") not covered by L1X GTIME @ 0x"
                           << std::hex << l.lineAddr;
                        out.push_back(os.str());
                    }
                    // Dirty copy implies an open write epoch, which
                    // must hold the L1X line locked so readers queue.
                    if (l.dirty && up && !up->locked) {
                        std::ostringstream os2;
                        os2 << "dirty L0X copy but L1X unlocked @ 0x"
                            << std::hex << l.lineAddr;
                        out.push_back(os2.str());
                    }
                });
            }
        });
}

void
FusionTile::installForwardPlan(
    AccelId producer,
    const std::unordered_map<Addr, trace::ForwardHint> &plan)
{
    if (!_p.enableDx)
        return;
    auto &plan_map = _plans[static_cast<std::size_t>(producer)];
    auto &early_map =
        _earlyPlans[static_cast<std::size_t>(producer)];
    plan_map.clear();
    early_map.clear();
    for (const auto &[line, hint] : plan) {
        fusion_assert(hint.consumer >= 0 &&
                          hint.consumer <
                              static_cast<AccelId>(_p.numAccels),
                      "bad forward consumer");
        L0x *target =
            _l0xs[static_cast<std::size_t>(hint.consumer)].get();
        plan_map[line] = target;
        if (hint.earlyOk)
            early_map[line] = target;
    }
    l0x(producer).setForwardTargets(&plan_map, &early_map);
}

void
FusionTile::finishInvocation(AccelId producer)
{
    if (!_p.enableDx)
        return;
    l0x(producer).forwardPlannedLines();
    l0x(producer).setForwardTargets(nullptr, nullptr);
    _plans[static_cast<std::size_t>(producer)].clear();
    _earlyPlans[static_cast<std::size_t>(producer)].clear();
}

void
FusionTile::drainAll()
{
    for (auto &l0 : _l0xs)
        l0->drainDirty();
}

} // namespace fusion::accel
