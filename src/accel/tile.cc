#include "accel/tile.hh"

#include "sim/logging.hh"

namespace fusion::accel
{

FusionTile::FusionTile(SimContext &ctx, const TileParams &p,
                       host::Llc &llc, const vm::PageTable &pt)
    : _ctx(ctx), _p(p)
{
    fusion_assert(p.numAccels > 0, "tile needs accelerators");

    _tileLink = std::make_unique<interconnect::Link>(
        ctx, interconnect::LinkParams{
                 "l0x_l1x", energy::LinkClass::AxcToL1x,
                 p.tileLinkLatency, energy::comp::kLinkL0xL1xMsg,
                 energy::comp::kLinkL0xL1xData});
    _llcLink = std::make_unique<interconnect::Link>(
        ctx, interconnect::LinkParams{
                 "l1x_l2", energy::LinkClass::L1xToL2,
                 p.llcLinkLatency, energy::comp::kLinkL1xL2Msg,
                 energy::comp::kLinkL1xL2Data});
    _fwdLink = std::make_unique<interconnect::Link>(
        ctx, interconnect::LinkParams{
                 "l0x_l0x", energy::LinkClass::L0xToL0x, 1,
                 energy::comp::kLinkL0xL0x,
                 energy::comp::kLinkL0xL0x});

    _plans.resize(p.numAccels);
    _earlyPlans.resize(p.numAccels);
    _tlb = std::make_unique<vm::AxTlb>(ctx, p.tlb, pt);
    _rmap = std::make_unique<vm::AxRmap>(ctx, vm::AxRmapParams{});
    _l1x = std::make_unique<L1xAcc>(ctx, p.l1x, llc, _tileLink.get(),
                                    _llcLink.get(), *_tlb, *_rmap);

    for (std::uint32_t a = 0; a < p.numAccels; ++a) {
        L0xParams lp;
        lp.name = "axc" + std::to_string(a) + ".l0x";
        lp.capacityBytes = p.l0xBytes;
        lp.assoc = p.l0xAssoc;
        lp.repl = p.l0xRepl;
        lp.writeThrough = p.writeThrough;
        lp.accel = static_cast<AccelId>(a);
        _l0xs.push_back(std::make_unique<L0x>(
            ctx, lp, *_l1x, _tileLink.get(),
            p.enableDx ? _fwdLink.get() : nullptr));
    }
}

void
FusionTile::installForwardPlan(
    AccelId producer,
    const std::unordered_map<Addr, trace::ForwardHint> &plan)
{
    if (!_p.enableDx)
        return;
    auto &plan_map = _plans[static_cast<std::size_t>(producer)];
    auto &early_map =
        _earlyPlans[static_cast<std::size_t>(producer)];
    plan_map.clear();
    early_map.clear();
    for (const auto &[line, hint] : plan) {
        fusion_assert(hint.consumer >= 0 &&
                          hint.consumer <
                              static_cast<AccelId>(_p.numAccels),
                      "bad forward consumer");
        L0x *target =
            _l0xs[static_cast<std::size_t>(hint.consumer)].get();
        plan_map[line] = target;
        if (hint.earlyOk)
            early_map[line] = target;
    }
    l0x(producer).setForwardTargets(&plan_map, &early_map);
}

void
FusionTile::finishInvocation(AccelId producer)
{
    if (!_p.enableDx)
        return;
    l0x(producer).forwardPlannedLines();
    l0x(producer).setForwardTargets(nullptr, nullptr);
    _plans[static_cast<std::size_t>(producer)].clear();
    _earlyPlans[static_cast<std::size_t>(producer)].clear();
}

void
FusionTile::drainAll()
{
    for (auto &l0 : _l0xs)
        l0->drainDirty();
}

} // namespace fusion::accel
