/**
 * @file
 * The FUSION accelerator tile: per-accelerator private L0X caches, a
 * banked shared L1X running the ACC protocol, the AX-TLB on the L1X
 * miss path, the AX-RMAP for host-forwarded requests, and the tile's
 * links (Figure 3, top).
 */

#ifndef FUSION_ACCEL_TILE_HH
#define FUSION_ACCEL_TILE_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "accel/l0x.hh"
#include "accel/l1x.hh"
#include "host/llc.hh"
#include "vm/ax_rmap.hh"
#include "vm/ax_tlb.hh"
#include "trace/analysis.hh"
#include "vm/page_table.hh"

namespace fusion::accel
{

/** Tile configuration. */
struct TileParams
{
    std::uint32_t numAccels = 2;
    std::uint64_t l0xBytes = 4 * 1024; ///< Table 2: 4 or 8 KB
    std::uint32_t l0xAssoc = 4;
    mem::ReplPolicy l0xRepl = mem::ReplPolicy::Lru;
    bool writeThrough = false; ///< Table 4 ablation
    bool enableDx = false;     ///< FUSION-Dx write forwarding
    L1xParams l1x;
    vm::AxTlbParams tlb;
    Cycles tileLinkLatency = 1; ///< L0X <-> L1X
    Cycles llcLinkLatency = 3;  ///< tile <-> host LLC entry
};

/** The assembled accelerator tile. */
class FusionTile
{
  public:
    FusionTile(SimContext &ctx, const TileParams &p, host::Llc &llc,
               const vm::PageTable &pt);

    L0x &l0x(AccelId a) { return *_l0xs[static_cast<std::size_t>(a)]; }
    L1xAcc &l1x() { return *_l1x; }
    vm::AxTlb &tlb() { return *_tlb; }
    vm::AxRmap &rmap() { return *_rmap; }
    interconnect::Link &tileLink() { return *_tileLink; }
    interconnect::Link &llcLink() { return *_llcLink; }
    interconnect::Link &fwdLink() { return *_fwdLink; }
    std::uint32_t numAccels() const { return _p.numAccels; }
    bool dxEnabled() const { return _p.enableDx; }

    /**
     * FUSION-Dx: install the forwarding plan for the invocation
     * about to run on @p producer (line -> consumer accelerator).
     */
    void installForwardPlan(
        AccelId producer,
        const std::unordered_map<Addr, trace::ForwardHint> &plan);

    /**
     * Invocation on @p producer finished: push planned dirty lines
     * to their consumers and clear the plan.
     */
    void finishInvocation(AccelId producer);

    /** Flush every dirty line in the tile to the host (teardown). */
    void drainAll();

  private:
    SimContext &_ctx;
    TileParams _p;
    std::unique_ptr<interconnect::Link> _tileLink;
    std::unique_ptr<interconnect::Link> _llcLink;
    std::unique_ptr<interconnect::Link> _fwdLink;
    std::unique_ptr<vm::AxTlb> _tlb;
    std::unique_ptr<vm::AxRmap> _rmap;
    std::unique_ptr<L1xAcc> _l1x;
    std::vector<std::unique_ptr<L0x>> _l0xs;
    /// Per-producer forwarding plans (invocations may overlap).
    std::vector<std::unordered_map<Addr, L0x *>> _plans;
    std::vector<std::unordered_map<Addr, L0x *>> _earlyPlans;
};

} // namespace fusion::accel

#endif // FUSION_ACCEL_TILE_HH
