/**
 * @file
 * TileFrontend: one uniform interface over the four accelerator-side
 * organizations the paper compares (SCRATCH scratchpads + oracle
 * DMA, the SHARED MESI L1X, the FUSION ACC tile, and the
 * FUSION-MESI directory tile).
 *
 * core::System used to wire each organization through two parallel
 * `switch (cfg.kind)` blocks over per-kind member soup; every new
 * consumer of "the accelerator side" (the AUTO-mode orchestrator,
 * tests, teardown) had to re-enumerate the kinds. A frontend owns
 * its organization's components, launches invocations on it, and
 * reports its counters — System holds frontends, not organizations.
 *
 * Under a static SystemKind exactly one frontend exists and the
 * construction order matches the pre-refactor wiring, so stats,
 * energy components, guard registrations and event timing — and
 * therefore the serialized RunResult — are byte-identical to the
 * old switch-based System (tests/test_frontend_equivalence.cc pins
 * this against golden hashes). Under SystemKind::Auto every static
 * frontend is constructed and the orchestrator activates one per
 * invocation; same-named stats/energy entries from different
 * frontends deliberately merge into aggregate counters.
 */

#ifndef FUSION_ACCEL_TILE_FRONTEND_HH
#define FUSION_ACCEL_TILE_FRONTEND_HH

#include <memory>
#include <vector>

#include "accel/accel_core.hh"
#include "accel/tile.hh"
#include "core/results.hh"
#include "core/system_config.hh"
#include "host/llc.hh"
#include "sim/small_fn.hh"
#include "trace/trace.hh"
#include "vm/page_table.hh"

namespace fusion
{
namespace shard
{
class Router;
}
} // namespace fusion

namespace fusion::accel
{

/** Everything a frontend needs to assemble its organization. */
struct FrontendEnv
{
    SimContext &ctx;
    const core::SystemConfig &cfg;
    const trace::Program &prog;
    host::Llc &llc;
    const vm::PageTable &pt;
    /** max(1, prog.accelCount()) — one core/L0X/SPM per accel. */
    std::uint32_t numAccels;
};

/**
 * Online counter snapshot the orchestrator differences across an
 * invocation (working-set, miss-rate and forwarding estimates).
 */
struct FrontendCounters
{
    std::uint64_t l0xHits = 0;
    std::uint64_t l0xMisses = 0;
    std::uint64_t l1xHits = 0;
    std::uint64_t l1xMisses = 0;
    std::uint64_t l0xForwards = 0;
    std::uint64_t dmaOps = 0;
    std::uint64_t dmaBytes = 0;
};

/** One accelerator-side organization behind a uniform interface. */
class TileFrontend
{
  public:
    explicit TileFrontend(core::SystemKind kind) : _kind(kind) {}
    virtual ~TileFrontend() = default;

    TileFrontend(const TileFrontend &) = delete;
    TileFrontend &operator=(const TileFrontend &) = delete;

    /** The static organization this frontend implements. */
    core::SystemKind kind() const { return _kind; }

    /**
     * Run invocation @p idx of the bound program on @p core through
     * this organization's memory port; @p done fires when the
     * invocation — including any frontend epilogue such as FUSION's
     * end-of-invocation forwarding — has completed.
     */
    virtual void launch(std::size_t idx, AccelCore &core,
                        sim::SmallFn<void()> done) = 0;

    /** Whether data-independent invocations may overlap (SCRATCH
     *  cannot: one DMA engine serializes the windows). */
    virtual bool supportsOverlap() const { return true; }

    /**
     * Orchestrator hooks. activate() runs before the first
     * invocation after a switch to this frontend; deactivate() when
     * switching away, flushing whatever protocol state the
     * organization can flush (FUSION drains dirty L0X/L1X lines;
     * the LLC directory keeps the rest coherent across frontends).
     */
    virtual void activate() {}
    virtual void deactivate() {}

    /** Current counter totals (monotonic; snapshot + difference). */
    virtual FrontendCounters counters() const = 0;

    /**
     * Accumulate this organization's counters into @p r. Additive
     * on purpose: under AUTO every constructed frontend reports
     * into the same RunResult.
     */
    virtual void collect(core::RunResult &r) const = 0;

    /** Cycles accelerators sat blocked on DMA (SCRATCH only). */
    virtual Tick dmaWaitCycles() const { return 0; }

    /**
     * Sharded kernel (DESIGN.md §8): partition this organization
     * onto @p router's domains — declare each tile's LLC ring link a
     * cross-domain edge and record which domain every accelerator
     * executes in. Default: everything stays in domain 0 (SCRATCH —
     * its DMA engine talks to the LLC synchronously, so it degrades
     * to the serial partition).
     */
    virtual void bindShard(shard::Router &router) { (void)router; }

    /** The FUSION tile set, or null (System::tiles() accessor). */
    virtual std::vector<std::unique_ptr<FusionTile>> *fusionTiles()
    {
        return nullptr;
    }

  private:
    core::SystemKind _kind;
};

/**
 * Construct the frontend for one *static* @p kind (panics on
 * SystemKind::Auto — the orchestrator composes static frontends).
 */
std::unique_ptr<TileFrontend>
makeTileFrontend(core::SystemKind kind, const FrontendEnv &env);

} // namespace fusion::accel

#endif // FUSION_ACCEL_TILE_FRONTEND_HH
