#include "accel/dma_engine.hh"

#include "sim/logging.hh"

namespace fusion::accel
{

DmaEngine::DmaEngine(SimContext &ctx, const DmaParams &p,
                     host::Llc &llc, interconnect::Link *dma_link,
                     const vm::PageTable &pt)
    : _ctx(ctx), _p(p), _llc(llc), _link(dma_link), _pt(pt)
{
    _stats = &ctx.stats.root().child("dma");
    _stChunkLatency = &_stats->histogram("chunk_latency", 0, 1024, 32);

    _tracer = ctx.obs.tracer();
    if (_tracer)
        _track = _tracer->registerTrack("dma");
    ctx.obs.registerGauge("dma.outstanding", [this] {
        return static_cast<double>(_outstanding);
    });
    ctx.obs.registerCounter("dma.line_transfers", [this] {
        return static_cast<double>(_lineTransfers);
    });

    ctx.guard.registerSnapshot("dma", [this] {
        guard::ComponentState s;
        s.outstanding = _outstanding;
        if (_state != DmaState::Idle) {
            s.detail = std::string(_state == DmaState::Fill
                                       ? "fill"
                                       : "drain") +
                       " pos=" + std::to_string(_pos) + "/" +
                       std::to_string(_lines ? _lines->size() : 0);
        }
        return s;
    });
    ctx.guard.registerInvariant(
        "dma", [this](const guard::InvariantContext &ic,
                      std::vector<std::string> &out) {
            if (!ic.atEnd)
                return;
            if (_state != DmaState::Idle)
                out.push_back("engine not idle at end-of-sim");
            if (_outstanding != 0) {
                out.push_back(
                    std::to_string(_outstanding) +
                    " transfer(s) outstanding at end-of-sim");
            }
            // Line conservation: every line handed to fill()/drain()
            // must have been transferred. Catches a truncated DMA op
            // even when the run completes cleanly, which would
            // otherwise be a silent divergence.
            if (_lineTransfers != _linesPlanned) {
                out.push_back(
                    "line transfers " +
                    std::to_string(_lineTransfers) +
                    " != planned " + std::to_string(_linesPlanned));
            }
        });
}

void
DmaEngine::fill(const std::vector<Addr> &vlines, Pid pid,
                mem::Scratchpad &spm, sim::SmallFn<void()> done)
{
    fusion_assert(_state == DmaState::Idle, "DMA engine busy");
    _state = DmaState::Fill;
    _lines = &vlines;
    _pid = pid;
    _spm = &spm;
    _pos = 0;
    _outstanding = 0;
    _done = std::move(done);
    _linesPlanned += vlines.size();
    ++_dmaOps;
    _stats->scalar("fill_ops") += 1;
    // Whole-operation span, keyed by the op ordinal (ops are
    // serialized, so the key only needs to be unique vs chunk keys).
    if (_tracer)
        _tracer->begin(_track, obs::SpanKind::Dma,
                       static_cast<Addr>(_dmaOps), _ctx.now());
    pump();
}

void
DmaEngine::drain(const std::vector<Addr> &vlines, Pid pid,
                 mem::Scratchpad &spm, sim::SmallFn<void()> done)
{
    fusion_assert(_state == DmaState::Idle, "DMA engine busy");
    _state = DmaState::Drain;
    _lines = &vlines;
    _pid = pid;
    _spm = &spm;
    _pos = 0;
    _outstanding = 0;
    _done = std::move(done);
    _linesPlanned += vlines.size();
    ++_dmaOps;
    _stats->scalar("drain_ops") += 1;
    if (_tracer)
        _tracer->begin(_track, obs::SpanKind::Dma,
                       static_cast<Addr>(_dmaOps), _ctx.now());
    pump();
}

void
DmaEngine::pump()
{
    while (_pos < _lines->size() &&
           _outstanding < _p.maxOutstanding) {
        if (_ctx.guard.fireFault(guard::FaultKind::TruncateDma)) {
            // Silently abandon the rest of the op; in-flight lines
            // still complete, then the op reports done. Detected by
            // the line-conservation invariant at end-of-sim.
            _pos = _lines->size();
            break;
        }
        Addr vline = (*_lines)[_pos];
        Addr pline = lineAlign(_pt.translate(_pid, vline));
        ++_pos;
        ++_outstanding;
        ++_lineTransfers;
        _stats->scalar("line_transfers") += 1;
        bool is_drain = (_state == DmaState::Drain);
        // Scratchpad side of the transfer.
        _spm->dmaLineAccess(!is_drain);
        Tick t0 = _ctx.now();
        if (_tracer)
            _tracer->begin(_track, obs::SpanKind::Dma, pline, t0);
        auto completion = [this, pline, t0] {
            --_outstanding;
            _stChunkLatency->sample(
                static_cast<double>(_ctx.now() - t0));
            if (_tracer)
                _tracer->end(_track, obs::SpanKind::Dma, pline,
                             _ctx.now());
            _ctx.guard.noteProgress();
            pump();
        };
        if (_ctx.guard.fireFault(guard::FaultKind::StallDma)) {
            // One line's completion stalls by the fault delay; the
            // transfer itself is not lost, so a clean run only
            // shifts in time (timing-only fault kind).
            Cycles stall = _ctx.guard.faultDelay();
            auto stalled = [this, stall, completion] {
                _ctx.eq.scheduleIn(stall, completion);
            };
            if (is_drain) {
                _llc.dmaWrite(pline, _link, stalled);
            } else {
                _llc.dmaRead(pline, _link, stalled);
            }
        } else if (is_drain) {
            _llc.dmaWrite(pline, _link, completion);
        } else {
            _llc.dmaRead(pline, _link, completion);
        }
    }
    if (_pos >= _lines->size() && _outstanding == 0 &&
        _state != DmaState::Idle) {
        _state = DmaState::Idle;
        if (_tracer)
            _tracer->end(_track, obs::SpanKind::Dma,
                         static_cast<Addr>(_dmaOps), _ctx.now());
        auto done = std::move(_done); // move empties _done
        done();
    }
}

} // namespace fusion::accel
