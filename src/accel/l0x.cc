#include "accel/l0x.hh"

#include <sstream>

#include "energy/sram_model.hh"
#include "sim/logging.hh"

namespace fusion::accel
{

using interconnect::MsgClass;

namespace
{
/// Word-granularity accelerator accesses cost a fraction of a full
/// line read (only one subarray word line fires).
constexpr double kWordAccessScale = 0.5;

/** Render sorted line addresses as "[0x40,0x80,...]". */
std::string
hexLines(const std::vector<Addr> &lines)
{
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < lines.size(); ++i)
        os << (i ? "," : "") << "0x" << std::hex << lines[i];
    os << ']';
    return os.str();
}
} // namespace

L0x::L0x(SimContext &ctx, const L0xParams &p, L1xAcc &l1x,
         interconnect::Link *tile_link, interconnect::Link *fwd_link)
    : _ctx(ctx), _p(p), _l1x(l1x), _tileLink(tile_link),
      _fwdLink(fwd_link),
      _tags(mem::CacheGeometry{p.capacityBytes, p.assoc, kLineBytes,
                               p.repl})
{
    energy::SramParams sp;
    sp.capacityBytes = p.capacityBytes;
    sp.assoc = p.assoc;
    sp.banks = 1;
    sp.kind = energy::SramKind::TimestampCache;
    _fig = energy::evaluateSram(sp);
    _ecL0x = ctx.energy.component(energy::comp::kL0x);
    _setWbTime.assign(_tags.numSets(), kTickNever);
    _stats = &ctx.stats.root().child(p.name);
    _stReads = &_stats->scalar("reads");
    _stWrites = &_stats->scalar("writes");
    _stHits = &_stats->scalar("hits");
    _stLoadMisses = &_stats->scalar("load_misses");
    _stStoreMisses = &_stats->scalar("store_misses");
    _stAccessLatency = &_stats->histogram("access_latency", 0, 64, 16);
    _stHitLatency = &_stats->histogram("hit_latency", 0, 16, 16);
    _stMissLatency = &_stats->histogram("miss_latency", 0, 512, 32);
    _stWbDelay = &_stats->histogram("wb_delay", 0, 512, 32);

    _tracer = ctx.obs.tracer();
    if (_tracer)
        _track = _tracer->registerTrack(p.name);
    ctx.obs.registerGauge(p.name + ".mshrs", [this] {
        return static_cast<double>(_mshrs.size());
    });
    ctx.obs.registerCounter(p.name + ".misses", [this] {
        return static_cast<double>(_misses);
    });

    ctx.guard.registerSnapshot(p.name, [this] {
        guard::ComponentState s;
        s.outstanding = _mshrs.size();
        if (_mshrs.size() != 0)
            s.detail = "mshr_lines=" + hexLines(_mshrs.pendingLines());
        return s;
    });
    ctx.guard.registerInvariant(
        p.name,
        [this](const guard::InvariantContext &ic,
               std::vector<std::string> &out) {
            if (!ic.atEnd)
                return;
            // End-of-sim: every miss completed and every write
            // epoch expired + wrote back (MSHR/writeback leaks).
            if (_mshrs.size() != 0) {
                out.push_back(
                    "leaked MSHRs at end-of-sim: " +
                    hexLines(_mshrs.pendingLines()));
            }
            _tags.forEachValid([&](const mem::CacheLine &l) {
                if (l.dirty) {
                    out.push_back(
                        "dirty line at end-of-sim: " +
                        hexLines({l.lineAddr}));
                }
            });
        });
}

void
L0x::setFunction(Cycles lease_len, Pid pid)
{
    fusion_assert(lease_len > 0, "zero lease length");
    _leaseLen = lease_len;
    _pid = pid;
}

void
L0x::setForwardTargets(
    const std::unordered_map<Addr, L0x *> *targets,
    const std::unordered_map<Addr, L0x *> *early_targets)
{
    _fwdTargets = targets;
    _fwdEarly = early_targets;
}

void
L0x::bookAccess(bool is_write, bool line_granular)
{
    double pj = is_write ? _fig.writePj : _fig.readPj;
    if (!line_granular)
        pj *= kWordAccessScale;
    _ctx.energy.add(_ecL0x, pj);
    *(is_write ? _stWrites : _stReads) += 1;
}

void
L0x::access(Addr va, std::uint32_t size, bool is_write,
            PortDone done)
{
    (void)size; // sub-line accesses never straddle lines in traces
    Addr vline = lineAlign(va);
    bookAccess(is_write, false);
    Tick start = _ctx.now();
    if (_tracer)
        _tracer->begin(_track, obs::SpanKind::Access, vline, start);
    // Both wrappers below already exceed SmallFn's inline buffer (they
    // carry a moved-in SmallFn), so the extra captures ride in the
    // same recycled slab block — no new allocation class.
    PortDone timed = [this, start, vline,
                      done = std::move(done)]() mutable {
        _stAccessLatency->sample(
            static_cast<double>(_ctx.now() - start));
        if (_tracer)
            _tracer->end(_track, obs::SpanKind::Access, vline,
                         _ctx.now());
        done();
    };
    _ctx.eq.scheduleIn(_fig.latency,
                       [this, vline, is_write, start,
                        done = std::move(timed)]() mutable {
                           lookup(vline, is_write, start,
                                  std::move(done));
                       });
}

void
L0x::lookup(Addr vline, bool is_write, Tick start, PortDone done,
            bool is_retry)
{
    Tick now = _ctx.now();
    mem::CacheLine *line = _tags.find(vline, _pid);
    bool lease_valid =
        line && (line->ltime >= now || line->wepochEnd >= now);

    auto sampleDone = [&] {
        (is_retry ? _stMissLatency : _stHitLatency)
            ->sample(static_cast<double>(now - start));
    };

    if (!is_write) {
        if (lease_valid) {
            if (!is_retry) {
                ++_hits;
                *_stHits += 1;
            }
            _tags.touch(*line);
            sampleDone();
            done();
            return;
        }
    } else {
        if (_p.writeThrough) {
            // Write-through: update any local copy, push the word
            // to the L1X (Table 4), complete immediately.
            if (lease_valid)
                _tags.touch(*line);
            Addr wt_line = vline;
            _tileLink->send(MsgClass::Data, _tileLink->latency(),
                            [this, wt_line] {
                _l1x.writeThroughStore(_p.accel, wt_line, _pid);
            });
            sampleDone();
            done();
            return;
        }
        if (line && line->wepochEnd >= now) {
            // Store hit under our write epoch.
            if (!is_retry) {
                ++_hits;
                *_stHits += 1;
            }
            _tags.touch(*line);
            line->dirty = true;
            noteWriteEpoch(vline, line->wepochEnd);
            sampleDone();
            done();
            return;
        }
    }

    // Miss (or store without a write epoch): go to the L1X.
    if (!is_retry) {
        ++_misses;
        *(is_write ? _stStoreMisses : _stLoadMisses) += 1;
    }
    bool need_data = !lease_valid;
    bool primary = _mshrs.allocate(
        vline,
        [this, vline, is_write, start,
         done = std::move(done)]() mutable {
            lookup(vline, is_write, start, std::move(done), true);
        });
    if (primary) {
        if (_tracer)
            _tracer->phase(_track, obs::SpanKind::Access, vline,
                           "miss", now);
        requestMiss(vline, is_write, need_data);
    }
}

void
L0x::requestMiss(Addr vline, bool is_write, bool need_data)
{
    // Fault injection: swallow the request after booking the MSHR,
    // leaving the miss permanently in flight (watchdog test).
    if (_ctx.guard.fireFault(guard::FaultKind::LeakMshr))
        return;
    // Request message crosses the L0X->L1X link.
    _tileLink->send(
        MsgClass::Control, _tileLink->latency(),
        [this, vline, is_write, need_data] {
            _l1x.requestLease(
                _p.accel, vline, _pid, _leaseLen, is_write,
                need_data,
                [this, vline, is_write](const LeaseGrant &g) {
                    onGrant(vline, is_write, g.leaseEnd);
                });
        });
}

void
L0x::onGrant(Addr vline, bool is_write, Tick lease_end)
{
    mem::CacheLine *line = _tags.find(vline, _pid);
    if (!line) {
        line = allocateFrame(vline);
        ++_fills;
        _stats->scalar("fills") += 1;
        bookAccess(true, true); // line fill
    }
    if (lease_end > line->ltime)
        line->ltime = lease_end;
    if (is_write)
        line->wepochEnd = lease_end;
    // Fault injection: hold the line past the granted lease, a
    // direct ACC lease-validity violation (invariant test).
    if (_ctx.guard.fireFault(guard::FaultKind::CorruptLease))
        line->ltime += _ctx.guard.faultDelay();
    _tags.touch(*line);
    _mshrs.complete(vline);
    _ctx.guard.noteProgress();
}

mem::CacheLine *
L0x::allocateFrame(Addr vline)
{
    mem::CacheLine *way = _tags.victim(vline);
    fusion_assert(way, "L0X victim selection failed");
    if (way->valid) {
        _stats->scalar("evictions") += 1;
        if (way->dirty) {
            // Early self-downgrade on capacity eviction.
            emitDirtyLine(*way);
        }
        _tags.invalidate(*way);
    }
    _tags.install(*way, vline, _pid);
    return way;
}

void
L0x::noteWriteEpoch(Addr vline, Tick epoch_end)
{
    std::uint32_t set = _tags.setIndex(vline);
    if (epoch_end < _setWbTime[set])
        _setWbTime[set] = epoch_end;
    scheduleDowngrade(epoch_end);
}

void
L0x::scheduleDowngrade(Tick when)
{
    if (when >= _nextDowngrade)
        return;
    _nextDowngrade = when;
    _ctx.eq.schedule(when, [this] { downgradeSweep(); },
                     EventPriority::Maintenance);
}

void
L0x::downgradeSweep()
{
    Tick now = _ctx.now();
    if (now < _nextDowngrade)
        return; // superseded by an earlier sweep
    _nextDowngrade = kTickNever;
    _stats->scalar("downgrade_sweeps") += 1;

    Tick next = kTickNever;
    for (std::uint32_t set = 0; set < _tags.numSets(); ++set) {
        if (_setWbTime[set] > now) {
            next = std::min(next, _setWbTime[set]);
            continue; // filtered: no expired epoch in this set
        }
        Tick set_next = kTickNever;
        _tags.forEachValidInSet(set, [&](mem::CacheLine &l) {
            if (!l.dirty)
                return;
            if (l.wepochEnd <= now) {
                emitDirtyLine(l);
            } else {
                set_next = std::min(set_next, l.wepochEnd);
            }
        });
        _setWbTime[set] = set_next;
        next = std::min(next, set_next);
    }
    if (next != kTickNever)
        scheduleDowngrade(next);
}

void
L0x::emitDirtyLine(mem::CacheLine &line, bool allow_forward)
{
    Addr vline = line.lineAddr;
    Pid pid = line.pid;
    bookAccess(false, true); // read the line out of the array
    if (line.wepochEnd > 0 && _ctx.now() >= line.wepochEnd) {
        // How long the dirty line lingered past its write epoch
        // before the self-downgrade reached it.
        _stWbDelay->sample(
            static_cast<double>(_ctx.now() - line.wepochEnd));
    }

    // Forwarding happens only at end-of-invocation self-eviction
    // (Figure 5: the producer forwards when it completes
    // processing). Mid-run epoch expiries and capacity evictions
    // write back normally — a mid-run push would let the
    // producer's own later accesses stall on the lease it just
    // transferred.
    const auto *targets = allow_forward ? _fwdTargets : nullptr;
    if (targets) {
        auto it = targets->find(vline);
        if (it != targets->end() && it->second != this &&
            it->second->canAcceptForward(vline)) {
            // FUSION-Dx: push the dirty line straight to the
            // consumer, notify the L1X with a 1-flit lease transfer.
            ++_forwardsOut;
            _stats->scalar("forwards_out") += 1;
            L0x *consumer = it->second;
            fusion_assert(_fwdLink, "forwarding without a fwd link");
            Tick lease_end = _ctx.now() + consumer->_leaseLen;
            _fwdLink->send(MsgClass::Data, _fwdLink->latency(),
                           [consumer, vline, pid, lease_end] {
                               consumer->receiveForward(
                                   vline, pid, lease_end, true);
                           });
            _tileLink->send(MsgClass::Control, _tileLink->latency(),
                            [this, vline, pid, lease_end] {
                                _l1x.leaseTransfer(vline, pid,
                                                   lease_end,
                                                   true);
                            });
            line.dirty = false;
            line.wepochEnd = 0;
            // Self-eviction: the producer's copy is gone.
            _tags.invalidate(line);
            return;
        }
    }

    // Fault injection: clean the local copy but never send the
    // writeback, leaving the L1X write-epoch lock held forever.
    if (_ctx.guard.fireFault(guard::FaultKind::DropWriteback)) {
        line.dirty = false;
        line.wepochEnd = 0;
        return;
    }

    ++_writebacks;
    _stats->scalar("writebacks") += 1;
    _tileLink->send(MsgClass::Data, _tileLink->latency(),
                    [this, vline, pid] {
        _l1x.writeback(_p.accel, vline, pid);
    });
    line.dirty = false;
    line.wepochEnd = 0;
}

void
L0x::forwardPlannedLines()
{
    if (!_fwdTargets)
        return;
    _tags.forEachValid([this](mem::CacheLine &l) {
        auto it = _fwdTargets->find(l.lineAddr);
        if (it == _fwdTargets->end() || it->second == this)
            return;
        if (l.dirty) {
            emitDirtyLine(l, true);
            return;
        }
        // Clean (possibly lease-expired) planned line: the trace
        // analysis guarantees the next toucher is the consumer, so
        // the producer's copy is still the freshest — push it with
        // a fresh read lease. No write responsibility moves, so
        // the L1X only extends the lease (no lock).
        L0x *consumer = it->second;
        if (!consumer->canAcceptForward(l.lineAddr))
            return;
        ++_forwardsOut;
        _stats->scalar("forwards_out") += 1;
        fusion_assert(_fwdLink, "forwarding without a fwd link");
        Addr vline = l.lineAddr;
        Pid pid = l.pid;
        bookAccess(false, true);
        Tick lease_end = _ctx.now() + consumer->_leaseLen;
        _fwdLink->send(MsgClass::Data, _fwdLink->latency(),
                       [consumer, vline, pid, lease_end] {
                           consumer->receiveForward(
                               vline, pid, lease_end, false);
                       });
        _tileLink->send(MsgClass::Control, _tileLink->latency(),
                        [this, vline, pid, lease_end] {
                            _l1x.leaseTransfer(vline, pid,
                                               lease_end, false);
                        });
        _tags.invalidate(l); // self-eviction
    });
}

bool
L0x::canAcceptForward(Addr vline) const
{
    Tick now = _ctx.now();
    auto *self = const_cast<L0x *>(this);
    mem::CacheLine *way = self->_tags.victim(
        vline, [now](const mem::CacheLine &l) {
            return !l.dirty && l.ltime < now && l.wepochEnd < now;
        });
    return way != nullptr;
}

void
L0x::receiveForward(Addr vline, Pid pid, Tick lease_end,
                    bool dirty)
{
    mem::CacheLine *line = _tags.find(vline, pid);
    if (!line) {
        Tick now = _ctx.now();
        mem::CacheLine *way = _tags.victim(
            vline, [now](const mem::CacheLine &l) {
                return !l.dirty && l.ltime < now &&
                       l.wepochEnd < now;
            });
        if (!way) {
            // The set filled between the producer's probe and the
            // push landing: degrade to a normal writeback so the
            // dirty data reaches the L1X.
            _stats->scalar("forwards_rejected") += 1;
            _tileLink->send(MsgClass::Data, _tileLink->latency(),
                            [this, vline, pid] {
                                _l1x.writeback(_p.accel, vline,
                                               pid);
                            });
            return;
        }
        if (way->valid)
            _stats->scalar("evictions") += 1;
        _tags.install(*way, vline, pid);
        line = way;
        ++_fills;
    }
    _stats->scalar("forwards_in") += 1;
    bookAccess(true, true);
    line->ltime = std::max(line->ltime, lease_end);
    _tags.touch(*line);
    if (dirty) {
        line->wepochEnd = lease_end;
        line->dirty = true;
        noteWriteEpoch(vline, lease_end);
    }
}

void
L0x::drainDirty()
{
    _tags.forEachValid([this](mem::CacheLine &l) {
        if (l.dirty)
            emitDirtyLine(l);
    });
}

} // namespace fusion::accel
