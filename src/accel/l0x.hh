/**
 * @file
 * Per-accelerator private L0X cache: the ACC protocol's client side
 * (Section 3.2).
 *
 * The L0X "caches data and acts like a scratchpad": 4-8 KB, one
 * cycle, word-granularity accesses. Lines carry the LTIME lease
 * timestamp — a line is valid only while its lease is unexpired, so
 * the L0X *self-invalidates* and never receives coherence traffic.
 * Stores are write-cached (the paper's key write optimization): a
 * store acquires a write epoch from the L1X, dirties the line
 * locally, and a *self-downgrade* writes the line back when the
 * epoch expires. Downgrade checks are filtered by per-set and
 * per-cache writeback timestamps so no full sweep is ever needed.
 *
 * For FUSION-Dx the L0X additionally implements write forwarding:
 * dirty lines whose next reader is a different accelerator are
 * pushed straight into the consumer's L0X over the cheap 0.1 pJ/B
 * L0X-L0X link, with a 1-flit lease-transfer notice to the L1X.
 *
 * A write-through mode backs the Table 4 ablation.
 */

#ifndef FUSION_ACCEL_L0X_HH
#define FUSION_ACCEL_L0X_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "accel/l1x.hh"
#include "energy/sram_model.hh"
#include "accel/mem_port.hh"
#include "interconnect/link.hh"
#include "mem/cache_array.hh"
#include "mem/mshr.hh"
#include "obs/span_tracer.hh"
#include "sim/sim_context.hh"

namespace fusion::accel
{

/** L0X configuration (Table 2: 4 or 8 KB). */
struct L0xParams
{
    std::string name = "axc0.l0x";
    std::uint64_t capacityBytes = 4 * 1024;
    std::uint32_t assoc = 4;
    mem::ReplPolicy repl = mem::ReplPolicy::Lru;
    bool writeThrough = false; ///< Table 4 ablation
    AccelId accel = 0;
};

/** The private L0X cache controller. */
class L0x : public MemPort
{
  public:
    /**
     * @param tile_link the shared L0X<->L1X link (requests and
     *        writebacks booked here)
     * @param fwd_link the direct L0X<->L0X forwarding link
     *        (FUSION-Dx); may be nullptr when Dx is disabled
     */
    L0x(SimContext &ctx, const L0xParams &p, L1xAcc &l1x,
        interconnect::Link *tile_link,
        interconnect::Link *fwd_link);

    /** Set the active function's lease length and process. */
    void setFunction(Cycles lease_len, Pid pid);

    /**
     * Install the FUSION-Dx forwarding plan for the current
     * invocation: line -> consumer L0X. Cleared by passing nullptr.
     */
    void setForwardTargets(
        const std::unordered_map<Addr, L0x *> *targets,
        const std::unordered_map<Addr, L0x *> *early_targets);

    /**
     * FUSION-Dx: invocation finished — self-evict and forward every
     * dirty line with a planned consumer (Figure 5, right).
     */
    void forwardPlannedLines();

    /**
     * True if a pushed line could be installed without displacing
     * live data (an invalid way, or a clean way whose lease has
     * expired). Producers probe this before forwarding; pushes the
     * consumer cannot hold fall back to a normal L1X writeback.
     */
    bool canAcceptForward(Addr vline) const;

    /**
     * Receive a pushed line from a producer L0X (FUSION-Dx).
     * @p dirty moves write responsibility with the line.
     */
    void receiveForward(Addr vline, Pid pid, Tick lease_end,
                        bool dirty);

    /** Write back every dirty line now (teardown barrier). */
    void drainDirty();

    // MemPort interface (called by the accelerator core).
    void access(Addr va, std::uint32_t size, bool is_write,
                PortDone done) override;

    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }
    std::uint64_t writebacksSent() const { return _writebacks; }
    std::uint64_t fills() const { return _fills; }
    std::uint64_t forwardsOut() const { return _forwardsOut; }
    Cycles latency() const { return _fig.latency; }

    /** Iterate valid lines (guard invariant checkers). */
    void
    forEachValidLine(
        const std::function<void(const mem::CacheLine &)> &fn) const
    {
        _tags.forEachValid(fn);
    }
    /** In-flight misses (guard snapshots / leak checks). */
    std::size_t outstandingMshrs() const { return _mshrs.size(); }

  private:
    void lookup(Addr vline, bool is_write, Tick start, PortDone done,
                bool is_retry = false);
    void requestMiss(Addr vline, bool is_write, bool need_data);
    void onGrant(Addr vline, bool is_write, Tick lease_end);
    mem::CacheLine *allocateFrame(Addr vline);
    /** Register a write epoch in the downgrade filter timestamps. */
    void noteWriteEpoch(Addr vline, Tick epoch_end);
    void scheduleDowngrade(Tick when);
    void downgradeSweep();
    /** Write the line back — or, when @p allow_forward and a
     *  consumer is planned, push it to that consumer's L0X. */
    void emitDirtyLine(mem::CacheLine &line,
                       bool allow_forward = false);
    void bookAccess(bool is_write, bool line_granular);

    SimContext &_ctx;
    L0xParams _p;
    L1xAcc &_l1x;
    interconnect::Link *_tileLink;
    interconnect::Link *_fwdLink;
    mem::CacheArray _tags;
    mem::MshrFile _mshrs;
    energy::SramFigures _fig;
    energy::ComponentId _ecL0x = energy::kInvalidComponent;
    Cycles _leaseLen = 500;
    Pid _pid = 1;
    const std::unordered_map<Addr, L0x *> *_fwdTargets = nullptr;
    const std::unordered_map<Addr, L0x *> *_fwdEarly = nullptr;

    /// Downgrade filters: earliest write-epoch end per set, and the
    /// minimum over all sets (Section 3.2, self-downgrade).
    std::vector<Tick> _setWbTime;
    Tick _nextDowngrade = kTickNever;

    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
    std::uint64_t _writebacks = 0;
    std::uint64_t _fills = 0;
    std::uint64_t _forwardsOut = 0;
    stats::Group *_stats;
    // Per-access counters/histogram resolved once at construction.
    stats::Scalar *_stReads;
    stats::Scalar *_stWrites;
    stats::Scalar *_stHits;
    stats::Scalar *_stLoadMisses;
    stats::Scalar *_stStoreMisses;
    stats::Histogram *_stAccessLatency;
    stats::Histogram *_stHitLatency;
    stats::Histogram *_stMissLatency;
    /// Self-downgrade lag: writeback tick minus write-epoch expiry.
    stats::Histogram *_stWbDelay;
    /// Telemetry span tracer (null when tracing is off).
    obs::SpanTracer *_tracer = nullptr;
    std::uint32_t _track = 0;
};

} // namespace fusion::accel

#endif // FUSION_ACCEL_L0X_HH
