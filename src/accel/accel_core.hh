/**
 * @file
 * Fixed-function accelerator core timing model.
 *
 * Following the paper's Aladdin-style methodology (Section 4), the
 * dynamic trace of an offloaded function is replayed cycle by cycle:
 * compute bursts retire at the datapath width per cycle, and memory
 * operations issue in program order through a non-blocking port with
 * at most MLP operations outstanding (the per-function memory-level
 * parallelism of Table 1).
 *
 * Compute energy is an Aladdin-style activity count: 0.5 pJ per
 * integer op [Balfour] and 2 pJ per floating-point op, booked
 * against the axc.compute component.
 */

#ifndef FUSION_ACCEL_ACCEL_CORE_HH
#define FUSION_ACCEL_ACCEL_CORE_HH

#include "accel/mem_port.hh"
#include "sim/sim_context.hh"
#include "trace/trace.hh"

namespace fusion::accel
{

/** Accelerator datapath parameters. */
struct AccelCoreParams
{
    std::uint32_t datapathWidth = 4; ///< compute ops per cycle
    /// Store-buffer entries: stores retire into the buffer and
    /// drain asynchronously (loads block on data, stores do not).
    std::uint32_t storeBuffer = 8;
    double intOpPj = 0.5;
    double fpOpPj = 2.0;
};

/** Trace-replay fixed-function accelerator. */
class AccelCore
{
  public:
    AccelCore(SimContext &ctx, const AccelCoreParams &p,
              AccelId id);

    /**
     * Replay ops [@p begin_op, @p end_op) of @p inv through
     * @p port with at most @p mlp memory ops outstanding.
     * @p done fires when the last op commits.
     */
    void run(const trace::Invocation &inv, std::uint32_t mlp,
             MemPort &port, std::size_t begin_op, std::size_t end_op,
             sim::SmallFn<void()> done);

    /** Convenience: replay the whole invocation. */
    void
    run(const trace::Invocation &inv, std::uint32_t mlp,
        MemPort &port, sim::SmallFn<void()> done)
    {
        run(inv, mlp, port, 0, inv.ops.size(), std::move(done));
    }

    AccelId id() const { return _id; }
    bool busy() const { return _active; }
    std::uint64_t memOps() const { return _memOps; }

  private:
    void pump();

    SimContext &_ctx;
    AccelCoreParams _p;
    AccelId _id;

    const trace::Invocation *_inv = nullptr;
    MemPort *_port = nullptr;
    std::uint32_t _mlp = 1;
    std::size_t _pos = 0;
    std::size_t _end = 0;
    std::uint32_t _outstandingLoads = 0;
    std::uint32_t _outstandingStores = 0;
    bool _active = false;
    bool _pumpScheduled = false;
    sim::SmallFn<void()> _done;
    energy::ComponentId _ecCompute = energy::kInvalidComponent;
    std::uint64_t _memOps = 0;
    stats::Group *_stats;
    // Per-op counters resolved once at construction.
    stats::Scalar *_stIntOps;
    stats::Scalar *_stFpOps;
    stats::Scalar *_stLoads;
    stats::Scalar *_stStores;
};

} // namespace fusion::accel

#endif // FUSION_ACCEL_ACCEL_CORE_HH
