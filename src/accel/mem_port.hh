/**
 * @file
 * The memory interface an accelerator core issues through. Each
 * system organization plugs a different implementation behind it:
 * a scratchpad frontend (SCRATCH), the shared L1X (SHARED), or a
 * private L0X (FUSION / FUSION-Dx).
 */

#ifndef FUSION_ACCEL_MEM_PORT_HH
#define FUSION_ACCEL_MEM_PORT_HH

#include "sim/small_fn.hh"
#include "sim/types.hh"

namespace fusion::accel
{

/** Completion callback for one memory operation (allocation-free
 *  move-only closure; see sim/small_fn.hh). */
using PortDone = sim::SmallFn<void()>;

/** Non-blocking memory port (Section 4: "aggressive non-blocking
 *  interface to memory"). */
class MemPort
{
  public:
    virtual ~MemPort() = default;

    /**
     * Issue one memory operation at virtual address @p va.
     * @p done fires when the operation commits.
     */
    virtual void access(Addr va, std::uint32_t size, bool is_write,
                        PortDone done) = 0;
};

} // namespace fusion::accel

#endif // FUSION_ACCEL_MEM_PORT_HH
