/**
 * @file
 * Oracle coherent DMA engine for the SCRATCH baseline (Section 4).
 *
 * The paper assumes "a particularly aggressive oracle DMA
 * implementation": DMA operations are auto-generated from the
 * dynamic trace (only read data is DMA'd in, only dirty data out),
 * the controller resides at the host LLC (no command-issue
 * overhead), and the full controller state machine is modelled —
 * IDLE -> FILL -> (accelerator window runs) -> DRAIN.
 *
 * Transfers are coherent: reads snoop the freshest copy through the
 * LLC directory; writes invalidate stale copies (ARM ACP / IBM
 * PowerBus style, Section 2.1).
 */

#ifndef FUSION_ACCEL_DMA_ENGINE_HH
#define FUSION_ACCEL_DMA_ENGINE_HH

#include <vector>

#include "host/llc.hh"
#include "interconnect/link.hh"
#include "mem/scratchpad.hh"
#include "obs/span_tracer.hh"
#include "sim/sim_context.hh"
#include "vm/page_table.hh"

namespace fusion::accel
{

/** DMA engine parameters. */
struct DmaParams
{
    std::uint32_t maxOutstanding = 8; ///< in-flight line transfers
};

/** Controller states (exposed for tests). */
enum class DmaState
{
    Idle,
    Fill,
    Drain
};

/** The oracle DMA controller. */
class DmaEngine
{
  public:
    /**
     * @param dma_link the LLC <-> scratchpad transfer link (same
     *        physical path as the tile's L1X link, 6 pJ/B)
     */
    DmaEngine(SimContext &ctx, const DmaParams &p, host::Llc &llc,
              interconnect::Link *dma_link,
              const vm::PageTable &pt);

    /**
     * FILL: pull @p vlines (virtual line addresses, translated by
     * the host at programming time — free for the oracle) from the
     * LLC into @p spm. @p done fires when the window is resident.
     */
    void fill(const std::vector<Addr> &vlines, Pid pid,
              mem::Scratchpad &spm, sim::SmallFn<void()> done);

    /**
     * DRAIN: push dirty @p vlines from @p spm back to the LLC.
     */
    void drain(const std::vector<Addr> &vlines, Pid pid,
               mem::Scratchpad &spm, sim::SmallFn<void()> done);

    DmaState state() const { return _state; }
    std::uint64_t lineTransfers() const { return _lineTransfers; }
    std::uint64_t bytesTransferred() const
    {
        return _lineTransfers * kLineBytes;
    }
    std::uint64_t dmaOps() const { return _dmaOps; }

  private:
    void pump();

    SimContext &_ctx;
    DmaParams _p;
    host::Llc &_llc;
    interconnect::Link *_link;
    const vm::PageTable &_pt;

    DmaState _state = DmaState::Idle;
    const std::vector<Addr> *_lines = nullptr;
    Pid _pid = 0;
    mem::Scratchpad *_spm = nullptr;
    std::size_t _pos = 0;
    std::uint32_t _outstanding = 0;
    sim::SmallFn<void()> _done;

    std::uint64_t _lineTransfers = 0;
    /// Lines handed to fill()/drain() — the line-conservation
    /// invariant checks every planned line was actually transferred.
    std::uint64_t _linesPlanned = 0;
    std::uint64_t _dmaOps = 0;
    stats::Group *_stats;
    stats::Histogram *_stChunkLatency;
    /// Telemetry span tracer (null when tracing is off).
    obs::SpanTracer *_tracer = nullptr;
    std::uint32_t _track = 0;
};

} // namespace fusion::accel

#endif // FUSION_ACCEL_DMA_ENGINE_HH
