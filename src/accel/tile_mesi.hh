/**
 * @file
 * The conventional alternative to ACC: a directory MESI protocol
 * *inside* the accelerator tile.
 *
 * The paper argues (Sections 1, 3.2, Lesson "Need to eliminate
 * request messages") that a conventional invalidation protocol
 * between the L0Xs would spend energy on probes, invalidations and
 * acks that ACC's timestamps eliminate. This module implements that
 * alternative so the claim is measurable: private MESI L0Xs under a
 * full-map directory at the shared L1X. Everything else — the
 * host-side MEI integration, AX-TLB/AX-RMAP, link energies, cache
 * geometries — is identical to the FUSION tile, so any difference
 * between `SystemKind::Fusion` and `SystemKind::FusionMesi` is the
 * intra-tile protocol alone.
 *
 * Protocol summary (blocking directory, same discipline as the host
 * LLC's):
 *  - L0X load miss -> GetS: directory downgrades an M/E owner
 *    (probe + data) and grants S (or E when sole).
 *  - L0X store miss/upgrade -> GetX: directory invalidates every
 *    other copy (probe + ack per sharer) before granting M.
 *  - L0X evictions send PutX (dirty) or an eviction notice (clean),
 *    keeping the directory precise.
 *  - Host-forwarded demands recall tile copies with probes — unlike
 *    ACC, the L0Xs *are* probed, which is exactly the message/energy
 *    cost being measured.
 */

#ifndef FUSION_ACCEL_TILE_MESI_HH
#define FUSION_ACCEL_TILE_MESI_HH

#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "accel/mem_port.hh"
#include "coherence/protocol.hh"
#include "energy/sram_model.hh"
#include "host/llc.hh"
#include "interconnect/link.hh"
#include "mem/bank_scheduler.hh"
#include "mem/cache_array.hh"
#include "mem/mshr.hh"
#include "obs/span_tracer.hh"
#include "vm/ax_rmap.hh"
#include "vm/ax_tlb.hh"
#include "vm/page_table.hh"

namespace fusion::accel
{

class L1xMesi;

/** A private MESI L0X cache (the conventional design point). */
class L0xMesi : public MemPort
{
  public:
    L0xMesi(SimContext &ctx, std::string name, std::uint64_t bytes,
            std::uint32_t assoc, AccelId id, L1xMesi &l1x,
            interconnect::Link *tile_link);

    void setPid(Pid pid) { _pid = pid; }

    // MemPort.
    void access(Addr va, std::uint32_t size, bool is_write,
                PortDone done) override;

    /** Directory demand from the L1X (probe). kind as in MESI. */
    void handleTileFwd(Addr vline, coherence::FwdKind kind,
                       sim::SmallFn<void(bool dirty)> done);

    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }
    std::uint64_t probes() const { return _probes; }
    std::uint64_t fills() const { return _fills; }
    std::uint64_t writebacks() const { return _writebacks; }
    AccelId id() const { return _id; }

  private:
    void lookup(Addr vline, bool is_write, Tick start, PortDone done,
                bool is_retry);
    void fillDone(Addr vline, bool is_write, bool exclusive);
    void bookAccess(bool is_write, bool line_granular);

    SimContext &_ctx;
    std::string _name;
    AccelId _id;
    L1xMesi &_l1x;
    interconnect::Link *_tileLink;
    mem::CacheArray _tags;
    mem::MshrFile _mshrs;
    energy::SramFigures _fig;
    energy::ComponentId _ecL0x = energy::kInvalidComponent;
    Pid _pid = 1;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
    std::uint64_t _probes = 0;
    std::uint64_t _fills = 0;
    std::uint64_t _writebacks = 0;
    stats::Group *_stats;
    // Per-access counters resolved once at construction.
    stats::Scalar *_stReads;
    stats::Scalar *_stWrites;
    stats::Scalar *_stHits;
    stats::Scalar *_stLoadMisses;
    stats::Scalar *_stStoreMisses;
    stats::Histogram *_stAccessLatency;
    stats::Histogram *_stHitLatency;
    stats::Histogram *_stMissLatency;
    /// Telemetry span tracer (null when tracing is off).
    obs::SpanTracer *_tracer = nullptr;
    std::uint32_t _track = 0;
};

/**
 * The shared L1X with an embedded full-map directory over the
 * tile's L0Xs; an M/E/I agent of the host LLC (like ACC's L1X).
 */
class L1xMesi : public coherence::CoherentAgent
{
  public:
    using GrantDone = sim::SmallFn<void(bool exclusive)>;

    L1xMesi(SimContext &ctx, std::uint64_t bytes,
            std::uint32_t assoc, std::uint32_t banks,
            std::uint32_t ring_node, host::Llc &llc,
            interconnect::Link *tile_link,
            interconnect::Link *llc_link, vm::AxTlb &tlb,
            vm::AxRmap &rmap);

    /** Register one L0X; returns its directory id. */
    int addL0x(L0xMesi *l0x);

    /** MESI request from an L0X (post tile-link latency). */
    void request(int l0x_id, Addr vline, Pid pid,
                 coherence::CoherenceReq kind, GrantDone done);

    /** Dirty writeback from an L0X. */
    void writeback(int l0x_id, Addr vline, Pid pid);
    /** Clean eviction notice from an L0X. */
    void evictNotice(int l0x_id, Addr vline, Pid pid);

    // Host-side CoherentAgent.
    void handleFwd(Addr pa, coherence::FwdKind kind,
                   FwdDone done) override;
    const std::string &name() const override { return _name; }

    Cycles latency() const { return _fig.latency; }
    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }
    std::uint64_t probesSent() const { return _probesSent; }
    /** LLC agent id assigned at registration (fwdsToAgent key). */
    int agentId() const { return _agentId; }

  private:
    struct DirInfo
    {
        int owner = -1;
        std::uint32_t sharers = 0;
        bool busy = false;
        std::deque<sim::SmallFn<void()>> deferred;
    };

    /** Directory key: the (vline, pid) composite itself — an XOR
     *  fold of the PID into the address aliases distinct lines. */
    using LineKey = std::pair<Addr, Pid>;
    struct LineKeyHash
    {
        std::size_t operator()(const LineKey &k) const
        {
            return static_cast<std::size_t>(
                mem::mixLinePid(k.first, k.second));
        }
    };
    static LineKey key(Addr vline, Pid pid)
    {
        return LineKey{vline, pid};
    }
    static std::uint32_t bit(int id)
    {
        return 1u << static_cast<std::uint32_t>(id);
    }

    void bookAccess(bool is_write);
    void arrive(int l0x_id, Addr vline, Pid pid,
                coherence::CoherenceReq kind, GrantDone done);
    void dirAction(int l0x_id, Addr vline, Pid pid,
                   coherence::CoherenceReq kind, GrantDone done);
    /** Probe tile holders (downgrade or invalidate), then @p then. */
    void clearTile(int except, Addr vline, Pid pid,
                   bool downgrade_to_s, sim::SmallFn<void()> then);
    void respond(int l0x_id, Addr vline, Pid pid, bool exclusive,
                 bool with_data, GrantDone done);
    void finishTransaction(Addr vline, Pid pid);
    void startFill(Addr vline, Pid pid);
    void allocateFrame(Addr vline, Pid pid, Addr pline,
                       sim::SmallFn<void()> installed);

    SimContext &_ctx;
    std::string _name = "l1x";
    host::Llc &_llc;
    interconnect::Link *_tileLink;
    interconnect::Link *_llcLink;
    vm::AxTlb &_tlb;
    vm::AxRmap &_rmap;
    mem::CacheArray _tags;
    mem::BankScheduler _banks;
    mem::MshrFile _mshrs;
    energy::SramFigures _fig;
    energy::ComponentId _ecL1x = energy::kInvalidComponent;
    int _agentId = -1;
    std::vector<L0xMesi *> _l0xs;
    std::unordered_map<LineKey, DirInfo, LineKeyHash> _dir;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
    std::uint64_t _probesSent = 0;
    stats::Group *_stats;
    // Per-access counters resolved once at construction.
    stats::Scalar *_stReads;
    stats::Scalar *_stWrites;
    stats::Scalar *_stHits;
    stats::Scalar *_stMisses;
    stats::Scalar *_stDeferred;
    /// Telemetry span tracer (null when tracing is off).
    obs::SpanTracer *_tracer = nullptr;
    std::uint32_t _track = 0;
};

/** Assembled MESI-protocol tile (the FUSION-MESI design point). */
class MesiTile
{
  public:
    MesiTile(SimContext &ctx, std::uint32_t num_accels,
             std::uint64_t l0x_bytes, std::uint32_t l0x_assoc,
             std::uint64_t l1x_bytes, std::uint32_t l1x_assoc,
             std::uint32_t l1x_banks, host::Llc &llc,
             const vm::PageTable &pt);

    L0xMesi &l0x(AccelId a)
    {
        return *_l0xs[static_cast<std::size_t>(a)];
    }
    L1xMesi &l1x() { return *_l1x; }
    vm::AxTlb &tlb() { return *_tlb; }
    vm::AxRmap &rmap() { return *_rmap; }
    /** The tile's L1X<->LLC ring link (the sharded kernel's only
     *  cross-domain edge for this tile). */
    interconnect::Link &llcLink() { return *_llcLink; }
    std::uint32_t numAccels() const
    {
        return static_cast<std::uint32_t>(_l0xs.size());
    }

  private:
    std::unique_ptr<interconnect::Link> _tileLink;
    std::unique_ptr<interconnect::Link> _llcLink;
    std::unique_ptr<vm::AxTlb> _tlb;
    std::unique_ptr<vm::AxRmap> _rmap;
    std::unique_ptr<L1xMesi> _l1x;
    std::vector<std::unique_ptr<L0xMesi>> _l0xs;
};

} // namespace fusion::accel

#endif // FUSION_ACCEL_TILE_MESI_HH
