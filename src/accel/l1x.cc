#include "accel/l1x.hh"

#include <sstream>

#include "energy/sram_model.hh"
#include "sim/logging.hh"

namespace fusion::accel
{

using coherence::CoherenceReq;
using coherence::FwdKind;
using interconnect::MsgClass;
using mem::MesiState;

L1xAcc::L1xAcc(SimContext &ctx, const L1xParams &p, host::Llc &llc,
               interconnect::Link *tile_link,
               interconnect::Link *llc_link, vm::AxTlb &tlb,
               vm::AxRmap &rmap)
    : _ctx(ctx), _name(p.name), _llc(llc), _tileLink(tile_link),
      _llcLink(llc_link), _tlb(tlb), _rmap(rmap),
      _tags(mem::CacheGeometry{p.capacityBytes, p.assoc, kLineBytes}),
      _banks(p.banks, 1)
{
    energy::SramParams sp;
    sp.capacityBytes = p.capacityBytes;
    sp.assoc = p.assoc;
    sp.banks = p.banks;
    sp.kind = energy::SramKind::TimestampCache;
    _fig = energy::evaluateSram(sp);
    _ecL1x = ctx.energy.component(energy::comp::kL1x);
    _agentId = llc.registerAgent(this, llc_link, p.ringNode);
    _stats = &ctx.stats.root().child(p.name);
    _stReads = &_stats->scalar("reads");
    _stWrites = &_stats->scalar("writes");
    _stHits = &_stats->scalar("hits");
    _stMisses = &_stats->scalar("misses");
    _stBankConflicts = &_stats->scalar("bank_conflicts");
    _stFillLatency = &_stats->histogram("fill_latency", 0, 1024, 32);
    _stFwdLatency = &_stats->histogram("fwd_latency", 0, 1024, 32);

    _tracer = ctx.obs.tracer();
    if (_tracer)
        _track = _tracer->registerTrack(p.name);
    ctx.obs.registerGauge(p.name + ".mshrs", [this] {
        return static_cast<double>(_mshrs.size());
    });
    ctx.obs.registerGauge(p.name + ".stalled", [this] {
        return static_cast<double>(_stalled.targets());
    });
    ctx.obs.registerGauge(p.name + ".wb_buffer", [this] {
        return static_cast<double>(_wbBuffer.size());
    });
    ctx.obs.registerGauge(p.name + ".locked_lines", [this] {
        std::uint64_t locked = 0;
        _tags.forEachValid([&](const mem::CacheLine &l) {
            if (l.locked)
                ++locked;
        });
        return static_cast<double>(locked);
    });
    ctx.obs.registerCounter(p.name + ".misses", [this] {
        return static_cast<double>(_misses);
    });

    ctx.guard.registerSnapshot(p.name, [this] {
        guard::ComponentState s;
        std::uint64_t stalled = _stalled.targets();
        s.outstanding = _mshrs.size() + stalled + _wbBuffer.size();
        if (s.outstanding != 0) {
            std::ostringstream os;
            os << "mshrs=" << _mshrs.size() << " stalled=" << stalled
               << " wbbuf=" << _wbBuffer.size();
            s.detail = os.str();
        }
        return s;
    });
    ctx.guard.registerInvariant(
        _name,
        [this](const guard::InvariantContext &ic,
               std::vector<std::string> &out) {
            _tags.forEachValid([&](const mem::CacheLine &l) {
                // A locked line's write epoch is covered by the
                // lease the L1X granted (GTIME bounds every copy).
                if (l.locked && l.gtime < l.wepochEnd) {
                    std::ostringstream os;
                    os << "write epoch beyond GTIME @ 0x" << std::hex
                       << l.lineAddr;
                    out.push_back(os.str());
                }
                // MESI agreement: the tile fetches exclusively, so
                // every quiesced resident line must be recorded as
                // owned by this agent at the host directory.
                if (!_llc.dirBusy(l.pline) &&
                    !_llc.isOwner(_agentId, l.pline)) {
                    std::ostringstream os;
                    os << "resident line not owned per directory @ "
                          "0x"
                       << std::hex << l.lineAddr << " (pa 0x"
                       << l.pline << ")";
                    out.push_back(os.str());
                }
            });
            if (!ic.atEnd)
                return;
            std::uint64_t locked = 0;
            _tags.forEachValid([&](const mem::CacheLine &l) {
                if (l.locked)
                    ++locked;
            });
            if (locked != 0) {
                out.push_back(
                    std::to_string(locked) +
                    " line(s) still write-locked at end-of-sim");
            }
            if (_mshrs.size() != 0) {
                out.push_back("leaked MSHRs at end-of-sim: " +
                              std::to_string(_mshrs.size()));
            }
            std::uint64_t stalled = _stalled.targets();
            if (stalled != 0) {
                out.push_back(
                    std::to_string(stalled) +
                    " request(s) still stalled at end-of-sim");
            }
            if (!_wbBuffer.empty()) {
                out.push_back(
                    std::to_string(_wbBuffer.size()) +
                    " writeback-buffer entry(ies) at end-of-sim");
            }
        });
}

void
L1xAcc::bookAccess(bool is_write)
{
    _ctx.energy.add(_ecL1x, is_write ? _fig.writePj : _fig.readPj);
    *(is_write ? _stWrites : _stReads) += 1;
}

void
L1xAcc::requestLease(AccelId who, Addr vline, Pid pid,
                     Cycles lease_len, bool is_write, bool need_data,
                     LeaseDone done)
{
    vline = lineAlign(vline);
    bookAccess(false);
    if (_tracer)
        _tracer->begin(_track, obs::SpanKind::Lease, vline,
                       _ctx.now());
    // Bank conflicts serialize concurrent requests (16 banks,
    // line interleaved).
    Cycles bank_delay = _banks.reserve(vline, _ctx.now());
    if (bank_delay > 0)
        *_stBankConflicts += 1;
    _ctx.eq.scheduleIn(_fig.latency + bank_delay,
                       [this, who, vline, pid, lease_len, is_write,
                        need_data, done = std::move(done)]() mutable {
                           processLease(who, vline, pid, lease_len,
                                        is_write, need_data,
                                        std::move(done));
                       });
}

void
L1xAcc::processLease(AccelId who, Addr vline, Pid pid,
                     Cycles lease_len, bool is_write, bool need_data,
                     LeaseDone done, bool is_retry)
{
    mem::CacheLine *line = _tags.find(vline, pid);
    if (line) {
        if (line->locked) {
            // An un-expired write epoch: stall at the L1X until the
            // epoch's writeback arrives (Section 3.2).
            _stats->scalar("stalls_on_write_epoch") += 1;
            if (_tracer)
                _tracer->phase(_track, obs::SpanKind::Lease, vline,
                               "stall", _ctx.now());
            DPRINTFN("ACC", "stall vline=", vline, " now=",
                     _ctx.now(), " wepochEnd=", line->wepochEnd,
                     " gtime=", line->gtime, " who=", who);
            _stalled.allocate(
                vline, pid,
                [this, who, vline, pid, lease_len, is_write,
                 need_data, done = std::move(done)]() mutable {
                    processLease(who, vline, pid, lease_len,
                                 is_write, need_data,
                                 std::move(done));
                });
            return;
        }
        if (!is_retry) {
            ++_hits;
            *_stHits += 1;
        }
        grant(*line, lease_len, is_write, need_data,
              std::move(done));
        return;
    }

    // Miss at the L1X: cross to the host tile.
    if (!is_retry) {
        ++_misses;
        *_stMisses += 1;
    }
    bool primary = _mshrs.allocate(
        vline, pid,
        [this, who, vline, pid, lease_len, is_write, need_data,
         done = std::move(done)]() mutable {
            processLease(who, vline, pid, lease_len, is_write,
                         need_data, std::move(done), true);
        });
    if (primary) {
        if (_tracer)
            _tracer->phase(_track, obs::SpanKind::Lease, vline,
                           "miss", _ctx.now());
        startFill(vline, pid);
    }
}

void
L1xAcc::startFill(Addr vline, Pid pid)
{
    Tick t0 = _ctx.now();
    // The TLB sits on the L1X miss path: translate before entering
    // the host tile's physical address space (Section 3.2).
    _tlb.translate(pid, vline, [this, vline, pid, t0](Addr pa) {
        Addr pline = lineAlign(pa);
        // Synonym filter (Appendix): if the physical line is already
        // cached in the tile under a different virtual address,
        // evict the duplicate so at most one synonym is resident.
        if (auto syn = _rmap.probeForSynonym(pline)) {
            if (syn->vline != vline || syn->pid != pid) {
                _stats->scalar("synonym_evictions") += 1;
                mem::CacheLine *dup = _tags.find(syn->vline,
                                                 syn->pid);
                if (dup) {
                    if (dup->dirty) {
                        _llc.writebackData(_agentId, dup->pline);
                    } else {
                        _llc.evictNotice(_agentId, dup->pline);
                    }
                    _rmap.erase(dup->pline);
                    _tags.invalidate(*dup);
                }
            }
        }
        // The tile always requests exclusivity: M/E/I states only.
        _llc.request(_agentId, pline, CoherenceReq::GetX,
                     [this, vline, pid, pline,
                      t0](const host::LlcResponse &) {
                         finishFill(vline, pid, pline, t0);
                     });
    });
}

void
L1xAcc::finishFill(Addr vline, Pid pid, Addr pline, Tick t0)
{
    allocateFrame(vline, pid, pline, [this, vline, pid, pline, t0]() {
        mem::CacheLine *line = _tags.find(vline, pid);
        fusion_assert(line, "fill lost its frame");
        line->mesi = MesiState::E;
        line->pline = pline;
        _rmap.insert(pline, vline, pid);
        bookAccess(true); // fill write
        _stFillLatency->sample(static_cast<double>(_ctx.now() - t0));
        _mshrs.complete(vline, pid);
    });
}

void
L1xAcc::allocateFrame(Addr vline, Pid pid, Addr pline,
                      sim::SmallFn<void()> installed)
{
    Tick now = _ctx.now();
    mem::CacheLine *victim = _tags.victim(
        vline, [now](const mem::CacheLine &l) {
            // Leased lines are pinned: the L1X must stay inclusive
            // of every outstanding lease.
            return !l.locked && l.gtime <= now;
        });
    if (!victim) {
        _stats->scalar("frame_retries") += 1;
        _ctx.eq.scheduleIn(
            16, [this, vline, pid, pline,
                 installed = std::move(installed)]() mutable {
                allocateFrame(vline, pid, pline,
                              std::move(installed));
            });
        return;
    }
    if (victim->valid) {
        _stats->scalar("evictions") += 1;
        _rmap.erase(victim->pline);
        if (victim->dirty) {
            _llc.writebackData(_agentId, victim->pline);
        } else {
            _llc.evictNotice(_agentId, victim->pline);
        }
    }
    _tags.install(*victim, vline, pid);
    installed();
}

void
L1xAcc::grant(mem::CacheLine &line, Cycles lease_len, bool is_write,
              bool need_data, LeaseDone done)
{
    Tick end = _ctx.now() + lease_len;
    if (end > line.gtime)
        line.gtime = end;
    if (is_write) {
        line.locked = true;
        line.wepochEnd = end;
        _stats->scalar("write_epochs") += 1;
    } else {
        _stats->scalar("read_leases") += 1;
    }
    _tags.touch(line);
    if (_tracer) {
        // Span covers request arrival -> grant issue; the response
        // hop is accounted in the L0X access span.
        _tracer->end(_track, obs::SpanKind::Lease, line.lineAddr,
                     _ctx.now());
    }
    // Response to the L0X: data for fills, 1-flit grant otherwise.
    Cycles resp_lat = _tileLink->latency();
    // Fault injection: hold one grant response back (no-progress
    // detector test).
    if (_ctx.guard.fireFault(guard::FaultKind::DelayGrant))
        resp_lat += _ctx.guard.faultDelay();
    _tileLink->send(need_data ? MsgClass::Data : MsgClass::Control,
                    resp_lat,
                    [end, done = std::move(done)]() mutable {
                        done(LeaseGrant{end});
                    });
}

void
L1xAcc::writeback(AccelId who, Addr vline, Pid pid)
{
    (void)who;
    vline = lineAlign(vline);
    bookAccess(true);
    _stats->scalar("l0x_writebacks") += 1;
    mem::CacheLine *line = _tags.find(vline, pid);
    if (line) {
        line->dirty = true;
        line->mesi = MesiState::M;
        line->locked = false;
        line->wepochEnd = 0;
        wakeStalled(vline, pid);
        return;
    }
    // The line was moved to the writeback buffer by a host demand.
    for (auto it = _wbBuffer.begin(); it != _wbBuffer.end(); ++it) {
        if (it->vline == vline && it->pid == pid) {
            it->dirty = true;
            it->awaitingL0xWb = false;
            tryRespondWbBuf(it->id);
            return;
        }
    }
    fusion_warn("orphan L0X writeback for vline=", vline);
}

void
L1xAcc::leaseTransfer(Addr vline, Pid pid, Tick new_end, bool dirty)
{
    vline = lineAlign(vline);
    _stats->scalar("lease_transfers") += 1;
    mem::CacheLine *line = _tags.find(vline, pid);
    if (!line) {
        fusion_warn("lease transfer for absent line vline=", vline);
        return;
    }
    if (new_end > line->gtime)
        line->gtime = new_end;
    if (dirty) {
        // The dirty copy (and write responsibility) now lives in
        // the consumer's L0X: lock until its writeback arrives.
        line->locked = true;
        line->wepochEnd = new_end;
    }
}

void
L1xAcc::writeThroughStore(AccelId who, Addr vline, Pid pid)
{
    (void)who;
    vline = lineAlign(vline);
    bookAccess(true);
    _stats->scalar("write_through_stores") += 1;
    mem::CacheLine *line = _tags.find(vline, pid);
    if (line) {
        line->dirty = true;
        line->mesi = MesiState::M;
        return;
    }
    // Write-allocate through the regular miss path.
    bool primary = _mshrs.allocate(vline, pid, [] {});
    if (primary)
        startFill(vline, pid);
}

void
L1xAcc::wakeStalled(Addr vline, Pid pid)
{
    // complete() detaches the queue before replaying, so replays
    // re-stall into a fresh entry if the line locks again.
    if (_stalled.pending(vline, pid))
        _stalled.complete(vline, pid);
}

void
L1xAcc::handleFwd(Addr pa, FwdKind kind, FwdDone done)
{
    (void)kind; // ACC answers every host demand identically.
    _stats->scalar("fwd_recv") += 1;
    auto entry = _rmap.lookup(pa);
    if (!entry) {
        done(false, false);
        return;
    }
    mem::CacheLine *line = _tags.find(entry->vline, entry->pid);
    if (!line) {
        done(false, false);
        return;
    }
    // Evict into the writeback buffer; the PUTX response stalls
    // until GTIME expires (Figure 4, right). The L0Xs are never
    // probed.
    bookAccess(false);
    WbBufEntry w;
    w.id = _nextWbId++;
    w.pline = line->pline;
    w.vline = line->lineAddr;
    w.pid = line->pid;
    w.dirty = line->dirty;
    w.awaitingL0xWb = line->locked;
    w.readyAt = std::max(_ctx.now(), line->gtime);
    w.t0 = _ctx.now();
    w.done = std::move(done);
    if (_tracer)
        _tracer->begin(_track, obs::SpanKind::HostFwd, w.pline,
                       w.t0);
    _rmap.erase(line->pline);
    _tags.invalidate(*line);
    std::uint64_t id = w.id;
    Tick ready_at = w.readyAt;
    _wbBuffer.push_back(std::move(w));
    if (ready_at > _ctx.now()) {
        _stats->scalar("fwd_stalled_on_gtime") += 1;
        _ctx.eq.schedule(ready_at,
                         [this, id] { tryRespondWbBuf(id); });
    } else {
        tryRespondWbBuf(id);
    }
}

void
L1xAcc::tryRespondWbBuf(std::uint64_t id)
{
    auto it = _wbBuffer.begin();
    while (it != _wbBuffer.end() && it->id != id)
        ++it;
    if (it == _wbBuffer.end())
        return; // already responded via another path
    if (it->awaitingL0xWb || it->readyAt > _ctx.now())
        return;
    _stFwdLatency->sample(static_cast<double>(_ctx.now() - it->t0));
    if (_tracer)
        _tracer->end(_track, obs::SpanKind::HostFwd, it->pline,
                     _ctx.now());
    auto done = std::move(it->done);
    bool dirty = it->dirty;
    _wbBuffer.erase(it);
    // The tile relinquishes: never retains a shared copy.
    done(dirty, false);
}

bool
L1xAcc::hasWbBufferedLine(Addr vline, Pid pid) const
{
    vline = lineAlign(vline);
    for (const auto &w : _wbBuffer) {
        if (w.vline == vline && w.pid == pid)
            return true;
    }
    return false;
}

void
L1xAcc::flushAll()
{
    _tags.forEachValid([this](mem::CacheLine &l) {
        _rmap.erase(l.pline);
        if (l.dirty) {
            _llc.writebackData(_agentId, l.pline);
        } else {
            _llc.evictNotice(_agentId, l.pline);
        }
        _tags.invalidate(l);
    });
}

} // namespace fusion::accel
