#include "accel/tile_mesi.hh"

#include "sim/logging.hh"

namespace fusion::accel
{

using coherence::CoherenceReq;
using coherence::FwdKind;
using interconnect::MsgClass;
using mem::MesiState;

namespace
{
constexpr double kWordAccessScale = 0.5;
} // namespace

// ---------------------------------------------------------------
// L0xMesi
// ---------------------------------------------------------------

L0xMesi::L0xMesi(SimContext &ctx, std::string name,
                 std::uint64_t bytes, std::uint32_t assoc,
                 AccelId id, L1xMesi &l1x,
                 interconnect::Link *tile_link)
    : _ctx(ctx), _name(std::move(name)), _id(id), _l1x(l1x),
      _tileLink(tile_link),
      _tags(mem::CacheGeometry{bytes, assoc, kLineBytes})
{
    energy::SramParams sp;
    sp.capacityBytes = bytes;
    sp.assoc = assoc;
    sp.banks = 1;
    sp.kind = energy::SramKind::Cache; // no timestamp field
    _fig = energy::evaluateSram(sp);
    _ecL0x = ctx.energy.component(energy::comp::kL0x);
    _stats = &ctx.stats.root().child(_name);
    _stReads = &_stats->scalar("reads");
    _stWrites = &_stats->scalar("writes");
    _stHits = &_stats->scalar("hits");
    _stLoadMisses = &_stats->scalar("load_misses");
    _stStoreMisses = &_stats->scalar("store_misses");
    _stAccessLatency = &_stats->histogram("access_latency", 0, 64, 16);
    _stHitLatency = &_stats->histogram("hit_latency", 0, 16, 16);
    _stMissLatency = &_stats->histogram("miss_latency", 0, 512, 32);

    _tracer = ctx.obs.tracer();
    if (_tracer)
        _track = _tracer->registerTrack(_name);
    ctx.obs.registerGauge(_name + ".mshrs", [this] {
        return static_cast<double>(_mshrs.size());
    });
    ctx.obs.registerCounter(_name + ".misses", [this] {
        return static_cast<double>(_misses);
    });
}

void
L0xMesi::bookAccess(bool is_write, bool line_granular)
{
    double pj = is_write ? _fig.writePj : _fig.readPj;
    if (!line_granular)
        pj *= kWordAccessScale;
    _ctx.energy.add(_ecL0x, pj);
    *(is_write ? _stWrites : _stReads) += 1;
}

void
L0xMesi::access(Addr va, std::uint32_t size, bool is_write,
                PortDone done)
{
    (void)size;
    Addr vline = lineAlign(va);
    bookAccess(is_write, false);
    Tick start = _ctx.now();
    if (_tracer)
        _tracer->begin(_track, obs::SpanKind::Access, vline, start);
    _ctx.eq.scheduleIn(_fig.latency,
                       [this, vline, is_write, start,
                        done = std::move(done)]() mutable {
                           lookup(vline, is_write, start,
                                  std::move(done), false);
                       });
}

void
L0xMesi::lookup(Addr vline, bool is_write, Tick start, PortDone done,
                bool is_retry)
{
    mem::CacheLine *line = _tags.find(vline, _pid);
    if (line) {
        bool hit = !is_write || line->mesi == MesiState::M ||
                   line->mesi == MesiState::E;
        if (hit) {
            if (!is_retry) {
                ++_hits;
                *_stHits += 1;
            }
            _tags.touch(*line);
            if (is_write) {
                line->mesi = MesiState::M;
                line->dirty = true;
            }
            Tick now = _ctx.now();
            _stAccessLatency->sample(
                static_cast<double>(now - start));
            (is_retry ? _stMissLatency : _stHitLatency)
                ->sample(static_cast<double>(now - start));
            if (_tracer)
                _tracer->end(_track, obs::SpanKind::Access, vline,
                             now);
            done();
            return;
        }
    }
    // Miss or upgrade.
    if (!is_retry) {
        ++_misses;
        *(is_write ? _stStoreMisses : _stLoadMisses) +=
            1;
    }
    bool primary = _mshrs.allocate(
        vline,
        [this, vline, is_write, start,
         done = std::move(done)]() mutable {
            lookup(vline, is_write, start, std::move(done), true);
        });
    if (primary) {
        if (_tracer)
            _tracer->phase(_track, obs::SpanKind::Access, vline,
                           "miss", _ctx.now());
        CoherenceReq kind =
            !is_write ? CoherenceReq::GetS
                      : (line ? CoherenceReq::Upgrade
                              : CoherenceReq::GetX);
        // Request message.
        _tileLink->book(MsgClass::Control);
        _ctx.eq.scheduleIn(
            _tileLink->latency(),
            [this, vline, is_write, kind] {
                _l1x.request(_id, vline, _pid, kind,
                             [this, vline,
                              is_write](bool exclusive) {
                                 fillDone(vline, is_write,
                                          exclusive);
                             });
            });
    }
}

void
L0xMesi::fillDone(Addr vline, bool is_write, bool exclusive)
{
    mem::CacheLine *line = _tags.find(vline, _pid);
    if (!line) {
        mem::CacheLine *way = _tags.victim(vline);
        fusion_assert(way, "L0xMesi victim selection failed");
        if (way->valid) {
            _stats->scalar("evictions") += 1;
            if (way->dirty || way->mesi == MesiState::M) {
                ++_writebacks;
                _tileLink->book(MsgClass::Data);
                Addr wb = way->lineAddr;
                Pid pid = way->pid;
                _ctx.eq.scheduleIn(_tileLink->latency(),
                                   [this, wb, pid] {
                                       _l1x.writeback(_id, wb, pid);
                                   });
            } else {
                _tileLink->book(MsgClass::Control);
                Addr ev = way->lineAddr;
                Pid pid = way->pid;
                _ctx.eq.scheduleIn(_tileLink->latency(),
                                   [this, ev, pid] {
                                       _l1x.evictNotice(_id, ev,
                                                        pid);
                                   });
            }
        }
        _tags.install(*way, vline, _pid);
        line = way;
        ++_fills;
        _stats->scalar("fills") += 1;
        bookAccess(true, true);
    }
    if (is_write) {
        line->mesi = MesiState::M;
        line->dirty = true;
    } else {
        line->mesi = exclusive ? MesiState::E : MesiState::S;
    }
    _tags.touch(*line);
    _mshrs.complete(vline);
}

void
L0xMesi::handleTileFwd(Addr vline, FwdKind kind,
                       sim::SmallFn<void(bool dirty)> done)
{
    ++_probes;
    _stats->scalar("probes") += 1;
    bookAccess(false, false); // tag probe energy
    mem::CacheLine *line = _tags.find(lineAlign(vline), _pid);
    if (!line) {
        done(false);
        return;
    }
    bool dirty = line->dirty || line->mesi == MesiState::M;
    switch (kind) {
      case FwdKind::Inv:
      case FwdKind::FwdGetX:
        _tags.invalidate(*line);
        break;
      case FwdKind::FwdGetS:
        line->mesi = MesiState::S;
        line->dirty = false;
        break;
    }
    done(dirty);
}

// ---------------------------------------------------------------
// L1xMesi
// ---------------------------------------------------------------

L1xMesi::L1xMesi(SimContext &ctx, std::uint64_t bytes,
                 std::uint32_t assoc, std::uint32_t banks,
                 std::uint32_t ring_node, host::Llc &llc,
                 interconnect::Link *tile_link,
                 interconnect::Link *llc_link, vm::AxTlb &tlb,
                 vm::AxRmap &rmap)
    : _ctx(ctx), _llc(llc), _tileLink(tile_link),
      _llcLink(llc_link), _tlb(tlb), _rmap(rmap),
      _tags(mem::CacheGeometry{bytes, assoc, kLineBytes}),
      _banks(banks, 1)
{
    energy::SramParams sp;
    sp.capacityBytes = bytes;
    sp.assoc = assoc;
    sp.banks = banks;
    sp.kind = energy::SramKind::Cache;
    _fig = energy::evaluateSram(sp);
    _ecL1x = ctx.energy.component(energy::comp::kL1x);
    _agentId = llc.registerAgent(this, llc_link, ring_node);
    _stats = &ctx.stats.root().child("l1x");
    _stReads = &_stats->scalar("reads");
    _stWrites = &_stats->scalar("writes");
    _stHits = &_stats->scalar("hits");
    _stMisses = &_stats->scalar("misses");
    _stDeferred = &_stats->scalar("deferred");

    _tracer = ctx.obs.tracer();
    if (_tracer)
        _track = _tracer->registerTrack(_name);
    ctx.obs.registerGauge(_name + ".mshrs", [this] {
        return static_cast<double>(_mshrs.size());
    });
    ctx.obs.registerGauge(_name + ".dir_busy", [this] {
        std::uint64_t busy = 0;
        for (const auto &[k, d] : _dir)
            busy += d.busy ? 1 : 0;
        return static_cast<double>(busy);
    });
    ctx.obs.registerCounter(_name + ".misses", [this] {
        return static_cast<double>(_misses);
    });
}

int
L1xMesi::addL0x(L0xMesi *l0x)
{
    fusion_assert(_l0xs.size() < 31, "too many L0Xs");
    _l0xs.push_back(l0x);
    return static_cast<int>(_l0xs.size()) - 1;
}

void
L1xMesi::bookAccess(bool is_write)
{
    _ctx.energy.add(_ecL1x,
                    is_write ? _fig.writePj : _fig.readPj);
    *(is_write ? _stWrites : _stReads) += 1;
}

void
L1xMesi::request(int l0x_id, Addr vline, Pid pid,
                 CoherenceReq kind, GrantDone done)
{
    vline = lineAlign(vline);
    bookAccess(false);
    if (_tracer)
        _tracer->begin(_track, obs::SpanKind::MesiReq, vline,
                       _ctx.now());
    Cycles bank_delay = _banks.reserve(vline, _ctx.now());
    _ctx.eq.scheduleIn(_fig.latency + bank_delay,
                       [this, l0x_id, vline, pid, kind,
                        done = std::move(done)]() mutable {
                           arrive(l0x_id, vline, pid, kind,
                                  std::move(done));
                       });
}

void
L1xMesi::arrive(int l0x_id, Addr vline, Pid pid, CoherenceReq kind,
                GrantDone done)
{
    DirInfo &d = _dir[key(vline, pid)];
    if (d.busy) {
        d.deferred.push_back([this, l0x_id, vline, pid, kind,
                              done = std::move(done)]() mutable {
            arrive(l0x_id, vline, pid, kind, std::move(done));
        });
        *_stDeferred += 1;
        if (_tracer)
            _tracer->phase(_track, obs::SpanKind::MesiReq, vline,
                           "defer", _ctx.now());
        return;
    }
    d.busy = true;
    if (_tags.find(vline, pid)) {
        ++_hits;
        *_stHits += 1;
        dirAction(l0x_id, vline, pid, kind, std::move(done));
        return;
    }
    ++_misses;
    *_stMisses += 1;
    bool primary = _mshrs.allocate(
        vline, pid,
        [this, l0x_id, vline, pid, kind,
         done = std::move(done)]() mutable {
            dirAction(l0x_id, vline, pid, kind, std::move(done));
        });
    if (primary) {
        if (_tracer)
            _tracer->phase(_track, obs::SpanKind::MesiReq, vline,
                           "fill", _ctx.now());
        startFill(vline, pid);
    }
}

void
L1xMesi::startFill(Addr vline, Pid pid)
{
    // Identical host-side behaviour to ACC: translate on the miss
    // path, fetch exclusively (tile is M/E/I to the host).
    _tlb.translate(pid, vline, [this, vline, pid](Addr pa) {
        Addr pline = lineAlign(pa);
        if (auto syn = _rmap.probeForSynonym(pline)) {
            if (syn->vline != vline || syn->pid != pid) {
                _stats->scalar("synonym_evictions") += 1;
                mem::CacheLine *dup =
                    _tags.find(syn->vline, syn->pid);
                if (dup) {
                    if (dup->dirty) {
                        _llc.writebackData(_agentId, dup->pline);
                    } else {
                        _llc.evictNotice(_agentId, dup->pline);
                    }
                    _rmap.erase(dup->pline);
                    _tags.invalidate(*dup);
                }
            }
        }
        _llc.request(_agentId, pline, CoherenceReq::GetX,
                     [this, vline, pid,
                      pline](const host::LlcResponse &) {
                         allocateFrame(vline, pid, pline,
                                       [this, vline, pid, pline] {
                                           mem::CacheLine *line =
                                               _tags.find(vline,
                                                          pid);
                                           fusion_assert(
                                               line,
                                               "fill lost frame");
                                           line->mesi =
                                               MesiState::E;
                                           line->pline = pline;
                                           _rmap.insert(pline,
                                                        vline, pid);
                                           bookAccess(true);
                                           _mshrs.complete(vline,
                                                           pid);
                                       });
                     });
    });
}

void
L1xMesi::allocateFrame(Addr vline, Pid pid, Addr pline,
                       sim::SmallFn<void()> installed)
{
    mem::CacheLine *victim = _tags.victim(
        vline, [this](const mem::CacheLine &l) {
            auto it = _dir.find(key(l.lineAddr, l.pid));
            if (it == _dir.end())
                return true;
            const DirInfo &d = it->second;
            // Only untracked lines evict without a recall; a busy
            // or cached-below line is skipped (simple + safe: the
            // L1X is 16x the L0X, so such sets are rare).
            return !d.busy && d.owner < 0 && d.sharers == 0;
        });
    if (!victim) {
        _stats->scalar("frame_retries") += 1;
        _ctx.eq.scheduleIn(
            16, [this, vline, pid, pline,
                 installed = std::move(installed)]() mutable {
                allocateFrame(vline, pid, pline,
                              std::move(installed));
            });
        return;
    }
    if (victim->valid) {
        _stats->scalar("evictions") += 1;
        _rmap.erase(victim->pline);
        if (victim->dirty) {
            _llc.writebackData(_agentId, victim->pline);
        } else {
            _llc.evictNotice(_agentId, victim->pline);
        }
    }
    _tags.install(*victim, vline, pid);
    installed();
}

void
L1xMesi::dirAction(int l0x_id, Addr vline, Pid pid,
                   CoherenceReq kind, GrantDone done)
{
    DirInfo &d = _dir[key(vline, pid)];
    mem::CacheLine *line = _tags.find(vline, pid);
    fusion_assert(line, "dirAction without L1X frame");
    _tags.touch(*line);

    switch (kind) {
      case CoherenceReq::GetS: {
        if (d.owner >= 0 && d.owner != l0x_id) {
            clearTile(l0x_id, vline, pid, true,
                      [this, l0x_id, vline, pid,
                       done = std::move(done)]() mutable {
                          DirInfo &dd = _dir[key(vline, pid)];
                          dd.sharers |= bit(l0x_id);
                          respond(l0x_id, vline, pid, false, true,
                                  std::move(done));
                      });
            return;
        }
        bool exclusive = d.sharers == 0 && d.owner < 0;
        if (exclusive)
            d.owner = l0x_id;
        else
            d.sharers |= bit(l0x_id);
        respond(l0x_id, vline, pid, exclusive, true,
                std::move(done));
        return;
      }
      case CoherenceReq::GetX:
      case CoherenceReq::Upgrade: {
        bool had_copy = kind == CoherenceReq::Upgrade &&
                        ((d.sharers & bit(l0x_id)) != 0 ||
                         d.owner == l0x_id);
        clearTile(l0x_id, vline, pid, false,
                  [this, l0x_id, vline, pid, had_copy,
                   done = std::move(done)]() mutable {
                      DirInfo &dd = _dir[key(vline, pid)];
                      dd.owner = l0x_id;
                      dd.sharers = 0;
                      respond(l0x_id, vline, pid, true, !had_copy,
                              std::move(done));
                  });
        return;
      }
    }
    fusion_panic("unhandled tile MESI request");
}

void
L1xMesi::clearTile(int except, Addr vline, Pid pid,
                   bool downgrade_to_s, sim::SmallFn<void()> then)
{
    DirInfo &d = _dir[key(vline, pid)];
    struct Target
    {
        int id;
        FwdKind kind;
    };
    std::vector<Target> targets;
    if (d.owner >= 0 && d.owner != except) {
        targets.push_back({d.owner, downgrade_to_s
                                        ? FwdKind::FwdGetS
                                        : FwdKind::FwdGetX});
    }
    for (int i = 0; i < static_cast<int>(_l0xs.size()); ++i) {
        if (i == except || i == d.owner)
            continue;
        if (d.sharers & bit(i))
            targets.push_back({i, FwdKind::Inv});
    }
    if (targets.empty()) {
        then();
        return;
    }
    auto remaining = std::make_shared<std::size_t>(targets.size());
    auto cont =
        std::make_shared<sim::SmallFn<void()>>(std::move(then));
    for (const Target &t : targets) {
        ++_probesSent;
        _stats->scalar("probes_sent") += 1;
        // Probe + response cross the tile link (the ACC protocol
        // never sends these).
        _tileLink->book(MsgClass::Control);
        int id = t.id;
        FwdKind kind = t.kind;
        _ctx.eq.scheduleIn(
            _tileLink->latency(),
            [this, id, kind, vline, pid, remaining, cont] {
                _l0xs[static_cast<std::size_t>(id)]->handleTileFwd(
                    vline, kind,
                    [this, id, kind, vline, pid, remaining,
                     cont](bool dirty) {
                        _tileLink->book(dirty ? MsgClass::Data
                                              : MsgClass::Control);
                        DirInfo &dd = _dir[key(vline, pid)];
                        if (dirty) {
                            bookAccess(true);
                            mem::CacheLine *l =
                                _tags.find(vline, pid);
                            if (l)
                                l->dirty = true;
                        }
                        switch (kind) {
                          case FwdKind::Inv:
                          case FwdKind::FwdGetX:
                            dd.sharers &= ~bit(id);
                            if (dd.owner == id)
                                dd.owner = -1;
                            break;
                          case FwdKind::FwdGetS:
                            if (dd.owner == id) {
                                dd.owner = -1;
                                dd.sharers |= bit(id);
                            }
                            break;
                        }
                        _ctx.eq.scheduleIn(
                            _tileLink->latency(),
                            [remaining, cont] {
                                if (--*remaining == 0)
                                    (*cont)();
                            });
                    });
            });
    }
}

void
L1xMesi::respond(int l0x_id, Addr vline, Pid pid, bool exclusive,
                 bool with_data, GrantDone done)
{
    (void)l0x_id;
    _tileLink->book(with_data ? MsgClass::Data : MsgClass::Control);
    if (_tracer)
        _tracer->end(_track, obs::SpanKind::MesiReq, vline,
                     _ctx.now());
    finishTransaction(vline, pid);
    _ctx.eq.scheduleIn(_tileLink->latency(),
                       [exclusive,
                        done = std::move(done)]() mutable {
                           done(exclusive);
                       });
}

void
L1xMesi::finishTransaction(Addr vline, Pid pid)
{
    DirInfo &d = _dir[key(vline, pid)];
    fusion_assert(d.busy, "finishing idle tile transaction");
    d.busy = false;
    if (!d.deferred.empty()) {
        auto next = std::move(d.deferred.front());
        d.deferred.pop_front();
        next();
    }
}

void
L1xMesi::writeback(int l0x_id, Addr vline, Pid pid)
{
    vline = lineAlign(vline);
    bookAccess(true);
    _stats->scalar("l0x_writebacks") += 1;
    DirInfo &d = _dir[key(vline, pid)];
    if (d.owner == l0x_id)
        d.owner = -1;
    d.sharers &= ~bit(l0x_id);
    mem::CacheLine *line = _tags.find(vline, pid);
    if (line) {
        line->dirty = true;
        line->mesi = MesiState::M;
    }
}

void
L1xMesi::evictNotice(int l0x_id, Addr vline, Pid pid)
{
    vline = lineAlign(vline);
    _stats->scalar("evict_notices") += 1;
    DirInfo &d = _dir[key(vline, pid)];
    if (d.owner == l0x_id)
        d.owner = -1;
    d.sharers &= ~bit(l0x_id);
}

void
L1xMesi::handleFwd(Addr pa, FwdKind kind, FwdDone done)
{
    (void)kind;
    _stats->scalar("fwd_recv") += 1;
    DPRINTFN("MESI", "host fwd pa=", pa, " now=", _ctx.now());
    auto entry = _rmap.lookup(pa);
    if (!entry) {
        done(false, false);
        return;
    }
    Addr vline = entry->vline;
    Pid pid = entry->pid;
    mem::CacheLine *line = _tags.find(vline, pid);
    if (!line) {
        done(false, false);
        return;
    }
    auto k = key(vline, pid);
    DirInfo &d = _dir[k];
    if (d.busy) {
        // A tile transaction is mid-flight: retry shortly.
        _ctx.eq.scheduleIn(4, [this, pa, kind,
                               done = std::move(done)]() mutable {
            handleFwd(pa, kind, std::move(done));
        });
        return;
    }
    d.busy = true;
    bookAccess(false);
    // Conventional design: the host demand probes the L0Xs.
    clearTile(-1, vline, pid, false,
              [this, vline, pid, k,
               done = std::move(done)]() mutable {
                  mem::CacheLine *l = _tags.find(vline, pid);
                  bool dirty = l && l->dirty;
                  if (l) {
                      _rmap.erase(l->pline);
                      _tags.invalidate(*l);
                  }
                  DirInfo &dd = _dir[k];
                  dd.busy = false;
                  if (!dd.deferred.empty()) {
                      auto next = std::move(dd.deferred.front());
                      dd.deferred.pop_front();
                      next();
                  }
                  done(dirty, false);
              });
}

// ---------------------------------------------------------------
// MesiTile
// ---------------------------------------------------------------

MesiTile::MesiTile(SimContext &ctx, std::uint32_t num_accels,
                   std::uint64_t l0x_bytes, std::uint32_t l0x_assoc,
                   std::uint64_t l1x_bytes, std::uint32_t l1x_assoc,
                   std::uint32_t l1x_banks, host::Llc &llc,
                   const vm::PageTable &pt)
{
    _tileLink = std::make_unique<interconnect::Link>(
        ctx, interconnect::LinkParams{
                 "l0x_l1x", energy::LinkClass::AxcToL1x, 1,
                 energy::comp::kLinkL0xL1xMsg,
                 energy::comp::kLinkL0xL1xData});
    _llcLink = std::make_unique<interconnect::Link>(
        ctx, interconnect::LinkParams{
                 "l1x_l2", energy::LinkClass::L1xToL2, 3,
                 energy::comp::kLinkL1xL2Msg,
                 energy::comp::kLinkL1xL2Data});
    _tlb = std::make_unique<vm::AxTlb>(ctx, vm::AxTlbParams{}, pt);
    _rmap = std::make_unique<vm::AxRmap>(ctx, vm::AxRmapParams{});
    _l1x = std::make_unique<L1xMesi>(
        ctx, l1x_bytes, l1x_assoc, l1x_banks, 4, llc,
        _tileLink.get(), _llcLink.get(), *_tlb, *_rmap);
    for (std::uint32_t a = 0; a < num_accels; ++a) {
        _l0xs.push_back(std::make_unique<L0xMesi>(
            ctx, "axc" + std::to_string(a) + ".l0x", l0x_bytes,
            l0x_assoc, static_cast<AccelId>(a), *_l1x,
            _tileLink.get()));
        int id = _l1x->addL0x(_l0xs.back().get());
        fusion_assert(id == static_cast<int>(a),
                      "L0X id mismatch");
    }
}

} // namespace fusion::accel
