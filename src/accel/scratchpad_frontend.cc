#include "accel/scratchpad_frontend.hh"

#include "sim/logging.hh"

namespace fusion::accel
{

ScratchpadFrontend::ScratchpadFrontend(SimContext &ctx,
                                       mem::Scratchpad &spm)
    : _ctx(ctx), _spm(spm)
{
}

void
ScratchpadFrontend::setResidentLines(
    const std::unordered_set<Addr> &lines)
{
    _resident = &lines;
}

void
ScratchpadFrontend::access(Addr va, std::uint32_t size,
                           bool is_write, PortDone done)
{
    (void)size;
    fusion_assert(_resident && _resident->count(lineAlign(va)),
                  "scratchpad access outside resident window: va=",
                  va);
    Cycles lat = _spm.access(is_write);
    _ctx.eq.scheduleIn(lat,
                       [done = std::move(done)]() mutable { done(); });
}

} // namespace fusion::accel
