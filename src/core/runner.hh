/**
 * @file
 * Experiment runner: the highest-level public API. Builds a
 * workload's traced Program once, then simulates it on any of the
 * four systems — one run at a time via runProgram(), or many
 * independent runs at once via the parallel sweep entry point
 * runSweep(). Also provides the host-only profile used for
 * Table 1's %Time column.
 */

#ifndef FUSION_CORE_RUNNER_HH
#define FUSION_CORE_RUNNER_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/results.hh"
#include "core/system_config.hh"
#include "sweep/sweep.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace fusion::core
{

/**
 * Simulate @p prog on a system configured by @p cfg.
 * Calls cfg.validate() first and fusion_fatal()s with every problem
 * if the configuration is broken.
 */
RunResult runProgram(const SystemConfig &cfg,
                     const trace::Program &prog);

// The sweep vocabulary is defined in sweep/sweep.hh; re-exported
// here so experiment code only needs the runner header.
using sweep::SweepJob;
using sweep::SweepOptions;
using sweep::SweepProgress;

/**
 * Run a list of independent simulations on @p opt.jobs worker
 * threads and return results ordered by submission index. See
 * sweep::runSweep for the full contract (fail-fast validation,
 * per-job SimContext isolation, worker-count-independent results).
 */
inline std::vector<RunResult>
runSweep(const std::vector<SweepJob> &jobs,
         const SweepOptions &opt = {})
{
    return sweep::runSweep(jobs, opt);
}

/** Simulate @p prog on SCRATCH, SHARED and FUSION (paper defaults),
 *  in that order. */
std::vector<RunResult> runBaselineSystems(const trace::Program &prog);

/**
 * Replay every invocation on the host core ("un-accelerated"
 * execution) and return per-function cycle totals — the paper's
 * gprof-style profile behind Table 1's %Time.
 */
std::map<std::string, std::uint64_t>
hostProfile(const trace::Program &prog);

/**
 * Build one workload by name.
 * @return std::nullopt for unknown names; unknownWorkloadMessage()
 *         renders the matching error with the known-name list.
 */
std::optional<trace::Program>
buildProgram(const std::string &workload, workloads::Scale scale);

/** "unknown workload 'x' (known: fft disparity ...)". */
std::string unknownWorkloadMessage(const std::string &workload);

} // namespace fusion::core

#endif // FUSION_CORE_RUNNER_HH
