/**
 * @file
 * Experiment runner: the highest-level public API. Builds a
 * workload's traced Program once, then simulates it on any of the
 * four systems; also provides the host-only profile used for
 * Table 1's %Time column.
 */

#ifndef FUSION_CORE_RUNNER_HH
#define FUSION_CORE_RUNNER_HH

#include <map>
#include <string>
#include <vector>

#include "core/results.hh"
#include "core/system_config.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace fusion::core
{

/** Simulate @p prog on a system configured by @p cfg. */
RunResult runProgram(const SystemConfig &cfg,
                     const trace::Program &prog);

/** Simulate @p prog on SCRATCH, SHARED and FUSION (paper defaults),
 *  in that order. */
std::vector<RunResult> runBaselineSystems(const trace::Program &prog);

/**
 * Replay every invocation on the host core ("un-accelerated"
 * execution) and return per-function cycle totals — the paper's
 * gprof-style profile behind Table 1's %Time.
 */
std::map<std::string, std::uint64_t>
hostProfile(const trace::Program &prog);

/** Build one workload by name (panics on unknown names). */
trace::Program buildProgram(const std::string &workload,
                            workloads::Scale scale);

} // namespace fusion::core

#endif // FUSION_CORE_RUNNER_HH
