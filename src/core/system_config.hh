/**
 * @file
 * Public configuration of the four systems the paper compares
 * (Section 4, "Systems compared"), with defaults from Table 2.
 */

#ifndef FUSION_CORE_SYSTEM_CONFIG_HH
#define FUSION_CORE_SYSTEM_CONFIG_HH

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "host/host_core.hh"
#include "host/llc.hh"
#include "mem/cache_array.hh"
#include "mem/dram.hh"
#include "obs/obs_config.hh"
#include "sim/guard/guard_config.hh"
#include "sim/types.hh"

namespace fusion::core
{

/** The four evaluated organizations, plus the dynamic selector. */
enum class SystemKind
{
    Scratch,    ///< per-accelerator scratchpads + oracle DMA
    Shared,     ///< one shared L1X per tile, full MESI participant
    Fusion,     ///< private L0Xs + shared L1X under ACC
    FusionDx,   ///< FUSION + direct L0X->L0X write forwarding
    FusionMesi, ///< FUSION geometry with a conventional directory
                ///< MESI protocol inside the tile (the design ACC
                ///< is argued against; see docs/PROTOCOL.md)
    Auto        ///< per-invocation mode selection by the
                ///< orchestrator (src/orchestrator/): every static
                ///< organization is instantiated and an online
                ///< policy picks one per invocation, paying a
                ///< modeled flush/DMA cost on each switch
};

/** Number of *static* organizations (excludes Auto). */
inline constexpr std::size_t kNumStaticSystemKinds = 5;

/** The five static organizations, in enum order. */
inline constexpr SystemKind kStaticSystemKinds[kNumStaticSystemKinds] = {
    SystemKind::Scratch, SystemKind::Shared, SystemKind::Fusion,
    SystemKind::FusionDx, SystemKind::FusionMesi};

/** Short display name used in tables ("SC", "SH", "FU", "FU-Dx"). */
const char *systemKindShortName(SystemKind k);
/** Full display name ("SCRATCH", ...). */
const char *systemKindName(SystemKind k);
/** Canonical CLI spelling ("scratch", "fusion-dx", "auto", ...). */
const char *systemKindCliName(SystemKind k);

/**
 * Parse a CLI spelling of a system kind. Accepts the canonical long
 * names (auto|scratch|shared|fusion|fusion-dx|fusion-mesi), the
 * short table names from systemKindShortName (sc|sh|fu|fu-dx|fu-m|au)
 * and the full display names ("FUSION-MESI"); matching is
 * case-insensitive. Returns nullopt for anything else.
 */
std::optional<SystemKind> parseSystemKind(std::string_view name);

/** Policy choices for the AUTO-mode orchestrator. */
enum class OrchPolicy
{
    Threshold,     ///< Table 3-seeded working-set / forwarding
                   ///< heuristic (deterministic default)
    EpsilonGreedy, ///< per-(function, mode) bandit, deterministic
                   ///< SplitMix64 exploration
    StaticBest     ///< always pick staticMode (debug / forced mode)
};

/**
 * AUTO-mode orchestrator knobs (SystemKind::Auto only; ignored by
 * the static organizations so their output stays byte-identical).
 */
struct OrchestratorConfig
{
    OrchPolicy policy = OrchPolicy::Threshold;
    /** Forced mode for OrchPolicy::StaticBest. */
    SystemKind staticMode = SystemKind::Fusion;
    /** Exploration rate for OrchPolicy::EpsilonGreedy. */
    double epsilon = 0.1;
    /** Seed for the learner's deterministic PRNG. */
    std::uint64_t rngSeed = 0x5eedf00dULL;
    /** Invocations a mode must dwell before another switch is
     *  considered (hysteresis against thrashing). */
    std::uint32_t minDwell = 2;
    /** Modeled mode-switch transition cost: a flush/DMA event of
     *  fixed + per-flushed-line cycles, plus per-line energy. */
    Cycles switchFixedCycles = 200;
    Cycles switchCyclesPerLine = 4;
    double switchPjPerLine = 15.0;
    /** Threshold policy: forward-fraction above which FUSION-Dx is
     *  selected, and the footprint-to-L1X ratio above which a
     *  streaming invocation falls back to SCRATCH. */
    double dxForwardFraction = 0.02;
    double scratchFootprintRatio = 4.0;
};

/** Complete system configuration. */
struct SystemConfig
{
    SystemKind kind = SystemKind::Fusion;

    // Accelerator tile (Table 2, "Accelerator Cache Hierarchy").
    std::uint64_t scratchpadBytes = 4 * 1024;
    std::uint64_t l0xBytes = 4 * 1024;
    std::uint32_t l0xAssoc = 4;
    mem::ReplPolicy l0xRepl = mem::ReplPolicy::Lru;
    std::uint64_t l1xBytes = 64 * 1024;
    std::uint32_t l1xAssoc = 8;
    std::uint32_t l1xBanks = 16;
    bool l0xWriteThrough = false;

    // Host side.
    host::LlcParams llc;
    mem::DramParams dram;
    host::HostCoreParams hostCore;
    std::uint64_t hostL1Bytes = 64 * 1024;
    std::uint32_t hostL1Assoc = 4;

    // Datapath.
    std::uint32_t datapathWidth = 4;
    std::uint32_t accelStoreBuffer = 16;
    /// Overlap data-independent invocations on different
    /// accelerators (the concurrency the paper's Figure 5 timeline
    /// depicts). Dependences come from trace analysis
    /// (trace::invocationDependences); SCRATCH always runs serial
    /// (one DMA engine). Off by default: the paper's headline
    /// numbers assume strictly sequential offload.
    bool overlapInvocations = false;
    /// Number of accelerator tiles (FUSION/FUSION-Dx). The paper
    /// collocates every function of an application on one tile;
    /// splitting across tiles forces inter-accelerator sharing
    /// through the host LLC and quantifies the collocation benefit.
    std::uint32_t numTiles = 1;
    /// Concurrent line transactions of the coherent DMA engine
    /// (ACP/PowerBus-style engines pipeline only a couple of
    /// coherent line transactions).
    std::uint32_t dmaMaxOutstanding = 2;
    /// Hardening layer: watchdog budgets, periodic invariant
    /// checking, fault injection (docs/HARDENING.md). All off by
    /// default — a default run is byte-identical with or without
    /// the guard subsystem compiled in.
    guard::GuardConfig guard;
    /// Telemetry: span tracing, interval metrics, latency digests
    /// (docs/OBSERVABILITY.md). All off by default — a default run's
    /// serialized output is byte-identical with telemetry compiled
    /// in but disarmed.
    obs::ObsConfig obs;
    /// AUTO-mode orchestrator (kind == SystemKind::Auto only).
    OrchestratorConfig orchestrator;
    /// Sharded event kernel (DESIGN.md §8 "Sharded kernel"): number
    /// of scheduling domains the simulation is partitioned into.
    /// 1 (default) = the classic serial kernel, byte-for-byte
    /// untouched. N > 1 = domain 0 hosts the host+LLC+DMA complex
    /// and accelerator tiles round-robin over domains 1..N-1, with
    /// the tile<->LLC ring links as the only cross-domain edges.
    /// Clamped to the partition the kind supports (SCRATCH and AUTO
    /// degrade to serial); output stays byte-identical at any value
    /// (anchored by ShardDeterminism).
    std::uint32_t shardDomains = 1;

    /**
     * Check the configuration for structural mistakes (non-power-
     * of-two cache sizes, zero banks/tiles/assoc, capacities that
     * cannot hold a single set, ...). Returns one human-readable
     * message per problem; empty means the config is runnable.
     * runProgram() and the sweep engine call this and refuse to
     * simulate a misconfigured system, so a bad knob fails loudly
     * instead of producing silently wrong numbers.
     */
    std::vector<std::string> validate() const;

    /** Named parameter presets (Table 2 and Section 5.5). */
    enum class Preset
    {
        Paper,   ///< the paper's default Table 2 configuration
        AxcLarge ///< Section 5.5 "AXC-Large": 8 KB L0X (and
                 ///< scratchpad) with a 256 KB L1X
    };

    /** The canonical factory: @p preset parameters for @p kind.
     *  (The deprecated paperDefault/axcLarge forwarders are gone;
     *  see the DESIGN.md changelog.) */
    static SystemConfig preset(Preset preset, SystemKind kind);

    /**
     * Stable identity of this configuration: FNV-1a over every
     * user-settable knob in a fixed, documented field order
     * (DESIGN.md §10). Two configs hash equal iff they would
     * configure identical systems — the hash is value-based, so a
     * field left at its default and a field explicitly assigned the
     * default value are indistinguishable, and it is independent of
     * construction order, process, and platform. Together with the
     * trace content hash it keys the sweep result cache
     * (sweep::ResultCache), so EVERY knob that can change simulated
     * output must be folded in; tests/test_result_cache.cc walks
     * all of them. kConfigHashVersion salts the hash — bump it when
     * adding a field so stale cache entries can never alias.
     */
    std::uint64_t canonicalHash() const;

    /** Salt/version of canonicalHash(); bump on any field change. */
    static constexpr std::uint32_t kConfigHashVersion = 1;
};

/** CLI spelling of a preset ("paper", "axc-large"). */
const char *presetName(SystemConfig::Preset p);

} // namespace fusion::core

#endif // FUSION_CORE_SYSTEM_CONFIG_HH
