/**
 * @file
 * Public configuration of the four systems the paper compares
 * (Section 4, "Systems compared"), with defaults from Table 2.
 */

#ifndef FUSION_CORE_SYSTEM_CONFIG_HH
#define FUSION_CORE_SYSTEM_CONFIG_HH

#include <string>
#include <vector>

#include "host/host_core.hh"
#include "host/llc.hh"
#include "mem/cache_array.hh"
#include "mem/dram.hh"
#include "obs/obs_config.hh"
#include "sim/guard/guard_config.hh"
#include "sim/types.hh"

namespace fusion::core
{

/** The four evaluated organizations. */
enum class SystemKind
{
    Scratch,   ///< per-accelerator scratchpads + oracle DMA
    Shared,    ///< one shared L1X per tile, full MESI participant
    Fusion,    ///< private L0Xs + shared L1X under ACC
    FusionDx,  ///< FUSION + direct L0X->L0X write forwarding
    FusionMesi ///< FUSION geometry with a conventional directory
               ///< MESI protocol inside the tile (the design ACC
               ///< is argued against; see docs/PROTOCOL.md)
};

/** Short display name used in tables ("SC", "SH", "FU", "FU-Dx"). */
const char *systemKindShortName(SystemKind k);
/** Full display name ("SCRATCH", ...). */
const char *systemKindName(SystemKind k);

/** Complete system configuration. */
struct SystemConfig
{
    SystemKind kind = SystemKind::Fusion;

    // Accelerator tile (Table 2, "Accelerator Cache Hierarchy").
    std::uint64_t scratchpadBytes = 4 * 1024;
    std::uint64_t l0xBytes = 4 * 1024;
    std::uint32_t l0xAssoc = 4;
    mem::ReplPolicy l0xRepl = mem::ReplPolicy::Lru;
    std::uint64_t l1xBytes = 64 * 1024;
    std::uint32_t l1xAssoc = 8;
    std::uint32_t l1xBanks = 16;
    bool l0xWriteThrough = false;

    // Host side.
    host::LlcParams llc;
    mem::DramParams dram;
    host::HostCoreParams hostCore;
    std::uint64_t hostL1Bytes = 64 * 1024;
    std::uint32_t hostL1Assoc = 4;

    // Datapath.
    std::uint32_t datapathWidth = 4;
    std::uint32_t accelStoreBuffer = 16;
    /// Overlap data-independent invocations on different
    /// accelerators (the concurrency the paper's Figure 5 timeline
    /// depicts). Dependences come from trace analysis
    /// (trace::invocationDependences); SCRATCH always runs serial
    /// (one DMA engine). Off by default: the paper's headline
    /// numbers assume strictly sequential offload.
    bool overlapInvocations = false;
    /// Number of accelerator tiles (FUSION/FUSION-Dx). The paper
    /// collocates every function of an application on one tile;
    /// splitting across tiles forces inter-accelerator sharing
    /// through the host LLC and quantifies the collocation benefit.
    std::uint32_t numTiles = 1;
    /// Concurrent line transactions of the coherent DMA engine
    /// (ACP/PowerBus-style engines pipeline only a couple of
    /// coherent line transactions).
    std::uint32_t dmaMaxOutstanding = 2;
    /// Hardening layer: watchdog budgets, periodic invariant
    /// checking, fault injection (docs/HARDENING.md). All off by
    /// default — a default run is byte-identical with or without
    /// the guard subsystem compiled in.
    guard::GuardConfig guard;
    /// Telemetry: span tracing, interval metrics, latency digests
    /// (docs/OBSERVABILITY.md). All off by default — a default run's
    /// serialized output is byte-identical with telemetry compiled
    /// in but disarmed.
    obs::ObsConfig obs;

    /**
     * Check the configuration for structural mistakes (non-power-
     * of-two cache sizes, zero banks/tiles/assoc, capacities that
     * cannot hold a single set, ...). Returns one human-readable
     * message per problem; empty means the config is runnable.
     * runProgram() and the sweep engine call this and refuse to
     * simulate a misconfigured system, so a bad knob fails loudly
     * instead of producing silently wrong numbers.
     */
    std::vector<std::string> validate() const;

    /** The paper's default configuration for @p kind. */
    static SystemConfig paperDefault(SystemKind kind);

    /**
     * The Section 5.5 "AXC-Large" variant: 8 KB L0X (and
     * scratchpad) with a 256 KB L1X.
     */
    static SystemConfig axcLarge(SystemKind kind);
};

} // namespace fusion::core

#endif // FUSION_CORE_SYSTEM_CONFIG_HH
